package bench

import (
	"fmt"
	"os"
	"testing"

	"neo/internal/datagen"
	"neo/internal/engine"
	"neo/internal/executor"
	"neo/internal/expert"
	"neo/internal/plan"
	"neo/internal/stats"
	"neo/internal/storage"
	"neo/internal/workload"
)

// Exec measures the disk execution backend at two granularities.
//
// exec/pool-cold versus exec/pool-hot is the buffer-pool pair the gate
// ratio-checks: one sweep over every heap page of the database, against a
// pool reset before each sweep (every access faults to the heap file) and
// against a warm pool (every access is a map hit). The ratio is the page-miss
// penalty — the storage effect the measured-latency experience signal carries
// and no simulated cost model prices.
//
// exec/disk-cold versus exec/disk-hot runs a fixed set of expert-chosen JOB
// plans end-to-end through the disk executor under the same cold/hot pool
// treatment. At benchmark scale join compute dominates the handful of page
// faults, so the pair gets a committed baseline (regression gate) but no
// ratio floor.
func Exec() Suite {
	poolCold, poolHot, diskCold, diskHot, cleanup := ExecBenchmarks()
	defer cleanup()
	return Suite{Suite: "exec", Benchmarks: []Result{
		measure("exec/pool-cold", poolCold),
		measure("exec/pool-hot", poolHot),
		measure("exec/disk-cold", diskCold),
		measure("exec/disk-hot", diskHot),
	}}
}

// ExecBenchmarks materializes the benchmark database to a temporary
// directory and returns the four disk-backend benchmark bodies (see Exec)
// plus a cleanup releasing the heap files. The root exec_bench_test.go
// exposes the same bodies through `go test -bench`.
func ExecBenchmarks() (poolCold, poolHot, diskCold, diskHot func(*testing.B), cleanup func()) {
	db, err := datagen.Generate(datagen.Profile("imdb"), datagen.Config{Scale: 0.4, Seed: 17})
	if err != nil {
		panic(fmt.Sprintf("bench: exec fixture: %v", err))
	}
	st, err := stats.Build(db)
	if err != nil {
		panic(fmt.Sprintf("bench: exec stats: %v", err))
	}
	opt := expert.NativeOptimizer(engine.New(engine.PostgreSQLProfile(), db), st, db.Catalog)
	wl, err := workload.JOB(db, 6, 17)
	if err != nil {
		panic(fmt.Sprintf("bench: exec workload: %v", err))
	}
	var plans []*plan.Plan
	for _, q := range wl.Queries {
		p, _, err := opt.Optimize(q)
		if err != nil {
			panic(fmt.Sprintf("bench: exec plan %s: %v", q.ID, err))
		}
		plans = append(plans, p)
	}

	dir, err := os.MkdirTemp("", "neo-bench-exec-")
	if err != nil {
		panic(fmt.Sprintf("bench: exec tempdir: %v", err))
	}
	if err := storage.Materialize(db, dir); err != nil {
		os.RemoveAll(dir)
		panic(fmt.Sprintf("bench: exec materialize: %v", err))
	}
	ddb, err := storage.OpenDisk(dir, db.Catalog, storage.PagesForMB(4))
	if err != nil {
		os.RemoveAll(dir)
		panic(fmt.Sprintf("bench: exec open: %v", err))
	}
	cleanup = func() {
		ddb.Close()
		os.RemoveAll(dir)
	}
	exec := executor.NewDisk(ddb)
	sweep := func(b *testing.B) {
		for _, p := range plans {
			if _, err := exec.Execute(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	pageSweep := func(b *testing.B) {
		for _, ts := range db.Catalog.Tables() {
			t := ddb.Table(ts.Name)
			for pg := int32(0); pg < t.Heap.NumPages(); pg++ {
				if _, err := ddb.Pool.Get(t.Heap, pg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	poolCold = func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ddb.Pool.Reset()
			pageSweep(b)
		}
	}
	poolHot = func(b *testing.B) {
		b.ReportAllocs()
		ddb.Pool.Reset()
		pageSweep(b) // warm: the 4 MiB pool holds the whole database
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pageSweep(b)
		}
	}
	diskCold = func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ddb.Pool.Reset()
			sweep(b)
		}
	}
	diskHot = func(b *testing.B) {
		b.ReportAllocs()
		sweep(b) // warm the pool; capacity exceeds the working set
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b)
		}
	}
	return poolCold, poolHot, diskCold, diskHot, cleanup
}
