package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"neo/internal/checkpoint"
	"neo/internal/cluster/proto"
	"neo/pkg/neo"
)

// Trainer defaults; see TrainerConfig.
const (
	defaultKeepVersions     = 4
	defaultTrainerRetrain   = 64
	defaultMaxExperienceTrn = 100_000
)

// TrainerConfig tunes the neo-trainer daemon.
type TrainerConfig struct {
	// CheckpointPath is where the trainer durably checkpoints its learned
	// state (atomically). Empty disables checkpointing; published snapshots
	// are kept in memory either way.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval started by Start.
	CheckpointEvery time.Duration
	// RetrainEvery triggers a background retraining round after every N
	// ingested experience entries (default 64, negative disables). Rounds
	// never queue: entries arriving mid-round count toward the next one.
	RetrainEvery int
	// MaxExperience bounds the experience pool (default 100 000, negative
	// disables trimming).
	MaxExperience int
	// KeepVersions is how many published snapshot versions stay downloadable
	// (default 4). Rollback needs at least the previous one.
	KeepVersions int
	// Rollout configures the rollout coordinator driving the replica fleet.
	// Nil disables automatic rollouts: replicas then pull snapshots on their
	// own schedule (or an operator drives /admin/snapshot by hand).
	Rollout *RolloutConfig
}

func (c *TrainerConfig) retrainEvery() int {
	if c.RetrainEvery != 0 {
		return c.RetrainEvery
	}
	return defaultTrainerRetrain
}

func (c *TrainerConfig) keepVersions() int {
	if c.KeepVersions > 0 {
		return c.KeepVersions
	}
	return defaultKeepVersions
}

// Trainer is the learning half of the distributed tier: it owns the
// experience pool and the training loop, ingests replica experience batches
// (POST /experience), and publishes every retrained network as a versioned
// NEOCKPT1 snapshot (GET /snapshot) for replicas to pull. Create one with
// NewTrainer, expose it as an http.Handler, call Start for the background
// loops and Close on shutdown.
//
// Endpoints:
//
//	POST /experience   NEOCKPT1 experience container -> ingestion counters
//	GET  /snapshot     ?version=N (0 or absent = latest) -> NEOCKPT1 snapshot
//	GET  /stats        -> proto.TrainerStats
//	GET  /healthz      -> 200 ok
//	POST /rollout      {version} (0 = latest) -> run a canary rollout now
type Trainer struct {
	sys   *neo.System
	cfg   TrainerConfig
	mux   *http.ServeMux
	start time.Time

	batches     atomic.Uint64
	accepted    atomic.Uint64
	retrains    atomic.Uint64
	checkpoints atomic.Uint64
	training    atomic.Bool
	lastLoss    atomic.Uint64 // float64 bits
	pending     atomic.Uint64 // entries ingested since the last retrain trigger

	// snapMu guards the published-snapshot store.
	snapMu sync.Mutex
	snaps  map[uint64][]byte
	order  []uint64 // publication order, oldest first (eviction)
	latest uint64

	rollout *Coordinator

	// ckptMu serializes Checkpoint calls (periodic loop vs shutdown).
	ckptMu sync.Mutex

	// lifeMu guards closed and orders wg.Add against Close's wg.Wait.
	lifeMu sync.Mutex
	closed bool

	wg   sync.WaitGroup
	stop chan struct{}
	once sync.Once
}

// NewTrainer creates a trainer over an assembled (and typically bootstrapped
// or checkpoint-restored) system and publishes the system's current network
// as the initial snapshot, so replicas can join before the first retrain.
func NewTrainer(sys *neo.System, cfg TrainerConfig) (*Trainer, error) {
	if cfg.MaxExperience == 0 {
		cfg.MaxExperience = defaultMaxExperienceTrn
	}
	t := &Trainer{sys: sys, cfg: cfg, mux: http.NewServeMux(), start: time.Now(),
		snaps: make(map[uint64][]byte), stop: make(chan struct{})}
	if cfg.Rollout != nil {
		t.rollout = NewCoordinator(*cfg.Rollout)
	}
	if err := t.publish(); err != nil {
		return nil, fmt.Errorf("cluster: publishing initial snapshot: %w", err)
	}
	t.mux.HandleFunc("POST /experience", t.handleExperience)
	t.mux.HandleFunc("GET /snapshot", t.handleSnapshot)
	t.mux.HandleFunc("GET /stats", t.handleStats)
	t.mux.HandleFunc("POST /rollout", t.handleRollout)
	t.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return t, nil
}

// ServeHTTP implements http.Handler.
func (t *Trainer) ServeHTTP(w http.ResponseWriter, r *http.Request) { t.mux.ServeHTTP(w, r) }

// Start launches the periodic checkpoint loop (no-op without a path and
// interval).
func (t *Trainer) Start() {
	if t.cfg.CheckpointPath == "" || t.cfg.CheckpointEvery <= 0 {
		return
	}
	t.goRun(func() {
		ticker := time.NewTicker(t.cfg.CheckpointEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_ = t.Checkpoint() // best effort; failures surface in /stats staying flat
			case <-t.stop:
				return
			}
		}
	})
}

func (t *Trainer) goRun(fn func()) {
	t.lifeMu.Lock()
	if t.closed {
		t.lifeMu.Unlock()
		return
	}
	t.wg.Add(1)
	t.lifeMu.Unlock()
	go func() {
		defer t.wg.Done()
		fn()
	}()
}

// Close stops the background loops, waits for an in-flight retraining
// round's bookkeeping (and rollout), and writes a final checkpoint. Safe to
// call more than once.
func (t *Trainer) Close() error {
	var err error
	t.once.Do(func() {
		t.lifeMu.Lock()
		t.closed = true
		t.lifeMu.Unlock()
		close(t.stop)
		t.wg.Wait()
		err = t.Checkpoint()
	})
	return err
}

// Checkpoint durably writes the trainer's learned state to the configured
// path, atomically.
func (t *Trainer) Checkpoint() error {
	if t.cfg.CheckpointPath == "" {
		return nil
	}
	t.ckptMu.Lock()
	defer t.ckptMu.Unlock()
	if err := t.sys.SaveCheckpointFile(t.cfg.CheckpointPath); err != nil {
		return err
	}
	t.checkpoints.Add(1)
	return nil
}

// publish snapshots the system's current learned state into the in-memory
// version store under its network version, evicting the oldest version
// beyond KeepVersions. Publication is what makes a version visible to GET
// /snapshot and eligible for rollout.
func (t *Trainer) publish() error {
	var buf bytes.Buffer
	if err := t.sys.SaveCheckpoint(&buf); err != nil {
		return err
	}
	v := t.sys.Neo.NetVersion()
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if _, exists := t.snaps[v]; !exists {
		t.order = append(t.order, v)
	}
	t.snaps[v] = buf.Bytes()
	t.latest = v
	for len(t.order) > t.cfg.keepVersions() {
		evict := t.order[0]
		t.order = t.order[1:]
		delete(t.snaps, evict)
	}
	return nil
}

// Snapshot returns the published container for version (0 = latest).
func (t *Trainer) Snapshot(version uint64) ([]byte, uint64, bool) {
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if version == 0 {
		version = t.latest
	}
	payload, ok := t.snaps[version]
	return payload, version, ok
}

// versions returns the published versions, ascending.
func (t *Trainer) versions() []uint64 {
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	vs := append([]uint64(nil), t.order...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// handleExperience ingests one replica experience batch: a NEOCKPT1
// container holding an experience section. Damaged containers are rejected
// with 400 (the replica's retry would only fail again); version-skewed ones
// with 409. Ingestion triggers a retraining round once RetrainEvery entries
// have accumulated.
func (t *Trainer) handleExperience(w http.ResponseWriter, r *http.Request) {
	entries, err := checkpoint.LoadExperience(r.Body)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, checkpoint.ErrUnsupportedVersion) || errors.Is(err, checkpoint.ErrMismatch) {
			code = http.StatusConflict
		}
		httpError(w, code, fmt.Errorf("decoding experience container: %w", err))
		return
	}
	for _, e := range entries {
		t.sys.Neo.Experience.Add(e.Query, e.Plan, e.Latency)
	}
	if t.cfg.MaxExperience > 0 && t.sys.Neo.Experience.Len() > t.cfg.MaxExperience {
		t.sys.Neo.Experience.Trim(t.cfg.MaxExperience)
	}
	t.batches.Add(1)
	t.accepted.Add(uint64(len(entries)))
	triggered := false
	if every := t.cfg.retrainEvery(); every > 0 && len(entries) > 0 {
		if t.pending.Add(uint64(len(entries))) >= uint64(every) {
			triggered = t.triggerRetrain()
		}
	}
	writeJSON(w, proto.ExperienceResponse{
		Accepted:         len(entries),
		Experience:       t.sys.Neo.Experience.Len(),
		RetrainTriggered: triggered,
		NetVersion:       t.NetVersion(),
	})
}

// triggerRetrain starts a background retraining round unless one is already
// in flight. When the round finishes the new network is published as a
// snapshot and, when a coordinator is configured, rolled out to the fleet.
func (t *Trainer) triggerRetrain() bool {
	if !t.training.CompareAndSwap(false, true) {
		return false
	}
	t.lifeMu.Lock()
	if t.closed {
		t.lifeMu.Unlock()
		t.training.Store(false)
		return false
	}
	t.wg.Add(1)
	t.lifeMu.Unlock()
	t.pending.Store(0)
	done := t.sys.RetrainAsync()
	go func() {
		defer t.wg.Done()
		loss := <-done
		t.lastLoss.Store(math.Float64bits(loss))
		if err := t.publish(); err == nil {
			t.retrains.Add(1)
			if t.rollout != nil {
				v := t.NetVersion()
				// Roll out in the background: training cadence must not
				// block on canary soak time. Stop-aware so Close waits.
				t.goRun(func() { _, _ = t.rollout.Rollout(t.stop, v) })
			}
		}
		t.training.Store(false)
	}()
	return true
}

// NetVersion returns the latest published snapshot version.
func (t *Trainer) NetVersion() uint64 {
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	return t.latest
}

// handleSnapshot serves a published snapshot container; ?version=N selects
// a historical version (rollback), absent or 0 means latest. The version
// served is echoed in the X-Neo-Net-Version header.
func (t *Trainer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var version uint64
	if raw := r.URL.Query().Get("version"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad version %q: %w", raw, err))
			return
		}
		version = v
	}
	payload, v, ok := t.Snapshot(version)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("snapshot version %d is not published (kept: %v)", version, t.versions()))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(proto.HeaderNetVersion, strconv.FormatUint(v, 10))
	_, _ = w.Write(payload)
}

// handleRollout runs a canary rollout of the requested version (0 = latest)
// synchronously and reports the decision.
func (t *Trainer) handleRollout(w http.ResponseWriter, r *http.Request) {
	if t.rollout == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("no rollout coordinator configured (no replicas)"))
		return
	}
	var req proto.SnapshotRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding rollout request: %w", err))
			return
		}
	}
	version := req.Version
	if version == 0 {
		version = t.NetVersion()
	}
	if _, _, ok := t.Snapshot(version); !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("snapshot version %d is not published", version))
		return
	}
	promoted, err := t.rollout.Rollout(t.stop, version)
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	status := t.rollout.Status()
	status.Version = version
	if !promoted {
		status.Version = 0
	}
	writeJSON(w, status)
}

// Stats snapshots the trainer counters.
func (t *Trainer) Stats() proto.TrainerStats {
	st := proto.TrainerStats{
		UptimeSeconds: time.Since(t.start).Seconds(),
		NetVersion:    t.NetVersion(),
		Versions:      t.versions(),
		Experience:    t.sys.Neo.Experience.Len(),
		Batches:       t.batches.Load(),
		Accepted:      t.accepted.Load(),
		Retrains:      t.retrains.Load(),
		Training:      t.training.Load(),
		LastTrainLoss: math.Float64frombits(t.lastLoss.Load()),
		Checkpoints:   t.checkpoints.Load(),
	}
	if t.rollout != nil {
		s := t.rollout.Status()
		st.Rollout = &s
	}
	return st
}

func (t *Trainer) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, t.Stats())
}
