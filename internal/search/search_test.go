package search

import (
	"sync"
	"testing"
	"time"

	"neo/internal/datagen"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/storage"
)

func fiveWayQuery() *query.Query {
	return query.New("five",
		[]string{"title", "movie_keyword", "keyword", "movie_info", "info_type"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "info_type_id", RightTable: "info_type", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
		})
}

// structuralScorer is a deterministic synthetic cost model: loop joins are
// "expensive", hash joins and index scans are "cheap". Like the value
// network, it scores a *partial* plan with the best cost any completion of
// it could achieve (cost so far plus an optimistic estimate of the remaining
// joins and scans), so partial and complete plans live on the same scale.
func structuralScorer(p *plan.Plan) float64 {
	cost := 0.0
	for _, r := range p.Roots {
		r.Walk(func(n *plan.Node) {
			if n.IsLeaf() {
				switch n.Scan {
				case plan.IndexScan, plan.UnspecifiedScan:
					cost += 0.5 // unspecified scans may still become cheap index scans
				default:
					cost += 1.0
				}
				return
			}
			switch n.Join {
			case plan.LoopJoin:
				cost += 20
			case plan.MergeJoin:
				cost += 8
			default:
				cost += 3
			}
		})
	}
	// Optimistic completion cost: the remaining roots still need to be
	// joined, at best with the cheapest operator.
	cost += float64(len(p.Roots)-1) * 3
	return cost
}

func TestBestFirstFindsCompletePlan(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	res, err := BestFirst(q, ScorerFunc(structuralScorer), DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsComplete() {
		t.Fatalf("plan is not complete: %s", res.Plan)
	}
	if got := len(res.Plan.Roots[0].Tables()); got != 5 {
		t.Errorf("plan covers %d tables, want 5", got)
	}
	if res.Expansions == 0 || res.Evaluations == 0 {
		t.Errorf("expected non-zero search effort: %+v", res)
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed should be positive")
	}
	// With this scorer, loop joins cost far more than hash joins; the chosen
	// plan should avoid them entirely.
	res.Plan.Roots[0].Walk(func(n *plan.Node) {
		if !n.IsLeaf() && n.Join == plan.LoopJoin {
			t.Errorf("search chose a loop join despite the scorer penalising it: %s", res.Plan)
		}
	})
}

func TestBestFirstRespectsExpansionBudget(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	res, err := BestFirst(q, ScorerFunc(structuralScorer), Options{Catalog: cat, MaxExpansions: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With such a tiny budget the search must fall back to hurry-up mode,
	// and still return a complete plan.
	if !res.HurryUp {
		t.Errorf("expected hurry-up mode with a 3-expansion budget")
	}
	if !res.Plan.IsComplete() {
		t.Errorf("hurry-up plan must still be complete")
	}
	// Expansions counts the 3 budgeted frontier pops plus the hurry-up
	// descents' steps (a complete 5-way plan is at most a handful of levels
	// away from any frontier node), so the reported effort can exceed the
	// frontier budget but never by more than the two greedy descents
	// hurry-up runs (last expanded node and best frontier node).
	if res.Expansions <= 3 {
		t.Errorf("expansions %d should include hurry-up descent steps on top of the 3 frontier pops", res.Expansions)
	}
	if max := 3 + 2*2*len(q.Relations); res.Expansions > max {
		t.Errorf("expansions %d exceed budget plus two greedy descents (max %d)", res.Expansions, max)
	}
}

func TestGreedyReportsExpansions(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	res, err := Greedy(q, ScorerFunc(structuralScorer), DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}
	// Building a complete 5-way plan greedily takes one descent step per
	// child generation; before the fix this was always reported as 0 and
	// /stats under-counted search effort.
	if res.Expansions == 0 {
		t.Fatalf("greedy descent reported zero expansions: %+v", res)
	}
	if res.Expansions > 2*len(q.Relations) {
		t.Errorf("greedy expansions %d implausibly high for a 5-way query", res.Expansions)
	}
	if res.Evaluations < res.Expansions {
		t.Errorf("evaluations %d < expansions %d: each step scores at least one child",
			res.Evaluations, res.Expansions)
	}
}

// TestTimeBudgetEntersHurryUp pins the anytime contract when wall-clock, not
// expansion count, is the binding budget: a scorer slow enough that a single
// batched call overshoots the deadline must still yield a complete plan via
// hurry-up, with the descent's effort counted.
func TestTimeBudgetEntersHurryUp(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	slow := ScorerFunc(func(p *plan.Plan) float64 {
		time.Sleep(200 * time.Microsecond)
		return structuralScorer(p)
	})
	res, err := BestFirst(q, slow, Options{Catalog: cat, MaxExpansions: 10_000, TimeBudget: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsComplete() {
		t.Fatalf("time-budgeted search returned an incomplete plan")
	}
	if !res.HurryUp {
		t.Errorf("a 1ms budget against a slow scorer should force hurry-up mode")
	}
	if res.Expansions == 0 {
		t.Errorf("hurry-up effort went uncounted: %+v", res)
	}
}

func TestLargerBudgetNeverWorse(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	small, err := BestFirst(q, ScorerFunc(structuralScorer), Options{Catalog: cat, MaxExpansions: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := BestFirst(q, ScorerFunc(structuralScorer), Options{Catalog: cat, MaxExpansions: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if large.Score > small.Score+1e-9 {
		t.Errorf("larger budget found a worse plan: %.2f vs %.2f", large.Score, small.Score)
	}
}

func TestGreedyVersusBestFirst(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	greedy, err := Greedy(q, ScorerFunc(structuralScorer), DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}
	if !greedy.Plan.IsComplete() || !greedy.HurryUp {
		t.Fatalf("greedy result malformed: %+v", greedy)
	}
	best, err := BestFirst(q, ScorerFunc(structuralScorer), DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}
	if best.Score > greedy.Score+1e-9 {
		t.Errorf("best-first (%.2f) should never be worse than greedy (%.2f)", best.Score, greedy.Score)
	}
	// Greedy evaluates far fewer states.
	if greedy.Evaluations >= best.Evaluations {
		t.Errorf("greedy should evaluate fewer states (%d vs %d)", greedy.Evaluations, best.Evaluations)
	}
}

func TestSingleTableQuery(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := query.New("single", []string{"title"}, nil, []query.Predicate{
		{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(2000)},
	})
	res, err := BestFirst(q, ScorerFunc(structuralScorer), DefaultOptions(cat))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsComplete() {
		t.Fatalf("single-table plan incomplete")
	}
	// The scorer prefers index scans (0.5 vs 1.0).
	if res.Plan.Roots[0].Scan != plan.IndexScan {
		t.Errorf("expected index scan, got %s", res.Plan)
	}
}

func TestEmptyQueryFails(t *testing.T) {
	cat := datagen.IMDBCatalog()
	if _, err := BestFirst(&query.Query{ID: "empty"}, ScorerFunc(structuralScorer), DefaultOptions(cat)); err == nil {
		t.Errorf("expected error for empty query")
	}
	if _, err := Greedy(&query.Query{ID: "empty"}, ScorerFunc(structuralScorer), DefaultOptions(cat)); err == nil {
		t.Errorf("expected error for empty query")
	}
}

func TestSearchMinimisesScorer(t *testing.T) {
	// With an exhaustive budget, the best-first result should be at least as
	// good as 200 random plans.
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	res, err := BestFirst(q, ScorerFunc(structuralScorer), Options{Catalog: cat, MaxExpansions: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Generate random complete plans via repeated greedy descents with a
	// noisy scorer and compare.
	for trial := 0; trial < 20; trial++ {
		noisy := ScorerFunc(func(p *plan.Plan) float64 {
			return structuralScorer(p) * (1 + float64((trial*31)%7)/10)
		})
		g, err := Greedy(q, noisy, DefaultOptions(cat))
		if err != nil {
			t.Fatal(err)
		}
		if structuralScorer(g.Plan) < res.Score-1e-9 {
			t.Errorf("found a plan better than best-first's: %.2f < %.2f", structuralScorer(g.Plan), res.Score)
		}
	}
}

// TestBestFirstExpansionsCountOnlyExpandedNodes pins the Result.Expansions
// contract: only pops that generate children count. The search dedups states
// by signature, so with an exhaustive budget every unique reachable state is
// pushed (and scored) exactly once and popped exactly once — meaning
// Expansions must equal the number of unique *incomplete* states and
// Evaluations the number of unique states overall. Before the fix every pop
// was counted, so Expansions reported the total including complete plans
// that generate no children.
func TestBestFirstExpansionsCountOnlyExpandedNodes(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := query.New("three",
		[]string{"title", "movie_keyword", "keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
		})

	// Enumerate the unique state space exactly as the search sees it.
	childOpts := plan.ChildrenOptions{Catalog: cat}
	initial := plan.Initial(q)
	seen := map[string]bool{initial.Signature(): true}
	queue := []*plan.Plan{initial}
	total, incomplete := 0, 0
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		total++
		if !p.IsComplete() {
			incomplete++
			for _, c := range p.Children(childOpts) {
				if sig := c.Signature(); !seen[sig] {
					seen[sig] = true
					queue = append(queue, c)
				}
			}
		}
	}
	if total == incomplete {
		t.Fatalf("state space has no complete plans; the test cannot discriminate")
	}

	res, err := BestFirst(q, ScorerFunc(structuralScorer), Options{Catalog: cat, MaxExpansions: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.HurryUp {
		t.Fatalf("exhaustive budget must not trigger hurry-up mode")
	}
	if res.Expansions != incomplete {
		t.Errorf("Expansions = %d, want %d (unique incomplete states; pre-fix value was %d, the total including complete pops)",
			res.Expansions, incomplete, total)
	}
	if res.Evaluations != total {
		t.Errorf("Evaluations = %d, want %d (every unique state scored once)", res.Evaluations, total)
	}
}

// TestGreedyCrossProductFallbackIsPerLevel pins the dead-end recovery
// contract of the greedy descent: on a query whose join graph is
// disconnected (two components), the descent must complete the plan with
// exactly components−1 cross products, keeping every other join connected.
// Before the fix the fallback flipped AllowCrossProducts for the rest of the
// descent, so one dead end could let cross products outcompete connected
// joins on every later level.
func TestGreedyCrossProductFallbackIsPerLevel(t *testing.T) {
	cat := datagen.IMDBCatalog()
	// Built with query.New directly: Validate would reject a disconnected
	// join graph, but the planner must still handle one gracefully.
	q := query.New("disconnected",
		[]string{"title", "movie_keyword", "company", "movie_companies"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_companies", LeftColumn: "company_id", RightTable: "company", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(2000)},
		})
	res, err := Greedy(q, ScorerFunc(structuralScorer), DefaultOptions(cat))
	if err != nil {
		t.Fatalf("greedy descent failed on a disconnected query: %v", err)
	}
	if !res.Plan.IsComplete() {
		t.Fatalf("plan incomplete: %s", res.Plan)
	}
	cross := 0
	res.Plan.Roots[0].Walk(func(n *plan.Node) {
		if n.IsLeaf() {
			return
		}
		if !q.Connected(n.Left.TableSet(), n.Right.TableSet()) {
			cross++
		}
	})
	if cross != 1 {
		t.Errorf("plan has %d cross products, want exactly 1 (components − 1): %s", cross, res.Plan)
	}
}

// timedScorer records when each batched scoring call starts and sleeps long
// enough that wall-clock, not the expansion count, is the binding budget.
type timedScorer struct {
	mu    sync.Mutex
	calls []time.Time
	delay time.Duration
}

func (s *timedScorer) ScoreBatch(ps []*plan.Plan) []float64 {
	s.mu.Lock()
	s.calls = append(s.calls, time.Now())
	s.mu.Unlock()
	time.Sleep(s.delay)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = structuralScorer(p)
	}
	return out
}

// TestHurryUpSkipsSecondDescentPastDeadline pins the anytime contract of
// hurry-up mode: once the wall-clock deadline has passed, only the mandatory
// first descent runs (without it there is no plan at all); the opportunistic
// second descent from the frontier top is skipped. Before the fix both
// descents always ran, so a wide query overshot TimeBudget by a full extra
// descent. The bound is one descent's worth of scoring calls (≤ one batched
// call per level, ≤ 2·relations levels); two descents need roughly twice
// that and trip it.
func TestHurryUpSkipsSecondDescentPastDeadline(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	budget := 3 * time.Millisecond
	sc := &timedScorer{delay: time.Millisecond}
	start := time.Now()
	res, err := BestFirst(q, sc, Options{Catalog: cat, MaxExpansions: 1 << 20, TimeBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HurryUp {
		t.Fatalf("a %v budget against a %v-per-call scorer should force hurry-up mode", budget, sc.delay)
	}
	if !res.Plan.IsComplete() {
		t.Fatalf("hurry-up plan incomplete")
	}
	deadline := start.Add(budget)
	late := 0
	sc.mu.Lock()
	for _, c := range sc.calls {
		if c.After(deadline) {
			late++
		}
	}
	sc.mu.Unlock()
	if max := 2 * len(q.Relations); late > max {
		t.Errorf("%d scoring calls started after the deadline, want ≤ %d (one greedy descent)", late, max)
	}
}

func BenchmarkBestFirstFiveWay(b *testing.B) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	opts := DefaultOptions(cat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BestFirst(q, ScorerFunc(structuralScorer), opts); err != nil {
			b.Fatal(err)
		}
	}
}
