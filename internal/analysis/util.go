package analysis

import (
	"go/ast"
	"go/types"
)

// exprString renders an expression for finding messages.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
