package valuenet

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"neo/internal/treeconv"
)

// precisionFixture builds a lightly trained network plus a reference workload
// of (query, forest) pairs.
func precisionFixture(t *testing.T, seed int64) (*Network, [][]float64, [][]*treeconv.Tree, []Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const queryDim, planDim = 11, 7
	cfg := DefaultConfig()
	cfg.QueryLayers = []int{16, 8}
	cfg.TreeChannels = []int{12, 8}
	cfg.HeadLayers = []int{8}
	net := New(queryDim, planDim, cfg)

	var samples []Sample
	for i := 0; i < 24; i++ {
		q := make([]float64, queryDim)
		for j := range q {
			q[j] = rng.Float64()
		}
		samples = append(samples, Sample{
			Query:  q,
			Plan:   []*treeconv.Tree{randomPlanTree(rng, 1+rng.Intn(6), planDim)},
			Target: 10 + rng.Float64()*1000,
		})
	}
	net.Train(samples, 2, 8, rng)

	queries := make([][]float64, len(samples))
	forests := make([][]*treeconv.Tree, len(samples))
	for i, s := range samples {
		queries[i] = s.Query
		forests[i] = s.Plan
	}
	return net, queries, forests, samples
}

func randomPlanTree(rng *rand.Rand, n, dim int) *treeconv.Tree {
	if n <= 0 {
		return nil
	}
	data := make([]float64, dim)
	for i := range data {
		data[i] = rng.Float64()
	}
	if n == 1 {
		return treeconv.NewLeaf(data)
	}
	nl := rng.Intn(n)
	return treeconv.NewNode(data, randomPlanTree(rng, nl, dim), randomPlanTree(rng, n-1-nl, dim))
}

// TestSnapshotFloat32Parity asserts the float32 snapshot scores within 1e-5
// relative of the float64 snapshot in normalised space, including batch=1.
func TestSnapshotFloat32Parity(t *testing.T) {
	net, queries, forests, _ := precisionFixture(t, 31)
	s64 := net.SnapshotPrecision(PrecisionFloat64, nil)
	s32 := net.SnapshotPrecision(PrecisionFloat32, nil)

	want := s64.PredictBatchNormalized(queries, forests)
	got := s32.PredictBatchNormalized(queries, forests)
	for i := range want {
		rel := math.Abs(got[i]-want[i]) / math.Max(1, math.Abs(want[i]))
		if rel > 1e-5 {
			t.Fatalf("f32 normalised[%d] = %v want %v (rel err %g)", i, got[i], want[i], rel)
		}
	}

	// Batch of one and the single-pair entry points agree with the batch.
	one := s32.PredictBatchNormalized(queries[:1], forests[:1])
	if one[0] != got[0] {
		t.Fatalf("batch=1 diverges: %v vs %v", one[0], got[0])
	}
	if v := s32.PredictNormalized(queries[0], forests[0]); v != got[0] {
		t.Fatalf("PredictNormalized diverges: %v vs %v", v, got[0])
	}
	// Denormalized predictions pass through the same float64 output boundary.
	if p, b := s32.Predict(queries[0], forests[0]), s32.PredictBatch(queries[:1], forests[:1])[0]; p != b {
		t.Fatalf("Predict/PredictBatch diverge: %v vs %v", p, b)
	}
}

// TestSnapshotInt8CalibratedBound asserts int8 scoring tracks float64 within
// the documented calibrated bound (0.05 absolute in normalised log-cost
// space on in-calibration workloads; per-channel activation equalization
// keeps the measured fixture error under 0.02).
func TestSnapshotInt8CalibratedBound(t *testing.T) {
	net, queries, forests, samples := precisionFixture(t, 32)
	s64 := net.SnapshotPrecision(PrecisionFloat64, nil)
	s8 := net.SnapshotPrecision(PrecisionInt8, samples)
	if s8.Precision() != PrecisionInt8 {
		t.Fatalf("precision = %v, want int8", s8.Precision())
	}

	want := s64.PredictBatchNormalized(queries, forests)
	got := s8.PredictBatchNormalized(queries, forests)
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 0.05 {
			t.Fatalf("int8 normalised[%d] = %v want %v (err %g beyond calibrated bound)", i, got[i], want[i], d)
		}
	}
}

// TestSnapshotInt8FallsBackWithoutCalibration asserts an int8 request with no
// calibration samples serves float32 and reports it.
func TestSnapshotInt8FallsBackWithoutCalibration(t *testing.T) {
	net, queries, forests, _ := precisionFixture(t, 33)
	s8 := net.SnapshotPrecision(PrecisionInt8, nil)
	if s8.Precision() != PrecisionFloat32 {
		t.Fatalf("precision = %v, want float32 fallback", s8.Precision())
	}
	if info := s8.Info(); info.Precision != "float32" {
		t.Fatalf("Info().Precision = %q, want float32", info.Precision)
	}
	s32 := net.SnapshotPrecision(PrecisionFloat32, nil)
	a := s8.PredictBatchNormalized(queries, forests)
	b := s32.PredictBatchNormalized(queries, forests)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fallback snapshot diverges from float32 at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSnapshotInfo asserts the footprint report: float64 has no panels,
// float32 panels cost ≈4 bytes/param plus padding, int8 panels are smaller
// than float32's.
func TestSnapshotInfo(t *testing.T) {
	net, _, _, samples := precisionFixture(t, 34)
	i64 := net.SnapshotPrecision(PrecisionFloat64, nil).Info()
	i32 := net.SnapshotPrecision(PrecisionFloat32, nil).Info()
	i8 := net.SnapshotPrecision(PrecisionInt8, samples).Info()

	if i64.Precision != "float64" || i32.Precision != "float32" || i8.Precision != "int8" {
		t.Fatalf("precisions = %q/%q/%q", i64.Precision, i32.Precision, i8.Precision)
	}
	if i64.Parameters != net.NumParameters() || i64.ParamBytes != 8*net.NumParameters() {
		t.Fatalf("param accounting wrong: %+v", i64)
	}
	if i64.PanelBytes != 0 {
		t.Fatalf("float64 snapshot has panel bytes: %d", i64.PanelBytes)
	}
	if i32.PanelBytes == 0 || i8.PanelBytes == 0 {
		t.Fatalf("packed snapshots report no panel bytes: f32=%d i8=%d", i32.PanelBytes, i8.PanelBytes)
	}
	if i8.PanelBytes >= i32.PanelBytes {
		t.Fatalf("int8 panels (%d B) not smaller than float32 panels (%d B)", i8.PanelBytes, i32.PanelBytes)
	}
}

// TestSnapshotFloat32Concurrent hammers one shared float32 snapshot from many
// goroutines (run under -race in CI) and checks every caller sees identical
// scores.
func TestSnapshotFloat32Concurrent(t *testing.T) {
	net, queries, forests, _ := precisionFixture(t, 35)
	s32 := net.SnapshotPrecision(PrecisionFloat32, nil)
	want := s32.PredictBatchNormalized(queries, forests)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got := s32.PredictBatchNormalized(queries, forests)
				for i := range want {
					if got[i] != want[i] {
						errs <- "concurrent PredictBatch diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
