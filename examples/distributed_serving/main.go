// Distributed serving: a trainer, three replicas, a canaried snapshot
// promotion and a trainer outage — the whole snapshot lifecycle in one
// process.
//
// The topology mirrors a production deployment of the learned optimizer:
// stateless neo-serve replicas answer /optimize and /feedback from a
// read-only snapshot while a single neo-trainer aggregates their forwarded
// experience, retrains, and publishes new weights as versioned NEOCKPT1
// containers. Here every daemon runs in-process on httptest listeners so
// the example needs no free ports and no coordination; the CLI equivalent
// is in OPERATIONS.md at the repo root.
//
// Run with:
//
//	go run ./examples/distributed_serving
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"neo/internal/cluster"
	"neo/internal/cluster/proto"
	"neo/internal/serve"
	"neo/pkg/neo"
)

// open assembles one small system. Every member of the tier must share this
// configuration: a snapshot carries weights and experience, but the
// synthetic database is regenerated from the seed, and encoding mismatches
// are rejected at load time.
func open(bootstrap bool) (*neo.System, []*neo.Query, error) {
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.OneHot,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 24,
		Episodes:         1,
		ScorePrecision:   "float32",
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	wl, err := sys.GenerateWorkload(6)
	if err != nil {
		return nil, nil, err
	}
	if bootstrap {
		// Only the trainer bootstraps from the expert; replicas get their
		// weights from its snapshot.
		if err := sys.Bootstrap(wl.Queries[:4]); err != nil {
			return nil, nil, err
		}
	}
	return sys, wl.Queries, nil
}

func spec(q *neo.Query) neo.QuerySpec {
	s := neo.QuerySpec{Relations: q.Relations}
	for _, j := range q.Joins {
		s.Joins = append(s.Joins, neo.JoinSpec{
			Left:  j.LeftTable + "." + j.LeftColumn,
			Right: j.RightTable + "." + j.RightColumn,
		})
	}
	return s
}

func main() {
	// ---- 1. The learner: bootstrap, wrap in a Trainer, serve over HTTP.
	// NewTrainer publishes the bootstrapped weights as snapshot version 1
	// before the first request arrives.
	tsys, queries, err := open(true)
	if err != nil {
		log.Fatal(err)
	}
	defer tsys.Close()
	trainer, err := cluster.NewTrainer(tsys, cluster.TrainerConfig{RetrainEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()
	trainerSrv := httptest.NewServer(trainer)
	v0 := trainer.NetVersion()
	fmt.Printf("trainer up at %s, published snapshot version %d\n", trainerSrv.URL, v0)

	// ---- 2. Three replicas. Each pulls the trainer's snapshot at startup,
	// then serves from it read-only, forwarding /feedback experience.
	var urls []string
	var servers []*serve.Server
	for i := 0; i < 3; i++ {
		rsys, _, err := open(false)
		if err != nil {
			log.Fatal(err)
		}
		defer rsys.Close()
		srv := serve.New(rsys, serve.Config{Replica: &serve.ReplicaConfig{
			TrainerURL: trainerSrv.URL,
			FlushEvery: 20 * time.Millisecond,
		}})
		v, err := srv.SyncSnapshot(context.Background(), 0)
		if err != nil {
			log.Fatal(err)
		}
		srv.Start()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		servers = append(servers, srv)
		urls = append(urls, ts.URL)
		fmt.Printf("replica %d up at %s, serving snapshot version %d\n", i, ts.URL, v)
	}

	// ---- 3. The fleet client: consistent-hash sharding with failover. One
	// query structure always routes to the same replica, so the fleet's plan
	// caches partition the workload.
	fleet, err := neo.NewClient(neo.ClientConfig{Replicas: urls})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range queries[:3] {
		fmt.Printf("query %s routes to %s\n", q.ID, fleet.Route(ptr(spec(q))))
	}

	// ---- 4. Traffic. Feedback flows replica → trainer; at RetrainEvery
	// ingested entries the trainer retrains in the background and publishes
	// the result as a new snapshot version. The replicas keep serving the
	// old version — nothing adopts new weights implicitly.
	for i := 0; trainer.Stats().Retrains == 0; i++ {
		q := queries[i%len(queries)]
		s := spec(q)
		resp, err := fleet.Optimize(ctx, &s)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := fleet.Feedback(ctx, &s, resp.Score, 0); err != nil {
			log.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // let the forwarder flush
	}
	for trainer.NetVersion() == v0 {
		time.Sleep(5 * time.Millisecond)
	}
	target := trainer.NetVersion()
	fmt.Printf("\ntrainer retrained and published version %d (replicas still on %d)\n",
		target, v0)

	// ---- 5. Rollout: canary the new version on the first replica, compare
	// its plan-quality window against the pre-canary baseline, then promote
	// fleet-wide. A regression would roll the canary back instead and bar
	// the version from re-canarying.
	coord := cluster.NewCoordinator(cluster.RolloutConfig{
		Replicas:     urls,
		CanaryWait:   300 * time.Millisecond,
		MinFeedbacks: 1,
	})
	promoted, err := coord.Rollout(nil, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollout of version %d: promoted=%v status=%+v\n", target, promoted, coord.Status())

	// After promotion all replicas serve the same version — and therefore
	// bit-identical plans for identical queries.
	rpc := proto.Client{}
	plans := map[string]bool{}
	for _, u := range urls {
		var st proto.ReplicaStats
		if err := rpc.GetJSON(ctx, u+"/stats", &st); err != nil {
			log.Fatal(err)
		}
		var resp neo.OptimizeResponse
		if err := rpc.PostJSON(ctx, u+"/optimize", spec(queries[0]), &resp); err != nil {
			log.Fatal(err)
		}
		plans[resp.Plan] = true
		fmt.Printf("  %s: version %d, plan %q\n", u, st.NetVersion, resp.Plan)
	}
	fmt.Printf("identical plans across the fleet: %v\n", len(plans) == 1)

	// ---- 6. Trainer outage. Replicas degrade to frozen-snapshot serving:
	// requests keep succeeding on the promoted weights, experience queues
	// (bounded, oldest dropped) until the trainer returns.
	trainerSrv.Close()
	s := spec(queries[1])
	if _, err := fleet.Optimize(ctx, &s); err != nil {
		log.Fatal(err)
	}
	if _, err := fleet.Feedback(ctx, &s, 12, 0); err != nil {
		log.Fatal(err)
	}
	stats := fleet.Stats(ctx)
	for u, st := range stats {
		if st.Cluster != nil {
			fmt.Printf("trainer dead: %s still serving version %d (queued %d, forward errors %d)\n",
				u, st.NetVersion, st.Cluster.Queued, st.Cluster.ForwardErrors)
		}
	}

	// Graceful close: drain the forwarding queue (fails fast here — the
	// trainer is gone) and stop serving.
	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("fleet shut down cleanly")
}

func ptr[T any](v T) *T { return &v }
