package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const gradEps = 1e-5
const gradTol = 1e-3

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(3, 2, rng)
	y := l.Forward([]float64{1, 2, 3})
	if len(y) != 2 {
		t.Fatalf("output length %d, want 2", len(y))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for wrong input size")
		}
	}()
	l.Forward([]float64{1})
}

func TestLinearKnownValues(t *testing.T) {
	l := &Linear{In: 2, Out: 2,
		W: &Param{Value: []float64{1, 2, 3, 4}, Grad: make([]float64, 4)},
		B: &Param{Value: []float64{0.5, -0.5}, Grad: make([]float64, 2)},
	}
	y := l.Forward([]float64{1, 1})
	if math.Abs(y[0]-3.5) > 1e-12 || math.Abs(y[1]-6.5) > 1e-12 {
		t.Errorf("Forward = %v, want [3.5 6.5]", y)
	}
}

// numericalGradCheck verifies Backward against finite differences for a
// scalar loss defined as the sum of outputs.
func numericalGradCheck(t *testing.T, forward func() float64, param []float64, analytic []float64, label string) {
	t.Helper()
	for i := range param {
		orig := param[i]
		param[i] = orig + gradEps
		up := forward()
		param[i] = orig - gradEps
		down := forward()
		param[i] = orig
		numeric := (up - down) / (2 * gradEps)
		if math.Abs(numeric-analytic[i]) > gradTol*(1+math.Abs(numeric)) {
			t.Errorf("%s[%d]: numeric %f vs analytic %f", label, i, numeric, analytic[i])
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(4, 3, rng)
	x := []float64{0.5, -1.2, 2.0, 0.1}
	loss := func() float64 {
		y := l.Forward(x)
		s := 0.0
		for _, v := range y {
			s += v
		}
		return s
	}
	// Analytic gradients with dLoss/dy = 1 for every output.
	y := l.Forward(x)
	gradIn := l.Backward(x, ones(len(y)))
	numericalGradCheck(t, loss, l.W.Value, l.W.Grad, "W")
	numericalGradCheck(t, loss, l.B.Value, l.B.Grad, "B")
	// Input gradient check.
	numericInput := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + gradEps
		up := loss()
		x[i] = orig - gradEps
		down := loss()
		x[i] = orig
		numericInput[i] = (up - down) / (2 * gradEps)
	}
	for i := range x {
		if math.Abs(numericInput[i]-gradIn[i]) > gradTol {
			t.Errorf("input grad[%d]: numeric %f vs analytic %f", i, numericInput[i], gradIn[i])
		}
	}
}

func TestLeakyReLU(t *testing.T) {
	r := NewLeakyReLU()
	x := []float64{-2, 0, 3}
	y := r.Forward(x)
	if y[0] != -2*r.Alpha || y[1] != 0 || y[2] != 3 {
		t.Errorf("Forward = %v", y)
	}
	g := r.Backward(x, []float64{1, 1, 1})
	if g[0] != r.Alpha || g[2] != 1 {
		t.Errorf("Backward = %v", g)
	}
	if r.Params() != nil {
		t.Errorf("LeakyReLU has no params")
	}
}

func TestLayerNormForward(t *testing.T) {
	ln := NewLayerNorm(4)
	y := ln.Forward([]float64{1, 2, 3, 4})
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= 4
	if math.Abs(mean) > 1e-9 {
		t.Errorf("normalised output mean = %f, want 0", mean)
	}
	variance := 0.0
	for _, v := range y {
		variance += (v - mean) * (v - mean)
	}
	variance /= 4
	if math.Abs(variance-1) > 1e-3 {
		t.Errorf("normalised output variance = %f, want ~1", variance)
	}
}

func TestLayerNormGradients(t *testing.T) {
	ln := NewLayerNorm(5)
	// Non-trivial gamma/beta.
	for i := range ln.Gamma.Value {
		ln.Gamma.Value[i] = 0.5 + 0.1*float64(i)
		ln.Beta.Value[i] = -0.2 * float64(i)
	}
	x := []float64{0.3, -1.0, 2.0, 0.7, -0.4}
	loss := func() float64 {
		y := ln.Forward(x)
		s := 0.0
		for i, v := range y {
			s += v * float64(i+1) // weighted sum so the gradient is not uniform
		}
		return s
	}
	grads := []float64{1, 2, 3, 4, 5}
	gradIn := ln.Backward(x, grads)
	numericalGradCheck(t, loss, ln.Gamma.Value, ln.Gamma.Grad, "gamma")
	numericalGradCheck(t, loss, ln.Beta.Value, ln.Beta.Grad, "beta")
	numericInput := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + gradEps
		up := loss()
		x[i] = orig - gradEps
		down := loss()
		x[i] = orig
		numericInput[i] = (up - down) / (2 * gradEps)
	}
	for i := range x {
		if math.Abs(numericInput[i]-gradIn[i]) > gradTol {
			t.Errorf("input grad[%d]: numeric %f vs analytic %f", i, numericInput[i], gradIn[i])
		}
	}
}

func TestL2Loss(t *testing.T) {
	loss, grad := L2Loss(3, 1)
	if loss != 2 || grad != 2 {
		t.Errorf("L2Loss(3,1) = %f, %f; want 2, 2", loss, grad)
	}
	loss, grad = L2Loss(1, 1)
	if loss != 0 || grad != 0 {
		t.Errorf("L2Loss(1,1) = %f, %f; want 0, 0", loss, grad)
	}
	// Property: loss is non-negative and grad has the sign of pred-target.
	f := func(p, tg float64) bool {
		p = math.Mod(p, 1e6)
		tg = math.Mod(tg, 1e6)
		l, g := L2Loss(p, tg)
		return l >= 0 && (g == 0 || (g > 0) == (p > tg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMLPForwardBackwardGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{4, 8, 3}, true, rng)
	x := []float64{0.1, -0.5, 0.7, 0.2}
	loss := func() float64 {
		tape := m.Forward(x)
		s := 0.0
		for _, v := range tape.Output() {
			s += v
		}
		return s
	}
	tape := m.Forward(x)
	if len(tape.Output()) != 3 {
		t.Fatalf("output size %d, want 3", len(tape.Output()))
	}
	m.Backward(tape, ones(3))
	for _, p := range m.Params() {
		numericalGradCheck(t, loss, p.Value, p.Grad, p.Name)
	}
}

func TestAdamReducesLossOnRegression(t *testing.T) {
	// Learn y = 2a - 3b + 1 from samples.
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{2, 16, 1}, false, rng)
	opt := NewAdam(0.01)
	target := func(a, b float64) float64 { return 2*a - 3*b + 1 }
	var firstLoss, lastLoss float64
	for epoch := 0; epoch < 300; epoch++ {
		total := 0.0
		const batch = 16
		for i := 0; i < batch; i++ {
			a, b := rng.Float64()*2-1, rng.Float64()*2-1
			tape := m.Forward([]float64{a, b})
			loss, grad := L2Loss(tape.Output()[0], target(a, b))
			total += loss
			m.Backward(tape, []float64{grad})
		}
		opt.Step(m.Params(), batch)
		if epoch == 0 {
			firstLoss = total / batch
		}
		lastLoss = total / batch
	}
	if lastLoss > firstLoss*0.05 {
		t.Errorf("Adam failed to reduce loss: first %f, last %f", firstLoss, lastLoss)
	}
	// Check a prediction.
	tape := m.Forward([]float64{0.5, -0.5})
	want := target(0.5, -0.5)
	if math.Abs(tape.Output()[0]-want) > 0.3 {
		t.Errorf("prediction %f too far from %f", tape.Output()[0], want)
	}
}

func TestAdamStepClearsGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(2, 2, rng)
	l.Backward([]float64{1, 1}, []float64{1, 1})
	opt := NewAdam(0.001)
	opt.Step(l.Params(), 1)
	for _, p := range l.Params() {
		for i, g := range p.Grad {
			if g != 0 {
				t.Fatalf("%s grad[%d] not cleared: %f", p.Name, i, g)
			}
		}
	}
}

func TestMLPPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for too-short size list")
		}
	}()
	NewMLP([]int{4}, false, rand.New(rand.NewSource(1)))
}

func TestConcat(t *testing.T) {
	got := Concat([]float64{1, 2}, nil, []float64{3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Concat = %v", got)
	}
}

func TestMeanStdEmpty(t *testing.T) {
	m, s := meanStd(nil, 1e-5)
	if m != 0 || s != 1 {
		t.Errorf("meanStd(nil) = %f, %f", m, s)
	}
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP([]int{64, 128, 64, 32, 1}, true, rng)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tape := m.Forward(x)
		m.Backward(tape, []float64{1})
	}
}
