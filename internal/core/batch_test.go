package core

import (
	"math"
	"testing"

	"neo/internal/search"
)

// TestScorerBatchMatchesSequential checks end-to-end scorer parity with the
// real value network: BestFirst driven by the batched netScorer must return
// the identical plan signature, score and search effort as BestFirst driven
// by the same network scored one plan at a time.
func TestScorerBatchMatchesSequential(t *testing.T) {
	rig := newRig(t, "postgres")
	queries := rig.wl.Queries[:6]
	if err := rig.neo.Bootstrap(queries, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}

	opts := search.Options{Catalog: rig.feat.Catalog, MaxExpansions: rig.neo.Config.SearchExpansions}
	for _, q := range queries {
		batched := rig.neo.Scorer(q)
		perPlan, ok := batched.(search.Scorer)
		if !ok {
			t.Fatal("Neo's scorer no longer implements the per-plan interface")
		}
		// Sequential path: the same network, scored one plan per call.
		sequential := search.ScorerFunc(perPlan.Score)

		bres, err := search.BestFirst(q, batched, opts)
		if err != nil {
			t.Fatalf("batched search on %s: %v", q.ID, err)
		}
		sres, err := search.BestFirst(q, sequential, opts)
		if err != nil {
			t.Fatalf("sequential search on %s: %v", q.ID, err)
		}
		if bres.Plan.Signature() != sres.Plan.Signature() {
			t.Errorf("query %s: plan signatures differ\nbatched:    %s\nsequential: %s",
				q.ID, bres.Plan.Signature(), sres.Plan.Signature())
		}
		if math.Abs(bres.Score-sres.Score) > 1e-9 {
			t.Errorf("query %s: scores differ: batched %v, sequential %v", q.ID, bres.Score, sres.Score)
		}
		if bres.Expansions != sres.Expansions || bres.Evaluations != sres.Evaluations {
			t.Errorf("query %s: effort differs: batched (%d, %d), sequential (%d, %d)",
				q.ID, bres.Expansions, bres.Evaluations, sres.Expansions, sres.Evaluations)
		}
	}
}
