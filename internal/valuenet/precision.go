// Scoring precision. Training always runs in float64; a Snapshot — the
// frozen network the search path scores plans against — can additionally be
// published in float32 or int8 form. The conversion happens exactly once, at
// snapshot time: weights are re-packed into the tiled-GEMM panels of
// internal/nn (and, for int8, quantized symmetrically per output channel with
// activation scales fixed by a calibration pass over recorded featurizations),
// and the scoring pipeline then never touches float64 between the
// input-encode boundary (query/plan vectors → float32 batch rows) and the
// output boundary (normalised prediction → float64 denormalization).
//
// Precision is snapshot-only state: the float64 master weights are carried
// unchanged inside every snapshot (they are what checkpoints save), so
// serving float32 or int8 never perturbs training or persistence.
package valuenet

import (
	"fmt"
	"sync"

	"neo/internal/nn"
	"neo/internal/treeconv"
)

// Precision selects the numeric format a snapshot scores with.
type Precision uint8

const (
	// PrecisionFloat64 scores with the float64 training kernels (exact).
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 scores with the packed float32 tiled-GEMM kernels.
	PrecisionFloat32
	// PrecisionInt8 scores with symmetric per-channel int8 quantized kernels
	// (int32 accumulation), calibrated at snapshot time. Without calibration
	// samples the snapshot falls back to float32.
	PrecisionInt8
)

// String returns the canonical flag spelling.
func (p Precision) String() string {
	switch p {
	case PrecisionFloat32:
		return "float32"
	case PrecisionInt8:
		return "int8"
	default:
		return "float64"
	}
}

// ParsePrecision parses a -score-precision flag value. The empty string means
// float64 (the exact, historical behaviour).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float64", "f64":
		return PrecisionFloat64, nil
	case "float32", "f32":
		return PrecisionFloat32, nil
	case "int8", "i8":
		return PrecisionInt8, nil
	}
	return PrecisionFloat64, fmt.Errorf("valuenet: unknown score precision %q (want float64, float32 or int8)", s)
}

// netF32 is the packed float32 form of a network's three towers.
type netF32 struct {
	qmlp *nn.MLPF32
	conv *treeconv.StackF32
	head *nn.MLPF32
}

// netI8 is the quantized int8 form.
type netI8 struct {
	qmlp *nn.MLPI8
	conv *treeconv.StackI8
	head *nn.MLPI8
}

// SnapshotInfo describes a snapshot's scoring precision and memory footprint.
type SnapshotInfo struct {
	// Precision is the numeric format scoring actually runs in ("float64",
	// "float32" or "int8" — an int8 request without calibration samples
	// reports "float32").
	Precision string `json:"precision"`
	// Parameters is the number of scalar parameters of the frozen network.
	Parameters int `json:"parameters"`
	// ParamBytes is the float64 master copy's parameter footprint.
	ParamBytes int `json:"param_bytes"`
	// PanelBytes is the footprint of the packed/quantized inference panels
	// (0 for a float64 snapshot, which scores with the master weights).
	PanelBytes int `json:"panel_bytes"`
}

// Info reports the snapshot's precision and footprint.
func (s *Snapshot) Info() SnapshotInfo {
	info := SnapshotInfo{
		Precision:  s.prec.String(),
		Parameters: s.net.NumParameters(),
	}
	info.ParamBytes = 8 * info.Parameters
	if s.f32 != nil {
		info.PanelBytes += s.f32.qmlp.Bytes() + s.f32.conv.Bytes() + s.f32.head.Bytes()
	}
	if s.i8 != nil {
		info.PanelBytes += s.i8.qmlp.Bytes() + s.i8.conv.Bytes() + s.i8.head.Bytes()
	}
	return info
}

// Precision returns the numeric format scoring runs in.
func (s *Snapshot) Precision() Precision { return s.prec }

// SnapshotPrecision deep-copies the network like Snapshot and additionally
// converts the frozen weights for the requested scoring precision. For
// PrecisionInt8 the calib samples drive the activation-scale calibration
// (absmax over a float32 forward pass of every sample); with no samples the
// snapshot serves float32 instead — Info().Precision reports what is actually
// served. Like Snapshot, call it only while no training round is mutating
// the weights.
func (n *Network) SnapshotPrecision(p Precision, calib []Sample) *Snapshot {
	s := &Snapshot{net: n.Clone(), prec: PrecisionFloat64}
	if p == PrecisionFloat64 {
		return s
	}
	s.f32 = &netF32{
		qmlp: nn.NewMLPF32(s.net.qmlp),
		conv: treeconv.NewStackF32(s.net.conv),
		head: nn.NewMLPF32(s.net.head),
	}
	s.prec = PrecisionFloat32
	if p != PrecisionInt8 || len(calib) == 0 {
		return s
	}
	qAbs := make([][]float32, len(s.net.qmlp.Linears))
	for i, lin := range s.net.qmlp.Linears {
		qAbs[i] = make([]float32, lin.In)
	}
	convAbs := make([][]float32, len(s.net.conv.Layers))
	for i, l := range s.net.conv.Layers {
		convAbs[i] = make([]float32, l.InChannels)
	}
	headAbs := make([][]float32, len(s.net.head.Linears))
	for i, lin := range s.net.head.Linears {
		headAbs[i] = make([]float32, lin.In)
	}
	queries := make([][]float64, len(calib))
	forests := make([][]*treeconv.Tree, len(calib))
	for i, c := range calib {
		queries[i] = c.Query
		forests[i] = c.Plan
	}
	s.forward32(queries, forests, qAbs, convAbs, headAbs)
	s.i8 = &netI8{
		qmlp: nn.NewMLPI8(s.net.qmlp, qAbs),
		conv: treeconv.NewStackI8(s.net.conv, convAbs),
		head: nn.NewMLPI8(s.net.head, headAbs),
	}
	s.f32 = nil
	s.prec = PrecisionInt8
	return s
}

// batchScratch32 is the reusable per-call state of the float32/int8 batched
// forward, mirroring batchScratch.
type batchScratch32 struct {
	conv    treeconv.BatchScratch32
	builder treeconv.BatchBuilder32
	qVecs   [][]float64
	qIndex  []int
	qFlat   []float32
}

var scratch32Pool = sync.Pool{New: func() interface{} { return &batchScratch32{} }}

// forward32 runs the reduced-precision batched forward pass (float32 panels,
// or int8 when the snapshot was quantized) and returns normalised
// predictions as float64 — the output boundary of the pipeline. The three
// per-channel observer slices are non-nil only during calibration.
func (s *Snapshot) forward32(queries [][]float64, forests [][]*treeconv.Tree, qAbs, convAbs, headAbs [][]float32) []float64 {
	rows := len(queries)
	if rows == 0 {
		return nil
	}
	net := s.net
	st := scratch32Pool.Get().(*batchScratch32)
	defer func() {
		st.conv.Reset()
		scratch32Pool.Put(st)
	}()
	arena := &st.conv.Arena

	// Deduplicate query vectors by slice identity, exactly as the float64
	// batched path does: plan search scores many candidates of one query, so
	// the query tower runs once per distinct query.
	st.qVecs = st.qVecs[:0]
	if cap(st.qIndex) < rows {
		st.qIndex = make([]int, rows)
	}
	st.qIndex = st.qIndex[:rows]
	for si, q := range queries {
		idx := -1
		for u, uq := range st.qVecs {
			if len(uq) == len(q) && (len(q) == 0 || &uq[0] == &q[0]) {
				idx = u
				break
			}
		}
		if idx < 0 {
			idx = len(st.qVecs)
			st.qVecs = append(st.qVecs, q)
		}
		st.qIndex[si] = idx
	}
	st.qFlat = st.qFlat[:0]
	for _, q := range st.qVecs {
		if len(q) != net.queryDim {
			panic("valuenet: PredictBatch query vector dimension mismatch")
		}
		for _, v := range q {
			st.qFlat = append(st.qFlat, float32(v))
		}
	}
	var g []float32
	if s.i8 != nil {
		g = s.i8.qmlp.ForwardBatch(st.qFlat, len(st.qVecs), arena, &st.conv.QArena)
	} else if qAbs != nil {
		g = s.f32.qmlp.ForwardBatchObserve(st.qFlat, len(st.qVecs), arena, qAbs)
	} else {
		g = s.f32.qmlp.ForwardBatch(st.qFlat, len(st.qVecs), arena)
	}
	qOut := len(g) / len(st.qVecs)

	channels := net.planDim + qOut
	batch := st.builder.Build(forests, channels, func(sample int, node *treeconv.Tree, row []float32) {
		if len(node.Data) != net.planDim {
			panic("valuenet: PredictBatch plan vector dimension mismatch")
		}
		for i, v := range node.Data {
			row[i] = float32(v)
		}
		copy(row[net.planDim:], g[st.qIndex[sample]*qOut:(st.qIndex[sample]+1)*qOut])
	})

	var conv *treeconv.Batch32
	switch {
	case s.i8 != nil:
		conv = s.i8.conv.ForwardBatch(batch, &st.conv)
	case convAbs != nil:
		conv = s.f32.conv.ForwardBatchObserve(batch, &st.conv, convAbs)
	default:
		conv = s.f32.conv.ForwardBatch(batch, &st.conv)
	}
	pooled := treeconv.PoolBatch32(conv, arena)
	var head []float32
	if s.i8 != nil {
		head = s.i8.head.ForwardBatch(pooled, rows, arena, &st.conv.QArena)
	} else if headAbs != nil {
		head = s.f32.head.ForwardBatchObserve(pooled, rows, arena, headAbs)
	} else {
		head = s.f32.head.ForwardBatch(pooled, rows, arena)
	}

	out := make([]float64, rows)
	for i := range out {
		out[i] = float64(head[i])
	}
	return out
}
