package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"neo/internal/engine"
	"neo/internal/feature"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/search"
	"neo/internal/treeconv"
	"neo/internal/valuenet"
)

// CostFunction selects what the value network minimises (Section 4 /
// Section 6.4.4 of the paper).
type CostFunction int

const (
	// WorkloadCost minimises total latency across the workload:
	// C(Pf) = L(Pf).
	WorkloadCost CostFunction = iota
	// RelativeCost minimises latency relative to a per-query baseline:
	// C(Pf) = L(Pf) / Base(q), penalising regressions on individual queries.
	RelativeCost
)

// String implements fmt.Stringer.
func (c CostFunction) String() string {
	if c == RelativeCost {
		return "relative"
	}
	return "workload"
}

// Config holds Neo's hyperparameters.
type Config struct {
	// ValueNet configures the value-network architecture.
	ValueNet valuenet.Config
	// SearchExpansions is the node-expansion budget of the plan search
	// (the analogue of the paper's 250 ms cutoff).
	SearchExpansions int
	// TrainEpochs is the number of passes over the training samples per
	// retraining round.
	TrainEpochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// MaxTrainSamples caps the number of training samples used per
	// retraining round (a uniform subsample is taken when the experience
	// grows beyond it). Zero means no cap.
	MaxTrainSamples int
	// Cost selects the optimisation objective.
	Cost CostFunction
	// Seed seeds plan-search tie-breaking and minibatch shuffling.
	Seed int64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		ValueNet:         valuenet.DefaultConfig(),
		SearchExpansions: 256,
		TrainEpochs:      10,
		BatchSize:        16,
		MaxTrainSamples:  3000,
		Cost:             WorkloadCost,
		Seed:             1,
	}
}

// Neo is the learned optimizer: it featurizes queries, maintains experience,
// trains the value network, and searches for plans with it.
type Neo struct {
	Engine     *engine.Engine
	Featurizer *feature.Featurizer
	Net        *valuenet.Network
	Experience *Experience
	Config     Config

	rng *rand.Rand
	// Baseline latencies per query (used by RelativeCost and by the
	// normalised-latency metrics the figures report).
	baseline map[string]float64
	// queryEncCache caches query-level encodings (they never change);
	// encMu guards it so concurrent planners (pkg/neo's PlanAll) can share
	// one Neo instance.
	encMu         sync.Mutex
	queryEncCache map[string][]float64
	// Accumulated wall-clock time spent training the network, used by the
	// Figure 11 training-time breakdown.
	trainTime time.Duration
}

// New creates a Neo instance bound to a target engine and featurizer.
func New(eng *engine.Engine, feat *feature.Featurizer, cfg Config) *Neo {
	if cfg.SearchExpansions == 0 {
		cfg = DefaultConfig()
	}
	net := valuenet.New(feat.QueryVectorSize(), feat.PlanVectorSize(), cfg.ValueNet)
	return &Neo{
		Engine:        eng,
		Featurizer:    feat,
		Net:           net,
		Experience:    NewExperience(),
		Config:        cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		baseline:      make(map[string]float64),
		queryEncCache: make(map[string][]float64),
	}
}

// TrainingTime returns the cumulative wall-clock time spent training the
// value network.
func (n *Neo) TrainingTime() time.Duration { return n.trainTime }

// SetBaseline records the per-query baseline latencies used by the
// RelativeCost objective and by normalised reporting (typically the latency
// of the expert's plan on the target engine).
func (n *Neo) SetBaseline(id string, latency float64) {
	if latency > 0 {
		n.baseline[id] = latency
	}
}

// Baseline returns the baseline latency for a query (and whether one is set).
func (n *Neo) Baseline(id string) (float64, bool) {
	v, ok := n.baseline[id]
	return v, ok
}

// cost converts an experience entry's latency into the configured cost.
func (n *Neo) cost(e Entry) float64 {
	if n.Config.Cost == RelativeCost {
		if base, ok := n.baseline[e.Query.ID]; ok && base > 0 {
			return e.Latency / base
		}
	}
	return e.Latency
}

// encodeQuery caches query-level encodings. Safe for concurrent use.
func (n *Neo) encodeQuery(q *query.Query) []float64 {
	n.encMu.Lock()
	defer n.encMu.Unlock()
	if enc, ok := n.queryEncCache[q.ID]; ok {
		return enc
	}
	enc := n.Featurizer.EncodeQuery(q)
	n.queryEncCache[q.ID] = enc
	return enc
}

// Bootstrap collects demonstration experience from an expert optimizer
// (Section 2, "Expertise Collection"): each training query's expert plan is
// executed on the target engine, the plan/latency pair is added to the
// experience, and the latency is recorded as the query's baseline. It then
// trains the value network on the collected demonstrations.
func (n *Neo) Bootstrap(queries []*query.Query, expert func(*query.Query) (*plan.Plan, error)) error {
	for _, q := range queries {
		p, err := expert(q)
		if err != nil {
			return fmt.Errorf("core: expert failed on query %s: %w", q.ID, err)
		}
		lat, _, err := n.Engine.Execute(p)
		if err != nil {
			return fmt.Errorf("core: executing expert plan for %s: %w", q.ID, err)
		}
		n.Experience.Add(q, p, lat)
		n.SetBaseline(q.ID, lat)
	}
	n.Retrain()
	return nil
}

// Explore executes additional (typically randomly generated) plans for the
// given queries and adds them to the experience, then retrains. Executing a
// handful of alternative plans per query alongside the expert demonstration
// gives the value network within-query contrast — it sees both good and bad
// plans for the same query — which substantially improves early plan ranking
// when the training workload is small. (The paper collects only the expert
// plan per query; this is an optional enrichment, enabled by default in the
// experiment harness and documented in DESIGN.md.)
func (n *Neo) Explore(queries []*query.Query, planner func(*query.Query) *plan.Plan, perQuery int) error {
	if perQuery <= 0 {
		return nil
	}
	for _, q := range queries {
		for i := 0; i < perQuery; i++ {
			p := planner(q)
			if p == nil || !p.IsComplete() {
				continue
			}
			lat, _, err := n.Engine.Execute(p)
			if err != nil {
				return fmt.Errorf("core: exploring plan for %s: %w", q.ID, err)
			}
			n.Experience.Add(q, p, lat)
		}
	}
	n.Retrain()
	return nil
}

// BootstrapFromPlans is Bootstrap for pre-computed expert plans.
func (n *Neo) BootstrapFromPlans(plans []*plan.Plan) error {
	for _, p := range plans {
		lat, _, err := n.Engine.Execute(p)
		if err != nil {
			return fmt.Errorf("core: executing expert plan for %s: %w", p.Query.ID, err)
		}
		n.Experience.Add(p.Query, p, lat)
		n.SetBaseline(p.Query.ID, lat)
	}
	n.Retrain()
	return nil
}

// trainingSamples converts the experience into value-network training
// samples: for every stored complete plan, the plan itself plus the partial
// plans along its bottom-up construction, each labelled with the minimum
// cost of any experienced complete plan that contains it.
func (n *Neo) trainingSamples() []valuenet.Sample {
	var samples []valuenet.Sample
	for _, entry := range n.Experience.Entries() {
		qEnc := n.encodeQuery(entry.Query)
		for _, partial := range constructionStates(entry.Plan) {
			target, ok := n.Experience.MinCostContaining(partial, n.cost)
			if !ok {
				target = n.cost(entry)
			}
			samples = append(samples, valuenet.Sample{
				Query:  qEnc,
				Plan:   n.Featurizer.EncodePlan(partial),
				Target: target,
			})
		}
	}
	return samples
}

// constructionStates returns the sequence of partial plans that build up to
// the complete plan p: the initial all-unspecified state, the all-leaves
// state, every intermediate forest produced by applying p's joins bottom-up,
// and finally p itself.
func constructionStates(p *plan.Plan) []*plan.Plan {
	if !p.IsComplete() {
		return []*plan.Plan{p}
	}
	var states []*plan.Plan
	states = append(states, plan.Initial(p.Query))

	// Collect p's join nodes ordered by subtree size (bottom-up).
	var joins []*plan.Node
	p.Roots[0].Walk(func(node *plan.Node) {
		if !node.IsLeaf() {
			joins = append(joins, node)
		}
	})
	// Sort by number of nodes ascending so children come before parents.
	for i := 0; i < len(joins); i++ {
		for j := i + 1; j < len(joins); j++ {
			if joins[j].NumNodes() < joins[i].NumNodes() {
				joins[i], joins[j] = joins[j], joins[i]
			}
		}
	}

	// Start from the forest of specified leaves.
	var leaves []*plan.Node
	p.Roots[0].Walk(func(node *plan.Node) {
		if node.IsLeaf() {
			leaves = append(leaves, node.Clone())
		}
	})
	current := map[string]*plan.Node{}
	for _, l := range leaves {
		current[l.Table] = l
	}
	forest := func() []*plan.Node {
		out := make([]*plan.Node, 0, len(current))
		seen := map[*plan.Node]bool{}
		for _, node := range current {
			if !seen[node] {
				seen[node] = true
				out = append(out, node)
			}
		}
		return out
	}
	states = append(states, &plan.Plan{Query: p.Query, Roots: forest()})

	for _, j := range joins {
		// Build the joined subtree from the current forest roots covering
		// the left and right table sets.
		leftTables := j.Left.Tables()
		rightTables := j.Right.Tables()
		leftRoot := current[leftTables[0]]
		rightRoot := current[rightTables[0]]
		joined := plan.Join2(j.Join, leftRoot, rightRoot)
		for _, t := range append(leftTables, rightTables...) {
			current[t] = joined
		}
		states = append(states, &plan.Plan{Query: p.Query, Roots: forest()})
	}
	return states
}

// Retrain rebuilds the training set from the experience and (re)trains the
// value network. It returns the final training loss.
func (n *Neo) Retrain() float64 {
	samples := n.trainingSamples()
	if len(samples) == 0 {
		return 0
	}
	if n.Config.MaxTrainSamples > 0 && len(samples) > n.Config.MaxTrainSamples {
		n.rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		samples = samples[:n.Config.MaxTrainSamples]
	}
	start := time.Now()
	loss := n.Net.Train(samples, n.Config.TrainEpochs, n.Config.BatchSize, n.rng)
	n.trainTime += time.Since(start)
	return loss
}

// netScorer scores plans for one query with the value network. ScoreBatch —
// the search hot path — encodes every plan of the batch and runs one shared
// batched forward pass; all plans share the query's cached encoding, so the
// network's query tower runs once per batch.
type netScorer struct {
	net  *valuenet.Network
	feat *feature.Featurizer
	qEnc []float64

	// queries/forests are reused across ScoreBatch calls.
	queries [][]float64
	forests [][]*treeconv.Tree
}

// ScoreBatch implements search.BatchScorer.
func (s *netScorer) ScoreBatch(ps []*plan.Plan) []float64 {
	s.queries = s.queries[:0]
	s.forests = s.forests[:0]
	for _, p := range ps {
		s.queries = append(s.queries, s.qEnc)
		s.forests = append(s.forests, s.feat.EncodePlan(p))
	}
	return s.net.PredictBatch(s.queries, s.forests)
}

// Score implements search.Scorer (a batch of one).
func (s *netScorer) Score(p *plan.Plan) float64 {
	return s.ScoreBatch([]*plan.Plan{p})[0]
}

// Scorer returns the batched value-network scorer for the given query; it
// implements both search.BatchScorer (the primary contract) and
// search.Scorer. Each returned scorer carries its own scratch state, so
// concurrent searches over the shared network use separate Scorer instances
// (see pkg/neo's PlanAll).
func (n *Neo) Scorer(q *query.Query) search.BatchScorer {
	return &netScorer{net: n.Net, feat: n.Featurizer, qEnc: n.encodeQuery(q)}
}

// Optimize searches for the best plan for q using the current value network.
func (n *Neo) Optimize(q *query.Query) (*plan.Plan, *search.Result, error) {
	opts := search.Options{
		Catalog:       n.Featurizer.Catalog,
		MaxExpansions: n.Config.SearchExpansions,
	}
	res, err := search.BestFirst(q, n.Scorer(q), opts)
	if err != nil {
		return nil, nil, err
	}
	return res.Plan, res, nil
}

// OptimizeGreedy builds a plan greedily (the "hurry-up"/Q-learning-style
// ablation of Section 4.2).
func (n *Neo) OptimizeGreedy(q *query.Query) (*plan.Plan, *search.Result, error) {
	opts := search.Options{Catalog: n.Featurizer.Catalog}
	res, err := search.Greedy(q, n.Scorer(q), opts)
	if err != nil {
		return nil, nil, err
	}
	return res.Plan, res, nil
}

// EpisodeStats summarises one training episode.
type EpisodeStats struct {
	// Episode is the 1-based episode number.
	Episode int
	// TotalLatency is the summed latency of the plans chosen this episode.
	TotalLatency float64
	// NormalizedLatency is TotalLatency divided by the summed baseline
	// latency of the same queries (the paper's "normalized latency", where
	// 1.0 equals the baseline optimizer).
	NormalizedLatency float64
	// TrainLoss is the value-network loss after retraining.
	TrainLoss float64
	// QueryLatencies maps query ID to the latency of the plan Neo chose.
	QueryLatencies map[string]float64
}

// RunEpisode performs one full training episode (Section 6.3.1): for every
// training query, search for a plan with the current value network, execute
// it on the engine, add the plan/latency pair to the experience, and finally
// retrain the network.
func (n *Neo) RunEpisode(episode int, queries []*query.Query) (*EpisodeStats, error) {
	stats := &EpisodeStats{Episode: episode, QueryLatencies: make(map[string]float64)}
	shuffled := append([]*query.Query(nil), queries...)
	n.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	baseTotal := 0.0
	for _, q := range shuffled {
		p, _, err := n.Optimize(q)
		if err != nil {
			return nil, fmt.Errorf("core: episode %d query %s: %w", episode, q.ID, err)
		}
		lat, _, err := n.Engine.Execute(p)
		if err != nil {
			return nil, fmt.Errorf("core: episode %d executing plan for %s: %w", episode, q.ID, err)
		}
		n.Experience.Add(q, p, lat)
		stats.TotalLatency += lat
		stats.QueryLatencies[q.ID] = lat
		if base, ok := n.baseline[q.ID]; ok {
			baseTotal += base
		} else {
			baseTotal += lat
		}
	}
	if baseTotal > 0 {
		stats.NormalizedLatency = stats.TotalLatency / baseTotal
	}
	stats.TrainLoss = n.Retrain()
	return stats, nil
}

// Evaluate optimizes and executes each query without adding the results to
// the experience (held-out evaluation). It returns the total latency and the
// per-query latencies.
func (n *Neo) Evaluate(queries []*query.Query) (float64, map[string]float64, error) {
	perQuery := make(map[string]float64, len(queries))
	total := 0.0
	for _, q := range queries {
		p, _, err := n.Optimize(q)
		if err != nil {
			return 0, nil, err
		}
		lat, _, err := n.Engine.Execute(p)
		if err != nil {
			return 0, nil, err
		}
		perQuery[q.ID] = lat
		total += lat
	}
	return total, perQuery, nil
}

// PredictNormalized exposes the raw value-network output for a plan of a
// query (used by the Figure 14 robustness analysis).
func (n *Neo) PredictNormalized(q *query.Query, p *plan.Plan) float64 {
	return n.Net.PredictNormalized(n.encodeQuery(q), n.Featurizer.EncodePlan(p))
}

// EncodePlanTrees is a convenience wrapper exposing the featurizer's plan
// encoding (useful for analysis tools and tests).
func (n *Neo) EncodePlanTrees(p *plan.Plan) []*treeconv.Tree {
	return n.Featurizer.EncodePlan(p)
}
