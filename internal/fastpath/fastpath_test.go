package fastpath

import (
	"testing"

	"neo/internal/datagen"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/storage"
)

func fiveWayQuery() *query.Query {
	return query.New("five",
		[]string{"title", "movie_keyword", "keyword", "movie_info", "info_type"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "info_type_id", RightTable: "info_type", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
		})
}

// leftmostLeaf returns the first relation of a left-deep pipeline.
func leftmostLeaf(n *plan.Node) *plan.Node {
	for !n.IsLeaf() {
		n = n.Left
	}
	return n
}

func TestVisibleSelectivity(t *testing.T) {
	q := query.New("sel", []string{"t"}, nil, []query.Predicate{
		{Table: "t", Column: "a", Op: query.Eq, Value: storage.IntValue(1)},
		{Table: "t", Column: "b", Op: query.Lt, Value: storage.IntValue(9)},
		{Table: "other", Column: "c", Op: query.Ne, Value: storage.IntValue(0)},
	})
	if got, want := VisibleSelectivity(q, "t"), selEq*selRange; got != want {
		t.Errorf("VisibleSelectivity(t) = %v, want %v", got, want)
	}
	if got := VisibleSelectivity(q, "unfiltered"); got != 1.0 {
		t.Errorf("VisibleSelectivity(unfiltered) = %v, want 1", got)
	}
	// The ranking, not the absolute values, is what ordering decisions use.
	if !(selEq < selLike && selLike < selRange && selRange < selNe && selNe < 1.0) {
		t.Errorf("selectivity weights out of order: eq=%v like=%v range=%v ne=%v", selEq, selLike, selRange, selNe)
	}
}

func TestProvablyEmpty(t *testing.T) {
	pred := func(col string, op query.CmpOp, v storage.Value) query.Predicate {
		return query.Predicate{Table: "t", Column: col, Op: op, Value: v}
	}
	cases := []struct {
		name  string
		preds []query.Predicate
		want  bool
	}{
		{"two equalities disagree", []query.Predicate{
			pred("a", query.Eq, storage.IntValue(3)), pred("a", query.Eq, storage.IntValue(5))}, true},
		{"equality meets its negation", []query.Predicate{
			pred("a", query.Eq, storage.IntValue(3)), pred("a", query.Ne, storage.IntValue(3))}, true},
		{"disjoint ranges", []query.Predicate{
			pred("a", query.Lt, storage.IntValue(10)), pred("a", query.Gt, storage.IntValue(20))}, true},
		{"touching ranges, strict", []query.Predicate{
			pred("a", query.Lt, storage.IntValue(10)), pred("a", query.Gt, storage.IntValue(10))}, true},
		{"touching ranges, inclusive", []query.Predicate{
			pred("a", query.Le, storage.IntValue(10)), pred("a", query.Ge, storage.IntValue(10))}, false},
		{"consistent range and equality", []query.Predicate{
			pred("a", query.Eq, storage.IntValue(5)), pred("a", query.Lt, storage.IntValue(10))}, false},
		{"different columns never conflict", []query.Predicate{
			pred("a", query.Eq, storage.IntValue(3)), pred("b", query.Eq, storage.IntValue(5))}, false},
		{"LIKE carries no ordering", []query.Predicate{
			pred("a", query.Eq, storage.StringValue("x")), pred("a", query.Like, storage.StringValue("y%"))}, false},
	}
	for _, tc := range cases {
		q := query.New("t", []string{"t"}, nil, tc.preds)
		if got := ProvablyEmpty(q, "t"); got != tc.want {
			t.Errorf("%s: ProvablyEmpty = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPlanConnectedFiveWay(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	res, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsComplete() {
		t.Fatalf("plan incomplete: %s", res.Plan)
	}
	if res.Steps != len(q.Relations)-1 {
		t.Errorf("Steps = %d, want %d (one ordering decision per join)", res.Steps, len(q.Relations)-1)
	}
	if res.CrossProducts != 0 {
		t.Errorf("connected query planned with %d cross products: %s", res.CrossProducts, res.Plan)
	}
	if res.EmptyDetected {
		t.Errorf("no contradiction in the query, but EmptyDetected is set")
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed should be positive")
	}
	root := res.Plan.Roots[0]
	// The pipeline seeds at the most selective relation — keyword carries the
	// only (equality) predicate — and its first attach is an index-nested-
	// loop into movie_keyword: the outer is still a sliver of a base
	// relation and the join column is indexed.
	loops, hashes := 0, 0
	var seedJoin *plan.Node
	root.Walk(func(n *plan.Node) {
		if n.IsLeaf() {
			return
		}
		switch n.Join {
		case plan.LoopJoin:
			loops++
			seedJoin = n
		case plan.HashJoin:
			hashes++
		}
	})
	if loops != 1 || seedJoin.Left.Table != "keyword" ||
		seedJoin.Right.Table != "movie_keyword" || seedJoin.Right.Scan != plan.IndexScan {
		t.Errorf("expected one index-nested-loop seeding keyword→movie_keyword, got %s", res.Plan)
	}
	// Every later attach happens after the estimated pipeline has outgrown
	// the index-nested-loop regime, so it becomes a hash join — with the
	// (filtered, smaller) pipeline on the build side while it stays smaller
	// than the fresh base relation.
	if hashes != 3 {
		t.Errorf("expected 3 hash joins after the pipeline grew, got %d: %s", hashes, res.Plan)
	}
}

func TestPlanEmptyDetectedLeadsWithEmptyRelation(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := query.New("contradiction",
		[]string{"title", "movie_keyword", "keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
			{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(2000)},
			{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(1990)},
		})
	res, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EmptyDetected {
		t.Fatalf("contradictory production_year predicates not detected")
	}
	if !res.Plan.IsComplete() {
		t.Fatalf("plan incomplete: %s", res.Plan)
	}
	// The empty relation leads so execution stops at the first operator —
	// even though keyword's lone equality is nominally more selective.
	if got := leftmostLeaf(res.Plan.Roots[0]).Table; got != "title" {
		t.Errorf("pipeline starts at %q, want the provably-empty relation %q", got, "title")
	}
}

func TestPlanRangeContradictionDetected(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := query.New("range",
		[]string{"title", "movie_keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "title", Column: "production_year", Op: query.Lt, Value: storage.IntValue(1950)},
			{Table: "title", Column: "production_year", Op: query.Gt, Value: storage.IntValue(2000)},
		})
	res, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EmptyDetected {
		t.Errorf("disjoint production_year ranges not detected")
	}
	if got := leftmostLeaf(res.Plan.Roots[0]).Table; got != "title" {
		t.Errorf("pipeline starts at %q, want %q", got, "title")
	}
}

func TestPlanDisconnectedTakesOneCrossProduct(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := query.New("disconnected",
		[]string{"title", "movie_keyword", "company", "movie_companies"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_companies", LeftColumn: "company_id", RightTable: "company", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(2000)},
		})
	res, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsComplete() {
		t.Fatalf("plan incomplete: %s", res.Plan)
	}
	if res.CrossProducts != 1 {
		t.Errorf("CrossProducts = %d, want exactly 1 (components − 1)", res.CrossProducts)
	}
}

func TestPlanScanChoices(t *testing.T) {
	cat := datagen.IMDBCatalog()
	// Equality on an indexed column → index scan.
	eq := query.New("eq", []string{"title"}, nil, []query.Predicate{
		{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(2000)},
	})
	res, err := Plan(eq, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Roots[0].Scan != plan.IndexScan {
		t.Errorf("equality on indexed production_year should pick an index scan, got %s", res.Plan)
	}
	// A range predicate cannot use the engines' point-lookup indexes.
	rng := query.New("range", []string{"title"}, nil, []query.Predicate{
		{Table: "title", Column: "production_year", Op: query.Gt, Value: storage.IntValue(2000)},
	})
	res, err = Plan(rng, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Roots[0].Scan != plan.TableScan {
		t.Errorf("range predicate should fall back to a table scan, got %s", res.Plan)
	}
}

func TestCostPrefersFastpathStructure(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := fiveWayQuery()
	res, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	good := Cost(res.Plan, cat)
	// A deliberately bad ordering: all hash joins over table scans, starting
	// from an unfiltered relation.
	bad := plan.Leaf("title", plan.TableScan)
	for _, r := range []string{"movie_info", "info_type", "movie_keyword", "keyword"} {
		bad = plan.Join2(plan.HashJoin, bad, plan.Leaf(r, plan.TableScan))
	}
	badPlan := &plan.Plan{Query: q, Roots: []*plan.Node{bad}}
	if badCost := Cost(badPlan, cat); good >= badCost {
		t.Errorf("fast-path plan should cost less than the naive ordering: %v >= %v", good, badCost)
	}
	if good <= 0 {
		t.Errorf("cost should be positive, got %v", good)
	}
}
