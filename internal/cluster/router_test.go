package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"neo/internal/cluster/proto"
)

// stubBackend fakes a replica's /optimize and /feedback for router tests,
// tagging every reply with its own name so tests can see where a request
// landed.
type stubBackend struct {
	name string
	mu   sync.Mutex
	hits int
	srv  *httptest.Server
}

func newStubBackend(name string) *stubBackend {
	sb := &stubBackend{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", func(w http.ResponseWriter, r *http.Request) {
		sb.mu.Lock()
		sb.hits++
		sb.mu.Unlock()
		_ = json.NewEncoder(w).Encode(proto.OptimizeResponse{ID: sb.name, Plan: "plan-" + sb.name})
	})
	mux.HandleFunc("POST /feedback", func(w http.ResponseWriter, r *http.Request) {
		var req proto.FeedbackRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		if req.NetVersion == 999 {
			http.Error(w, `{"error":"stale feedback"}`, http.StatusConflict)
			return
		}
		_ = json.NewEncoder(w).Encode(proto.FeedbackResponse{Experience: 1, Queued: true})
	})
	sb.srv = httptest.NewServer(mux)
	return sb
}

func (sb *stubBackend) count() int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.hits
}

// TestRouterShardsDeterministically pins the sharding contract: one query
// structure always lands on the same replica, so the fleet's plan caches
// partition the workload.
func TestRouterShardsDeterministically(t *testing.T) {
	a, b, c := newStubBackend("a"), newStubBackend("b"), newStubBackend("c")
	defer a.srv.Close()
	defer b.srv.Close()
	defer c.srv.Close()
	rt, err := NewRouter([]string{a.srv.URL, b.srv.URL, c.srv.URL}, fastClient())
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt)
	defer router.Close()

	spec := proto.QuerySpec{Relations: []string{"title", "movie_keyword"},
		Joins: []proto.JoinSpec{{Left: "title.id", Right: "movie_keyword.movie_id"}}}
	var first proto.OptimizeResponse
	if code := postJSON(t, router.URL+"/optimize", spec, &first); code != http.StatusOK {
		t.Fatalf("optimize: status %d", code)
	}
	for i := 0; i < 5; i++ {
		var resp proto.OptimizeResponse
		if code := postJSON(t, router.URL+"/optimize", spec, &resp); code != http.StatusOK {
			t.Fatalf("optimize %d: status %d", i, code)
		}
		if resp.ID != first.ID {
			t.Fatalf("same query moved replicas: %q then %q", first.ID, resp.ID)
		}
	}
	if got := a.count() + b.count() + c.count(); got != 6 {
		t.Fatalf("%d backend hits for 6 requests", got)
	}
	// A structurally different query is free to land elsewhere; with enough
	// distinct queries every replica sees traffic.
	names := map[string]bool{}
	for i := 0; i < 32; i++ {
		s := proto.QuerySpec{Relations: []string{"title"},
			Predicates: []proto.PredicateSpec{{Column: "title.production_year", Op: ">=", Value: json.RawMessage(itoa(1900 + i))}}}
		var resp proto.OptimizeResponse
		if code := postJSON(t, router.URL+"/optimize", s, &resp); code != http.StatusOK {
			t.Fatalf("optimize: status %d", code)
		}
		names[resp.ID] = true
	}
	if len(names) != 3 {
		t.Fatalf("32 distinct queries reached only %d of 3 replicas", len(names))
	}
}

func itoa(n int) string { b, _ := json.Marshal(n); return string(b) }

// TestRouterFailsOverAndRelays pins the failure policy: a dead owner fails
// over in ring order (the request succeeds elsewhere), while a replica's 4xx
// answer is relayed verbatim — every replica would say the same.
func TestRouterFailsOverAndRelays(t *testing.T) {
	a, b := newStubBackend("a"), newStubBackend("b")
	defer b.srv.Close()
	rt, err := NewRouter([]string{a.srv.URL, b.srv.URL}, fastClient())
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt)
	defer router.Close()

	spec := proto.QuerySpec{Relations: []string{"title"}}
	a.srv.Close() // kill one replica; whichever owns the key, the other answers
	var resp proto.OptimizeResponse
	if code := postJSON(t, router.URL+"/optimize", spec, &resp); code != http.StatusOK {
		t.Fatalf("optimize with one dead replica: status %d", code)
	}
	if resp.ID != "b" {
		t.Fatalf("reply came from %q, want the surviving replica", resp.ID)
	}

	// 409 from the replica is the client's answer, not a failover trigger.
	fb := proto.FeedbackRequest{Query: spec, LatencyMS: 5, NetVersion: 999}
	if code := postJSON(t, router.URL+"/feedback", fb, nil); code != http.StatusConflict {
		t.Fatalf("stale feedback through router: status %d, want 409", code)
	}

	// Malformed JSON is rejected at the router, reaching no replica.
	resp2, err := http.Post(router.URL+"/optimize", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: status %d, want 400", resp2.StatusCode)
	}
}
