package neo

import (
	"testing"
)

func smallSystem(t testing.TB, dataset, engineName string, enc Encoding) *System {
	t.Helper()
	sys, err := Open(Config{
		Dataset:          dataset,
		Engine:           engineName,
		Encoding:         enc,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 32,
		Episodes:         1,
		ValueNet: &ValueNetConfig{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenDefaults(t *testing.T) {
	sys := smallSystem(t, "", "", Histogram)
	if sys.Config.Dataset != "imdb" || sys.Config.Engine != "postgres" {
		t.Errorf("defaults not applied: %+v", sys.Config)
	}
	if sys.DB == nil || sys.Catalog == nil || sys.Engine == nil || sys.Neo == nil {
		t.Fatalf("system is missing components")
	}
	if sys.Catalog.NumRelations() == 0 {
		t.Errorf("catalog should describe relations")
	}
}

func TestOpenRejectsUnknowns(t *testing.T) {
	if _, err := Open(Config{Dataset: "nope", Scale: 0.1}); err == nil {
		t.Errorf("unknown dataset should error")
	}
	if _, err := Open(Config{Engine: "db2", Scale: 0.1}); err == nil {
		t.Errorf("unknown engine should error")
	}
}

func TestEndToEndQuickstartFlow(t *testing.T) {
	sys := smallSystem(t, "imdb", "postgres", Histogram)
	wl, err := sys.GenerateWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	train, test := wl.Split(0.8, 1)
	if err := sys.Bootstrap(train); err != nil {
		t.Fatal(err)
	}
	stats, err := sys.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != sys.Config.Episodes {
		t.Errorf("expected %d episode stats, got %d", sys.Config.Episodes, len(stats))
	}
	for _, q := range test {
		neoLat, nativeLat, err := sys.Compare(q)
		if err != nil {
			t.Fatalf("Compare(%s): %v", q.ID, err)
		}
		if neoLat <= 0 || nativeLat <= 0 {
			t.Errorf("latencies should be positive: neo=%f native=%f", neoLat, nativeLat)
		}
	}
	// Expert and native plans are available and executable.
	q := test[0]
	ep, err := sys.ExpertPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(ep); err != nil {
		t.Errorf("expert plan does not execute: %v", err)
	}
	card, err := sys.TrueCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if card < 0 {
		t.Errorf("cardinality should be non-negative")
	}
}

func TestUnseenWorkload(t *testing.T) {
	sys := smallSystem(t, "imdb", "sqlite", OneHot)
	base, err := sys.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	unseen, err := sys.GenerateUnseenWorkload(3, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(unseen.Queries) != 3 {
		t.Errorf("expected 3 unseen queries, got %d", len(unseen.Queries))
	}
}

func TestExperimentFacade(t *testing.T) {
	names := ExperimentNames()
	if len(names) == 0 {
		t.Fatalf("no experiments registered")
	}
	q := QuickExperiments()
	f := FullExperiments()
	if f.Episodes <= q.Episodes {
		t.Errorf("full config should use more episodes than quick")
	}
	// Building an env and running the cheapest experiment exercises the whole
	// facade path.
	cfg := q
	cfg.Scale = 0.15
	cfg.TrainQueries, cfg.TestQueries = 4, 2
	cfg.Episodes = 1
	cfg.Engines = []string{"postgres"}
	cfg.Workloads = []string{"job"}
	cfg.EmbeddingDim = 6
	env, err := Experiments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunExperiment("table2", env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "table2" || len(rep.Rows) == 0 {
		t.Errorf("report malformed: %+v", rep)
	}
}

func TestNewQueryHelper(t *testing.T) {
	q := NewQuery("q", []string{"title"}, nil, nil)
	if q.ID != "q" || len(q.Relations) != 1 {
		t.Errorf("NewQuery malformed: %+v", q)
	}
}

func TestTPCHAndCorpSystems(t *testing.T) {
	for _, ds := range []string{"tpch", "corp"} {
		sys := smallSystem(t, ds, "engine-m", Histogram)
		wl, err := sys.GenerateWorkload(5)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if len(wl.Queries) != 5 {
			t.Errorf("%s: expected 5 queries, got %d", ds, len(wl.Queries))
		}
		p, err := sys.NativePlan(wl.Queries[0])
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if _, err := sys.Execute(p); err != nil {
			t.Errorf("%s: native plan does not execute: %v", ds, err)
		}
	}
}

func TestPlanAllMatchesSequentialOptimize(t *testing.T) {
	sys := smallSystem(t, "imdb", "postgres", Histogram)
	wl, err := sys.GenerateWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries); err != nil {
		t.Fatal(err)
	}

	results := sys.PlanAll(wl.Queries, 4)
	if len(results) != len(wl.Queries) {
		t.Fatalf("PlanAll returned %d results, want %d", len(results), len(wl.Queries))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("PlanAll query %s: %v", wl.Queries[i].ID, r.Err)
		}
		if r.Query != wl.Queries[i] {
			t.Errorf("result %d out of order: got query %s", i, r.Query.ID)
		}
		if r.Plan == nil || !r.Plan.IsComplete() {
			t.Errorf("query %s: incomplete plan from PlanAll", wl.Queries[i].ID)
		}
		p, _, err := sys.Optimize(wl.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Plan.Signature() != p.Signature() {
			t.Errorf("query %s: concurrent plan differs from sequential plan", wl.Queries[i].ID)
		}
	}
	// Degenerate worker counts fall back to sane behaviour.
	if got := sys.PlanAll(wl.Queries[:1], 0); len(got) != 1 || got[0].Err != nil {
		t.Errorf("PlanAll with workers<=0 failed: %+v", got)
	}
	if got := sys.PlanAll(nil, 4); len(got) != 0 {
		t.Errorf("PlanAll(nil) returned %d results", len(got))
	}
}
