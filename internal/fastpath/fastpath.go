// Package fastpath implements a statistics-free greedy planner for
// pattern-shaped queries, after the janus-datalog line of work ("When
// Statistics Are Unnecessary: Greedy Join Ordering for Pattern-Based
// Queries"): joins are ordered by connectivity and the selectivity visible
// in the query's own syntax — no histograms, no value-network inference, no
// frontier — so planning costs microseconds instead of the full best-first
// search's milliseconds. Provably-empty intermediates (contradictory
// single-column predicates) terminate ordering effort early: once any
// relation is known empty, every plan returns zero rows and join order stops
// mattering.
//
// The planner covers the easy 90%: chains and stars whose cheap orderings
// are exactly the connectivity-greedy ones. Queries outside that class keep
// the full DNN-guided search — internal/route decides per query, and
// re-routes classes whose fast-path plans regret the choice at execution
// time.
package fastpath

import (
	"fmt"
	"sort"
	"time"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/schema"
)

// Visible-selectivity weights: a syntactic prior on how much of a relation a
// predicate keeps, keyed only on the comparison operator. The absolute
// values are unimportant — ordering decisions compare products of them — but
// the ranking (equality ≪ pattern ≪ range ≪ inequality) matches what any
// real workload's predicates do on average.
const (
	selEq    = 0.05
	selLike  = 0.15
	selRange = 0.30
	selNe    = 0.90
)

// Operator-selection constants, calibrated against the simulated engines'
// cost shapes (internal/engine): an index-nested-loop pays one logarithmic
// lookup per outer row, so it beats a linear hash build only while the outer
// pipeline is a small fraction of a base relation; every join dilutes the
// pipeline by a fan-out no syntax can reveal, so a fixed multiplier stands
// in for it. Both are unit-free fractions of "one base relation", keeping
// the planner statistics-free.
const (
	// inlMaxOuter is the largest estimated outer fraction for which an
	// index-nested-loop still beats a hash join (engine shapes: ~4·log2(B)
	// lookup work per outer row against ~2.6·B for build+scan).
	inlMaxOuter = 0.06
	// joinFanout multiplies the estimated pipeline fraction at every join:
	// equi-joins on foreign keys typically widen the intermediate result.
	joinFanout = 3.0
	// factSize is the size prior for a relation that declares foreign keys.
	// Such a relation is the "many" side of every join it originates — in any
	// FK-consistent database it holds at least as many rows as the relations
	// it references, and bridge tables hold several per entity. The prior is
	// read off the schema's join topology, not from any statistics.
	factSize = 4.0
)

// opWeight returns the visible-selectivity weight of one comparison.
func opWeight(op query.CmpOp) float64 {
	switch op {
	case query.Eq:
		return selEq
	case query.Like:
		return selLike
	case query.Lt, query.Le, query.Gt, query.Ge:
		return selRange
	case query.Ne:
		return selNe
	default:
		return 1.0
	}
}

// VisibleSelectivity is the product of the syntactic weights of every
// predicate the query places on rel: 1.0 for an unfiltered relation,
// smaller the more (and the more selective) filters are visible. It reads
// nothing but the query text — no statistics.
func VisibleSelectivity(q *query.Query, rel string) float64 {
	sel := 1.0
	for _, p := range q.Predicates {
		if p.Table == rel {
			sel *= opWeight(p.Op)
		}
	}
	return sel
}

// relSize returns rel's size prior in base-relation units: factSize when the
// schema shows rel originating foreign keys (the "many" side — fact and
// bridge tables), 1.0 otherwise. Purely topological; no row counts involved.
func relSize(rel string, cat *schema.Catalog) float64 {
	if cat != nil {
		for _, fk := range cat.ForeignKeys() {
			if fk.FromTable == rel {
				return factSize
			}
		}
	}
	return 1.0
}

// ProvablyEmpty reports whether rel's predicates are contradictory on some
// column — x = 3 AND x = 5, x = 3 AND x ≠ 3, x < 10 AND x > 20 — so the
// relation (and therefore every intermediate containing it) is empty no
// matter what the data holds. This is a sufficient condition, not a
// complete one: combinations it cannot see (e.g. three-way range
// interactions through non-strict bounds) are simply planned normally.
func ProvablyEmpty(q *query.Query, rel string) bool {
	byCol := make(map[string][]query.Predicate)
	for _, p := range q.Predicates {
		// LIKE patterns have no usable ordering; leave them out.
		if p.Table == rel && p.Op != query.Like {
			byCol[p.Column] = append(byCol[p.Column], p)
		}
	}
	//neo:lint-ok detrange existential scan: columnContradiction is pure and any-order/any-hit yields the same bool
	for _, preds := range byCol {
		if columnContradiction(preds) {
			return true
		}
	}
	return false
}

// columnContradiction decides emptiness for the predicates of one column.
func columnContradiction(preds []query.Predicate) bool {
	// An equality pins the column to a single value; every other predicate
	// on the column must accept that value.
	for i, p := range preds {
		if p.Op != query.Eq {
			continue
		}
		for j, o := range preds {
			if i != j && !o.Matches(p.Value) {
				return true
			}
		}
	}
	// Pure range contradiction: the tightest upper bound against the
	// tightest lower bound.
	var lo, hi *query.Predicate
	for i := range preds {
		p := &preds[i]
		switch p.Op {
		case query.Gt, query.Ge:
			if lo == nil || lo.Value.Less(p.Value) {
				lo = p
			}
		case query.Lt, query.Le:
			if hi == nil || p.Value.Less(hi.Value) {
				hi = p
			}
		}
	}
	if lo != nil && hi != nil {
		if hi.Value.Less(lo.Value) {
			return true
		}
		if hi.Value.Equal(lo.Value) && (lo.Op == query.Gt || hi.Op == query.Lt) {
			return true
		}
	}
	return false
}

// Result reports one fast-path planning run.
type Result struct {
	// Plan is the complete plan: one pipeline attaching relations in greedy
	// order (hash attaches may place the fresh base relation on the probe
	// side, so the tree is not strictly left-deep).
	Plan *plan.Plan
	// Steps is the number of join-ordering decisions taken (relations − 1);
	// it plays the role search.Result.Expansions plays for the full search.
	Steps int
	// EmptyDetected reports that some relation's predicates are
	// contradictory: the result is provably empty, so the planner skipped
	// selectivity ordering and attached relations by connectivity alone,
	// starting from the empty relation.
	EmptyDetected bool
	// CrossProducts counts joins taken between disconnected components —
	// only ever forced by the query's own join graph, never preferred over
	// an available connected join.
	CrossProducts int
	// Elapsed is the planning wall-clock time.
	Elapsed time.Duration
}

// Plan builds a complete plan for q greedily: start from the relation with
// the smallest estimated size — the schema's topological size prior shrunk
// by the visible selectivity, ties broken toward higher join degree, then
// name — then repeatedly attach the smallest-estimate relation connected to
// the joined set, falling back to a cross product only when no connected
// relation remains. Operators follow the engines' cost shapes, driven by a
// running estimate of the pipeline's size (visible selectivities diluted by
// a fixed per-join fan-out): while the pipeline is provably small, a
// relation reachable through an index on its join column becomes the inner
// of an index-nested-loop join; once it has grown, the attach becomes a
// hash join with the smaller estimated side as the build input. An equality
// predicate on an indexed column selects an index scan; everything else is
// a table scan.
func Plan(q *query.Query, cat *schema.Catalog) (*Result, error) {
	start := time.Now() //neo:lint-ok walltime reports real planning latency in Result.Elapsed; plan shape never depends on it
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("fastpath: query %s has no relations", q.ID)
	}
	res := &Result{}

	rels := append([]string(nil), q.Relations...)
	sort.Strings(rels)
	// est is each relation's estimated size in base-relation units: the
	// schema's topological size prior shrunk by the visible selectivity.
	est := make(map[string]float64, len(rels))
	degree := make(map[string]int, len(rels))
	for _, r := range rels {
		est[r] = VisibleSelectivity(q, r) * relSize(r, cat)
		for _, j := range q.Joins {
			if j.Touches(r) {
				degree[r]++
			}
		}
	}
	emptyRel := ""
	for _, r := range rels {
		if ProvablyEmpty(q, r) {
			// An empty relation empties every intermediate it joins into:
			// start from it so execution can stop at the first operator, and
			// stop spending ordering effort below.
			emptyRel = r
			res.EmptyDetected = true
			break
		}
	}

	pick := func(candidates []string) string {
		best := candidates[0]
		if res.EmptyDetected {
			// Order is irrelevant once emptiness is proven; candidates are
			// name-sorted, keep the first (deterministic, zero effort).
			return best
		}
		for _, r := range candidates[1:] {
			switch {
			case est[r] < est[best]:
				best = r
			case est[r] == est[best] && degree[r] > degree[best]:
				best = r
			}
		}
		return best
	}

	first := emptyRel
	if !res.EmptyDetected {
		first = pick(rels)
	}
	joined := map[string]bool{first: true}
	root := plan.Leaf(first, baseScan(q, first, cat))
	pipeRows := est[first] // estimated pipeline size, in base-relation units
	remaining := make([]string, 0, len(rels)-1)
	for _, r := range rels {
		if r != first {
			remaining = append(remaining, r)
		}
	}

	for len(remaining) > 0 {
		connected := remaining[:0:0]
		for _, r := range remaining {
			for _, j := range q.Joins {
				if j.Touches(r) && (joined[j.LeftTable] || joined[j.RightTable]) {
					connected = append(connected, r)
					break
				}
			}
		}
		var next string
		isConnected := len(connected) > 0
		if isConnected {
			next = pick(connected)
		} else {
			// Genuinely stuck: the query's join graph is disconnected here.
			next = pick(remaining)
			res.CrossProducts++
		}

		switch {
		case isConnected && pipeRows <= inlMaxOuter && indexedJoinColumn(q, next, joined, cat):
			// The pipeline is still a sliver of a base relation: enter the
			// new relation through its join-column index. The engines price
			// LoopJoin over an index-scanned leaf as an index-nested-loop —
			// one lookup per outer row, the inner's scan cost never paid —
			// which beats a hash build only while the outer stays this small.
			root = plan.Join2(plan.LoopJoin, root, plan.Leaf(next, plan.IndexScan))
		case !res.EmptyDetected && pipeRows < est[next]:
			// Hash join, building on the smaller input: the engines pay the
			// heavier per-row build cost on the right child, so the filtered
			// pipeline goes right and the fresh base relation probes from the
			// left. (Skipped for provably-empty plans, which are never
			// meaningfully executed — left-deep is simpler.)
			root = plan.Join2(plan.HashJoin, plan.Leaf(next, baseScan(q, next, cat)), root)
		default:
			root = plan.Join2(plan.HashJoin, root, plan.Leaf(next, baseScan(q, next, cat)))
		}
		pipeRows *= joinFanout * est[next]
		joined[next] = true
		res.Steps++
		for i, r := range remaining {
			if r == next {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}

	res.Plan = &plan.Plan{Query: q, Roots: []*plan.Node{root}}
	res.Elapsed = time.Since(start) //neo:lint-ok walltime reports real planning latency in Result.Elapsed; plan shape never depends on it
	return res, nil
}

// baseScan picks the access path for a relation that is not entered through
// a join index: an index scan only pays off when an equality predicate hits
// an indexed column (the executors' IndexOnPredicate condition); otherwise
// walking the index is strictly worse than the sequential scan.
func baseScan(q *query.Query, rel string, cat *schema.Catalog) plan.ScanType {
	if cat != nil {
		for _, p := range q.Predicates {
			if p.Table == rel && p.Op == query.Eq && cat.HasIndex(rel, p.Column) {
				return plan.IndexScan
			}
		}
	}
	return plan.TableScan
}

// indexedJoinColumn reports whether rel connects to the joined set through a
// join column that is indexed on rel's side — the precondition for the
// engines' index-nested-loop strategy.
func indexedJoinColumn(q *query.Query, rel string, joined map[string]bool, cat *schema.Catalog) bool {
	if cat == nil {
		return false
	}
	for _, j := range q.Joins {
		var col string
		switch {
		case j.LeftTable == rel && joined[j.RightTable]:
			col = j.LeftColumn
		case j.RightTable == rel && joined[j.LeftTable]:
			col = j.RightColumn
		default:
			continue
		}
		if cat.HasIndex(rel, col) {
			return true
		}
	}
	return false
}
