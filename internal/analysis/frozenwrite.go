package analysis

import (
	"go/ast"
	"go/types"
)

// frozenwriteCheck flags assignments that mutate a frozen snapshot type
// outside its designated constructor/swap sites. The repository's scoring
// path depends on snapshots being immutable after publication: valuenet's
// Snapshot (and its netF32/netI8 predictors) and core's netSnapshot are
// built once, then swapped in atomically and read lock-free by every
// serving goroutine. A write to a published snapshot is a data race that no
// test reliably catches — the race detector only sees interleavings that
// actually happen — so the check bans the write syntactically: any
// assignment whose left-hand side reaches through a value of a frozen type
// is an error unless it occurs inside a function listed in
// Config.FrozenAllow. Building a snapshot with a composite literal is
// construction, not mutation, and stays legal everywhere.
var frozenwriteCheck = &Check{
	Name: "frozenwrite",
	Doc:  "mutation of a frozen snapshot type outside its designated constructor/swap sites",
	Run:  runFrozenwrite,
}

func runFrozenwrite(p *Pass) {
	if len(p.Cfg.FrozenTypes) == 0 {
		return
	}
	frozen := make(map[string]bool, len(p.Cfg.FrozenTypes))
	for _, t := range p.Cfg.FrozenTypes {
		frozen[t] = true
	}
	allow := make(map[string]bool, len(p.Cfg.FrozenAllow))
	for _, f := range p.Cfg.FrozenAllow {
		allow[f] = true
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					reportFrozenWrite(p, frozen, allow, lhs)
				}
			case *ast.IncDecStmt:
				reportFrozenWrite(p, frozen, allow, st.X)
			}
			return true
		})
	}
}

// reportFrozenWrite walks the lvalue chain of one assignment target and
// reports if any step reaches through a frozen type. Rebinding a plain
// variable (`s = other`) is not a mutation and is never flagged; writing a
// field, element, or dereference of a frozen value (`s.f = x`,
// `s.weights[i] = x`, `*p = x`) is.
func reportFrozenWrite(p *Pass, frozen, allow map[string]bool, lhs ast.Expr) {
	e := lhs
	for {
		var inner ast.Expr
		switch v := e.(type) {
		case *ast.ParenExpr:
			inner = v.X
		case *ast.SelectorExpr:
			inner = v.X
		case *ast.IndexExpr:
			inner = v.X
		case *ast.StarExpr:
			inner = v.X
		default:
			return
		}
		if name := frozenTypeName(p.typeOf(inner), frozen); name != "" {
			if fn := enclosingFuncName(p.Pkg, lhs.Pos()); allow[fn] {
				return
			}
			p.Reportf(lhs.Pos(), "%s mutates frozen type %s; snapshots are immutable after publication — build a new one and swap it in (or do this inside a designated constructor)", exprString(lhs), name)
			return
		}
		e = inner
	}
}

// frozenTypeName returns the fully-qualified name of t (pointers
// dereferenced) when it is one of the frozen types, else "".
func frozenTypeName(t types.Type, frozen map[string]bool) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	name := obj.Pkg().Path() + "." + obj.Name()
	if frozen[name] {
		return name
	}
	return ""
}
