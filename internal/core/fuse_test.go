package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"neo/internal/search"
	"neo/internal/treeconv"
)

// fusedRig is newRig with cross-request scoring fusion enabled before any
// engine execution happens, so its noise stream — and with it every
// bootstrap latency and trained weight — stays bit-identical to a plain rig
// built from the same seeds.
func fusedRig(t *testing.T) *testRig {
	rig := newRig(t, "postgres")
	cfg := rig.neo.Config
	cfg.FuseScoring = true
	rig.neo = New(rig.eng, rig.feat, cfg)
	return rig
}

// TestFusedOptimizeMatchesPrivate is the end-to-end determinism contract of
// the scheduler: a system serving 8 concurrent searches through one shared
// micro-batching scheduler must plan every query bit-identically (signature,
// score, search effort) to an identically-seeded system scoring privately.
func TestFusedOptimizeMatchesPrivate(t *testing.T) {
	private := newRig(t, "postgres")
	fused := fusedRig(t)
	queries := private.wl.Queries[:8]
	if err := private.neo.Bootstrap(queries, private.expertFunc()); err != nil {
		t.Fatal(err)
	}
	if err := fused.neo.Bootstrap(fused.wl.Queries[:8], fused.expertFunc()); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		sig   string
		score float64
		exp   int
		evals int
		err   error
	}
	planAll := func(n *Neo, rig *testRig) []outcome {
		out := make([]outcome, len(queries))
		var wg sync.WaitGroup
		for i := range queries {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p, res, err := n.Optimize(rig.wl.Queries[i])
				if err != nil {
					out[i] = outcome{err: err}
					return
				}
				out[i] = outcome{sig: p.Signature(), score: res.Score, exp: res.Expansions, evals: res.Evaluations}
			}(i)
		}
		wg.Wait()
		return out
	}

	pres := planAll(private.neo, private)
	fres := planAll(fused.neo, fused)
	for i := range queries {
		if pres[i].err != nil || fres[i].err != nil {
			t.Fatalf("query %s: private err %v, fused err %v", queries[i].ID, pres[i].err, fres[i].err)
		}
		if pres[i].sig != fres[i].sig {
			t.Errorf("query %s: plan signatures diverge under fusion\nprivate: %s\nfused:   %s",
				queries[i].ID, pres[i].sig, fres[i].sig)
		}
		if math.Abs(pres[i].score-fres[i].score) > 1e-9 {
			t.Errorf("query %s: scores diverge under fusion: private %v, fused %v",
				queries[i].ID, pres[i].score, fres[i].score)
		}
		if pres[i].exp != fres[i].exp || pres[i].evals != fres[i].evals {
			t.Errorf("query %s: search effort diverges under fusion: private (%d, %d), fused (%d, %d)",
				queries[i].ID, pres[i].exp, pres[i].evals, fres[i].exp, fres[i].evals)
		}
	}

	st := fused.neo.FusionStats()
	if !st.Enabled {
		t.Fatal("fused rig reports fusion disabled")
	}
	if st.Submissions == 0 || st.Rows == 0 {
		t.Errorf("fused searches never reached the scheduler: %+v", st)
	}
	if off := private.neo.FusionStats(); off.Enabled || off.Submissions != 0 {
		t.Errorf("private rig reports fusion activity: %+v", off)
	}
}

// TestFusedScorerBitEqualityUnderContention hammers one snapshot's scheduler
// with concurrent BestFirst and Greedy searches and checks each against the
// same search driven by a private snapshot scorer: fused scores must be
// bit-identical no matter how the submissions interleave and fuse.
func TestFusedScorerBitEqualityUnderContention(t *testing.T) {
	rig := fusedRig(t)
	queries := rig.wl.Queries[:6]
	if err := rig.neo.Bootstrap(queries, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	ns := rig.neo.snap.Load()
	if ns.sched == nil {
		t.Fatal("fused rig published a snapshot without a scheduler")
	}
	opts := search.Options{Catalog: rig.feat.Catalog, MaxExpansions: rig.neo.Config.SearchExpansions}

	// Every (query, algorithm) pair runs as its own goroutine, so BestFirst
	// and Greedy searches interleave their submissions on one scheduler.
	type job struct {
		kind string
		qEnc []float64
		run  func(search.BatchScorer) (*search.Result, error)
	}
	var jobs []job
	for _, q := range queries {
		q := q
		enc := rig.neo.encodeQuery(q)
		jobs = append(jobs,
			job{kind: "bestfirst " + q.ID, qEnc: enc, run: func(s search.BatchScorer) (*search.Result, error) {
				return search.BestFirst(q, s, opts)
			}},
			job{kind: "greedy " + q.ID, qEnc: enc, run: func(s search.BatchScorer) (*search.Result, error) {
				return search.Greedy(q, s, opts)
			}})
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			fused := &netScorer{backend: ns.sched, feat: rig.feat, qEnc: j.qEnc}
			private := &netScorer{backend: ns.net, feat: rig.feat, qEnc: j.qEnc}
			fres, err := j.run(fused)
			if err != nil {
				t.Errorf("%s fused: %v", j.kind, err)
				return
			}
			pres, err := j.run(private)
			if err != nil {
				t.Errorf("%s private: %v", j.kind, err)
				return
			}
			if fres.Plan.Signature() != pres.Plan.Signature() {
				t.Errorf("%s: fused plan %s != private plan %s", j.kind, fres.Plan.Signature(), pres.Plan.Signature())
			}
			if fres.Score != pres.Score {
				t.Errorf("%s: fused score %v != private score %v (must be bit-identical)", j.kind, fres.Score, pres.Score)
			}
			if fres.Expansions != pres.Expansions || fres.Evaluations != pres.Evaluations {
				t.Errorf("%s: fused effort (%d, %d) != private (%d, %d)", j.kind,
					fres.Expansions, fres.Evaluations, pres.Expansions, pres.Evaluations)
			}
		}(j)
	}
	wg.Wait()

	if st := rig.neo.FusionStats(); st.FusedBatches == 0 {
		// 12 concurrent searches over one scheduler make fusion overwhelmingly
		// likely, but it is timing-dependent; log rather than fail so the
		// bit-equality contract (the point of this test) stays deterministic.
		t.Logf("no fused batches formed this run (timing): %+v", st)
	}
}

// TestFusedSnapshotSwapMidFlight retrains (swapping snapshot + scheduler)
// while concurrent searches are in flight: every search must finish against
// the weights it pinned, no fused pass may straddle the swap, and the run
// must be race-clean (CI repeats it under -race).
func TestFusedSnapshotSwapMidFlight(t *testing.T) {
	rig := fusedRig(t)
	queries := rig.wl.Queries[:6]
	if err := rig.neo.Bootstrap(queries, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(g+i)%len(queries)]
				p, res, err := rig.neo.Optimize(q)
				if err != nil {
					errs <- err
					return
				}
				if p == nil || !p.IsComplete() || math.IsNaN(res.Score) || math.IsInf(res.Score, 0) {
					errs <- fmt.Errorf("malformed result for %s under snapshot swaps: plan %v score %v", q.ID, p, res.Score)
					return
				}
			}
		}(g)
	}
	for swap := 0; swap < 3; swap++ {
		time.Sleep(10 * time.Millisecond)
		rig.neo.Retrain()
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if v := rig.neo.NetVersion(); v < 4 { // bootstrap publishes 2 (Retrain in Bootstrap + Explore-less rig publishes once) — at minimum the 3 explicit swaps landed
		t.Errorf("expected at least 4 snapshot versions after 3 retrains, got %d", v)
	}
	st := rig.neo.FusionStats()
	if st.Submissions == 0 {
		t.Errorf("no submissions reached the schedulers across the swaps: %+v", st)
	}
	if st.Batches > st.Submissions {
		t.Errorf("more passes than submissions — counters corrupted: %+v", st)
	}
}

// TestFusedSchedulerDrainedOnSwap pins the drain contract directly: after a
// swap the superseded scheduler still answers (directly, against its own old
// weights) while the new snapshot carries a fresh scheduler.
func TestFusedSchedulerDrainedOnSwap(t *testing.T) {
	rig := fusedRig(t)
	if err := rig.neo.Bootstrap(rig.wl.Queries[:4], rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	oldNS := rig.neo.snap.Load()
	q := rig.wl.Queries[0]
	rig.neo.Retrain()
	newNS := rig.neo.snap.Load()
	if newNS == oldNS || newNS.sched == oldNS.sched {
		t.Fatal("snapshot swap did not replace the scheduler")
	}
	// The old scheduler is drained: scoring through it must still produce
	// the old snapshot's numbers, bit for bit — never the new weights'.
	p, _, err := rig.neo.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	qEnc := rig.neo.encodeQuery(q)
	forests := [][]*treeconv.Tree{rig.feat.EncodePlan(p)}
	got := oldNS.sched.PredictBatch([][]float64{qEnc}, forests)
	want := oldNS.net.PredictBatch([][]float64{qEnc}, forests)
	if got[0] != want[0] {
		t.Errorf("drained scheduler score %v != old snapshot score %v", got[0], want[0])
	}
	if stale := newNS.net.PredictBatch([][]float64{qEnc}, forests); stale[0] == want[0] {
		t.Logf("old and new snapshots score identically (training may have been a no-op); drain check is vacuous this run")
	}
}
