// Package core implements Neo itself: the experience store, the
// learning-from-demonstration bootstrap, the episodic reinforcement-learning
// refinement loop, and the glue between featurization, the value network and
// the DNN-guided plan search (Section 2 of the paper).
package core

import (
	"math"
	"sort"
	"sync"

	"neo/internal/plan"
	"neo/internal/query"
)

// Entry is one element of Neo's experience: a complete execution plan for a
// query together with its observed latency on the target engine.
type Entry struct {
	Query   *query.Query
	Plan    *plan.Plan
	Latency float64
}

// Experience is the set of executed plans Neo learns from (E in the paper).
type Experience struct {
	mu      sync.RWMutex
	entries []Entry            // guarded by mu
	byQuery map[string][]int   // guarded by mu
	best    map[string]float64 // best latency seen per query; guarded by mu
}

// NewExperience creates an empty experience store.
func NewExperience() *Experience {
	return &Experience{byQuery: make(map[string][]int), best: make(map[string]float64)}
}

// Add records a plan/latency pair.
func (e *Experience) Add(q *query.Query, p *plan.Plan, latency float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.entries = append(e.entries, Entry{Query: q, Plan: p, Latency: latency})
	e.byQuery[q.ID] = append(e.byQuery[q.ID], len(e.entries)-1)
	if best, ok := e.best[q.ID]; !ok || latency < best {
		e.best[q.ID] = latency
	}
}

// Restore replaces the store's contents with the given entries (in order),
// rebuilding the per-query index and best-latency tracking. Used when
// loading a checkpoint.
func (e *Experience) Restore(entries []Entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.entries = append([]Entry(nil), entries...)
	e.rebuildLocked()
}

// rebuildLocked recomputes the per-query index and best-latency tracking
// from e.entries. Callers must hold e.mu.
func (e *Experience) rebuildLocked() {
	e.byQuery = make(map[string][]int)
	e.best = make(map[string]float64)
	for i, entry := range e.entries {
		id := entry.Query.ID
		e.byQuery[id] = append(e.byQuery[id], i)
		if best, ok := e.best[id]; !ok || entry.Latency < best {
			e.best[id] = entry.Latency
		}
	}
}

// Trim drops the oldest entries until at most keep remain, rebuilding the
// per-query index and best-latency tracking from the survivors. Long-running
// servers use it to bound the experience pool (and with it checkpoint size):
// recent entries reflect the current network's behaviour and matter most for
// the next retraining round.
func (e *Experience) Trim(keep int) {
	if keep < 0 {
		keep = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.entries) <= keep {
		return
	}
	e.entries = append([]Entry(nil), e.entries[len(e.entries)-keep:]...)
	e.rebuildLocked()
}

// Len returns the number of stored entries.
func (e *Experience) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.entries)
}

// Entries returns a copy of all stored entries.
func (e *Experience) Entries() []Entry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]Entry, len(e.entries))
	copy(out, e.entries)
	return out
}

// ForQuery returns the entries recorded for one query.
func (e *Experience) ForQuery(id string) []Entry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []Entry
	for _, i := range e.byQuery[id] {
		out = append(out, e.entries[i])
	}
	return out
}

// BestLatency returns the lowest latency observed for a query and whether
// any entry exists.
func (e *Experience) BestLatency(id string) (float64, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.best[id]
	return v, ok
}

// Queries returns the distinct query IDs present in the experience, in
// sorted order. The order matters: callers iterate the result to build
// training sets and retraining schedules, and map iteration order would
// make identically-seeded runs diverge.
func (e *Experience) Queries() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.byQuery))
	for id := range e.byQuery {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// MinCostContaining returns min{C(Pf) | Pi ⊂ Pf ∧ Pf ∈ E} — the training
// target of the value network (Section 4) — where the cost of an entry is
// produced by the supplied cost function. The boolean reports whether any
// containing plan exists.
func (e *Experience) MinCostContaining(pi *plan.Plan, cost func(Entry) float64) (float64, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	best := math.Inf(1)
	found := false
	for _, idx := range e.byQuery[pi.Query.ID] {
		entry := e.entries[idx]
		if !pi.IsSubplanOf(entry.Plan) {
			continue
		}
		c := cost(entry)
		if c < best {
			best = c
			found = true
		}
	}
	return best, found
}
