// Package proto defines the wire protocol of the distributed serving tier:
// the JSON types exchanged between clients, the router, neo-serve replicas
// and the neo-trainer daemon, the canonical routing key that shards queries
// across replicas, and a small retrying HTTP client every replica↔trainer
// RPC goes through.
//
// The package sits at the bottom of the cluster dependency DAG — it imports
// nothing above the standard library — so internal/serve, internal/cluster
// and pkg/neo can all share one set of wire types without import cycles.
// Binary payloads (network snapshots, experience batches) use the NEOCKPT1
// checkpoint container (internal/checkpoint, documented in
// internal/checkpoint/FORMAT.md) rather than JSON; this package only carries
// the JSON control plane around them.
package proto

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// HeaderNetVersion is the HTTP header carrying a snapshot's value-network
// version on trainer /snapshot responses.
const HeaderNetVersion = "X-Neo-Net-Version"

// QuerySpec is the JSON representation of a query.
type QuerySpec struct {
	// ID labels the query in responses. Internally queries are always keyed
	// by their structural signature, so reusing an ID across different query
	// structures is harmless.
	ID string `json:"id,omitempty"`
	// Relations lists the base tables.
	Relations []string `json:"relations"`
	// Joins are equi-join predicates, each side a "table.column" reference.
	Joins []JoinSpec `json:"joins,omitempty"`
	// Predicates are single-table filters.
	Predicates []PredicateSpec `json:"predicates,omitempty"`
}

// JoinSpec is one equi-join predicate.
type JoinSpec struct {
	Left  string `json:"left"`
	Right string `json:"right"`
}

// PredicateSpec is one single-table filter. Value is a JSON number (integer
// column) or string (string column).
type PredicateSpec struct {
	Column string          `json:"column"`
	Op     string          `json:"op"`
	Value  json.RawMessage `json:"value"`
}

// SpecKey returns the canonical routing key of a query spec: a string that
// is identical for structurally identical queries regardless of the ID,
// relation order, join order, join side order or predicate order the client
// happened to use. The router and pkg/neo.Client hash this key onto the
// consistent-hash ring, so one query structure always lands on the same
// replica — which is what shards the fleet's plan caches without any shared
// state. The key is computed without catalog access (a thin router never
// opens a database), so it canonicalises syntax only; two specs that differ
// syntactically but validate to the same internal query would route to
// different replicas, costing a duplicate cache entry, never a wrong plan.
func SpecKey(q *QuerySpec) string {
	rels := append([]string(nil), q.Relations...)
	sort.Strings(rels)
	joins := make([]string, len(q.Joins))
	for i, j := range q.Joins {
		l, r := j.Left, j.Right
		if r < l {
			l, r = r, l
		}
		joins[i] = l + "=" + r
	}
	sort.Strings(joins)
	preds := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		preds[i] = p.Column + " " + strings.ToLower(p.Op) + " " + string(p.Value)
	}
	sort.Strings(preds)
	var b strings.Builder
	b.WriteString("R:")
	b.WriteString(strings.Join(rels, ","))
	b.WriteString("|J:")
	b.WriteString(strings.Join(joins, ";"))
	b.WriteString("|P:")
	b.WriteString(strings.Join(preds, ";"))
	return b.String()
}

// OptimizeResponse is the /optimize reply.
type OptimizeResponse struct {
	ID string `json:"id"`
	// Plan is the chosen plan in the paper's notation.
	Plan string `json:"plan"`
	// SQL is the query rendered back, for logging.
	SQL string `json:"sql"`
	// Score is the value network's cost estimate for the plan.
	Score float64 `json:"score"`
	// Expansions is the number of search expansions spent (0 on cache hits).
	Expansions int `json:"expansions"`
	// NetVersion identifies the network snapshot the plan came from. Echo it
	// in the feedback's net_version so a latency measured for this plan is
	// never attached to a plan from a later network.
	NetVersion uint64 `json:"net_version"`
}

// FeedbackRequest reports the observed latency of a query's plan.
type FeedbackRequest struct {
	Query     QuerySpec `json:"query"`
	LatencyMS float64   `json:"latency_ms"`
	// NetVersion is the net_version the client received from /optimize for
	// the plan it measured. When set, feedback whose plan has since been
	// superseded by a snapshot publication is rejected with 409 Conflict
	// instead of mislabeling the old plan's latency as the new plan's. Omit
	// (zero) for best-effort attachment to the currently served plan.
	NetVersion uint64 `json:"net_version,omitempty"`
}

// FeedbackResponse is the /feedback reply.
type FeedbackResponse struct {
	// Experience is the experience-pool size after the addition. On a
	// replica it is the local forwarding-queue depth instead — replicas hold
	// no pool of their own.
	Experience int `json:"experience"`
	// RetrainTriggered reports whether this feedback started a background
	// retraining round (always false on replicas, which never train).
	RetrainTriggered bool `json:"retrain_triggered"`
	// Queued reports that the feedback was accepted into a replica's
	// forwarding queue rather than applied to a local experience pool.
	Queued bool `json:"queued,omitempty"`
}

// ExperienceResponse is the trainer's POST /experience reply.
type ExperienceResponse struct {
	// Accepted is the number of entries ingested from this batch.
	Accepted int `json:"accepted"`
	// Experience is the trainer's experience-pool size after ingestion.
	Experience int `json:"experience"`
	// RetrainTriggered reports whether this batch started a background
	// retraining round.
	RetrainTriggered bool `json:"retrain_triggered"`
	// NetVersion is the trainer's latest published snapshot version.
	NetVersion uint64 `json:"net_version"`
}

// SnapshotRequest asks a replica to load a published snapshot from its
// trainer (POST /admin/snapshot).
type SnapshotRequest struct {
	// Version selects the published snapshot; zero means the trainer's
	// latest.
	Version uint64 `json:"version"`
}

// SnapshotResponse reports the snapshot a replica is serving from after an
// /admin/snapshot load.
type SnapshotResponse struct {
	NetVersion uint64 `json:"net_version"`
}

// QualityStats is a replica's plan-quality window, the signal the rollout
// coordinator compares during a canary. The window accumulates the observed
// feedback latencies since the last snapshot load; loading a snapshot
// archives the running window into the Prev fields and starts a fresh one,
// so canary quality (new weights) and baseline quality (old weights) are
// measured on the same replica and traffic mix.
type QualityStats struct {
	WindowFeedbacks     uint64  `json:"window_feedbacks"`
	WindowMeanLatencyMS float64 `json:"window_mean_latency_ms"`
	PrevWindowFeedbacks uint64  `json:"prev_window_feedbacks"`
	PrevWindowMeanMS    float64 `json:"prev_window_mean_latency_ms"`
}

// ClusterStats is the "cluster" section of a replica's /stats.
type ClusterStats struct {
	// Role is "replica" (standalone daemons omit the section).
	Role string `json:"role"`
	// Trainer is the configured trainer base URL.
	Trainer string `json:"trainer"`
	// SnapshotVersion is the published snapshot version the replica serves
	// from (equal to the top-level net_version).
	SnapshotVersion uint64 `json:"snapshot_version"`
	// Queued is the current forwarding-queue depth.
	Queued int `json:"queued"`
	// Forwarded counts experience entries delivered to the trainer.
	Forwarded uint64 `json:"forwarded"`
	// Dropped counts entries evicted from a full queue (trainer down for
	// longer than the queue bound absorbs).
	Dropped uint64 `json:"dropped"`
	// ForwardErrors counts failed forwarding attempts (after retries).
	ForwardErrors uint64 `json:"forward_errors"`
	// LastForwardError is the most recent forwarding failure, empty when the
	// last attempt succeeded.
	LastForwardError string `json:"last_forward_error,omitempty"`
	// Quality is the plan-quality window the rollout coordinator reads.
	Quality QualityStats `json:"quality"`
}

// ReplicaStats is the subset of a replica's /stats the cluster control plane
// (coordinator, router) decodes. Replicas report much more; unknown fields
// are ignored.
type ReplicaStats struct {
	NetVersion uint64        `json:"net_version"`
	Optimizes  uint64        `json:"optimizes"`
	Feedbacks  uint64        `json:"feedbacks"`
	Cluster    *ClusterStats `json:"cluster,omitempty"`
}

// RolloutStatus is the "rollout" section of the trainer's /stats.
type RolloutStatus struct {
	// Phase is "disabled", "idle", "canary" or "promote".
	Phase string `json:"phase"`
	// Version is the snapshot version currently being rolled out (canary or
	// promote phase), zero when idle.
	Version uint64 `json:"version,omitempty"`
	// Canary is the replica carrying the canary, empty when idle.
	Canary string `json:"canary,omitempty"`
	// Promoted is the last version promoted fleet-wide (zero before the
	// first promotion).
	Promoted uint64 `json:"promoted"`
	// Promotions and Rollbacks count completed rollout decisions.
	Promotions uint64 `json:"promotions"`
	Rollbacks  uint64 `json:"rollbacks"`
	// BadVersions lists versions rolled back and barred from re-canarying.
	BadVersions []uint64 `json:"bad_versions,omitempty"`
}

// TrainerStats is the trainer's /stats reply.
type TrainerStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// NetVersion is the latest *published* snapshot version (what GET
	// /snapshot serves); Training reports whether a round is in flight that
	// will publish a newer one.
	NetVersion uint64 `json:"net_version"`
	// Versions lists the published snapshot versions still available for
	// download (rollback needs at least the previous one).
	Versions []uint64 `json:"versions"`
	// Experience is the trainer's experience-pool size.
	Experience int `json:"experience"`
	// Batches counts POST /experience batches accepted; Accepted the entries
	// they carried.
	Batches  uint64 `json:"batches"`
	Accepted uint64 `json:"accepted"`
	// Retrains counts completed retraining rounds; Training reports one in
	// flight.
	Retrains      uint64         `json:"retrains"`
	Training      bool           `json:"training"`
	LastTrainLoss float64        `json:"last_train_loss"`
	Checkpoints   uint64         `json:"checkpoints"`
	Rollout       *RolloutStatus `json:"rollout,omitempty"`
}

// Error is the JSON error body every daemon returns on non-2xx statuses.
type Error struct {
	Message string `json:"error"`
}

// StatusError reports a non-2xx HTTP response whose body could be read.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("http status %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// Retryable reports whether an RPC error is worth retrying: network errors
// and 5xx statuses are (the peer may be restarting); 4xx statuses are not
// (the request itself is wrong, or semantically stale — 409).
func Retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return err != nil
}

// Client is a retrying HTTP client: every replica↔trainer (and client→
// replica) RPC in the cluster goes through one, so a transient failure —
// a restarting trainer, a GC pause, a dropped connection — costs a backoff,
// not a lost request. Retries apply only to Retryable errors; 4xx responses
// return immediately. The zero value is usable and picks the defaults.
type Client struct {
	// HTTP is the underlying client (default: a client with Timeout as its
	// per-attempt timeout).
	HTTP *http.Client
	// Attempts is the total number of tries per call (default 3).
	Attempts int
	// Backoff is the delay before the second attempt, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// Timeout bounds each individual attempt (default 10s). Ignored when
	// HTTP is set.
	Timeout time.Duration
}

func (c *Client) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return 3
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &http.Client{Timeout: timeout}
}

// do runs one attempt cycle: fn is called up to Attempts times with
// exponential backoff between tries, stopping early on success, a
// non-retryable error, or context cancellation.
func (c *Client) do(ctx context.Context, fn func() error) error {
	backoff := c.backoff()
	var err error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				return fmt.Errorf("%w (last error: %v)", ctx.Err(), err)
			}
		}
		if err = fn(); err == nil || !Retryable(err) {
			return err
		}
	}
	return err
}

// PostJSON POSTs in as JSON and decodes a 2xx response into out (out may be
// nil). Non-2xx responses return a *StatusError; 5xx and transport errors
// are retried.
func (c *Client) PostJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, func() error {
		return c.roundTrip(ctx, http.MethodPost, url, "application/json", body, out, nil)
	})
}

// PostBytes POSTs a binary payload (a NEOCKPT1 container) and decodes a 2xx
// JSON response into out.
func (c *Client) PostBytes(ctx context.Context, url string, payload []byte, out any) error {
	return c.do(ctx, func() error {
		return c.roundTrip(ctx, http.MethodPost, url, "application/octet-stream", payload, out, nil)
	})
}

// GetJSON GETs url and decodes a 2xx response into out.
func (c *Client) GetJSON(ctx context.Context, url string, out any) error {
	return c.do(ctx, func() error {
		return c.roundTrip(ctx, http.MethodGet, url, "", nil, out, nil)
	})
}

// GetBytes GETs url and returns the raw 2xx body (a snapshot container)
// along with the response headers.
func (c *Client) GetBytes(ctx context.Context, url string) ([]byte, http.Header, error) {
	var payload []byte
	var hdr http.Header
	err := c.do(ctx, func() error {
		var e error
		payload, hdr, e = c.roundTripBytes(ctx, url)
		return e
	})
	return payload, hdr, err
}

func (c *Client) roundTrip(ctx context.Context, method, url, contentType string, body []byte, out any, hdr *http.Header) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &StatusError{Code: resp.StatusCode, Body: string(msg)}
	}
	if hdr != nil {
		*hdr = resp.Header
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) roundTripBytes(ctx context.Context, url string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, nil, &StatusError{Code: resp.StatusCode, Body: string(msg)}
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return payload, resp.Header, nil
}

// Hash64 hashes a routing key onto the 64-bit ring space: FNV-1a followed by
// a murmur-style finalizer. The finalizer matters — raw FNV-1a of short,
// similar keys (query specs differing only in a literal) varies mostly in
// its low bits, and ring placement is ordered by the high bits, so without
// mixing the whole fleet's traffic lands in one narrow arc of the ring. The
// ring package uses the same function for its node points.
func Hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	s := h.Sum64()
	s ^= s >> 33
	s *= 0xff51afd7ed558ccd
	s ^= s >> 33
	s *= 0xc4ceb9fe1a85ec53
	s ^= s >> 33
	return s
}
