package analysis

import (
	"go/token"
	"strings"
)

// suppressionPrefix is the comment marker that waives one finding of one
// check at one site. The full form is:
//
//	//neo:lint-ok <check> <reason>
//
// either trailing on the offending line or as a full-line comment on the
// line directly above it. The reason is mandatory — an allowlist entry
// without a recorded justification is how allowlists rot — and in strict
// mode a suppression that no longer matches any finding is itself an error.
const suppressionPrefix = "neo:lint-ok"

// suppression is one parsed //neo:lint-ok comment.
type suppression struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// suppressions indexes a package's suppression comments by file and line.
type suppressions struct {
	// byLine maps filename -> line -> suppressions whose coverage includes
	// that line (a comment covers its own line and the line below it).
	byLine map[string]map[int][]*suppression
	all    []*suppression
}

// collectSuppressions parses every comment of the package, returning the
// index plus driver-level findings for malformed suppressions (missing
// check name, unknown check name, or missing reason).
func collectSuppressions(pkg *Package) (*suppressions, []Finding) {
	known := make(map[string]bool)
	for _, name := range CheckNames() {
		known[name] = true
	}
	sup := &suppressions{byLine: make(map[string]map[int][]*suppression)}
	var malformed []Finding
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//"+suppressionPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					malformed = append(malformed, Finding{Pos: pos, Check: "lint",
						Message: "malformed suppression: want //neo:lint-ok <check> <reason>"})
					continue
				case !known[fields[0]]:
					malformed = append(malformed, Finding{Pos: pos, Check: "lint",
						Message: "malformed suppression: unknown check " + strings.Trim(fields[0], `"`) +
							" (known: " + strings.Join(CheckNames(), ", ") + ")"})
					continue
				case len(fields) < 2:
					malformed = append(malformed, Finding{Pos: pos, Check: "lint",
						Message: "suppression for " + fields[0] + " is missing its reason"})
					continue
				}
				s := &suppression{pos: pos, check: fields[0], reason: strings.Join(fields[1:], " ")}
				sup.all = append(sup.all, s)
				lines := sup.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*suppression)
					sup.byLine[pos.Filename] = lines
				}
				// A trailing comment covers its own line; a full-line comment
				// covers the next. Registering both keeps the matcher a map
				// lookup and cannot misfire: a finding on the comment's own
				// line can only come from code left of a trailing comment.
				lines[pos.Line] = append(lines[pos.Line], s)
				lines[pos.Line+1] = append(lines[pos.Line+1], s)
			}
		}
	}
	return sup, malformed
}

// suppressed reports whether a finding of the named check at position is
// covered by a suppression, marking the suppression used.
func (s *suppressions) suppressed(check string, pos token.Position) bool {
	for _, cand := range s.byLine[pos.Filename][pos.Line] {
		if cand.check == check {
			cand.used = true
			return true
		}
	}
	return false
}

// stale returns one finding per suppression that never matched a finding.
// When only a subset of checks ran (enabled non-nil), suppressions for the
// checks that did not run are exempt — they had no chance to be used.
func (s *suppressions) stale(enabled []string) []Finding {
	ran := make(map[string]bool)
	if enabled == nil {
		for _, name := range CheckNames() {
			ran[name] = true
		}
	} else {
		for _, name := range enabled {
			ran[name] = true
		}
	}
	var out []Finding
	for _, sup := range s.all {
		if !sup.used && ran[sup.check] {
			out = append(out, Finding{Pos: sup.pos, Check: "lint",
				Message: "stale suppression: no " + sup.check + " finding here (drop the //neo:lint-ok)"})
		}
	}
	return out
}
