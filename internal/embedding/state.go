// Embedding state serialization. A trained row-vector model is a pure
// function of the database and the training configuration, but retraining it
// is the slowest part of assembling an R-Vector system — and a checkpointed
// optimizer must keep scoring with exactly the vectors it was trained
// against. Save/Load capture the whole model: vocabulary, counts and both
// the input (row) and output (context) vector tables.
package embedding

import (
	"fmt"
	"io"
	"time"

	"neo/internal/wire"
)

// Save writes the trained model.
func (m *Model) Save(w io.Writer) error {
	if err := wire.WriteU32(w, uint32(m.Dim)); err != nil {
		return err
	}
	if err := wire.WriteU64(w, uint64(m.Sentences)); err != nil {
		return err
	}
	if err := wire.WriteI64(w, int64(m.TrainTime)); err != nil {
		return err
	}
	if err := wire.WriteU32(w, uint32(len(m.tokens))); err != nil {
		return err
	}
	for i, tok := range m.tokens {
		if err := wire.WriteString(w, tok); err != nil {
			return err
		}
		if err := wire.WriteU64(w, uint64(m.counts[i])); err != nil {
			return err
		}
		if err := wire.WriteF64s(w, m.in[i]); err != nil {
			return err
		}
		if err := wire.WriteF64s(w, m.out[i]); err != nil {
			return err
		}
	}
	return nil
}

// LoadModel reads a model written by Save and rebuilds its vocabulary index.
func LoadModel(r io.Reader) (*Model, error) {
	dim, err := wire.ReadU32(r)
	if err != nil {
		return nil, err
	}
	sentences, err := wire.ReadU64(r)
	if err != nil {
		return nil, err
	}
	trainTime, err := wire.ReadI64(r)
	if err != nil {
		return nil, err
	}
	n, err := wire.ReadU32(r)
	if err != nil {
		return nil, err
	}
	// Bound the vocabulary like every other count prefix in the checkpoint
	// codec: a corrupted or crafted count must fail cleanly, not allocate
	// gigabytes. Real vocabularies are a few thousand tokens.
	const maxVocab = 1 << 24
	if n > maxVocab {
		return nil, fmt.Errorf("embedding: token count %d exceeds limit %d (corrupt count prefix?)", n, maxVocab)
	}
	m := &Model{
		Dim:       int(dim),
		Sentences: int(sentences),
		TrainTime: time.Duration(trainTime),
		vocab:     make(map[string]int, n),
	}
	for i := 0; i < int(n); i++ {
		tok, err := wire.ReadString(r)
		if err != nil {
			return nil, err
		}
		count, err := wire.ReadU64(r)
		if err != nil {
			return nil, err
		}
		in, err := wire.ReadF64s(r)
		if err != nil {
			return nil, err
		}
		out, err := wire.ReadF64s(r)
		if err != nil {
			return nil, err
		}
		if len(in) != m.Dim || len(out) != m.Dim {
			return nil, fmt.Errorf("embedding: token %q has %d/%d-dim vectors, model dim is %d",
				tok, len(in), len(out), m.Dim)
		}
		if _, dup := m.vocab[tok]; dup {
			return nil, fmt.Errorf("embedding: duplicate token %q in saved model", tok)
		}
		m.vocab[tok] = len(m.tokens)
		m.tokens = append(m.tokens, tok)
		m.counts = append(m.counts, int(count))
		m.in = append(m.in, in)
		m.out = append(m.out, out)
	}
	return m, nil
}
