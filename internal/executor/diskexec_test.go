package executor

import (
	"math"
	"testing"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/storage"
	"neo/internal/workload"
)

// diskFixture materializes the shared IMDB fixture to a temp dir and opens
// both executors over the same data: the in-memory executor with its
// sampling cap raised far beyond the workload (so its counts are exact,
// like the disk executor's), and the disk executor with a small buffer pool
// so scans actually cycle pages through eviction.
func diskFixture(t testing.TB) (*storage.Database, *Executor, *DiskExecutor) {
	t.Helper()
	db := imdb(t)
	if err := db.BuildIndexes(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := storage.Materialize(db, dir); err != nil {
		t.Fatal(err)
	}
	ddb, err := storage.OpenDisk(dir, db.Catalog, storage.PagesForMB(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ddb.Close() })
	sim := New(db)
	sim.MaxRows = 1 << 20
	if err := ddb.VerifyAgainst(db); err != nil {
		t.Fatal(err)
	}
	return db, sim, NewDisk(ddb)
}

// opPlan builds a left-deep plan for q with every join using op and every
// leaf using scan.
func opPlan(t *testing.T, q *query.Query, op plan.JoinOp, scan plan.ScanType) *plan.Plan {
	t.Helper()
	p, err := canonicalPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	p.Roots[0].Walk(func(n *plan.Node) {
		if n.IsLeaf() {
			n.Scan = scan
		} else {
			n.Join = op
		}
	})
	return p
}

// assertParity executes one plan on both backends and requires identical
// per-node statistics. The inner leaf of a join the disk backend runs as a
// true index-nested-loop is the one documented divergence: INL never scans
// the inner table, so that leaf's output counts index-fetched tuples; the
// join node above it must still agree on OutputRows.
func assertParity(t *testing.T, sim *Executor, disk *DiskExecutor, p *plan.Plan) {
	t.Helper()
	simRes, err := sim.Execute(p)
	if err != nil {
		t.Fatalf("sim execute: %v", err)
	}
	diskRes, err := disk.Execute(p)
	if err != nil {
		t.Fatalf("disk execute: %v", err)
	}
	if diskRes.Truncated {
		t.Fatalf("disk execution truncated on the parity workload")
	}
	if diskRes.OutputRows != simRes.OutputRows {
		t.Fatalf("root cardinality: disk %v, sim %v (plan %s)", diskRes.OutputRows, simRes.OutputRows, p)
	}

	inlInner := map[*plan.Node]bool{}
	p.Roots[0].Walk(func(n *plan.Node) {
		if !n.IsLeaf() && n.Join == plan.LoopJoin && simRes.Nodes[n].InnerIndexOnJoinKey {
			inlInner[n.Right] = true
		}
	})

	p.Roots[0].Walk(func(n *plan.Node) {
		sn, dn := simRes.Nodes[n], diskRes.Nodes[n]
		if sn == nil || dn == nil {
			t.Fatalf("node %s: missing stats (sim %v, disk %v)", n, sn != nil, dn != nil)
		}
		if sn.CrossProduct != dn.CrossProduct ||
			sn.IndexOnPredicate != dn.IndexOnPredicate ||
			sn.InnerIndexOnJoinKey != dn.InnerIndexOnJoinKey ||
			sn.LeftSorted != dn.LeftSorted || sn.RightSorted != dn.RightSorted {
			t.Errorf("node %s: flag mismatch sim=%+v disk=%+v", n, sn, dn)
		}
		if sn.BaseRows != dn.BaseRows {
			t.Errorf("node %s: BaseRows disk %v, sim %v", n, dn.BaseRows, sn.BaseRows)
		}
		if inlInner[n] {
			return // documented divergence: counts index fetches, not a scan
		}
		if dn.OutputRows != sn.OutputRows {
			t.Errorf("node %s: OutputRows disk %v, sim %v", n, dn.OutputRows, sn.OutputRows)
		}
		if !n.IsLeaf() {
			if dn.LeftRows != sn.LeftRows {
				t.Errorf("node %s: LeftRows disk %v, sim %v", n, dn.LeftRows, sn.LeftRows)
			}
			if !inlInner[n.Right] && dn.RightRows != sn.RightRows {
				t.Errorf("node %s: RightRows disk %v, sim %v", n, dn.RightRows, sn.RightRows)
			}
		}
	})
}

func TestDiskSimParityEveryJoinOperator(t *testing.T) {
	_, sim, disk := diskFixture(t)
	q := loveQuery()
	for _, op := range plan.AllJoinOps {
		for _, scan := range []plan.ScanType{plan.TableScan, plan.IndexScan} {
			assertParity(t, sim, disk, opPlan(t, q, op, scan))
		}
	}
}

// TestDiskSimParityINLShape pins the index-nested-loop shape explicitly: a
// loop join whose inner child is an index scan of a base relation with an
// indexed join column. The disk backend must run it through the RID index
// and still produce the sim backend's join cardinality.
func TestDiskSimParityINLShape(t *testing.T) {
	_, sim, disk := diskFixture(t)
	q := loveQuery()
	p := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.LoopJoin,
			plan.Join2(plan.LoopJoin,
				plan.Leaf("title", plan.TableScan),
				plan.Leaf("movie_keyword", plan.IndexScan)),
			plan.Leaf("keyword", plan.IndexScan)),
	}}
	simRes, err := sim.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// The shape must actually qualify as INL, or the test pins nothing.
	for _, n := range []*plan.Node{p.Roots[0], p.Roots[0].Left} {
		if !simRes.Nodes[n].InnerIndexOnJoinKey {
			t.Fatalf("expected InnerIndexOnJoinKey on %s", n)
		}
	}
	assertParity(t, sim, disk, p)

	// And the INL path really avoided scanning the inner tables: fetched
	// inner tuples (RightRows) stay below the inner tables' base rows.
	diskRes, err := disk.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	root := diskRes.Nodes[p.Roots[0]]
	if root.RightRows >= root.OutputRows+diskRes.Nodes[p.Roots[0].Right].BaseRows {
		t.Errorf("INL fetched %v inner rows, suspiciously many", root.RightRows)
	}
}

func TestDiskSimParitySeededWorkload(t *testing.T) {
	db, sim, disk := diskFixture(t)
	w, err := workload.JOB(db, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	ops := plan.AllJoinOps
	for i, q := range w.Queries {
		assertParity(t, sim, disk, opPlan(t, q, ops[i%len(ops)], plan.TableScan))
		assertParity(t, sim, disk, opPlan(t, q, ops[(i+1)%len(ops)], plan.IndexScan))
	}
}

func TestDiskCrossProductParity(t *testing.T) {
	_, sim, disk := diskFixture(t)
	// Two relations with no join predicate: both backends cap the cross
	// product at their row budget; at this scale neither cap is hit, so the
	// cardinality is the exact product.
	q := query.New("cross", []string{"keyword", "company"}, nil, []query.Predicate{
		{Table: "keyword", Column: "keyword", Op: query.Like, Value: storage.StringValue("a")},
	})
	p := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin,
			plan.Leaf("keyword", plan.TableScan),
			plan.Leaf("company", plan.TableScan)),
	}}
	assertParity(t, sim, disk, p)
	res, err := disk.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nodes[p.Roots[0]].CrossProduct {
		t.Fatal("expected a cross-product node")
	}
}

// TestDiskBufferPoolSeesTraffic asserts executing plans actually moves pages
// through the pool: a 1 MiB pool over the fixture database must record
// misses and, across repeated scans of distinct tables, evictions.
func TestDiskBufferPoolSeesTraffic(t *testing.T) {
	_, sim, disk := diskFixture(t)
	disk.DB().Pool.Reset()
	q := loveQuery()
	for _, op := range plan.AllJoinOps {
		assertParity(t, sim, disk, opPlan(t, q, op, plan.TableScan))
	}
	s := disk.DB().Pool.Stats()
	if s.Misses == 0 || s.BytesRead == 0 {
		t.Fatalf("no buffer-pool traffic recorded: %+v", s)
	}
}

// ---- maybeSample regression tests ----

// TestMaybeSampleExactCount pins the fix for the float-stride bug: the
// sample must contain exactly limit distinct rows and card() must be exactly
// the pre-sample cardinality, for limits that do not divide the row count.
func TestMaybeSampleExactCount(t *testing.T) {
	for _, tc := range []struct{ n, limit int }{
		{100, 7}, {1000, 333}, {50001, 50000}, {99999, 1024}, {10, 9},
	} {
		e := &Executor{MaxRows: tc.limit}
		r := newRelation([]string{"t"})
		for i := 0; i < tc.n; i++ {
			r.rows = append(r.rows, []int32{int32(i)})
		}
		r.mult = 2 // pre-existing scale factors must compose
		e.maybeSample(r)
		if len(r.rows) != tc.limit {
			t.Errorf("n=%d limit=%d: sampled %d rows, want exactly %d", tc.n, tc.limit, len(r.rows), tc.limit)
		}
		if got, want := r.card(), 2*float64(tc.n); math.Abs(got-want) > 1e-6*want {
			t.Errorf("n=%d limit=%d: card() = %v, want %v", tc.n, tc.limit, got, want)
		}
		for i := 1; i < len(r.rows); i++ {
			if r.rows[i][0] <= r.rows[i-1][0] {
				t.Fatalf("n=%d limit=%d: sample indices not strictly increasing at %d", tc.n, tc.limit, i)
			}
		}
	}
}

// TestSampledCardinalityUnderAggressiveCap executes the shared join query
// under a MaxRows cap far below the intermediate sizes and checks the
// estimated cardinalities stay within tolerance of the exact ones. The
// sampled node's own card() is exact by construction; downstream joins see
// a uniform subsample, so their relative error is bounded (loosely) by the
// sampling fraction — 25% is far above what the fixed seed produces, so
// this stays deterministic while still catching a reintroduced bias.
func TestSampledCardinalityUnderAggressiveCap(t *testing.T) {
	db := imdb(t)
	q := loveQuery()

	exact := New(db)
	exact.MaxRows = 1 << 20
	p, err := canonicalPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Execute(p)
	if err != nil {
		t.Fatal(err)
	}

	capped := New(db)
	capped.MaxRows = 300 // well below the larger base-table scans at scale 0.3
	got, err := capped.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if want.OutputRows == 0 {
		t.Fatal("fixture query returned no rows; tolerance check is vacuous")
	}
	relErr := math.Abs(got.OutputRows-want.OutputRows) / want.OutputRows
	if relErr > 0.25 {
		t.Errorf("sampled root cardinality %v vs exact %v (rel err %.3f > 0.25)",
			got.OutputRows, want.OutputRows, relErr)
	}
	// Every scan node's own cardinality must be exact even when sampled.
	p.Roots[0].Walk(func(n *plan.Node) {
		if !n.IsLeaf() {
			return
		}
		if g, w := got.Nodes[n].OutputRows, want.Nodes[n].OutputRows; g != w {
			t.Errorf("scan %s: sampled OutputRows %v, exact %v", n, g, w)
		}
	})
}
