package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"neo/internal/tools/walk"
)

// Package is one loaded, type-checked package: the syntax the checks walk
// and the type information they resolve identifiers against.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the package's import path within the module.
	Path string
	// Files holds the parsed non-test Go files, in file-name order.
	Files []*ast.File
	// Fset positions every token of Files.
	Fset *token.FileSet
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the expression types, object resolution and selection
	// records the checks consult.
	Info *types.Info
}

// Loader loads and type-checks every package of one module from source.
// Module-internal imports are resolved by recursively loading the imported
// package; standard-library imports are resolved from the toolchain's
// compiled export data, located once per Loader via `go list -export`.
// Everything else (there is nothing else in this repository — it has no
// third-party dependencies) is an error.
type Loader struct {
	// Root is the absolute module root directory.
	Root string
	// Module is the module path from go.mod.
	Module string

	fset    *token.FileSet
	std     types.ImporterFrom
	exports map[string]string // stdlib import path -> export data file
	pkgs    map[string]*Package
	loading map[string]bool // cycle guard (cannot happen in valid Go; belt and braces)
}

// NewLoader creates a loader for the module containing dir (dir itself or
// any parent must hold go.mod). It runs `go list -export -deps` once to map
// the module's standard-library dependency closure to compiled export data;
// the go command is required on PATH, which is a given for a tool run as
// `go run ./cmd/neo-lint`.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Root:    root,
		Module:  module,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	if err := l.resolveStdExports(); err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the module's dependency closure)", path)
		}
		return os.Open(file)
	}
	imp, ok := importer.ForCompiler(l.fset, "gc", lookup).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: gc importer does not implement ImporterFrom")
	}
	l.std = imp
	return l, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// resolveStdExports maps every standard-library package in the module's
// dependency closure to its compiled export data. One `go list` run covers
// all packages a check could encounter, including the analysis fixtures
// (whose imports are restricted to this closure by the fixture tests).
func (l *Loader) resolveStdExports() error {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export,Standard", "./...")
	cmd.Dir = l.Root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("analysis: go list -export failed: %v\n%s", err, stderr.String())
	}
	type listPkg struct {
		ImportPath string
		Export     string
		Standard   bool
	}
	l.exports = make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Standard && p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// Import implements types.Importer by delegating to ImportFrom.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal packages load
// from source, everything else from stdlib export data.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// importPath converts a directory under the module root to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPath.
func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

// LoadDir loads and type-checks the package in one directory (which may be
// anywhere under the module root, including a testdata fixture directory).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

// LoadAll discovers every package directory under the module root (the
// shared repo walker's exclusions apply: no testdata, no dot- or
// underscore-directories) and loads each one. Packages come back in import
// path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := walk.GoPackageDirs(l.Root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// load parses and type-checks one module package (memoized).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	names, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Dir: dir, Path: path, Files: files, Fset: l.fset, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// sourceFiles lists the non-test Go files of dir that build under the
// current GOOS/GOARCH and build tags (so e.g. gemm_amd64.go and
// gemm_other.go never collide), in name order.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: matching %s: %w", name, err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
