package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> content under a temp
// root, creating parent directories as needed.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCheckResolvesRelativeLinks(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "see [docs](docs/GUIDE.md) and [ops](docs/OPS.md#flags)\n" +
			"and the [img](./diagram.png)\n",
		"docs/GUIDE.md":  "back to [readme](../README.md)\n",
		"docs/OPS.md":    "ops\n",
		"diagram.png":    "png",
		"docs/other.txt": "not markdown, [broken](nope.md) ignored\n",
	})
	broken, checked, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("expected no broken links, got %v", broken)
	}
	// README has 3 resolvable targets, GUIDE has 1; OPS has none.
	if checked != 4 {
		t.Fatalf("checked = %d, want 4", checked)
	}
}

func TestCheckReportsBrokenLinksWithPosition(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "fine line\n[gone](missing/FILE.md)\n",
	})
	broken, _, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 {
		t.Fatalf("expected 1 broken link, got %v", broken)
	}
	if !strings.Contains(broken[0], "README.md:2") {
		t.Errorf("broken report %q does not carry file:line", broken[0])
	}
	if !strings.Contains(broken[0], `"missing/FILE.md"`) {
		t.Errorf("broken report %q does not name the target", broken[0])
	}
}

func TestCheckSkipsExternalFragmentAndFenced(t *testing.T) {
	content := "[ext](https://example.com/x) [mail](mailto:a@b.c) [frag](#section)\n" +
		"```\n[in fence](never/exists.md)\n```\n" +
		"[empty-after-fragment](#)\n"
	root := writeTree(t, map[string]string{"README.md": content})
	broken, checked, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("expected no broken links, got %v", broken)
	}
	if checked != 0 {
		t.Fatalf("checked = %d, want 0 (nothing resolvable outside fences)", checked)
	}
}

func TestCheckSkipsGitTestdataAndDotDirs(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":           "[ok](sub/OK.md)\n",
		"sub/OK.md":           "ok\n",
		".git/BAD.md":         "[broken](../nope.md)\n",
		"testdata/BAD.md":     "[broken](nope.md)\n",
		"pkg/testdata/BAD.md": "[broken](nope.md)\n",
		"_junk/BAD.md":        "[broken](nope.md)\n",
	})
	broken, checked, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("excluded dirs leaked into the walk: %v", broken)
	}
	if checked != 1 {
		t.Fatalf("checked = %d, want 1", checked)
	}
}

func TestCheckFragmentSuffixResolvesFile(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "[ops](OPS.md#section) [gone](GONE.md#section)\n",
		"OPS.md":    "ops\n",
	})
	broken, checked, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if checked != 2 {
		t.Fatalf("checked = %d, want 2", checked)
	}
	if len(broken) != 1 || !strings.Contains(broken[0], `"GONE.md#section"`) {
		t.Fatalf("expected exactly the fragment link to GONE.md to break, got %v", broken)
	}
}
