// Package expert implements the classical, non-learned optimizers of the
// reproduction: Selinger-style dynamic programming over join orders with
// histogram-based cardinality estimation, operator and access-path selection
// against an engine's cost model, plus greedy and random baselines.
//
// These optimizers play three roles, mirroring the paper:
//
//   - the PostgreSQL-profile optimizer is the *expert* whose plans bootstrap
//     Neo's value network (learning from demonstration, Section 2);
//   - each engine's *native* optimizer is the baseline Neo must match or
//     beat (Figures 9 and 10);
//   - the random planner is the no-demonstration ablation (Section 6.3.3).
package expert

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"neo/internal/engine"
	"neo/internal/executor"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/schema"
	"neo/internal/stats"
)

// Estimator supplies the cardinality estimates a classical optimizer plans
// with. Implementations range from pure histogram estimates (PostgreSQL-like)
// to partially corrected estimates (commercial-like).
type Estimator interface {
	// ScanRows estimates the output cardinality of scanning table with the
	// given predicates applied.
	ScanRows(table string, preds []query.Predicate) float64
	// JoinRows estimates the cardinality of joining two inputs connected by
	// the given join predicates.
	JoinRows(leftRows, rightRows float64, joins []query.JoinPredicate) float64
	// BaseRows returns the total row count of a table.
	BaseRows(table string) float64
}

// HistogramEstimator estimates cardinalities from per-column histograms with
// uniformity and independence assumptions (the PostgreSQL-style estimator).
type HistogramEstimator struct {
	Stats *stats.Stats
	// Error optionally perturbs every estimate (Figure 14 protocol).
	Error *stats.ErrorModel
}

// ScanRows implements Estimator.
func (h *HistogramEstimator) ScanRows(table string, preds []query.Predicate) float64 {
	return h.perturb(h.Stats.EstimateScanRows(table, preds))
}

// JoinRows implements Estimator.
func (h *HistogramEstimator) JoinRows(leftRows, rightRows float64, joins []query.JoinPredicate) float64 {
	if len(joins) == 0 {
		return math.Max(1, leftRows*rightRows)
	}
	est := h.Stats.EstimateJoinRows(leftRows, rightRows, joins[0])
	// Additional join predicates multiply in their selectivities under
	// independence.
	for _, j := range joins[1:] {
		extra := h.Stats.EstimateJoinRows(leftRows, rightRows, j)
		denom := leftRows * rightRows
		if denom > 0 {
			est *= math.Max(extra/denom, 1e-9)
		}
	}
	return h.perturb(math.Max(1, est))
}

// BaseRows implements Estimator.
func (h *HistogramEstimator) BaseRows(table string) float64 { return h.Stats.TableRows(table) }

func (h *HistogramEstimator) perturb(v float64) float64 {
	if h.Error == nil {
		return v
	}
	return h.Error.Perturb(v)
}

// CorrectedEstimator improves on the histogram estimator by using exact
// single-table selectivities and sampling-corrected pairwise join
// selectivities, standing in for the richer statistics machinery of
// commercial optimizers. Quality in [0,1] blends between pure histogram
// estimates (0) and corrected estimates (1).
type CorrectedEstimator struct {
	Histogram *HistogramEstimator
	Exec      *executor.Executor
	Quality   float64

	scanCache map[string]float64
}

// NewCorrectedEstimator builds a corrected estimator of the given quality.
func NewCorrectedEstimator(h *HistogramEstimator, exec *executor.Executor, quality float64) *CorrectedEstimator {
	return &CorrectedEstimator{Histogram: h, Exec: exec, Quality: quality, scanCache: make(map[string]float64)}
}

// ScanRows implements Estimator.
func (c *CorrectedEstimator) ScanRows(table string, preds []query.Predicate) float64 {
	hist := c.Histogram.ScanRows(table, preds)
	key := table
	for _, p := range preds {
		key += "|" + p.String()
	}
	exact, ok := c.scanCache[key]
	if !ok {
		sel, err := c.Exec.Selectivity(table, preds)
		if err != nil {
			return hist
		}
		exact = math.Max(1, sel*c.Histogram.BaseRows(table))
		c.scanCache[key] = exact
	}
	return blend(hist, exact, c.Quality)
}

// JoinRows implements Estimator.
func (c *CorrectedEstimator) JoinRows(leftRows, rightRows float64, joins []query.JoinPredicate) float64 {
	return c.Histogram.JoinRows(leftRows, rightRows, joins)
}

// BaseRows implements Estimator.
func (c *CorrectedEstimator) BaseRows(table string) float64 { return c.Histogram.BaseRows(table) }

func blend(a, b, q float64) float64 {
	q = math.Max(0, math.Min(1, q))
	return a*(1-q) + b*q
}

// Config controls the search space of the classical optimizer.
type Config struct {
	// Bushy enables bushy join trees; otherwise only left-deep trees are
	// considered (PostgreSQL- and SQLite-like behaviour).
	Bushy bool
	// JoinOps restricts the physical join operators considered. Empty means
	// all operators.
	JoinOps []plan.JoinOp
	// AllowCrossProducts permits cross joins when the join graph is
	// disconnected.
	AllowCrossProducts bool
}

// Optimizer is a Selinger-style cost-based optimizer: dynamic programming
// over relation subsets, with operator and access-path selection priced by
// the target engine's cost model using the Estimator's cardinalities.
type Optimizer struct {
	Engine  *engine.Engine
	Est     Estimator
	Catalog *schema.Catalog
	Config  Config
}

// NewOptimizer builds an optimizer for the given engine, estimator and
// catalog.
func NewOptimizer(eng *engine.Engine, est Estimator, cat *schema.Catalog, cfg Config) *Optimizer {
	return &Optimizer{Engine: eng, Est: est, Catalog: cat, Config: cfg}
}

// memoEntry is the best plan found for one subset of relations.
type memoEntry struct {
	node  *plan.Node
	stats map[*plan.Node]*executor.NodeStats
	rows  float64
	cost  float64
}

// Optimize returns the cheapest complete plan the optimizer can find for q
// under its configuration, together with its estimated cost.
func (o *Optimizer) Optimize(q *query.Query) (*plan.Plan, float64, error) {
	if err := q.Validate(o.Catalog); err != nil {
		return nil, 0, fmt.Errorf("expert: %w", err)
	}
	n := len(q.Relations)
	if n > 20 {
		return nil, 0, fmt.Errorf("expert: query %s has too many relations (%d) for exhaustive optimization", q.ID, n)
	}
	ops := o.Config.JoinOps
	if len(ops) == 0 {
		ops = plan.AllJoinOps
	}

	// Base cases: single relations with the best access path.
	memo := make(map[uint32]*memoEntry, 1<<uint(n))
	for i, rel := range q.Relations {
		memo[1<<uint(i)] = o.bestScan(q, rel)
	}

	full := uint32(1<<uint(n)) - 1
	for size := 2; size <= n; size++ {
		for set := uint32(1); set <= full; set++ {
			if bits.OnesCount32(set) != size {
				continue
			}
			var best *memoEntry
			consider := func(leftSet, rightSet uint32) {
				left, lok := memo[leftSet]
				right, rok := memo[rightSet]
				if !lok || !rok {
					return
				}
				joins := q.JoinsBetween(tableSet(q, leftSet), tableSet(q, rightSet))
				if len(joins) == 0 && !o.Config.AllowCrossProducts {
					return
				}
				for _, op := range ops {
					cand := o.joinEntries(q, left, right, op, joins)
					if best == nil || cand.cost < best.cost {
						best = cand
					}
				}
			}
			if o.Config.Bushy {
				// Enumerate every split of the subset into two non-empty parts.
				for sub := (set - 1) & set; sub > 0; sub = (sub - 1) & set {
					other := set &^ sub
					if sub > other {
						continue // each unordered split once; joinEntries tries both orientations
					}
					consider(sub, other)
					consider(other, sub)
				}
			} else {
				// Left-deep: the right side is always a single relation.
				for i := 0; i < n; i++ {
					bit := uint32(1) << uint(i)
					if set&bit == 0 {
						continue
					}
					rest := set &^ bit
					if rest == 0 {
						continue
					}
					consider(rest, bit)
					consider(bit, rest)
				}
			}
			if best != nil {
				memo[set] = best
			}
		}
	}

	final, ok := memo[full]
	if !ok {
		// Disconnected join graph without cross products allowed: retry with
		// cross products.
		if !o.Config.AllowCrossProducts {
			retry := *o
			retry.Config.AllowCrossProducts = true
			return retry.Optimize(q)
		}
		return nil, 0, fmt.Errorf("expert: no plan found for query %s", q.ID)
	}
	return &plan.Plan{Query: q, Roots: []*plan.Node{final.node}}, final.cost, nil
}

// bestScan picks the cheaper of a table scan and an index scan (when usable)
// for one relation.
func (o *Optimizer) bestScan(q *query.Query, rel string) *memoEntry {
	preds := q.PredicatesOn(rel)
	rows := o.Est.ScanRows(rel, preds)
	base := o.Est.BaseRows(rel)
	mkEntry := func(scan plan.ScanType) *memoEntry {
		node := plan.Leaf(rel, scan)
		ns := &executor.NodeStats{
			OutputRows:  rows,
			BaseRows:    base,
			Selectivity: rows / math.Max(base, 1),
		}
		for _, p := range preds {
			if p.Op == query.Eq && o.Catalog.HasIndex(rel, p.Column) {
				ns.IndexOnPredicate = true
			}
		}
		m := map[*plan.Node]*executor.NodeStats{node: ns}
		return &memoEntry{node: node, stats: m, rows: rows, cost: o.Engine.CostResult(node, m)}
	}
	best := mkEntry(plan.TableScan)
	if o.indexUsable(q, rel) {
		if idx := mkEntry(plan.IndexScan); idx.cost < best.cost {
			best = idx
		}
	}
	return best
}

func (o *Optimizer) indexUsable(q *query.Query, rel string) bool {
	for _, j := range q.Joins {
		if j.LeftTable == rel && o.Catalog.HasIndex(rel, j.LeftColumn) {
			return true
		}
		if j.RightTable == rel && o.Catalog.HasIndex(rel, j.RightColumn) {
			return true
		}
	}
	for _, p := range q.Predicates {
		if p.Table == rel && o.Catalog.HasIndex(rel, p.Column) {
			return true
		}
	}
	return false
}

// joinEntries combines two memo entries with a join operator and prices the
// result.
func (o *Optimizer) joinEntries(q *query.Query, left, right *memoEntry, op plan.JoinOp, joins []query.JoinPredicate) *memoEntry {
	node := plan.Join2(op, left.node, right.node)
	outRows := o.Est.JoinRows(left.rows, right.rows, joins)
	ns := &executor.NodeStats{
		LeftRows:     left.rows,
		RightRows:    right.rows,
		OutputRows:   outRows,
		CrossProduct: len(joins) == 0,
	}
	if len(joins) > 0 {
		j := joins[0]
		// Sortedness approximation: a base-relation leaf is sorted on its
		// primary key.
		ns.LeftSorted = leafSortedOn(left.node, o.Catalog, j)
		ns.RightSorted = leafSortedOn(right.node, o.Catalog, j)
		if right.node.IsLeaf() && right.node.Scan == plan.IndexScan {
			col := joinColumnFor(j, right.node.Table)
			if col != "" && o.Catalog.HasIndex(right.node.Table, col) {
				ns.InnerIndexOnJoinKey = true
			}
		}
	}
	// Merge the child stats maps (they are disjoint by construction).
	m := make(map[*plan.Node]*executor.NodeStats, len(left.stats)+len(right.stats)+1)
	for k, v := range left.stats {
		m[k] = v
	}
	for k, v := range right.stats {
		m[k] = v
	}
	m[node] = ns
	return &memoEntry{node: node, stats: m, rows: outRows, cost: o.Engine.CostResult(node, m)}
}

func leafSortedOn(n *plan.Node, cat *schema.Catalog, j query.JoinPredicate) bool {
	if !n.IsLeaf() {
		return false
	}
	tab, ok := cat.Table(n.Table)
	if !ok || tab.PrimaryKey == "" {
		return false
	}
	return joinColumnFor(j, n.Table) == tab.PrimaryKey
}

func joinColumnFor(j query.JoinPredicate, table string) string {
	if j.LeftTable == table {
		return j.LeftColumn
	}
	if j.RightTable == table {
		return j.RightColumn
	}
	return ""
}

// tableSet converts a relation bitmask into a set of table names.
func tableSet(q *query.Query, set uint32) map[string]bool {
	out := make(map[string]bool)
	for i, rel := range q.Relations {
		if set&(1<<uint(i)) != 0 {
			out[rel] = true
		}
	}
	return out
}

// NativeConfig returns the (optimizer configuration, estimator quality) pair
// used for each engine's native optimizer in the experiments:
// PostgreSQL and SQLite plan left-deep trees with histogram statistics
// (SQLite additionally only uses loop joins), while the commercial engines
// consider bushy trees and use corrected statistics.
func NativeConfig(engineName string) (Config, float64) {
	switch engineName {
	case "sqlite":
		return Config{Bushy: false, JoinOps: []plan.JoinOp{plan.LoopJoin, plan.MergeJoin}}, 0.0
	case "engine-m":
		return Config{Bushy: true}, 0.8
	case "engine-o":
		return Config{Bushy: true}, 0.8
	default: // postgres
		return Config{Bushy: false}, 0.0
	}
}

// NativeOptimizer builds the native optimizer for an engine, using the
// engine's own cost model and the statistics quality appropriate to it.
func NativeOptimizer(eng *engine.Engine, st *stats.Stats, cat *schema.Catalog) *Optimizer {
	cfg, quality := NativeConfig(eng.Profile.Name)
	hist := &HistogramEstimator{Stats: st}
	var est Estimator = hist
	// Corrected estimation probes true selectivities through the in-memory
	// executor; only the sim backend exposes one, and only the high-quality
	// commercial profiles use it.
	if exec := eng.Executor(); quality > 0 && exec != nil {
		est = NewCorrectedEstimator(hist, exec, quality)
	}
	return NewOptimizer(eng, est, cat, cfg)
}

// RandomPlanner produces uniformly random complete plans; the
// no-demonstration ablation (Section 6.3.3) bootstraps from these instead of
// expert plans.
type RandomPlanner struct {
	Catalog *schema.Catalog
	Rng     *rand.Rand
}

// NewRandomPlanner creates a random planner with the given seed.
func NewRandomPlanner(cat *schema.Catalog, seed int64) *RandomPlanner {
	return &RandomPlanner{Catalog: cat, Rng: rand.New(rand.NewSource(seed))}
}

// Plan returns a random complete plan for the query: a random join order
// over connected subtrees with random operators and access paths.
func (r *RandomPlanner) Plan(q *query.Query) *plan.Plan {
	p := plan.Initial(q)
	opts := plan.ChildrenOptions{Catalog: r.Catalog}
	for !p.IsComplete() {
		kids := p.Children(opts)
		if len(kids) == 0 {
			kids = p.Children(plan.ChildrenOptions{Catalog: r.Catalog, AllowCrossProducts: true})
			if len(kids) == 0 {
				return p
			}
		}
		p = kids[r.Rng.Intn(len(kids))]
	}
	return p
}

// GreedyOptimizer builds a plan by repeatedly joining the pair of subtrees
// with the smallest estimated output cardinality (a common heuristic
// baseline). It uses table scans everywhere and hash joins only.
type GreedyOptimizer struct {
	Est     Estimator
	Catalog *schema.Catalog
}

// Plan returns the greedy plan for q.
func (g *GreedyOptimizer) Plan(q *query.Query) *plan.Plan {
	type part struct {
		node *plan.Node
		rows float64
	}
	var parts []*part
	for _, rel := range q.Relations {
		parts = append(parts, &part{node: plan.Leaf(rel, plan.TableScan), rows: g.Est.ScanRows(rel, q.PredicatesOn(rel))})
	}
	for len(parts) > 1 {
		bestI, bestJ := -1, -1
		bestRows := math.Inf(1)
		for i := 0; i < len(parts); i++ {
			for j := 0; j < len(parts); j++ {
				if i == j {
					continue
				}
				joins := q.JoinsBetween(parts[i].node.TableSet(), parts[j].node.TableSet())
				if len(joins) == 0 {
					continue
				}
				rows := g.Est.JoinRows(parts[i].rows, parts[j].rows, joins)
				if rows < bestRows {
					bestRows, bestI, bestJ = rows, i, j
				}
			}
		}
		if bestI < 0 {
			// Disconnected: cross-join the two smallest parts.
			sort.Slice(parts, func(a, b int) bool { return parts[a].rows < parts[b].rows })
			bestI, bestJ = 0, 1
			bestRows = parts[0].rows * parts[1].rows
		}
		merged := &part{node: plan.Join2(plan.HashJoin, parts[bestI].node, parts[bestJ].node), rows: bestRows}
		var next []*part
		for k, p := range parts {
			if k != bestI && k != bestJ {
				next = append(next, p)
			}
		}
		parts = append(next, merged)
	}
	return &plan.Plan{Query: q, Roots: []*plan.Node{parts[0].node}}
}
