// Disk backend: run the learned optimizer against real storage instead of
// the simulated cost model.
//
// With Config.Engine "disk" the synthetic database is materialized into
// slotted-page heap files, plans execute through Volcano-style iterators
// reading 8 KiB pages from a buffer pool, and the latency fed into Neo's
// experience is the measured wall clock — including effects no cost model
// prices, like whether the pages a join touches are resident in the pool.
// Plans and result cardinalities are identical to the simulated engine's
// (the test suite pins sim/disk parity per join operator); only the latency
// signal changes.
//
// Run with:
//
//	go run ./examples/disk_backend
package main

import (
	"fmt"
	"log"

	"neo/pkg/neo"
)

func main() {
	// DataDir "" materializes into a fresh temp directory. Point it at a
	// directory written by `neo-datagen -out` to skip materialization, or at
	// any persistent path to reuse the heap files across runs.
	sys, err := neo.Open(neo.Config{
		Dataset:      "imdb",
		Engine:       "disk",
		Encoding:     neo.Histogram,
		Scale:        0.3,
		Seed:         42,
		Episodes:     3,
		BufferPoolMB: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	fmt.Printf("database on disk: %d rows across %d tables\n",
		sys.DB.TotalRows(), sys.Catalog.NumRelations())

	wl, err := sys.GenerateWorkload(16)
	if err != nil {
		log.Fatal(err)
	}
	train, test := wl.Split(0.8, 1)

	// The same plan gets cheaper the second time: the first execution pulls
	// its pages from disk, the second finds them resident in the buffer pool.
	p, err := sys.ExpertPlan(test[0])
	if err != nil {
		log.Fatal(err)
	}
	cold, err := sys.Execute(p)
	if err != nil {
		log.Fatal(err)
	}
	hot, err := sys.Execute(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same plan, cold pool: %.3f ms, warm pool: %.3f ms\n", cold, hot)

	// Bootstrap and refine exactly as on the simulated engine — except every
	// experience entry now carries a measured latency.
	fmt.Println("bootstrapping from the expert, then refining ...")
	if err := sys.Bootstrap(train); err != nil {
		log.Fatal(err)
	}
	episodes, err := sys.Train(train)
	if err != nil {
		log.Fatal(err)
	}
	for _, ep := range episodes {
		fmt.Printf("  episode %d: normalized latency %.3f\n", ep.Episode, ep.NormalizedLatency)
	}

	fmt.Println("\nheld-out queries (measured ms):")
	for _, q := range test {
		neoLat, nativeLat, err := sys.Compare(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s neo=%8.3f native=%8.3f\n", q.ID, neoLat, nativeLat)
	}

	// Every page the executors touched went through the buffer pool.
	if st, ok := sys.StorageStats(); ok {
		fmt.Printf("\nbuffer pool: %s\n", st.String())
	}
}
