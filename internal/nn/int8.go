// Int8 quantized inference kernels. Weights are quantized symmetrically per
// output channel (no zero point), activations symmetrically per input
// channel with scales fixed at snapshot time by a calibration pass (absmax
// over a sample of recorded featurizations), and the GEMM accumulates in
// int32. The per-channel activation scales are folded into the weights at
// pack time (channel equalization): with a[k] the calibrated absmax of input
// channel k,
//
//	x[k] ≈ q(x)[k] · a[k]/127          (activation quantized by 127/a[k])
//	w'[o][k] = w[o][k] · a[k]          (equalized weight row)
//	w'[o][k] ≈ qW[o][k] · absmax'[o]/127
//
// so the channel scales cancel inside the dot product and one per-output
// dequantization scale absmax'[o]/127² recovers
//
//	y[r][o] = bias[o] + Σ_k q(x)[r][k]·qW[o][k] · Scale[o].
//
// Equalizing per channel instead of per tensor matters for accuracy: the
// network's concatenated inputs mix channels of wildly different ranges
// (one-hot bits next to pooled activations), and a single tensor-wide scale
// would spend the whole int8 budget on the largest channel.
//
// Unlike the float32 panels, quantized weights are stored row-major — one
// contiguous K-row per output channel, zero-padded to PadI8 bytes — because
// the AVX2 kernel consumes them as straight-line dot products (VPMOVSXBW
// widening loads feeding VPMADDWD chains) rather than broadcast-FMA panels.
// Activations are quantized into the same 16-byte-granular stride with
// zeroed padding, so the kernel never needs a scalar K-tail: padding
// contributes exact zeros to every dot product. The K-prefix trick the tree
// convolution's leaf kernel relies on still works — restricting a GEMM to
// kUsed < K reads weight bytes from the [kUsed, PadI8(kUsed)) gutter, but
// the matching activation bytes are zero. Activations between GEMMs (leaky
// ReLU, layer norm) stay float32 — only the dot products run in int8, which
// is where the footprint and bandwidth live.
package nn

// PadI8 rounds a K dimension up to the int8 kernel's 16-byte block size: the
// row stride quantized activations and weights are stored at.
func PadI8(k int) int { return (k + 15) &^ 15 }

// PackedI8 is an int8 weight matrix in padded row-major layout with
// per-output-channel dequantization scales.
type PackedI8 struct {
	Out, K int
	Kp     int // row stride: PadI8(K)
	Bias   []float32
	Scale  []float32 // per output channel: equalized absmax/127² (see package doc)
	W      []int8    // ceil4(Out) rows × Kp, zero-padded in both dimensions
}

// PackI8 quantizes the row-major float64 matrices mats (mats[i] is out×ks[i])
// into one padded int8 panel matrix; the K dimension concatenates the ks in
// order. chanAbs holds the calibrated per-input-channel absmax the matching
// activations are quantized with (length ΣK; nil means all ones, i.e. no
// equalization); it is folded into the weights before per-output-channel
// quantization, so extreme weights saturate exactly at ±127 and never wrap.
func PackI8(out int, bias []float64, ks []int, chanAbs []float32, mats ...[]float64) PackedI8 {
	k := 0
	for _, ki := range ks {
		k += ki
	}
	kp := PadI8(k)
	p := PackedI8{
		Out:   out,
		K:     k,
		Kp:    kp,
		Bias:  make([]float32, out),
		Scale: make([]float32, out),
		// Rows padded to a multiple of 4 so the kernel always processes
		// whole 4-output blocks; the extra rows are zero.
		W: make([]int8, (out+3)/4*4*kp),
	}
	for o, b := range bias {
		p.Bias[o] = float32(b)
	}
	chAbs := func(kk int) float64 {
		if chanAbs == nil {
			return 1
		}
		if a := float64(chanAbs[kk]); a > 0 {
			return a
		}
		return 1
	}
	for o := 0; o < out; o++ {
		var absmax float64
		kBase := 0
		for mi, m := range mats {
			ki := ks[mi]
			for kk, w := range m[o*ki : (o+1)*ki] {
				w *= chAbs(kBase + kk)
				if w < 0 {
					w = -w
				}
				if w > absmax {
					absmax = w
				}
			}
			kBase += ki
		}
		if absmax == 0 {
			// All-zero row: weights stay zero; any positive scale works.
			p.Scale[o] = 1
			continue
		}
		p.Scale[o] = float32(absmax / (127 * 127))
		row := p.W[o*kp : o*kp+k]
		kBase = 0
		for mi, m := range mats {
			ki := ks[mi]
			for kk, w := range m[o*ki : (o+1)*ki] {
				// Normalising by absmax before scaling to 127 keeps the
				// mapping exact (±absmax → ±127) even for denormal rows,
				// where absmax/127 would underflow.
				row[kBase+kk] = quantI8(w * chAbs(kBase+kk) / absmax * 127)
			}
			kBase += ki
		}
	}
	return p
}

// Bytes returns the packed footprint in bytes.
func (p *PackedI8) Bytes() int { return len(p.W) + 4*(len(p.Bias)+len(p.Scale)) }

func quantI8(v float64) int8 {
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	q := int32(v)
	if q > 127 {
		q = 127
	}
	if q < -127 {
		q = -127
	}
	return int8(q)
}

// QuantizeRows quantizes rows×k row-major activations into dst at the
// kernel's padded stride PadI8(k), with per-channel inverse scales
// (inv[c] = 127/absmax of channel c), rounding to nearest and clamping to
// ±127 so out-of-calibration activations saturate instead of wrapping. The
// [k, PadI8(k)) gutter of every destination row is zeroed — the property the
// tail-free kernel relies on. dst must be at least rows*PadI8(k) long.
func QuantizeRows(dst []int8, xs []float32, rows, k int, inv []float32) {
	kp := PadI8(k)
	for r := 0; r < rows; r++ {
		row := xs[r*k : (r+1)*k]
		qrow := dst[r*kp : r*kp+kp]
		for c := k; c < kp; c++ {
			qrow[c] = 0
		}
		for c, v := range row {
			f := v * inv[c]
			// Clamp in the float domain: converting an out-of-range float32
			// to int32 is implementation-defined (it wraps to math.MinInt32
			// on amd64), so far-out-of-calibration values must saturate
			// first.
			if f >= 126.5 {
				qrow[c] = 127
				continue
			}
			if f <= -126.5 {
				qrow[c] = -127
				continue
			}
			if f >= 0 {
				f += 0.5
			} else {
				f -= 0.5
			}
			qrow[c] = int8(int32(f))
		}
	}
}

// Gemm computes the int8 GEMM with int32 accumulation and float32
// dequantization: xq holds rows×PadI8(kUsed) activations quantized at the
// padded stride with the per-channel scales the rows were equalized against
// (QuantizeRows), ys receives rows×Out float32 values. kUsed must not exceed
// p.K; a smaller kUsed restricts the dot products to a K-prefix of every
// weight row — the [kUsed, PadI8(kUsed)) weight gutter is multiplied by the
// zeroed activation padding, contributing nothing. On AVX2 hardware the
// 4-output dot-product block runs in assembly (VPMOVSXBW widening loads into
// VPMADDWD/VPADDD chains, 16 bytes per step); elsewhere a portable scalar
// loop computes the identical int32 sums.
func (p *PackedI8) Gemm(xq []int8, rows, kUsed int, ys []float32) {
	out := p.Out
	kq := PadI8(kUsed)
	if useAVX2 && kq > 0 && rows > 0 {
		var acc [4]int32
		for r := 0; r < rows; r++ {
			x := &xq[r*kq]
			for o := 0; o < out; o += 4 {
				gemmQuadI8(x, &p.W[o*p.Kp], kq/16, p.Kp, &acc[0])
				p.dequantRow(ys[r*out+o:], out-o, o, acc[0], acc[1], acc[2], acc[3])
			}
		}
		return
	}
	for r := 0; r < rows; r++ {
		x := xq[r*kq : r*kq+kUsed]
		for o := 0; o < out; o += 4 {
			w0 := p.W[o*p.Kp : o*p.Kp+kUsed]
			w1 := p.W[(o+1)*p.Kp : (o+1)*p.Kp+kUsed]
			w2 := p.W[(o+2)*p.Kp : (o+2)*p.Kp+kUsed]
			w3 := p.W[(o+3)*p.Kp : (o+3)*p.Kp+kUsed]
			var a0, a1, a2, a3 int32
			for k, v := range x {
				vv := int32(v)
				a0 += vv * int32(w0[k])
				a1 += vv * int32(w1[k])
				a2 += vv * int32(w2[k])
				a3 += vv * int32(w3[k])
			}
			p.dequantRow(ys[r*out+o:], out-o, o, a0, a1, a2, a3)
		}
	}
}

// dequantRow converts one panel's accumulators into float32 outputs.
func (p *PackedI8) dequantRow(y []float32, on int, o int, a0, a1, a2, a3 int32) {
	y[0] = p.Bias[o] + float32(a0)*p.Scale[o]
	if on > 1 {
		y[1] = p.Bias[o+1] + float32(a1)*p.Scale[o+1]
	}
	if on > 2 {
		y[2] = p.Bias[o+2] + float32(a2)*p.Scale[o+2]
	}
	if on > 3 {
		y[3] = p.Bias[o+3] + float32(a3)*p.Scale[o+3]
	}
}

// sanitizeChanAbs replaces non-positive calibrated channel absmaxes (dead
// channels, or a calibration pass that never ran) with 1 so quantization
// never divides by zero; returns its own copy.
func sanitizeChanAbs(abs []float32, k int) []float32 {
	out := make([]float32, k)
	for c := range out {
		a := float32(0)
		if c < len(abs) {
			a = abs[c]
		}
		if !(a > 0) {
			a = 1
		}
		out[c] = a
	}
	return out
}

// MLPI8 is the int8 quantized form of an MLP: equalized quantized panels
// plus the per-layer, per-channel input quantization multipliers fixed by
// calibration. Immutable after construction; safe for concurrent use.
type MLPI8 struct {
	Lins  []PackedI8
	InInv [][]float32     // per layer, per input channel: 127/absmax
	Norms []*LayerNormF32 // nil entries mirror MLP.Norms
	Alpha float32
}

// NewMLPI8 quantizes a trained MLP. calibAbs[i] holds the calibrated
// per-channel absmax of Linear i's input activations (from
// MLPF32.ForwardBatchObserve over the calibration sample); non-positive
// entries fall back to absmax 1.
func NewMLPI8(m *MLP, calibAbs [][]float32) *MLPI8 {
	out := &MLPI8{Alpha: float32(m.Act.Alpha)}
	for i, lin := range m.Linears {
		var abs []float32
		if i < len(calibAbs) {
			abs = calibAbs[i]
		}
		abs = sanitizeChanAbs(abs, lin.In)
		out.Lins = append(out.Lins, PackI8(lin.Out, lin.B.Value, []int{lin.In}, abs, lin.W.Value))
		inv := make([]float32, lin.In)
		for c, a := range abs {
			inv[c] = 127 / a
		}
		out.InInv = append(out.InInv, inv)
		if m.Norms[i] != nil {
			out.Norms = append(out.Norms, NewLayerNormF32(m.Norms[i]))
		} else {
			out.Norms = append(out.Norms, nil)
		}
	}
	return out
}

// Bytes returns the packed footprint in bytes.
func (m *MLPI8) Bytes() int {
	total := 0
	for i := range m.Lins {
		total += m.Lins[i].Bytes() + 4*len(m.InInv[i])
		if m.Norms[i] != nil {
			total += m.Norms[i].Bytes()
		}
	}
	return total
}

// ForwardBatch runs the quantized MLP over rows input rows (row-major float32
// in xs); each layer quantizes its input tensor with the calibrated
// per-channel scales, runs the int8 GEMM, and applies
// activation/normalisation in float32.
func (m *MLPI8) ForwardBatch(xs []float32, rows int, a *Arena32, qa *ArenaI8) []float32 {
	cur := xs
	last := len(m.Lins) - 1
	for i := range m.Lins {
		lin := &m.Lins[i]
		xq := qa.Alloc(rows * lin.Kp)
		QuantizeRows(xq, cur, rows, lin.K, m.InInv[i])
		ys := a.Alloc(rows * lin.Out)
		lin.Gemm(xq, rows, lin.K, ys)
		if i == last {
			cur = ys
			continue
		}
		LeakyReLUF32(ys, m.Alpha)
		if m.Norms[i] != nil {
			cur = m.Norms[i].ForwardBatch(ys, rows, a)
		} else {
			cur = ys
		}
	}
	return cur
}
