package analysis

import (
	"go/ast"
	"go/types"
)

// walltimeCheck flags wall-clock reads and global-randomness use inside the
// determinism-critical packages. The repo's contract (TESTING.md, the
// replay-parity suites) is that a seeded run is bit-identical across
// machines and worker counts; time.Now smuggles the host's clock into that
// computation and the global math/rand source is seeded per-process and
// shared across goroutines, so either one silently breaks replay. Code in
// these packages must thread an explicit timestamp/duration in from the
// caller and draw randomness from a seeded *rand.Rand it owns.
//
// Genuinely wall-clock things — measuring how long a real disk execution
// took, accounting training time for the retrain budget — live in these
// packages too; those sites carry //neo:lint-ok walltime suppressions
// explaining why the clock is the point.
var walltimeCheck = &Check{
	Name: "walltime",
	Doc:  "wall-clock or global-randomness use in a determinism-critical package",
	Run:  runWalltime,
}

func runWalltime(p *Pass) {
	if !p.inDeterminismPkg() {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[pkgIdent].(*types.PkgName)
			if !ok {
				return true
			}
			// Referring to a package-level type (rand.Source in a field
			// declaration, time.Duration in a signature) is not an effect.
			if _, isType := p.Pkg.Info.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				switch sel.Sel.Name {
				case "Now", "Since", "Until":
					p.Reportf(sel.Pos(), "time.%s reads the wall clock in a determinism-critical package; thread an explicit timestamp or duration in from the caller", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				switch sel.Sel.Name {
				case "New", "NewSource", "NewPCG", "NewChaCha8":
					// Constructors for owned, seedable sources are the fix,
					// not the bug.
				default:
					p.Reportf(sel.Pos(), "rand.%s draws from the global, process-seeded source; use a seeded *rand.Rand owned by this component", sel.Sel.Name)
				}
			}
			return true
		})
	}
}
