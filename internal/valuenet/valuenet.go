// Package valuenet implements Neo's value network (Section 4 and Appendix A
// of the paper): a deep neural network that maps a (query-level encoding,
// plan-level encoding) pair to a prediction of the best-possible cost
// reachable from that (partial) plan.
//
// The architecture follows Figure 5: the query-level encoding passes through
// a stack of fully connected layers; the resulting vector is concatenated to
// every plan-tree node ("spatial replication"); the augmented forest passes
// through several tree-convolution layers; dynamic pooling flattens the
// forest into a fixed-size vector; and a final stack of fully connected
// layers produces a single scalar.
//
// Costs span orders of magnitude, so the network is trained on standardised
// log-costs; Predict returns values in the original cost domain.
package valuenet

import (
	"math"
	"math/rand"

	"neo/internal/nn"
	"neo/internal/treeconv"
)

// Config describes the network architecture and optimisation
// hyperparameters.
type Config struct {
	// QueryLayers are the fully connected layer sizes applied to the
	// query-level encoding (the paper uses 128, 64, 32).
	QueryLayers []int
	// TreeChannels are the tree-convolution output channel counts (the paper
	// uses 512, 256, 128; the default is smaller for speed).
	TreeChannels []int
	// HeadLayers are the fully connected layer sizes after dynamic pooling
	// (the paper uses 128, 64, 32 before the final output).
	HeadLayers []int
	// LearningRate is the Adam learning rate.
	LearningRate float64
	// UseLayerNorm enables layer normalisation inside the MLPs.
	UseLayerNorm bool
	// Seed seeds weight initialisation.
	Seed int64
	// TrainWorkers is the number of data-parallel gradient workers TrainBatch
	// shards each minibatch over (<=1 trains serially). The shard partition
	// and gradient-reduction order are fixed by the batch size alone, so
	// trained weights are bit-identical for every worker count — workers only
	// reduce wall-clock time. Shards hold 8 samples each, so useful
	// parallelism is bounded by ceil(batchSize/8) workers.
	TrainWorkers int
}

// DefaultConfig returns a configuration small enough to train in seconds but
// structurally identical to the paper's network.
func DefaultConfig() Config {
	return Config{
		QueryLayers:  []int{64, 32},
		TreeChannels: []int{32, 32, 16},
		HeadLayers:   []int{32, 16},
		LearningRate: 1e-3,
		UseLayerNorm: true,
		Seed:         1,
	}
}

// PaperConfig returns the layer sizes reported in Figure 5 of the paper.
func PaperConfig() Config {
	return Config{
		QueryLayers:  []int{128, 64, 32},
		TreeChannels: []int{512, 256, 128},
		HeadLayers:   []int{128, 64, 32},
		LearningRate: 1e-3,
		UseLayerNorm: true,
		Seed:         1,
	}
}

// Sample is one training example: an encoded query, an encoded (partial or
// complete) plan, and the target cost (the best cost of any complete plan
// containing it, per the paper's training objective).
type Sample struct {
	Query  []float64
	Plan   []*treeconv.Tree
	Target float64
}

// Network is the value network.
type Network struct {
	cfg      Config
	queryDim int
	planDim  int

	qmlp *nn.MLP
	conv *treeconv.Stack
	head *nn.MLP
	opt  *nn.Adam

	// train holds the reusable batched-training state (gradient shards and
	// their scratch); nil until the first TrainBatch call.
	train *trainer

	// Target standardisation (log domain).
	targetMean, targetStd float64
}

// New creates a value network for the given query- and plan-vector
// dimensions.
func New(queryDim, planDim int, cfg Config) *Network {
	if len(cfg.QueryLayers) == 0 {
		workers := cfg.TrainWorkers
		cfg = DefaultConfig()
		cfg.TrainWorkers = workers
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	qSizes := append([]int{queryDim}, cfg.QueryLayers...)
	qOut := qSizes[len(qSizes)-1]
	convSizes := append([]int{planDim + qOut}, cfg.TreeChannels...)
	headSizes := append(append([]int{convSizes[len(convSizes)-1]}, cfg.HeadLayers...), 1)
	return &Network{
		cfg:       cfg,
		queryDim:  queryDim,
		planDim:   planDim,
		qmlp:      nn.NewMLP(qSizes, cfg.UseLayerNorm, rng),
		conv:      treeconv.NewStack(convSizes, rng),
		head:      nn.NewMLP(headSizes, cfg.UseLayerNorm, rng),
		opt:       nn.NewAdam(cfg.LearningRate),
		targetStd: 1,
	}
}

// Params returns every trainable parameter.
func (n *Network) Params() []*nn.Param {
	var out []*nn.Param
	out = append(out, n.qmlp.Params()...)
	out = append(out, n.conv.Params()...)
	out = append(out, n.head.Params()...)
	return out
}

// NumParameters returns the total number of scalar parameters.
func (n *Network) NumParameters() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Value)
	}
	return total
}

// FitTargetTransform computes the standardisation applied to log-costs from
// a set of observed costs. Call it before training (and again whenever the
// experience changes substantially).
func (n *Network) FitTargetTransform(costs []float64) {
	if len(costs) == 0 {
		n.targetMean, n.targetStd = 0, 1
		return
	}
	var sum float64
	logs := make([]float64, len(costs))
	for i, c := range costs {
		logs[i] = math.Log1p(math.Max(c, 0))
		sum += logs[i]
	}
	mean := sum / float64(len(logs))
	var variance float64
	for _, l := range logs {
		variance += (l - mean) * (l - mean)
	}
	variance /= float64(len(logs))
	std := math.Sqrt(variance)
	if std < 1e-6 {
		std = 1
	}
	n.targetMean, n.targetStd = mean, std
}

func (n *Network) normalize(cost float64) float64 {
	return (math.Log1p(math.Max(cost, 0)) - n.targetMean) / n.targetStd
}

func (n *Network) denormalize(v float64) float64 {
	return math.Expm1(v*n.targetStd + n.targetMean)
}

// forwardState carries the intermediate activations of one forward pass.
type forwardState struct {
	qtape     *nn.MLPTape
	augmented []*treeconv.Tree
	convTapes []*treeconv.StackTape
	pooled    []float64
	// pooledOwner[i] records which tree supplied channel i's max, and
	// argmax[i] the node within that tree.
	pooledOwner []int
	argmax      [][]*treeconv.Tree
	headTape    *nn.MLPTape
}

// forward runs the network; output is in normalised log-cost space.
func (n *Network) forward(queryVec []float64, trees []*treeconv.Tree) (*forwardState, float64) {
	st := &forwardState{}
	st.qtape = n.qmlp.Forward(queryVec)
	g := st.qtape.Output()

	// Spatial replication: append g to every node vector.
	for _, t := range trees {
		st.augmented = append(st.augmented, t.Map(func(node *treeconv.Tree) []float64 {
			return nn.Concat(node.Data, g)
		}))
	}

	// Tree convolution per tree, then forest-wide dynamic pooling.
	channels := n.cfg.TreeChannels[len(n.cfg.TreeChannels)-1]
	st.pooled = make([]float64, channels)
	st.pooledOwner = make([]int, channels)
	for i := range st.pooled {
		st.pooled[i] = math.Inf(-1)
		st.pooledOwner[i] = -1
	}
	st.argmax = make([][]*treeconv.Tree, len(st.augmented))
	for ti, t := range st.augmented {
		tape := n.conv.Forward(t)
		st.convTapes = append(st.convTapes, tape)
		pooled, argmax := treeconv.DynamicPool(tape.Output())
		st.argmax[ti] = argmax
		for c := 0; c < channels && c < len(pooled); c++ {
			if pooled[c] > st.pooled[c] {
				st.pooled[c] = pooled[c]
				st.pooledOwner[c] = ti
			}
		}
	}
	for c := range st.pooled {
		if math.IsInf(st.pooled[c], -1) {
			st.pooled[c] = 0
		}
	}

	st.headTape = n.head.Forward(st.pooled)
	return st, st.headTape.Output()[0]
}

// backward propagates the gradient of the (normalised-space) prediction.
func (n *Network) backward(st *forwardState, grad float64) {
	gradPooled := n.head.Backward(st.headTape, []float64{grad})

	// Split the pooled gradient per owning tree.
	queryGrad := make([]float64, len(st.qtape.Output()))
	for ti := range st.augmented {
		chanGrad := make([]float64, len(gradPooled))
		any := false
		for c, owner := range st.pooledOwner {
			if owner == ti {
				chanGrad[c] = gradPooled[c]
				if gradPooled[c] != 0 {
					any = true
				}
			}
		}
		if !any {
			continue
		}
		convOut := st.convTapes[ti].Output()
		gradTree := treeconv.PoolBackward(convOut, st.argmax[ti], chanGrad)
		gradAug := n.conv.Backward(st.convTapes[ti], gradTree)
		// Accumulate the query-part gradient from every augmented node.
		gradAug.Walk(func(node *treeconv.Tree) {
			for i := 0; i < len(queryGrad); i++ {
				queryGrad[i] += node.Data[n.planDim+i]
			}
		})
	}
	n.qmlp.Backward(st.qtape, queryGrad)
}

// Predict returns the network's cost prediction (in the original cost
// domain) for an encoded query and plan.
func (n *Network) Predict(queryVec []float64, trees []*treeconv.Tree) float64 {
	_, out := n.forward(queryVec, trees)
	return n.denormalize(out)
}

// PredictNormalized returns the raw network output in normalised log-cost
// space (used by the Figure 14 robustness analysis, which histograms network
// outputs directly).
func (n *Network) PredictNormalized(queryVec []float64, trees []*treeconv.Tree) float64 {
	_, out := n.forward(queryVec, trees)
	return out
}

// TrainBatchPerSample performs one gradient step on a batch of samples with
// a full per-example forward/backward tape, and returns the mean L2 loss (in
// normalised space). It is the reference implementation the batched
// TrainBatch (train.go) is parity-tested against; the training loop itself
// uses TrainBatch.
func (n *Network) TrainBatchPerSample(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range samples {
		st, out := n.forward(s.Query, s.Plan)
		loss, grad := nn.L2Loss(out, n.normalize(s.Target))
		total += loss
		n.backward(st, grad)
	}
	n.opt.Step(n.Params(), len(samples))
	return total / float64(len(samples))
}

// Train runs epochs of minibatch training over the samples using the
// batched TrainBatch pipeline and returns the final epoch's mean loss.
func (n *Network) Train(samples []Sample, epochs, batchSize int, rng *rand.Rand) float64 {
	if len(samples) == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 16
	}
	costs := make([]float64, len(samples))
	for i, s := range samples {
		costs[i] = s.Target
	}
	n.FitTargetTransform(costs)
	var last float64
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := make([]Sample, 0, end-start)
			for _, i := range idx[start:end] {
				batch = append(batch, samples[i])
			}
			epochLoss += n.TrainBatch(batch)
			batches++
		}
		last = epochLoss / float64(batches)
	}
	return last
}
