package stats

import (
	"math"
	"testing"
	"testing/quick"

	"neo/internal/datagen"
	"neo/internal/query"
	"neo/internal/storage"
)

func buildStats(t *testing.T) (*Stats, *storage.Database) {
	t.Helper()
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return s, db
}

func TestBuildCoversAllColumns(t *testing.T) {
	s, db := buildStats(t)
	for _, ts := range db.Catalog.Tables() {
		tstats := s.Table(ts.Name)
		if tstats == nil {
			t.Fatalf("missing stats for table %q", ts.Name)
		}
		if tstats.NumRows != db.Table(ts.Name).NumRows() {
			t.Errorf("%s: NumRows %d != %d", ts.Name, tstats.NumRows, db.Table(ts.Name).NumRows())
		}
		for _, c := range ts.Columns {
			if s.Column(ts.Name, c.Name) == nil {
				t.Errorf("missing stats for %s.%s", ts.Name, c.Name)
			}
		}
	}
	if s.Column("title", "nope") != nil || s.Column("nope", "x") != nil {
		t.Errorf("unknown columns should return nil stats")
	}
	if s.TableRows("unknown") != 0 {
		t.Errorf("unknown table should report 0 rows")
	}
}

func TestIntHistogramBounds(t *testing.T) {
	s, db := buildStats(t)
	cs := s.Column("title", "production_year")
	if cs.MinInt >= cs.MaxInt {
		t.Fatalf("bad min/max: %d..%d", cs.MinInt, cs.MaxInt)
	}
	total := 0
	for _, b := range cs.Buckets {
		total += b
	}
	if total != db.Table("title").NumRows() {
		t.Errorf("histogram counts %d != table rows %d", total, db.Table("title").NumRows())
	}
}

func TestSelectivityEquality(t *testing.T) {
	s, _ := buildStats(t)
	p := query.Predicate{Table: "info_type", Column: "info", Op: query.Eq, Value: storage.StringValue("genres")}
	sel := s.Selectivity(p)
	// info_type has 6 rows, each distinct: selectivity should be ~1/6.
	if math.Abs(sel-1.0/6.0) > 0.01 {
		t.Errorf("Selectivity(info_type.info = genres) = %f, want ~0.167", sel)
	}
	ne := s.Selectivity(query.Predicate{Table: "info_type", Column: "info", Op: query.Ne, Value: storage.StringValue("genres")})
	if math.Abs(ne-(1-sel)) > 1e-9 {
		t.Errorf("Ne selectivity %f should complement Eq %f", ne, sel)
	}
}

func TestSelectivityRange(t *testing.T) {
	s, db := buildStats(t)
	// Count ground truth for production_year > 1990.
	title := db.Table("title")
	matched := 0
	for i := 0; i < title.NumRows(); i++ {
		v, _ := title.Value("production_year", i)
		if v.Int > 1990 {
			matched++
		}
	}
	truth := float64(matched) / float64(title.NumRows())
	est := s.Selectivity(query.Predicate{Table: "title", Column: "production_year", Op: query.Gt, Value: storage.IntValue(1990)})
	if math.Abs(est-truth) > 0.15 {
		t.Errorf("range selectivity estimate %f too far from truth %f", est, truth)
	}
	// Lt + Ge should roughly complement.
	lt := s.Selectivity(query.Predicate{Table: "title", Column: "production_year", Op: query.Lt, Value: storage.IntValue(1990)})
	if math.Abs((lt+est)-1.0) > 0.2 {
		t.Errorf("Lt %f + Gt %f should be ~1", lt, est)
	}
}

func TestSelectivityBoundsProperty(t *testing.T) {
	s, _ := buildStats(t)
	f := func(year int64, ge bool) bool {
		op := query.Gt
		if ge {
			op = query.Lt
		}
		sel := s.Selectivity(query.Predicate{Table: "title", Column: "production_year", Op: op, Value: storage.IntValue(year % 3000)})
		return sel > 0 && sel <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectivityUnknownColumnDefaults(t *testing.T) {
	s, _ := buildStats(t)
	sel := s.Selectivity(query.Predicate{Table: "title", Column: "ghost", Op: query.Eq, Value: storage.IntValue(1)})
	if sel != 1.0 {
		t.Errorf("unknown column should give selectivity 1, got %f", sel)
	}
}

func TestScanSelectivityIndependence(t *testing.T) {
	s, _ := buildStats(t)
	p1 := query.Predicate{Table: "title", Column: "kind", Op: query.Eq, Value: storage.StringValue("movie")}
	p2 := query.Predicate{Table: "title", Column: "production_year", Op: query.Gt, Value: storage.IntValue(1990)}
	s1 := s.Selectivity(p1)
	s2 := s.Selectivity(p2)
	combined := s.ScanSelectivity("title", []query.Predicate{p1, p2})
	if math.Abs(combined-s1*s2) > 1e-9 {
		t.Errorf("combined %f != product %f", combined, s1*s2)
	}
	// Predicates on other tables are ignored.
	other := query.Predicate{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")}
	if got := s.ScanSelectivity("title", []query.Predicate{other}); got != 1.0 {
		t.Errorf("foreign predicate should not affect selectivity, got %f", got)
	}
}

func TestEstimateScanRows(t *testing.T) {
	s, db := buildStats(t)
	rows := s.EstimateScanRows("title", nil)
	if rows != float64(db.Table("title").NumRows()) {
		t.Errorf("EstimateScanRows with no predicates = %f, want %d", rows, db.Table("title").NumRows())
	}
	selective := s.EstimateScanRows("title", []query.Predicate{
		{Table: "title", Column: "kind", Op: query.Eq, Value: storage.StringValue("tv")},
	})
	if selective >= rows {
		t.Errorf("selective scan %f should be smaller than full scan %f", selective, rows)
	}
	if selective < 1 {
		t.Errorf("estimates are clamped at >= 1, got %f", selective)
	}
}

func TestEstimateJoinRowsInclusionPrinciple(t *testing.T) {
	s, db := buildStats(t)
	j := query.JoinPredicate{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"}
	l := float64(db.Table("movie_keyword").NumRows())
	r := float64(db.Table("title").NumRows())
	est := s.EstimateJoinRows(l, r, j)
	// A PK-FK join should estimate roughly the size of the FK side.
	if est < l*0.5 || est > l*2 {
		t.Errorf("PK-FK join estimate %f should be close to |movie_keyword| = %f", est, l)
	}
	// Estimate is monotone in the input sizes.
	if s.EstimateJoinRows(l/2, r, j) > est {
		t.Errorf("join estimate should shrink when an input shrinks")
	}
}

func TestEstimateJoinRowsUnknownColumns(t *testing.T) {
	s, _ := buildStats(t)
	j := query.JoinPredicate{LeftTable: "x", LeftColumn: "y", RightTable: "z", RightColumn: "w"}
	if got := s.EstimateJoinRows(10, 20, j); got != 200 {
		t.Errorf("with unknown distinct counts the estimate degenerates to cross product: got %f", got)
	}
}

func TestErrorModel(t *testing.T) {
	none := NewErrorModel(0, 1)
	if got := none.Perturb(1000); got != 1000 {
		t.Errorf("zero-order error model must be identity, got %f", got)
	}
	var nilModel *ErrorModel
	if got := nilModel.Perturb(55); got != 55 {
		t.Errorf("nil error model must be identity, got %f", got)
	}
	two := NewErrorModel(2, 7)
	maxRatio := 0.0
	for i := 0; i < 200; i++ {
		p := two.Perturb(1000)
		ratio := math.Abs(math.Log10(p / 1000))
		if ratio > maxRatio {
			maxRatio = ratio
		}
		if ratio > 2.0001 {
			t.Fatalf("perturbation exceeded 2 orders of magnitude: %f", p)
		}
	}
	if maxRatio < 0.5 {
		t.Errorf("expected some perturbations near the configured bound, max seen %f", maxRatio)
	}
	five := NewErrorModel(5, 8)
	spread := 0.0
	for i := 0; i < 200; i++ {
		p := five.Perturb(1000)
		r := math.Abs(math.Log10(p / 1000))
		if r > spread {
			spread = r
		}
	}
	if spread <= maxRatio {
		t.Errorf("5-order model should spread wider than 2-order model (%f vs %f)", spread, maxRatio)
	}
}

func TestClampSel(t *testing.T) {
	if clampSel(-1) <= 0 {
		t.Errorf("clampSel(-1) must be positive")
	}
	if clampSel(2) != 1 {
		t.Errorf("clampSel(2) must be 1")
	}
	if clampSel(math.NaN()) <= 0 {
		t.Errorf("clampSel(NaN) must be positive")
	}
	if clampSel(0.5) != 0.5 {
		t.Errorf("clampSel(0.5) must be identity")
	}
}

func TestTPCHSelectivityAccuracy(t *testing.T) {
	// On uniform data the histogram estimator should be quite accurate —
	// this mirrors the paper's observation that TPC-H does not stress
	// cardinality estimation.
	db, err := datagen.GenerateTPCH(datagen.Config{Scale: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	li := db.Table("lineitem")
	matched := 0
	for i := 0; i < li.NumRows(); i++ {
		v, _ := li.Value("l_quantity", i)
		if v.Int > 25 {
			matched++
		}
	}
	truth := float64(matched) / float64(li.NumRows())
	est := s.Selectivity(query.Predicate{Table: "lineitem", Column: "l_quantity", Op: query.Gt, Value: storage.IntValue(25)})
	if math.Abs(est-truth) > 0.1 {
		t.Errorf("uniform-data estimate %f should be close to truth %f", est, truth)
	}
}

// TestTopValuesKeepsMostCommonDeterministically is the regression test for
// the bug where TopValues kept the first topValuesCap values in random
// map-iteration order instead of the most common ones — making string
// selectivities (and everything downstream: expert plans, featurizations,
// value-network training) differ between identically-seeded builds.
func TestTopValuesKeepsMostCommonDeterministically(t *testing.T) {
	s1, db := buildStats(t)
	s2, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, ts := range db.Catalog.Tables() {
		for _, col := range ts.Columns {
			c1 := s1.Column(ts.Name, col.Name)
			c2 := s2.Column(ts.Name, col.Name)
			if c1.TopValues == nil {
				continue
			}
			if len(c1.TopValues) != len(c2.TopValues) {
				t.Fatalf("%s.%s: TopValues sizes differ across builds: %d vs %d",
					ts.Name, col.Name, len(c1.TopValues), len(c2.TopValues))
			}
			// Identical keys and counts across rebuilds.
			minKept := math.MaxInt
			for v, n := range c1.TopValues {
				if n2, ok := c2.TopValues[v]; !ok || n2 != n {
					t.Errorf("%s.%s: TopValues differ across builds for %q", ts.Name, col.Name, v)
				}
				if n < minKept {
					minKept = n
				}
			}
			// Every kept value must be at least as frequent as every dropped
			// one ("most common" contract).
			if c1.Distinct > len(c1.TopValues) {
				counts := make(map[string]int)
				for _, v := range db.Table(ts.Name).Column(col.Name).Strs {
					counts[v]++
				}
				for v, n := range counts {
					if _, kept := c1.TopValues[v]; !kept && n > minKept {
						t.Errorf("%s.%s: dropped value %q (count %d) is more common than a kept value (count %d)",
							ts.Name, col.Name, v, n, minKept)
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Skip("no string column exceeded the top-values cap at this scale")
	}
}
