package datagen

import (
	"math/rand"
	"testing"

	"neo/internal/storage"
)

func TestGenerateIMDBShape(t *testing.T) {
	db, err := GenerateIMDB(Config{Scale: 0.2, Seed: 7})
	if err != nil {
		t.Fatalf("GenerateIMDB: %v", err)
	}
	wantTables := []string{"title", "movie_info", "info_type", "movie_keyword", "keyword", "cast_info", "name", "movie_companies", "company"}
	for _, name := range wantTables {
		tab := db.Table(name)
		if tab == nil {
			t.Fatalf("missing table %q", name)
		}
		if tab.NumRows() == 0 {
			t.Errorf("table %q is empty", name)
		}
	}
	titles := db.Table("title").NumRows()
	// movie_info has exactly 3 rows per title (genre, rating, language).
	if got := db.Table("movie_info").NumRows(); got != 3*titles {
		t.Errorf("movie_info rows = %d, want %d", got, 3*titles)
	}
	// Every movie has at least one keyword and at least three cast entries.
	if got := db.Table("movie_keyword").NumRows(); got < titles {
		t.Errorf("movie_keyword rows = %d, want >= %d", got, titles)
	}
	if got := db.Table("cast_info").NumRows(); got < 3*titles {
		t.Errorf("cast_info rows = %d, want >= %d", got, 3*titles)
	}
	// Indexes that the catalog declares must exist.
	if db.Table("movie_keyword").Index("movie_id") == nil {
		t.Errorf("expected index on movie_keyword.movie_id")
	}
	if db.Table("title").Index("id") == nil {
		t.Errorf("expected primary key index on title.id")
	}
}

func TestGenerateIMDBDeterministic(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 99}
	a, err := GenerateIMDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateIMDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRows() != b.TotalRows() {
		t.Fatalf("row counts differ: %d vs %d", a.TotalRows(), b.TotalRows())
	}
	// Spot-check a handful of cells for byte-for-byte determinism.
	for _, probe := range []struct {
		table, col string
		row        int
	}{
		{"title", "production_year", 3},
		{"movie_info", "info", 10},
		{"cast_info", "person_id", 25},
		{"name", "country", 12},
	} {
		va, err := a.Table(probe.table).Value(probe.col, probe.row)
		if err != nil {
			t.Fatalf("value a: %v", err)
		}
		vb, err := b.Table(probe.table).Value(probe.col, probe.row)
		if err != nil {
			t.Fatalf("value b: %v", err)
		}
		if !va.Equal(vb) {
			t.Errorf("%s.%s[%d]: %v != %v", probe.table, probe.col, probe.row, va, vb)
		}
	}
}

func TestGenerateIMDBDifferentSeedsDiffer(t *testing.T) {
	a, _ := GenerateIMDB(Config{Scale: 0.1, Seed: 1})
	b, _ := GenerateIMDB(Config{Scale: 0.1, Seed: 2})
	same := true
	n := a.Table("title").NumRows()
	if b.Table("title").NumRows() < n {
		n = b.Table("title").NumRows()
	}
	for i := 0; i < n; i++ {
		va, _ := a.Table("title").Value("production_year", i)
		vb, _ := b.Table("title").Value("production_year", i)
		if !va.Equal(vb) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical production_year columns")
	}
}

// TestGenreKeywordCorrelation verifies the property Table 2 of the paper
// depends on: romance movies carry the keyword "love" far more often than
// horror movies do.
func TestGenreKeywordCorrelation(t *testing.T) {
	db, err := GenerateIMDB(Config{Scale: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	genreOf := map[int64]string{}
	mi := db.Table("movie_info")
	for i := 0; i < mi.NumRows(); i++ {
		it, _ := mi.Value("info_type_id", i)
		if it.Int != 3 {
			continue
		}
		mid, _ := mi.Value("movie_id", i)
		g, _ := mi.Value("info", i)
		genreOf[mid.Int] = g.Str
	}
	loveID := int64(keywordID("love"))
	counts := map[string]int{}
	mk := db.Table("movie_keyword")
	for i := 0; i < mk.NumRows(); i++ {
		kid, _ := mk.Value("keyword_id", i)
		if kid.Int != loveID {
			continue
		}
		mid, _ := mk.Value("movie_id", i)
		counts[genreOf[mid.Int]]++
	}
	if counts["romance"] <= counts["horror"] {
		t.Errorf("expected love keyword to favour romance over horror, got %v", counts)
	}
	if counts["romance"] <= 2*counts["sci-fi"] {
		t.Errorf("expected strong romance/love affinity, got %v", counts)
	}
}

func TestGenerateTPCHShape(t *testing.T) {
	db, err := GenerateTPCH(Config{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatalf("GenerateTPCH: %v", err)
	}
	if got := db.Table("region").NumRows(); got != 5 {
		t.Errorf("region rows = %d, want 5", got)
	}
	if got := db.Table("nation").NumRows(); got != 25 {
		t.Errorf("nation rows = %d, want 25", got)
	}
	if db.Table("lineitem").NumRows() <= db.Table("orders").NumRows() {
		t.Errorf("lineitem should be larger than orders")
	}
	// Foreign keys point at existing rows (spot check orders → customer).
	nCust := db.Table("customer").NumRows()
	orders := db.Table("orders")
	for i := 0; i < orders.NumRows(); i += 50 {
		v, _ := orders.Value("o_custkey", i)
		if v.Int < 1 || v.Int > int64(nCust) {
			t.Fatalf("orders.o_custkey[%d] = %d outside [1,%d]", i, v.Int, nCust)
		}
	}
}

func TestGenerateCorpShapeAndSkew(t *testing.T) {
	db, err := GenerateCorp(Config{Scale: 0.5, Seed: 4})
	if err != nil {
		t.Fatalf("GenerateCorp: %v", err)
	}
	events := db.Table("events")
	if events.NumRows() == 0 {
		t.Fatalf("events empty")
	}
	// Skew: the most frequent user should have far more events than the
	// median user.
	counts := map[int64]int{}
	for i := 0; i < events.NumRows(); i++ {
		v, _ := events.Value("e_user_id", i)
		counts[v.Int]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	avg := float64(events.NumRows()) / float64(len(counts))
	if float64(max) < 4*avg {
		t.Errorf("expected Zipf skew: max user count %d vs average %.1f", max, avg)
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, p := range []Profile{IMDB, TPCH, Corp} {
		db, err := Generate(p, Config{Scale: 0.1, Seed: 5})
		if err != nil {
			t.Errorf("Generate(%s): %v", p, err)
			continue
		}
		if db.TotalRows() == 0 {
			t.Errorf("Generate(%s) produced empty database", p)
		}
	}
	if _, err := Generate(Profile("bogus"), DefaultConfig()); err == nil {
		t.Errorf("expected error for unknown profile")
	}
}

func TestScaledClamping(t *testing.T) {
	c := Config{Scale: 0, Seed: 1}
	if got := c.scaled(100); got != 100 {
		t.Errorf("scaled(100) with zero scale = %d, want 100", got)
	}
	c = Config{Scale: 0.001, Seed: 1}
	if got := c.scaled(100); got != 1 {
		t.Errorf("tiny scale should clamp to 1, got %d", got)
	}
	c = Config{Scale: 2, Seed: 1}
	if got := c.scaled(100); got != 200 {
		t.Errorf("scaled(100)*2 = %d, want 200", got)
	}
}

func TestSkewedIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		idx := skewedIndex(rng, 5, 1.5)
		if idx < 0 || idx >= 5 {
			t.Fatalf("skewedIndex out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[4] {
		t.Errorf("expected skew towards index 0: %v", counts)
	}
}

func TestKeywordIDRoundTrip(t *testing.T) {
	for i, k := range Keywords {
		if got := keywordID(k); got != i+1 {
			t.Errorf("keywordID(%q) = %d, want %d", k, got, i+1)
		}
	}
	if got := keywordID("not-a-keyword"); got != 1 {
		t.Errorf("unknown keyword should fall back to 1, got %d", got)
	}
}

func TestCatalogsAreConsistent(t *testing.T) {
	for _, cat := range []struct {
		name string
		c    interface {
			NumRelations() int
			NumAttributes() int
		}
	}{
		{"imdb", IMDBCatalog()},
		{"tpch", TPCHCatalog()},
		{"corp", CorpCatalog()},
	} {
		if cat.c.NumRelations() < 5 {
			t.Errorf("%s: expected at least 5 relations, got %d", cat.name, cat.c.NumRelations())
		}
		if cat.c.NumAttributes() < 10 {
			t.Errorf("%s: expected at least 10 attributes, got %d", cat.name, cat.c.NumAttributes())
		}
	}
}

func TestIMDBForeignKeyIntegrity(t *testing.T) {
	db, err := GenerateIMDB(Config{Scale: 0.2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	for _, fk := range cat.ForeignKeys() {
		from := db.Table(fk.FromTable)
		toIdx := db.Table(fk.ToTable).Index(fk.ToColumn)
		if toIdx == nil {
			// Build one on the fly for the check.
			if err := db.Table(fk.ToTable).BuildIndex(fk.ToColumn); err != nil {
				t.Fatal(err)
			}
			toIdx = db.Table(fk.ToTable).Index(fk.ToColumn)
		}
		step := from.NumRows()/200 + 1
		for i := 0; i < from.NumRows(); i += step {
			v, err := from.Value(fk.FromColumn, i)
			if err != nil {
				t.Fatal(err)
			}
			if len(toIdx.Lookup(v)) == 0 {
				t.Fatalf("dangling foreign key %s.%s=%v (row %d) -> %s.%s",
					fk.FromTable, fk.FromColumn, v, i, fk.ToTable, fk.ToColumn)
			}
		}
	}
}

var sinkDB *storage.Database

func BenchmarkGenerateIMDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db, err := GenerateIMDB(Config{Scale: 0.2, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		sinkDB = db
	}
}
