// Package plan models query execution plans exactly as Section 3.1 of the
// paper defines them: a partial execution plan is a forest of trees whose
// internal nodes are join operators (hash, merge, loop) and whose leaves are
// table scans, index scans, or still-unspecified scans over base relations.
//
// A complete plan has a single tree and no unspecified scans. The Children
// relation (one scan specified, or two roots merged by a join operator) is
// the successor function of Neo's best-first search.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"neo/internal/query"
	"neo/internal/schema"
)

// JoinOp identifies a physical join operator.
type JoinOp int

const (
	// HashJoin builds a hash table on one input and probes with the other.
	HashJoin JoinOp = iota
	// MergeJoin merges two inputs sorted on the join key.
	MergeJoin
	// LoopJoin is a nested-loop join (index nested-loop when the inner is
	// an index scan on the join column).
	LoopJoin
)

// NumJoinOps is |J|, the number of physical join operators.
const NumJoinOps = 3

// AllJoinOps lists every join operator.
var AllJoinOps = []JoinOp{HashJoin, MergeJoin, LoopJoin}

// String implements fmt.Stringer.
func (op JoinOp) String() string {
	switch op {
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case LoopJoin:
		return "LoopJoin"
	default:
		return fmt.Sprintf("JoinOp(%d)", int(op))
	}
}

// ScanType identifies how a leaf accesses its base relation.
type ScanType int

const (
	// UnspecifiedScan is a scan whose access path has not been chosen yet
	// (denoted U(r) in the paper).
	UnspecifiedScan ScanType = iota
	// TableScan reads the whole table (T(r)).
	TableScan
	// IndexScan uses a secondary or primary index (I(r)).
	IndexScan
)

// String implements fmt.Stringer.
func (s ScanType) String() string {
	switch s {
	case UnspecifiedScan:
		return "U"
	case TableScan:
		return "T"
	case IndexScan:
		return "I"
	default:
		return fmt.Sprintf("ScanType(%d)", int(s))
	}
}

// Node is one node of a plan tree. Leaf nodes (Left == Right == nil) are
// scans over Table with access path Scan; internal nodes are joins with
// operator Join.
type Node struct {
	// Join is the join operator; meaningful only for internal nodes.
	Join JoinOp
	// Scan is the access path; meaningful only for leaf nodes.
	Scan ScanType
	// Table is the scanned base relation; meaningful only for leaf nodes.
	Table string
	// Left and Right are the child subtrees (nil for leaves).
	Left, Right *Node
}

// Leaf constructs a scan node.
func Leaf(table string, scan ScanType) *Node {
	return &Node{Table: table, Scan: scan}
}

// Join2 constructs a join node over two subtrees.
func Join2(op JoinOp, left, right *Node) *Node {
	return &Node{Join: op, Left: left, Right: right}
}

// IsLeaf reports whether the node is a scan.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tables returns the set of base relations under this node, sorted.
func (n *Node) Tables() []string {
	set := map[string]bool{}
	n.collectTables(set)
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TableSet returns the set of base relations under this node.
func (n *Node) TableSet() map[string]bool {
	set := map[string]bool{}
	n.collectTables(set)
	return set
}

func (n *Node) collectTables(set map[string]bool) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		set[n.Table] = true
		return
	}
	n.Left.collectTables(set)
	n.Right.collectTables(set)
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	return &Node{Join: n.Join, Scan: n.Scan, Table: n.Table, Left: n.Left.Clone(), Right: n.Right.Clone()}
}

// NumNodes returns the number of nodes in the subtree.
func (n *Node) NumNodes() int {
	if n == nil {
		return 0
	}
	return 1 + n.Left.NumNodes() + n.Right.NumNodes()
}

// NumUnspecified returns the number of unspecified scans in the subtree.
func (n *Node) NumUnspecified() int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		if n.Scan == UnspecifiedScan {
			return 1
		}
		return 0
	}
	return n.Left.NumUnspecified() + n.Right.NumUnspecified()
}

// Walk visits every node in the subtree in pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	n.Left.Walk(fn)
	n.Right.Walk(fn)
}

// String renders the subtree in the paper's notation, e.g.
// "(T(D) ⋈M T(A)) ⋈L I(C)".
func (n *Node) String() string {
	if n == nil {
		return "∅"
	}
	if n.IsLeaf() {
		return fmt.Sprintf("%s(%s)", n.Scan, n.Table)
	}
	var sym string
	switch n.Join {
	case HashJoin:
		sym = "⋈H"
	case MergeJoin:
		sym = "⋈M"
	default:
		sym = "⋈L"
	}
	return fmt.Sprintf("(%s %s %s)", n.Left, sym, n.Right)
}

// Plan is a (partial or complete) execution plan for a query: a forest of
// plan trees covering exactly the query's relations.
type Plan struct {
	// Query is the query this plan executes.
	Query *query.Query
	// Roots are the trees of the forest. A complete plan has exactly one
	// root and no unspecified scans.
	Roots []*Node
}

// Initial returns the search start state for a query: one unspecified scan
// per relation (P0 in Section 4.2).
func Initial(q *query.Query) *Plan {
	roots := make([]*Node, 0, len(q.Relations))
	for _, r := range q.Relations {
		roots = append(roots, Leaf(r, UnspecifiedScan))
	}
	return &Plan{Query: q, Roots: roots}
}

// Clone returns a deep copy of the plan (the query is shared).
func (p *Plan) Clone() *Plan {
	roots := make([]*Node, len(p.Roots))
	for i, r := range p.Roots {
		roots[i] = r.Clone()
	}
	return &Plan{Query: p.Query, Roots: roots}
}

// IsComplete reports whether the plan is a complete execution plan: a single
// tree with every scan specified.
func (p *Plan) IsComplete() bool {
	if len(p.Roots) != 1 {
		return false
	}
	return p.Roots[0].NumUnspecified() == 0
}

// NumUnspecified returns the number of unspecified scans across the forest.
func (p *Plan) NumUnspecified() int {
	n := 0
	for _, r := range p.Roots {
		n += r.NumUnspecified()
	}
	return n
}

// String implements fmt.Stringer.
func (p *Plan) String() string {
	parts := make([]string, len(p.Roots))
	for i, r := range p.Roots {
		parts[i] = r.String()
	}
	return "[" + strings.Join(parts, "] , [") + "]"
}

// Signature returns a canonical string uniquely identifying the plan's
// structure; used by the search to deduplicate states.
func (p *Plan) Signature() string {
	parts := make([]string, len(p.Roots))
	for i, r := range p.Roots {
		parts[i] = r.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// ChildrenOptions configures the successor enumeration.
type ChildrenOptions struct {
	// Catalog, when set, restricts IndexScan choices to relations that have
	// a usable index (an index on a join column or on a predicate column of
	// the query).
	Catalog *schema.Catalog
	// AllowCrossProducts permits joining two subtrees that share no join
	// predicate. The default (false) matches conventional optimizers; when
	// the join graph is connected it does not exclude the optimal plan.
	AllowCrossProducts bool
}

// Children enumerates the successor plans of p as defined in Section 4.2:
// every plan obtainable by (1) specifying one unspecified scan as a table or
// index scan, or (2) joining two roots of the forest with one of the join
// operators. A complete plan has no children.
func (p *Plan) Children(opts ChildrenOptions) []*Plan {
	if p.IsComplete() {
		return nil
	}
	var out []*Plan

	// (1) Specify an unspecified scan. To keep the branching factor small we
	// specify the first unspecified scan encountered in each root (left to
	// right); specifying them in a different order yields the same set of
	// reachable complete plans.
	for ri := range p.Roots {
		leaf := firstUnspecified(p.Roots[ri])
		if leaf == nil {
			continue
		}
		scans := []ScanType{TableScan}
		if p.indexUsable(leaf.Table, opts.Catalog) {
			scans = append(scans, IndexScan)
		}
		for _, st := range scans {
			child := p.Clone()
			target := firstUnspecified(child.Roots[ri])
			target.Scan = st
			out = append(out, child)
		}
		break // only expand one unspecified scan per state
	}

	// (2) Join two roots.
	for i := 0; i < len(p.Roots); i++ {
		for j := 0; j < len(p.Roots); j++ {
			if i == j {
				continue
			}
			if !opts.AllowCrossProducts {
				if !p.Query.Connected(p.Roots[i].TableSet(), p.Roots[j].TableSet()) {
					continue
				}
			}
			// Avoid emitting both (i ⋈ j) and (j ⋈ i) for symmetric cases:
			// we keep both because build/probe sides matter to the cost
			// model, but only for i < j with each operator, plus the swap.
			if i > j {
				continue
			}
			for _, op := range AllJoinOps {
				out = append(out, p.joinRoots(i, j, op))
				out = append(out, p.joinRoots(j, i, op))
			}
		}
	}
	return out
}

// joinRoots returns a copy of p with roots i and j replaced by a single join
// node (root i becomes the left/outer input).
func (p *Plan) joinRoots(i, j int, op JoinOp) *Plan {
	child := p.Clone()
	left := child.Roots[i]
	right := child.Roots[j]
	joined := Join2(op, left, right)
	var roots []*Node
	for k, r := range child.Roots {
		if k == i || k == j {
			continue
		}
		roots = append(roots, r)
	}
	roots = append(roots, joined)
	child.Roots = roots
	return child
}

// indexUsable reports whether an index scan is a sensible option for the
// given relation in this query: the catalog has an index on a column used by
// a join or column predicate of the query (or on the primary key).
func (p *Plan) indexUsable(table string, cat *schema.Catalog) bool {
	if cat == nil {
		return true
	}
	for _, j := range p.Query.Joins {
		if j.LeftTable == table && cat.HasIndex(table, j.LeftColumn) {
			return true
		}
		if j.RightTable == table && cat.HasIndex(table, j.RightColumn) {
			return true
		}
	}
	for _, pr := range p.Query.Predicates {
		if pr.Table == table && cat.HasIndex(table, pr.Column) {
			return true
		}
	}
	return false
}

func firstUnspecified(n *Node) *Node {
	if n == nil {
		return nil
	}
	if n.IsLeaf() {
		if n.Scan == UnspecifiedScan {
			return n
		}
		return nil
	}
	if l := firstUnspecified(n.Left); l != nil {
		return l
	}
	return firstUnspecified(n.Right)
}

// IsSubplanOf reports whether p could be completed into the complete plan f
// in the sense of Section 3.1: f is obtainable from p by specifying scans
// and joining p's trees. The check used here is structural: every join node
// of p must appear (same operator, same relation sets on each side) in f,
// and every specified scan of p must have the same access path in f.
func (p *Plan) IsSubplanOf(f *Plan) bool {
	if len(f.Roots) != 1 {
		return false
	}
	froot := f.Roots[0]
	for _, r := range p.Roots {
		if !subtreeEmbedded(r, froot) {
			return false
		}
	}
	return true
}

// subtreeEmbedded reports whether the partial subtree r is consistent with
// some subtree of the complete tree f.
func subtreeEmbedded(r *Node, f *Node) bool {
	if f == nil {
		return false
	}
	if nodeConsistent(r, f) {
		return true
	}
	return subtreeEmbedded(r, f.Left) || subtreeEmbedded(r, f.Right)
}

// nodeConsistent reports whether partial node r is consistent with complete
// node f at the same position.
func nodeConsistent(r *Node, f *Node) bool {
	if r == nil || f == nil {
		return r == nil && f == nil
	}
	if r.IsLeaf() {
		if !f.IsLeaf() || f.Table != r.Table {
			return false
		}
		return r.Scan == UnspecifiedScan || r.Scan == f.Scan
	}
	if f.IsLeaf() {
		return false
	}
	if r.Join != f.Join {
		return false
	}
	return nodeConsistent(r.Left, f.Left) && nodeConsistent(r.Right, f.Right)
}
