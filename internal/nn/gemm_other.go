//go:build !amd64

package nn

// Non-amd64 builds always use the portable scalar kernel.
const useAVX2 = false

// gemmPanel8 is never called when useAVX2 is false; this stub keeps the
// call site compiling on other architectures.
func gemmPanel8(x, w, y, bias *float32, rows, kUsed, xStride, yStride int, mask *int32) {
	panic("nn: gemmPanel8 without AVX2")
}

// gemmQuadI8 is never called when useAVX2 is false; this stub keeps the
// call site compiling on other architectures.
func gemmQuadI8(x, w *int8, blocks, wStride int, acc *int32) {
	panic("nn: gemmQuadI8 without AVX2")
}

// SetScalarGemmForTest is a no-op without an assembly kernel to toggle.
func SetScalarGemmForTest(scalar bool) (prev bool) { return true }
