package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// HeapFileName returns the on-disk file name for a table's heap file.
func HeapFileName(dir, table string) string {
	return filepath.Join(dir, table+".heap")
}

// HeapFile is a read-only handle on one table's slotted-page heap file. All
// reads go through ReadPage (positional reads, safe for concurrent use); the
// buffer pool sits on top and decides which pages stay resident.
type HeapFile struct {
	f        *os.File
	path     string
	numPages int32
}

// OpenHeapFile opens an existing heap file for reading.
func OpenHeapFile(path string) (*HeapFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: heap file %s is %d bytes, not a multiple of the %d-byte page size", path, info.Size(), PageSize)
	}
	return &HeapFile{f: f, path: path, numPages: int32(info.Size() / PageSize)}, nil
}

// Path returns the file path the heap was opened from.
func (h *HeapFile) Path() string { return h.path }

// NumPages returns the number of pages in the file.
func (h *HeapFile) NumPages() int32 { return h.numPages }

// ReadPage reads page pageNo into a freshly validated Page. Safe for
// concurrent use (positional read, no shared file offset).
func (h *HeapFile) ReadPage(pageNo int32) (*Page, error) {
	if pageNo < 0 || pageNo >= h.numPages {
		return nil, fmt.Errorf("storage: heap %s: page %d out of range [0,%d)", h.path, pageNo, h.numPages)
	}
	buf := make([]byte, PageSize)
	if _, err := h.f.ReadAt(buf, int64(pageNo)*PageSize); err != nil {
		return nil, fmt.Errorf("storage: heap %s page %d: %w", h.path, pageNo, err)
	}
	p, err := PageFromBytes(buf)
	if err != nil {
		return nil, fmt.Errorf("storage: heap %s page %d: %w", h.path, pageNo, err)
	}
	return p, nil
}

// Close releases the underlying file handle.
func (h *HeapFile) Close() error { return h.f.Close() }

// HeapWriter bulk-creates a heap file by appending tuples in order. Tuples
// keep their append order on disk, so row i of the source table lands at a
// RID that scans back in the same order — the disk executor relies on this
// to preserve the clustered (primary-key) ordering the data generators emit.
type HeapWriter struct {
	f       *os.File
	page    *Page
	pageNo  int32
	written int64
}

// CreateHeapFile creates (truncating) a heap file for writing.
func CreateHeapFile(path string) (*HeapWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &HeapWriter{f: f, page: NewPage()}, nil
}

// Append adds one encoded tuple, starting a new page when the current one is
// full, and returns the tuple's RID.
func (w *HeapWriter) Append(tuple []byte) (RID, error) {
	if slot, ok := w.page.Insert(tuple); ok {
		return RID{Page: w.pageNo, Slot: int32(slot)}, nil
	}
	if err := w.flushPage(); err != nil {
		return RID{}, err
	}
	slot, ok := w.page.Insert(tuple)
	if !ok {
		return RID{}, fmt.Errorf("storage: tuple of %d bytes does not fit in an empty %d-byte page", len(tuple), PageSize)
	}
	return RID{Page: w.pageNo, Slot: int32(slot)}, nil
}

func (w *HeapWriter) flushPage() error {
	if _, err := w.f.Write(w.page.Bytes()); err != nil {
		return err
	}
	w.written += PageSize
	w.pageNo++
	w.page = NewPage()
	return nil
}

// Close flushes the final partial page and closes the file.
func (w *HeapWriter) Close() error {
	if w.page.NumSlots() > 0 {
		if err := w.flushPage(); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
