// Command neo-experiments regenerates the tables and figures of the paper's
// evaluation on the simulated substrate.
//
// Usage:
//
//	neo-experiments -exp fig9              # one experiment, quick settings
//	neo-experiments -exp all -out results.txt
//	neo-experiments -exp fig10 -episodes 20 -engines postgres,sqlite
//	neo-experiments -full                  # paper-scale settings (slow)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"neo/internal/experiments"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment to run ("+strings.Join(experiments.Names(), ", ")+" or 'all')")
		full         = flag.Bool("full", false, "use paper-scale settings (slow)")
		episodes     = flag.Int("episodes", 0, "override the number of training episodes")
		scale        = flag.Float64("scale", 0, "override the synthetic data scale factor")
		seed         = flag.Int64("seed", 0, "override the random seed")
		engines      = flag.String("engines", "", "comma-separated engine subset (postgres,sqlite,engine-m,engine-o,disk)")
		bufferPoolMB = flag.Int("buffer-pool-mb", 0, "disk engine buffer-pool size in MiB (0 = default 16)")
		workloads    = flag.String("workloads", "", "comma-separated workload subset (job,tpch,corp)")
		workers      = flag.Int("workers", 0, "planning worker-pool size (0 = GOMAXPROCS, negative = serial; results are identical either way unless cardinality-error injection is enabled)")
		trainWorkers = flag.Int("train-workers", 0, "gradient worker-pool size for value-network training (0 = GOMAXPROCS, negative = serial; trained weights are bit-identical for every worker count)")
		out          = flag.String("out", "", "write reports to this file as well as stdout")
		load         = flag.String("load", "", "directory of embedding checkpoints to restore (written by -save; skips row-vector retraining for cached workloads)")
		save         = flag.String("save", "", "directory to write the trained embedding checkpoints to after the run (reuse with -load under the same scale/seed/dim settings)")
	)
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	if *episodes > 0 {
		cfg.Episodes = *episodes
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *engines != "" {
		cfg.Engines = strings.Split(*engines, ",")
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	cfg.Workers = *workers
	cfg.TrainWorkers = *trainWorkers
	cfg.BufferPoolMB = *bufferPoolMB

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "neo-experiments: scale=%.2f episodes=%d seed=%d\n\n", cfg.Scale, cfg.Episodes, cfg.Seed)
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fatal(err)
	}
	if *load != "" {
		n, err := env.LoadEmbeddings(*load)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "restored %d embedding checkpoint(s) from %s\n", n, *load)
	}

	if *exp == "all" {
		reports, err := experiments.RunAll(env)
		for _, r := range reports {
			fmt.Fprintln(w, r.String())
		}
		if err != nil {
			fatal(err)
		}
		saveEmbeddings(env, *save, w)
		return
	}
	rep, err := experiments.Run(*exp, env)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(w, rep.String())
	saveEmbeddings(env, *save, w)
}

// saveEmbeddings writes the trained embedding cache if -save was given.
func saveEmbeddings(env *experiments.Env, dir string, w io.Writer) {
	if dir == "" {
		return
	}
	n, err := env.SaveEmbeddings(dir)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "saved %d embedding checkpoint(s) to %s\n", n, dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neo-experiments:", err)
	os.Exit(1)
}
