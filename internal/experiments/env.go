// Package experiments implements the harness that regenerates every table
// and figure of the paper's evaluation (Section 6) on the simulated
// substrate. Each experiment returns a Report that prints the same rows or
// series the paper plots; EXPERIMENTS.md records how the measured shapes
// compare with the published ones.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"neo/internal/checkpoint"
	"neo/internal/core"
	"neo/internal/datagen"
	"neo/internal/embedding"
	"neo/internal/engine"
	"neo/internal/expert"
	"neo/internal/feature"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/stats"
	"neo/internal/storage"
	"neo/internal/valuenet"
	"neo/internal/workload"
)

// Config scales the experiment suite. The defaults ("quick" mode) are sized
// so that the full suite runs in minutes on a laptop; Full() uses settings
// closer to the paper's (100 episodes, larger networks) and takes hours.
type Config struct {
	// Scale multiplies the synthetic database sizes.
	Scale float64
	// Seed drives data generation, workload generation and training.
	Seed int64
	// Episodes is the number of training episodes per run (the paper uses 100).
	Episodes int
	// TrainQueries and TestQueries bound the workload sizes.
	TrainQueries int
	TestQueries  int
	// SearchExpansions is the plan-search budget per query.
	SearchExpansions int
	// EmbeddingDim is the row-vector dimensionality.
	EmbeddingDim int
	// Net selects the value-network architecture.
	Net valuenet.Config
	// Engines restricts which engines heavyweight experiments run on
	// (empty means all four).
	Engines []string
	// Workloads restricts which workloads heavyweight experiments run on
	// (empty means all three).
	Workloads []string
	// Workers sizes the worker pool episode training and evaluation fan
	// plan search + simulated execution out over. Results are bit-identical
	// to serial execution for a fixed seed, so parallelism only changes
	// wall-clock time. Zero selects GOMAXPROCS; negative forces serial.
	Workers int
	// TrainWorkers sizes the data-parallel gradient worker pool each
	// retraining minibatch is sharded over. Trained weights are bit-identical
	// for every worker count. Zero selects GOMAXPROCS; negative forces
	// serial training.
	TrainWorkers int
	// BufferPoolMB sizes the buffer pool when an experiment selects the
	// "disk" engine (zero means 16 MiB). The other engines ignore it.
	BufferPoolMB int
}

// Quick returns the configuration used by the benchmark harness: small
// enough to regenerate every figure in minutes while preserving the shapes.
func Quick() Config {
	return Config{
		Scale:            0.25,
		Seed:             42,
		Episodes:         5,
		TrainQueries:     12,
		TestQueries:      4,
		SearchExpansions: 64,
		EmbeddingDim:     12,
		Net: valuenet.Config{
			QueryLayers:  []int{32, 16},
			TreeChannels: []int{32, 32, 16},
			HeadLayers:   []int{16},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         7,
		},
	}
}

// Full returns a configuration closer to the paper's experimental scale.
// Running the complete suite with it takes several hours.
func Full() Config {
	cfg := Quick()
	cfg.Scale = 1.0
	cfg.Episodes = 100
	cfg.TrainQueries = 90
	cfg.TestQueries = 23
	cfg.SearchExpansions = 512
	cfg.EmbeddingDim = 100
	cfg.Net = valuenet.PaperConfig()
	return cfg
}

func (c Config) engines() []string {
	if len(c.Engines) > 0 {
		return c.Engines
	}
	return []string{"postgres", "sqlite", "engine-m", "engine-o"}
}

func (c Config) workloads() []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return []string{"job", "tpch", "corp"}
}

// Env holds the shared state (databases, statistics, workloads, embeddings)
// that experiments reuse.
type Env struct {
	Config Config

	DBs       map[string]*storage.Database // by workload name: job, tpch, corp
	Stats     map[string]*stats.Stats
	Workloads map[string]*workload.Workload
	ExtJOB    *workload.Workload
	// Embeddings caches trained row-vector models, keyed by
	// "<workload>/<joins|nojoins>".
	Embeddings map[string]*embedding.Model
	// diskDBs lazily caches the materialized on-disk copy of each
	// workload's database (built the first time an experiment asks for the
	// "disk" engine).
	diskDBs map[string]*storage.DiskDB
}

// NewEnv generates the databases, statistics and workloads for the suite.
func NewEnv(cfg Config) (*Env, error) {
	if cfg.Episodes == 0 {
		cfg = Quick()
	}
	env := &Env{
		Config:     cfg,
		DBs:        make(map[string]*storage.Database),
		Stats:      make(map[string]*stats.Stats),
		Workloads:  make(map[string]*workload.Workload),
		Embeddings: make(map[string]*embedding.Model),
	}
	gen := datagen.Config{Scale: cfg.Scale, Seed: cfg.Seed}

	type spec struct {
		name    string
		profile datagen.Profile
		make    func(db *storage.Database) (*workload.Workload, error)
	}
	total := cfg.TrainQueries + cfg.TestQueries
	specs := []spec{
		{"job", datagen.IMDB, func(db *storage.Database) (*workload.Workload, error) {
			return workload.JOB(db, total, cfg.Seed)
		}},
		{"tpch", datagen.TPCH, func(db *storage.Database) (*workload.Workload, error) {
			return workload.TPCH(db, total, cfg.Seed)
		}},
		{"corp", datagen.Corp, func(db *storage.Database) (*workload.Workload, error) {
			return workload.Corp(db, total, cfg.Seed)
		}},
	}
	for _, s := range specs {
		db, err := datagen.Generate(s.profile, gen)
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", s.name, err)
		}
		st, err := stats.Build(db)
		if err != nil {
			return nil, fmt.Errorf("experiments: stats for %s: %w", s.name, err)
		}
		wl, err := s.make(db)
		if err != nil {
			return nil, fmt.Errorf("experiments: workload %s: %w", s.name, err)
		}
		env.DBs[s.name] = db
		env.Stats[s.name] = st
		env.Workloads[s.name] = wl
	}
	ext, err := workload.ExtJOB(env.DBs["job"], maxInt(6, cfg.TestQueries), cfg.Seed, env.Workloads["job"])
	if err != nil {
		return nil, fmt.Errorf("experiments: ext-job: %w", err)
	}
	env.ExtJOB = ext
	return env, nil
}

// Embedding returns (training if necessary) the row-vector model for a
// workload's database, in the "joins" (partially denormalised) or "nojoins"
// variant.
func (e *Env) Embedding(workloadName string, joins bool) *embedding.Model {
	key := workloadName + "/nojoins"
	if joins {
		key = workloadName + "/joins"
	}
	if m, ok := e.Embeddings[key]; ok {
		return m
	}
	db := e.DBs[workloadName]
	var sentences [][]string
	if joins {
		sentences = embedding.DenormalizedSentences(db, 40)
	} else {
		sentences = embedding.Sentences(db)
	}
	cfg := embedding.Config{
		Dim: e.Config.EmbeddingDim, Epochs: 3, NegativeSamples: 4,
		LearningRate: 0.05, MinCount: 1, Seed: e.Config.Seed,
	}
	m := embedding.Train(sentences, cfg)
	e.Embeddings[key] = m
	return m
}

// embeddingFile maps an Embeddings cache key ("job/joins") to the file name
// its checkpoint is stored under.
func embeddingFile(key string) string {
	return "emb-" + strings.ReplaceAll(key, "/", "-") + ".ckpt"
}

// SaveEmbeddings writes every cached row-vector model to dir as standalone
// embedding checkpoints (one file per workload/variant) and returns how many
// were written. Run the experiments first: models train lazily, so the cache
// holds only the variants the executed experiments actually used.
func (e *Env) SaveEmbeddings(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("experiments: saving embeddings: %w", err)
	}
	keys := make([]string, 0, len(e.Embeddings))
	for key := range e.Embeddings {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		path := filepath.Join(dir, embeddingFile(key))
		if err := checkpoint.SaveEmbeddingFile(path, e.Embeddings[key]); err != nil {
			return 0, fmt.Errorf("experiments: saving embedding %s: %w", key, err)
		}
	}
	return len(keys), nil
}

// LoadEmbeddings pre-populates the embedding cache from checkpoints written
// by SaveEmbeddings, returning how many were loaded. Missing files are fine
// (those variants train lazily as usual); a present-but-unreadable file is
// an error, never a silently retrained model. Cached files are only valid
// for the scale, seed and embedding dimension they were trained with — use a
// separate directory per configuration.
func (e *Env) LoadEmbeddings(dir string) (int, error) {
	loaded := 0
	for workloadName := range e.DBs {
		for _, variant := range []string{"joins", "nojoins"} {
			key := workloadName + "/" + variant
			path := filepath.Join(dir, embeddingFile(key))
			m, err := checkpoint.LoadEmbeddingFile(path)
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				return loaded, fmt.Errorf("experiments: loading embedding %s: %w", key, err)
			}
			if m.Dim != e.Config.EmbeddingDim {
				return loaded, fmt.Errorf("experiments: cached embedding %s has dim %d, config wants %d",
					key, m.Dim, e.Config.EmbeddingDim)
			}
			e.Embeddings[key] = m
			loaded++
		}
	}
	return loaded, nil
}

// Featurizer builds a featurizer of the given encoding for a workload. All
// featurizers carry the histogram-estimated per-node cardinality feature in
// the plan encoding (the same signal a traditional cost model consumes);
// what varies between encodings is the query-level predicate representation.
func (e *Env) Featurizer(workloadName string, enc feature.Encoding) *feature.Featurizer {
	f := &feature.Featurizer{
		Catalog:     e.DBs[workloadName].Catalog,
		Encoding:    enc,
		Stats:       e.Stats[workloadName],
		Cardinality: &feature.HistogramCardinality{Stats: e.Stats[workloadName]},
	}
	switch enc {
	case feature.RVector:
		f.Embedding = e.Embedding(workloadName, true)
	case feature.RVectorNoJoins:
		f.Embedding = e.Embedding(workloadName, false)
	}
	return f
}

// Engine builds a fresh engine of the given profile over a workload's
// database. The "disk" engine executes against an on-disk copy of the
// database (materialized lazily, shared across runs of the same workload)
// and feeds measured wall-clock latencies into the loop instead of
// simulated costs.
func (e *Env) Engine(workloadName, engineName string) (*engine.Engine, error) {
	prof, err := engine.ProfileByName(engineName)
	if err != nil {
		return nil, err
	}
	if engineName == "disk" {
		ddb, err := e.DiskDB(workloadName)
		if err != nil {
			return nil, err
		}
		return engine.NewWithBackend(prof, engine.NewDiskBackend(ddb)), nil
	}
	return engine.New(prof, e.DBs[workloadName]), nil
}

// DiskDB returns (materializing on first use) the on-disk copy of a
// workload's database, with a buffer pool sized by Config.BufferPoolMB.
func (e *Env) DiskDB(workloadName string) (*storage.DiskDB, error) {
	if ddb, ok := e.diskDBs[workloadName]; ok {
		return ddb, nil
	}
	db := e.DBs[workloadName]
	if db == nil {
		return nil, fmt.Errorf("experiments: unknown workload %q", workloadName)
	}
	dir, err := os.MkdirTemp("", "neo-disk-"+workloadName+"-")
	if err != nil {
		return nil, err
	}
	if err := storage.Materialize(db, dir); err != nil {
		return nil, fmt.Errorf("experiments: materializing %s: %w", workloadName, err)
	}
	mb := e.Config.BufferPoolMB
	if mb <= 0 {
		mb = 16
	}
	ddb, err := storage.OpenDisk(dir, db.Catalog, storage.PagesForMB(mb))
	if err != nil {
		return nil, fmt.Errorf("experiments: opening disk db for %s: %w", workloadName, err)
	}
	if err := ddb.VerifyAgainst(db); err != nil {
		return nil, err
	}
	if e.diskDBs == nil {
		e.diskDBs = make(map[string]*storage.DiskDB)
	}
	e.diskDBs[workloadName] = ddb
	return ddb, nil
}

// PGExpert returns a PostgreSQL-profile expert optimizer over a workload's
// database (the demonstration source).
func (e *Env) PGExpert(workloadName string) *expert.Optimizer {
	db := e.DBs[workloadName]
	pgEngine := engine.New(engine.PostgreSQLProfile(), db)
	return expert.NativeOptimizer(pgEngine, e.Stats[workloadName], db.Catalog)
}

// Split returns the train/test split of a workload, bounded by the
// configured sizes.
func (e *Env) Split(workloadName string) (train, test []*query.Query) {
	wl := e.Workloads[workloadName]
	train, test = wl.Split(0.8, e.Config.Seed)
	if len(train) > e.Config.TrainQueries {
		train = train[:e.Config.TrainQueries]
	}
	if len(test) > e.Config.TestQueries {
		test = test[:e.Config.TestQueries]
	}
	return train, test
}

// TrainedRun is the result of training a Neo instance for one
// (engine, workload, encoding) combination.
type TrainedRun struct {
	Neo    *core.Neo
	Engine *engine.Engine
	// Native is the engine's own optimizer.
	Native *expert.Optimizer
	// PG is the PostgreSQL-profile expert (the bootstrap source).
	PG *expert.Optimizer
	// Train and Test are the query splits used.
	Train, Test []*query.Query
	// Curve records the per-episode normalised latency on the test set
	// (relative to the native optimizer).
	Curve []float64
	// NativeTestLatency and PGTestLatency are the baselines on the test set.
	NativeTestLatency float64
	PGTestLatency     float64
}

// neoConfig builds the core.Config from the experiment configuration.
func (e *Env) neoConfig(costFn core.CostFunction) core.Config {
	return core.Config{
		ValueNet:         e.Config.Net,
		SearchExpansions: e.Config.SearchExpansions,
		TrainEpochs:      16,
		BatchSize:        16,
		MaxTrainSamples:  2500,
		Cost:             costFn,
		Seed:             e.Config.Seed,
		Workers:          e.Config.Workers,
		TrainWorkers:     e.Config.TrainWorkers,
	}
}

// TrainNeo runs the full Neo training protocol (bootstrap from the
// PostgreSQL-profile expert, then Episodes of refinement) for one engine,
// workload and encoding, and returns the trained instance along with the
// baselines and the learning curve.
func (e *Env) TrainNeo(workloadName, engineName string, enc feature.Encoding, costFn core.CostFunction, trackCurve bool) (*TrainedRun, error) {
	db := e.DBs[workloadName]
	st := e.Stats[workloadName]
	eng, err := e.Engine(workloadName, engineName)
	if err != nil {
		return nil, err
	}
	pgEngine := engine.New(engine.PostgreSQLProfile(), db)
	pg := expert.NativeOptimizer(pgEngine, st, db.Catalog)
	native := expert.NativeOptimizer(eng, st, db.Catalog)

	feat := e.Featurizer(workloadName, enc)
	n := core.New(eng, feat, e.neoConfig(costFn))

	train, test := e.Split(workloadName)
	run := &TrainedRun{Neo: n, Engine: eng, Native: native, PG: pg, Train: train, Test: test}

	// Baselines on the test set: the native optimizer's plans and the
	// PostgreSQL expert's plans, both executed on the target engine.
	for _, q := range test {
		np, _, err := native.Optimize(q)
		if err != nil {
			return nil, err
		}
		lat, _, err := eng.Execute(np)
		if err != nil {
			return nil, err
		}
		run.NativeTestLatency += lat
		pp, _, err := pg.Optimize(q)
		if err != nil {
			return nil, err
		}
		plat, _, err := eng.Execute(pp)
		if err != nil {
			return nil, err
		}
		run.PGTestLatency += plat
	}

	// Bootstrap from the PostgreSQL expert's plans (Section 6.2 protocol),
	// plus a few exploratory executions per query so the value network sees
	// within-query contrast from the start (see DESIGN.md).
	expertFn := func(q *query.Query) (*plan.Plan, error) {
		p, _, err := pg.Optimize(q)
		return p, err
	}
	if err := n.Bootstrap(train, expertFn); err != nil {
		return nil, err
	}
	rp := expert.NewRandomPlanner(db.Catalog, e.Config.Seed+101)
	if err := n.Explore(train, rp.Plan, 2); err != nil {
		return nil, err
	}

	for ep := 1; ep <= e.Config.Episodes; ep++ {
		if _, err := n.RunEpisode(ep, train); err != nil {
			return nil, err
		}
		if trackCurve {
			total, _, err := n.Evaluate(test)
			if err != nil {
				return nil, err
			}
			run.Curve = append(run.Curve, total/maxFloat(run.NativeTestLatency, 1e-9))
		}
	}
	return run, nil
}

// EvaluateRelative evaluates the trained Neo on its test set and returns the
// total latency relative to the native optimizer's plans on the same engine
// (the paper's "relative performance", Figure 9).
func (r *TrainedRun) EvaluateRelative() (float64, error) {
	total, _, err := r.Neo.Evaluate(r.Test)
	if err != nil {
		return 0, err
	}
	return total / maxFloat(r.NativeTestLatency, 1e-9), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
