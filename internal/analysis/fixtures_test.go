package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each package under testdata/src seeds deliberate
// violations, and every `// want "substring"` comment is an expectation —
// exactly one finding on that line whose "check: message" contains the
// substring. Lines without a want comment must stay silent, so the harness
// tests both directions: checks fire where they should and nowhere else.

// fixtureBase is the import path prefix of the fixture packages.
const fixtureBase = "neo/internal/analysis/testdata/src/"

// sharedLoader caches one Loader per test binary: NewLoader shells out to
// `go list -export` once, which is the expensive part.
var sharedLoader *Loader

func getLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

func loadFixturePkgs(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	l := getLoader(t)
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := l.LoadDir(filepath.Join("testdata", "src", filepath.FromSlash(d)))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

type wantComment struct {
	file    string
	line    int
	text    string
	matched bool
}

func collectWants(pkgs []*Package) []*wantComment {
	var wants []*wantComment
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &wantComment{file: pos.Filename, line: pos.Line, text: m[1]})
				}
			}
		}
	}
	return wants
}

// checkFixture loads the fixture dirs, runs the checks under cfg, and
// matches findings against want comments one-to-one.
func checkFixture(t *testing.T, cfg Config, dirs ...string) {
	t.Helper()
	pkgs := loadFixturePkgs(t, dirs...)
	findings := Run(cfg, pkgs)
	wants := collectWants(pkgs)
	for _, f := range findings {
		s := f.Check + ": " + f.Message
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && strings.Contains(s, w.text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.text)
		}
	}
}

func TestDetrangeFixture(t *testing.T) {
	checkFixture(t, Config{
		DeterminismPkgs: []string{fixtureBase + "detrange"},
		Strict:          true,
	}, "detrange")
}

func TestDetrangeSilentOutsideDeterminismPkgs(t *testing.T) {
	pkgs := loadFixturePkgs(t, "detrange")
	// Not listed in DeterminismPkgs: the same code must produce nothing.
	findings := Run(Config{}, pkgs)
	for _, f := range findings {
		t.Errorf("unexpected finding outside determinism packages: %s", f)
	}
}

func TestFrozenwriteFixture(t *testing.T) {
	checkFixture(t, Config{
		FrozenTypes: []string{fixtureBase + "frozenwrite.Snapshot"},
		FrozenAllow: []string{
			fixtureBase + "frozenwrite.build",
			fixtureBase + "frozenwrite.Network.Publish",
		},
		Strict: true,
	}, "frozenwrite")
}

func TestWalltimeFixture(t *testing.T) {
	checkFixture(t, Config{
		DeterminismPkgs: []string{fixtureBase + "walltime"},
		Strict:          true,
	}, "walltime")
}

func TestWireendianFixture(t *testing.T) {
	checkFixture(t, Config{
		WirePkg: fixtureBase + "wireendian/wire",
		Strict:  true,
	}, "wireendian", "wireendian/wire")
}

func TestGuardedbyFixture(t *testing.T) {
	checkFixture(t, Config{Strict: true}, "guardedby")
}

// TestDriverSuppressionFindings covers the driver-level findings — the lint
// fixture's expectations live here, not in want comments, because the
// suppression comment itself is the finding site.
func TestDriverSuppressionFindings(t *testing.T) {
	pkgs := loadFixturePkgs(t, "lint")

	contains := func(findings []Finding, substr string) bool {
		for _, f := range findings {
			if f.Check == "lint" && strings.Contains(f.Message, substr) {
				return true
			}
		}
		return false
	}

	base := Run(Config{}, pkgs)
	if len(base) != 2 {
		t.Errorf("non-strict: got %d findings, want 2 (malformed only): %v", len(base), base)
	}
	if !contains(base, "missing its reason") {
		t.Errorf("non-strict: missing-reason suppression not reported: %v", base)
	}
	if !contains(base, "unknown check nosuchcheck") {
		t.Errorf("non-strict: unknown-check suppression not reported: %v", base)
	}
	if contains(base, "stale suppression") {
		t.Errorf("non-strict: stale suppression reported without -strict: %v", base)
	}

	strict := Run(Config{Strict: true}, pkgs)
	if len(strict) != 3 {
		t.Errorf("strict: got %d findings, want 3 (malformed + stale): %v", len(strict), strict)
	}
	if !contains(strict, "stale suppression: no walltime finding here") {
		t.Errorf("strict: stale walltime suppression not reported: %v", strict)
	}

	// When walltime did not run, its suppression had no chance to be used:
	// it must not count as stale.
	subset := Run(Config{Strict: true, EnabledChecks: []string{"detrange"}}, pkgs)
	if contains(subset, "stale suppression") {
		t.Errorf("strict subset: stale reported for a check that did not run: %v", subset)
	}
}
