package experiments

import (
	"fmt"
	"sort"
)

// ExperimentFunc is a single experiment.
type ExperimentFunc func(*Env) (*Report, error)

// Registry maps experiment identifiers to their implementations. The keys
// match the per-experiment index in DESIGN.md and the -exp flag of
// cmd/neo-experiments.
func Registry() map[string]ExperimentFunc {
	return map[string]ExperimentFunc{
		"table2":         Table2,
		"fig9":           Figure9,
		"fig10":          Figure10,
		"fig11":          Figure11,
		"fig12":          Figure12,
		"fig13":          Figure13,
		"fig14":          Figure14,
		"fig15":          Figure15,
		"fig16":          Figure16,
		"fig17":          Figure17,
		"nodemo":         AblationNoDemonstration,
		"searchvsgreedy": AblationSearchVsGreedy,
		"treeconvvsflat": AblationTreeConvVsFlat,
	}
}

// Names returns the registered experiment names in a stable order.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(name string, env *Env) (*Report, error) {
	fn, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	return fn(env)
}

// RunAll executes every registered experiment and returns the reports in
// name order. The first error aborts the run.
func RunAll(env *Env) ([]*Report, error) {
	var out []*Report
	for _, name := range Names() {
		rep, err := Run(name, env)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
