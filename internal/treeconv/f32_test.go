package treeconv

import (
	"math"
	"math/rand"
	"testing"

	"neo/internal/nn"
)

func relErr32(a float32, b float64) float64 {
	d := math.Abs(float64(a) - b)
	m := math.Abs(b)
	if m < 1 {
		m = 1
	}
	return d / m
}

// buildBoth flattens the same forests through the float64 and float32
// builders.
func buildBoth(forests [][]*Tree, dim int) (*Batch, *Batch32) {
	var bb BatchBuilder
	var bb32 BatchBuilder32
	b := bb.Build(forests, dim, func(_ int, n *Tree, row []float64) { copy(row, n.Data) })
	b32 := bb32.Build(forests, dim, func(_ int, n *Tree, row []float32) {
		for i, v := range n.Data {
			row[i] = float32(v)
		}
	})
	return b, b32
}

// TestStackF32MatchesFloat64 checks the packed float32 stack and pooling
// against the float64 batch path within 1e-5 relative, over forests that
// include one-child nodes, single-node trees and empty forests.
func TestStackF32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const dim = 6
	stack := NewStack([]int{dim, 10, 7, 4}, rng)
	stack32 := NewStackF32(stack)

	forests := [][]*Tree{
		randomForest(rng, 1, dim),
		randomForest(rng, 3, dim),
		{}, // empty forest
		{NewLeaf(make([]float64, dim))},
		{NewNode(randomTree(rng, 1, dim).Data, randomTree(rng, 4, dim), nil)}, // one-child root
		randomForest(rng, 2, dim),
	}

	b, b32 := buildBoth(forests, dim)
	var scratch BatchScratch
	var scratch32 BatchScratch32
	out := stack.ForwardBatch(b, &scratch)
	out32 := stack32.ForwardBatch(b32, &scratch32)
	if out32.N != out.N || out32.Channels != out.Channels {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", out32.N, out32.Channels, out.N, out.Channels)
	}
	for i, w := range out.Data[:out.N*out.Channels] {
		if e := relErr32(out32.Data[i], w); e > 1e-5 {
			t.Fatalf("conv out[%d] = %v want %v (rel err %g)", i, out32.Data[i], w, e)
		}
	}

	pooled := PoolBatch(out, &scratch.Arena)
	pooled32 := PoolBatch32(out32, &scratch32.Arena)
	for i, w := range pooled {
		if e := relErr32(pooled32[i], w); e > 1e-5 {
			t.Fatalf("pooled[%d] = %v want %v (rel err %g)", i, pooled32[i], w, e)
		}
	}
}

// TestStackF32EmptyBatch checks the zero-node batch (all forests empty).
func TestStackF32EmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const dim = 5
	stack32 := NewStackF32(NewStack([]int{dim, 8, 3}, rng))
	var bb32 BatchBuilder32
	b32 := bb32.Build([][]*Tree{{}, {}}, dim, func(int, *Tree, []float32) {})
	var scratch32 BatchScratch32
	out := stack32.ForwardBatch(b32, &scratch32)
	if out.N != 0 {
		t.Fatalf("empty batch produced %d nodes", out.N)
	}
	pooled := PoolBatch32(out, &scratch32.Arena)
	for i, v := range pooled {
		if v != 0 {
			t.Fatalf("pooled[%d] = %v, want 0 for empty samples", i, v)
		}
	}
}

// observersFor allocates the per-layer, per-channel observer slices for a
// packed stack.
func observersFor(s *StackF32) [][]float32 {
	obs := make([][]float32, len(s.Layers))
	for i, l := range s.Layers {
		obs[i] = make([]float32, l.In)
	}
	return obs
}

// TestStackF32Observe checks the calibration observer records each layer's
// per-channel input absmax.
func TestStackF32Observe(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const dim = 4
	stack32 := NewStackF32(NewStack([]int{dim, 6, 2}, rng))
	forests := [][]*Tree{randomForest(rng, 2, dim)}
	_, b32 := buildBoth(forests, dim)
	want := make([]float32, dim)
	nn.AbsMaxCols(b32.Data, b32.N, dim, want)
	var scratch32 BatchScratch32
	obs := observersFor(stack32)
	stack32.ForwardBatchObserve(b32, &scratch32, obs)
	for c := range want {
		if obs[0][c] != want[c] {
			t.Fatalf("obs[0] = %v, want per-channel input absmax %v", obs[0], want)
		}
	}
	if nn.AbsMaxF32(obs[1]) <= 0 {
		t.Fatalf("obs[1] = %v, want some channel > 0", obs[1])
	}
}

// TestStackI8TracksFloat64 checks the quantized stack stays within the
// calibrated bound of the float64 reference on in-calibration inputs.
func TestStackI8TracksFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const dim = 6
	stack := NewStack([]int{dim, 12, 8}, rng)
	stack32 := NewStackF32(stack)
	forests := [][]*Tree{
		randomForest(rng, 2, dim),
		randomForest(rng, 3, dim),
		{},
	}
	b, b32 := buildBoth(forests, dim)

	// Calibrate on the same batch, then quantize.
	var scratch32 BatchScratch32
	obs := observersFor(stack32)
	stack32.ForwardBatchObserve(b32, &scratch32, obs)
	stack8 := NewStackI8(stack, obs)

	var scratch BatchScratch
	want := stack.ForwardBatch(b, &scratch)
	scratch32.Reset()
	got := stack8.ForwardBatch(b32, &scratch32)

	// Per-tensor int8 with two quantized layers: generous but bounded.
	maxAbs := 0.0
	for _, w := range want.Data[:want.N*want.Channels] {
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 0.1 * maxAbs
	if tol < 0.05 {
		tol = 0.05
	}
	for i, w := range want.Data[:want.N*want.Channels] {
		if d := math.Abs(float64(got.Data[i]) - w); d > tol {
			t.Fatalf("int8 conv out[%d] = %v want %v (err %g beyond bound %g)", i, got.Data[i], w, d, tol)
		}
	}
}
