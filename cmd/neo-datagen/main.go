// Command neo-datagen generates one of the synthetic databases and prints a
// summary of its tables, plus (optionally) a sample workload, so users can
// inspect what the experiments run against.
//
// Usage:
//
//	neo-datagen -dataset imdb -scale 1.0
//	neo-datagen -dataset corp -queries 5
//	neo-datagen -dataset imdb -scale 0.4 -out data/imdb
//
// With -out the generated tables are also materialized as slotted-page heap
// files in the given directory, ready for the disk execution engine (`neo
// -engine disk -data-dir <dir>`).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"neo/internal/datagen"
	"neo/internal/storage"
	"neo/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "imdb", "dataset profile: imdb, tpch or corp")
		scale   = flag.Float64("scale", 1.0, "scale factor")
		seed    = flag.Int64("seed", 42, "random seed")
		queries = flag.Int("queries", 3, "print this many sample workload queries")
		out     = flag.String("out", "", "materialize the tables as heap files into this directory (for -engine disk)")
	)
	flag.Parse()

	db, err := datagen.Generate(datagen.Profile(*dataset), datagen.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s (scale %.2f, seed %d): %d rows, ~%.2f MB\n\n",
		*dataset, *scale, *seed, db.TotalRows(), float64(db.ApproxSizeBytes())/(1024*1024))
	fmt.Printf("%-18s %10s %10s\n", "table", "rows", "columns")
	for _, t := range db.Catalog.Tables() {
		fmt.Printf("%-18s %10d %10d\n", t.Name, db.Table(t.Name).NumRows(), len(t.Columns))
	}
	fmt.Printf("\nforeign keys: %d, secondary indexes: %d\n", len(db.Catalog.ForeignKeys()), len(db.Catalog.Indexes()))

	if *out != "" {
		if err := storage.Materialize(db, *out); err != nil {
			fatal(err)
		}
		var bytes int64
		for _, t := range db.Catalog.Tables() {
			info, err := os.Stat(storage.HeapFileName(*out, t.Name))
			if err != nil {
				fatal(err)
			}
			bytes += info.Size()
		}
		abs, err := filepath.Abs(*out)
		if err != nil {
			abs = *out
		}
		fmt.Printf("\nmaterialized %d heap files (%.2f MB on disk) into %s\n",
			len(db.Catalog.Tables()), float64(bytes)/(1024*1024), abs)
		fmt.Printf("run them with: neo -engine disk -data-dir %s -dataset %s -scale %g -seed %d\n",
			*out, *dataset, *scale, *seed)
	}

	if *queries > 0 {
		var wl *workload.Workload
		switch *dataset {
		case "tpch":
			wl, err = workload.TPCH(db, *queries, *seed)
		case "corp":
			wl, err = workload.Corp(db, *queries, *seed)
		default:
			wl, err = workload.JOB(db, *queries, *seed)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nsample workload queries:\n")
		for _, q := range wl.Queries {
			fmt.Printf("  -- %s\n  %s\n", q.ID, q.SQL())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neo-datagen:", err)
	os.Exit(1)
}
