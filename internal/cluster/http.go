package cluster

import (
	"encoding/json"
	"net/http"
)

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
