// Package route decides, per query, whether planning takes the
// statistics-free greedy fast path (internal/fastpath, microseconds) or the
// full DNN-guided best-first search (internal/search, milliseconds).
// Queries are classified by join count, join-graph shape and whether any
// predicate selectivity is visible in the syntax; the initial policy is a
// heuristic over those classes — single relations and small chains/stars go
// greedy, cyclic or disconnected graphs keep the full search — and it is
// refined online: executed fast-path plans' observed latencies are compared
// against the value network's estimate for the best-first plan, and a class
// whose mean regret crosses the threshold is demoted to the full search for
// the rest of the process.
package route

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"neo/internal/query"
)

// Mode selects the routing behaviour.
type Mode int

const (
	// Full sends every query through the full best-first search — the
	// historical behaviour, and the zero value so existing configurations
	// are unchanged.
	Full Mode = iota
	// Fastpath forces the greedy fast path for every query.
	Fastpath
	// Auto routes per class: heuristic bootstrap, regret-based refinement.
	Auto
)

// String returns the flag/JSON spelling of a mode.
func (m Mode) String() string {
	switch m {
	case Fastpath:
		return "fastpath"
	case Auto:
		return "auto"
	default:
		return "full"
	}
}

// ParseMode parses a mode's flag spelling. The empty string parses as Full
// so zero-valued configurations keep the historical behaviour.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "full":
		return Full, nil
	case "fastpath":
		return Fastpath, nil
	case "auto":
		return Auto, nil
	default:
		return Full, fmt.Errorf(`route: unknown routing mode %q (want "auto", "fastpath" or "full")`, s)
	}
}

// Class is the routing equivalence class of a query: everything the policy
// conditions on.
type Class struct {
	// NumJoins is the number of join predicates.
	NumJoins int
	// Shape classifies the join graph: "single" (one relation), "chain"
	// (every relation joins at most two others), "star" (one hub joined by
	// every other relation), "general" (cycles, higher-degree meshes, or a
	// disconnected graph).
	Shape string
	// SelVisible reports whether the query carries any column predicate —
	// the only selectivity signal the fast path can see.
	SelVisible bool
}

// Key is the class's stable string form, used as the per-class stats key:
// e.g. "star/3j/sel".
func (c Class) Key() string {
	sel := "nosel"
	if c.SelVisible {
		sel = "sel"
	}
	return fmt.Sprintf("%s/%dj/%s", c.Shape, c.NumJoins, sel)
}

// Classify buckets a query into its routing class.
func Classify(q *query.Query) Class {
	c := Class{NumJoins: len(q.Joins), SelVisible: len(q.Predicates) > 0}
	n := len(q.Relations)
	if n <= 1 {
		c.Shape = "single"
		return c
	}
	// Shape is a property of the simple join graph: parallel join
	// predicates between the same pair collapse to one edge.
	edges := make(map[edge]bool)
	degree := make(map[string]int, n)
	for _, j := range q.Joins {
		a, b := j.LeftTable, j.RightTable
		if a == b {
			continue
		}
		if b < a {
			a, b = b, a
		}
		if !edges[edge{a, b}] {
			edges[edge{a, b}] = true
			degree[a]++
			degree[b]++
		}
	}
	maxDeg := 0
	for _, d := range degree {
		if d > maxDeg {
			maxDeg = d
		}
	}
	switch {
	case !connected(q.Relations, edges) || len(edges) != n-1:
		c.Shape = "general" // disconnected, or a cycle/mesh
	case maxDeg <= 2:
		c.Shape = "chain"
	case maxDeg == n-1:
		c.Shape = "star"
	default:
		c.Shape = "general"
	}
	return c
}

// edge is one undirected edge of the simple join graph.
type edge struct{ a, b string }

// connected reports whether the simple join graph spans every relation.
func connected(rels []string, edges map[edge]bool) bool {
	if len(rels) == 0 {
		return true
	}
	reached := map[string]bool{rels[0]: true}
	for grown := true; grown; {
		grown = false
		for e := range edges {
			if reached[e.a] != reached[e.b] {
				reached[e.a], reached[e.b] = true, true
				grown = true
			}
		}
	}
	return len(reached) == len(rels)
}

// Policy holds the auto mode's thresholds. The zero value of any field
// selects its default.
type Policy struct {
	// MaxFastpathJoins bounds how large a chain/star still takes the fast
	// path (default 8): beyond it the greedy ordering error compounds over
	// too many joins to trust without statistics.
	MaxFastpathJoins int
	// MinRegretSamples is how many executed fast-path queries of a class
	// must be observed before the class can be demoted (default 8).
	MinRegretSamples int
	// RegretThreshold demotes a class when its mean observed/estimated
	// latency ratio exceeds it (default 1.5).
	RegretThreshold float64
}

// DefaultPolicy returns the production thresholds.
func DefaultPolicy() Policy {
	return Policy{MaxFastpathJoins: 8, MinRegretSamples: 8, RegretThreshold: 1.5}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxFastpathJoins <= 0 {
		p.MaxFastpathJoins = d.MaxFastpathJoins
	}
	if p.MinRegretSamples <= 0 {
		p.MinRegretSamples = d.MinRegretSamples
	}
	if p.RegretThreshold <= 0 {
		p.RegretThreshold = d.RegretThreshold
	}
	return p
}

// Decision is the outcome of routing one query.
type Decision struct {
	// Class is the query's class key.
	Class string
	// Fastpath reports whether the greedy fast path plans this query.
	Fastpath bool
}

// Router makes and accounts routing decisions. Safe for concurrent use.
type Router struct {
	mode Mode
	pol  Policy

	mu      sync.Mutex
	classes map[string]*classState // guarded by mu
}

type classState struct {
	fastpath  uint64
	full      uint64
	demoted   bool
	hist      latencyHist
	regretSum float64
	regretN   uint64
}

// New creates a router. Zero policy fields select DefaultPolicy values.
func New(mode Mode, pol Policy) *Router {
	return &Router{mode: mode, pol: pol.withDefaults(), classes: make(map[string]*classState)}
}

// Mode returns the router's configured mode.
func (r *Router) Mode() Mode { return r.mode }

// classLocked returns (creating if needed) the state for one class key.
// Callers must hold r.mu.
func (r *Router) classLocked(key string) *classState {
	st := r.classes[key]
	if st == nil {
		st = &classState{}
		r.classes[key] = st
	}
	return st
}

// Decide routes one query and records the decision in the per-class
// counters. Decisions are deterministic: the same query against the same
// accumulated regret state always routes the same way.
func (r *Router) Decide(q *query.Query) Decision {
	c := Classify(q)
	d := Decision{Class: c.Key()}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.classLocked(d.Class)
	switch {
	case r.mode == Fastpath:
		d.Fastpath = true
	case r.mode == Full:
		d.Fastpath = false
	case st.demoted:
		d.Fastpath = false
	default:
		d.Fastpath = r.heuristic(c)
	}
	if d.Fastpath {
		st.fastpath++
	} else {
		st.full++
	}
	return d
}

// heuristic is the bootstrap policy, before any regret evidence exists:
// single relations are trivially greedy; chains and stars — the pattern
// shapes the janus-datalog results cover — go greedy only when the syntax
// shows selectivity to order by (a predicate-free query gives the greedy
// ordering no signal at all, so the learned search keeps it); cyclic,
// meshed or disconnected graphs keep the full search.
func (r *Router) heuristic(c Class) bool {
	switch c.Shape {
	case "single":
		return true
	case "chain", "star":
		return c.SelVisible && c.NumJoins <= r.pol.MaxFastpathJoins
	default:
		return false
	}
}

// RecordFastpathLatency folds one fast-path planning duration into the
// class's latency histogram (the /stats P50/P99 source).
func (r *Router) RecordFastpathLatency(class string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classLocked(class).hist.observe(d)
}

// NeedsOutcome reports whether an executed query of this class should be
// scored for regret. Callers pay one value-network inference to produce the
// estimate, so they ask first: only auto mode learns, and only classes
// actually routed to the fast path (and not already demoted) are worth the
// inference.
func (r *Router) NeedsOutcome(q *query.Query) bool {
	if r.mode != Auto {
		return false
	}
	key := Classify(q).Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.classes[key]
	return st != nil && st.fastpath > 0 && !st.demoted
}

// RecordOutcome folds one executed fast-path query's regret sample into its
// class: observed is the measured latency, estimate the value network's
// prediction for what the full search's plan would have cost (same units).
// Once the class has MinRegretSamples samples with a mean ratio above
// RegretThreshold it is demoted — every later query of the class takes the
// full search. Demotion is sticky: the fast path's ordering is
// deterministic, so a class it plans badly stays badly planned.
func (r *Router) RecordOutcome(class string, observed, estimate float64) {
	if observed <= 0 || estimate <= 0 {
		return
	}
	ratio := observed / estimate
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.classLocked(class)
	st.regretSum += ratio
	st.regretN++
	if r.mode == Auto && !st.demoted &&
		st.regretN >= uint64(r.pol.MinRegretSamples) &&
		st.regretSum/float64(st.regretN) > r.pol.RegretThreshold {
		st.demoted = true
	}
}

// ClassStats is one class's routing counters, JSON-shaped for /stats.
type ClassStats struct {
	// Class is the class key ("star/3j/sel").
	Class string `json:"class"`
	// Fastpath and Full count routing decisions.
	Fastpath uint64 `json:"fastpath"`
	Full     uint64 `json:"full"`
	// FastpathP50US / FastpathP99US are fast-path planning-latency
	// percentiles in microseconds (0 until the class has fast-path
	// observations).
	FastpathP50US float64 `json:"fastpath_p50_us,omitempty"`
	FastpathP99US float64 `json:"fastpath_p99_us,omitempty"`
	// RegretMean is the mean observed/estimated latency ratio over
	// RegretSamples executed fast-path queries.
	RegretMean    float64 `json:"regret_mean,omitempty"`
	RegretSamples uint64  `json:"regret_samples,omitempty"`
	// ReroutedFull reports that regret demoted the class to the full
	// search.
	ReroutedFull bool `json:"rerouted_full,omitempty"`
}

// StatsSnapshot is the router's /stats section.
type StatsSnapshot struct {
	// Mode is the configured routing mode.
	Mode string `json:"mode"`
	// Fastpath and Full are decision totals across all classes.
	Fastpath uint64 `json:"fastpath"`
	Full     uint64 `json:"full"`
	// FastpathP50US / FastpathP99US aggregate planning latency over every
	// fast-path decision.
	FastpathP50US float64 `json:"fastpath_p50_us"`
	FastpathP99US float64 `json:"fastpath_p99_us"`
	// Classes lists per-class counters, sorted by class key.
	Classes []ClassStats `json:"classes,omitempty"`
}

// Stats snapshots the router's counters. Safe for concurrent use.
func (r *Router) Stats() StatsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := StatsSnapshot{Mode: r.mode.String()}
	var all latencyHist
	for key, st := range r.classes {
		cs := ClassStats{
			Class:         key,
			Fastpath:      st.fastpath,
			Full:          st.full,
			FastpathP50US: st.hist.quantileUS(0.50),
			FastpathP99US: st.hist.quantileUS(0.99),
			RegretSamples: st.regretN,
			ReroutedFull:  st.demoted,
		}
		if st.regretN > 0 {
			cs.RegretMean = st.regretSum / float64(st.regretN)
		}
		out.Fastpath += st.fastpath
		out.Full += st.full
		all.merge(&st.hist)
		out.Classes = append(out.Classes, cs)
	}
	out.FastpathP50US = all.quantileUS(0.50)
	out.FastpathP99US = all.quantileUS(0.99)
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i].Class < out.Classes[j].Class })
	return out
}
