package treeconv

import (
	"math"
	"math/rand"
	"testing"

	"neo/internal/nn"
)

// buildFlatBatch flattens forests with a copy-through fill (no spatial
// replication), as the parity tests need the raw node vectors.
func buildFlatBatch(bb *BatchBuilder, forests [][]*Tree, dim int) *Batch {
	return bb.Build(forests, dim, func(_ int, node *Tree, row []float64) {
		copy(row, node.Data)
	})
}

// TestForwardBatchTapeMatchesForward asserts the training forward pass is
// bit-identical to the per-tree Forward, layer by layer.
func TestForwardBatchTapeMatchesForward(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const dim = 5
		stack := NewStack([]int{dim, 9, 4}, rng)
		forests := make([][]*Tree, 6)
		for i := range forests {
			forests[i] = randomForest(rng, rng.Intn(3)+1, dim)
		}

		var bb BatchBuilder
		var arena nn.Arena
		batch := buildFlatBatch(&bb, forests, dim)
		tape := stack.ForwardBatchTape(batch, &arena)
		out := tape.Output()

		node := 0
		for _, f := range forests {
			for _, tree := range f {
				ref := stack.Forward(tree)
				ref.Output().Walk(func(n *Tree) {
					for c, v := range n.Data {
						if got := out.Row(node)[c]; got != v {
							t.Errorf("seed %d node %d channel %d: batch %v, per-tree %v", seed, node, c, got, v)
						}
					}
					node++
				})
			}
		}
		if node != out.N {
			t.Fatalf("seed %d: compared %d nodes, batch has %d", seed, node, out.N)
		}
	}
}

// TestStackBackwardBatchMatchesBackward is the training parity test for the
// convolution stack: a flat backward pass over a batch must accumulate
// bit-identical filter gradients and input gradients to per-tree Backward
// calls in flattened order.
func TestStackBackwardBatchMatchesBackward(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 10))
		const dim = 4
		batched := NewStack([]int{dim, 7, 3}, rand.New(rand.NewSource(seed+30)))
		reference := NewStack([]int{dim, 7, 3}, rand.New(rand.NewSource(seed+30)))

		forests := make([][]*Tree, 5)
		for i := range forests {
			forests[i] = randomForest(rng, rng.Intn(2)+1, dim)
		}
		var bb BatchBuilder
		var arena nn.Arena
		batch := buildFlatBatch(&bb, forests, dim)
		tape := batched.ForwardBatchTape(batch, &arena)
		outChannels := tape.Output().Channels

		// Random gradients per output node (with zeros mixed in, as dynamic
		// pooling produces).
		gradOut := make([]float64, batch.N*outChannels)
		for i := range gradOut {
			if rng.Intn(3) > 0 {
				gradOut[i] = rng.NormFloat64()
			}
		}
		gotGradIn := batched.BackwardBatch(tape, gradOut, &arena)

		node := 0
		for _, f := range forests {
			for _, tree := range f {
				refTape := reference.Forward(tree)
				start := node
				var count int
				tree.Walk(func(*Tree) { count++ })
				// Rebuild this tree's gradient tree from the flat slice: walk
				// assigns node indices in the same pre-order as the builder.
				i := start
				gradTree := refTape.Output().Map(func(*Tree) []float64 {
					g := make([]float64, outChannels)
					copy(g, gradOut[i*outChannels:(i+1)*outChannels])
					i++
					return g
				})
				gradIn := reference.Backward(refTape, gradTree)
				j := start
				gradIn.Walk(func(n *Tree) {
					for c, v := range n.Data {
						if got := gotGradIn[j*dim+c]; got != v {
							t.Errorf("seed %d node %d channel %d: input grad batch %v, per-tree %v", seed, j, c, got, v)
						}
					}
					j++
				})
				node = start + count
			}
		}

		bp, rp := batched.Params(), reference.Params()
		for pi := range bp {
			for j := range bp[pi].Grad {
				if bp[pi].Grad[j] != rp[pi].Grad[j] {
					t.Errorf("seed %d: %s grad[%d]: batch %v, per-tree %v",
						seed, bp[pi].Name, j, bp[pi].Grad[j], rp[pi].Grad[j])
				}
			}
		}
	}
}

// TestPoolBatchArgmaxMatchesDynamicPool checks pooled values and argmax
// ownership against per-tree DynamicPool plus the cross-tree strict-greater
// ownership rule of the per-sample forward pass.
func TestPoolBatchArgmaxMatchesDynamicPool(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const dim = 6
	stack := NewStack([]int{dim, dim}, rng)
	forests := [][]*Tree{
		randomForest(rng, 2, dim),
		{},
		randomForest(rng, 3, dim),
		randomForest(rng, 1, dim),
	}
	var bb BatchBuilder
	var arena nn.Arena
	batch := buildFlatBatch(&bb, forests, dim)
	tape := stack.ForwardBatchTape(batch, &arena)
	out := tape.Output()
	pooled, argmax := PoolBatchArgmax(out, &arena, nil)

	for s, f := range forests {
		want := make([]float64, out.Channels)
		for i := range want {
			want[i] = math.Inf(-1)
		}
		for _, tree := range f {
			p, _ := DynamicPool(stack.Forward(tree).Output())
			for c, v := range p {
				if v > want[c] {
					want[c] = v
				}
			}
		}
		for c := range want {
			if math.IsInf(want[c], -1) {
				want[c] = 0
				if argmax[s*out.Channels+c] != -1 {
					t.Errorf("sample %d channel %d: empty forest should have argmax -1", s, c)
				}
			}
			if got := pooled[s*out.Channels+c]; got != want[c] {
				t.Errorf("sample %d channel %d: pooled %v, want %v", s, c, got, want[c])
			}
			if n := argmax[s*out.Channels+c]; n >= 0 {
				if batch.Sample[n] != s {
					t.Errorf("sample %d channel %d: argmax node %d belongs to sample %d", s, c, n, batch.Sample[n])
				}
				if out.Row(n)[c] != pooled[s*out.Channels+c] {
					t.Errorf("sample %d channel %d: argmax node value %v != pooled %v", s, c, out.Row(n)[c], pooled[s*out.Channels+c])
				}
			}
		}
	}

	// PoolBackwardBatch scatters each (sample, channel) gradient onto exactly
	// the argmax node.
	grad := make([]float64, len(pooled))
	for i := range grad {
		grad[i] = rng.NormFloat64()
	}
	gradNodes := PoolBackwardBatch(out, argmax, grad, &arena)
	sum := 0.0
	for _, v := range gradNodes {
		sum += math.Abs(v)
	}
	wantSum := 0.0
	for i, v := range grad {
		if argmax[i] >= 0 {
			wantSum += math.Abs(v)
		}
	}
	if math.Abs(sum-wantSum) > 1e-12 {
		t.Errorf("scattered gradient mass %v, want %v", sum, wantSum)
	}
}
