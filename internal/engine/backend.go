package engine

import (
	"time"

	"neo/internal/executor"
	"neo/internal/plan"
	"neo/internal/storage"
)

// ExecutionBackend is the pluggable execution substrate of an Engine. A
// backend runs one complete plan and returns the base latency in
// milliseconds plus the executor's per-node statistics.
//
// The contract preserves the Simulate/Commit determinism split: Run must be
// safe for concurrent use and must not consume any engine-owned randomness —
// for a simulated backend the returned latency is the deterministic cost
// model output (run-to-run noise is applied later, in Commit, from the
// engine's serialized noise stream); for a measured backend the returned
// latency is the observed wall clock and Commit applies no noise at all
// (Measured reports which case holds).
type ExecutionBackend interface {
	// Name identifies the backend ("sim", "disk").
	Name() string
	// Run executes one complete plan, returning the base latency in
	// milliseconds and per-node statistics. Safe for concurrent use.
	Run(p *plan.Plan) (float64, *executor.Result, error)
	// Measured reports whether Run's latency is observed wall-clock time
	// (true) or a deterministic simulated cost (false). Commit adds noise
	// only to simulated latencies: measured ones already contain the real
	// thing.
	Measured() bool
}

// SimBackend executes plans on the in-memory executor and prices them with
// a cost Profile. It is deterministic (same plan, same latency) and fast,
// which makes it the test double and the default backend.
type SimBackend struct {
	Profile Profile
	Exec    *executor.Executor
}

// NewSimBackend creates the simulated backend for a profile and database.
func NewSimBackend(profile Profile, db *storage.Database) *SimBackend {
	return &SimBackend{Profile: profile, Exec: executor.New(db)}
}

// Name implements ExecutionBackend.
func (b *SimBackend) Name() string { return "sim" }

// Measured implements ExecutionBackend: simulated latencies get Commit noise.
func (b *SimBackend) Measured() bool { return false }

// Run implements ExecutionBackend.
func (b *SimBackend) Run(p *plan.Plan) (float64, *executor.Result, error) {
	res, err := b.Exec.Execute(p)
	if err != nil {
		return 0, nil, err
	}
	return b.Profile.CostResult(p.Roots[0], res.Nodes), res, nil
}

// DiskBackend executes plans against on-disk heap files through a buffer
// pool and reports the measured wall-clock latency, so the learning loop
// trains on real execution time — including effects no cost model prices,
// like page residency (cold vs hot cache).
type DiskBackend struct {
	Exec *executor.DiskExecutor
}

// NewDiskBackend creates the disk backend over an opened disk database.
func NewDiskBackend(db *storage.DiskDB) *DiskBackend {
	return &DiskBackend{Exec: executor.NewDisk(db)}
}

// Name implements ExecutionBackend.
func (b *DiskBackend) Name() string { return "disk" }

// Measured implements ExecutionBackend: latencies are real, Commit must not
// perturb them.
func (b *DiskBackend) Measured() bool { return true }

// Run implements ExecutionBackend.
func (b *DiskBackend) Run(p *plan.Plan) (float64, *executor.Result, error) {
	start := time.Now() //neo:lint-ok walltime measured backend: real execution latency IS the training signal
	res, err := b.Exec.Execute(p)
	if err != nil {
		return 0, nil, err
	}
	return float64(time.Since(start)) / float64(time.Millisecond), res, nil //neo:lint-ok walltime measured backend: real execution latency IS the training signal
}

// StorageStats returns the buffer-pool counters of the backend's database.
func (b *DiskBackend) StorageStats() storage.PoolStats {
	return b.Exec.DB().Pool.Stats()
}
