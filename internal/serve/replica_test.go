package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neo/internal/checkpoint"
	"neo/internal/cluster/proto"
	"neo/internal/core"
)

// fakeTrainer is a minimal trainer endpoint for replica tests: it ingests
// experience containers and serves one fixed snapshot.
type fakeTrainer struct {
	mu       sync.Mutex
	entries  []core.Entry
	batches  int
	snapshot []byte
	version  uint64
}

func (ft *fakeTrainer) count() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.entries)
}

func (ft *fakeTrainer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /experience", func(w http.ResponseWriter, r *http.Request) {
		entries, err := checkpoint.LoadExperience(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ft.mu.Lock()
		ft.entries = append(ft.entries, entries...)
		ft.batches++
		n := len(ft.entries)
		ft.mu.Unlock()
		_ = json.NewEncoder(w).Encode(proto.ExperienceResponse{Accepted: len(entries), Experience: n})
	})
	mux.HandleFunc("GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		ft.mu.Lock()
		defer ft.mu.Unlock()
		if ft.snapshot == nil {
			http.Error(w, "no snapshot", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(ft.snapshot)
	})
	return mux
}

// fastClient keeps trainer-outage tests quick: one attempt, tight timeout.
func fastClient() proto.Client {
	return proto.Client{Attempts: 1, Backoff: time.Millisecond, Timeout: 500 * time.Millisecond}
}

// TestReplicaForwardsFeedback pins the replica half of the tentpole: a
// replica daemon queues /feedback experience and the forwarder delivers it
// to the trainer as CRC-checked containers, with the counters surfacing in
// /stats. Replicas must never retrain locally.
func TestReplicaForwardsFeedback(t *testing.T) {
	sys, queries := testSystem(t)
	defer sys.Close()
	ft := &fakeTrainer{}
	trainer := httptest.NewServer(ft.handler())
	defer trainer.Close()

	srv := New(sys, Config{
		RetrainEvery: 1, // must be ignored: replicas never train
		Replica:      &ReplicaConfig{TrainerURL: trainer.URL, FlushEvery: 5 * time.Millisecond},
	})
	srv.Start()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 6
	for i := 0; i < n; i++ {
		var resp FeedbackResponse
		if code := postJSON(t, ts.URL+"/feedback", FeedbackRequest{Query: specFor(queries[i%len(queries)]), LatencyMS: 12.5}, &resp); code != http.StatusOK {
			t.Fatalf("feedback %d: status %d", i, code)
		}
		if !resp.Queued {
			t.Fatal("replica feedback was not queued")
		}
		if resp.RetrainTriggered {
			t.Fatal("a replica triggered local retraining")
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for ft.count() < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := ft.count(); got != n {
		t.Fatalf("trainer received %d entries, want %d", got, n)
	}
	for _, e := range ft.entries {
		if e.Latency != 12.5 {
			t.Fatalf("entry latency %v survived the wire wrong", e.Latency)
		}
	}
	// The replica's forwarded counter lands just after the trainer's ingest;
	// poll for it.
	var st Stats
	for st = getStats(t, ts.URL); st.Cluster != nil && st.Cluster.Forwarded < n && time.Now().Before(deadline); st = getStats(t, ts.URL) {
		time.Sleep(2 * time.Millisecond)
	}
	if st.Cluster == nil {
		t.Fatal("replica /stats has no cluster section")
	}
	if st.Cluster.Role != "replica" || st.Cluster.Trainer != trainer.URL {
		t.Fatalf("cluster section %+v", st.Cluster)
	}
	if st.Cluster.Forwarded != n || st.Cluster.Dropped != 0 {
		t.Fatalf("forwarded=%d dropped=%d, want %d/0", st.Cluster.Forwarded, st.Cluster.Dropped, n)
	}
	if st.Cluster.Quality.WindowFeedbacks != n || st.Cluster.Quality.WindowMeanLatencyMS != 12.5 {
		t.Fatalf("quality window %+v", st.Cluster.Quality)
	}
	if st.Retrains != 0 || st.Experience != sys.Neo.Experience.Len() {
		t.Fatalf("replica trained: retrains=%d", st.Retrains)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaFrozenWhenTrainerDead pins the degradation contract: with the
// trainer gone, every client request still succeeds — experience queues,
// then the oldest entries drop — and the serving snapshot stays frozen.
func TestReplicaFrozenWhenTrainerDead(t *testing.T) {
	sys, queries := testSystem(t)
	defer sys.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	srv := New(sys, Config{Replica: &ReplicaConfig{
		TrainerURL: deadURL,
		FlushEvery: 5 * time.Millisecond,
		MaxQueue:   3,
		Client:     fastClient(),
	}})
	srv.Start()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	versionBefore := sys.Neo.NetVersion()
	var opt OptimizeResponse
	if code := postJSON(t, ts.URL+"/optimize", specFor(queries[0]), &opt); code != http.StatusOK {
		t.Fatalf("optimize with dead trainer: status %d", code)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if code := postJSON(t, ts.URL+"/feedback", FeedbackRequest{Query: specFor(queries[i%len(queries)]), LatencyMS: 9}, nil); code != http.StatusOK {
			t.Fatalf("feedback %d with dead trainer: status %d — a dead trainer must not fail requests", i, code)
		}
	}
	// The queue bound (3) drops the oldest of the 6; a flush tick records
	// the forwarding failure.
	deadline := time.Now().Add(10 * time.Second)
	var st Stats
	for time.Now().Before(deadline) {
		st = getStats(t, ts.URL)
		if st.Cluster.ForwardErrors > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Cluster.Dropped < n-3 {
		t.Fatalf("dropped=%d, want >=%d (queue bound 3)", st.Cluster.Dropped, n-3)
	}
	if st.Cluster.ForwardErrors == 0 || st.Cluster.LastForwardError == "" {
		t.Fatalf("forwarding failures not surfaced: %+v", st.Cluster)
	}
	if sys.Neo.NetVersion() != versionBefore {
		t.Fatal("snapshot version moved with no trainer — replicas must stay frozen")
	}
	if err := srv.Close(); err != nil { // drain must give up quickly, not hang
		t.Fatal(err)
	}
}

// TestAdminSnapshotLoadsPublishedVersion pins the snapshot pull path: POST
// /admin/snapshot fetches the trainer's container, replaces the serving
// weights under the swap lock, archives the quality window, and leaves the
// replica planning exactly like the system the snapshot came from.
func TestAdminSnapshotLoadsPublishedVersion(t *testing.T) {
	source, queries := testSystem(t)
	defer source.Close()
	// Advance the source one retraining round so its published version is
	// ahead of the replica's.
	<-source.RetrainAsync()
	var snap bytes.Buffer
	if err := source.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	ft := &fakeTrainer{snapshot: snap.Bytes(), version: source.Neo.NetVersion()}
	trainer := httptest.NewServer(ft.handler())
	defer trainer.Close()

	sys, _ := testSystem(t)
	defer sys.Close()
	srv := New(sys, Config{Replica: &ReplicaConfig{TrainerURL: trainer.URL, FlushEvery: time.Minute}})
	srv.Start()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if sys.Neo.NetVersion() == source.Neo.NetVersion() {
		t.Fatal("test setup: source and replica versions already equal")
	}
	// Seed the quality window so the load has something to archive.
	if code := postJSON(t, ts.URL+"/feedback", FeedbackRequest{Query: specFor(queries[0]), LatencyMS: 20}, nil); code != http.StatusOK {
		t.Fatalf("feedback: status %d", code)
	}

	var resp proto.SnapshotResponse
	if code := postJSON(t, ts.URL+"/admin/snapshot", proto.SnapshotRequest{}, &resp); code != http.StatusOK {
		t.Fatalf("admin/snapshot: status %d", code)
	}
	if resp.NetVersion != source.Neo.NetVersion() {
		t.Fatalf("replica serves version %d after load, want %d", resp.NetVersion, source.Neo.NetVersion())
	}
	st := getStats(t, ts.URL)
	if st.NetVersion != resp.NetVersion || st.Cluster.SnapshotVersion != resp.NetVersion {
		t.Fatalf("stats version %d/%d, want %d", st.NetVersion, st.Cluster.SnapshotVersion, resp.NetVersion)
	}
	if st.Cluster.Quality.PrevWindowFeedbacks != 1 || st.Cluster.Quality.WindowFeedbacks != 0 {
		t.Fatalf("quality window not archived on load: %+v", st.Cluster.Quality)
	}
	// The replica now plans exactly like the source system.
	for _, q := range queries[:3] {
		want, _, err := source.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		var opt OptimizeResponse
		if code := postJSON(t, ts.URL+"/optimize", specFor(q), &opt); code != http.StatusOK {
			t.Fatalf("optimize: status %d", code)
		}
		if opt.Plan != want.String() {
			t.Fatalf("replica plan diverged from snapshot source:\n  replica: %s\n  source:  %s", opt.Plan, want)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAdminSnapshotUnreachableTrainer pins that a failed pull leaves the
// replica on its current snapshot with a 502, not in a half-loaded state.
func TestAdminSnapshotUnreachableTrainer(t *testing.T) {
	sys, queries := testSystem(t)
	defer sys.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	srv := New(sys, Config{Replica: &ReplicaConfig{TrainerURL: deadURL, FlushEvery: time.Minute, Client: fastClient()}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	before := sys.Neo.NetVersion()
	if code := postJSON(t, ts.URL+"/admin/snapshot", proto.SnapshotRequest{}, nil); code != http.StatusBadGateway {
		t.Fatalf("admin/snapshot with dead trainer: status %d, want 502", code)
	}
	if sys.Neo.NetVersion() != before {
		t.Fatal("failed load changed the serving version")
	}
	if code := postJSON(t, ts.URL+"/optimize", specFor(queries[0]), nil); code != http.StatusOK {
		t.Fatalf("optimize after failed load: status %d", code)
	}
}

// TestCloseDrainsInFlightFeedback is the shutdown-drain regression test: a
// replica closed while /feedback requests are in flight must hand every
// accepted entry to the trainer — queued experience flushes in the drain,
// post-drain stragglers forward synchronously — and never drop or double
// anything. Run under -race.
func TestCloseDrainsInFlightFeedback(t *testing.T) {
	sys, queries := testSystem(t)
	defer sys.Close()
	ft := &fakeTrainer{}
	trainer := httptest.NewServer(ft.handler())
	defer trainer.Close()

	// FlushEvery of a minute: nothing flushes before Close, so every
	// delivered entry went through the drain or the straggler path.
	srv := New(sys, Config{Replica: &ReplicaConfig{TrainerURL: trainer.URL, FlushEvery: time.Minute, FlushBatch: 4}})
	srv.Start()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var accepted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 6; i++ {
				data, err := json.Marshal(FeedbackRequest{Query: specFor(queries[(g+i)%len(queries)]), LatencyMS: 7})
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/feedback", "application/json", bytes.NewReader(data))
				if err != nil {
					t.Errorf("feedback during shutdown failed at transport level: %v", err)
					return
				}
				if resp.StatusCode == http.StatusOK {
					accepted.Add(1)
				}
				resp.Body.Close()
			}
		}(g)
	}
	close(start)
	time.Sleep(10 * time.Millisecond) // let requests get in flight mid-close
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got, want := int64(ft.count()), accepted.Load(); got != want {
		t.Fatalf("trainer received %d entries but %d feedbacks were accepted — graceful drain dropped experience", got, want)
	}
	if accepted.Load() == 0 {
		t.Fatal("test vacuous: no feedback was accepted")
	}
}
