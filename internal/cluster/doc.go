// Package cluster implements the control plane of the distributed serving
// tier: the neo-trainer daemon (Trainer), the rollout coordinator that
// canaries and promotes snapshots across a replica fleet (Coordinator), and
// a thin consistent-hash router that shards client traffic over the
// replicas' plan caches (Router).
//
// The tier splits the paper's learning loop across processes. N stateless
// neo-serve replicas score plans from read-only value-network snapshots and
// forward the (query, plan, latency) experience their /feedback endpoints
// collect to one Trainer, which owns the experience pool and the training
// loop. Every retraining round publishes a new snapshot — a NEOCKPT1
// container, the same CRC-checked artifact checkpoints use on disk — that
// replicas pull over HTTP. The Coordinator then rolls the version out:
// canary on one replica, compare the plan-quality window in its /stats
// against the pre-canary window, promote fleet-wide on parity or roll back
// (and bar the version) on regression.
//
// Wire types live in the leaf package internal/cluster/proto, consistent
// hashing in internal/cluster/ring; the serving daemon itself is
// internal/serve (replica mode), and pkg/neo.Client is the fleet-aware
// client library. See OPERATIONS.md at the repository root for deployment,
// failure modes and the rollout procedure.
package cluster
