package neo

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"neo/internal/checkpoint"
)

// bootstrappedSystem assembles a small system and bootstraps it over a few
// workload queries so the network, experience, baselines and RNG stream all
// hold non-trivial state.
func bootstrappedSystem(t testing.TB, enc Encoding) (*System, []*Query) {
	t.Helper()
	sys := smallSystem(t, "imdb", "postgres", enc)
	wl, err := sys.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries[:4]); err != nil {
		t.Fatal(err)
	}
	return sys, wl.Queries
}

// TestCheckpointRoundTripBitIdenticalAcrossEncodings is the archetype
// headline: save -> load into a freshly opened system -> every value-network
// prediction and every chosen plan is bit-identical, for each featurization
// (including R-Vector, whose learned embedding travels in the checkpoint).
func TestCheckpointRoundTripBitIdenticalAcrossEncodings(t *testing.T) {
	for _, enc := range []Encoding{OneHot, Histogram, RVector} {
		t.Run(string(enc), func(t *testing.T) {
			sys1, queries := bootstrappedSystem(t, enc)
			var buf bytes.Buffer
			if err := sys1.SaveCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}

			sys2 := smallSystem(t, "imdb", "postgres", enc)
			if err := sys2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			if got, want := sys2.Neo.NetVersion(), sys1.Neo.NetVersion(); got != want {
				t.Fatalf("restored net version %d, want %d", got, want)
			}
			if got, want := sys2.Neo.Experience.Len(), sys1.Neo.Experience.Len(); got != want {
				t.Fatalf("restored experience %d entries, want %d", got, want)
			}

			for _, q := range queries {
				// Raw network outputs over the same plan encodings must agree
				// bitwise (PredictBatch under the hood of the batched scorer).
				p, err := sys1.ExpertPlan(q)
				if err != nil {
					t.Fatal(err)
				}
				a := sys1.Neo.PredictNormalized(q, p)
				b := sys2.Neo.PredictNormalized(q, p)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("query %s: prediction %v != %v after warm restart", q.ID, a, b)
				}
				// And the served plans must be identical.
				p1, r1, err := sys1.Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				p2, r2, err := sys2.Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				if p1.String() != p2.String() {
					t.Fatalf("query %s: warm restart served a different plan:\n  %s\n  %s", q.ID, p1, p2)
				}
				if math.Float64bits(r1.Score) != math.Float64bits(r2.Score) {
					t.Fatalf("query %s: plan scores differ: %v vs %v", q.ID, r1.Score, r2.Score)
				}
			}
		})
	}
}

// TestCheckpointResumedTrainingMatchesUninterrupted saves mid-trajectory,
// then retrains both the original system and a restored copy: the weights
// must agree to 1e-9 (they are bit-identical in practice — Adam moments,
// step count and the training RNG position all travel in the checkpoint).
func TestCheckpointResumedTrainingMatchesUninterrupted(t *testing.T) {
	sys1, _ := bootstrappedSystem(t, Histogram)
	var buf bytes.Buffer
	if err := sys1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	sys2 := smallSystem(t, "imdb", "postgres", Histogram)
	if err := sys2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	seed1, draws1 := sys1.Neo.RNGState()
	seed2, draws2 := sys2.Neo.RNGState()
	if seed1 != seed2 || draws1 != draws2 {
		t.Fatalf("RNG state (%d,%d) restored as (%d,%d)", seed1, draws1, seed2, draws2)
	}

	// Two further retraining rounds on each: the uninterrupted run and the
	// resumed run must follow the same trajectory.
	for round := 0; round < 2; round++ {
		loss1 := sys1.Neo.Retrain()
		loss2 := sys2.Neo.Retrain()
		if math.Abs(loss1-loss2) > 1e-9 {
			t.Fatalf("round %d: losses diverged: %v vs %v", round, loss1, loss2)
		}
	}
	p1, p2 := sys1.Neo.Net.Params(), sys2.Neo.Net.Params()
	for i := range p1 {
		for j := range p1[i].Value {
			if d := math.Abs(p1[i].Value[j] - p2[i].Value[j]); d > 1e-9 {
				t.Fatalf("weights diverged at %s[%d] by %g", p1[i].Name, j, d)
			}
		}
	}
	if s1, d1 := sys1.Neo.RNGState(); true {
		if s2, d2 := sys2.Neo.RNGState(); s1 != s2 || d1 != d2 {
			t.Fatalf("RNG streams diverged: (%d,%d) vs (%d,%d)", s1, d1, s2, d2)
		}
	}
}

func TestCheckpointFileRoundTripAndFailureModes(t *testing.T) {
	sys, _ := bootstrappedSystem(t, OneHot)
	dir := t.TempDir()
	path := filepath.Join(dir, "neo.ckpt")
	if err := sys.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp debris left behind by the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly the checkpoint file, found %d entries", len(entries))
	}

	sys2 := smallSystem(t, "imdb", "postgres", OneHot)
	if err := sys2.LoadCheckpointFile(path); err != nil {
		t.Fatal(err)
	}

	// Garbage fails loudly with the bad-magic sentinel.
	garbage := filepath.Join(dir, "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("definitely not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sys2.LoadCheckpointFile(garbage); !errors.Is(err, checkpoint.ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}

	// A checkpoint from a different encoding is rejected with ErrMismatch
	// (OneHot and Histogram share network dimensions, so only the recorded
	// encoding distinguishes them).
	sysH := smallSystem(t, "imdb", "postgres", Histogram)
	if err := sysH.LoadCheckpointFile(path); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}

	// Truncation fails loudly too.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.ckpt")
	if err := os.WriteFile(trunc, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	sys3 := smallSystem(t, "imdb", "postgres", OneHot)
	if err := sys3.LoadCheckpointFile(trunc); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

// TestCheckpointLoadResetsPlanCache ensures stale plans cannot survive a
// checkpoint load: entries cached before the load are dropped.
func TestCheckpointLoadResetsPlanCache(t *testing.T) {
	sys, queries := bootstrappedSystem(t, OneHot)
	var buf bytes.Buffer
	if err := sys.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	q := queries[0]
	if _, _, err := sys.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if sys.PlanCacheStats().Size == 0 {
		t.Fatal("expected a cached plan before the load")
	}
	if err := sys.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := sys.PlanCacheStats().Size; got != 0 {
		t.Fatalf("plan cache holds %d entries after load, want 0", got)
	}
}

// precisionSystem opens a system identical to smallSystem but serving at the
// given scoring precision.
func precisionSystem(t testing.TB, prec string) *System {
	t.Helper()
	sys, err := Open(Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         Histogram,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 32,
		Episodes:         1,
		ScorePrecision:   prec,
		ValueNet: &ValueNetConfig{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCheckpointPrecisionIsSnapshotOnly asserts that serving precision never
// leaks into the checkpoint container: a checkpoint saved while serving int8
// restores the float64 master weights bit-identically into systems serving
// at any precision, and each restored system serves at its own configured
// precision, not the saver's.
func TestCheckpointPrecisionIsSnapshotOnly(t *testing.T) {
	src := precisionSystem(t, "int8")
	wl, err := src.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Bootstrap(wl.Queries[:4]); err != nil {
		t.Fatal(err)
	}
	if got := src.SnapshotInfo().Precision; got != "int8" {
		t.Fatalf("source serves %q, want int8", got)
	}
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	want := src.Neo.Net.Params()
	for _, prec := range []string{"", "float32", "int8"} {
		dst := precisionSystem(t, prec)
		if err := dst.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		got := dst.Neo.Net.Params()
		for i := range want {
			for j := range want[i].Value {
				if math.Float64bits(got[i].Value[j]) != math.Float64bits(want[i].Value[j]) {
					t.Fatalf("precision %q: restored master weight %s[%d] = %v, want bit-identical %v",
						prec, want[i].Name, j, got[i].Value[j], want[i].Value[j])
				}
			}
		}
		wantServe := prec
		if wantServe == "" {
			wantServe = "float64"
		}
		if got := dst.SnapshotInfo().Precision; got != wantServe {
			t.Fatalf("restored system with ScorePrecision=%q serves %q, want %q", prec, got, wantServe)
		}
	}
}
