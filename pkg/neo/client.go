// Client: the fleet-aware client library of the distributed serving tier.
// It speaks the same wire protocol as the thin router (internal/cluster) but
// runs in the caller's process, so an application embedding it needs no
// extra hop: queries are consistent-hashed onto the replica fleet by their
// canonical structure key, feedback follows the same key to the same
// replica, and retryable failures fail over in ring order.
package neo

import (
	"context"
	"fmt"

	"neo/internal/cluster/proto"
	"neo/internal/cluster/ring"
)

// Re-exported wire types, so client code only imports this package.
type (
	// QuerySpec is the JSON representation of a query sent to the fleet.
	QuerySpec = proto.QuerySpec
	// JoinSpec is one equi-join predicate of a QuerySpec.
	JoinSpec = proto.JoinSpec
	// PredicateSpec is one single-table filter of a QuerySpec.
	PredicateSpec = proto.PredicateSpec
	// OptimizeResponse is a replica's /optimize reply.
	OptimizeResponse = proto.OptimizeResponse
	// FeedbackResponse is a replica's /feedback reply.
	FeedbackResponse = proto.FeedbackResponse
	// ReplicaStats is the cluster-relevant subset of a replica's /stats.
	ReplicaStats = proto.ReplicaStats
)

// ClientConfig tunes a fleet client.
type ClientConfig struct {
	// Replicas are the fleet's base URLs (e.g. "http://r1:8080"). At least
	// one is required.
	Replicas []string
	// RPC carries the retry/timeout/backoff knobs for every call. The zero
	// value picks the proto.Client defaults (3 attempts, 50ms doubling
	// backoff, 10s per-attempt timeout).
	RPC proto.Client
}

// Client shards optimize/feedback traffic across a neo-serve replica fleet.
// One query structure always lands on the same replica — the property that
// partitions the fleet's plan caches — and a replica that fails retryably is
// failed over in consistent-hash ring order. Safe for concurrent use.
type Client struct {
	ring *ring.Ring
	rpc  proto.Client
}

// NewClient creates a fleet client.
func NewClient(cfg ClientConfig) (*Client, error) {
	rg, err := ring.New(cfg.Replicas, 0)
	if err != nil {
		return nil, fmt.Errorf("neo: building replica ring: %w", err)
	}
	return &Client{ring: rg, rpc: cfg.RPC}, nil
}

// Replicas returns the fleet's base URLs.
func (c *Client) Replicas() []string { return c.ring.Nodes() }

// Route returns the replica that owns spec's routing key — the one Optimize
// and Feedback talk to first.
func (c *Client) Route(spec *QuerySpec) string {
	return c.ring.Lookup(proto.SpecKey(spec))
}

// Optimize asks the owning replica for a plan, failing over in ring order
// when a replica is down. Echo the response's NetVersion in the matching
// Feedback call so a latency is never attached to a plan from a different
// snapshot.
func (c *Client) Optimize(ctx context.Context, spec *QuerySpec) (*OptimizeResponse, error) {
	var out OptimizeResponse
	if err := c.post(ctx, spec, "/optimize", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Feedback reports the observed latency of spec's plan to the replica that
// served it (same routing key, same replica). netVersion is the version
// Optimize returned; pass zero for best-effort attachment.
func (c *Client) Feedback(ctx context.Context, spec *QuerySpec, latencyMS float64, netVersion uint64) (*FeedbackResponse, error) {
	req := proto.FeedbackRequest{Query: *spec, LatencyMS: latencyMS, NetVersion: netVersion}
	var out FeedbackResponse
	if err := c.post(ctx, spec, "/feedback", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches every replica's /stats. Unreachable replicas are omitted;
// an empty map with a nil error means the whole fleet is down.
func (c *Client) Stats(ctx context.Context) map[string]*ReplicaStats {
	out := make(map[string]*ReplicaStats)
	for _, node := range c.ring.Nodes() {
		var st ReplicaStats
		if err := c.rpc.GetJSON(ctx, node+"/stats", &st); err == nil {
			out[node] = &st
		}
	}
	return out
}

// post sends body to path on spec's owning replica, failing over along the
// ring on retryable errors. Non-retryable errors (4xx — bad spec, stale
// feedback) surface immediately: every replica would answer the same.
func (c *Client) post(ctx context.Context, spec *QuerySpec, path string, body, out any) error {
	var lastErr error
	for _, node := range c.ring.Sequence(proto.SpecKey(spec)) {
		err := c.rpc.PostJSON(ctx, node+path, body, out)
		if err == nil || !proto.Retryable(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("neo: no replica reachable: %w", lastErr)
}
