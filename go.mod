module neo

go 1.22
