package feature

import (
	"math"
	"strings"
	"testing"

	"neo/internal/datagen"
	"neo/internal/embedding"
	"neo/internal/executor"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/stats"
	"neo/internal/storage"
	"neo/internal/treeconv"
)

func setup(t testing.TB) (*storage.Database, *stats.Stats) {
	t.Helper()
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, st
}

func loveQuery() *query.Query {
	return query.New("love",
		[]string{"title", "movie_keyword", "keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
			{Table: "title", Column: "production_year", Op: query.Gt, Value: storage.IntValue(2000)},
		})
}

func TestQueryVectorSizesPerEncoding(t *testing.T) {
	db, st := setup(t)
	nRel := db.Catalog.NumRelations()
	nAttr := db.Catalog.NumAttributes()
	joinTri := nRel * (nRel - 1) / 2

	oneHot := &Featurizer{Catalog: db.Catalog, Encoding: OneHot}
	if got := oneHot.QueryVectorSize(); got != joinTri+nAttr {
		t.Errorf("1-hot size = %d, want %d", got, joinTri+nAttr)
	}
	hist := &Featurizer{Catalog: db.Catalog, Encoding: Histogram, Stats: st}
	if got := hist.QueryVectorSize(); got != joinTri+nAttr {
		t.Errorf("histogram size = %d, want %d", got, joinTri+nAttr)
	}
	model := embedding.Train([][]string{{"a", "b"}}, embedding.Config{Dim: 8, Epochs: 1, NegativeSamples: 1, LearningRate: 0.05, MinCount: 1, Seed: 1})
	rv := &Featurizer{Catalog: db.Catalog, Encoding: RVector, Embedding: model}
	wantBlock := 7 + 1 + 8 + 1
	if got := rv.QueryVectorSize(); got != joinTri+nAttr*wantBlock {
		t.Errorf("r-vector size = %d, want %d", got, joinTri+nAttr*wantBlock)
	}
	// Encoded vectors match the declared sizes.
	for _, f := range []*Featurizer{oneHot, hist, rv} {
		enc := f.EncodeQuery(loveQuery())
		if len(enc) != f.QueryVectorSize() {
			t.Errorf("%s: encoded length %d != declared %d", f, len(enc), f.QueryVectorSize())
		}
	}
}

func TestJoinGraphUpperTriangle(t *testing.T) {
	db, _ := setup(t)
	f := &Featurizer{Catalog: db.Catalog, Encoding: OneHot}
	q := loveQuery()
	enc := f.EncodeQuery(q)
	nRel := db.Catalog.NumRelations()
	joinTri := nRel * (nRel - 1) / 2
	ones := 0
	for _, v := range enc[:joinTri] {
		if v == 1 {
			ones++
		}
	}
	if ones != 2 {
		t.Errorf("join-graph encoding has %d edges, want 2", ones)
	}
	// A query with no joins has an all-zero join-graph section.
	single := query.New("s", []string{"title"}, nil, nil)
	enc2 := f.EncodeQuery(single)
	for i, v := range enc2[:joinTri] {
		if v != 0 {
			t.Errorf("join entry %d should be 0 for a single-table query", i)
		}
	}
}

func TestOneHotPredicateMarks(t *testing.T) {
	db, _ := setup(t)
	f := &Featurizer{Catalog: db.Catalog, Encoding: OneHot}
	q := loveQuery()
	enc := f.EncodeQuery(q)
	joinTri := db.Catalog.NumRelations() * (db.Catalog.NumRelations() - 1) / 2
	predPart := enc[joinTri:]
	kwIdx := db.Catalog.AttributeIndex("keyword", "keyword")
	yearIdx := db.Catalog.AttributeIndex("title", "production_year")
	kindIdx := db.Catalog.AttributeIndex("title", "kind")
	if predPart[kwIdx] != 1 || predPart[yearIdx] != 1 {
		t.Errorf("predicated attributes should be 1")
	}
	if predPart[kindIdx] != 0 {
		t.Errorf("non-predicated attribute should be 0")
	}
}

func TestHistogramEncodingUsesSelectivity(t *testing.T) {
	db, st := setup(t)
	f := &Featurizer{Catalog: db.Catalog, Encoding: Histogram, Stats: st}
	q := loveQuery()
	enc := f.EncodeQuery(q)
	joinTri := db.Catalog.NumRelations() * (db.Catalog.NumRelations() - 1) / 2
	kwIdx := db.Catalog.AttributeIndex("keyword", "keyword")
	sel := enc[joinTri+kwIdx]
	if sel <= 0 || sel >= 1 {
		t.Errorf("histogram entry should be a selectivity in (0,1), got %f", sel)
	}
	want := st.Selectivity(q.Predicates[0])
	if math.Abs(sel-want) > 1e-9 {
		t.Errorf("selectivity %f != stats %f", sel, want)
	}
}

func TestRVectorEncodingCarriesEmbedding(t *testing.T) {
	db, _ := setup(t)
	sentences := embedding.DenormalizedSentences(db, 20)
	model := embedding.Train(sentences, embedding.Config{Dim: 8, Epochs: 2, NegativeSamples: 2, LearningRate: 0.05, MinCount: 1, Seed: 2})
	f := &Featurizer{Catalog: db.Catalog, Encoding: RVector, Embedding: model}
	q := loveQuery()
	enc := f.EncodeQuery(q)
	joinTri := db.Catalog.NumRelations() * (db.Catalog.NumRelations() - 1) / 2
	block := 7 + 1 + 8 + 1
	kwIdx := db.Catalog.AttributeIndex("keyword", "keyword")
	kwBlock := enc[joinTri+kwIdx*block : joinTri+(kwIdx+1)*block]
	// The equality-operator slot is set.
	if kwBlock[int(query.Eq)] != 1 {
		t.Errorf("Eq operator slot should be 1: %v", kwBlock)
	}
	// The matched-word count is positive (the token exists in the corpus).
	if kwBlock[7] <= 0 {
		t.Errorf("matched-word count should be positive: %v", kwBlock)
	}
	// The embedding portion is not all zeros.
	nonzero := false
	for _, v := range kwBlock[8 : 8+8] {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Errorf("embedding portion should be non-zero: %v", kwBlock)
	}
	// An attribute without a predicate has an all-zero block.
	kindIdx := db.Catalog.AttributeIndex("title", "kind")
	kindBlock := enc[joinTri+kindIdx*block : joinTri+(kindIdx+1)*block]
	for _, v := range kindBlock {
		if v != 0 {
			t.Errorf("unpredicated block should be zero: %v", kindBlock)
		}
	}
}

func TestRVectorLikePredicateUsesMatchMean(t *testing.T) {
	db, _ := setup(t)
	model := embedding.Train(embedding.Sentences(db), embedding.Config{Dim: 8, Epochs: 1, NegativeSamples: 2, LearningRate: 0.05, MinCount: 1, Seed: 3})
	f := &Featurizer{Catalog: db.Catalog, Encoding: RVector, Embedding: model}
	q := query.New("like", []string{"movie_info"}, nil, []query.Predicate{
		{Table: "movie_info", Column: "info", Op: query.Like, Value: storage.StringValue("roman")},
	})
	enc := f.EncodeQuery(q)
	joinTri := db.Catalog.NumRelations() * (db.Catalog.NumRelations() - 1) / 2
	block := 7 + 1 + 8 + 1
	idx := db.Catalog.AttributeIndex("movie_info", "info")
	b := enc[joinTri+idx*block : joinTri+(idx+1)*block]
	if b[int(query.Like)] != 1 {
		t.Errorf("Like operator slot should be set")
	}
	if b[7] <= 0 {
		t.Errorf("pattern should match at least one token (romance)")
	}
}

func TestPlanEncodingStructure(t *testing.T) {
	db, _ := setup(t)
	f := &Featurizer{Catalog: db.Catalog, Encoding: OneHot}
	q := loveQuery()
	p := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.LoopJoin,
			plan.Join2(plan.MergeJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.TableScan)),
			plan.Leaf("keyword", plan.IndexScan)),
	}}
	trees := f.EncodePlan(p)
	if len(trees) != 1 {
		t.Fatalf("expected one tree, got %d", len(trees))
	}
	root := trees[0]
	if root.NumNodes() != 5 {
		t.Errorf("encoded tree has %d nodes, want 5", root.NumNodes())
	}
	size := f.PlanVectorSize()
	root.Walk(func(n *treeconv.Tree) {
		if len(n.Data) != size {
			t.Errorf("node vector length %d, want %d", len(n.Data), size)
		}
	})
}

func TestPlanEncodingVectors(t *testing.T) {
	db, _ := setup(t)
	f := &Featurizer{Catalog: db.Catalog, Encoding: OneHot}
	q := loveQuery()
	mk := plan.Leaf("movie_keyword", plan.TableScan)
	ti := plan.Leaf("title", plan.IndexScan)
	un := plan.Leaf("keyword", plan.UnspecifiedScan)
	join := plan.Join2(plan.MergeJoin, mk, ti)
	p := &plan.Plan{Query: q, Roots: []*plan.Node{join, un}}
	trees := f.EncodePlan(p)
	if len(trees) != 2 {
		t.Fatalf("expected a two-root forest, got %d trees", len(trees))
	}
	size := f.PlanVectorSize()
	wantSize := plan.NumJoinOps + 2*db.Catalog.NumRelations()
	if size != wantSize {
		t.Errorf("PlanVectorSize = %d, want %d", size, wantSize)
	}

	joinVec := trees[0].Data
	if len(joinVec) != size {
		t.Fatalf("join vector length %d, want %d", len(joinVec), size)
	}
	if joinVec[int(plan.MergeJoin)] != 1 || joinVec[int(plan.HashJoin)] != 0 {
		t.Errorf("join operator one-hot wrong: %v", joinVec[:plan.NumJoinOps])
	}
	mkBase := plan.NumJoinOps + 2*db.Catalog.TableIndex("movie_keyword")
	tiBase := plan.NumJoinOps + 2*db.Catalog.TableIndex("title")
	if joinVec[mkBase] != 1 || joinVec[mkBase+1] != 0 {
		t.Errorf("movie_keyword should be marked as table scan in the union")
	}
	if joinVec[tiBase] != 0 || joinVec[tiBase+1] != 1 {
		t.Errorf("title should be marked as index scan in the union")
	}

	// The unspecified scan sets both slots (as in the paper: U(B) -> 1 in
	// both table and index columns).
	unVec := trees[1].Data
	kwBase := plan.NumJoinOps + 2*db.Catalog.TableIndex("keyword")
	if unVec[kwBase] != 1 || unVec[kwBase+1] != 1 {
		t.Errorf("unspecified scan should set both slots: %v", unVec)
	}
	// Leaf vectors have no join-operator bits.
	for i := 0; i < plan.NumJoinOps; i++ {
		if trees[1].Data[i] != 0 {
			t.Errorf("leaf vector should not set join bits")
		}
	}
}

func TestCardinalityFeature(t *testing.T) {
	db, st := setup(t)
	exec := executor.New(db)
	q := loveQuery()
	leaf := plan.Leaf("keyword", plan.TableScan)
	node := plan.Join2(plan.HashJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.TableScan))

	hist := &HistogramCardinality{Stats: st}
	if hist.NodeCardinality(q, leaf) <= 0 {
		t.Errorf("histogram leaf cardinality should be positive")
	}
	if hist.NodeCardinality(q, node) <= 0 {
		t.Errorf("histogram join cardinality should be positive")
	}

	truth := &TrueCardinality{Counter: exec}
	tc := truth.NodeCardinality(q, node)
	if tc <= 0 {
		t.Errorf("true join cardinality should be positive")
	}
	// Second call hits the cache and returns the same value.
	if truth.NodeCardinality(q, node) != tc {
		t.Errorf("cache should return identical values")
	}

	// A featurizer with a cardinality source appends two extra slots
	// (log cardinality and log work estimate).
	f := &Featurizer{Catalog: db.Catalog, Encoding: OneHot, Cardinality: hist, Stats: st}
	if f.PlanVectorSize() != plan.NumJoinOps+2*db.Catalog.NumRelations()+2 {
		t.Errorf("PlanVectorSize should include the two derived slots")
	}
	p := &plan.Plan{Query: q, Roots: []*plan.Node{node}}
	tree := f.EncodePlan(p)[0]
	if tree.Data[len(tree.Data)-2] <= 0 {
		t.Errorf("cardinality slot should be positive, got %f", tree.Data[len(tree.Data)-2])
	}
	if tree.Data[len(tree.Data)-1] < tree.Data[len(tree.Data)-2] {
		t.Errorf("work estimate should be at least the output cardinality")
	}
	// A loop join implies more work than a hash join over the same inputs.
	loopNode := plan.Join2(plan.LoopJoin, plan.Leaf("movie_keyword", plan.TableScan), plan.Leaf("title", plan.TableScan))
	loopTree := f.EncodePlan(&plan.Plan{Query: q, Roots: []*plan.Node{loopNode}})[0]
	if loopTree.Data[len(loopTree.Data)-1] <= tree.Data[len(tree.Data)-1] {
		t.Errorf("loop-join work estimate should exceed hash-join work estimate")
	}

	// With an error model, the feature still encodes but may differ.
	f2 := &Featurizer{Catalog: db.Catalog, Encoding: OneHot, Cardinality: hist, Error: stats.NewErrorModel(2, 3)}
	tree2 := f2.EncodePlan(p)[0]
	if tree2.Data[len(tree2.Data)-1] <= 0 {
		t.Errorf("perturbed cardinality slot should still be positive")
	}
}

func TestCrossProductCardinality(t *testing.T) {
	_, st := setup(t)
	h := &HistogramCardinality{Stats: st}
	q := query.New("cross", []string{"keyword", "info_type"}, nil, nil)
	node := plan.Join2(plan.HashJoin, plan.Leaf("keyword", plan.TableScan), plan.Leaf("info_type", plan.TableScan))
	got := h.NodeCardinality(q, node)
	want := st.TableRows("keyword") * st.TableRows("info_type")
	if math.Abs(got-want) > 1 {
		t.Errorf("cross product estimate = %f, want %f", got, want)
	}
}

func TestSubQueryRestriction(t *testing.T) {
	q := loveQuery()
	sub := subQuery(q, []string{"movie_keyword", "title"})
	if len(sub.Relations) != 2 {
		t.Errorf("sub-query relations = %v", sub.Relations)
	}
	if len(sub.Joins) != 1 {
		t.Errorf("sub-query should keep only the movie_keyword-title join, got %v", sub.Joins)
	}
	if len(sub.Predicates) != 1 || sub.Predicates[0].Table != "title" {
		t.Errorf("sub-query should keep only the title predicate, got %v", sub.Predicates)
	}
}

func TestAllEncodingsListed(t *testing.T) {
	encs := AllEncodings()
	if len(encs) != 4 {
		t.Fatalf("expected 4 encodings, got %d", len(encs))
	}
	if encs[0] != RVector || encs[3] != OneHot {
		t.Errorf("encoding order should match Figure 12: %v", encs)
	}
}

func TestFeaturizerString(t *testing.T) {
	db, _ := setup(t)
	f := &Featurizer{Catalog: db.Catalog, Encoding: OneHot}
	if !strings.Contains(f.String(), "1-hot") {
		t.Errorf("String() = %q", f.String())
	}
}
