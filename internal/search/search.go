// Package search implements Neo's DNN-guided plan search (Section 4.2 of the
// paper): a best-first search over the space of partial execution plans,
// ordered by the value network's cost predictions, with an anytime budget and
// a greedy "hurry-up" fallback when the budget expires before a complete
// plan has been found.
package search

import (
	"container/heap"
	"fmt"
	"time"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/schema"
)

// BatchScorer predicts the best-possible cost reachable from each of a slice
// of (partial) plans in one call. It is the primary scoring contract of the
// search: all children of an expanded node are scored together, so an
// implementation backed by a neural network (Neo's value network) can
// amortise one forward pass across the whole expansion instead of paying a
// full per-sample pass per child. ScoreBatch returns one score per plan, in
// order.
type BatchScorer interface {
	ScoreBatch(ps []*plan.Plan) []float64
}

// Scorer is the per-plan scoring interface, kept for implementations (and
// tests) for which batching is meaningless. Wrap one with Batched to use it
// with the search.
type Scorer interface {
	Score(p *plan.Plan) float64
}

// ScorerFunc adapts a function to both Scorer and BatchScorer, scoring batch
// members one at a time.
type ScorerFunc func(p *plan.Plan) float64

// Score implements Scorer.
func (f ScorerFunc) Score(p *plan.Plan) float64 { return f(p) }

// ScoreBatch implements BatchScorer sequentially.
func (f ScorerFunc) ScoreBatch(ps []*plan.Plan) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = f(p)
	}
	return out
}

// scoreBatch invokes the scorer and enforces the one-score-per-plan
// contract, turning a misbehaving BatchScorer implementation into a
// diagnosable failure instead of an opaque index panic deep in the search.
func scoreBatch(s BatchScorer, ps []*plan.Plan) []float64 {
	scores := s.ScoreBatch(ps)
	if len(scores) != len(ps) {
		panic(fmt.Sprintf("search: BatchScorer returned %d scores for %d plans", len(scores), len(ps)))
	}
	return scores
}

// Batched adapts a Scorer to the BatchScorer contract. If s already
// implements BatchScorer its native batching is used; otherwise batch
// members are scored one at a time.
func Batched(s Scorer) BatchScorer {
	if bs, ok := s.(BatchScorer); ok {
		return bs
	}
	return ScorerFunc(s.Score)
}

// Options configures a search.
type Options struct {
	// Catalog restricts index-scan children to relations with usable
	// indexes.
	Catalog *schema.Catalog
	// MaxExpansions bounds the number of nodes popped from the frontier; it
	// is the machine-independent analogue of the paper's wall-clock cutoff
	// (250 ms ≈ a few hundred expansions for the network sizes used here).
	MaxExpansions int
	// TimeBudget optionally bounds wall-clock search time; zero means no
	// wall-clock limit.
	TimeBudget time.Duration
	// AllowCrossProducts permits joining disconnected subtrees.
	AllowCrossProducts bool
}

// DefaultOptions returns the options used by the experiments.
func DefaultOptions(cat *schema.Catalog) Options {
	return Options{Catalog: cat, MaxExpansions: 512}
}

// Result reports the outcome of a search.
type Result struct {
	// Plan is the best complete plan found.
	Plan *plan.Plan
	// Score is the scorer's estimate for that plan.
	Score float64
	// Expansions is the number of plan states whose children were generated:
	// incomplete frontier nodes popped by the best-first loop, plus greedy
	// descent steps taken when hurry-up mode (or Greedy) builds the plan —
	// so search effort is reported faithfully even when the budget expires.
	// Popping an already-complete plan generates no children and is not
	// counted (downstream consumers — /stats, the query router's regret
	// accounting — read this as real search effort).
	Expansions int
	// Evaluations is the number of plans scored (summed over ScoreBatch
	// calls).
	Evaluations int
	// HurryUp reports whether the greedy fallback produced the plan.
	HurryUp bool
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// frontierItem is one entry of the priority queue.
type frontierItem struct {
	plan  *plan.Plan
	score float64
	index int
}

type frontier []*frontierItem

func (f frontier) Len() int            { return len(f) }
func (f frontier) Less(i, j int) bool  { return f[i].score < f[j].score }
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i]; f[i].index = i; f[j].index = j }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(*frontierItem)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*f = old[:n-1]
	return item
}

// BestFirst runs the DNN-guided best-first search of Section 4.2 and returns
// the best complete plan found within the budget. The search is anytime:
// when the budget expires it returns the best complete plan seen so far, or
// — if none has been completed yet — enters "hurry-up" mode and greedily
// descends from the most promising frontier node.
func BestFirst(q *query.Query, scorer BatchScorer, opts Options) (*Result, error) {
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("search: query %s has no relations", q.ID)
	}
	if opts.MaxExpansions <= 0 {
		opts.MaxExpansions = 512
	}
	start := time.Now()
	childOpts := plan.ChildrenOptions{Catalog: opts.Catalog, AllowCrossProducts: opts.AllowCrossProducts}

	res := &Result{}
	initial := plan.Initial(q)
	f := &frontier{}
	heap.Init(f)
	res.Evaluations++
	heap.Push(f, &frontierItem{plan: initial, score: scoreBatch(scorer, []*plan.Plan{initial})[0]})
	seen := map[string]bool{initial.Signature(): true}

	var bestComplete *plan.Plan
	bestScore := 0.0
	var lastExpanded *plan.Plan = initial

	// The expansion budget counts frontier pops (as documented on
	// Options.MaxExpansions — the machine-independent analogue of the
	// paper's wall-clock cutoff), while Result.Expansions reports only pops
	// that actually generated children: popping an already-complete plan is
	// budgeted work, but it is not search effort.
	popped := 0
	budgetExceeded := func() bool {
		if popped >= opts.MaxExpansions {
			return true
		}
		if opts.TimeBudget > 0 && time.Since(start) > opts.TimeBudget {
			return true
		}
		return false
	}

	var batch []*plan.Plan // reused across expansions
	// The loop condition re-evaluates the deadline immediately after each
	// batched scoring call (the last work of an iteration), so one large
	// batch — or, under fused scheduling, a submission that also waited on
	// the scheduler's linger — overshoots the anytime budget by at most that
	// single call, never by another expansion.
	for f.Len() > 0 && !budgetExceeded() {
		item := heap.Pop(f).(*frontierItem)
		popped++
		if item.plan.IsComplete() {
			if bestComplete == nil || item.score < bestScore {
				bestComplete = item.plan
				bestScore = item.score
			}
			// The frontier is ordered by predicted cost, so the first
			// complete plan popped is the search's best guess; continuing
			// (anytime behaviour) can still improve it within the budget.
			// Popping it generates no children, so it does not count as an
			// expansion.
			continue
		}
		res.Expansions++
		lastExpanded = item.plan
		// Score every not-yet-seen child of this expansion in a single
		// batched call (the paper evaluates the value network on all children
		// of a node at once to amortise inference latency).
		batch = batch[:0]
		for _, child := range item.plan.Children(childOpts) {
			sig := child.Signature()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			batch = append(batch, child)
		}
		if len(batch) == 0 {
			continue
		}
		scores := scoreBatch(scorer, batch)
		res.Evaluations += len(batch)
		for i, child := range batch {
			score := scores[i]
			if child.IsComplete() && (bestComplete == nil || score < bestScore) {
				bestComplete = child
				bestScore = score
			}
			heap.Push(f, &frontierItem{plan: child, score: score})
		}
	}

	if bestComplete == nil {
		// Hurry-up mode: greedily descend from the most promising frontier
		// node — the node the loop would have expanded next had the budget
		// allowed — rather than only from the last node it happened to pop.
		// Descending from the stale pop can silently discard a strictly
		// cheaper frontier, but the frontier top alone is not reliably better
		// (its optimistic score often favours shallow states), so both
		// descents run and the better-scored complete plan wins. The
		// descents' steps count as expansions so the budget's expiry does
		// not erase the effort actually spent.
		res.HurryUp = true
		hp, score, evals, steps := greedyDescend(lastExpanded, scorer, childOpts)
		res.Evaluations += evals
		res.Expansions += steps
		// The first descent is mandatory — without it there is no plan at all
		// — but the second is an opportunistic improvement, so it is skipped
		// when the wall-clock deadline has already passed: a wide query would
		// otherwise overshoot the anytime budget by a second full descent.
		deadlinePassed := opts.TimeBudget > 0 && time.Since(start) > opts.TimeBudget
		if !deadlinePassed && f.Len() > 0 && (*f)[0].plan != lastExpanded {
			fp, fscore, fevals, fsteps := greedyDescend((*f)[0].plan, scorer, childOpts)
			res.Evaluations += fevals
			res.Expansions += fsteps
			if fp != nil && fp.IsComplete() && (hp == nil || !hp.IsComplete() || fscore < score) {
				hp, score = fp, fscore
			}
		}
		bestComplete = hp
		bestScore = score
	}
	if bestComplete == nil || !bestComplete.IsComplete() {
		return nil, fmt.Errorf("search: no complete plan found for query %s", q.ID)
	}
	res.Plan = bestComplete
	res.Score = bestScore
	res.Elapsed = time.Since(start)
	return res, nil
}

// Greedy builds a plan by always taking the child with the best predicted
// cost, without maintaining a frontier. This is the paper's "hurry-up" mode
// applied from the start, and is equivalent to the greedy action selection
// of Q-learning-style approaches (DQ); the ablation benchmarks compare it
// against the full best-first search.
func Greedy(q *query.Query, scorer BatchScorer, opts Options) (*Result, error) {
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("search: query %s has no relations", q.ID)
	}
	start := time.Now()
	childOpts := plan.ChildrenOptions{Catalog: opts.Catalog, AllowCrossProducts: opts.AllowCrossProducts}
	p, score, evals, steps := greedyDescend(plan.Initial(q), scorer, childOpts)
	if p == nil || !p.IsComplete() {
		return nil, fmt.Errorf("search: greedy descent failed for query %s", q.ID)
	}
	return &Result{Plan: p, Score: score, Expansions: steps, Evaluations: evals, HurryUp: true, Elapsed: time.Since(start)}, nil
}

// greedyDescend repeatedly takes the lowest-scoring child until reaching a
// complete plan, scoring each level's children in one batched call, and
// reports the number of descent steps taken (each step expands one plan
// state, so callers fold it into Result.Expansions). A starting plan that is
// already complete (e.g. single-relation queries in hurry-up mode) takes no
// descent step, so it is scored directly to keep the returned score
// meaningful; otherwise the first step's scores overwrite it and the
// up-front evaluation is skipped.
func greedyDescend(p *plan.Plan, scorer BatchScorer, opts plan.ChildrenOptions) (*plan.Plan, float64, int, int) {
	cur := p
	curScore := 0.0
	evals := 0
	steps := 0
	if p.IsComplete() {
		curScore = scoreBatch(scorer, []*plan.Plan{p})[0]
		evals = 1
	}
	for !cur.IsComplete() {
		kids := cur.Children(opts)
		if len(kids) == 0 && !opts.AllowCrossProducts {
			// Dead end: no connected join exists at this level. Retry this
			// one level with cross products allowed, without flipping the
			// option for the rest of the descent — later levels must keep
			// preferring connected joins and pay the cross-product penalty
			// only where they are genuinely stuck.
			xOpts := opts
			xOpts.AllowCrossProducts = true
			kids = cur.Children(xOpts)
		}
		if len(kids) == 0 {
			return nil, 0, evals, steps
		}
		scores := scoreBatch(scorer, kids)
		evals += len(kids)
		steps++
		best, bestScore := kids[0], scores[0]
		for i, k := range kids[1:] {
			if scores[i+1] < bestScore {
				best, bestScore = k, scores[i+1]
			}
		}
		cur, curScore = best, bestScore
	}
	return cur, curScore, evals, steps
}
