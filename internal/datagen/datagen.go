// Package datagen generates the synthetic databases the experiments run
// against. Three profiles mirror the paper's three workloads:
//
//   - IMDB: a movie database in the style of the Join Order Benchmark's IMDB
//     schema, with deliberately strong cross-table correlations (genre ↔
//     keyword, company country ↔ actor country) that violate the uniformity
//     and independence assumptions of histogram-based estimators.
//   - TPCH: a uniform, independent star schema in the style of TPC-H, where
//     classical estimators are accurate and learned embeddings add little.
//   - Corp: a skewed snowflake schema standing in for the paper's
//     proprietary 2 TB dashboard workload.
//
// All generation is deterministic for a given Config (scale + seed).
package datagen

import (
	"fmt"
	"math/rand"

	"neo/internal/schema"
	"neo/internal/storage"
)

// Profile selects which synthetic database to generate.
type Profile string

const (
	// IMDB is the correlated movie-database profile (JOB-like).
	IMDB Profile = "imdb"
	// TPCH is the uniform decision-support profile (TPC-H-like).
	TPCH Profile = "tpch"
	// Corp is the skewed dashboard profile (Corp-like).
	Corp Profile = "corp"
)

// Config controls the size and randomness of a generated database.
type Config struct {
	// Scale multiplies every table's base row count. 1.0 generates a
	// database small enough for the full experiment suite to run in seconds.
	Scale float64
	// Seed seeds the deterministic random generator.
	Seed int64
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42} }

func (c Config) scaled(base int) int {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	n := int(float64(base) * c.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds the database for the given profile.
func Generate(p Profile, cfg Config) (*storage.Database, error) {
	switch p {
	case IMDB:
		return GenerateIMDB(cfg)
	case TPCH:
		return GenerateTPCH(cfg)
	case Corp:
		return GenerateCorp(cfg)
	default:
		return nil, fmt.Errorf("datagen: unknown profile %q", p)
	}
}

// Genres are the latent movie genres used by the IMDB profile. They drive
// the keyword correlation that Table 2 of the paper measures.
var Genres = []string{"romance", "action", "horror", "comedy", "drama", "sci-fi"}

// Keywords are the keyword strings used by the IMDB profile. The first few
// are strongly correlated with specific genres.
var Keywords = []string{
	"love", "fight", "ghost", "laugh", "family", "space",
	"war", "murder", "wedding", "robot", "school", "detective",
	"dragon", "vampire", "hero", "island", "secret", "revenge",
	"journey", "friendship", "betrayal", "treasure", "prison", "storm",
}

// genreKeywordAffinity[g][k] is the relative probability that a movie of
// genre g receives keyword k. Rows need not be normalised.
var genreKeywordAffinity = map[string]map[string]float64{
	"romance": {"love": 8, "wedding": 5, "friendship": 3, "betrayal": 2, "family": 2},
	"action":  {"fight": 8, "war": 5, "hero": 4, "revenge": 3, "prison": 2},
	"horror":  {"ghost": 8, "vampire": 5, "murder": 4, "secret": 2, "storm": 2},
	"comedy":  {"laugh": 8, "school": 4, "wedding": 3, "family": 3, "friendship": 2},
	"drama":   {"family": 6, "betrayal": 4, "secret": 3, "murder": 2, "love": 2},
	"sci-fi":  {"space": 8, "robot": 6, "journey": 3, "hero": 2, "storm": 1},
}

// Countries used for companies and people in the IMDB profile.
var Countries = []string{"us", "uk", "france", "japan", "india", "china", "germany", "brazil"}

// IMDBCatalog returns the catalog of the IMDB-like profile. It is exported
// so that workload generators and tests can reference the schema without
// generating data.
func IMDBCatalog() *schema.Catalog {
	tables := []*schema.Table{
		{Name: "title", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "kind", Type: schema.StringType, Distinct: 4},
			{Name: "production_year", Type: schema.IntType, Distinct: 60},
			{Name: "episode_count", Type: schema.IntType, Distinct: 50},
		}},
		{Name: "movie_info", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "movie_id", Type: schema.IntType},
			{Name: "info_type_id", Type: schema.IntType, Distinct: 6},
			{Name: "info", Type: schema.StringType},
		}},
		{Name: "info_type", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "info", Type: schema.StringType, Distinct: 6},
		}},
		{Name: "movie_keyword", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "movie_id", Type: schema.IntType},
			{Name: "keyword_id", Type: schema.IntType},
		}},
		{Name: "keyword", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "keyword", Type: schema.StringType},
		}},
		{Name: "cast_info", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "movie_id", Type: schema.IntType},
			{Name: "person_id", Type: schema.IntType},
			{Name: "role", Type: schema.StringType, Distinct: 4},
		}},
		{Name: "name", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "name", Type: schema.StringType},
			{Name: "country", Type: schema.StringType, Distinct: len(Countries)},
			{Name: "birth_year", Type: schema.IntType, Distinct: 70},
		}},
		{Name: "movie_companies", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "movie_id", Type: schema.IntType},
			{Name: "company_id", Type: schema.IntType},
		}},
		{Name: "company", PrimaryKey: "id", Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "name", Type: schema.StringType},
			{Name: "country", Type: schema.StringType, Distinct: len(Countries)},
		}},
	}
	fks := []schema.ForeignKey{
		{FromTable: "movie_info", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
		{FromTable: "movie_info", FromColumn: "info_type_id", ToTable: "info_type", ToColumn: "id"},
		{FromTable: "movie_keyword", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
		{FromTable: "movie_keyword", FromColumn: "keyword_id", ToTable: "keyword", ToColumn: "id"},
		{FromTable: "cast_info", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
		{FromTable: "cast_info", FromColumn: "person_id", ToTable: "name", ToColumn: "id"},
		{FromTable: "movie_companies", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
		{FromTable: "movie_companies", FromColumn: "company_id", ToTable: "company", ToColumn: "id"},
	}
	indexes := []schema.Index{
		{Table: "movie_info", Column: "movie_id"},
		{Table: "movie_keyword", Column: "movie_id"},
		{Table: "movie_keyword", Column: "keyword_id"},
		{Table: "cast_info", Column: "movie_id"},
		{Table: "cast_info", Column: "person_id"},
		{Table: "movie_companies", Column: "movie_id"},
		{Table: "title", Column: "production_year"},
	}
	return schema.MustNewCatalog(tables, fks, indexes)
}

// GenerateIMDB generates the correlated movie database.
func GenerateIMDB(cfg Config) (*storage.Database, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := IMDBCatalog()
	db := storage.NewDatabase(cat)

	nTitles := cfg.scaled(1500)
	nKeywords := len(Keywords)
	nPeople := cfg.scaled(800)
	nCompanies := cfg.scaled(100)

	kinds := []string{"movie", "movie", "movie", "tv", "video"}
	roles := []string{"actor", "actor", "actress", "director", "producer"}

	// info_type: id 1..6; id 3 is "genres" to mirror the paper's example query.
	infoTypes := []string{"runtime", "budget", "genres", "rating", "language", "country"}
	it := db.Table("info_type")
	for i, name := range infoTypes {
		if err := it.AppendRow(storage.IntValue(int64(i+1)), storage.StringValue(name)); err != nil {
			return nil, err
		}
	}

	kw := db.Table("keyword")
	for i, k := range Keywords {
		if err := kw.AppendRow(storage.IntValue(int64(i+1)), storage.StringValue(k)); err != nil {
			return nil, err
		}
	}
	_ = nKeywords

	// companies, with country distribution skewed towards "us".
	comp := db.Table("company")
	companyCountry := make([]string, nCompanies+1)
	for i := 1; i <= nCompanies; i++ {
		country := Countries[skewedIndex(rng, len(Countries), 1.6)]
		companyCountry[i] = country
		name := fmt.Sprintf("%s-studio-%d", country, i)
		if err := comp.AppendRow(storage.IntValue(int64(i)), storage.StringValue(name), storage.StringValue(country)); err != nil {
			return nil, err
		}
	}

	// people; country correlated with nothing yet, but cast assignment below
	// correlates person country with the movie's company country.
	nameTab := db.Table("name")
	personCountry := make([]string, nPeople+1)
	peopleByCountry := make(map[string][]int)
	for i := 1; i <= nPeople; i++ {
		country := Countries[skewedIndex(rng, len(Countries), 1.3)]
		personCountry[i] = country
		peopleByCountry[country] = append(peopleByCountry[country], i)
		pname := fmt.Sprintf("%s-person-%d", country, i)
		birth := int64(1930 + rng.Intn(70))
		if err := nameTab.AppendRow(storage.IntValue(int64(i)), storage.StringValue(pname), storage.StringValue(country), storage.IntValue(birth)); err != nil {
			return nil, err
		}
	}
	_ = personCountry

	title := db.Table("title")
	mi := db.Table("movie_info")
	mk := db.Table("movie_keyword")
	ci := db.Table("cast_info")
	mc := db.Table("movie_companies")

	miID, mkID, ciID, mcID := int64(1), int64(1), int64(1), int64(1)
	for i := 1; i <= nTitles; i++ {
		genre := Genres[skewedIndex(rng, len(Genres), 1.2)]
		kind := kinds[rng.Intn(len(kinds))]
		// Genre correlates with production year: sci-fi skews recent,
		// drama skews older. This gives histogram estimators something to
		// get wrong on conjunctive predicates.
		year := correlatedYear(rng, genre)
		episodes := int64(0)
		if kind == "tv" {
			episodes = int64(1 + rng.Intn(50))
		}
		if err := title.AppendRow(storage.IntValue(int64(i)), storage.StringValue(kind), storage.IntValue(year), storage.IntValue(episodes)); err != nil {
			return nil, err
		}

		// movie_info: always a genres row (info_type 3), plus rating and
		// language rows.
		if err := mi.AppendRow(storage.IntValue(miID), storage.IntValue(int64(i)), storage.IntValue(3), storage.StringValue(genre)); err != nil {
			return nil, err
		}
		miID++
		rating := fmt.Sprintf("%.1f", 4.0+rng.Float64()*6.0)
		if err := mi.AppendRow(storage.IntValue(miID), storage.IntValue(int64(i)), storage.IntValue(4), storage.StringValue(rating)); err != nil {
			return nil, err
		}
		miID++
		lang := []string{"english", "english", "french", "japanese", "hindi"}[rng.Intn(5)]
		if err := mi.AppendRow(storage.IntValue(miID), storage.IntValue(int64(i)), storage.IntValue(5), storage.StringValue(lang)); err != nil {
			return nil, err
		}
		miID++

		// movie_keyword: 1-4 keywords drawn from the genre-affinity mix.
		nKw := 1 + rng.Intn(4)
		for k := 0; k < nKw; k++ {
			kwID := pickKeyword(rng, genre)
			if err := mk.AppendRow(storage.IntValue(mkID), storage.IntValue(int64(i)), storage.IntValue(kwID)); err != nil {
				return nil, err
			}
			mkID++
		}

		// movie_companies: one or two companies; remember the first
		// company's country to correlate cast membership.
		nComp := 1 + rng.Intn(2)
		movieCountry := ""
		for k := 0; k < nComp; k++ {
			cid := 1 + rng.Intn(nCompanies)
			if k == 0 {
				movieCountry = companyCountry[cid]
			}
			if err := mc.AppendRow(storage.IntValue(mcID), storage.IntValue(int64(i)), storage.IntValue(int64(cid))); err != nil {
				return nil, err
			}
			mcID++
		}

		// cast_info: 3-6 people; with 70% probability a cast member comes
		// from the movie's production country (cross-table correlation).
		nCast := 3 + rng.Intn(4)
		for k := 0; k < nCast; k++ {
			var pid int
			if rng.Float64() < 0.7 && len(peopleByCountry[movieCountry]) > 0 {
				pool := peopleByCountry[movieCountry]
				pid = pool[rng.Intn(len(pool))]
			} else {
				pid = 1 + rng.Intn(nPeople)
			}
			role := roles[rng.Intn(len(roles))]
			if err := ci.AppendRow(storage.IntValue(ciID), storage.IntValue(int64(i)), storage.IntValue(int64(pid)), storage.StringValue(role)); err != nil {
				return nil, err
			}
			ciID++
		}
	}

	if err := db.BuildIndexes(); err != nil {
		return nil, err
	}
	return db, nil
}

// correlatedYear samples a production year whose distribution depends on the
// genre, creating a correlation between title.production_year and the genre
// recorded in movie_info.
func correlatedYear(rng *rand.Rand, genre string) int64 {
	base := 1960
	span := 60
	switch genre {
	case "sci-fi":
		base, span = 1990, 30
	case "drama":
		base, span = 1950, 40
	case "action":
		base, span = 1980, 40
	}
	return int64(base + rng.Intn(span))
}

// pickKeyword samples a keyword id (1-based) for a movie of the given genre
// using the affinity table, falling back to a uniform keyword 20% of the
// time so every keyword/genre combination has non-zero support.
func pickKeyword(rng *rand.Rand, genre string) int64 {
	aff := genreKeywordAffinity[genre]
	if aff == nil || rng.Float64() < 0.2 {
		return int64(1 + rng.Intn(len(Keywords)))
	}
	total := 0.0
	for _, w := range aff {
		total += w
	}
	r := rng.Float64() * total
	for _, k := range Keywords {
		w, ok := aff[k]
		if !ok {
			continue
		}
		if r < w {
			return int64(keywordID(k))
		}
		r -= w
	}
	return int64(1 + rng.Intn(len(Keywords)))
}

// keywordID returns the 1-based id of a keyword string.
func keywordID(k string) int {
	for i, s := range Keywords {
		if s == k {
			return i + 1
		}
	}
	return 1
}

// skewedIndex returns an index in [0,n) with probability proportional to
// 1/(i+1)^alpha, i.e. earlier indexes are more likely.
func skewedIndex(rng *rand.Rand, n int, alpha float64) int {
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		w := 1.0
		for a := alpha; a >= 1; a-- {
			w /= float64(i + 1)
		}
		weights[i] = w
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if r < w {
			return i
		}
		r -= w
	}
	return n - 1
}
