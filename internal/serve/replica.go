// Replica mode: the serving half of the distributed tier. A replica scores
// from a read-only snapshot pulled from a neo-trainer, never trains, and
// forwards the experience its /feedback endpoint collects to the trainer in
// batched NEOCKPT1 containers. Every RPC to the trainer goes through the
// retrying proto.Client, and all failure paths degrade to frozen-snapshot
// serving: a dead trainer costs forwarding (queued, then oldest-dropped),
// never a failed client request.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"neo/internal/checkpoint"
	"neo/internal/cluster/proto"
	"neo/internal/core"
)

// Replica-mode defaults; see ReplicaConfig.
const (
	defaultFlushEvery = 250 * time.Millisecond
	defaultFlushBatch = 64
	defaultMaxQueue   = 4096
	// drainTimeout bounds the shutdown drain: a replica closing while its
	// trainer is down must not hang forever holding its queued experience.
	drainTimeout = 5 * time.Second
)

// ReplicaConfig switches the daemon into replica mode (Config.Replica).
type ReplicaConfig struct {
	// TrainerURL is the trainer's base URL, e.g. "http://trainer:7790".
	TrainerURL string
	// FlushEvery is the forwarder's flush interval (default 250ms). Each
	// flush ships queued experience to the trainer in FlushBatch-sized
	// containers.
	FlushEvery time.Duration
	// FlushBatch caps the entries per POST /experience container (default
	// 64).
	FlushBatch int
	// MaxQueue bounds the forwarding queue (default 4096). When the trainer
	// is down long enough to fill it, the oldest entries are dropped — the
	// replica keeps serving; the drops surface in /stats.
	MaxQueue int
	// Client carries the retry/timeout/backoff knobs for every trainer RPC.
	// The zero value picks the proto.Client defaults (3 attempts, 50ms
	// doubling backoff, 10s per-attempt timeout).
	Client proto.Client
}

func (c *ReplicaConfig) flushEvery() time.Duration {
	if c.FlushEvery > 0 {
		return c.FlushEvery
	}
	return defaultFlushEvery
}

func (c *ReplicaConfig) flushBatch() int {
	if c.FlushBatch > 0 {
		return c.FlushBatch
	}
	return defaultFlushBatch
}

func (c *ReplicaConfig) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return defaultMaxQueue
}

// replicaState is the Server's replica-mode side car: the forwarding queue,
// the trainer client, and the plan-quality window the rollout coordinator
// reads during a canary.
type replicaState struct {
	cfg    ReplicaConfig
	client *proto.Client

	forwarded     atomic.Uint64
	forwardErrors atomic.Uint64
	dropped       atomic.Uint64

	mu      sync.Mutex
	queue   []core.Entry
	sealed  bool // set by drain: later feedback forwards synchronously
	lastErr string

	// Plan-quality window: observed feedback latencies since the last
	// snapshot load. Loading a snapshot archives the running window into the
	// prev fields, so a canary's quality (new weights) is compared against
	// the same replica's quality under the old weights.
	windowCount uint64
	windowSum   float64
	prevCount   uint64
	prevSum     float64
}

func newReplicaState(cfg ReplicaConfig) *replicaState {
	client := cfg.Client
	return &replicaState{cfg: cfg, client: &client}
}

// enqueue appends an entry to the forwarding queue, dropping the oldest
// entry when the queue is at its bound. It reports the queue depth after the
// append and whether the queue accepted the entry (false once the shutdown
// drain has sealed it).
func (rs *replicaState) enqueue(e core.Entry) (depth int, queued bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.sealed {
		return 0, false
	}
	if max := rs.cfg.maxQueue(); len(rs.queue) >= max {
		over := len(rs.queue) - max + 1
		rs.queue = rs.queue[over:]
		rs.dropped.Add(uint64(over))
	}
	rs.queue = append(rs.queue, e)
	return len(rs.queue), true
}

// takeBatch pops up to flushBatch entries from the queue head.
func (rs *replicaState) takeBatch() []core.Entry {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := rs.cfg.flushBatch()
	if n > len(rs.queue) {
		n = len(rs.queue)
	}
	if n == 0 {
		return nil
	}
	batch := make([]core.Entry, n)
	copy(batch, rs.queue)
	rs.queue = rs.queue[:copy(rs.queue, rs.queue[n:])]
	return batch
}

// requeue puts a failed batch back at the queue head so the next flush
// retries it in order, re-applying the queue bound from the front (newest
// entries win, matching enqueue's drop-oldest policy).
func (rs *replicaState) requeue(batch []core.Entry) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.queue = append(batch, rs.queue...)
	if max := rs.cfg.maxQueue(); len(rs.queue) > max {
		over := len(rs.queue) - max
		rs.queue = rs.queue[over:]
		rs.dropped.Add(uint64(over))
	}
}

// forwardNow ships one batch to the trainer synchronously, recording the
// outcome in the replica counters. It is the single RPC path for the
// forwarder loop, the shutdown drain and post-drain stragglers.
func (rs *replicaState) forwardNow(ctx context.Context, batch []core.Entry) error {
	if len(batch) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := checkpoint.SaveExperience(&buf, batch); err != nil {
		// Encoding failure is a programming error, not a trainer outage;
		// surface it in /stats rather than retrying forever.
		rs.recordForwardError(err)
		rs.dropped.Add(uint64(len(batch)))
		return err
	}
	var resp proto.ExperienceResponse
	if err := rs.client.PostBytes(ctx, rs.cfg.TrainerURL+"/experience", buf.Bytes(), &resp); err != nil {
		rs.recordForwardError(err)
		return err
	}
	rs.forwarded.Add(uint64(len(batch)))
	rs.mu.Lock()
	rs.lastErr = ""
	rs.mu.Unlock()
	return nil
}

func (rs *replicaState) recordForwardError(err error) {
	rs.forwardErrors.Add(1)
	rs.mu.Lock()
	rs.lastErr = err.Error()
	rs.mu.Unlock()
}

// forwardLoop is the replica's background forwarder: every flushEvery it
// drains the queue in flushBatch-sized containers until empty or the trainer
// fails, in which case the batch is requeued and retried next tick — the
// degradation ramp for a dead trainer is queue → drop-oldest, never request
// failures.
func (rs *replicaState) forwardLoop(stop <-chan struct{}) {
	ticker := time.NewTicker(rs.cfg.flushEvery())
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for {
				batch := rs.takeBatch()
				if len(batch) == 0 {
					break
				}
				if err := rs.forwardNow(context.Background(), batch); err != nil {
					rs.requeue(batch)
					break
				}
			}
		case <-stop:
			return
		}
	}
}

// drain seals the queue and makes a final bounded attempt to hand every
// queued entry to the trainer. Called from Close after the forwarder loop
// has stopped; entries that still cannot be delivered are counted dropped.
func (rs *replicaState) drain() {
	rs.mu.Lock()
	rs.sealed = true
	rest := rs.queue
	rs.queue = nil
	rs.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	n := rs.cfg.flushBatch()
	for len(rest) > 0 {
		batch := rest
		if len(batch) > n {
			batch = rest[:n]
		}
		if err := rs.forwardNow(ctx, batch); err != nil {
			rs.dropped.Add(uint64(len(rest)))
			return
		}
		rest = rest[len(batch):]
	}
}

// clusterStats snapshots the replica-side counters for /stats.
func (rs *replicaState) clusterStats(netVersion uint64) proto.ClusterStats {
	rs.mu.Lock()
	depth := len(rs.queue)
	lastErr := rs.lastErr
	q := proto.QualityStats{
		WindowFeedbacks:     rs.windowCount,
		PrevWindowFeedbacks: rs.prevCount,
	}
	if rs.windowCount > 0 {
		q.WindowMeanLatencyMS = rs.windowSum / float64(rs.windowCount)
	}
	if rs.prevCount > 0 {
		q.PrevWindowMeanMS = rs.prevSum / float64(rs.prevCount)
	}
	rs.mu.Unlock()
	return proto.ClusterStats{
		Role:             "replica",
		Trainer:          rs.cfg.TrainerURL,
		SnapshotVersion:  netVersion,
		Queued:           depth,
		Forwarded:        rs.forwarded.Load(),
		Dropped:          rs.dropped.Load(),
		ForwardErrors:    rs.forwardErrors.Load(),
		LastForwardError: lastErr,
		Quality:          q,
	}
}

// recordLatency feeds one observed feedback latency into the quality window.
func (rs *replicaState) recordLatency(ms float64) {
	rs.mu.Lock()
	rs.windowCount++
	rs.windowSum += ms
	rs.mu.Unlock()
}

// archiveWindow rolls the running quality window into the prev fields and
// starts a fresh one. Called under the Server's swapMu write lock as part of
// a snapshot load, so the window boundary is exact: every latency recorded
// before the new weights serve lands in prev, everything after in the new
// window.
func (rs *replicaState) archiveWindow() {
	rs.mu.Lock()
	rs.prevCount, rs.prevSum = rs.windowCount, rs.windowSum
	rs.windowCount, rs.windowSum = 0, 0
	rs.mu.Unlock()
}

// SyncSnapshot pulls the trainer's current snapshot (or the given version;
// zero means latest) and loads it, replacing the replica's weights, plan
// cache and snapshot version. It is called at replica startup to join the
// fleet at the published version, and by POST /admin/snapshot when the
// rollout coordinator canaries or promotes a version. Returns the snapshot
// version now being served. Standalone servers return an error.
func (s *Server) SyncSnapshot(ctx context.Context, version uint64) (uint64, error) {
	if s.repl == nil {
		return 0, fmt.Errorf("serve: not a replica: no trainer to sync from")
	}
	url := s.repl.cfg.TrainerURL + "/snapshot"
	if version > 0 {
		url = fmt.Sprintf("%s?version=%d", url, version)
	}
	payload, _, err := s.repl.client.GetBytes(ctx, url)
	if err != nil {
		return 0, fmt.Errorf("serve: fetching snapshot: %w", err)
	}
	// The write side of swapMu: in-flight searches finish on the old
	// weights, the load replaces them in place, searches after the unlock
	// see the new snapshot (and a reset plan cache) atomically.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if err := s.sys.LoadCheckpoint(bytes.NewReader(payload)); err != nil {
		return 0, fmt.Errorf("serve: loading snapshot: %w", err)
	}
	s.repl.archiveWindow()
	return s.sys.Neo.NetVersion(), nil
}

// handleAdminSnapshot is POST /admin/snapshot (replica mode only): fetch a
// published snapshot from the trainer and serve from it. The rollout
// coordinator drives it — canary on one replica, promote on the rest.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	var req proto.SnapshotRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot request: %w", err))
			return
		}
	}
	version, err := s.SyncSnapshot(r.Context(), req.Version)
	if err != nil {
		// The trainer is unreachable or served a damaged container; the
		// replica keeps its current snapshot — degraded, not down.
		httpError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, proto.SnapshotResponse{NetVersion: version})
}
