// Command mdcheck validates the repository's markdown cross-references: every
// inline link or image whose target is a relative path must point at a file
// or directory that exists. External links (http, https, mailto) are not
// fetched — CI should not fail on someone else's outage — and pure #fragment
// links are skipped. Run from the repo root:
//
//	go run ./internal/tools/mdcheck [dir]
//
// Exits nonzero listing every broken link, so the CI docs job catches a
// renamed file whose references were not updated.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target) /
// ![alt](target). Targets with spaces or nested parens are not used in this
// repo and are out of scope.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// codeFenceRE matches fenced code-block delimiters; links inside fences are
// examples, not references.
var codeFenceRE = regexp.MustCompile("^\\s*```")

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var broken []string
	checked := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		inFence := false
		for lineNo, line := range strings.Split(string(data), "\n") {
			if codeFenceRE.MatchString(line) {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") ||
					strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				checked++
				if _, err := os.Stat(resolved); err != nil {
					broken = append(broken, fmt.Sprintf("%s:%d: broken link %q (resolved %s)",
						path, lineNo+1, m[1], resolved))
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdcheck:", err)
		os.Exit(2)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Printf("mdcheck: %d relative links OK\n", checked)
}
