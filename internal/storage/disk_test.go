package storage_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"neo/internal/datagen"
	"neo/internal/schema"
	"neo/internal/storage"
)

func testSchema() *schema.Table {
	return &schema.Table{
		Name:       "t",
		PrimaryKey: "id",
		Columns: []schema.Column{
			{Name: "id", Type: schema.IntType},
			{Name: "name", Type: schema.StringType},
			{Name: "score", Type: schema.IntType},
		},
	}
}

func testRow(i int) []storage.Value {
	return []storage.Value{
		storage.IntValue(int64(i)),
		storage.StringValue(fmt.Sprintf("name-%d", i)),
		storage.IntValue(int64(i * 7)),
	}
}

func TestPageInsertAndReadBack(t *testing.T) {
	ts := testSchema()
	p := storage.NewPage()
	var tuples [][]storage.Value
	for i := 0; ; i++ {
		tuple, err := storage.EncodeTuple(nil, ts, testRow(i))
		if err != nil {
			t.Fatal(err)
		}
		slot, ok := p.Insert(tuple)
		if !ok {
			break // page full
		}
		if slot != i {
			t.Fatalf("slot = %d, want %d", slot, i)
		}
		tuples = append(tuples, testRow(i))
	}
	if len(tuples) < 100 {
		t.Fatalf("only %d tuples fit in a page, expected hundreds", len(tuples))
	}
	if p.NumSlots() != len(tuples) {
		t.Fatalf("NumSlots = %d, want %d", p.NumSlots(), len(tuples))
	}
	// Round-trip through raw bytes, as the heap file read path does.
	copied := make([]byte, storage.PageSize)
	copy(copied, p.Bytes())
	q, err := storage.PageFromBytes(copied)
	if err != nil {
		t.Fatal(err)
	}
	var vals []storage.Value
	for slot := 0; slot < q.NumSlots(); slot++ {
		data, err := q.Tuple(slot)
		if err != nil {
			t.Fatal(err)
		}
		vals, err = storage.DecodeTuple(data, ts, vals)
		if err != nil {
			t.Fatal(err)
		}
		for c, want := range tuples[slot] {
			if !vals[c].Equal(want) {
				t.Fatalf("slot %d col %d = %v, want %v", slot, c, vals[c], want)
			}
		}
	}
}

func TestEncodeTupleRejectsKindMismatch(t *testing.T) {
	ts := testSchema()
	_, err := storage.EncodeTuple(nil, ts, []storage.Value{
		storage.StringValue("not-an-int"), storage.StringValue("x"), storage.IntValue(1),
	})
	if err == nil {
		t.Fatal("EncodeTuple accepted a string value for an int column")
	}
}

func TestHeapFileRoundTrip(t *testing.T) {
	ts := testSchema()
	path := filepath.Join(t.TempDir(), "t.heap")
	w, err := storage.CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // enough rows to span multiple pages
	var lastRID storage.RID
	for i := 0; i < n; i++ {
		tuple, err := storage.EncodeTuple(nil, ts, testRow(i))
		if err != nil {
			t.Fatal(err)
		}
		lastRID, err = w.Append(tuple)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if lastRID.Page == 0 {
		t.Fatalf("expected %d rows to span multiple pages, last RID = %+v", n, lastRID)
	}

	hf, err := storage.OpenHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	if hf.NumPages() != lastRID.Page+1 {
		t.Fatalf("NumPages = %d, want %d", hf.NumPages(), lastRID.Page+1)
	}
	var (
		row  int
		vals []storage.Value
	)
	for pageNo := int32(0); pageNo < hf.NumPages(); pageNo++ {
		page, err := hf.ReadPage(pageNo)
		if err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < page.NumSlots(); slot++ {
			data, err := page.Tuple(slot)
			if err != nil {
				t.Fatal(err)
			}
			vals, err = storage.DecodeTuple(data, ts, vals)
			if err != nil {
				t.Fatal(err)
			}
			for c, want := range testRow(row) {
				if !vals[c].Equal(want) {
					t.Fatalf("row %d col %d = %v, want %v", row, c, vals[c], want)
				}
			}
			row++
		}
	}
	if row != n {
		t.Fatalf("scanned %d rows, want %d", row, n)
	}
}

func TestBufferPoolHitMissEviction(t *testing.T) {
	ts := testSchema()
	path := filepath.Join(t.TempDir(), "t.heap")
	w, err := storage.CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		tuple, err := storage.EncodeTuple(nil, ts, testRow(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(tuple); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hf, err := storage.OpenHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Close()
	nPages := int(hf.NumPages())
	if nPages < 4 {
		t.Fatalf("need at least 4 pages, got %d", nPages)
	}

	// Pool smaller than the file: a full scan misses on every page, and a
	// second full scan cannot be served from cache either.
	cold := storage.NewBufferPool(2)
	for pass := 0; pass < 2; pass++ {
		for pageNo := int32(0); pageNo < hf.NumPages(); pageNo++ {
			if _, err := cold.Get(hf, pageNo); err != nil {
				t.Fatal(err)
			}
		}
	}
	cs := cold.Stats()
	if cs.Misses != int64(2*nPages) {
		t.Fatalf("cold pool misses = %d, want %d", cs.Misses, 2*nPages)
	}
	if cs.Evictions == 0 {
		t.Fatal("cold pool recorded no evictions")
	}
	if cs.BytesRead != cs.Misses*storage.PageSize {
		t.Fatalf("bytes read = %d, want %d", cs.BytesRead, cs.Misses*storage.PageSize)
	}

	// Pool larger than the file: second scan is all hits.
	hot := storage.NewBufferPool(nPages + 8)
	for pass := 0; pass < 2; pass++ {
		for pageNo := int32(0); pageNo < hf.NumPages(); pageNo++ {
			if _, err := hot.Get(hf, pageNo); err != nil {
				t.Fatal(err)
			}
		}
	}
	hs := hot.Stats()
	if hs.Misses != int64(nPages) || hs.Hits != int64(nPages) {
		t.Fatalf("hot pool hits/misses = %d/%d, want %d/%d", hs.Hits, hs.Misses, nPages, nPages)
	}
	if hs.Evictions != 0 {
		t.Fatalf("hot pool evicted %d pages with spare capacity", hs.Evictions)
	}
	if hs.HitRate != 0.5 {
		t.Fatalf("hot pool hit rate = %v, want 0.5", hs.HitRate)
	}

	hot.Reset()
	if s := hot.Stats(); s.Hits != 0 || s.Misses != 0 || s.ResidentPages != 0 {
		t.Fatalf("Reset left counters: %+v", s)
	}
	// After a reset the same scan misses again (cold cache).
	if _, err := hot.Get(hf, 0); err != nil {
		t.Fatal(err)
	}
	if s := hot.Stats(); s.Misses != 1 {
		t.Fatalf("post-reset misses = %d, want 1", s.Misses)
	}
}

func TestMaterializeOpenDiskParity(t *testing.T) {
	mem, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.BuildIndexes(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := storage.Materialize(mem, dir); err != nil {
		t.Fatal(err)
	}
	if !storage.MaterializedAt(dir, mem.Catalog) {
		t.Fatal("MaterializedAt = false after Materialize")
	}

	disk, err := storage.OpenDisk(dir, mem.Catalog, storage.PagesForMB(4))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if err := disk.VerifyAgainst(mem); err != nil {
		t.Fatal(err)
	}
	if disk.TotalRows() != mem.TotalRows() {
		t.Fatalf("disk rows = %d, mem rows = %d", disk.TotalRows(), mem.TotalRows())
	}

	// Every tuple on disk must decode to exactly the in-memory row, in the
	// same order (the heap preserves append order).
	for _, ts := range mem.Catalog.Tables() {
		dt := disk.Table(ts.Name)
		mt := mem.Table(ts.Name)
		var (
			row  int
			vals []storage.Value
		)
		for pageNo := int32(0); pageNo < dt.Heap.NumPages(); pageNo++ {
			page, err := disk.Pool.Get(dt.Heap, pageNo)
			if err != nil {
				t.Fatal(err)
			}
			for slot := 0; slot < page.NumSlots(); slot++ {
				data, err := page.Tuple(slot)
				if err != nil {
					t.Fatal(err)
				}
				vals, err = storage.DecodeTuple(data, ts, vals)
				if err != nil {
					t.Fatal(err)
				}
				for c, col := range ts.Columns {
					want, err := mt.Value(col.Name, row)
					if err != nil {
						t.Fatal(err)
					}
					if !vals[c].Equal(want) {
						t.Fatalf("%s row %d col %s: disk %v, mem %v", ts.Name, row, col.Name, vals[c], want)
					}
				}
				row++
			}
		}
		if row != mt.NumRows() {
			t.Fatalf("%s: scanned %d rows, want %d", ts.Name, row, mt.NumRows())
		}
	}

	// RID indexes exist on the same columns as in-memory hash indexes and
	// agree on per-key match counts and pointed-to values.
	for _, ts := range mem.Catalog.Tables() {
		dt, mt := disk.Table(ts.Name), mem.Table(ts.Name)
		for _, col := range ts.Columns {
			hix, rix := mt.Index(col.Name), dt.Index(col.Name)
			if (hix == nil) != (rix == nil) {
				t.Fatalf("%s.%s: index presence disk=%v mem=%v", ts.Name, col.Name, rix != nil, hix != nil)
			}
			if hix == nil {
				continue
			}
			if hix.DistinctKeys() != rix.DistinctKeys() {
				t.Fatalf("%s.%s: distinct keys disk=%d mem=%d", ts.Name, col.Name, rix.DistinctKeys(), hix.DistinctKeys())
			}
			// Probe every distinct value occurring in the column.
			colPos := ts.ColumnIndex(col.Name)
			seen := map[string]bool{}
			for row := 0; row < mt.NumRows(); row++ {
				v, err := mt.Value(col.Name, row)
				if err != nil {
					t.Fatal(err)
				}
				key := v.String()
				if seen[key] {
					continue
				}
				seen[key] = true
				rids := rix.Lookup(v)
				if len(rids) != len(hix.Lookup(v)) {
					t.Fatalf("%s.%s = %v: disk index %d matches, mem index %d",
						ts.Name, col.Name, v, len(rids), len(hix.Lookup(v)))
				}
				// Spot-check the first RID really points at a matching tuple.
				page, err := disk.Pool.Get(dt.Heap, rids[0].Page)
				if err != nil {
					t.Fatal(err)
				}
				data, err := page.Tuple(int(rids[0].Slot))
				if err != nil {
					t.Fatal(err)
				}
				var got []storage.Value
				got, err = storage.DecodeTuple(data, ts, got)
				if err != nil {
					t.Fatal(err)
				}
				if !got[colPos].Equal(v) {
					t.Fatalf("%s.%s: RID %+v holds %v, want %v", ts.Name, col.Name, rids[0], got[colPos], v)
				}
			}
		}
	}
}

func TestOpenDiskRejectsMissingFiles(t *testing.T) {
	mem, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if storage.MaterializedAt(dir, mem.Catalog) {
		t.Fatal("MaterializedAt = true on an empty directory")
	}
	if _, err := storage.OpenDisk(dir, mem.Catalog, 16); err == nil {
		t.Fatal("OpenDisk succeeded on an empty directory")
	}
}

func TestVerifyAgainstDetectsStaleFiles(t *testing.T) {
	big, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	small, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := storage.Materialize(big, dir); err != nil {
		t.Fatal(err)
	}
	disk, err := storage.OpenDisk(dir, big.Catalog, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if err := disk.VerifyAgainst(small); err == nil {
		t.Fatal("VerifyAgainst accepted heap files from a different scale")
	}
}
