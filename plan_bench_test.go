package repro

import (
	"testing"

	"neo/internal/bench"
)

// BenchmarkPlanRouting measures per-query planning latency for the two
// routing targets over the same routed (pattern-shaped) workload queries:
// the statistics-free greedy fast path against the full DNN-guided
// best-first search. The committed BENCH_plan.json baseline and CI's
// bench-gate enforce that the fast path's P50 stays >= 50x below the
// search's — the architectural gap (no value-network inference, no
// frontier) the query router trades plan quality headroom against.
//
// Verify the gap with:
//
//	go test -bench BenchmarkPlanRouting -run '^$' .
func BenchmarkPlanRouting(b *testing.B) {
	fastpathSide, bestfirst := bench.PlanningBenchmarks()
	b.Run("fastpath", fastpathSide)
	b.Run("bestfirst", bestfirst)
}
