package walk

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mkTree(t *testing.T, paths ...string) string {
	t.Helper()
	root := t.TempDir()
	for _, rel := range paths {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func rel(t *testing.T, root string, paths []string) []string {
	t.Helper()
	out := make([]string, len(paths))
	for i, p := range paths {
		r, err := filepath.Rel(root, p)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = filepath.ToSlash(r)
	}
	return out
}

func TestFilesFiltersAndSorts(t *testing.T) {
	root := mkTree(t,
		"b.go", "a.go", "note.md",
		"pkg/c.go", "pkg/doc.md",
		".git/hidden.go", ".idea/x.go",
		"_skip/y.go",
		"pkg/testdata/fixture.go",
	)
	got, err := Files(root, ".go")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a.go", "b.go", "pkg/c.go"}
	if !reflect.DeepEqual(rel(t, root, got), want) {
		t.Fatalf("Files = %v, want %v", rel(t, root, got), want)
	}
}

func TestFilesHiddenRootIsWalked(t *testing.T) {
	// A root that itself starts with "." (common for temp dirs or explicit
	// invocations like `mdcheck .`) must not be skipped — only hidden
	// subdirectories are excluded.
	parent := t.TempDir()
	root := filepath.Join(parent, ".hiddenroot")
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "f.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Files(root, ".md")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Files under hidden root = %v, want the one file", got)
	}
}

func TestGoPackageDirs(t *testing.T) {
	root := mkTree(t,
		"main.go",
		"internal/a/a.go", "internal/a/a_test.go",
		"internal/onlytests/x_test.go", // test-only dir: not a load target
		"internal/b/sub/s.go",
		"docs/readme.md",
	)
	got, err := GoPackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{".", "internal/a", "internal/b/sub"}
	if !reflect.DeepEqual(rel(t, root, got), want) {
		t.Fatalf("GoPackageDirs = %v, want %v", rel(t, root, got), want)
	}
}
