// Package executor implements the physical execution substrate that the
// simulated database engines share. It executes complete execution plans
// against the in-memory column store, materialising (sampled) intermediate
// results so that every plan node is annotated with realistic input/output
// cardinalities, access-path information and ordering properties.
//
// The executor deliberately separates *what* is computed (true join results,
// which depend only on the data and the join order) from *how much it would
// cost on a given engine* (which depends on the physical operators chosen
// and on engine-specific coefficients, modelled in package engine). All
// joins are physically evaluated with hash tables for speed; the chosen
// operator (hash/merge/loop) only affects the recorded statistics that the
// engines price.
package executor

import (
	"fmt"
	"math"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/storage"
)

// DefaultMaxRows is the sampling cap on materialised intermediate results.
// Intermediates larger than the cap are uniformly down-sampled and a scale
// factor is tracked, so reported cardinalities remain (approximately)
// correct while execution time stays bounded even for catastrophic plans.
const DefaultMaxRows = 50000

// NodeStats records everything the engine cost models need to know about one
// executed plan node.
type NodeStats struct {
	// OutputRows is the (scale-corrected) number of rows the node produces.
	OutputRows float64
	// LeftRows and RightRows are the input cardinalities of a join node.
	LeftRows, RightRows float64
	// BaseRows is the size of the scanned base table (scan nodes only).
	BaseRows float64
	// Selectivity is OutputRows/BaseRows for scan nodes.
	Selectivity float64
	// IndexOnPredicate reports whether an equality predicate on the scanned
	// table matches an indexed column (scan nodes only).
	IndexOnPredicate bool
	// InnerIndexOnJoinKey reports whether the right (inner/build) child is a
	// base-relation index scan whose join column is indexed, enabling an
	// index-nested-loop strategy (join nodes only).
	InnerIndexOnJoinKey bool
	// LeftSorted and RightSorted report whether the join inputs arrive
	// sorted on the join key (join nodes only).
	LeftSorted, RightSorted bool
	// CrossProduct reports that no join predicate connected the inputs.
	CrossProduct bool
}

// Result is the outcome of executing a complete plan.
type Result struct {
	// Root points at the plan's root node.
	Root *plan.Node
	// Nodes maps every plan node to its execution statistics.
	Nodes map[*plan.Node]*NodeStats
	// OutputRows is the (scale-corrected) cardinality of the final result.
	OutputRows float64
	// TotalIntermediateRows sums the output cardinalities of every node; a
	// crude engine-independent measure of how much work the plan implies.
	TotalIntermediateRows float64
	// Truncated reports that an operator hit its row budget and stopped
	// early, so cardinalities are lower bounds. The in-memory executor never
	// sets it (it samples instead); the disk executor sets it when a
	// runaway plan exceeds its per-operator budget.
	Truncated bool
}

// Executor executes plans against one database.
type Executor struct {
	db *storage.Database
	// MaxRows caps materialised intermediate results (see DefaultMaxRows).
	MaxRows int
}

// New creates an executor over the given database.
func New(db *storage.Database) *Executor {
	return &Executor{db: db, MaxRows: DefaultMaxRows}
}

// relation is a materialised (possibly sampled) intermediate result: a bag
// of composite rows, each holding one row id per contributing base table.
type relation struct {
	tables []string       // base table names, in slot order
	slot   map[string]int // table name -> slot index
	rows   [][]int32      // composite rows
	mult   float64        // sampling scale factor (>= 1)
	sorted *schema0       // column the rows are sorted on, if any
}

// schema0 names a column of a base table (local alias to avoid importing
// schema for one struct).
type schema0 struct {
	table, column string
}

func newRelation(tables []string) *relation {
	r := &relation{tables: tables, slot: make(map[string]int, len(tables)), mult: 1}
	for i, t := range tables {
		r.slot[t] = i
	}
	return r
}

func (r *relation) card() float64 { return float64(len(r.rows)) * r.mult }

// Execute runs a complete plan and returns per-node statistics.
func (e *Executor) Execute(p *plan.Plan) (*Result, error) {
	if !p.IsComplete() {
		return nil, fmt.Errorf("executor: plan for query %s is not complete: %s", p.Query.ID, p)
	}
	res := &Result{Root: p.Roots[0], Nodes: make(map[*plan.Node]*NodeStats)}
	rel, err := e.executeNode(p.Roots[0], p.Query, res)
	if err != nil {
		return nil, err
	}
	res.OutputRows = rel.card()
	for _, ns := range res.Nodes {
		res.TotalIntermediateRows += ns.OutputRows
	}
	return res, nil
}

// Count returns the true cardinality of the query result (the COUNT(*) the
// paper's example queries compute), by executing a canonical left-deep hash
// plan.
func (e *Executor) Count(q *query.Query) (float64, error) {
	p, err := canonicalPlan(q)
	if err != nil {
		return 0, err
	}
	res, err := e.Execute(p)
	if err != nil {
		return 0, err
	}
	return res.OutputRows, nil
}

// canonicalPlan builds any valid complete plan for the query (left-deep,
// hash joins, table scans), used for true-cardinality computation.
func canonicalPlan(q *query.Query) (*plan.Plan, error) {
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("executor: query %s has no relations", q.ID)
	}
	remaining := make(map[string]bool, len(q.Relations))
	for _, r := range q.Relations {
		remaining[r] = true
	}
	cur := plan.Leaf(q.Relations[0], plan.TableScan)
	delete(remaining, q.Relations[0])
	for len(remaining) > 0 {
		// Pick a remaining relation connected to the current tree.
		picked := ""
		cover := cur.TableSet()
		for _, r := range q.Relations {
			if !remaining[r] {
				continue
			}
			if q.Connected(cover, map[string]bool{r: true}) {
				picked = r
				break
			}
		}
		if picked == "" {
			// Disconnected join graph: fall back to a cross product with the
			// first remaining relation.
			for _, r := range q.Relations {
				if remaining[r] {
					picked = r
					break
				}
			}
		}
		cur = plan.Join2(plan.HashJoin, cur, plan.Leaf(picked, plan.TableScan))
		delete(remaining, picked)
	}
	return &plan.Plan{Query: q, Roots: []*plan.Node{cur}}, nil
}

func (e *Executor) executeNode(n *plan.Node, q *query.Query, res *Result) (*relation, error) {
	if n.IsLeaf() {
		return e.executeScan(n, q, res)
	}
	left, err := e.executeNode(n.Left, q, res)
	if err != nil {
		return nil, err
	}
	right, err := e.executeNode(n.Right, q, res)
	if err != nil {
		return nil, err
	}
	return e.executeJoin(n, q, left, right, res)
}

func (e *Executor) executeScan(n *plan.Node, q *query.Query, res *Result) (*relation, error) {
	tab := e.db.Table(n.Table)
	if tab == nil {
		return nil, fmt.Errorf("executor: unknown table %q", n.Table)
	}
	preds := q.PredicatesOn(n.Table)
	rel := newRelation([]string{n.Table})
	cols := make([]*storage.Column, len(preds))
	for i, p := range preds {
		cols[i] = tab.Column(p.Column)
		if cols[i] == nil {
			return nil, fmt.Errorf("executor: unknown column %s.%s", p.Table, p.Column)
		}
	}
	for row := 0; row < tab.NumRows(); row++ {
		ok := true
		for i, p := range preds {
			if !p.Matches(cols[i].Value(row)) {
				ok = false
				break
			}
		}
		if ok {
			rel.rows = append(rel.rows, []int32{int32(row)})
		}
	}
	e.maybeSample(rel)
	// Base-table output is treated as sorted on the primary key (clustered
	// storage), which lets merge joins on primary keys avoid a sort.
	if pk := tab.Schema.PrimaryKey; pk != "" {
		rel.sorted = &schema0{table: n.Table, column: pk}
	}

	ns := &NodeStats{
		OutputRows:  rel.card(),
		BaseRows:    float64(tab.NumRows()),
		Selectivity: safeDiv(rel.card(), float64(tab.NumRows())),
	}
	for _, p := range preds {
		if p.Op == query.Eq && e.db.Catalog.HasIndex(p.Table, p.Column) {
			ns.IndexOnPredicate = true
		}
	}
	res.Nodes[n] = ns
	return rel, nil
}

func (e *Executor) executeJoin(n *plan.Node, q *query.Query, left, right *relation, res *Result) (*relation, error) {
	joins := q.JoinsBetween(setOf(left.tables), setOf(right.tables))
	out := newRelation(append(append([]string{}, left.tables...), right.tables...))
	out.mult = left.mult * right.mult

	ns := &NodeStats{
		LeftRows:  left.card(),
		RightRows: right.card(),
	}

	if len(joins) == 0 {
		// Cross product: cap the amount of work.
		ns.CrossProduct = true
		limit := e.maxRows()
		for _, lr := range left.rows {
			for _, rr := range right.rows {
				out.rows = append(out.rows, combine(lr, rr))
				if len(out.rows) >= limit {
					break
				}
			}
			if len(out.rows) >= limit {
				break
			}
		}
		// Correct the scale factor for the rows we did not enumerate.
		trueCard := float64(len(left.rows)) * float64(len(right.rows))
		if float64(len(out.rows)) < trueCard && len(out.rows) > 0 {
			out.mult *= trueCard / float64(len(out.rows))
		}
	} else {
		primary := joins[0]
		// Orient the primary join predicate: key column on the left input,
		// probe column on the right input.
		leftCol, rightCol := orient(primary, left)
		rightStorageTab := e.db.Table(rightCol.table)
		leftStorageTab := e.db.Table(leftCol.table)
		if rightStorageTab == nil || leftStorageTab == nil {
			return nil, fmt.Errorf("executor: join %s references unknown table", primary)
		}
		rightColumn := rightStorageTab.Column(rightCol.column)
		leftColumn := leftStorageTab.Column(leftCol.column)
		if rightColumn == nil || leftColumn == nil {
			return nil, fmt.Errorf("executor: join %s references unknown column", primary)
		}
		// Build a hash table on the right input keyed by its join value.
		build := make(map[string][]int, len(right.rows))
		rslot := right.slot[rightCol.table]
		for i, rr := range right.rows {
			key := rightColumn.Value(int(rr[rslot])).String()
			build[key] = append(build[key], i)
		}
		lslot := left.slot[leftCol.table]
		rest := joins[1:]
		limit := e.maxRows() * 4 // allow some slack before sampling
		for _, lr := range left.rows {
			key := leftColumn.Value(int(lr[lslot])).String()
			for _, ri := range build[key] {
				rr := right.rows[ri]
				if !e.extraJoinsMatch(rest, left, right, lr, rr) {
					continue
				}
				out.rows = append(out.rows, combine(lr, rr))
			}
			if len(out.rows) > limit {
				break
			}
		}
		// If we broke out early, extrapolate the cardinality from the
		// fraction of the left input processed. This is rare (only truly
		// pathological intermediate blow-ups hit it).
		// Determine sortedness for merge-join costing.
		ns.LeftSorted = left.sorted != nil && left.sorted.table == leftCol.table && left.sorted.column == leftCol.column
		ns.RightSorted = right.sorted != nil && right.sorted.table == rightCol.table && right.sorted.column == rightCol.column
		// Index-nested-loop availability: the right child is a base-relation
		// leaf scanned by index, and its join column is indexed.
		if n.Right.IsLeaf() && n.Right.Scan == plan.IndexScan && e.db.Catalog.HasIndex(rightCol.table, rightCol.column) && len(right.tables) == 1 {
			ns.InnerIndexOnJoinKey = true
		}
		// Merge-join output is sorted on the join key.
		if n.Join == plan.MergeJoin {
			out.sorted = &schema0{table: leftCol.table, column: leftCol.column}
		}
	}
	e.maybeSample(out)
	ns.OutputRows = out.card()
	res.Nodes[n] = ns
	return out, nil
}

// extraJoinsMatch applies the non-primary join predicates as filters.
func (e *Executor) extraJoinsMatch(joins []query.JoinPredicate, left, right *relation, lr, rr []int32) bool {
	for _, j := range joins {
		lv, rv, ok := e.joinValues(j, left, right, lr, rr)
		if !ok {
			continue
		}
		if !lv.Equal(rv) {
			return false
		}
	}
	return true
}

func (e *Executor) joinValues(j query.JoinPredicate, left, right *relation, lr, rr []int32) (storage.Value, storage.Value, bool) {
	get := func(table, column string) (storage.Value, bool) {
		if s, ok := left.slot[table]; ok {
			return e.db.Table(table).Column(column).Value(int(lr[s])), true
		}
		if s, ok := right.slot[table]; ok {
			return e.db.Table(table).Column(column).Value(int(rr[s])), true
		}
		return storage.Value{}, false
	}
	lv, ok1 := get(j.LeftTable, j.LeftColumn)
	rv, ok2 := get(j.RightTable, j.RightColumn)
	return lv, rv, ok1 && ok2
}

// orient returns the (table, column) of the primary join predicate that
// belongs to the left input and to the right input, respectively.
func orient(j query.JoinPredicate, left *relation) (schema0, schema0) {
	if _, ok := left.slot[j.LeftTable]; ok {
		return schema0{j.LeftTable, j.LeftColumn}, schema0{j.RightTable, j.RightColumn}
	}
	return schema0{j.RightTable, j.RightColumn}, schema0{j.LeftTable, j.LeftColumn}
}

func (e *Executor) maxRows() int {
	if e.MaxRows > 0 {
		return e.MaxRows
	}
	return DefaultMaxRows
}

// maybeSample downsamples a relation that exceeds the cap, adjusting its
// scale factor so card() stays correct.
//
// The sample is exact-count: exactly limit evenly spaced rows are kept and
// mult is scaled by n/limit, so card() at the sampled node equals the true
// materialized count exactly. Downstream nodes join a uniform 1-in-(n/limit)
// subsample, so their card() values are estimates whose relative error
// shrinks as O(1/sqrt(limit·selectivity)); with the default 50k cap this is
// well under a percent for the join selectivities the workloads produce.
// (The previous float-stride loop could emit fewer than limit rows while
// still dividing by the intended count, silently inflating mult.)
func (e *Executor) maybeSample(r *relation) {
	limit := e.maxRows()
	if len(r.rows) <= limit {
		return
	}
	sampled := make([][]int32, limit)
	for i, idx := range sampleIndices(len(r.rows), limit) {
		sampled[i] = r.rows[idx]
	}
	r.mult *= float64(len(r.rows)) / float64(limit)
	r.rows = sampled
	r.sorted = nil
}

// sampleIndices returns exactly limit strictly increasing row indices spread
// evenly over [0, n). Requires n > limit.
func sampleIndices(n, limit int) []int {
	idx := make([]int, limit)
	for i := range idx {
		idx[i] = i * n / limit
	}
	return idx
}

func combine(l, r []int32) []int32 {
	out := make([]int32, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func setOf(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// TrueJoinCardinalities executes the query with a canonical plan and returns,
// for every subset of relations encountered along that plan, the true join
// cardinality. Used by the robustness experiment (Figure 14) as the "true
// cardinality" feature source.
func (e *Executor) TrueJoinCardinalities(q *query.Query) (map[string]float64, error) {
	p, err := canonicalPlan(q)
	if err != nil {
		return nil, err
	}
	res, err := e.Execute(p)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	p.Roots[0].Walk(func(n *plan.Node) {
		ns := res.Nodes[n]
		if ns == nil {
			return
		}
		out[SubsetKey(n.Tables())] = ns.OutputRows
	})
	return out, nil
}

// SubsetKey canonically encodes a set of relation names.
func SubsetKey(tables []string) string {
	key := ""
	for i, t := range tables {
		if i > 0 {
			key += ","
		}
		key += t
	}
	return key
}

// Selectivity returns the true selectivity of a conjunction of predicates on
// a single table (the fraction of rows matching), computed exactly.
func (e *Executor) Selectivity(table string, preds []query.Predicate) (float64, error) {
	tab := e.db.Table(table)
	if tab == nil {
		return 0, fmt.Errorf("executor: unknown table %q", table)
	}
	if tab.NumRows() == 0 {
		return 0, nil
	}
	matched := 0
	for row := 0; row < tab.NumRows(); row++ {
		ok := true
		for _, p := range preds {
			if p.Table != table {
				continue
			}
			col := tab.Column(p.Column)
			if col == nil {
				return 0, fmt.Errorf("executor: unknown column %s.%s", table, p.Column)
			}
			if !p.Matches(col.Value(row)) {
				ok = false
				break
			}
		}
		if ok {
			matched++
		}
	}
	return float64(matched) / float64(tab.NumRows()), nil
}

// Clamp01 clamps v into [0, 1]; exported for reuse by cost models.
func Clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }
