// Package lint is a neo-lint self-test fixture for driver-level findings:
// malformed and stale suppression comments. Expectations live in
// fixtures_test.go rather than `// want` comments, because the suppression
// comment itself is the finding site and extra marker text inside it would
// change what is being tested.
package lint

func missingReason() int {
	return 1 //neo:lint-ok detrange
}

func unknownCheck() int {
	return 2 //neo:lint-ok nosuchcheck the check name does not exist
}

func staleSuppression() int {
	//neo:lint-ok walltime nothing on the next line reads the clock
	return 3
}
