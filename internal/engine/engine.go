// Package engine implements the simulated database execution engines that
// stand in for the four real systems of the paper's evaluation (PostgreSQL,
// SQLite, MS SQL Server, Oracle — the latter two appear here under the
// neutral names EngineM and EngineO).
//
// All engines share the physical executor (package executor), which
// determines the true cardinalities flowing through a plan; an engine's
// identity is its cost Profile: per-operator coefficients, memory limits,
// parallelism and noise. Executing a plan on an engine therefore yields a
// simulated latency whose *ordering across plans* mimics how the real system
// would rank them (bad join orders blow up intermediate results on every
// engine; loop joins hurt more on engines without indexes in memory; hash
// joins spill on small-memory engines; and so on).
package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"neo/internal/executor"
	"neo/internal/plan"
	"neo/internal/storage"
)

// Profile holds the cost coefficients that define a simulated engine.
// Costs are in abstract work units; CostScale converts the total into
// simulated milliseconds.
type Profile struct {
	// Name identifies the engine ("postgres", "sqlite", "engine-m", "engine-o").
	Name string
	// SeqRowCost is the cost of reading one row in a sequential scan.
	SeqRowCost float64
	// IdxLookupCost is the cost of one index traversal (per lookup).
	IdxLookupCost float64
	// IdxRowCost is the cost of fetching one row through an index.
	IdxRowCost float64
	// HashBuildCost and HashProbeCost are per-row costs of a hash join.
	HashBuildCost, HashProbeCost float64
	// MergeRowCost is the per-row cost of the merge phase of a merge join.
	MergeRowCost float64
	// SortRowCost multiplies n·log2(n) when a merge-join input needs sorting.
	SortRowCost float64
	// LoopRowCost is the per-pair cost of a non-indexed nested-loop join.
	LoopRowCost float64
	// OutputRowCost is the per-row cost of emitting join output.
	OutputRowCost float64
	// MemoryRows is the hash-build memory budget in rows; larger builds spill.
	MemoryRows float64
	// SpillFactor multiplies hash-join cost when the build side spills.
	SpillFactor float64
	// Parallelism divides total plan cost (degree of intra-query parallelism).
	Parallelism float64
	// CostScale converts work units into simulated milliseconds.
	CostScale float64
	// BaseLatencyMS is a fixed per-query overhead.
	BaseLatencyMS float64
	// NoiseFraction is the relative magnitude of multiplicative run-to-run
	// latency noise.
	NoiseFraction float64
}

// PostgreSQLProfile models an open-source row store with modest parallelism
// and a balanced operator mix.
func PostgreSQLProfile() Profile {
	return Profile{
		Name:       "postgres",
		SeqRowCost: 1.0, IdxLookupCost: 4.0, IdxRowCost: 2.0,
		HashBuildCost: 1.6, HashProbeCost: 1.0, MergeRowCost: 0.9, SortRowCost: 0.25,
		LoopRowCost: 0.08, OutputRowCost: 0.25,
		MemoryRows: 40000, SpillFactor: 3.0,
		Parallelism: 2.0, CostScale: 0.004, BaseLatencyMS: 2.0, NoiseFraction: 0.05,
	}
}

// SQLiteProfile models a single-threaded embedded engine that favours
// index-nested-loop joins (its hash and merge operators are weak).
func SQLiteProfile() Profile {
	return Profile{
		Name:       "sqlite",
		SeqRowCost: 1.2, IdxLookupCost: 3.0, IdxRowCost: 1.5,
		HashBuildCost: 3.2, HashProbeCost: 2.0, MergeRowCost: 2.0, SortRowCost: 0.5,
		LoopRowCost: 0.10, OutputRowCost: 0.30,
		MemoryRows: 10000, SpillFactor: 5.0,
		Parallelism: 1.0, CostScale: 0.004, BaseLatencyMS: 1.0, NoiseFraction: 0.04,
	}
}

// EngineMProfile models a commercial engine (in the spirit of MS SQL Server)
// with strong hash joins, large memory and high parallelism.
func EngineMProfile() Profile {
	return Profile{
		Name:       "engine-m",
		SeqRowCost: 0.8, IdxLookupCost: 3.5, IdxRowCost: 1.6,
		HashBuildCost: 1.1, HashProbeCost: 0.7, MergeRowCost: 0.7, SortRowCost: 0.18,
		LoopRowCost: 0.07, OutputRowCost: 0.2,
		MemoryRows: 120000, SpillFactor: 2.5,
		Parallelism: 4.0, CostScale: 0.004, BaseLatencyMS: 3.0, NoiseFraction: 0.05,
	}
}

// EngineOProfile models a second commercial engine (in the spirit of Oracle)
// with strong merge joins and aggressive indexing.
func EngineOProfile() Profile {
	return Profile{
		Name:       "engine-o",
		SeqRowCost: 0.9, IdxLookupCost: 2.8, IdxRowCost: 1.2,
		HashBuildCost: 1.3, HashProbeCost: 0.8, MergeRowCost: 0.55, SortRowCost: 0.15,
		LoopRowCost: 0.06, OutputRowCost: 0.2,
		MemoryRows: 100000, SpillFactor: 2.5,
		Parallelism: 4.0, CostScale: 0.004, BaseLatencyMS: 3.0, NoiseFraction: 0.05,
	}
}

// DiskProfile is the cost profile paired with the disk backend. Execution
// latency is measured, not simulated, so NoiseFraction is zero (Commit adds
// nothing either way on a measured backend); the operator coefficients still
// matter because the classical optimizers plan with this cost model before
// the disk backend runs the winner.
func DiskProfile() Profile {
	p := PostgreSQLProfile()
	p.Name = "disk"
	p.NoiseFraction = 0
	return p
}

// Profiles returns the four simulated engine profiles in the order the paper
// reports them (PostgreSQL, SQLite, commercial M, commercial O). The disk
// profile is deliberately absent: it is not a simulated engine, and the
// experiment harness iterates this list when comparing simulators.
func Profiles() []Profile {
	return []Profile{PostgreSQLProfile(), SQLiteProfile(), EngineMProfile(), EngineOProfile()}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	if name == "disk" {
		return DiskProfile(), nil
	}
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("engine: unknown profile %q", name)
}

// Engine is an execution engine bound to a database through a pluggable
// ExecutionBackend. With the default SimBackend it is the simulated engine
// the cost profiles describe; with a DiskBackend the same Engine surface
// feeds measured wall-clock latencies into the learning loop.
type Engine struct {
	Profile Profile
	Backend ExecutionBackend

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu
	// executions counts how many plans the engine has executed; used for
	// wall-clock accounting in the training-time experiment.
	executions int // guarded by mu
	// simulatedMS accumulates total (simulated or measured) execution time.
	simulatedMS float64 // guarded by mu
}

// New creates an engine with the given profile over the given in-memory
// database, backed by the simulated executor.
func New(profile Profile, db *storage.Database) *Engine {
	return NewWithBackend(profile, NewSimBackend(profile, db))
}

// NewWithBackend creates an engine over an arbitrary execution backend. The
// profile still defines the engine's cost model (CostResult), which the
// classical optimizers use for planning even when execution is measured.
func NewWithBackend(profile Profile, backend ExecutionBackend) *Engine {
	return &Engine{
		Profile: profile,
		Backend: backend,
		rng:     rand.New(rand.NewSource(int64(len(profile.Name)) * 7919)),
	}
}

// Executor returns the in-memory executor when the engine runs on the
// simulated backend, and nil otherwise. Callers that need a physical
// executor regardless of backend (selectivity probing, true-cardinality
// counting) should construct their own from the database.
func (e *Engine) Executor() *executor.Executor {
	if sb, ok := e.Backend.(*SimBackend); ok {
		return sb.Exec
	}
	return nil
}

// Execute runs a complete plan and returns its simulated latency in
// milliseconds along with the executor's per-node statistics. It is
// equivalent to Simulate followed by Commit.
func (e *Engine) Execute(p *plan.Plan) (float64, *executor.Result, error) {
	base, res, err := e.Simulate(p)
	if err != nil {
		return 0, nil, err
	}
	return e.Commit(base), res, nil
}

// Simulate runs a complete plan on the backend and returns its base latency,
// without drawing run-to-run noise or touching the engine's execution
// accounting. It only reads shared engine state, so any number of goroutines
// may Simulate concurrently; pair each call with a later Commit to obtain
// the final latency. Splitting execution this way lets a parallel episode
// pipeline fan the expensive executor work out over workers while still
// drawing the engine's noise stream in a deterministic order. (On a measured
// backend "Simulate" is a real execution and the base latency is wall-clock
// time; the split still holds because Commit adds nothing to it.)
func (e *Engine) Simulate(p *plan.Plan) (float64, *executor.Result, error) {
	return e.Backend.Run(p)
}

// Commit applies run-to-run noise to a latency returned by Simulate and
// records the execution in the engine's accounting. Noise is drawn from one
// engine-wide stream in Commit order, so callers that commit in a fixed
// order get bit-identical latencies regardless of how the preceding
// Simulate calls were scheduled.
//
// On a measured backend the latency already contains real run-to-run
// variation, so no noise is applied — and no random draw is consumed, which
// keeps the noise stream's determinism contract intact if backends are ever
// mixed.
func (e *Engine) Commit(base float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	lat := base
	if !e.Backend.Measured() {
		noise := 1.0 + (e.rng.Float64()*2-1)*e.Profile.NoiseFraction
		lat = base * noise
	}
	e.executions++
	e.simulatedMS += lat
	return lat
}

// Executions returns the number of plans executed so far.
func (e *Engine) Executions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.executions
}

// SimulatedTimeMS returns the cumulative simulated execution time.
func (e *Engine) SimulatedTimeMS() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.simulatedMS
}

// CostResult prices an executed (or estimated) plan with the engine's
// profile. Kept as an Engine method because the classical optimizers cost
// candidate plans through their engine handle regardless of which backend
// executes the winner.
func (e *Engine) CostResult(root *plan.Node, nodes map[*plan.Node]*executor.NodeStats) float64 {
	return e.Profile.CostResult(root, nodes)
}

// CostResult prices an executed (or estimated) plan: given the root node and
// per-node statistics, it returns the deterministic simulated latency in
// milliseconds (no noise). The same function serves both real execution
// results and the estimated statistics produced by the classical optimizers,
// which is exactly how a traditional cost-based optimizer uses its model.
func (p Profile) CostResult(root *plan.Node, nodes map[*plan.Node]*executor.NodeStats) float64 {
	work := p.nodeCost(root, nodes)
	return work/p.Parallelism*p.CostScale + p.BaseLatencyMS
}

// nodeCost recursively prices the subtree rooted at n in work units.
func (p Profile) nodeCost(n *plan.Node, nodes map[*plan.Node]*executor.NodeStats) float64 {
	if n == nil {
		return 0
	}
	ns := nodes[n]
	if ns == nil {
		return 0
	}
	if n.IsLeaf() {
		return p.scanCost(n, ns)
	}

	out := p.OutputRowCost * ns.OutputRows
	left := p.nodeCost(n.Left, nodes)

	switch n.Join {
	case plan.HashJoin:
		right := p.nodeCost(n.Right, nodes)
		cost := p.HashBuildCost*ns.RightRows + p.HashProbeCost*ns.LeftRows
		if ns.RightRows > p.MemoryRows {
			cost *= p.SpillFactor
		}
		if ns.CrossProduct {
			cost += p.LoopRowCost * ns.LeftRows * ns.RightRows
		}
		return left + right + cost + out
	case plan.MergeJoin:
		right := p.nodeCost(n.Right, nodes)
		cost := p.MergeRowCost * (ns.LeftRows + ns.RightRows)
		if !ns.LeftSorted {
			cost += sortCost(p, ns.LeftRows)
		}
		if !ns.RightSorted {
			cost += sortCost(p, ns.RightRows)
		}
		if ns.CrossProduct {
			cost += p.LoopRowCost * ns.LeftRows * ns.RightRows
		}
		return left + right + cost + out
	default: // LoopJoin
		if ns.InnerIndexOnJoinKey {
			// Index-nested-loop: the inner relation is probed through its
			// index once per outer row; the inner leaf's own scan cost is
			// not paid.
			innerStats := nodes[n.Right]
			innerBase := 1.0
			if innerStats != nil {
				innerBase = math.Max(innerStats.BaseRows, 1)
			}
			cost := ns.LeftRows*p.IdxLookupCost*math.Log2(innerBase+2) + p.IdxRowCost*ns.OutputRows
			return left + cost + out
		}
		right := p.nodeCost(n.Right, nodes)
		cost := p.LoopRowCost * math.Max(ns.LeftRows, 1) * math.Max(ns.RightRows, 1)
		return left + right + cost + out
	}
}

func (p Profile) scanCost(n *plan.Node, ns *executor.NodeStats) float64 {
	switch n.Scan {
	case plan.IndexScan:
		if ns.IndexOnPredicate {
			return p.IdxLookupCost*math.Log2(ns.BaseRows+2) + p.IdxRowCost*ns.OutputRows
		}
		// An index scan without a usable predicate still walks the whole
		// index: roughly a sequential scan with extra pointer chasing.
		return p.SeqRowCost*ns.BaseRows + p.IdxRowCost*ns.OutputRows*0.5
	default: // TableScan (and Unspecified, which never reaches execution)
		return p.SeqRowCost * ns.BaseRows
	}
}

func sortCost(p Profile, rows float64) float64 {
	if rows < 2 {
		return 0
	}
	return p.SortRowCost * rows * math.Log2(rows)
}
