// Network snapshots. Training mutates the network's weights in place, so a
// search that scores plans while a retraining round is running would read
// half-updated parameters. Snapshot gives the optimizer a double-buffering
// primitive: it deep-copies the weights into a frozen Network that exposes
// only the inference surface, so searches keep scoring against a consistent
// set of weights while the live network trains in the background, and the
// new weights are published by atomically swapping in a fresh snapshot.
package valuenet

import "neo/internal/treeconv"

// Predictor is the read-only inference surface of the value network, shared
// by the live Network and immutable Snapshots of it. All methods are safe
// for concurrent use as long as nothing trains the underlying weights —
// which, for a Snapshot, is guaranteed by construction.
type Predictor interface {
	// Predict returns the cost prediction in the original cost domain.
	Predict(queryVec []float64, trees []*treeconv.Tree) float64
	// PredictNormalized returns the raw output in normalised log-cost space.
	PredictNormalized(queryVec []float64, trees []*treeconv.Tree) float64
	// PredictBatch is Predict over a batch in one shared forward pass.
	PredictBatch(queries [][]float64, forests [][]*treeconv.Tree) []float64
	// PredictBatchNormalized is PredictNormalized over a batch.
	PredictBatchNormalized(queries [][]float64, forests [][]*treeconv.Tree) []float64
}

var (
	_ Predictor = (*Network)(nil)
	_ Predictor = (*Snapshot)(nil)
)

// Clone returns a deep copy of the network: same architecture and weights,
// fully independent parameter storage. Optimizer state (Adam moments) is not
// copied — a clone serves inference or a fresh training run, not resumption
// of an optimization trajectory.
func (n *Network) Clone() *Network {
	c := New(n.queryDim, n.planDim, n.cfg)
	src, dst := n.Params(), c.Params()
	for i, p := range src {
		copy(dst[i].Value, p.Value)
	}
	c.targetMean, c.targetStd = n.targetMean, n.targetStd
	return c
}

// Snapshot is an immutable point-in-time copy of a network, safe to share
// across any number of concurrent searches. It has no training methods; the
// weights it scores with can never change after creation.
//
// A snapshot always carries the float64 master weights (net); depending on
// the precision it was published with (see SnapshotPrecision), scoring runs
// either directly on them or through the packed float32 / quantized int8
// kernels converted once at snapshot time.
type Snapshot struct {
	net  *Network
	prec Precision
	f32  *netF32 // packed panels; non-nil when prec is float32
	i8   *netI8  // quantized panels; non-nil when prec is int8
}

// Snapshot deep-copies the network's current weights into a frozen float64
// predictor. Call it only when no training round is mutating the weights
// (Neo calls it at the end of each retraining round, under the training
// lock). See SnapshotPrecision for reduced-precision snapshots.
func (n *Network) Snapshot() *Snapshot {
	return n.SnapshotPrecision(PrecisionFloat64, nil)
}

// Predict implements Predictor.
func (s *Snapshot) Predict(queryVec []float64, trees []*treeconv.Tree) float64 {
	if s.prec == PrecisionFloat64 {
		return s.net.Predict(queryVec, trees)
	}
	return s.net.denormalize(s.PredictNormalized(queryVec, trees))
}

// PredictNormalized implements Predictor.
func (s *Snapshot) PredictNormalized(queryVec []float64, trees []*treeconv.Tree) float64 {
	if s.prec == PrecisionFloat64 {
		return s.net.PredictNormalized(queryVec, trees)
	}
	return s.forward32([][]float64{queryVec}, [][]*treeconv.Tree{trees}, nil, nil, nil)[0]
}

// PredictBatch implements Predictor.
func (s *Snapshot) PredictBatch(queries [][]float64, forests [][]*treeconv.Tree) []float64 {
	if s.prec == PrecisionFloat64 {
		return s.net.PredictBatch(queries, forests)
	}
	out := s.forward32(queries, forests, nil, nil, nil)
	for i, v := range out {
		out[i] = s.net.denormalize(v)
	}
	return out
}

// PredictBatchNormalized implements Predictor.
func (s *Snapshot) PredictBatchNormalized(queries [][]float64, forests [][]*treeconv.Tree) []float64 {
	if s.prec == PrecisionFloat64 {
		return s.net.PredictBatchNormalized(queries, forests)
	}
	return s.forward32(queries, forests, nil, nil, nil)
}

// NumParameters returns the total number of scalar parameters of the frozen
// network.
func (s *Snapshot) NumParameters() int { return s.net.NumParameters() }
