// AVX2/FMA micro-kernel for the packed float32 GEMM (see f32.go for the
// panel layout). One call computes one 8-output panel for all rows:
//
//	y[r][0:8] = bias[0:8] + Σ_k x[r][k] · w[k][0:8]
//
// The main loop processes 4 rows at a time: one contiguous 8-wide weight
// load is reused by 4 broadcast input scalars through 4 independent FMA
// accumulator chains (Y0-Y3), so the kernel retires 32 multiply-adds per
// k-step and stays FMA-throughput-bound rather than load-bound. Output
// stores (and the bias load) go through vmaskmovps so the real-output tail
// of the last panel never writes past the destination row.

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmPanel8(x, w, y, bias *float32, rows, kUsed, xStride, yStride int, mask *int32)
TEXT ·gemmPanel8(SB), NOSPLIT, $0-72
	MOVQ x+0(FP), SI
	MOVQ w+8(FP), BX
	MOVQ y+16(FP), DI
	MOVQ bias+24(FP), R8
	MOVQ rows+32(FP), CX
	MOVQ kUsed+40(FP), DX
	MOVQ xStride+48(FP), R9
	MOVQ yStride+56(FP), R10
	MOVQ mask+64(FP), R11

	VMOVDQU    (R11), Y8     // lane mask for the output tail
	VMASKMOVPS (R8), Y8, Y4  // bias (masked: Bias has only Out entries)
	SHLQ       $2, R9        // x row stride in bytes
	SHLQ       $2, R10       // y row stride in bytes

row4:
	CMPQ CX, $4
	JLT  row1

	// Row base pointers: SI, R12, R13, R14.
	LEAQ   (SI)(R9*1), R12
	LEAQ   (SI)(R9*2), R13
	LEAQ   (R12)(R9*2), R14
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   BX, AX            // weight cursor (8 floats per k)
	XORQ   R15, R15          // k

k4:
	VMOVUPS      (AX), Y5
	VBROADCASTSS (SI)(R15*4), Y6
	VFMADD231PS  Y5, Y6, Y0
	VBROADCASTSS (R12)(R15*4), Y7
	VFMADD231PS  Y5, Y7, Y1
	VBROADCASTSS (R13)(R15*4), Y6
	VFMADD231PS  Y5, Y6, Y2
	VBROADCASTSS (R14)(R15*4), Y7
	VFMADD231PS  Y5, Y7, Y3
	ADDQ         $32, AX
	INCQ         R15
	CMPQ         R15, DX
	JLT          k4

	VADDPS     Y4, Y0, Y0
	VADDPS     Y4, Y1, Y1
	VADDPS     Y4, Y2, Y2
	VADDPS     Y4, Y3, Y3
	VMASKMOVPS Y0, Y8, (DI)
	VMASKMOVPS Y1, Y8, (DI)(R10*1)
	LEAQ       (DI)(R10*2), R12
	VMASKMOVPS Y2, Y8, (R12)
	VMASKMOVPS Y3, Y8, (R12)(R10*1)

	LEAQ (SI)(R9*4), SI
	LEAQ (DI)(R10*4), DI
	SUBQ $4, CX
	JMP  row4

row1:
	CMPQ   CX, $0
	JLE    done
	VXORPS Y0, Y0, Y0
	MOVQ   BX, AX
	XORQ   R15, R15

k1:
	VMOVUPS      (AX), Y5
	VBROADCASTSS (SI)(R15*4), Y6
	VFMADD231PS  Y5, Y6, Y0
	ADDQ         $32, AX
	INCQ         R15
	CMPQ         R15, DX
	JLT          k1

	VADDPS     Y4, Y0, Y0
	VMASKMOVPS Y0, Y8, (DI)
	ADDQ       R9, SI
	ADDQ       R10, DI
	DECQ       CX
	JMP        row1

done:
	VZEROUPPER
	RET

// func gemmQuadI8(x, w *int8, blocks, wStride int, acc *int32)
//
// Int8 dot-product block for the quantized GEMM (see int8.go for the padded
// row-major layout): acc[j] = Σ_k x[k] · w[j·wStride + k] for j = 0..3, over
// blocks×16 bytes of k. Each step widens 16 int8 lanes to int16
// (VPMOVSXBW), multiply-accumulates pairs into int32 (VPMADDWD), and one
// x load feeds all four weight rows. Sums are exact: |products| ≤ 127², so
// pairwise int32 accumulation cannot overflow for any realistic K.
TEXT ·gemmQuadI8(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), SI
	MOVQ w+8(FP), BX
	MOVQ blocks+16(FP), CX
	MOVQ wStride+24(FP), R9
	MOVQ acc+32(FP), DI

	// Weight row base pointers: BX, R10, R11, R12.
	LEAQ  (BX)(R9*1), R10
	LEAQ  (BX)(R9*2), R11
	LEAQ  (R10)(R9*2), R12
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ  R15, R15           // byte offset along k

blk:
	VPMOVSXBW (SI)(R15*1), Y4
	VPMOVSXBW (BX)(R15*1), Y5
	VPMADDWD  Y4, Y5, Y5
	VPADDD    Y5, Y0, Y0
	VPMOVSXBW (R10)(R15*1), Y6
	VPMADDWD  Y4, Y6, Y6
	VPADDD    Y6, Y1, Y1
	VPMOVSXBW (R11)(R15*1), Y7
	VPMADDWD  Y4, Y7, Y7
	VPADDD    Y7, Y2, Y2
	VPMOVSXBW (R12)(R15*1), Y8
	VPMADDWD  Y4, Y8, Y8
	VPADDD    Y8, Y3, Y3
	ADDQ      $16, R15
	DECQ      CX
	JNZ       blk

	// Horizontal reduction: 8 int32 lanes -> 1 per accumulator.
	VEXTRACTI128 $1, Y0, X4
	VPADDD       X4, X0, X0
	VPSHUFD      $0xEE, X0, X4
	VPADDD       X4, X0, X0
	VPSHUFD      $0x55, X0, X4
	VPADDD       X4, X0, X0
	VMOVD        X0, AX
	MOVL         AX, (DI)

	VEXTRACTI128 $1, Y1, X4
	VPADDD       X4, X1, X1
	VPSHUFD      $0xEE, X1, X4
	VPADDD       X4, X1, X1
	VPSHUFD      $0x55, X1, X4
	VPADDD       X4, X1, X1
	VMOVD        X1, AX
	MOVL         AX, 4(DI)

	VEXTRACTI128 $1, Y2, X4
	VPADDD       X4, X2, X2
	VPSHUFD      $0xEE, X2, X4
	VPADDD       X4, X2, X2
	VPSHUFD      $0x55, X2, X4
	VPADDD       X4, X2, X2
	VMOVD        X2, AX
	MOVL         AX, 8(DI)

	VEXTRACTI128 $1, Y3, X4
	VPADDD       X4, X3, X3
	VPSHUFD      $0xEE, X3, X4
	VPADDD       X4, X3, X3
	VPSHUFD      $0x55, X3, X4
	VPADDD       X4, X3, X3
	VMOVD        X3, AX
	MOVL         AX, 12(DI)

	VZEROUPPER
	RET
