package nn

import (
	"math"
	"math/rand"
	"testing"
)

// relErr32 returns |a-b| / max(1, |b|).
func relErr32(a float32, b float64) float64 {
	d := math.Abs(float64(a) - b)
	m := math.Abs(b)
	if m < 1 {
		m = 1
	}
	return d / m
}

func toF32(xs []float64) []float32 {
	ys := make([]float32, len(xs))
	for i, v := range xs {
		ys[i] = float32(v)
	}
	return ys
}

// eachKernel runs fn under both the AVX2 assembly kernel (when the host
// supports it) and the portable scalar kernel, so every parity test covers
// both code paths.
func eachKernel(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	defer SetScalarGemmForTest(SetScalarGemmForTest(false))
	t.Run("native", fn)
	SetScalarGemmForTest(true)
	t.Run("scalar", fn)
}

// TestPackedF32GemmParity checks the tiled f32 GEMM against the float64
// Linear reference over shapes that exercise every tile tail: non-multiple-
// of-tile rows and outputs, batch=1, and zero-row batches.
func TestPackedF32GemmParity(t *testing.T) {
	eachKernel(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 8, 13} {
			for _, out := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17} {
				for _, in := range []int{1, 3, 8, 33} {
					lin := NewLinear(in, out, rng)
					p := PackF32(out, lin.B.Value, []int{in}, lin.W.Value)
					xs := randRows(rng, rows, in)
					// Canary padding detects any store past rows*out.
					ys := make([]float32, rows*out+8)
					for i := range ys {
						ys[i] = 12345
					}
					p.Gemm(toF32(xs), rows, in, ys)
					for i := rows * out; i < len(ys); i++ {
						if ys[i] != 12345 {
							t.Fatalf("rows=%d out=%d in=%d: kernel wrote past end at %d", rows, out, in, i)
						}
					}
					for r := 0; r < rows; r++ {
						want := lin.Forward(xs[r*in : (r+1)*in])
						for o, w := range want {
							if e := relErr32(ys[r*out+o], w); e > 1e-5 {
								t.Fatalf("rows=%d out=%d in=%d: y[%d][%d]=%v want %v (rel err %g)",
									rows, out, in, r, o, ys[r*out+o], w, e)
							}
						}
					}
				}
			}
		}
	})
}

// TestPackedF32GemmKPrefix checks that restricting the GEMM to a K-prefix of
// a concatenated panel matches a GEMM over the first matrix alone — the
// property the tree convolution's leaf kernel relies on.
func TestPackedF32GemmKPrefix(t *testing.T) {
	eachKernel(t, testPackedF32GemmKPrefix)
}

func testPackedF32GemmKPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const out, in = 6, 9
	ep := randRows(rng, out, in)
	el := randRows(rng, out, in)
	er := randRows(rng, out, in)
	bias := randRows(rng, 1, out)
	full := PackF32(out, bias, []int{in, in, in}, ep, el, er)
	solo := PackF32(out, bias, []int{in}, ep)
	xs := toF32(randRows(rng, 5, in))
	got := make([]float32, 5*out)
	want := make([]float32, 5*out)
	full.Gemm(xs, 5, in, got)
	solo.Gemm(xs, 5, in, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("K-prefix GEMM diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestMLPF32Parity checks the packed float32 MLP against the float64
// reference within 1e-5 relative, including layer norm.
func TestMLPF32Parity(t *testing.T) {
	eachKernel(t, testMLPF32Parity)
}

func testMLPF32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, useNorm := range []bool{false, true} {
		m := NewMLP([]int{13, 32, 17, 1}, useNorm, rng)
		m32 := NewMLPF32(m)
		var a Arena32
		var a64 Arena
		for _, rows := range []int{0, 1, 3, 8} {
			xs := randRows(rng, rows, 13)
			a.Reset()
			a64.Reset()
			got := m32.ForwardBatch(toF32(xs), rows, &a)
			want := m.ForwardBatch(xs, rows, &a64)
			for i := range want {
				if e := relErr32(got[i], want[i]); e > 1e-5 {
					t.Fatalf("norm=%v rows=%d: out[%d]=%v want %v (rel err %g)", useNorm, rows, i, got[i], want[i], e)
				}
			}
		}
	}
}

// observersFor allocates the per-layer, per-channel observer slices for a
// packed MLP.
func observersFor(m32 *MLPF32) [][]float32 {
	obs := make([][]float32, len(m32.Lins))
	for i := range m32.Lins {
		obs[i] = make([]float32, m32.Lins[i].K)
	}
	return obs
}

// TestMLPF32Observe checks the calibration observer records per-layer,
// per-channel input absmax.
func TestMLPF32Observe(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewMLP([]int{4, 8, 1}, true, rng)
	m32 := NewMLPF32(m)
	var a Arena32
	xs := []float32{1, -3, 2, 0.5, 0, 0, -7, 1}
	obs := observersFor(m32)
	m32.ForwardBatchObserve(xs, 2, &a, obs)
	if want := []float32{1, 3, 7, 1}; obs[0][0] != want[0] || obs[0][1] != want[1] || obs[0][2] != want[2] || obs[0][3] != want[3] {
		t.Fatalf("obs[0] = %v, want %v (per-channel input absmax)", obs[0], want)
	}
	if AbsMaxF32(obs[1]) <= 0 {
		t.Fatalf("obs[1] = %v, want some channel > 0 (hidden activation absmax)", obs[1])
	}
}

// TestPackedI8Saturation checks extreme and denormal weights: per-channel
// quantization maps each row's absmax to exactly ±127 (no wraparound), and
// out-of-calibration activations clamp instead of wrapping.
func TestPackedI8Saturation(t *testing.T) {
	w := []float64{
		1e30, -1e30, 5e29, 0, // huge weights
		5e-324, -5e-324, 0, 0, // denormal weights
		0, 0, 0, 0, // all-zero row
	}
	bias := []float64{0, 0, 0}
	p := PackI8(3, bias, []int{4}, nil, w)
	// Row 0: absmax 1e30 → ±127 at the extremes, no wrap.
	if p.W[0*p.Kp+0] != 127 || p.W[0*p.Kp+1] != -127 {
		t.Fatalf("extreme weights quantized to %d,%d want 127,-127", p.W[0*p.Kp+0], p.W[0*p.Kp+1])
	}
	// Row 1: denormal absmax still maps its own extremes to ±127 — the
	// normalise-then-scale order avoids the underflow of absmax/127.
	if p.W[1*p.Kp+0] != 127 || p.W[1*p.Kp+1] != -127 {
		t.Fatalf("denormal weights quantized to %d,%d want 127,-127", p.W[1*p.Kp+0], p.W[1*p.Kp+1])
	}
	// Row 2: all-zero row gets scale 1 and zero weights.
	if p.Scale[2] != 1 {
		t.Fatalf("all-zero row scale = %v, want 1", p.Scale[2])
	}
	// Activation clamp: quantizing values far beyond the calibrated scale
	// saturates at ±127, and the padded gutter stays zero.
	dst := make([]int8, PadI8(2))
	for i := range dst {
		dst[i] = 99
	}
	QuantizeRows(dst, []float32{1e20, -1e20}, 1, 2, []float32{127, 127})
	if dst[0] != 127 || dst[1] != -127 {
		t.Fatalf("activation clamp got %d,%d want 127,-127", dst[0], dst[1])
	}
	for i := 2; i < len(dst); i++ {
		if dst[i] != 0 {
			t.Fatalf("padding gutter dst[%d] = %d, want 0", i, dst[i])
		}
	}
}

// TestPackedI8GemmParity checks the int8 GEMM against an exact integer
// reference (the quantized dot products in int32 are exact, so the kernel
// must match to the last bit) over block-tail shapes and K-prefix use,
// under both the AVX2 and the scalar kernel. The {21,7} shape restricts the
// GEMM to a K-prefix mid-row, where the zeroed activation gutter is what
// keeps the out-of-prefix weights from leaking into the sums.
func TestPackedI8GemmParity(t *testing.T) {
	eachKernel(t, testPackedI8GemmParity)
}

func testPackedI8GemmParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, rows := range []int{0, 1, 2, 3, 5, 8} {
		for _, out := range []int{1, 3, 4, 6, 9} {
			for _, shape := range [][2]int{{7, 7}, {16, 16}, {33, 33}, {21, 7}} {
				in, kUsed := shape[0], shape[1]
				w := randRows(rng, out, in)
				bias := randRows(rng, 1, out)
				chanAbs := make([]float32, in)
				for i := range chanAbs {
					chanAbs[i] = 0.5 + rng.Float32()
				}
				p := PackI8(out, bias, []int{in}, chanAbs, w)
				kq := PadI8(kUsed)
				xq := make([]int8, rows*kq)
				for i := range xq {
					xq[i] = int8(rng.Intn(255) - 127)
				}
				for r := 0; r < rows; r++ {
					for k := kUsed; k < kq; k++ {
						xq[r*kq+k] = 0
					}
				}
				ys := make([]float32, rows*out)
				p.Gemm(xq, rows, kUsed, ys)
				for r := 0; r < rows; r++ {
					for o := 0; o < out; o++ {
						var acc int32
						for k := 0; k < kUsed; k++ {
							acc += int32(xq[r*kq+k]) * int32(p.W[o*p.Kp+k])
						}
						want := p.Bias[o] + float32(acc)*p.Scale[o]
						if ys[r*out+o] != want {
							t.Fatalf("rows=%d out=%d in=%d kUsed=%d: y[%d][%d]=%v want %v",
								rows, out, in, kUsed, r, o, ys[r*out+o], want)
						}
					}
				}
			}
		}
	}
}

// TestMLPI8Quality checks the quantized MLP tracks the float64 reference
// within the documented calibrated bound on in-calibration inputs.
func TestMLPI8Quality(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMLP([]int{13, 32, 17, 1}, true, rng)
	m32 := NewMLPF32(m)
	const rows = 16
	xs := randRows(rng, rows, 13)
	// Calibrate on the same distribution.
	var a Arena32
	obs := observersFor(m32)
	m32.ForwardBatchObserve(toF32(xs), rows, &a, obs)
	m8 := NewMLPI8(m, obs)
	var qa ArenaI8
	a.Reset()
	got := m8.ForwardBatch(toF32(xs), rows, &a, &qa)
	var a64 Arena
	want := m.ForwardBatch(xs, rows, &a64)
	for i := range want {
		if e := relErr32(got[i], want[i]); e > 0.05 {
			t.Fatalf("int8 out[%d]=%v want %v (rel err %g beyond calibrated bound)", i, got[i], want[i], e)
		}
	}
}

func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	const rows, out, in = 256, 32, 96
	lin := NewLinear(in, out, rng)
	xs := randRows(rng, rows, in)
	xs32 := toF32(xs)
	b.Run("f64-batch", func(b *testing.B) {
		var a Arena
		for i := 0; i < b.N; i++ {
			a.Reset()
			lin.ForwardBatch(xs, rows, &a)
		}
	})
	b.Run("f32-panels", func(b *testing.B) {
		p := PackF32(out, lin.B.Value, []int{in}, lin.W.Value)
		ys := make([]float32, rows*out)
		for i := 0; i < b.N; i++ {
			p.Gemm(xs32, rows, in, ys)
		}
	})
	b.Run("int8-panels", func(b *testing.B) {
		chanAbs := make([]float32, in)
		inv := make([]float32, in)
		AbsMaxCols(xs32, rows, in, chanAbs)
		for i, a := range chanAbs {
			inv[i] = 127 / a
		}
		p := PackI8(out, lin.B.Value, []int{in}, chanAbs, lin.W.Value)
		xq := make([]int8, rows*PadI8(in))
		QuantizeRows(xq, xs32, rows, in, inv)
		ys := make([]float32, rows*out)
		for i := 0; i < b.N; i++ {
			p.Gemm(xq, rows, in, ys)
		}
	})
}
