// Package serve implements the neo-serve daemon: an HTTP front end over a
// trained pkg/neo System that serves plans from the value-network snapshot
// and plan cache. It runs in two modes.
//
// Standalone (Config.Replica nil) is the original online-learning daemon:
// /feedback latencies land in the local experience pool, the value network
// retrains in the background every N feedbacks (publishing new weights with
// an atomic snapshot swap that invalidates the plan cache), and the learned
// state is checkpointed periodically and on graceful shutdown — so a warm
// restart serves bit-identical plans.
//
// Replica (Config.Replica set) is the serving half of the distributed tier:
// the daemon scores from a read-only snapshot it pulls from a neo-trainer,
// never trains, and forwards /feedback experience to the trainer in batched,
// CRC-checked containers with retry/timeout/backoff — a dead trainer
// degrades the replica to frozen-snapshot serving, never to failed requests.
// Snapshot loads arrive via POST /admin/snapshot (driven by the trainer's
// rollout coordinator: canary one replica, compare /stats plan quality,
// promote fleet-wide). See OPERATIONS.md for the deployment guide.
//
// Endpoints:
//
//	POST /optimize        {query spec}              -> chosen plan
//	POST /feedback        {query spec, latency_ms}  -> experience/queue status
//	GET  /stats                                     -> serving counters
//	GET  /healthz                                   -> 200 ok
//	POST /admin/snapshot  {version}                 -> load a published snapshot (replica mode)
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neo/internal/cluster/proto"
	"neo/internal/core"
	"neo/pkg/neo"
)

// Config tunes the daemon.
type Config struct {
	// CheckpointPath is where checkpoints are written (atomically, via temp
	// file + rename). Empty disables checkpointing.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval started by Start.
	// Zero disables the loop (shutdown still checkpoints).
	CheckpointEvery time.Duration
	// RetrainEvery triggers a background retraining round after every N
	// feedbacks. Zero disables automatic retraining. Rounds never queue: a
	// trigger arriving while a round is in flight is skipped (its feedback
	// is in the experience and will be picked up by the next round).
	RetrainEvery int
	// MaxExperience bounds the experience pool: when a feedback pushes the
	// pool past the limit, the oldest entries are dropped. This keeps a
	// long-running daemon's memory and checkpoint size bounded (checkpoints
	// refuse to load implausibly large experience sections). Zero selects
	// the default (100 000); negative disables trimming.
	MaxExperience int
	// Replica switches the daemon into replica mode: feedback is forwarded
	// to the configured trainer instead of training locally, and snapshots
	// arrive via /admin/snapshot. RetrainEvery is forced to zero — replicas
	// never train. Nil selects the standalone online-learning mode.
	Replica *ReplicaConfig
}

// defaultMaxExperience bounds the experience pool when Config.MaxExperience
// is zero — far below the checkpoint loader's hard limit, far above what a
// retraining round can consume (core caps training samples anyway).
const defaultMaxExperience = 100_000

// Server is the daemon. Create one with New, expose it as an http.Handler,
// call Start for the periodic checkpoint loop and Close on shutdown.
type Server struct {
	sys   *neo.System
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	optimizes   atomic.Uint64
	feedbacks   atomic.Uint64
	retrains    atomic.Uint64
	checkpoints atomic.Uint64
	retraining  atomic.Bool
	lastLoss    atomic.Uint64 // float64 bits

	// ckptMu serializes Checkpoint calls (periodic loop vs shutdown).
	ckptMu sync.Mutex

	// swapMu orders snapshot loads against in-flight planning: /optimize and
	// /feedback searches hold the read side, a replica's /admin/snapshot load
	// (which replaces the network weights in place) holds the write side. In
	// standalone mode the write side is never taken — retraining swaps are
	// already atomic-pointer safe — so the RLock cost is a single uncontended
	// atomic per request.
	swapMu sync.RWMutex

	// repl is the replica-mode state (forwarding queue, trainer client,
	// quality window); nil in standalone mode.
	repl *replicaState

	// lifeMu guards closed and orders wg.Add against Close's wg.Wait: a
	// handler still in flight after the HTTP drain times out must not Add to
	// a WaitGroup another goroutine is Waiting on from zero.
	lifeMu sync.Mutex
	closed bool

	wg   sync.WaitGroup
	stop chan struct{}
	once sync.Once
}

// New creates a server over an assembled (and typically bootstrapped or
// checkpoint-restored) system.
func New(sys *neo.System, cfg Config) *Server {
	if cfg.MaxExperience == 0 {
		cfg.MaxExperience = defaultMaxExperience
	}
	if cfg.Replica != nil {
		// Replicas never train: their weights come exclusively from trainer
		// snapshots, so local retraining would fork the fleet's model state.
		cfg.RetrainEvery = 0
	}
	s := &Server{sys: sys, cfg: cfg, mux: http.NewServeMux(), start: time.Now(), stop: make(chan struct{})}
	s.mux.HandleFunc("POST /optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if cfg.Replica != nil {
		s.repl = newReplicaState(*cfg.Replica)
		s.mux.HandleFunc("POST /admin/snapshot", s.handleAdminSnapshot)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Start launches the background loops: the periodic checkpoint loop (when a
// path and interval are configured) and, in replica mode, the experience
// forwarder.
func (s *Server) Start() {
	if s.cfg.CheckpointPath != "" && s.cfg.CheckpointEvery > 0 {
		s.goRun(func() {
			ticker := time.NewTicker(s.cfg.CheckpointEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					s.Checkpoint() // best effort; failures surface in /stats staying flat
				case <-s.stop:
					return
				}
			}
		})
	}
	if s.repl != nil {
		s.goRun(func() { s.repl.forwardLoop(s.stop) })
	}
}

// goRun registers fn with the lifecycle WaitGroup and runs it in a
// goroutine, refusing (silently) once shutdown has begun.
func (s *Server) goRun(fn func()) {
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return
	}
	s.wg.Add(1)
	s.lifeMu.Unlock()
	go func() {
		defer s.wg.Done()
		fn()
	}()
}

// Close stops the background loops, waits for any in-flight retraining
// round's bookkeeping, drains a replica's forwarding queue to the trainer,
// and writes a final checkpoint — the graceful-shutdown half of the serve
// lifecycle. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		s.lifeMu.Lock()
		s.closed = true
		s.lifeMu.Unlock()
		close(s.stop)
		s.wg.Wait()
		if s.repl != nil {
			// Final flush: queued experience a dying replica holds is the
			// trainer's training signal — hand it over, don't drop it.
			s.repl.drain()
		}
		err = s.Checkpoint()
	})
	return err
}

// Checkpoint writes the system's learned state to the configured path,
// atomically. It briefly pauses retraining rounds; serving keeps running.
func (s *Server) Checkpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if err := s.sys.SaveCheckpointFile(s.cfg.CheckpointPath); err != nil {
		return err
	}
	s.checkpoints.Add(1)
	return nil
}

// The JSON wire types are owned by the cluster protocol package, so the
// router, the trainer's coordinator and pkg/neo.Client speak exactly the
// format this daemon serves. The aliases keep the serve API unchanged.
type (
	// QuerySpec is the JSON representation of a query.
	QuerySpec = proto.QuerySpec
	// JoinSpec is one equi-join predicate.
	JoinSpec = proto.JoinSpec
	// PredicateSpec is one single-table filter.
	PredicateSpec = proto.PredicateSpec
	// OptimizeResponse is the /optimize reply.
	OptimizeResponse = proto.OptimizeResponse
	// FeedbackRequest reports the observed latency of a query's plan.
	FeedbackRequest = proto.FeedbackRequest
	// FeedbackResponse is the /feedback reply.
	FeedbackResponse = proto.FeedbackResponse
)

var cmpOps = map[string]neo.CmpOp{
	"=": neo.Eq, "==": neo.Eq, "<>": neo.Ne, "!=": neo.Ne,
	"<": neo.Lt, "<=": neo.Le, ">": neo.Gt, ">=": neo.Ge,
	"like": neo.Like,
}

// buildQuery validates the spec against the catalog and converts it.
func (s *Server) buildQuery(spec *QuerySpec) (*neo.Query, error) {
	joins := make([]neo.JoinPredicate, len(spec.Joins))
	for i, j := range spec.Joins {
		lt, lc, err := splitColumnRef(j.Left)
		if err != nil {
			return nil, fmt.Errorf("joins[%d].left: %w", i, err)
		}
		rt, rc, err := splitColumnRef(j.Right)
		if err != nil {
			return nil, fmt.Errorf("joins[%d].right: %w", i, err)
		}
		joins[i] = neo.JoinPredicate{LeftTable: lt, LeftColumn: lc, RightTable: rt, RightColumn: rc}
	}
	preds := make([]neo.Predicate, len(spec.Predicates))
	for i, p := range spec.Predicates {
		table, column, err := splitColumnRef(p.Column)
		if err != nil {
			return nil, fmt.Errorf("predicates[%d].column: %w", i, err)
		}
		op, ok := cmpOps[strings.ToLower(p.Op)]
		if !ok {
			return nil, fmt.Errorf("predicates[%d]: unknown op %q", i, p.Op)
		}
		value, err := parseValue(p.Value)
		if err != nil {
			return nil, fmt.Errorf("predicates[%d].value: %w", i, err)
		}
		preds[i] = neo.Predicate{Table: table, Column: column, Op: op, Value: value}
	}
	q := neo.NewQuery(spec.ID, spec.Relations, joins, preds)
	// The internal query ID is always the structural signature: experience,
	// baselines and encoding caches key on the ID, and client-supplied IDs
	// are not guaranteed unique per structure — two different queries under
	// one reused ID would silently cross-contaminate training targets. The
	// client's ID is echoed back in responses only.
	q.ID = q.Signature()
	if err := q.Validate(s.sys.Catalog); err != nil {
		return nil, err
	}
	return q, nil
}

func splitColumnRef(ref string) (table, column string, err error) {
	parts := strings.SplitN(ref, ".", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", fmt.Errorf("column reference %q is not of the form table.column", ref)
	}
	return parts[0], parts[1], nil
}

func parseValue(raw json.RawMessage) (neo.Value, error) {
	var i int64
	if err := json.Unmarshal(raw, &i); err == nil {
		return neo.IntValue(i), nil
	}
	var str string
	if err := json.Unmarshal(raw, &str); err == nil {
		return neo.StringValue(str), nil
	}
	return neo.Value{}, fmt.Errorf("value %s is neither an integer nor a string", string(raw))
}

// optimizeStable plans q and returns the network version the plan was served
// from. A background snapshot swap can race the search; in that case the
// search is retried so the reported version really is the plan's version.
// After a few retries (swaps arriving faster than searches complete — not a
// realistic steady state) the latest attempt is returned labelled with its
// pre-search version, which the plan is at least as new as. The read side of
// swapMu keeps a replica's in-place snapshot load from replacing weights
// mid-search.
func (s *Server) optimizeStable(q *neo.Query) (*neo.Plan, *neo.SearchResult, uint64, error) {
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	for attempt := 0; ; attempt++ {
		v := s.sys.Neo.NetVersion()
		p, res, err := s.sys.Optimize(q)
		if err != nil {
			return nil, nil, 0, err
		}
		if s.sys.Neo.NetVersion() == v || attempt >= 2 {
			return p, res, v, nil
		}
	}
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var spec QuerySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding query: %w", err))
		return
	}
	q, err := s.buildQuery(&spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, res, version, err := s.optimizeStable(q)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.optimizes.Add(1)
	id := spec.ID
	if id == "" {
		id = q.ID
	}
	writeJSON(w, OptimizeResponse{
		ID:         id,
		Plan:       p.String(),
		SQL:        q.SQL(),
		Score:      res.Score,
		Expansions: res.Expansions,
		NetVersion: version,
	})
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding feedback: %w", err))
		return
	}
	if req.LatencyMS <= 0 || math.IsNaN(req.LatencyMS) || math.IsInf(req.LatencyMS, 0) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("latency_ms must be a positive finite number"))
		return
	}
	q, err := s.buildQuery(&req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Fast-path rejection for obviously stale feedback: after a snapshot
	// swap the plan cache is empty, so running the search first would spend
	// a full expansion budget on a request that gets a 409 anyway. The
	// definitive check against the served plan's version stays below.
	if req.NetVersion != 0 && req.NetVersion != s.sys.Neo.NetVersion() {
		httpError(w, http.StatusConflict, fmt.Errorf(
			"stale feedback: plan was measured under net version %d but plans are now served from version %d; re-optimize and re-measure",
			req.NetVersion, s.sys.Neo.NetVersion()))
		return
	}
	// Attach the latency to the plan currently served for this query — a
	// plan-cache hit in the common case, so feedback costs no search.
	p, _, version, err := s.optimizeStable(q)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if req.NetVersion != 0 && req.NetVersion != version {
		httpError(w, http.StatusConflict, fmt.Errorf(
			"stale feedback: plan was measured under net version %d but plans are now served from version %d; re-optimize and re-measure",
			req.NetVersion, version))
		return
	}
	// Route-regret accounting: a measured latency for a fast-path-routed
	// class is compared against the value net's estimate for the full
	// search's plan (a no-op outside auto routing, in both modes below).
	s.sys.Neo.ObserveLatency(q, req.LatencyMS)
	if s.repl != nil {
		// Replica path: the entry goes to the trainer, not a local pool. The
		// quality window feeds the rollout coordinator's canary comparison.
		s.feedbacks.Add(1)
		s.repl.recordLatency(req.LatencyMS)
		entry := core.Entry{Query: q, Plan: p, Latency: req.LatencyMS}
		depth, queued := s.repl.enqueue(entry)
		if !queued {
			// The shutdown drain already ran; forward this straggler directly
			// (best effort) rather than silently discarding an accepted
			// request's experience.
			s.repl.forwardNow(r.Context(), []core.Entry{entry})
		}
		writeJSON(w, FeedbackResponse{Experience: depth, Queued: true})
		return
	}
	s.sys.Neo.Experience.Add(q, p, req.LatencyMS)
	if s.cfg.MaxExperience > 0 && s.sys.Neo.Experience.Len() > s.cfg.MaxExperience {
		s.sys.Neo.Experience.Trim(s.cfg.MaxExperience)
	}
	count := s.feedbacks.Add(1)
	triggered := false
	if s.cfg.RetrainEvery > 0 && count%uint64(s.cfg.RetrainEvery) == 0 {
		triggered = s.triggerRetrain()
	}
	writeJSON(w, FeedbackResponse{
		Experience:       s.sys.Neo.Experience.Len(),
		RetrainTriggered: triggered,
	})
}

// triggerRetrain starts a background retraining round unless one is already
// in flight. When the round finishes the new network snapshot has been
// swapped in atomically (invalidating the plan cache on its next lookup) and
// the final loss lands in /stats.
func (s *Server) triggerRetrain() bool {
	if !s.retraining.CompareAndSwap(false, true) {
		return false
	}
	// Register with the lifecycle WaitGroup before starting the round, and
	// refuse if shutdown has begun: a late feedback must not race Close's
	// wg.Wait or start training the daemon is about to checkpoint away.
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		s.retraining.Store(false)
		return false
	}
	s.wg.Add(1)
	s.lifeMu.Unlock()
	done := s.sys.RetrainAsync()
	go func() {
		defer s.wg.Done()
		loss := <-done
		s.lastLoss.Store(math.Float64bits(loss))
		s.retrains.Add(1)
		s.retraining.Store(false)
	}()
	return true
}

// Stats is the /stats reply.
type Stats struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	NetVersion    uint64             `json:"net_version"`
	Experience    int                `json:"experience"`
	Optimizes     uint64             `json:"optimizes"`
	Feedbacks     uint64             `json:"feedbacks"`
	Retrains      uint64             `json:"retrains"`
	Retraining    bool               `json:"retraining"`
	LastTrainLoss float64            `json:"last_train_loss"`
	Checkpoints   uint64             `json:"checkpoints"`
	PlanCache     neo.PlanCacheStats `json:"plan_cache"`
	// Fusion reports the cross-request inference scheduler shared by all
	// in-flight /optimize searches: fused_batches counts forward passes that
	// carried submissions from two or more searches, avg_fused_size the mean
	// submissions per pass. All-zero (enabled=false) when the system was
	// opened without fused scoring.
	Fusion neo.FusionStats `json:"fusion"`
	// Snapshot reports the serving snapshot's scoring precision and memory
	// footprint: "float64" is the exact training format, "float32"/"int8"
	// are the packed inference-kernel formats converted once per snapshot
	// publication (see the -score-precision flag). An int8 deployment shows
	// "float32" until a retrain gives it calibration material.
	Snapshot neo.SnapshotInfo `json:"snapshot"`
	// Storage reports the disk backend's buffer-pool counters — hit rate,
	// evictions, bytes read from the heap files. Omitted (nil) when the
	// system runs a simulated engine, which touches no storage.
	Storage *neo.StorageStats `json:"storage,omitempty"`
	// Cluster reports the replica-mode state — forwarding queue, trainer
	// link health, plan-quality window. Omitted (nil) in standalone mode.
	Cluster *proto.ClusterStats `json:"cluster,omitempty"`
	// Routing reports the query router's per-class decision counters,
	// fast-path planning-latency percentiles (µs) and regret accounting.
	// Omitted (nil) when routing is "full" (the default), where every query
	// takes the full search and there is nothing to report.
	Routing *neo.RouteStats `json:"routing,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.snapshotStats())
}

func (s *Server) snapshotStats() Stats {
	var storagePtr *neo.StorageStats
	if st, ok := s.sys.StorageStats(); ok {
		storagePtr = &st
	}
	var clusterPtr *proto.ClusterStats
	if s.repl != nil {
		cs := s.repl.clusterStats(s.sys.Neo.NetVersion())
		clusterPtr = &cs
	}
	var routingPtr *neo.RouteStats
	if rs := s.sys.RouteStats(); rs.Mode != "full" {
		routingPtr = &rs
	}
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		NetVersion:    s.sys.Neo.NetVersion(),
		Experience:    s.sys.Neo.Experience.Len(),
		Optimizes:     s.optimizes.Load(),
		Feedbacks:     s.feedbacks.Load(),
		Retrains:      s.retrains.Load(),
		Retraining:    s.retraining.Load(),
		LastTrainLoss: math.Float64frombits(s.lastLoss.Load()),
		Checkpoints:   s.checkpoints.Load(),
		PlanCache:     s.sys.PlanCacheStats(),
		Fusion:        s.sys.FusionStats(),
		Snapshot:      s.sys.SnapshotInfo(),
		Storage:       storagePtr,
		Cluster:       clusterPtr,
		Routing:       routingPtr,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
