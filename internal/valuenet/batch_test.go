package valuenet

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"neo/internal/treeconv"
)

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randTree(rng *rand.Rand, n, dim int) *treeconv.Tree {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return treeconv.NewLeaf(randVec(rng, dim))
	}
	nl := rng.Intn(n)
	return treeconv.NewNode(randVec(rng, dim), randTree(rng, nl, dim), randTree(rng, n-1-nl, dim))
}

func randForest(rng *rand.Rand, dim int) []*treeconv.Tree {
	trees := rng.Intn(4) // 0..3 trees; 0 exercises the empty-forest path
	out := make([]*treeconv.Tree, 0, trees)
	for i := 0; i < trees; i++ {
		out = append(out, randTree(rng, 1+rng.Intn(11), dim))
	}
	return out
}

// TestPredictBatchMatchesPredict is the batched-vs-sequential parity property
// test: over random networks, random forests (including empty ones), shared
// and distinct query vectors, PredictBatch must equal per-sample Predict to
// within 1e-9.
func TestPredictBatchMatchesPredict(t *testing.T) {
	const queryDim, planDim = 9, 7
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Seed = seed + 100
		net := New(queryDim, planDim, cfg)
		// Exercise a non-trivial target transform.
		net.FitTargetTransform([]float64{1, 10, 100, 1000, 12345})

		const batch = 33
		queries := make([][]float64, batch)
		forests := make([][]*treeconv.Tree, batch)
		shared := randVec(rng, queryDim) // most rows share one query, as in search
		for i := range queries {
			if i%5 == 4 {
				queries[i] = randVec(rng, queryDim)
			} else {
				queries[i] = shared
			}
			forests[i] = randForest(rng, planDim)
		}

		got := net.PredictBatch(queries, forests)
		if len(got) != batch {
			t.Fatalf("seed %d: PredictBatch returned %d results, want %d", seed, len(got), batch)
		}
		for i := range got {
			want := net.Predict(queries[i], forests[i])
			if math.Abs(got[i]-want) > 1e-9 {
				t.Errorf("seed %d sample %d: batch %v != sequential %v (diff %g)",
					seed, i, got[i], want, math.Abs(got[i]-want))
			}
		}

		gotN := net.PredictBatchNormalized(queries, forests)
		for i := range gotN {
			want := net.PredictNormalized(queries[i], forests[i])
			if math.Abs(gotN[i]-want) > 1e-9 {
				t.Errorf("seed %d sample %d (normalized): batch %v != sequential %v", seed, i, gotN[i], want)
			}
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	net := New(4, 3, DefaultConfig())
	if out := net.PredictBatch(nil, nil); out != nil {
		t.Fatalf("PredictBatch(nil) = %v, want nil", out)
	}
}

// TestPredictBatchConcurrent exercises the scratch pool under concurrent use
// (PlanAll plans independent queries over one shared network); run with -race
// to detect unsynchronised state.
func TestPredictBatchConcurrent(t *testing.T) {
	const queryDim, planDim = 6, 5
	net := New(queryDim, planDim, DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	queries := make([][]float64, 16)
	forests := make([][]*treeconv.Tree, 16)
	for i := range queries {
		queries[i] = randVec(rng, queryDim)
		forests[i] = randForest(rng, planDim)
	}
	want := net.PredictBatch(queries, forests)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got := net.PredictBatch(queries, forests)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("concurrent PredictBatch diverged at %d: %v != %v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
