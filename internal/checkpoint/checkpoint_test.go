package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"neo/internal/core"
	"neo/internal/embedding"
	"neo/internal/nn"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/storage"
	"neo/internal/treeconv"
	"neo/internal/valuenet"
)

const queryDim, planDim = 12, 9

func smallNetConfig(seed int64) valuenet.Config {
	return valuenet.Config{
		QueryLayers:  []int{8, 4},
		TreeChannels: []int{6, 4},
		HeadLayers:   []int{4},
		LearningRate: 1e-3,
		UseLayerNorm: true,
		Seed:         seed,
	}
}

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randForest(rng *rand.Rand) []*treeconv.Tree {
	return []*treeconv.Tree{treeconv.NewNode(randVec(rng, planDim),
		treeconv.NewLeaf(randVec(rng, planDim)),
		treeconv.NewNode(randVec(rng, planDim),
			treeconv.NewLeaf(randVec(rng, planDim)),
			treeconv.NewLeaf(randVec(rng, planDim))))}
}

// trainedNet builds a network and takes a few optimizer steps so the Adam
// moments and target transform are non-trivial.
func trainedNet(t *testing.T, seed int64) *valuenet.Network {
	t.Helper()
	net := valuenet.New(queryDim, planDim, smallNetConfig(seed))
	rng := rand.New(rand.NewSource(7))
	var samples []valuenet.Sample
	for i := 0; i < 8; i++ {
		samples = append(samples, valuenet.Sample{
			Query:  randVec(rng, queryDim),
			Plan:   randForest(rng),
			Target: math.Exp(rng.Float64() * 6),
		})
	}
	costs := make([]float64, len(samples))
	for i, s := range samples {
		costs[i] = s.Target
	}
	net.FitTargetTransform(costs)
	for i := 0; i < 3; i++ {
		net.TrainBatch(samples)
	}
	return net
}

func TestMLPSaveLoadBitIdentical(t *testing.T) {
	src := nn.NewMLP([]int{6, 8, 3}, true, rand.New(rand.NewSource(1)))
	dst := nn.NewMLP([]int{6, 8, 3}, true, rand.New(rand.NewSource(99)))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Value {
			if sp[i].Value[j] != dp[i].Value[j] {
				t.Fatalf("param %s[%d] differs after round trip", sp[i].Name, j)
			}
		}
	}
}

func TestMLPLoadRejectsArchitectureMismatch(t *testing.T) {
	src := nn.NewMLP([]int{6, 8, 3}, true, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := nn.NewMLP([]int{6, 7, 3}, true, rand.New(rand.NewSource(1)))
	if err := dst.Load(&buf); err == nil {
		t.Fatal("loading a 6-8-3 MLP into a 6-7-3 MLP should fail")
	}
}

func TestTreeconvStackSaveLoadBitIdentical(t *testing.T) {
	src := treeconv.NewStack([]int{5, 7, 3}, rand.New(rand.NewSource(2)))
	dst := treeconv.NewStack([]int{5, 7, 3}, rand.New(rand.NewSource(77)))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Value {
			if sp[i].Value[j] != dp[i].Value[j] {
				t.Fatalf("param %s[%d] differs after round trip", sp[i].Name, j)
			}
		}
	}
}

func TestNetworkSaveLoadPredictsBitIdentical(t *testing.T) {
	src := trainedNet(t, 3)
	dst := valuenet.New(queryDim, planDim, smallNetConfig(31)) // different init
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 16; i++ {
		q := randVec(rng, queryDim)
		f := randForest(rng)
		a, b := src.Predict(q, f), dst.Predict(q, f)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("prediction %d differs after round trip: %v vs %v", i, a, b)
		}
	}
}

// TestNetworkSaveLoadResumesOptimizerTrajectory verifies the Adam state round
// trip: training the restored network must produce bit-identical weights to
// continuing the original, which only holds if step count and both moment
// vectors survived.
func TestNetworkSaveLoadResumesOptimizerTrajectory(t *testing.T) {
	src := trainedNet(t, 5)
	dst := valuenet.New(queryDim, planDim, smallNetConfig(50))
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var samples []valuenet.Sample
	for i := 0; i < 8; i++ {
		samples = append(samples, valuenet.Sample{
			Query:  randVec(rng, queryDim),
			Plan:   randForest(rng),
			Target: math.Exp(rng.Float64() * 6),
		})
	}
	for step := 0; step < 3; step++ {
		src.TrainBatch(samples)
		dst.TrainBatch(samples)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Value {
			if sp[i].Value[j] != dp[i].Value[j] {
				t.Fatalf("resumed training diverged at %s[%d]: %v vs %v",
					sp[i].Name, j, sp[i].Value[j], dp[i].Value[j])
			}
		}
	}
}

func testQuery(id string) *query.Query {
	return query.New(id,
		[]string{"a", "b"},
		[]query.JoinPredicate{{LeftTable: "a", LeftColumn: "id", RightTable: "b", RightColumn: "a_id"}},
		[]query.Predicate{
			{Table: "a", Column: "name", Op: query.Like, Value: storage.StringValue("x|weird\"chars")},
			{Table: "b", Column: "year", Op: query.Ge, Value: storage.IntValue(1990)},
		})
}

func testState(t *testing.T) *State {
	t.Helper()
	q1, q2 := testQuery("q1"), testQuery("q2")
	p1 := &plan.Plan{Query: q1, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin, plan.Leaf("a", plan.TableScan), plan.Leaf("b", plan.IndexScan)),
	}}
	p2 := &plan.Plan{Query: q2, Roots: []*plan.Node{
		plan.Join2(plan.MergeJoin, plan.Leaf("b", plan.TableScan), plan.Leaf("a", plan.TableScan)),
	}}
	emb := embedding.Train([][]string{
		{"a.name=x", "a.name=y", "b.year=1990"},
		{"a.name=x", "b.year=2000"},
	}, embedding.Config{Dim: 4, Epochs: 2, NegativeSamples: 2, LearningRate: 0.05, MinCount: 1, Seed: 9})
	return &State{
		Encoding:   "r-vector",
		NetVersion: 7,
		RNGSeed:    42,
		RNGDraws:   12345,
		TrainTime:  3 * time.Second,
		Net:        trainedNet(t, 21),
		Embedding:  emb,
		Experience: []core.Entry{
			{Query: q1, Plan: p1, Latency: 12.5},
			{Query: q1, Plan: p1, Latency: 11.25},
			{Query: q2, Plan: p2, Latency: 99},
		},
		Baselines: map[string]float64{"q1": 13, "q2": 101, "held-out": 55},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	st := testState(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	into := valuenet.New(queryDim, planDim, smallNetConfig(500))
	got, err := Load(bytes.NewReader(buf.Bytes()), into, "r-vector")
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoding != st.Encoding || got.NetVersion != st.NetVersion ||
		got.RNGSeed != st.RNGSeed || got.RNGDraws != st.RNGDraws || got.TrainTime != st.TrainTime {
		t.Fatalf("meta mismatch: %+v", got)
	}
	// Network predicts bit-identically.
	rng := rand.New(rand.NewSource(1))
	q, f := randVec(rng, queryDim), randForest(rng)
	if math.Float64bits(st.Net.Predict(q, f)) != math.Float64bits(into.Predict(q, f)) {
		t.Fatal("restored network predicts differently")
	}
	// Experience round-trips, with the shared query deduplicated to one
	// pointer.
	if len(got.Experience) != 3 {
		t.Fatalf("got %d entries, want 3", len(got.Experience))
	}
	for i, e := range st.Experience {
		g := got.Experience[i]
		if g.Query.ID != e.Query.ID || g.Latency != e.Latency ||
			g.Plan.Signature() != e.Plan.Signature() {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, g, e)
		}
		if g.Query.Signature() != e.Query.Signature() {
			t.Fatalf("entry %d query signature mismatch", i)
		}
	}
	if got.Experience[0].Query != got.Experience[1].Query {
		t.Fatal("entries of the same query should share one restored *Query")
	}
	if got.Experience[0].Plan.Query != got.Experience[0].Query {
		t.Fatal("restored plan should point at its restored query")
	}
	// Baselines, including IDs outside the experience.
	if len(got.Baselines) != 3 || got.Baselines["held-out"] != 55 || got.Baselines["q1"] != 13 {
		t.Fatalf("baselines mismatch: %v", got.Baselines)
	}
	// Embedding vectors round-trip bitwise.
	for _, tok := range []string{"a.name=x", "b.year=1990"} {
		want, ok1 := st.Embedding.Vector(tok)
		have, ok2 := got.Embedding.Vector(tok)
		if !ok1 || !ok2 {
			t.Fatalf("token %q missing after round trip", tok)
		}
		for d := range want {
			if want[d] != have[d] {
				t.Fatalf("embedding %q[%d] differs", tok, d)
			}
		}
	}
	if got.Embedding.Count("a.name=x") != st.Embedding.Count("a.name=x") {
		t.Fatal("embedding counts differ after round trip")
	}
}

func TestCheckpointBadMagic(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("NOTACKPTxxxxxxxxxxx")), trainedNet(t, 1), "")
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestCheckpointUnsupportedVersion(t *testing.T) {
	st := testState(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(Magic)] = 0xEE // format version field (little-endian low byte)
	_, err := Load(bytes.NewReader(data), valuenet.New(queryDim, planDim, smallNetConfig(1)), "")
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("err = %v, want ErrUnsupportedVersion", err)
	}
}

func TestCheckpointTruncated(t *testing.T) {
	st := testState(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, len(data) / 2, len(data) - 1} {
		_, err := Load(bytes.NewReader(data[:cut]), valuenet.New(queryDim, planDim, smallNetConfig(1)), "")
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestCheckpointCorrupt(t *testing.T) {
	st := testState(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF // flip a payload byte
	_, err := Load(bytes.NewReader(data), valuenet.New(queryDim, planDim, smallNetConfig(1)), "")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointArchitectureMismatch(t *testing.T) {
	st := testState(t)
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	cfg := smallNetConfig(1)
	cfg.TreeChannels = []int{6, 5} // different conv width
	_, err := Load(bytes.NewReader(buf.Bytes()), valuenet.New(queryDim, planDim, cfg), "")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
	// Different input dimensions too.
	_, err = Load(bytes.NewReader(buf.Bytes()), valuenet.New(queryDim+1, planDim, smallNetConfig(1)), "")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

// TestCheckpointEncodingMismatchLeavesNetworkUntouched pins the guard
// order: a wrong-encoding checkpoint is rejected before any weight is
// overwritten, even when the architectures happen to be identical.
func TestCheckpointEncodingMismatchLeavesNetworkUntouched(t *testing.T) {
	st := testState(t) // saved as "r-vector"
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	into := valuenet.New(queryDim, planDim, smallNetConfig(123))
	before := append([]float64(nil), into.Params()[0].Value...)
	_, err := Load(bytes.NewReader(buf.Bytes()), into, "histogram")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
	for i, v := range into.Params()[0].Value {
		if v != before[i] {
			t.Fatalf("weights mutated by a rejected load (index %d)", i)
		}
	}
}

func TestEmbeddingFileRoundTrip(t *testing.T) {
	emb := embedding.Train([][]string{{"t.c=a", "t.c=b"}, {"t.c=a", "t.c=c"}},
		embedding.Config{Dim: 3, Epochs: 2, NegativeSamples: 1, LearningRate: 0.05, MinCount: 1, Seed: 4})
	path := t.TempDir() + "/emb.ckpt"
	if err := SaveEmbeddingFile(path, emb); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEmbeddingFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.VocabSize() != emb.VocabSize() || got.Dim != emb.Dim {
		t.Fatalf("model shape mismatch: %d/%d vs %d/%d", got.VocabSize(), got.Dim, emb.VocabSize(), emb.Dim)
	}
	if got.Similarity("t.c=a", "t.c=b") != emb.Similarity("t.c=a", "t.c=b") {
		t.Fatal("similarities differ after round trip")
	}
}
