// Batched training primitives. The batch.go forward pass serves inference
// only (no tape); the routines here extend the same flattened row-major
// layout to training: ForwardBatchTape records every intermediate activation
// matrix so BackwardBatch can run one backward pass over the whole minibatch,
// accumulating parameter gradients row by row in sample order.
//
// Bit-parity contract: for any fixed row, every batched routine performs the
// same floating-point operations in the same order as its per-sample
// counterpart, and parameter gradients accumulate contributions in row order
// — exactly the order the per-sample training loop accumulates them. A
// parameter element therefore receives a bit-identical gradient from the
// batched backward pass and from per-sample Backward calls over the same
// rows.
package nn

// ShadowGrad returns a Param that shares p's value storage but owns a
// private, zeroed gradient buffer. Data-parallel gradient workers each
// backpropagate into a shadow of the network, then the per-shard gradients
// are reduced in deterministic shard order (see valuenet's TrainBatch).
func (p *Param) ShadowGrad() *Param {
	return &Param{Name: p.Name, Value: p.Value, Grad: make([]float64, len(p.Grad))}
}

// ShadowGrad returns a Linear sharing l's weights with private gradient
// buffers.
func (l *Linear) ShadowGrad() *Linear {
	return &Linear{In: l.In, Out: l.Out, W: l.W.ShadowGrad(), B: l.B.ShadowGrad()}
}

// ShadowGrad returns a LayerNorm sharing ln's parameters with private
// gradient buffers.
func (ln *LayerNorm) ShadowGrad() *LayerNorm {
	return &LayerNorm{Dim: ln.Dim, Gamma: ln.Gamma.ShadowGrad(), Beta: ln.Beta.ShadowGrad(), Eps: ln.Eps}
}

// ShadowGrad returns an MLP sharing m's weights with private gradient
// buffers. The activation is stateless and shared.
func (m *MLP) ShadowGrad() *MLP {
	s := &MLP{Act: m.Act}
	for _, l := range m.Linears {
		s.Linears = append(s.Linears, l.ShadowGrad())
	}
	for _, n := range m.Norms {
		if n != nil {
			s.Norms = append(s.Norms, n.ShadowGrad())
		} else {
			s.Norms = append(s.Norms, nil)
		}
	}
	return s
}

// MLPBatchTape records the intermediate activation matrices of one batched
// forward pass (the batch analogue of MLPTape). All storage is drawn from
// the arena passed to ForwardBatchTape and is valid until its next Reset.
type MLPBatchTape struct {
	rows    int
	inputs  [][]float64 // input matrix to each Linear (rows×In)
	preAct  [][]float64 // Linear outputs, pre-activation
	postAct [][]float64 // activation outputs (input to norm, if any)
	output  []float64
}

// Output returns the forward result (rows×outputDim, row-major).
func (t *MLPBatchTape) Output() []float64 { return t.output }

// Rows returns the number of rows the tape was recorded over.
func (t *MLPBatchTape) Rows() int { return t.rows }

// ForwardBatchTape runs the MLP over rows input rows, recording a tape for
// BackwardBatch. It performs the same operations as ForwardBatch (and, per
// row, the same operations as the per-sample Forward).
func (m *MLP) ForwardBatchTape(xs []float64, rows int, a *Arena) *MLPBatchTape {
	t := &MLPBatchTape{rows: rows}
	cur := xs
	last := len(m.Linears) - 1
	for i, lin := range m.Linears {
		t.inputs = append(t.inputs, cur)
		pre := lin.ForwardBatch(cur, rows, a)
		t.preAct = append(t.preAct, pre)
		if i == last {
			t.postAct = append(t.postAct, pre)
			cur = pre
			continue
		}
		act := m.Act.ForwardBatch(pre, a)
		t.postAct = append(t.postAct, act)
		if m.Norms[i] != nil {
			cur = m.Norms[i].ForwardBatch(act, rows, a)
		} else {
			cur = act
		}
	}
	t.output = cur
	return t
}

// BackwardBatch propagates the rows×Out gradient matrix through the taped
// forward pass, accumulating parameter gradients, and returns the rows×In
// gradient with respect to the inputs.
func (m *MLP) BackwardBatch(t *MLPBatchTape, gradOut []float64, a *Arena) []float64 {
	grad := gradOut
	last := len(m.Linears) - 1
	for i := last; i >= 0; i-- {
		if i != last {
			if m.Norms[i] != nil {
				grad = m.Norms[i].BackwardBatch(t.postAct[i], grad, t.rows, a)
			}
			grad = m.Act.BackwardBatch(t.preAct[i], grad, a)
		}
		grad = m.Linears[i].BackwardBatch(t.inputs[i], grad, t.rows, a)
	}
	return grad
}

// BackwardBatch accumulates parameter gradients for rows input rows and
// their output gradients, and returns the input-gradient matrix. Row r is
// processed exactly like Backward(x_r, gradOut_r), and parameter gradients
// accumulate in row order.
func (l *Linear) BackwardBatch(xs, gradOut []float64, rows int, a *Arena) []float64 {
	if len(xs) != rows*l.In || len(gradOut) != rows*l.Out {
		panic("nn: Linear.BackwardBatch size mismatch")
	}
	gradIn := a.Alloc(rows * l.In)
	for i := range gradIn {
		gradIn[i] = 0
	}
	for r := 0; r < rows; r++ {
		x := xs[r*l.In : (r+1)*l.In]
		gout := gradOut[r*l.Out : (r+1)*l.Out]
		gin := gradIn[r*l.In : (r+1)*l.In]
		for o := 0; o < l.Out; o++ {
			g := gout[o]
			l.B.Grad[o] += g
			row := l.W.Value[o*l.In : (o+1)*l.In]
			gradRow := l.W.Grad[o*l.In : (o+1)*l.In]
			for i, xi := range x {
				gradRow[i] += g * xi
				gin[i] += g * row[i]
			}
		}
	}
	return gradIn
}

// BackwardBatch returns the activation's input gradient over a flattened
// batch.
func (r *LeakyReLU) BackwardBatch(xs, gradOut []float64, a *Arena) []float64 {
	gradIn := a.Alloc(len(xs))
	for i, v := range xs {
		if v >= 0 {
			gradIn[i] = gradOut[i]
		} else {
			gradIn[i] = r.Alpha * gradOut[i]
		}
	}
	return gradIn
}

// BackwardBatch accumulates gamma/beta gradients for rows input rows and
// returns the input-gradient matrix; each row is processed exactly like
// Backward.
func (ln *LayerNorm) BackwardBatch(xs, gradOut []float64, rows int, a *Arena) []float64 {
	if len(xs) != rows*ln.Dim || len(gradOut) != rows*ln.Dim {
		panic("nn: LayerNorm.BackwardBatch size mismatch")
	}
	gradIn := a.Alloc(rows * ln.Dim)
	xhat := a.Alloc(ln.Dim)
	dxhat := a.Alloc(ln.Dim)
	n := float64(ln.Dim)
	for r := 0; r < rows; r++ {
		x := xs[r*ln.Dim : (r+1)*ln.Dim]
		gout := gradOut[r*ln.Dim : (r+1)*ln.Dim]
		gin := gradIn[r*ln.Dim : (r+1)*ln.Dim]
		mean, std := meanStd(x, ln.Eps)
		for i, v := range x {
			xhat[i] = (v - mean) / std
		}
		for i := range x {
			ln.Gamma.Grad[i] += gout[i] * xhat[i]
			ln.Beta.Grad[i] += gout[i]
			dxhat[i] = gout[i] * ln.Gamma.Value[i]
		}
		var sumDxhat, sumDxhatXhat float64
		for i := range x {
			sumDxhat += dxhat[i]
			sumDxhatXhat += dxhat[i] * xhat[i]
		}
		for i := range x {
			gin[i] = (dxhat[i] - sumDxhat/n - xhat[i]*sumDxhatXhat/n) / std
		}
	}
	return gradIn
}
