package storage

import (
	"testing"
	"testing/quick"

	"neo/internal/schema"
)

func testCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	tables := []*schema.Table{
		{
			Name:       "title",
			PrimaryKey: "id",
			Columns: []schema.Column{
				{Name: "id", Type: schema.IntType},
				{Name: "kind", Type: schema.StringType},
				{Name: "year", Type: schema.IntType},
			},
		},
		{
			Name:       "movie_keyword",
			PrimaryKey: "id",
			Columns: []schema.Column{
				{Name: "id", Type: schema.IntType},
				{Name: "movie_id", Type: schema.IntType},
			},
		},
	}
	fks := []schema.ForeignKey{
		{FromTable: "movie_keyword", FromColumn: "movie_id", ToTable: "title", ToColumn: "id"},
	}
	return schema.MustNewCatalog(tables, fks, nil)
}

func populated(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase(testCatalog(t))
	title := db.Table("title")
	kinds := []string{"movie", "movie", "tv", "movie", "video"}
	for i := 0; i < 5; i++ {
		if err := title.AppendRow(IntValue(int64(i)), StringValue(kinds[i]), IntValue(int64(1990+i%3))); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	mk := db.Table("movie_keyword")
	for i := 0; i < 8; i++ {
		if err := mk.AppendRow(IntValue(int64(i)), IntValue(int64(i%5))); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	if err := db.BuildIndexes(); err != nil {
		t.Fatalf("BuildIndexes: %v", err)
	}
	return db
}

func TestAppendAndValue(t *testing.T) {
	db := populated(t)
	title := db.Table("title")
	if title.NumRows() != 5 {
		t.Fatalf("NumRows = %d, want 5", title.NumRows())
	}
	v, err := title.Value("kind", 2)
	if err != nil {
		t.Fatalf("Value: %v", err)
	}
	if v.Str != "tv" {
		t.Errorf("kind[2] = %q, want tv", v.Str)
	}
	if _, err := title.Value("kind", 99); err == nil {
		t.Errorf("expected out-of-range error")
	}
	if _, err := title.Value("nope", 0); err == nil {
		t.Errorf("expected unknown-column error")
	}
}

func TestAppendRowValidation(t *testing.T) {
	db := NewDatabase(testCatalog(t))
	title := db.Table("title")
	if err := title.AppendRow(IntValue(1)); err == nil {
		t.Errorf("expected arity error")
	}
	if err := title.AppendRow(StringValue("x"), StringValue("movie"), IntValue(2000)); err == nil {
		t.Errorf("expected type mismatch error")
	}
}

func TestHashIndexLookup(t *testing.T) {
	db := populated(t)
	mk := db.Table("movie_keyword")
	ix := mk.Index("movie_id")
	if ix == nil {
		t.Fatalf("expected index on movie_keyword.movie_id (foreign key)")
	}
	rows := ix.Lookup(IntValue(3))
	// movie_id = i%5, so rows 3 only (i=3) and i=8 doesn't exist; 8 rows: i=3 only... i%5==3 for i=3.
	if len(rows) != 1 || rows[0] != 3 {
		t.Errorf("Lookup(3) = %v, want [3]", rows)
	}
	rows = ix.Lookup(IntValue(0))
	if len(rows) != 2 {
		t.Errorf("Lookup(0) = %v, want 2 rows (i=0, i=5)", rows)
	}
	if got := ix.Lookup(IntValue(77)); len(got) != 0 {
		t.Errorf("Lookup(77) = %v, want empty", got)
	}
	if ix.DistinctKeys() != 5 {
		t.Errorf("DistinctKeys = %d, want 5", ix.DistinctKeys())
	}
}

func TestStringIndex(t *testing.T) {
	db := populated(t)
	title := db.Table("title")
	if err := title.BuildIndex("kind"); err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	rows := title.Index("kind").Lookup(StringValue("movie"))
	if len(rows) != 3 {
		t.Errorf("Lookup(movie) = %v, want 3 rows", rows)
	}
	if err := title.BuildIndex("missing"); err == nil {
		t.Errorf("expected error indexing missing column")
	}
}

func TestDistinctCount(t *testing.T) {
	db := populated(t)
	title := db.Table("title")
	if got := title.DistinctCount("kind"); got != 3 {
		t.Errorf("DistinctCount(kind) = %d, want 3", got)
	}
	if got := title.DistinctCount("id"); got != 5 {
		t.Errorf("DistinctCount(id) = %d, want 5", got)
	}
	if got := title.DistinctCount("absent"); got != 0 {
		t.Errorf("DistinctCount(absent) = %d, want 0", got)
	}
}

func TestSortedRowIDs(t *testing.T) {
	db := populated(t)
	title := db.Table("title")
	ids, err := title.SortedRowIDs("kind")
	if err != nil {
		t.Fatalf("SortedRowIDs: %v", err)
	}
	if len(ids) != 5 {
		t.Fatalf("len = %d, want 5", len(ids))
	}
	col := title.Column("kind")
	for i := 1; i < len(ids); i++ {
		if col.Value(int(ids[i])).Less(col.Value(int(ids[i-1]))) {
			t.Errorf("SortedRowIDs not sorted at %d", i)
		}
	}
	if _, err := title.SortedRowIDs("absent"); err == nil {
		t.Errorf("expected error for absent column")
	}
}

func TestDatabaseAggregates(t *testing.T) {
	db := populated(t)
	if got := db.TotalRows(); got != 13 {
		t.Errorf("TotalRows = %d, want 13", got)
	}
	if db.ApproxSizeBytes() <= 0 {
		t.Errorf("ApproxSizeBytes should be positive")
	}
	if db.Table("no_such_table") != nil {
		t.Errorf("unknown table should return nil")
	}
}

func TestValueOrderingProperties(t *testing.T) {
	// Less is a strict weak ordering on int values.
	f := func(a, b int64) bool {
		va, vb := IntValue(a), IntValue(b)
		if a == b {
			return !va.Less(vb) && !vb.Less(va) && va.Equal(vb)
		}
		return va.Less(vb) != vb.Less(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Ints sort before strings regardless of content.
	g := func(a int64, s string) bool {
		return IntValue(a).Less(StringValue(s)) && !StringValue(s).Less(IntValue(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	if IntValue(42).String() != "42" {
		t.Errorf("IntValue(42).String() = %q", IntValue(42).String())
	}
	if StringValue("abc").String() != "abc" {
		t.Errorf("StringValue(abc).String() = %q", StringValue("abc").String())
	}
}

func TestColumnAppendTypeCheck(t *testing.T) {
	c := &Column{Type: schema.IntType}
	if err := c.Append(StringValue("x")); err == nil {
		t.Errorf("expected type mismatch error")
	}
	if err := c.Append(IntValue(7)); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if c.Len() != 1 || c.Value(0).Int != 7 {
		t.Errorf("column contents wrong: %+v", c)
	}
}
