package storage

import (
	"fmt"
	"os"
	"sort"

	"neo/internal/schema"
)

// RIDIndex is a hash index over a disk table: column value -> RIDs of the
// tuples holding it. It is the disk analogue of HashIndex, built once after
// OpenDisk by scanning the heap through the buffer pool.
type RIDIndex struct {
	ints map[int64][]RID
	strs map[string][]RID
}

// Lookup returns the RIDs whose indexed column equals v.
func (ix *RIDIndex) Lookup(v Value) []RID {
	if v.Kind == schema.IntType {
		return ix.ints[v.Int]
	}
	return ix.strs[v.Str]
}

// DistinctKeys returns the number of distinct keys in the index.
func (ix *RIDIndex) DistinctKeys() int { return len(ix.ints) + len(ix.strs) }

// DiskTable is one relation stored as a heap file plus its RID indexes.
type DiskTable struct {
	Schema  *schema.Table
	Heap    *HeapFile
	indexes map[string]*RIDIndex
	rows    int
}

// NumRows returns the number of tuples in the table (counted at index-build
// time).
func (t *DiskTable) NumRows() int { return t.rows }

// Index returns the RID index on the named column, or nil if none exists.
func (t *DiskTable) Index(column string) *RIDIndex { return t.indexes[column] }

// DiskDB is a database materialized as heap files on disk, read through a
// shared buffer pool. Files are immutable once materialized; all query
// execution is read-only.
type DiskDB struct {
	Catalog *schema.Catalog
	Pool    *BufferPool
	Dir     string
	tables  map[string]*DiskTable
}

// Table returns the disk table with the given name, or nil.
func (db *DiskDB) Table(name string) *DiskTable { return db.tables[name] }

// TotalRows returns the total number of tuples across all tables.
func (db *DiskDB) TotalRows() int {
	total := 0
	for _, t := range db.tables {
		total += t.rows
	}
	return total
}

// Close releases every heap file handle.
func (db *DiskDB) Close() error {
	var first error
	for _, t := range db.tables {
		if err := t.Heap.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Materialize writes every table of an in-memory database to dir as slotted
// heap files, one <table>.heap per relation, tuples in row order (the
// generators emit rows in primary-key order, so the heap keeps the clustered
// ordering the executor's sortedness tracking assumes). Existing heap files
// are overwritten.
func Materialize(db *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, ts := range db.Catalog.Tables() {
		t := db.Table(ts.Name)
		if t == nil {
			return fmt.Errorf("storage: materialize: no stored table %q", ts.Name)
		}
		w, err := CreateHeapFile(HeapFileName(dir, ts.Name))
		if err != nil {
			return err
		}
		var (
			tuple []byte
			vals  = make([]Value, 0, len(ts.Columns))
		)
		for row := 0; row < t.NumRows(); row++ {
			vals = vals[:0]
			for _, c := range t.Columns {
				vals = append(vals, c.Value(row))
			}
			tuple, err = EncodeTuple(tuple[:0], ts, vals)
			if err != nil {
				w.Close()
				return err
			}
			if _, err := w.Append(tuple); err != nil {
				w.Close()
				return fmt.Errorf("storage: materialize %q: %w", ts.Name, err)
			}
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("storage: materialize %q: %w", ts.Name, err)
		}
	}
	return nil
}

// MaterializedAt reports whether dir already holds a heap file for every
// table in the catalog.
func MaterializedAt(dir string, cat *schema.Catalog) bool {
	for _, ts := range cat.Tables() {
		info, err := os.Stat(HeapFileName(dir, ts.Name))
		if err != nil || info.IsDir() {
			return false
		}
	}
	return true
}

// OpenDisk opens the heap files for every catalog table under dir, attaches
// a buffer pool of poolPages pages, and builds the RID indexes (same column
// set as Database.BuildIndexes: primary keys, declared secondary indexes,
// and both endpoints of every foreign key). The index build doubles as a
// full-scan validation pass: every tuple is decoded once, so torn or
// mis-encoded heap files fail here rather than mid-query.
func OpenDisk(dir string, cat *schema.Catalog, poolPages int) (*DiskDB, error) {
	db := &DiskDB{
		Catalog: cat,
		Pool:    NewBufferPool(poolPages),
		Dir:     dir,
		tables:  make(map[string]*DiskTable, cat.NumRelations()),
	}
	for _, ts := range cat.Tables() {
		hf, err := OpenHeapFile(HeapFileName(dir, ts.Name))
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("storage: open disk db: %w (run neo-datagen -out %s to materialize)", err, dir)
		}
		db.tables[ts.Name] = &DiskTable{Schema: ts, Heap: hf, indexes: make(map[string]*RIDIndex)}
	}
	if err := db.buildIndexes(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// buildIndexes scans each table once through the buffer pool, counting rows
// and populating every RID index declared for it.
func (db *DiskDB) buildIndexes() error {
	want := make(map[string][]string) // table -> columns to index
	add := func(table, column string) {
		for _, c := range want[table] {
			if c == column {
				return
			}
		}
		want[table] = append(want[table], column)
	}
	for _, ts := range db.Catalog.Tables() {
		if ts.PrimaryKey != "" {
			add(ts.Name, ts.PrimaryKey)
		}
	}
	for _, ix := range db.Catalog.Indexes() {
		add(ix.Table, ix.Column)
	}
	for _, fk := range db.Catalog.ForeignKeys() {
		add(fk.FromTable, fk.FromColumn)
		add(fk.ToTable, fk.ToColumn)
	}

	for _, ts := range db.Catalog.Tables() {
		t := db.tables[ts.Name]
		cols := want[ts.Name]
		sort.Strings(cols)
		colPos := make([]int, len(cols))
		for i, c := range cols {
			pos := ts.ColumnIndex(c)
			if pos < 0 {
				return fmt.Errorf("storage: cannot index unknown column %q.%q", ts.Name, c)
			}
			colPos[i] = pos
			ix := &RIDIndex{}
			if ts.Columns[pos].Type == schema.IntType {
				ix.ints = make(map[int64][]RID)
			} else {
				ix.strs = make(map[string][]RID)
			}
			t.indexes[c] = ix
		}

		var vals []Value
		for pageNo := int32(0); pageNo < t.Heap.NumPages(); pageNo++ {
			page, err := db.Pool.Get(t.Heap, pageNo)
			if err != nil {
				return err
			}
			for slot := 0; slot < page.NumSlots(); slot++ {
				data, err := page.Tuple(slot)
				if err != nil {
					return err
				}
				vals, err = DecodeTuple(data, ts, vals)
				if err != nil {
					return err
				}
				rid := RID{Page: pageNo, Slot: int32(slot)}
				for i, c := range cols {
					ix := t.indexes[c]
					v := vals[colPos[i]]
					if v.Kind == schema.IntType {
						ix.ints[v.Int] = append(ix.ints[v.Int], rid)
					} else {
						ix.strs[v.Str] = append(ix.strs[v.Str], rid)
					}
				}
				t.rows++
			}
		}
	}
	return nil
}

// VerifyAgainst checks that the disk database holds exactly as many rows per
// table as the in-memory database it should mirror. pkg/neo calls it after
// opening a pre-materialized directory, catching stale heap files left over
// from a different -scale or -seed.
func (db *DiskDB) VerifyAgainst(mem *Database) error {
	for _, ts := range db.Catalog.Tables() {
		got, want := db.tables[ts.Name].rows, mem.Table(ts.Name).NumRows()
		if got != want {
			return fmt.Errorf("storage: disk table %q has %d rows, generator produced %d — stale heap files in %s? re-run neo-datagen -out",
				ts.Name, got, want, db.Dir)
		}
	}
	return nil
}
