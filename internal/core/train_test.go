package core

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// neoWithTrainWorkers rebuilds the rig's Neo with an explicit gradient
// worker count (the rig keeps its own engine, so noise streams stay
// independent between rigs).
func neoWithTrainWorkers(rig *testRig, workers int) *Neo {
	cfg := rig.neo.Config
	cfg.TrainWorkers = workers
	return New(rig.eng, rig.feat, cfg)
}

// TestRetrainDeterministicAcrossTrainWorkers pins the tentpole determinism
// contract at the core level: identically-seeded training runs produce
// bit-identical value-network weights whether minibatch gradients are
// computed serially or sharded over many workers, through bootstrap and a
// full episode.
func TestRetrainDeterministicAcrossTrainWorkers(t *testing.T) {
	serialRig := newRig(t, "postgres")
	parallelRig := newRig(t, "postgres")
	serial := neoWithTrainWorkers(serialRig, -1)
	parallel := neoWithTrainWorkers(parallelRig, 8)

	train, _ := serialRig.wl.Split(0.8, 1)
	trainP, _ := parallelRig.wl.Split(0.8, 1)
	if err := serial.Bootstrap(train, serialRig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Bootstrap(trainP, parallelRig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	ss, err := serial.RunEpisode(1, train)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := parallel.RunEpisode(1, trainP)
	if err != nil {
		t.Fatal(err)
	}
	if ss.TrainLoss != ps.TrainLoss {
		t.Errorf("TrainLoss differs: serial %v, 8 workers %v (must be bit-identical)", ss.TrainLoss, ps.TrainLoss)
	}
	sp, pp := serial.Net.Params(), parallel.Net.Params()
	if len(sp) != len(pp) {
		t.Fatalf("parameter counts differ: %d vs %d", len(sp), len(pp))
	}
	for i := range sp {
		for j := range sp[i].Value {
			if sp[i].Value[j] != pp[i].Value[j] {
				t.Fatalf("param %s[%d]: serial %v, 8 workers %v (weights must be bit-identical)",
					sp[i].Name, j, sp[i].Value[j], pp[i].Value[j])
			}
		}
	}
}

// TestRetrainAsyncUnreadResultDoesNotLeak is the regression test for the
// RetrainAsync goroutine leak: the final loss is delivered on a buffered
// channel, so a caller that never reads the result must not pin the
// training goroutine forever.
func TestRetrainAsyncUnreadResultDoesNotLeak(t *testing.T) {
	rig, train := bootstrapRig(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		rig.neo.RetrainAsync() // result deliberately never read
	}
	// Retrain serializes behind the async rounds, so once it returns every
	// background round has finished training; give the goroutines a moment
	// to perform their (non-blocking, buffered) sends and exit.
	rig.neo.Retrain()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("%d goroutines before unread RetrainAsync calls, %d after; training goroutines leaked", before, got)
	}
	// And a read caller still receives the loss.
	if _, err := rig.neo.RunEpisode(1, train); err != nil {
		t.Fatal(err)
	}
	select {
	case loss := <-rig.neo.RetrainAsync():
		if math.IsNaN(loss) || loss < 0 {
			t.Errorf("RetrainAsync loss = %v, want a non-negative number", loss)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RetrainAsync never delivered a result")
	}
}

// TestConcurrentPlanningDuringParallelTraining exercises plan search racing
// a multi-worker TrainBatch inside a background retraining round (run with
// -race): searches must keep scoring with the pinned snapshot while the
// gradient workers shard minibatches over the live network.
func TestConcurrentPlanningDuringParallelTraining(t *testing.T) {
	rig := newRig(t, "postgres")
	n := neoWithTrainWorkers(rig, 4)
	train, _ := rig.wl.Split(0.8, 1)
	if err := n.Bootstrap(train, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunEpisode(1, train); err != nil {
		t.Fatal(err)
	}

	done := n.RetrainAsync()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for _, q := range train[:3] {
					if _, _, err := n.Optimize(q); err != nil {
						t.Errorf("concurrent Optimize during parallel training: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if loss := <-done; math.IsNaN(loss) {
		t.Errorf("parallel training round returned NaN loss")
	}
}
