// Command neo is an end-to-end demonstration of the learned optimizer: it
// assembles a synthetic database and an execution engine (simulated cost
// model or disk-backed), bootstraps Neo from the PostgreSQL-profile expert,
// refines it for a few episodes, and prints a per-query comparison against
// the engine's native optimizer.
//
// Usage:
//
//	neo -dataset imdb -engine postgres -episodes 10 -queries 30
//	neo -dataset corp -engine engine-m -encoding histogram
//	neo -dataset imdb -engine disk -buffer-pool-mb 32 -episodes 4
package main

import (
	"flag"
	"fmt"
	"os"

	"neo/pkg/neo"
)

func main() {
	var (
		dataset      = flag.String("dataset", "imdb", "synthetic dataset: imdb, tpch or corp")
		engineName   = flag.String("engine", "postgres", "execution engine: postgres, sqlite, engine-m, engine-o (simulated) or disk (heap files + buffer pool, measured wall-clock latencies)")
		bufferPoolMB = flag.Int("buffer-pool-mb", 0, "disk engine buffer-pool size in MiB (0 = default 16)")
		dataDir      = flag.String("data-dir", "", "disk engine data directory holding the heap files (empty = fresh temp dir; pre-materialize with neo-datagen -out)")
		encoding     = flag.String("encoding", "r-vector", "featurization: 1-hot, histogram, r-vector, r-vector-nojoins")
		episodes     = flag.Int("episodes", 8, "refinement episodes after bootstrapping")
		queries      = flag.Int("queries", 24, "number of workload queries to generate")
		scale        = flag.Float64("scale", 0.4, "synthetic data scale factor")
		seed         = flag.Int64("seed", 42, "random seed")
		workers      = flag.Int("workers", 0, "planning worker-pool size (0 = GOMAXPROCS, negative = serial; results are identical either way unless cardinality-error injection is enabled)")
		trainWorkers = flag.Int("train-workers", 0, "gradient worker-pool size for value-network training (0 = GOMAXPROCS, negative = serial; trained weights are bit-identical for every worker count)")
		load         = flag.String("load", "", "checkpoint file to restore trained state from (skips bootstrapping; the system config must match the one the checkpoint was saved with)")
		save         = flag.String("save", "", "checkpoint file to write the trained state to after refinement")
		fuse         = flag.Bool("fuse-scoring", false, "fuse concurrent plan searches' value-network scoring into shared forward passes (plans and trained weights are bit-identical either way)")
		maxFused     = flag.Int("max-fused-batch", 0, "row cap of one fused forward pass (0 = default 64)")
		fuseLinger   = flag.Duration("fuse-linger", 0, "longest a scoring submission waits to be fused (0 = default 200µs)")
		scorePrec    = flag.String("score-precision", "float64", "numeric format the frozen serving snapshot scores plans with: float64 (exact, default), float32 (packed tiled-GEMM kernels) or int8 (calibrated quantization). Training and checkpoints always stay float64.")
		routing      = flag.String("routing", "full", "query routing: full (every query takes the learned best-first search), fastpath (statistics-free greedy planner for every query) or auto (per-class fast path vs full search, refined online from observed-latency regret)")
	)
	flag.Parse()

	sys, err := neo.Open(neo.Config{
		Dataset:        *dataset,
		Engine:         *engineName,
		DataDir:        *dataDir,
		BufferPoolMB:   *bufferPoolMB,
		Encoding:       neo.Encoding(*encoding),
		Scale:          *scale,
		Seed:           *seed,
		Episodes:       *episodes,
		Workers:        *workers,
		TrainWorkers:   *trainWorkers,
		FuseScoring:    *fuse,
		MaxFusedBatch:  *maxFused,
		FuseLinger:     *fuseLinger,
		ScorePrecision: *scorePrec,
		Routing:        *routing,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset=%s engine=%s encoding=%s rows=%d\n", *dataset, *engineName, *encoding, sys.DB.TotalRows())

	wl, err := sys.GenerateWorkload(*queries)
	if err != nil {
		fatal(err)
	}
	train, test := wl.Split(0.8, *seed)
	fmt.Printf("workload: %d training / %d test queries\n", len(train), len(test))

	if *load != "" {
		fmt.Printf("restoring checkpoint %s ...\n", *load)
		if err := sys.LoadCheckpointFile(*load); err != nil {
			fatal(err)
		}
		fmt.Printf("restored: net version %d, %d experience entries\n",
			sys.Neo.NetVersion(), sys.Neo.Experience.Len())
	} else {
		fmt.Println("bootstrapping from the PostgreSQL-profile expert ...")
		if err := sys.Bootstrap(train); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("refining for %d episodes ...\n", *episodes)
	stats, err := sys.Train(train)
	if err != nil {
		fatal(err)
	}
	for _, s := range stats {
		fmt.Printf("  episode %2d: normalized latency %.3f (1.0 = expert bootstrap)\n", s.Episode, s.NormalizedLatency)
	}
	if *save != "" {
		if err := sys.SaveCheckpointFile(*save); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *save)
	}

	unit := "simulated"
	if *engineName == "disk" {
		unit = "measured"
	}
	fmt.Printf("\nheld-out test queries (latencies in %s ms):\n", unit)
	fmt.Printf("%-14s %12s %12s %9s\n", "query", "neo", "native", "neo/native")
	var neoTotal, nativeTotal float64
	for _, q := range test {
		neoLat, nativeLat, err := sys.Compare(q)
		if err != nil {
			fatal(err)
		}
		neoTotal += neoLat
		nativeTotal += nativeLat
		fmt.Printf("%-14s %12.2f %12.2f %9.2f\n", q.ID, neoLat, nativeLat, neoLat/nativeLat)
	}
	fmt.Printf("%-14s %12.2f %12.2f %9.2f\n", "TOTAL", neoTotal, nativeTotal, neoTotal/nativeTotal)
	if st, ok := sys.StorageStats(); ok {
		fmt.Printf("\nstorage: %s\n", st.String())
	}
	if err := sys.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neo:", err)
	os.Exit(1)
}
