// Command neo-trainer runs the learning half of the distributed serving
// tier: it owns the experience pool and the training loop for a fleet of
// neo-serve replicas. Replicas forward the latencies their /feedback
// endpoints observe as CRC-checked experience containers (POST /experience);
// every RetrainEvery ingested entries the trainer retrains in the background
// and publishes the new value network as a versioned NEOCKPT1 snapshot (GET
// /snapshot). With -replicas set, a rollout coordinator canaries each new
// snapshot on the first replica, compares plan quality via its /stats, then
// promotes fleet-wide — or rolls back and bars the version on regression.
//
// Usage:
//
//	neo-trainer -addr :7790 -checkpoint trainer.ckpt
//	neo-trainer -replicas http://r1:8080,http://r2:8080,http://r3:8080
//
// The trainer must be opened with the same -dataset/-encoding/-seed (and
// value-network architecture) as its replicas: snapshots restore weights
// into an identically shaped network. See OPERATIONS.md for the full
// deployment guide.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neo/internal/cluster"
	"neo/pkg/neo"
)

func main() {
	var (
		addr         = flag.String("addr", ":7790", "HTTP listen address")
		dataset      = flag.String("dataset", "imdb", "synthetic dataset: imdb, tpch or corp")
		engineName   = flag.String("engine", "postgres", "execution engine: postgres, sqlite, engine-m, engine-o (simulated) or disk")
		encoding     = flag.String("encoding", "r-vector", "featurization: 1-hot, histogram, r-vector, r-vector-nojoins")
		scale        = flag.Float64("scale", 0.4, "synthetic data scale factor")
		seed         = flag.Int64("seed", 42, "random seed")
		queries      = flag.Int("queries", 16, "bootstrap workload size (cold start only)")
		expansions   = flag.Int("expansions", 256, "plan-search expansion budget")
		trainWorkers = flag.Int("train-workers", 0, "gradient worker-pool size (0 = GOMAXPROCS)")
		load         = flag.String("load", "", "checkpoint file to restore on startup (overrides -checkpoint for loading)")
		ckpt         = flag.String("checkpoint", "", "checkpoint file to write periodically and on shutdown (also restored on startup when present and -load is unset)")
		ckptEvery    = flag.Duration("checkpoint-interval", 5*time.Minute, "periodic checkpoint interval (requires -checkpoint)")
		retrainEvery = flag.Int("retrain-every", 64, "retrain after every N ingested experience entries (negative disables)")
		maxExp       = flag.Int("max-experience", 0, "experience-pool cap (0 = default 100000, negative = unbounded)")
		keep         = flag.Int("keep-versions", 4, "published snapshot versions kept downloadable (rollback needs at least the previous one)")
		replicas     = flag.String("replicas", "", "comma-separated replica base URLs; enables the rollout coordinator (first URL is the canary)")
		canaryWait   = flag.Duration("canary-wait", 2*time.Second, "longest a canary soaks before the promote/rollback decision")
		minFeedback  = flag.Uint64("canary-min-feedbacks", 8, "canary-window samples that end the soak early")
		tolerance    = flag.Float64("tolerance", 0, "allowed canary quality regression as a fraction of the pre-canary mean latency (0 = default 0.25)")
	)
	flag.Parse()

	sys, err := neo.Open(neo.Config{
		Dataset:          *dataset,
		Engine:           *engineName,
		Encoding:         neo.Encoding(*encoding),
		Scale:            *scale,
		Seed:             *seed,
		SearchExpansions: *expansions,
		TrainWorkers:     *trainWorkers,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("neo-trainer: dataset=%s engine=%s encoding=%s rows=%d\n",
		*dataset, *engineName, *encoding, sys.DB.TotalRows())

	restore := *load
	if restore == "" && *ckpt != "" {
		if _, err := os.Stat(*ckpt); err == nil {
			restore = *ckpt
		}
	}
	if restore != "" {
		if err := sys.LoadCheckpointFile(restore); err != nil {
			fatal(err)
		}
		fmt.Printf("neo-trainer: warm start from %s (net version %d, %d experience entries)\n",
			restore, sys.Neo.NetVersion(), sys.Neo.Experience.Len())
	} else {
		fmt.Printf("neo-trainer: cold start, bootstrapping from the expert over %d queries ...\n", *queries)
		wl, err := sys.GenerateWorkload(*queries)
		if err != nil {
			fatal(err)
		}
		if err := sys.Bootstrap(wl.Queries); err != nil {
			fatal(err)
		}
	}

	cfg := cluster.TrainerConfig{
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
		RetrainEvery:    *retrainEvery,
		MaxExperience:   *maxExp,
		KeepVersions:    *keep,
	}
	if *replicas != "" {
		fleet := splitURLs(*replicas)
		cfg.Rollout = &cluster.RolloutConfig{
			Replicas:     fleet,
			Tolerance:    *tolerance,
			CanaryWait:   *canaryWait,
			MinFeedbacks: *minFeedback,
		}
		fmt.Printf("neo-trainer: rollout coordinator over %d replicas (canary %s)\n", len(fleet), fleet[0])
	}
	trainer, err := cluster.NewTrainer(sys, cfg)
	if err != nil {
		fatal(err)
	}
	trainer.Start()
	fmt.Printf("neo-trainer: published snapshot version %d\n", trainer.NetVersion())

	httpSrv := &http.Server{Addr: *addr, Handler: trainer}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("neo-trainer: listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("neo-trainer: %v, shutting down ...\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "neo-trainer: shutdown:", err)
	}
	if err := trainer.Close(); err != nil {
		fatal(err)
	}
	if err := sys.Close(); err != nil {
		fatal(err)
	}
	if *ckpt != "" {
		fmt.Printf("neo-trainer: final checkpoint written to %s\n", *ckpt)
	}
}

func splitURLs(list string) []string {
	var out []string
	for _, u := range strings.Split(list, ",") {
		if u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/")); u != "" {
			out = append(out, u)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neo-trainer:", err)
	os.Exit(1)
}
