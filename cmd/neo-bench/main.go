// Command neo-bench runs the repo's performance benchmarks (value-network
// scoring, value-network training, episode evaluation, planning latency,
// fused serving, disk execution), emits one BENCH_<suite>.json per suite,
// and optionally enforces the benchmark-regression gate against committed
// baselines.
//
// Usage:
//
//	neo-bench                                  # run all suites, write BENCH_*.json to .
//	neo-bench -out results -baseline . -check  # CI: measure, compare, fail on >2x regressions
//	neo-bench -suites train -check -baseline . # one suite only
//
// The gate applies two kinds of checks:
//
//   - baseline comparison: ns/op and allocs/op must not regress by more than
//     -tolerance (default 2x — generous on purpose, so slow shared CI
//     runners fail on real blowups rather than jitter), and
//   - ratio checks, which are hardware-independent: batched scoring and
//     batched training must beat their per-sample counterparts by at least
//     -speedup-floor on the machine the benchmarks actually ran on.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"neo/internal/bench"
)

func main() {
	var (
		out      = flag.String("out", ".", "directory to write BENCH_<suite>.json files to (created if missing)")
		baseline = flag.String("baseline", "", "directory holding committed baseline BENCH_<suite>.json files (empty = skip comparison)")
		check    = flag.Bool("check", false, "enforce the regression gate (exit 1 on regressions or missing baselines)")
		tol      = flag.Float64("tolerance", 2.0, "maximum allowed ns/op and allocs/op regression factor vs the baseline")
		floor    = flag.Float64("speedup-floor", 1.5, "minimum batched-over-per-sample speedup the scoring and training suites must show")
		suites   = flag.String("suites", strings.Join(bench.Names(), ","), "comma-separated suites to run")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var problems []string
	for _, name := range strings.Split(*suites, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fmt.Printf("suite %s: running ...\n", name)
		suite, err := bench.Run(name)
		if err != nil {
			fatal(err)
		}
		for _, r := range suite.Benchmarks {
			fmt.Printf("  %-28s %14.0f ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
		}
		path, err := bench.Write(*out, suite)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", path)

		problems = append(problems, ratioChecks(suite, *floor)...)
		if *baseline != "" {
			basePath := filepath.Join(*baseline, bench.FileName(name))
			base, err := bench.Load(basePath)
			switch {
			case err == nil:
				for _, p := range bench.Compare(base, suite, *tol) {
					problems = append(problems, "regression vs "+basePath+": "+p)
				}
			case os.IsNotExist(err) && !*check:
				fmt.Printf("  no baseline at %s (skipping comparison)\n", basePath)
			default:
				problems = append(problems, fmt.Sprintf("baseline %s: %v", basePath, err))
			}
		}
	}

	if len(problems) > 0 {
		fmt.Fprintln(os.Stderr, "\nbenchmark gate findings:")
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "  FAIL:", p)
		}
		if *check {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "(informational: run with -check to enforce)")
		return
	}
	fmt.Println("benchmark gate: all checks passed")
}

// ratioPair is one hardware-independent speedup invariant: fast must beat
// slow by at least floor (0 = use the -speedup-floor flag).
type ratioPair struct {
	slow, fast string
	floor      float64
}

// ratioChecks verifies the hardware-independent speedup invariants inside a
// freshly measured suite.
func ratioChecks(s bench.Suite, defaultFloor float64) []string {
	pairs := map[string][]ratioPair{
		"score": {
			{slow: "scoring/sequential", fast: "scoring/batched"},
			// The packed float32 kernels must beat the batched float64 path
			// on the machine the gate runs on. int8 gets a baseline entry but
			// no ratio floor: its win over f32 is footprint and memory
			// bandwidth, which a single-core CI runner does not reward.
			{slow: "scoring/batched", fast: "scoring/f32"},
		},
		"train": {{slow: "training/per-sample", fast: "training/batched"}},
		// The routing tentpole's core claim: the statistics-free greedy
		// planner must undercut the full best-first search's median planning
		// latency by >= 50x on the same routed queries. The gap is
		// architectural (no value-network inference, no frontier) and holds
		// on any runner.
		"plan": {{slow: "plan/bestfirst-p50", fast: "plan/fastpath-p50", floor: 50.0}},
		"serve": {
			{slow: "serving/private", fast: "serving/fused"},
			{slow: "serving/private", fast: "serving/fused-f32"},
		},
		// The buffer-pool page-miss penalty carries its own floor: hot hits
		// are in-memory map lookups while cold reads go through pread, so a
		// 2x gap survives any reasonable runner — but the pair must not be
		// held to the batched-scoring default, which measures a different
		// phenomenon. exec/disk-{cold,hot} (whole plans) get baselines only:
		// join compute dominates their page faults at benchmark scale.
		"exec": {{slow: "exec/pool-cold", fast: "exec/pool-hot", floor: 2.0}},
	}[s.Suite]
	var problems []string
	for _, p := range pairs {
		floor := p.floor
		if floor == 0 {
			floor = defaultFloor
		}
		speedup, err := bench.Speedup(s, p.slow, p.fast)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		if speedup < floor {
			problems = append(problems, fmt.Sprintf(
				"%s is only %.2fx faster than %s, want >= %.2fx", p.fast, speedup, p.slow, floor))
		} else {
			fmt.Printf("  %s: %.2fx faster than %s (floor %.2fx)\n", p.fast, speedup, p.slow, floor)
		}
	}
	return problems
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neo-bench:", err)
	os.Exit(1)
}
