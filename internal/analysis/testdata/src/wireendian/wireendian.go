// Package wireendian is a neo-lint self-test fixture: a package that is NOT
// the designated wire package (its child directory wire is).
package wireendian

import "encoding/binary"

func putBig(b []byte, v uint32) {
	binary.BigEndian.PutUint32(b, v) // want "binary.BigEndian breaks the frozen little-endian"
}

func putNative(b []byte, v uint64) {
	binary.NativeEndian.PutUint64(b, v) // want "binary.NativeEndian breaks the frozen little-endian"
}

func putLittleOutside(b []byte, v uint32) {
	binary.LittleEndian.PutUint32(b, v) // want "raw encoding/binary use outside"
}

func declare(bo binary.ByteOrder) binary.ByteOrder {
	return bo // naming the interface type: no finding
}

func suppressedPut(b []byte, v uint16) {
	binary.LittleEndian.PutUint16(b, v) //neo:lint-ok wireendian fixture predates the wire helpers
}
