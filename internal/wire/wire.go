// Package wire implements the little-endian binary primitives shared by the
// checkpoint format (package checkpoint) and the per-layer Save/Load methods
// in nn, treeconv, valuenet and embedding. Keeping the primitives in one
// place guarantees every serialized component agrees on byte order and
// framing, and keeps the layer packages free of encoding boilerplate.
//
// All integers are fixed-width little-endian; float64s are written as their
// IEEE-754 bit patterns; strings and slices are length-prefixed. Readers
// validate length prefixes against MaxLen so a corrupted prefix fails with a
// clear error instead of attempting a multi-gigabyte allocation.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MaxLen bounds every length prefix a reader will accept (elements, not
// bytes). The largest legitimate vectors in a checkpoint are parameter
// matrices and experience tables, all far below this.
const MaxLen = 1 << 28

// WriteU8 writes one byte.
func WriteU8(w io.Writer, v uint8) error {
	_, err := w.Write([]byte{v})
	return err
}

// ReadU8 reads one byte.
func ReadU8(r io.Reader) (uint8, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteU32 writes a fixed-width uint32.
func WriteU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// ReadU32 reads a fixed-width uint32.
func ReadU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU64 writes a fixed-width uint64.
func WriteU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// ReadU64 reads a fixed-width uint64.
func ReadU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteI64 writes a fixed-width int64.
func WriteI64(w io.Writer, v int64) error { return WriteU64(w, uint64(v)) }

// ReadI64 reads a fixed-width int64.
func ReadI64(r io.Reader) (int64, error) {
	v, err := ReadU64(r)
	return int64(v), err
}

// WriteF64 writes a float64 as its IEEE-754 bit pattern.
func WriteF64(w io.Writer, v float64) error { return WriteU64(w, math.Float64bits(v)) }

// ReadF64 reads a float64 from its IEEE-754 bit pattern.
func ReadF64(r io.Reader) (float64, error) {
	v, err := ReadU64(r)
	return math.Float64frombits(v), err
}

// readLen reads and validates a length prefix.
func readLen(r io.Reader, what string) (int, error) {
	n, err := ReadU64(r)
	if err != nil {
		return 0, err
	}
	if n > MaxLen {
		return 0, fmt.Errorf("wire: %s length %d exceeds limit %d (corrupt length prefix?)", what, n, MaxLen)
	}
	return int(n), nil
}

// WriteF64s writes a length-prefixed float64 slice.
func WriteF64s(w io.Writer, vs []float64) error {
	if err := WriteU64(w, uint64(len(vs))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadF64s reads a length-prefixed float64 slice.
func ReadF64s(r io.Reader) ([]float64, error) {
	n, err := readLen(r, "float slice")
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// ReadF64sInto reads a length-prefixed float64 slice into dst, requiring the
// stored length to match len(dst) exactly. The copy is in place, so slices
// shared with other views (e.g. shadow-gradient parameters) observe the new
// values.
func ReadF64sInto(r io.Reader, dst []float64, what string) error {
	n, err := readLen(r, what)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return fmt.Errorf("wire: %s has %d values, want %d", what, n, len(dst))
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// Byte-slice accessors for in-place encoding. The stream primitives above
// serve record-oriented formats (checkpoints); these serve page-oriented
// formats (package storage's slotted heap pages), where fields live at
// computed offsets inside a fixed-size buffer and an io.Writer would only
// add copies. Same byte order, same bit patterns.

// PutU16 writes a fixed-width uint16 at the start of b.
func PutU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }

// U16 reads a fixed-width uint16 from the start of b.
func U16(b []byte) uint16 { return binary.LittleEndian.Uint16(b) }

// PutU32 writes a fixed-width uint32 at the start of b.
func PutU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

// U32 reads a fixed-width uint32 from the start of b.
func U32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// PutI64 writes a fixed-width int64 at the start of b.
func PutI64(b []byte, v int64) { binary.LittleEndian.PutUint64(b, uint64(v)) }

// I64 reads a fixed-width int64 from the start of b.
func I64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// WriteString writes a length-prefixed UTF-8 string.
func WriteString(w io.Writer, s string) error {
	if err := WriteU64(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadString reads a length-prefixed string.
func ReadString(r io.Reader) (string, error) {
	n, err := readLen(r, "string")
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
