package storage

import (
	"fmt"
	"sync"
)

// PagesForMB converts a buffer-pool budget in mebibytes to a page count,
// never returning less than one page.
func PagesForMB(mb int) int {
	pages := mb * (1 << 20) / PageSize
	if pages < 1 {
		return 1
	}
	return pages
}

// PoolStats is a snapshot of buffer-pool counters, shaped for the /stats
// endpoint.
type PoolStats struct {
	CapacityPages int     `json:"capacity_pages"`
	ResidentPages int     `json:"resident_pages"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	BytesRead     int64   `json:"bytes_read"`
	HitRate       float64 `json:"hit_rate"`
}

type pageKey struct {
	file *HeapFile
	page int32
}

type frame struct {
	key  pageKey
	page *Page
	ref  bool
}

// BufferPool caches heap pages with clock (second-chance) eviction. Get is
// safe for concurrent use. Evicted pages are not invalidated — callers
// already holding a *Page keep a valid (GC-protected) snapshot; the pool
// merely forgets it, so a later Get re-reads from disk. That is sound
// because heap files are immutable once materialized.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	frames   map[pageKey]*frame
	clock    []*frame // fixed-capacity ring once full
	hand     int

	hits      int64
	misses    int64
	evictions int64
	bytesRead int64
}

// NewBufferPool creates a pool holding at most capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		capacity: capacity,
		frames:   make(map[pageKey]*frame, capacity),
	}
}

// Get returns the requested page, serving it from the pool when resident and
// reading (and caching) it from the heap file otherwise.
func (bp *BufferPool) Get(hf *HeapFile, pageNo int32) (*Page, error) {
	key := pageKey{file: hf, page: pageNo}

	bp.mu.Lock()
	if fr, ok := bp.frames[key]; ok {
		fr.ref = true
		bp.hits++
		p := fr.page
		bp.mu.Unlock()
		return p, nil
	}
	bp.mu.Unlock()

	// Miss: read outside the lock so concurrent queries overlap their I/O.
	// Two goroutines may race to read the same page; both reads are correct
	// (files are immutable) and admit() keeps only one copy.
	p, err := hf.ReadPage(pageNo)
	if err != nil {
		return nil, err
	}

	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.misses++
	bp.bytesRead += PageSize
	if fr, ok := bp.frames[key]; ok {
		fr.ref = true
		return fr.page, nil
	}
	bp.admit(&frame{key: key, page: p, ref: true})
	return p, nil
}

// admit inserts a frame, evicting via the clock hand when at capacity.
// Caller holds bp.mu.
func (bp *BufferPool) admit(fr *frame) {
	if len(bp.clock) < bp.capacity {
		bp.clock = append(bp.clock, fr)
		bp.frames[fr.key] = fr
		return
	}
	for {
		victim := bp.clock[bp.hand]
		if victim.ref {
			victim.ref = false
			bp.hand = (bp.hand + 1) % len(bp.clock)
			continue
		}
		delete(bp.frames, victim.key)
		bp.evictions++
		bp.clock[bp.hand] = fr
		bp.frames[fr.key] = fr
		bp.hand = (bp.hand + 1) % len(bp.clock)
		return
	}
}

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s := PoolStats{
		CapacityPages: bp.capacity,
		ResidentPages: len(bp.clock),
		Hits:          bp.hits,
		Misses:        bp.misses,
		Evictions:     bp.evictions,
		BytesRead:     bp.bytesRead,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// Reset drops every resident page and zeroes the counters. Benchmarks use it
// to measure cold-cache behavior without reopening files.
func (bp *BufferPool) Reset() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.frames = make(map[pageKey]*frame, bp.capacity)
	bp.clock = nil
	bp.hand = 0
	bp.hits, bp.misses, bp.evictions, bp.bytesRead = 0, 0, 0, 0
}

// String implements fmt.Stringer for log lines.
func (s PoolStats) String() string {
	return fmt.Sprintf("pool{cap=%dp resident=%dp hits=%d misses=%d evictions=%d read=%dB hit-rate=%.2f}",
		s.CapacityPages, s.ResidentPages, s.Hits, s.Misses, s.Evictions, s.BytesRead, s.HitRate)
}
