package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"neo/internal/cluster/proto"
	"neo/internal/cluster/ring"
)

// Router is the thin routing mode of neo-serve: a stateless proxy that
// shards /optimize and /feedback traffic across a replica fleet by
// consistent-hashing the query's canonical routing key (proto.SpecKey). One
// query structure always lands on the same replica, so the fleet's plan
// caches partition the workload instead of each replica re-searching every
// query. A replica that fails retryably is failed over in ring order; the
// query then warms the next replica's cache until its owner returns. The
// router opens no database and holds no state beyond the ring — kill it and
// start another.
//
// Endpoints:
//
//	POST /optimize   -> forwarded to the owning replica
//	POST /feedback   -> forwarded to the owning replica (same key, same replica)
//	GET  /stats      -> {"replicas": {url: replica /stats or {"error": ...}}}
//	GET  /healthz    -> 200 ok
type Router struct {
	ring   *ring.Ring
	client *proto.Client
	mux    *http.ServeMux
}

// NewRouter creates a router over the replica base URLs.
func NewRouter(replicas []string, client proto.Client) (*Router, error) {
	rg, err := ring.New(replicas, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: building ring: %w", err)
	}
	rt := &Router{ring: rg, client: &client, mux: http.NewServeMux()}
	rt.mux.HandleFunc("POST /optimize", rt.handleOptimize)
	rt.mux.HandleFunc("POST /feedback", rt.handleFeedback)
	rt.mux.HandleFunc("GET /stats", rt.handleStats)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func (rt *Router) handleOptimize(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var spec proto.QuerySpec
	if err := json.Unmarshal(body, &spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding query: %w", err))
		return
	}
	rt.forward(w, r, &spec, body, "/optimize")
}

func (rt *Router) handleFeedback(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var req proto.FeedbackRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding feedback: %w", err))
		return
	}
	rt.forward(w, r, &req.Query, body, "/feedback")
}

// forward relays the raw body to the key's owning replica, failing over in
// ring order on retryable errors. Non-retryable replies (4xx — a bad spec,
// stale feedback) are the replica's answer and are relayed verbatim: every
// replica would say the same.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, spec *proto.QuerySpec, body []byte, path string) {
	var lastErr error
	for _, node := range rt.ring.Sequence(proto.SpecKey(spec)) {
		var reply json.RawMessage
		err := rt.client.PostJSON(r.Context(), node+path, json.RawMessage(body), &reply)
		if err == nil {
			writeJSON(w, reply)
			return
		}
		var se *proto.StatusError
		if errors.As(err, &se) && se.Code < 500 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(se.Code)
			_, _ = io.WriteString(w, se.Body)
			return
		}
		lastErr = err
	}
	httpError(w, http.StatusBadGateway, fmt.Errorf("no replica reachable for this query: %w", lastErr))
}

// handleStats fans out to every replica's /stats and returns the fleet view
// keyed by replica URL; unreachable replicas report an error entry instead
// of failing the whole call.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	out := make(map[string]json.RawMessage, len(rt.ring.Nodes()))
	for _, node := range rt.ring.Nodes() {
		var st json.RawMessage
		if err := rt.client.GetJSON(r.Context(), node+"/stats", &st); err != nil {
			msg, _ := json.Marshal(map[string]string{"error": err.Error()})
			st = msg
		}
		out[node] = st
	}
	writeJSON(w, map[string]any{"replicas": out})
}
