// Package detrange is a neo-lint self-test fixture. Every want comment is
// an expected finding on its line; lines without one must stay silent. The
// fixture is loaded by fixtures_test.go with this package configured as
// determinism-critical.
package detrange

import (
	"fmt"
	"sort"
)

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends to out"
		out = append(out, k)
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // collect-then-sort is the canonical fix: no finding
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "accumulates into sum"
		sum += v
	}
	return sum
}

func countEntries(m map[string]int) int {
	n := 0
	for range m { // integer counting is exact and commutative: no finding
		n++
	}
	return n
}

func copyKeyed(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // writes keyed by the range key: no finding
		out[k] = v
	}
	return out
}

func writeUnkeyed(m map[string]int, dst map[int]string) {
	i := 0
	for k := range m { // want "writes dst"
		dst[i] = k
		i++
	}
}

func firstValue(m map[string]int) int {
	for _, v := range m { // want "returns a non-constant value"
		return v
	}
	return 0
}

func lastKey(m map[string]int) string {
	last := ""
	for k := range m { // want "overwrites last"
		last = k
	}
	return last
}

func callsOut(m map[string]int) {
	for k := range m { // want "calls out"
		observe(k)
	}
}

func observe(string) {}

func pureCalls(m map[string]int) {
	for k, v := range m { // fmt.Sprintf into a loop-local is pure: no finding
		s := fmt.Sprintf("%s=%d", k, v)
		_ = s
	}
}

func deleteSelf(m map[string]int) {
	for k := range m { // deleting the range key is the sanctioned idiom
		if k == "" {
			delete(m, k)
		}
	}
}

func deleteOther(m map[string]int) {
	for k := range m { // want "deletes a key other than the range key"
		delete(m, k+"-alias")
	}
}

func suppressed(m map[string]int) []string {
	var out []string
	//neo:lint-ok detrange fixture demonstrates a reviewed suppression site
	for k := range m {
		out = append(out, k)
	}
	return out
}
