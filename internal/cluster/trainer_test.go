package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"neo/internal/checkpoint"
	"neo/internal/cluster/proto"
)

func asStatus(err error, se **proto.StatusError) bool { return errors.As(err, se) }

// TestTrainerPublishesAndIngests pins the trainer contract end to end: the
// initial snapshot is published at creation, GET /snapshot restores a
// bit-identical system, POST /experience ingests replica batches and
// triggers retraining at the configured cadence, and the retrained network
// is published as a new downloadable version while the old one stays
// available for rollback.
func TestTrainerPublishesAndIngests(t *testing.T) {
	sys, queries := testSystem(t, true)
	trainer, err := NewTrainer(sys, TrainerConfig{RetrainEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()
	ts := httptest.NewServer(trainer)
	defer ts.Close()
	ctx := context.Background()
	client := proto.Client{}

	v0 := trainer.NetVersion()
	payload, hdr, err := client.GetBytes(ctx, ts.URL+"/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if got := hdr.Get(proto.HeaderNetVersion); got != strconv.FormatUint(v0, 10) {
		t.Fatalf("snapshot version header %q, want %d", got, v0)
	}
	// The container restores a second system to identical planning.
	replica, _ := testSystem(t, false)
	if err := replica.LoadCheckpoint(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	if replica.Neo.NetVersion() != v0 {
		t.Fatalf("restored version %d, want %d", replica.Neo.NetVersion(), v0)
	}
	for _, q := range queries[:2] {
		want, _, err := sys.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := replica.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("snapshot-restored system plans differently:\n  %s\n  %s", got, want)
		}
	}

	// Ingest a replica-style experience batch big enough to trigger a
	// retraining round.
	entries := sys.Neo.Experience.Entries()[:4]
	var buf bytes.Buffer
	if err := checkpoint.SaveExperience(&buf, entries); err != nil {
		t.Fatal(err)
	}
	before := sys.Neo.Experience.Len()
	var resp proto.ExperienceResponse
	if err := client.PostBytes(ctx, ts.URL+"/experience", buf.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 4 || resp.Experience != before+4 {
		t.Fatalf("ingest reply %+v, want 4 accepted onto %d", resp, before)
	}
	if !resp.RetrainTriggered {
		t.Fatal("4 entries at RetrainEvery=4 did not trigger retraining")
	}
	waitFor(t, 30*time.Second, "retrain to publish a new version", func() bool {
		return trainer.Stats().Retrains >= 1 && trainer.NetVersion() > v0
	})
	st := trainer.Stats()
	if st.Batches != 1 || st.Accepted != 4 {
		t.Fatalf("stats %+v", st)
	}
	if len(st.Versions) != 2 {
		t.Fatalf("published versions %v, want old and new", st.Versions)
	}
	// The superseded version stays downloadable (rollback material).
	old, hdr2, err := client.GetBytes(ctx, ts.URL+"/snapshot?version="+strconv.FormatUint(v0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if hdr2.Get(proto.HeaderNetVersion) != strconv.FormatUint(v0, 10) || !bytes.Equal(old, payload) {
		t.Fatal("historical snapshot changed after retraining")
	}
}

// TestTrainerRejectsDamagedBatches pins that a damaged experience container
// is rejected with 400 — the replica's retry policy must not waste attempts
// on a payload that can never ingest.
func TestTrainerRejectsDamagedBatches(t *testing.T) {
	sys, _ := testSystem(t, true)
	trainer, err := NewTrainer(sys, TrainerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()
	ts := httptest.NewServer(trainer)
	defer ts.Close()

	c := fastClient()
	err = c.PostBytes(context.Background(), ts.URL+"/experience", []byte("NOTACKPT-garbage"), nil)
	var se *proto.StatusError
	if !asStatus(err, &se) || se.Code != 400 {
		t.Fatalf("damaged container: got %v, want 400", err)
	}
	if proto.Retryable(err) {
		t.Fatal("damaged-container rejection reported retryable")
	}
	if got := trainer.Stats().Batches; got != 0 {
		t.Fatalf("damaged batch counted as ingested (%d)", got)
	}
	// Unknown snapshot versions 404.
	_, _, err = c.GetBytes(context.Background(), ts.URL+"/snapshot?version=999999")
	if !asStatus(err, &se) || se.Code != 404 {
		t.Fatalf("unknown version: got %v, want 404", err)
	}
}
