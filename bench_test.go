// Package repro holds the top-level benchmark harness: one benchmark per
// table and figure of the paper's evaluation (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// Run the full harness with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its table/figure with laptop-scale settings and
// prints the resulting report; key scalar outcomes are also exposed through
// b.ReportMetric so they appear in the benchmark output.
package repro

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"neo/internal/experiments"
	"neo/internal/valuenet"
)

// benchConfig returns the settings used by the benchmark harness: smaller
// than experiments.Quick so that the full set of figures regenerates in
// minutes.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:            0.2,
		Seed:             42,
		Episodes:         4,
		TrainQueries:     10,
		TestQueries:      5,
		SearchExpansions: 48,
		EmbeddingDim:     10,
		Net: valuenet.Config{
			QueryLayers:  []int{32, 16},
			TreeChannels: []int{32, 32, 16},
			HeadLayers:   []int{16},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         7,
		},
	}
}

var (
	envOnce   sync.Once
	sharedEnv *experiments.Env
	envErr    error
)

// benchEnv lazily builds one shared environment (databases, statistics,
// workloads, embeddings) reused by every benchmark.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		sharedEnv, envErr = experiments.NewEnv(benchConfig())
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return sharedEnv
}

// runExperiment executes one experiment with the given engine/workload
// restriction, printing the report and reporting a headline metric.
func runExperiment(b *testing.B, name string, engines, workloads []string) *experiments.Report {
	b.Helper()
	env := benchEnv(b)
	savedEngines, savedWorkloads := env.Config.Engines, env.Config.Workloads
	env.Config.Engines, env.Config.Workloads = engines, workloads
	defer func() { env.Config.Engines, env.Config.Workloads = savedEngines, savedWorkloads }()

	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.Run(name, env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(rep.String())
	return rep
}

// lastColumnMean averages the last numeric column of a report, a convenient
// headline metric (most reports end in a relative-performance column).
func lastColumnMean(rep *experiments.Report) float64 {
	if len(rep.Rows) == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, row := range rep.Rows {
		if len(row) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkTable2RowVectorSimilarity regenerates Table 2: row-vector cosine
// similarity vs. true cardinality for correlated keyword/genre pairs.
func BenchmarkTable2RowVectorSimilarity(b *testing.B) {
	rep := runExperiment(b, "table2", nil, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "mean_cardinality")
}

// BenchmarkFigure9OverallPerformance regenerates Figure 9: Neo's relative
// performance vs. each engine's native optimizer on each workload.
func BenchmarkFigure9OverallPerformance(b *testing.B) {
	rep := runExperiment(b, "fig9", nil, nil)
	b.ReportMetric(lastColumnMean(rep), "mean_pg_over_native")
}

// BenchmarkFigure10LearningCurves regenerates Figure 10's learning curves
// (restricted to two engines on JOB to keep the harness fast; pass -full to
// cmd/neo-experiments for the complete grid).
func BenchmarkFigure10LearningCurves(b *testing.B) {
	rep := runExperiment(b, "fig10", []string{"postgres", "engine-m"}, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "mean_pg_over_native")
}

// BenchmarkFigure11TrainingTime regenerates Figure 11: the training cost to
// match the PostgreSQL-plan and native-optimizer milestones.
func BenchmarkFigure11TrainingTime(b *testing.B) {
	runExperiment(b, "fig11", nil, []string{"job"})
}

// BenchmarkFigure12Featurization regenerates Figure 12: the featurization
// ablation (restricted to the postgres engine in the harness).
func BenchmarkFigure12Featurization(b *testing.B) {
	rep := runExperiment(b, "fig12", []string{"postgres"}, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "mean_neo_over_native")
}

// BenchmarkFigure13ExtJOB regenerates Figure 13: generalisation to entirely
// new queries before and after five extra episodes.
func BenchmarkFigure13ExtJOB(b *testing.B) {
	rep := runExperiment(b, "fig13", []string{"postgres"}, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "mean_after_over_native")
}

// BenchmarkFigure14CardinalityRobustness regenerates Figure 14: sensitivity
// of the value network's output to injected cardinality-estimation error.
func BenchmarkFigure14CardinalityRobustness(b *testing.B) {
	rep := runExperiment(b, "fig14", []string{"postgres"}, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "mean_output_shift")
}

// BenchmarkFigure15PerQuery regenerates Figure 15: per-query improvement
// under the workload-cost and relative-cost objectives.
func BenchmarkFigure15PerQuery(b *testing.B) {
	runExperiment(b, "fig15", []string{"postgres"}, []string{"job"})
}

// BenchmarkFigure16SearchTime regenerates Figure 16: plan quality as a
// function of the search budget, grouped by the number of joins.
func BenchmarkFigure16SearchTime(b *testing.B) {
	rep := runExperiment(b, "fig16", []string{"postgres"}, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "mean_latency_over_best")
}

// BenchmarkFigure17RowVectorTraining regenerates Figure 17: row-vector
// training time for the joins / no-joins variants on every dataset.
func BenchmarkFigure17RowVectorTraining(b *testing.B) {
	runExperiment(b, "fig17", nil, nil)
}

// BenchmarkAblationNoDemonstration regenerates the Section 6.3.3 ablation:
// expert bootstrap vs. random bootstrap.
func BenchmarkAblationNoDemonstration(b *testing.B) {
	rep := runExperiment(b, "nodemo", []string{"postgres"}, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "mean_neo_over_native")
}

// BenchmarkAblationSearchVsGreedy compares best-first search against greedy
// plan construction with the same value network.
func BenchmarkAblationSearchVsGreedy(b *testing.B) {
	rep := runExperiment(b, "searchvsgreedy", []string{"postgres"}, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "greedy_over_search")
}

// BenchmarkAblationTreeConvVsFlat compares the tree-structured plan encoding
// against a flattened one.
func BenchmarkAblationTreeConvVsFlat(b *testing.B) {
	rep := runExperiment(b, "treeconvvsflat", []string{"postgres"}, []string{"job"})
	b.ReportMetric(lastColumnMean(rep), "flat_over_tree")
}
