package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"neo/internal/core"
	"neo/internal/plan"
)

// TestExperienceContainerRoundTrip pins the replica→trainer wire artifact:
// a stand-alone experience container round-trips queries, plan trees and
// latencies exactly, deduplicating repeated queries into shared pointers.
func TestExperienceContainerRoundTrip(t *testing.T) {
	q1, q2 := testQuery("q1"), testQuery("q2")
	p1 := &plan.Plan{Query: q1, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin, plan.Leaf("a", plan.TableScan), plan.Leaf("b", plan.IndexScan)),
	}}
	p2 := &plan.Plan{Query: q2, Roots: []*plan.Node{
		plan.Join2(plan.MergeJoin, plan.Leaf("b", plan.TableScan), plan.Leaf("a", plan.TableScan)),
	}}
	in := []core.Entry{
		{Query: q1, Plan: p1, Latency: 12.5},
		{Query: q1, Plan: p1, Latency: 11.25},
		{Query: q2, Plan: p2, Latency: 99},
	}
	var buf bytes.Buffer
	if err := SaveExperience(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := LoadExperience(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d entries, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i].Latency != in[i].Latency {
			t.Errorf("entry %d latency %v, want %v", i, got[i].Latency, in[i].Latency)
		}
		if got[i].Query.Signature() != in[i].Query.Signature() {
			t.Errorf("entry %d query signature mismatch", i)
		}
		if got[i].Plan.String() != in[i].Plan.String() {
			t.Errorf("entry %d plan %s, want %s", i, got[i].Plan, in[i].Plan)
		}
	}
	if got[0].Query != got[1].Query {
		t.Error("repeated query not deduplicated into one restored pointer")
	}
	if got[0].Plan.Query != got[0].Query {
		t.Error("restored plan not bound to its restored query")
	}
}

// TestExperienceContainerRejectsDamage pins that the wire artifact fails
// with the package sentinels a trainer keys its HTTP statuses on.
func TestExperienceContainerRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveExperience(&buf, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := LoadExperience(bytes.NewReader([]byte("NOTACKPT"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	if _, err := LoadExperience(bytes.NewReader(data[:len(data)-1])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: got %v", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x40
	if _, err := LoadExperience(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt payload: got %v", err)
	}
	// A full checkpoint is a superset: LoadExperience reads its experience
	// section and ignores the rest.
	st := testState(t)
	var full bytes.Buffer
	if err := Save(&full, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadExperience(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(st.Experience) {
		t.Fatalf("full checkpoint: got %d entries, want %d", len(got), len(st.Experience))
	}
}
