package route

import (
	"testing"
	"time"

	"neo/internal/query"
	"neo/internal/storage"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"", Full, false},
		{"full", Full, false},
		{"fastpath", Fastpath, false},
		{"auto", Auto, false},
		{"bogus", Full, true},
		{"AUTO", Full, true},
	}
	for _, tc := range cases {
		got, err := ParseMode(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseMode(%q) error = %v, want error %v", tc.in, err, tc.err)
		}
		if got != tc.want {
			t.Errorf("ParseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, m := range []Mode{Full, Fastpath, Auto} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip of %v failed: got %v, err %v", m, back, err)
		}
	}
	// The zero value must be the historical behaviour.
	var zero Mode
	if zero != Full {
		t.Errorf("zero Mode should be Full")
	}
}

// yearEq is a visible equality predicate for tests that want a class the
// auto heuristic routes to the fast path.
var yearEq = []query.Predicate{{Table: "title", Column: "production_year", Op: query.Eq, Value: storage.IntValue(2000)}}

// chainQuery builds title—movie_keyword—keyword (every relation joins at most
// two others).
func chainQuery(preds []query.Predicate) *query.Query {
	return query.New("chain",
		[]string{"title", "movie_keyword", "keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		}, preds)
}

// starQuery builds a hub (title) with three spokes.
func starQuery(preds []query.Predicate) *query.Query {
	return query.New("star",
		[]string{"title", "movie_keyword", "movie_info", "cast_info"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "cast_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
		}, preds)
}

func TestClassifyShapes(t *testing.T) {
	single := query.New("single", []string{"title"}, nil, yearEq)
	if c := Classify(single); c.Shape != "single" || c.NumJoins != 0 || !c.SelVisible {
		t.Errorf("single: %+v", c)
	}
	if got, want := Classify(single).Key(), "single/0j/sel"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}

	if c := Classify(chainQuery(nil)); c.Shape != "chain" || c.SelVisible {
		t.Errorf("chain: %+v", c)
	}
	if c := Classify(starQuery(nil)); c.Shape != "star" {
		t.Errorf("star: %+v", c)
	}

	// A two-relation query is both a minimal chain and a minimal star; the
	// chain arm must win deterministically.
	pair := query.New("pair", []string{"title", "movie_keyword"},
		[]query.JoinPredicate{{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"}}, nil)
	if c := Classify(pair); c.Shape != "chain" {
		t.Errorf("pair: %+v", c)
	}

	// A cycle has n edges, not n−1.
	cycle := query.New("cycle", []string{"a", "b", "c"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "b", LeftColumn: "y", RightTable: "c", RightColumn: "y"},
			{LeftTable: "c", LeftColumn: "z", RightTable: "a", RightColumn: "z"},
		}, nil)
	if c := Classify(cycle); c.Shape != "general" {
		t.Errorf("cycle: %+v", c)
	}

	// Disconnected graphs are general no matter the degrees.
	disc := query.New("disc", []string{"a", "b", "c", "d"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "c", LeftColumn: "y", RightTable: "d", RightColumn: "y"},
		}, nil)
	if c := Classify(disc); c.Shape != "general" {
		t.Errorf("disconnected: %+v", c)
	}

	// Parallel join predicates between the same pair collapse to one edge, so
	// a chain with a composite join key stays a chain, not a cycle.
	parallel := query.New("parallel", []string{"a", "b"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "a", LeftColumn: "y", RightTable: "b", RightColumn: "y"},
		}, nil)
	if c := Classify(parallel); c.Shape != "chain" {
		t.Errorf("parallel edges: %+v", c)
	}
}

func TestForcedModes(t *testing.T) {
	q := chainQuery(nil)
	cycle := query.New("cycle", []string{"a", "b", "c"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "b", LeftColumn: "y", RightTable: "c", RightColumn: "y"},
			{LeftTable: "c", LeftColumn: "z", RightTable: "a", RightColumn: "z"},
		}, nil)

	full := New(Full, Policy{})
	if full.Decide(q).Fastpath {
		t.Errorf("Full mode routed to fastpath")
	}
	fp := New(Fastpath, Policy{})
	if !fp.Decide(cycle).Fastpath {
		t.Errorf("Fastpath mode must force the fast path even for general shapes")
	}
}

func TestAutoHeuristic(t *testing.T) {
	r := New(Auto, Policy{})

	if !r.Decide(query.New("s", []string{"title"}, nil, nil)).Fastpath {
		t.Errorf("single relation should go fastpath")
	}
	if !r.Decide(chainQuery(yearEq)).Fastpath {
		t.Errorf("small chain with visible selectivity should go fastpath")
	}
	if r.Decide(chainQuery(nil)).Fastpath {
		t.Errorf("a chain without predicates gives the greedy ordering no signal; keep the full search")
	}
	if !r.Decide(starQuery(yearEq)).Fastpath {
		t.Errorf("3-join star with visible selectivity should go fastpath")
	}
	if r.Decide(starQuery(nil)).Fastpath {
		t.Errorf("a predicate-free star should keep the full search")
	}
	cycle := query.New("cycle", []string{"a", "b", "c"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "b", LeftColumn: "y", RightTable: "c", RightColumn: "y"},
			{LeftTable: "c", LeftColumn: "z", RightTable: "a", RightColumn: "z"},
		}, nil)
	if r.Decide(cycle).Fastpath {
		t.Errorf("cyclic join graph should keep the full search")
	}

	// Beyond MaxFastpathJoins even a selective chain keeps the full search.
	tight := New(Auto, Policy{MaxFastpathJoins: 1})
	if tight.Decide(chainQuery(yearEq)).Fastpath {
		t.Errorf("chain above MaxFastpathJoins should keep the full search")
	}

	// A long chain without visible selectivity has nothing to order by.
	long := query.New("long", []string{"a", "b", "c", "d", "e", "f"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "b", LeftColumn: "x", RightTable: "c", RightColumn: "x"},
			{LeftTable: "c", LeftColumn: "x", RightTable: "d", RightColumn: "x"},
			{LeftTable: "d", LeftColumn: "x", RightTable: "e", RightColumn: "x"},
			{LeftTable: "e", LeftColumn: "x", RightTable: "f", RightColumn: "x"},
		}, nil)
	if r.Decide(long).Fastpath {
		t.Errorf("a 5-join chain with no predicates should keep the full search")
	}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	queries := []*query.Query{
		chainQuery(nil),
		chainQuery(yearEq),
		starQuery(nil),
		query.New("s", []string{"title"}, nil, nil),
	}
	a, b := New(Auto, Policy{}), New(Auto, Policy{})
	for _, q := range queries {
		for i := 0; i < 3; i++ {
			da, db := a.Decide(q), b.Decide(q)
			if da != db {
				t.Errorf("identical routers disagree on %s: %+v vs %+v", q.ID, da, db)
			}
		}
	}
}

func TestRegretDemotionIsSticky(t *testing.T) {
	r := New(Auto, Policy{MinRegretSamples: 3, RegretThreshold: 1.5})
	q := chainQuery(yearEq)
	key := Classify(q).Key()

	if !r.Decide(q).Fastpath {
		t.Fatalf("chain should start on the fast path")
	}
	if !r.NeedsOutcome(q) {
		t.Fatalf("auto mode with fast-path decisions should want outcomes")
	}
	// Two terrible samples: below MinRegretSamples, no demotion yet.
	r.RecordOutcome(key, 30, 1)
	r.RecordOutcome(key, 30, 1)
	if !r.Decide(q).Fastpath {
		t.Fatalf("demotion before MinRegretSamples")
	}
	// Third sample crosses the sample floor with mean ratio 30 > 1.5.
	r.RecordOutcome(key, 30, 1)
	if r.Decide(q).Fastpath {
		t.Fatalf("class should be demoted after %d samples of 30× regret", 3)
	}
	if r.NeedsOutcome(q) {
		t.Errorf("demoted class should not request more outcomes")
	}
	// Sticky: even a flood of perfect samples cannot undo the demotion.
	for i := 0; i < 20; i++ {
		r.RecordOutcome(key, 1, 1)
	}
	if r.Decide(q).Fastpath {
		t.Errorf("demotion must be sticky")
	}

	st := r.Stats()
	if len(st.Classes) != 1 || !st.Classes[0].ReroutedFull {
		t.Errorf("stats should report the demotion: %+v", st.Classes)
	}
}

func TestRegretGuards(t *testing.T) {
	r := New(Auto, Policy{MinRegretSamples: 1, RegretThreshold: 1.5})
	q := chainQuery(yearEq)
	key := Classify(q).Key()
	r.Decide(q)
	// Non-positive observations and estimates are dropped, not folded in.
	r.RecordOutcome(key, 0, 1)
	r.RecordOutcome(key, -5, 1)
	r.RecordOutcome(key, 10, 0)
	if !r.Decide(q).Fastpath {
		t.Errorf("degenerate samples must not demote")
	}
	if st := r.Stats(); st.Classes[0].RegretSamples != 0 {
		t.Errorf("degenerate samples counted: %+v", st.Classes[0])
	}
}

func TestNeedsOutcomeGating(t *testing.T) {
	q := chainQuery(nil)
	for _, mode := range []Mode{Full, Fastpath} {
		r := New(mode, Policy{})
		r.Decide(q)
		if r.NeedsOutcome(q) {
			t.Errorf("%v mode should never request outcomes (it does not learn)", mode)
		}
	}
	r := New(Auto, Policy{})
	if r.NeedsOutcome(q) {
		t.Errorf("a class never routed should not request outcomes")
	}
	cycle := query.New("cycle", []string{"a", "b", "c"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "b", LeftColumn: "y", RightTable: "c", RightColumn: "y"},
			{LeftTable: "c", LeftColumn: "z", RightTable: "a", RightColumn: "z"},
		}, nil)
	r.Decide(cycle) // routed full
	if r.NeedsOutcome(cycle) {
		t.Errorf("a class with no fast-path decisions should not request outcomes")
	}
}

func TestStatsAggregation(t *testing.T) {
	r := New(Auto, Policy{})
	chain, star := chainQuery(yearEq), starQuery(yearEq)
	for i := 0; i < 3; i++ {
		d := r.Decide(chain)
		r.RecordFastpathLatency(d.Class, 10*time.Microsecond)
	}
	d := r.Decide(star)
	r.RecordFastpathLatency(d.Class, 5*time.Millisecond)

	st := r.Stats()
	if st.Mode != "auto" {
		t.Errorf("mode = %q", st.Mode)
	}
	if st.Fastpath != 4 || st.Full != 0 {
		t.Errorf("totals: %+v", st)
	}
	if len(st.Classes) != 2 {
		t.Fatalf("expected 2 classes, got %+v", st.Classes)
	}
	// Sorted by key: chain/2j/sel before star/3j/sel.
	if st.Classes[0].Class >= st.Classes[1].Class {
		t.Errorf("classes not sorted: %q, %q", st.Classes[0].Class, st.Classes[1].Class)
	}
	// Bucketed percentiles overestimate by at most 2×.
	chainStats := st.Classes[0]
	if chainStats.FastpathP50US < 10 || chainStats.FastpathP50US > 20 {
		t.Errorf("chain P50 = %vµs, want within [10, 20]", chainStats.FastpathP50US)
	}
	// The aggregate P99 must land in the slow class's bucket range.
	if st.FastpathP99US < 5000 || st.FastpathP99US > 10000 {
		t.Errorf("aggregate P99 = %vµs, want within [5000, 10000]", st.FastpathP99US)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h latencyHist
	if h.quantileUS(0.5) != 0 {
		t.Errorf("empty histogram should report 0")
	}
	for i := 0; i < 99; i++ {
		h.observe(1 * time.Microsecond)
	}
	h.observe(100 * time.Millisecond) // beyond the last bucket bound
	if p50 := h.quantileUS(0.50); p50 < 1 || p50 > 2.048 {
		t.Errorf("P50 = %v, want the ~1µs bucket", p50)
	}
	if p99 := h.quantileUS(0.99); p99 < 50_000 {
		t.Errorf("P99 = %v, should land in the overflow region", p99)
	}
}
