// Batched inference. Predict runs one (query, forest) pair through the
// network; PredictBatch runs a whole slice of pairs through one shared
// forward pass built on the batch primitives of nn and treeconv:
//
//   - the query-level MLP runs once per *distinct* query vector (plan search
//     scores many candidate plans of the same query, so the query tower's
//     work is amortised across the whole batch),
//   - spatial replication writes every augmented node vector straight into a
//     flattened forest batch (no per-node tree copies),
//   - tree convolution and dynamic pooling run over the flattened batch, and
//   - the head MLP maps all pooled vectors to predictions in one call.
//
// All intermediate storage comes from a pooled scratch arena, so steady-state
// batched inference is allocation-free apart from the returned slice, and
// PredictBatch is safe for concurrent use (inference only reads the weights).
package valuenet

import (
	"sync"

	"neo/internal/treeconv"
)

// batchScratch is the per-call reusable state of PredictBatch.
type batchScratch struct {
	conv    treeconv.BatchScratch
	builder treeconv.BatchBuilder
	// Query deduplication state.
	qVecs  [][]float64 // distinct query vectors, in first-seen order
	qIndex []int       // sample -> index into qVecs
	qFlat  []float64   // flattened distinct query vectors
}

var scratchPool = sync.Pool{New: func() interface{} { return &batchScratch{} }}

// PredictBatch returns the network's cost predictions (in the original cost
// domain) for a slice of encoded (query, plan-forest) pairs, evaluated in one
// shared forward pass. It is equivalent to calling Predict per pair but
// amortises the query tower, tree convolution and head across the batch.
// Safe for concurrent use by multiple goroutines.
func (n *Network) PredictBatch(queries [][]float64, forests [][]*treeconv.Tree) []float64 {
	out := n.PredictBatchNormalized(queries, forests)
	for i, v := range out {
		out[i] = n.denormalize(v)
	}
	return out
}

// PredictBatchNormalized is PredictBatch in normalised log-cost space (the
// batched analogue of PredictNormalized).
func (n *Network) PredictBatchNormalized(queries [][]float64, forests [][]*treeconv.Tree) []float64 {
	if len(queries) != len(forests) {
		panic("valuenet: PredictBatch queries/forests length mismatch")
	}
	rows := len(queries)
	if rows == 0 {
		return nil
	}
	st := scratchPool.Get().(*batchScratch)
	defer func() {
		st.conv.Reset()
		scratchPool.Put(st)
	}()
	arena := &st.conv.Arena

	// Deduplicate query vectors by slice identity: during plan search every
	// sample of a batch shares the query's encoding, so the query MLP runs
	// once. Distinctness is decided on the slice header (pointer + length),
	// which is exact for cached encodings and merely conservative otherwise.
	st.qVecs = st.qVecs[:0]
	if cap(st.qIndex) < rows {
		st.qIndex = make([]int, rows)
	}
	st.qIndex = st.qIndex[:rows]
	for s, q := range queries {
		idx := -1
		for u, uq := range st.qVecs {
			if len(uq) == len(q) && (len(q) == 0 || &uq[0] == &q[0]) {
				idx = u
				break
			}
		}
		if idx < 0 {
			idx = len(st.qVecs)
			st.qVecs = append(st.qVecs, q)
		}
		st.qIndex[s] = idx
	}
	st.qFlat = st.qFlat[:0]
	for _, q := range st.qVecs {
		if len(q) != n.queryDim {
			panic("valuenet: PredictBatch query vector dimension mismatch")
		}
		st.qFlat = append(st.qFlat, q...)
	}
	g := n.qmlp.ForwardBatch(st.qFlat, len(st.qVecs), arena)
	qOut := len(g) / len(st.qVecs)

	// Spatial replication straight into the flattened forest batch: each node
	// row is the node's plan vector followed by its sample's query embedding.
	channels := n.planDim + qOut
	batch := st.builder.Build(forests, channels, func(sample int, node *treeconv.Tree, row []float64) {
		if len(node.Data) != n.planDim {
			panic("valuenet: PredictBatch plan vector dimension mismatch")
		}
		copy(row[:n.planDim], node.Data)
		copy(row[n.planDim:], g[st.qIndex[sample]*qOut:(st.qIndex[sample]+1)*qOut])
	})

	conv := n.conv.ForwardBatch(batch, &st.conv)
	pooled := treeconv.PoolBatch(conv, arena)
	head := n.head.ForwardBatch(pooled, rows, arena)

	out := make([]float64, rows)
	copy(out, head)
	return out
}
