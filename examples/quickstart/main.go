// Quickstart: assemble a Neo system over the correlated IMDB-like database,
// bootstrap it from the PostgreSQL-profile expert optimizer, refine it for a
// few reinforcement-learning episodes, and compare its plans against the
// engine's native optimizer on held-out queries.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"neo/pkg/neo"
)

func main() {
	// Open assembles the whole substrate: synthetic database, statistics,
	// row-vector embedding, simulated engine, classical optimizers and an
	// untrained Neo.
	sys, err := neo.Open(neo.Config{
		Dataset:  "imdb",
		Engine:   "postgres",
		Encoding: neo.RVector,
		Scale:    0.3,
		Seed:     42,
		Episodes: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database ready: %d rows across %d tables\n", sys.DB.TotalRows(), sys.Catalog.NumRelations())

	// A representative sample workload, split 80/20 as in the paper.
	wl, err := sys.GenerateWorkload(20)
	if err != nil {
		log.Fatal(err)
	}
	train, test := wl.Split(0.8, 1)
	fmt.Printf("workload: %d training queries, %d held-out queries\n", len(train), len(test))

	// Phase 1 (Expertise Collection + Model Building): execute the expert's
	// plans and train the value network on the resulting experience.
	fmt.Println("bootstrapping from the expert optimizer ...")
	if err := sys.Bootstrap(train); err != nil {
		log.Fatal(err)
	}

	// Phase 2 (Model Refinement): each episode, Neo plans every training
	// query with its value network + best-first search, executes the plans,
	// and learns from the observed latencies.
	fmt.Println("refining ...")
	episodes, err := sys.Train(train)
	if err != nil {
		log.Fatal(err)
	}
	for _, ep := range episodes {
		fmt.Printf("  episode %d: normalized latency %.3f\n", ep.Episode, ep.NormalizedLatency)
	}

	// Held-out comparison against the engine's native optimizer.
	fmt.Println("\nheld-out queries (simulated ms):")
	var neoTotal, nativeTotal float64
	for _, q := range test {
		neoLat, nativeLat, err := sys.Compare(q)
		if err != nil {
			log.Fatal(err)
		}
		neoTotal += neoLat
		nativeTotal += nativeLat
		fmt.Printf("  %-12s neo=%8.2f native=%8.2f\n", q.ID, neoLat, nativeLat)
	}
	fmt.Printf("\nrelative performance (neo/native, lower is better): %.3f\n", neoTotal/nativeTotal)

	// Persistence: checkpoint the trained optimizer, restore it into a
	// freshly opened system, and confirm the restored system serves the
	// same plan — continuous learning survives restarts.
	ckpt := filepath.Join(os.TempDir(), "neo-quickstart.ckpt")
	if err := sys.SaveCheckpointFile(ckpt); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(ckpt)
	fmt.Printf("\ncheckpoint written to %s\n", ckpt)

	restored, err := neo.Open(sys.Config) // same config: same substrate
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.LoadCheckpointFile(ckpt); err != nil {
		log.Fatal(err)
	}
	q := test[0]
	before, _, err := sys.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	after, _, err := restored.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan for %s before restart: %s\n", q.ID, before)
	fmt.Printf("plan for %s after restart:  %s\n", q.ID, after)
	if before.String() == after.String() {
		fmt.Println("warm restart serves the identical plan.")
	}

	// Reduced-precision serving: the same checkpoint can be served through
	// the float32 inference kernels (Config.ScorePrecision, or the CLIs'
	// -score-precision flag — neo-serve defaults to float32). Training
	// always stays float64; only the frozen serving snapshot converts, and
	// float32 plan choices are pinned identical to float64 by the test
	// suite. An "int8" mode trades a documented score tolerance for ~4x
	// smaller weight panels.
	f32cfg := sys.Config
	f32cfg.ScorePrecision = "float32"
	fast, err := neo.Open(f32cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := fast.LoadCheckpointFile(ckpt); err != nil {
		log.Fatal(err)
	}
	info := fast.SnapshotInfo()
	fmt.Printf("\nserving precision %s: %.0f KiB of inference panels (float64 params: %.0f KiB)\n",
		info.Precision, float64(info.PanelBytes)/1024, float64(info.ParamBytes)/1024)
	f32Plan, _, err := fast.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	if f32Plan.String() == before.String() {
		fmt.Println("float32 serving chooses the identical plan.")
	}

	// From here the system scales out as a service: cmd/neo-serve exposes
	// /optimize + /feedback over HTTP, and a replicated fleet with a shared
	// trainer is a flag away — see OPERATIONS.md at the repo root and
	// examples/distributed_serving for the full tour.
	fmt.Println("\nnext: go run ./examples/distributed_serving (see OPERATIONS.md)")
}
