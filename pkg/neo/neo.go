package neo

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neo/internal/core"
	"neo/internal/datagen"
	"neo/internal/embedding"
	"neo/internal/engine"
	"neo/internal/executor"
	"neo/internal/experiments"
	"neo/internal/expert"
	"neo/internal/feature"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/route"
	"neo/internal/sched"
	"neo/internal/schema"
	"neo/internal/search"
	"neo/internal/stats"
	"neo/internal/storage"
	"neo/internal/valuenet"
	"neo/internal/workload"
)

// Re-exported types: the facade exposes the substrate's types under stable
// names so downstream code only imports this package.
type (
	// Query is a select-project-equijoin-aggregate query.
	Query = query.Query
	// Predicate is a single-table filter.
	Predicate = query.Predicate
	// JoinPredicate is an equi-join predicate.
	JoinPredicate = query.JoinPredicate
	// Plan is a (partial or complete) execution plan.
	Plan = plan.Plan
	// PlanNode is one node of a plan tree.
	PlanNode = plan.Node
	// Catalog describes the database schema.
	Catalog = schema.Catalog
	// Database is the in-memory column store.
	Database = storage.Database
	// Workload is a named set of queries.
	Workload = workload.Workload
	// Engine is a simulated execution engine.
	Engine = engine.Engine
	// EngineProfile holds an engine's cost coefficients.
	EngineProfile = engine.Profile
	// Optimizer is Neo itself (the learned optimizer).
	Optimizer = core.Neo
	// ExpertOptimizer is a classical Selinger-style optimizer.
	ExpertOptimizer = expert.Optimizer
	// Featurizer converts queries and plans into network inputs.
	Featurizer = feature.Featurizer
	// Encoding selects the predicate featurization.
	Encoding = feature.Encoding
	// SearchResult reports the outcome of a plan search.
	SearchResult = search.Result
	// BatchScorer is the batched scoring contract driving the plan search:
	// all children of an expanded node are scored in one call. Use it with
	// OptimizeWith; adapt a per-plan PlanScorer with Batched.
	BatchScorer = search.BatchScorer
	// PlanScorer is the per-plan scoring interface; adapt one to a
	// BatchScorer with Batched.
	PlanScorer = search.Scorer
	// EpisodeStats summarises one training episode.
	EpisodeStats = core.EpisodeStats
	// ExperimentReport is the tabular output of one reproduction experiment.
	ExperimentReport = experiments.Report
	// ExperimentConfig scales the experiment suite.
	ExperimentConfig = experiments.Config
	// ValueNetConfig configures the value-network architecture.
	ValueNetConfig = valuenet.Config
	// FusionStats reports the cross-request inference scheduler's cumulative
	// fusion counters (see Config.FuseScoring and System.FusionStats).
	FusionStats = sched.Stats
	// SnapshotInfo describes the serving snapshot's scoring precision and
	// memory footprint (see Config.ScorePrecision and System.SnapshotInfo).
	SnapshotInfo = valuenet.SnapshotInfo
	// StorageStats reports the disk backend's buffer-pool counters (see
	// Config.Engine "disk" and System.StorageStats).
	StorageStats = storage.PoolStats
	// RouteStats reports the query router's per-class decision counters,
	// fast-path planning-latency percentiles and regret accounting (see
	// Config.Routing and System.RouteStats).
	RouteStats = route.StatsSnapshot
	// RouteClassStats is one query class's routing counters.
	RouteClassStats = route.ClassStats
	// RoutePolicy holds the auto-routing thresholds (see Config.RoutePolicy).
	RoutePolicy = route.Policy
)

// Value and comparison-operator re-exports, so callers can build predicates
// without importing internal packages.
type (
	// Value is a single cell / comparison value.
	Value = storage.Value
	// CmpOp is a predicate comparison operator.
	CmpOp = query.CmpOp
)

// Comparison operators.
const (
	Eq   = query.Eq
	Ne   = query.Ne
	Lt   = query.Lt
	Le   = query.Le
	Gt   = query.Gt
	Ge   = query.Ge
	Like = query.Like
)

// IntValue constructs an integer comparison value.
func IntValue(v int64) Value { return storage.IntValue(v) }

// StringValue constructs a string comparison value.
func StringValue(s string) Value { return storage.StringValue(s) }

// Featurization encodings (Section 3.2 / Section 5 of the paper).
const (
	OneHot         = feature.OneHot
	Histogram      = feature.Histogram
	RVector        = feature.RVector
	RVectorNoJoins = feature.RVectorNoJoins
)

// Cost functions (Section 6.4.4).
const (
	WorkloadCost = core.WorkloadCost
	RelativeCost = core.RelativeCost
)

// Config describes the system a caller wants to assemble.
type Config struct {
	// Dataset selects the synthetic database profile: "imdb" (JOB-like,
	// correlated), "tpch" (uniform) or "corp" (skewed dashboard).
	Dataset string
	// Engine selects the execution engine: "postgres", "sqlite", "engine-m"
	// or "engine-o" select a simulated engine (deterministic cost model plus
	// per-profile noise); "disk" selects the disk-backed engine, which
	// materializes the synthetic database into slotted-page heap files,
	// executes learned plans through a buffer pool with Volcano-style
	// iterators, and feeds measured wall-clock latencies into the learning
	// loop.
	Engine string
	// DataDir is where the "disk" engine keeps its heap files. Empty means a
	// fresh temporary directory; a persistent directory is reused across runs
	// when its heap files match the configured dataset (re-materialized
	// otherwise). Ignored by the simulated engines.
	DataDir string
	// BufferPoolMB sizes the disk engine's buffer pool in MiB (default 16).
	// Ignored by the simulated engines.
	BufferPoolMB int
	// Encoding selects the predicate featurization (default RVector).
	Encoding Encoding
	// Scale multiplies the synthetic data size (default 0.5).
	Scale float64
	// Seed drives every random choice (default 42).
	Seed int64
	// SearchExpansions is the plan-search budget (default 256).
	SearchExpansions int
	// Episodes is the default number of refinement episodes used by Train
	// (default 10).
	Episodes int
	// Workers sizes the worker pool Train, Evaluate and PlanAll use to fan
	// plan search and simulated execution out over goroutines (default
	// GOMAXPROCS). Episode statistics and evaluation results are
	// bit-identical to the serial path for a fixed seed regardless of the
	// worker count, unless the featurizer injects cardinality error
	// (stats.ErrorModel, the Figure 14 protocol — its perturbation stream
	// is drawn in scheduling order); pass a negative value to force serial
	// execution.
	Workers int
	// TrainWorkers sizes the data-parallel gradient worker pool each
	// retraining minibatch is sharded over (default GOMAXPROCS). Trained
	// weights are bit-identical for every worker count — the shard partition
	// and gradient-reduction order depend only on the minibatch size — so
	// parallel training never changes results; pass a negative value to
	// force serial training.
	TrainWorkers int
	// FuseScoring routes the batched-scoring submissions of every search —
	// Optimize, PlanAll workers, concurrent neo-serve requests — through one
	// shared micro-batching scheduler: submissions arriving within
	// FuseLinger of each other are fused into a single value-network forward
	// pass of up to MaxFusedBatch rows, so N concurrent searches approach
	// the cost of one large-batch scorer instead of N small ones. Fused
	// scores are bit-identical to private scoring, so plans, caches and
	// training are unaffected; the scheduler is drained and recreated on
	// every retraining swap, so one fused pass never mixes two weight sets.
	// A search running alone skips the linger — an idle system pays nothing.
	FuseScoring bool
	// MaxFusedBatch caps the rows of one fused forward pass (default 64).
	// Only meaningful with FuseScoring.
	MaxFusedBatch int
	// FuseLinger bounds how long a scoring submission waits to be fused
	// (default 200µs). Only meaningful with FuseScoring.
	FuseLinger time.Duration
	// ValueNet overrides the value-network architecture (default: a small
	// network structurally identical to the paper's).
	ValueNet *ValueNetConfig
	// ScorePrecision selects the numeric format the frozen serving snapshot
	// scores plans with: "float64" (or "", the exact historical default),
	// "float32" (packed tiled-GEMM inference kernels) or "int8" (symmetric
	// per-channel quantization calibrated from recorded featurizations; it
	// serves float32 until the experience holds calibration material).
	// Training always runs in float64 and checkpoints always persist the
	// float64 master weights — the conversion happens once per snapshot
	// publication, inside the atomic swap. Open rejects unknown values.
	ScorePrecision string
	// Cost selects the optimisation objective (default WorkloadCost).
	Cost core.CostFunction
	// Routing selects how queries are dispatched between the statistics-free
	// greedy fast path and the full DNN-guided best-first search: "full" (or
	// "", the historical default — every query takes the full search),
	// "fastpath" (forced greedy) or "auto" (per-class heuristic bootstrap,
	// refined online from observed-latency regret; see System.RouteStats).
	// Open rejects unknown values.
	Routing string
	// RoutePolicy overrides the auto-routing thresholds (nil selects the
	// defaults: fast path for chains/stars up to 8 joins, demotion after 8
	// regret samples with mean observed/estimated latency above 1.5).
	RoutePolicy *RoutePolicy
}

func (c Config) withDefaults() Config {
	if c.Dataset == "" {
		c.Dataset = "imdb"
	}
	if c.Engine == "" {
		c.Engine = "postgres"
	}
	if c.Encoding == "" {
		c.Encoding = RVector
	}
	if c.Scale == 0 {
		c.Scale = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.SearchExpansions == 0 {
		c.SearchExpansions = 256
	}
	if c.Episodes == 0 {
		c.Episodes = 10
	}
	return c
}

// System bundles a synthetic database, a simulated engine, the classical
// optimizers and a Neo instance.
type System struct {
	Config     Config
	DB         *Database
	Catalog    *Catalog
	Stats      *stats.Stats
	Engine     *Engine
	Expert     *ExpertOptimizer // PostgreSQL-profile expert (bootstrap source)
	Native     *ExpertOptimizer // the engine's own native optimizer
	Featurizer *Featurizer
	Neo        *Optimizer

	diskDB *storage.DiskDB
	cache  planCache
}

// StorageStats reports the disk backend's buffer-pool counters (hit rate,
// evictions, bytes read). ok is false when the system runs a simulated
// engine, which touches no storage. Safe for concurrent use.
func (s *System) StorageStats() (st StorageStats, ok bool) {
	if s.diskDB == nil {
		return StorageStats{}, false
	}
	return s.diskDB.Pool.Stats(), true
}

// Close releases the disk backend's file handles. It is a no-op for the
// simulated engines, so callers may defer it unconditionally.
func (s *System) Close() error {
	if s.diskDB == nil {
		return nil
	}
	return s.diskDB.Close()
}

// PlanCacheStats reports the plan cache's effectiveness. The JSON tags serve
// neo-serve's /stats endpoint.
type PlanCacheStats struct {
	// Hits and Misses count Optimize/PlanAll lookups against the cache.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Size is the number of plans currently cached.
	Size int `json:"size"`
	// Version is the value-network version the cached plans were searched
	// with (see Optimizer.NetVersion).
	Version uint64 `json:"version"`
}

// planCache memoises plan searches keyed on the query's structural
// signature. Entries are valid only for the value-network version they were
// searched with: a retraining round swaps in new weights, which can change
// the preferred plan, so the first lookup after a swap drops every entry.
type planCache struct {
	mu      sync.Mutex
	version uint64
	entries map[string]cachedPlan
	hits    uint64
	misses  uint64
}

type cachedPlan struct {
	plan   *Plan
	result *SearchResult
}

// lookup returns the cached plan for a signature, invalidating the whole
// cache first if the network version moved forward. A caller that read its
// version before a swap gets a plain miss — it must not wipe entries already
// repopulated under the newer version.
func (c *planCache) lookup(sig string, version uint64) (cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if version > c.version {
		c.version = version
		c.entries = nil
	}
	if version < c.version {
		c.misses++
		return cachedPlan{}, false
	}
	e, ok := c.entries[sig]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// planCacheMaxEntries bounds the plan cache. Signatures embed predicate
// literals, so a long-running server planning templates with varying
// constants would otherwise grow the cache without limit between network
// swaps.
const planCacheMaxEntries = 4096

// store records a search outcome, unless the network version moved again
// while the search ran (a stale plan must not outlive the swap). When the
// cache is full an arbitrary entry is replaced (random replacement: cheap,
// and good enough for a cache that is wiped on every retraining round
// anyway).
func (c *planCache) store(sig string, version uint64, e cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != version {
		return
	}
	if c.entries == nil {
		c.entries = make(map[string]cachedPlan)
	}
	if _, exists := c.entries[sig]; !exists && len(c.entries) >= planCacheMaxEntries {
		for victim := range c.entries {
			delete(c.entries, victim)
			break
		}
	}
	c.entries[sig] = e
}

// reset drops every entry and re-keys the cache to the current network
// version on the next lookup (used when a checkpoint replaces the network
// wholesale: restored weights may predate the entries, so version ordering
// alone cannot be trusted to invalidate them).
func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version = 0
	c.entries = nil
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Hits: c.hits, Misses: c.misses, Size: len(c.entries), Version: c.version}
}

// Open assembles a System according to the configuration: it generates the
// synthetic database, builds statistics, trains the row-vector embedding if
// the encoding needs one, instantiates the engines and classical optimizers,
// and creates an untrained Neo.
func Open(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	profile := datagen.Profile(cfg.Dataset)
	db, err := datagen.Generate(profile, datagen.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("neo: generating dataset: %w", err)
	}
	st, err := stats.Build(db)
	if err != nil {
		return nil, fmt.Errorf("neo: building statistics: %w", err)
	}
	engProfile, err := engine.ProfileByName(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("neo: %w", err)
	}
	var eng *Engine
	var ddb *storage.DiskDB
	if cfg.Engine == "disk" {
		ddb, err = openDiskDB(cfg, db)
		if err != nil {
			return nil, err
		}
		eng = engine.NewWithBackend(engProfile, engine.NewDiskBackend(ddb))
	} else {
		eng = engine.New(engProfile, db)
	}
	pgEngine := engine.New(engine.PostgreSQLProfile(), db)
	pg := expert.NativeOptimizer(pgEngine, st, db.Catalog)
	native := expert.NativeOptimizer(eng, st, db.Catalog)

	feat := &feature.Featurizer{
		Catalog:     db.Catalog,
		Encoding:    cfg.Encoding,
		Stats:       st,
		Cardinality: &feature.HistogramCardinality{Stats: st},
	}
	switch cfg.Encoding {
	case RVector:
		feat.Embedding = embedding.Train(embedding.DenormalizedSentences(db, 40), embedding.Config{
			Dim: 16, Epochs: 3, NegativeSamples: 4, LearningRate: 0.05, MinCount: 1, Seed: cfg.Seed,
		})
	case RVectorNoJoins:
		feat.Embedding = embedding.Train(embedding.Sentences(db), embedding.Config{
			Dim: 16, Epochs: 3, NegativeSamples: 4, LearningRate: 0.05, MinCount: 1, Seed: cfg.Seed,
		})
	}

	coreCfg := core.DefaultConfig()
	coreCfg.SearchExpansions = cfg.SearchExpansions
	coreCfg.Cost = cfg.Cost
	coreCfg.Seed = cfg.Seed
	coreCfg.Workers = cfg.Workers
	coreCfg.TrainWorkers = cfg.TrainWorkers
	coreCfg.FuseScoring = cfg.FuseScoring
	coreCfg.MaxFusedBatch = cfg.MaxFusedBatch
	coreCfg.FuseLinger = cfg.FuseLinger
	if cfg.ValueNet != nil {
		coreCfg.ValueNet = *cfg.ValueNet
	}
	prec, err := valuenet.ParsePrecision(cfg.ScorePrecision)
	if err != nil {
		return nil, fmt.Errorf("neo: %w", err)
	}
	coreCfg.ScorePrecision = prec
	mode, err := route.ParseMode(cfg.Routing)
	if err != nil {
		return nil, fmt.Errorf("neo: %w", err)
	}
	coreCfg.Routing = mode
	if cfg.RoutePolicy != nil {
		coreCfg.RoutePolicy = *cfg.RoutePolicy
	}
	n := core.New(eng, feat, coreCfg)

	return &System{
		Config:     cfg,
		DB:         db,
		Catalog:    db.Catalog,
		Stats:      st,
		Engine:     eng,
		Expert:     pg,
		Native:     native,
		Featurizer: feat,
		Neo:        n,
		diskDB:     ddb,
	}, nil
}

// openDiskDB materializes the synthetic database into heap files (unless the
// data directory already holds a matching set) and opens it through a buffer
// pool. Heap files that don't match the in-memory database — a DataDir left
// over from a different scale or seed — are re-materialized in place.
func openDiskDB(cfg Config, db *storage.Database) (*storage.DiskDB, error) {
	dir := cfg.DataDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "neo-disk-")
		if err != nil {
			return nil, fmt.Errorf("neo: creating disk data dir: %w", err)
		}
	}
	mb := cfg.BufferPoolMB
	if mb <= 0 {
		mb = 16
	}
	materialize := !storage.MaterializedAt(dir, db.Catalog)
	for attempt := 0; ; attempt++ {
		if materialize {
			if err := storage.Materialize(db, dir); err != nil {
				return nil, fmt.Errorf("neo: materializing heap files: %w", err)
			}
		}
		ddb, err := storage.OpenDisk(dir, db.Catalog, storage.PagesForMB(mb))
		if err != nil {
			return nil, fmt.Errorf("neo: opening disk database: %w", err)
		}
		if err := ddb.VerifyAgainst(db); err != nil {
			ddb.Close()
			if attempt == 0 {
				materialize = true
				continue
			}
			return nil, fmt.Errorf("neo: %w", err)
		}
		return ddb, nil
	}
}

// GenerateWorkload creates a workload of n queries appropriate for the
// system's dataset.
func (s *System) GenerateWorkload(n int) (*Workload, error) {
	switch s.Config.Dataset {
	case "tpch":
		return workload.TPCH(s.DB, n, s.Config.Seed)
	case "corp":
		return workload.Corp(s.DB, n, s.Config.Seed)
	default:
		return workload.JOB(s.DB, n, s.Config.Seed)
	}
}

// GenerateUnseenWorkload creates queries semantically distinct from the
// given base workload (the Ext-JOB protocol of Section 6.4.2).
func (s *System) GenerateUnseenWorkload(n int, base *Workload) (*Workload, error) {
	return workload.ExtJOB(s.DB, n, s.Config.Seed, base)
}

// Bootstrap collects demonstration experience from the PostgreSQL-profile
// expert for the given training queries, executes two exploratory random
// plans per query so the value network sees within-query contrast, and
// performs the initial value-network training (Section 2, "Expertise
// Collection" / "Model Building").
func (s *System) Bootstrap(train []*Query) error {
	if err := s.Neo.Bootstrap(train, func(q *Query) (*Plan, error) {
		p, _, err := s.Expert.Optimize(q)
		return p, err
	}); err != nil {
		return err
	}
	rp := expert.NewRandomPlanner(s.Catalog, s.Config.Seed+101)
	return s.Neo.Explore(train, rp.Plan, 2)
}

// Train runs the configured number of refinement episodes over the training
// queries (Section 2, "Model Refinement") and returns the per-episode
// statistics.
func (s *System) Train(train []*Query) ([]*EpisodeStats, error) {
	var out []*EpisodeStats
	for ep := 1; ep <= s.Config.Episodes; ep++ {
		st, err := s.Neo.RunEpisode(ep, train)
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Batched adapts a per-plan scorer to the BatchScorer contract the search
// consumes. If s already implements BatchScorer its native batching is used;
// otherwise batch members are scored one at a time.
func Batched(s PlanScorer) BatchScorer { return search.Batched(s) }

// Optimize returns Neo's plan for a query. Results are memoised in a plan
// cache keyed on the query's structural signature (Query.Signature), so
// repeated queries — even under different IDs — skip the search entirely.
// The cache is invalidated automatically whenever a retraining round swaps
// in a new value network. Safe for concurrent use.
func (s *System) Optimize(q *Query) (*Plan, *SearchResult, error) {
	sig := q.Signature()
	version := s.Neo.NetVersion()
	if e, ok := s.cache.lookup(sig, version); ok {
		return e.bind(q)
	}
	p, res, err := s.Neo.Optimize(q)
	if err != nil {
		return nil, nil, err
	}
	// Store only if no swap happened while the search ran: versions only
	// increase, so an unchanged version proves the search's pinned snapshot
	// belonged to it. (A search that raced a swap still returns a correct
	// plan — it just isn't cached.)
	if s.Neo.NetVersion() == version {
		s.cache.store(sig, version, cachedPlan{plan: p, result: res})
	}
	return p, res, nil
}

// bind returns the cached plan, re-bound to the requesting query when the
// cache hit came from a structurally identical query with a different
// identity (plan trees are immutable after search, so the roots are shared).
func (e cachedPlan) bind(q *Query) (*Plan, *SearchResult, error) {
	if e.plan.Query == q {
		return e.plan, e.result, nil
	}
	p := &Plan{Query: q, Roots: e.plan.Roots}
	res := *e.result
	res.Plan = p
	return p, &res, nil
}

// PlanCacheStats reports hit/miss counters and the current size of the plan
// cache.
func (s *System) PlanCacheStats() PlanCacheStats { return s.cache.stats() }

// FusionStats reports the cross-request inference scheduler's cumulative
// fusion counters (Enabled is false — and everything zero — unless the
// system was opened with Config.FuseScoring). Counters are monotonic across
// retraining swaps. Safe for concurrent use.
func (s *System) FusionStats() FusionStats { return s.Neo.FusionStats() }

// SnapshotInfo reports the current serving snapshot's scoring precision and
// memory footprint (see Config.ScorePrecision). Safe for concurrent use.
func (s *System) SnapshotInfo() SnapshotInfo { return s.Neo.SnapshotInfo() }

// RouteStats reports the query router's per-class decision counters,
// fast-path planning-latency percentiles and regret accounting (see
// Config.Routing). Route counts track planning decisions: a query answered
// from the plan cache skips routing entirely and is not counted. Safe for
// concurrent use.
func (s *System) RouteStats() RouteStats { return s.Neo.RouteStats() }

// Evaluate optimizes and executes every query over the configured worker
// pool without adding anything to the experience (held-out evaluation). It
// returns the total and per-query latencies; results are deterministic for
// a fixed seed regardless of Config.Workers.
func (s *System) Evaluate(queries []*Query) (float64, map[string]float64, error) {
	return s.Neo.Evaluate(queries)
}

// RetrainAsync retrains the value network in the background while Optimize,
// Evaluate and PlanAll keep serving plans from the previous network
// snapshot. When training completes the new network is swapped in
// atomically, the plan cache invalidates itself on the next lookup, and the
// final training loss arrives on the returned channel.
func (s *System) RetrainAsync() <-chan float64 { return s.Neo.RetrainAsync() }

// OptimizeWith searches for a plan for q using a caller-supplied scorer in
// place of the trained value network (useful for custom cost models,
// ablations and tests). The scorer receives every child of each search
// expansion in one ScoreBatch call.
func (s *System) OptimizeWith(q *Query, scorer BatchScorer) (*Plan, *SearchResult, error) {
	res, err := search.BestFirst(q, scorer, search.Options{
		Catalog:       s.Catalog,
		MaxExpansions: s.Config.SearchExpansions,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Plan, res, nil
}

// PlanResult is the outcome of planning one query of a PlanAll batch.
type PlanResult struct {
	Query  *Query
	Plan   *Plan
	Result *SearchResult
	Err    error
}

// PlanAll plans independent queries concurrently over the shared value
// network using a fixed pool of workers (workers <= 0 selects GOMAXPROCS).
// Every search scores against the current immutable network snapshot and
// carries its own batched-scorer scratch, so planning scales across cores
// without copying the network, and repeated query structures are served
// straight from the plan cache. Results are returned in input order;
// per-query failures are reported in the corresponding PlanResult rather
// than aborting the batch. PlanAll is safe to run while RetrainAsync trains
// a new network in the background — searches in flight finish against the
// snapshot they started with. When the featurizer injects cardinality error
// (stats.ErrorModel, Figure 14 protocol), perturbations are drawn from one
// shared stream in scheduling order, so concurrent planning is race-free
// but not run-to-run reproducible; plan sequentially if that experiment
// needs determinism.
func (s *System) PlanAll(queries []*Query, workers int) []PlanResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	results := make([]PlanResult, len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				p, res, err := s.Optimize(q)
				results[i] = PlanResult{Query: q, Plan: p, Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}

// Execute runs a complete plan on the system's engine and returns the
// simulated latency in milliseconds.
func (s *System) Execute(p *Plan) (float64, error) {
	lat, _, err := s.Engine.Execute(p)
	return lat, err
}

// NativePlan returns the plan the engine's own (classical) optimizer picks.
func (s *System) NativePlan(q *Query) (*Plan, error) {
	p, _, err := s.Native.Optimize(q)
	return p, err
}

// ExpertPlan returns the PostgreSQL-profile expert's plan.
func (s *System) ExpertPlan(q *Query) (*Plan, error) {
	p, _, err := s.Expert.Optimize(q)
	return p, err
}

// Compare executes Neo's plan and the native optimizer's plan for a query
// and returns both latencies (Neo first).
func (s *System) Compare(q *Query) (neoLatency, nativeLatency float64, err error) {
	np, _, err := s.Optimize(q)
	if err != nil {
		return 0, 0, err
	}
	neoLatency, err = s.Execute(np)
	if err != nil {
		return 0, 0, err
	}
	bp, err := s.NativePlan(q)
	if err != nil {
		return 0, 0, err
	}
	nativeLatency, err = s.Execute(bp)
	return neoLatency, nativeLatency, err
}

// TrueCardinality returns the exact result cardinality of a query, computed
// by executing it.
func (s *System) TrueCardinality(q *Query) (float64, error) {
	return executor.New(s.DB).Count(q)
}

// Experiments constructs an experiment environment sharing this package's
// defaults; use it with RunExperiment to regenerate the paper's tables and
// figures programmatically.
func Experiments(cfg ExperimentConfig) (*experiments.Env, error) {
	return experiments.NewEnv(cfg)
}

// RunExperiment runs one named reproduction experiment ("table2", "fig9" …
// "fig17", "nodemo", "searchvsgreedy", "treeconvvsflat").
func RunExperiment(name string, env *experiments.Env) (*ExperimentReport, error) {
	return experiments.Run(name, env)
}

// ExperimentNames lists the available reproduction experiments.
func ExperimentNames() []string { return experiments.Names() }

// QuickExperiments returns the laptop-scale experiment configuration.
func QuickExperiments() ExperimentConfig { return experiments.Quick() }

// FullExperiments returns the paper-scale experiment configuration.
func FullExperiments() ExperimentConfig { return experiments.Full() }

// NewQuery constructs a query from relations, join predicates and column
// predicates (a thin convenience wrapper over the internal constructor).
func NewQuery(id string, relations []string, joins []JoinPredicate, preds []Predicate) *Query {
	return query.New(id, relations, joins, preds)
}
