// Tree-convolution state serialization: Save/Load stream the filterbank
// weights through the layers' Params() accessor using the shared nn codec,
// so a Stack round-trips bit-identically and architecture mismatches fail
// loudly on load.
package treeconv

import (
	"io"

	"neo/internal/nn"
)

// Save writes the layer's filter weights (EP, EL, ER, bias).
func (l *Layer) Save(w io.Writer) error { return nn.SaveParams(w, l.Params()) }

// Load restores weights written by Save, in place.
func (l *Layer) Load(r io.Reader) error { return nn.LoadParams(r, l.Params()) }

// Save writes every layer of the stack.
func (s *Stack) Save(w io.Writer) error { return nn.SaveParams(w, s.Params()) }

// Load restores state written by Save, in place. The receiver must have the
// same channel sizes as the saved stack.
func (s *Stack) Load(r io.Reader) error { return nn.LoadParams(r, s.Params()) }
