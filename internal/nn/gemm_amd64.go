//go:build amd64

// AVX2 dispatch for the float32 GEMM. The micro-kernel itself lives in
// gemm_amd64.s; this file decides, once at startup, whether the running CPU
// can execute it. Detection is done directly via CPUID/XGETBV so a binary
// compiled for baseline GOAMD64=v1 still uses the vector kernel on v3-class
// hardware, and a pre-AVX2 machine falls back to gemmPanelScalar.
package nn

// useAVX2 reports whether the fused-multiply-add panel kernel is usable:
// AVX2 + FMA present and the OS saves the ymm state.
var useAVX2 = detectAVX2FMA()

// cpuid executes CPUID with the given leaf/subleaf (implemented in assembly).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (implemented in assembly).
func xgetbv() (eax, edx uint32)

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c&fma == 0 || c&osxsave == 0 || c&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set: the OS preserves the
	// full ymm state across context switches.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// gemmPanel8 computes one 8-output panel of the GEMM for rows input rows:
//
//	y[r·yStride + j] = bias[j] + Σ_k x[r·xStride + k] · w[k·8 + j]
//
// for j selected by the 8-lane mask (the output tail of the last panel).
// Strides are in elements. Implemented in gemm_amd64.s with 4×8 FMA tiles.
//
//go:noescape
func gemmPanel8(x, w, y, bias *float32, rows, kUsed, xStride, yStride int, mask *int32)

// gemmQuadI8 computes four int8 dot products sharing one activation row:
//
//	acc[j] = Σ_k x[k] · w[j·wStride + k]   for j = 0..3, k over blocks×16
//
// with exact int32 accumulation (VPMOVSXBW + VPMADDWD). wStride is in
// bytes. Implemented in gemm_amd64.s.
//
//go:noescape
func gemmQuadI8(x, w *int8, blocks, wStride int, acc *int32)

// SetScalarGemmForTest forces (or restores) the portable scalar kernel, so
// parity tests can exercise both code paths on AVX2 hardware. Returns the
// previous setting. Test use only; not safe to flip concurrently with
// inference.
func SetScalarGemmForTest(scalar bool) (prev bool) {
	prev = !useAVX2
	useAVX2 = detectAVX2FMA() && !scalar
	return prev
}
