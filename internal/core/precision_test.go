package core

import (
	"testing"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/valuenet"
)

// The int8 guarantees, in normalized-cost units (the value network's output
// scale; the reference workload's plans span roughly [-2.5, 0.7]).
//
// Quantizing activations to 8 bits leaves a relative error floor around 2-3%
// of the score scale, while the reference workload's search decisions are
// separated by margins as small as 0.002 — so bit-identical plan choice under
// int8 is not a property this (or any honest) int8 pipeline can promise.
// What it promises instead, and what the parity suite asserts:
//
//   - per-state score deviation: on every search-visited construction state
//     of the chosen plans, |int8 - float64| ≤ int8ScoreBound;
//   - plan quality: the plan int8 scoring picks is one the float64 model
//     itself scores within int8BestFirstQualityBound (resp.
//     int8GreedyQualityBound) of its own choice — int8 only ever substitutes
//     a plan the model considers equivalent within the documented bound.
//
// Greedy's bound is wider than BestFirst's because a flipped argmax at an
// early join commits greedy to the subtree, while BestFirst's frontier keeps
// the alternatives alive and re-ranks them on later, larger-margin states.
// Measured maxima on the seeded workload: 0.276 per-state, 0.16 BestFirst,
// 0.97 Greedy.
const (
	int8ScoreBound            = 0.35
	int8BestFirstQualityBound = 0.5
	int8GreedyQualityBound    = 1.25
)

// republishAt freezes the live network at the given scoring precision and
// swaps it in as the serving snapshot, keeping the published version.
func republishAt(n *Neo, p valuenet.Precision) {
	n.Config.ScorePrecision = p
	n.RestoreSnapshot(n.NetVersion())
}

// optimizeBoth runs both search strategies on every query and returns the
// chosen plans keyed by query ID.
func optimizeBoth(t *testing.T, n *Neo, queries []*query.Query) (best, greedy map[string]*plan.Plan) {
	t.Helper()
	best = make(map[string]*plan.Plan, len(queries))
	greedy = make(map[string]*plan.Plan, len(queries))
	for _, q := range queries {
		p, _, err := n.Optimize(q)
		if err != nil {
			t.Fatalf("Optimize(%s): %v", q.ID, err)
		}
		best[q.ID] = p
		pg, _, err := n.OptimizeGreedy(q)
		if err != nil {
			t.Fatalf("OptimizeGreedy(%s): %v", q.ID, err)
		}
		greedy[q.ID] = pg
	}
	return best, greedy
}

// TestPlanChoiceParityFloat32 is the correctness bar for the packed float32
// kernels: on the seeded reference workload, the BestFirst and Greedy plan
// choices of a bootstrapped Neo are identical whether the serving snapshot
// scores in float64 or packed float32. Scores may differ within the 1e-5
// relative tolerance; the argmin over candidate plans must not: float32
// keeps ~7 significant digits while the workload's smallest nonzero decision
// margin is ~2e-3, and exact ties resolve by deterministic candidate order
// under both precisions.
func TestPlanChoiceParityFloat32(t *testing.T) {
	rig := newRig(t, "postgres")
	if err := rig.neo.Bootstrap(rig.wl.Queries[:8], rig.expertFunc()); err != nil {
		t.Fatal(err)
	}

	wantBest, wantGreedy := optimizeBoth(t, rig.neo, rig.wl.Queries)

	republishAt(rig.neo, valuenet.PrecisionFloat32)
	if got := rig.neo.Snapshot().Precision(); got != valuenet.PrecisionFloat32 {
		t.Fatalf("published snapshot precision = %v, want float32", got)
	}
	gotBest, gotGreedy := optimizeBoth(t, rig.neo, rig.wl.Queries)
	for id, want := range wantBest {
		if got := gotBest[id].Signature(); got != want.Signature() {
			t.Errorf("float32 BestFirst plan for %s diverged from float64:\n  f64: %s\n  got: %s",
				id, want.Signature(), got)
		}
	}
	for id, want := range wantGreedy {
		if got := gotGreedy[id].Signature(); got != want.Signature() {
			t.Errorf("float32 Greedy plan for %s diverged from float64:\n  f64: %s\n  got: %s",
				id, want.Signature(), got)
		}
	}
	republishAt(rig.neo, valuenet.PrecisionFloat64)
}

// TestPlanChoiceBoundedInt8 asserts the int8 guarantees documented above: a
// calibrated int8 snapshot scores every search-visited state within
// int8ScoreBound of float64, and the plans it picks are ones the float64
// model scores within the per-strategy quality bounds of its own choices.
// The run is deterministic: republishing the same weights at int8 twice
// must reproduce the same plans bit-identically.
func TestPlanChoiceBoundedInt8(t *testing.T) {
	rig := newRig(t, "postgres")
	n := rig.neo
	if err := n.Bootstrap(rig.wl.Queries[:8], rig.expertFunc()); err != nil {
		t.Fatal(err)
	}

	s64 := n.Net.SnapshotPrecision(valuenet.PrecisionFloat64, nil)
	f64Best, f64Greedy := optimizeBoth(t, n, rig.wl.Queries)

	republishAt(n, valuenet.PrecisionInt8)
	if got := n.Snapshot().Precision(); got != valuenet.PrecisionInt8 {
		t.Fatalf("published snapshot precision = %v, want int8", got)
	}
	s8 := n.Snapshot()
	i8Best, i8Greedy := optimizeBoth(t, n, rig.wl.Queries)

	// Per-state score deviation over the search-visited construction states
	// of every chosen plan, both precisions' choices included.
	for _, chosen := range []map[string]*plan.Plan{f64Best, f64Greedy, i8Best, i8Greedy} {
		for id, p := range chosen {
			q := queryByID(t, rig, id)
			qEnc := n.encodeQuery(q)
			for _, partial := range constructionStates(p) {
				forest := n.Featurizer.EncodePlan(partial)
				w := s64.PredictNormalized(qEnc, forest)
				g := s8.PredictNormalized(qEnc, forest)
				if d := abs(g - w); d > int8ScoreBound {
					t.Errorf("%s: int8 score %v vs f64 %v on state %s (|Δ|=%g beyond bound %g)",
						id, g, w, partial.Signature(), d, int8ScoreBound)
				}
			}
		}
	}

	// Plan quality under the float64 model: int8 may substitute a plan, but
	// only one the model scores as equivalent within the documented bound
	// (one-sided — picking a better-scored plan is fine).
	for id, want := range f64Best {
		q := queryByID(t, rig, id)
		qEnc := n.encodeQuery(q)
		w := s64.PredictNormalized(qEnc, n.Featurizer.EncodePlan(want))
		g := s64.PredictNormalized(qEnc, n.Featurizer.EncodePlan(i8Best[id]))
		if g-w > int8BestFirstQualityBound {
			t.Errorf("%s: int8 BestFirst plan scores %v under f64 model vs %v for the f64 choice (regression %g beyond bound %g)",
				id, g, w, g-w, int8BestFirstQualityBound)
		}
	}
	for id, want := range f64Greedy {
		q := queryByID(t, rig, id)
		qEnc := n.encodeQuery(q)
		w := s64.PredictNormalized(qEnc, n.Featurizer.EncodePlan(want))
		g := s64.PredictNormalized(qEnc, n.Featurizer.EncodePlan(i8Greedy[id]))
		if g-w > int8GreedyQualityBound {
			t.Errorf("%s: int8 Greedy plan scores %v under f64 model vs %v for the f64 choice (regression %g beyond bound %g)",
				id, g, w, g-w, int8GreedyQualityBound)
		}
	}

	// Determinism: republish the same weights at int8 and replay.
	republishAt(n, valuenet.PrecisionInt8)
	againBest, againGreedy := optimizeBoth(t, n, rig.wl.Queries)
	for id := range i8Best {
		if i8Best[id].Signature() != againBest[id].Signature() ||
			i8Greedy[id].Signature() != againGreedy[id].Signature() {
			t.Errorf("%s: int8 plan choice not deterministic across republish", id)
		}
	}
	republishAt(n, valuenet.PrecisionFloat64)
}

func queryByID(t *testing.T, rig *testRig, id string) *query.Query {
	t.Helper()
	for _, q := range rig.wl.Queries {
		if q.ID == id {
			return q
		}
	}
	t.Fatalf("query %s not in workload", id)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestInt8SnapshotCalibratesFromExperience verifies the serving pipeline's
// calibration plumbing: a bootstrapped system configured for int8 publishes a
// genuinely quantized snapshot (the experience provides calibration
// featurizations), and its footprint report shows the smaller panels.
func TestInt8SnapshotCalibratesFromExperience(t *testing.T) {
	rig := newRig(t, "postgres")
	if err := rig.neo.Bootstrap(rig.wl.Queries[:4], rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	republishAt(rig.neo, valuenet.PrecisionInt8)

	info := rig.neo.SnapshotInfo()
	if info.Precision != "int8" {
		t.Fatalf("Info().Precision = %q, want int8 (experience should provide calibration samples)", info.Precision)
	}
	if info.PanelBytes == 0 || info.PanelBytes >= info.ParamBytes {
		t.Fatalf("int8 panels not smaller than float64 master: %+v", info)
	}

	// A fresh int8 system with an empty experience has nothing to calibrate
	// from and must fall back to float32 serving.
	cfg := rig.neo.Config
	empty := New(rig.eng, rig.feat, cfg)
	if got := empty.SnapshotInfo().Precision; got != "float32" {
		t.Fatalf("empty-experience int8 system serves %q, want float32 fallback", got)
	}
}
