package route

import "time"

// latencyHist is a fixed power-of-two-bucket histogram for fast-path
// planning latencies: bucket i holds observations up to 256ns·2^i, the last
// bucket everything beyond (~134ms). Two uint64 stores per observation, no
// allocation — cheap enough to sit on the planning hot path under the
// router's mutex.
const (
	histBuckets = 20
	histBaseNS  = 256
)

type latencyHist struct {
	counts [histBuckets]uint64
	n      uint64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	b := 0
	for bound := int64(histBaseNS); b < histBuckets-1 && ns > bound; b++ {
		bound <<= 1
	}
	h.counts[b]++
	h.n++
}

func (h *latencyHist) merge(o *latencyHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
}

// quantileUS returns the upper bound, in microseconds, of the bucket
// containing the p-quantile observation (0 when the histogram is empty).
// Bucketed quantiles overestimate by at most 2×, which is plenty for
// operational telemetry.
func (h *latencyHist) quantileUS(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return float64(int64(histBaseNS)<<i) / 1e3
		}
	}
	return float64(int64(histBaseNS)<<(histBuckets-1)) / 1e3
}
