// Package checkpoint implements durable state for the learned optimizer: a
// versioned, self-describing binary container that captures everything a
// Neo instance needs to survive a restart — value-network weights and Adam
// optimizer state, the fitted target transform, the learned row-vector
// embedding, the experience pool, per-query baselines, the serving-snapshot
// version and the training RNG position.
//
// # Format
//
// A checkpoint is a header followed by named sections:
//
//	magic          8 bytes  "NEOCKPT1"
//	format version u32      (currently 1)
//	section count  u32
//	section table:          name (u16 len + bytes), payload length u64,
//	                        CRC-32 (IEEE) of the payload
//	payloads, concatenated in table order
//
// Readers locate sections by name, so future format versions can append new
// sections without breaking older payload codecs; unknown sections are
// skipped. Every payload is integrity-checked against its CRC before it is
// parsed, so corruption fails with ErrCorrupt instead of a garbage network.
// Section payloads use the little-endian primitives of package wire; the
// network/embedding payloads are produced by the Save methods of the
// respective layers (valuenet.Network.Save streams nn and treeconv state
// through each layer's parameter accessors).
//
// What a checkpoint deliberately does NOT capture: the synthetic database
// and statistics (regenerated deterministically from the system seed), plan
// caches (rebuilt on demand; plans are re-searched bit-identically from the
// restored weights), and the engine's execution-noise stream position (only
// simulated-latency noise depends on it, never plan choice).
//
// The container doubles as the wire artifact of the distributed serving
// tier: trainers publish snapshots and replicas ship experience batches
// (SaveExperience/LoadExperience) as NEOCKPT1 containers over HTTP, so a
// network payload gets exactly the CRC and version checks a file does. The
// byte-level layout is frozen as a stable protocol in FORMAT.md next to
// this package.
package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"neo/internal/core"
	"neo/internal/embedding"
	"neo/internal/valuenet"
	"neo/internal/wire"
)

// Magic identifies a Neo checkpoint file.
const Magic = "NEOCKPT1"

// FormatVersion is the current container format version.
const FormatVersion = 1

// Sentinel errors. Load failures wrap one of these, so callers can
// distinguish "not a checkpoint" from "damaged checkpoint" from "checkpoint
// from an incompatible build/configuration".
var (
	// ErrBadMagic means the stream does not start with the checkpoint magic.
	ErrBadMagic = errors.New("checkpoint: bad magic (not a checkpoint file)")
	// ErrUnsupportedVersion means the checkpoint was written by a newer
	// format than this build understands.
	ErrUnsupportedVersion = errors.New("checkpoint: unsupported format version")
	// ErrTruncated means the stream ended before the declared contents.
	ErrTruncated = errors.New("checkpoint: truncated")
	// ErrCorrupt means a section payload failed its CRC check.
	ErrCorrupt = errors.New("checkpoint: corrupt section payload")
	// ErrMissingSection means a required section is absent.
	ErrMissingSection = errors.New("checkpoint: missing section")
	// ErrMismatch means the checkpoint does not fit the receiving system
	// (different architecture, dimensions or encoding).
	ErrMismatch = errors.New("checkpoint: state does not match receiving system")
)

// maxRNGDraws bounds the training-RNG draw count a checkpoint may declare:
// restoring replays the stream one draw at a time, so a crafted (CRC-valid)
// count must fail loudly instead of hanging the loader. 2^34 draws replay in
// well under a minute and exceed any realistic training history by orders of
// magnitude (a retraining round draws tens of thousands).
const maxRNGDraws = 1 << 34

// Section names.
const (
	sectionMeta       = "meta"
	sectionNet        = "net"
	sectionEmbedding  = "embedding"
	sectionExperience = "experience"
)

// State is everything a checkpoint carries. Save reads from it; Load fills
// it in (loading the network weights into the caller-supplied Network).
type State struct {
	// Encoding is the featurization the system was configured with; Load
	// callers verify it against their own configuration.
	Encoding string
	// NetVersion is the serving-snapshot version at save time.
	NetVersion uint64
	// RNGSeed and RNGDraws describe the training RNG's exact stream
	// position (core.Neo.RNGState).
	RNGSeed  int64
	RNGDraws uint64
	// TrainTime is the cumulative wall-clock training time.
	TrainTime time.Duration
	// Net is the value network (source on Save, target on Load).
	Net *valuenet.Network
	// Embedding is the row-vector model, nil for encodings without one.
	Embedding *embedding.Model
	// Experience is the executed-plan pool.
	Experience []core.Entry
	// Baselines are the per-query baseline latencies.
	Baselines map[string]float64
}

// Save writes a checkpoint for the given state.
func Save(w io.Writer, st *State) error {
	var meta bytes.Buffer
	if err := wire.WriteString(&meta, st.Encoding); err != nil {
		return err
	}
	if err := wire.WriteU64(&meta, st.NetVersion); err != nil {
		return err
	}
	if err := wire.WriteI64(&meta, st.RNGSeed); err != nil {
		return err
	}
	if err := wire.WriteU64(&meta, st.RNGDraws); err != nil {
		return err
	}
	if err := wire.WriteI64(&meta, int64(st.TrainTime)); err != nil {
		return err
	}

	var net bytes.Buffer
	if err := st.Net.Save(&net); err != nil {
		return err
	}

	sections := []section{
		{name: sectionMeta, payload: meta.Bytes()},
		{name: sectionNet, payload: net.Bytes()},
	}
	if st.Embedding != nil {
		var emb bytes.Buffer
		if err := st.Embedding.Save(&emb); err != nil {
			return err
		}
		sections = append(sections, section{name: sectionEmbedding, payload: emb.Bytes()})
	}
	var exp bytes.Buffer
	if err := writeExperience(&exp, st.Experience, st.Baselines); err != nil {
		return err
	}
	sections = append(sections, section{name: sectionExperience, payload: exp.Bytes()})
	return writeContainer(w, sections)
}

// Load reads a checkpoint, restoring the network weights and optimizer state
// into `into` (which must match the saved architecture) and returning the
// remaining state. A non-empty wantEncoding is checked against the saved
// encoding BEFORE anything mutates `into`, so a checkpoint from a
// differently configured system (whose network may nevertheless share
// dimensions, e.g. 1-hot vs histogram) is rejected side-effect free. On any
// other error the returned state is nil and `into` may be partially updated
// — treat it as unusable.
func Load(r io.Reader, into *valuenet.Network, wantEncoding string) (*State, error) {
	secs, err := readContainer(r)
	if err != nil {
		return nil, err
	}
	st := &State{Net: into}

	meta, ok := secs[sectionMeta]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMissingSection, sectionMeta)
	}
	mr := bytes.NewReader(meta)
	if st.Encoding, err = wire.ReadString(mr); err != nil {
		return nil, fmt.Errorf("checkpoint: meta: %w", err)
	}
	if st.NetVersion, err = wire.ReadU64(mr); err != nil {
		return nil, fmt.Errorf("checkpoint: meta: %w", err)
	}
	if st.RNGSeed, err = wire.ReadI64(mr); err != nil {
		return nil, fmt.Errorf("checkpoint: meta: %w", err)
	}
	if st.RNGDraws, err = wire.ReadU64(mr); err != nil {
		return nil, fmt.Errorf("checkpoint: meta: %w", err)
	}
	tt, err := wire.ReadI64(mr)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: meta: %w", err)
	}
	st.TrainTime = time.Duration(tt)
	if st.RNGDraws > maxRNGDraws {
		return nil, fmt.Errorf("%w: implausible RNG draw count %d (limit %d)",
			ErrCorrupt, st.RNGDraws, uint64(maxRNGDraws))
	}
	if wantEncoding != "" && st.Encoding != wantEncoding {
		return nil, fmt.Errorf("%w: checkpoint encoding %q, want %q",
			ErrMismatch, st.Encoding, wantEncoding)
	}

	net, ok := secs[sectionNet]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMissingSection, sectionNet)
	}
	if err := into.Load(bytes.NewReader(net)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMismatch, err)
	}

	if emb, ok := secs[sectionEmbedding]; ok {
		m, err := embedding.LoadModel(bytes.NewReader(emb))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: embedding: %w", err)
		}
		st.Embedding = m
	}

	exp, ok := secs[sectionExperience]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMissingSection, sectionExperience)
	}
	if st.Experience, st.Baselines, err = readExperience(bytes.NewReader(exp)); err != nil {
		return nil, fmt.Errorf("checkpoint: experience: %w", err)
	}
	return st, nil
}

type section struct {
	name    string
	payload []byte
}

func writeContainer(w io.Writer, sections []section) error {
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	if err := wire.WriteU32(w, FormatVersion); err != nil {
		return err
	}
	if err := wire.WriteU32(w, uint32(len(sections))); err != nil {
		return err
	}
	for _, s := range sections {
		if len(s.name) > 0xffff {
			return fmt.Errorf("checkpoint: section name %q too long", s.name)
		}
		if err := wire.WriteU8(w, uint8(len(s.name)>>8)); err != nil {
			return err
		}
		if err := wire.WriteU8(w, uint8(len(s.name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s.name); err != nil {
			return err
		}
		if err := wire.WriteU64(w, uint64(len(s.payload))); err != nil {
			return err
		}
		if err := wire.WriteU32(w, crc32.ChecksumIEEE(s.payload)); err != nil {
			return err
		}
	}
	for _, s := range sections {
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
	}
	return nil
}

// readContainer parses the header and returns the CRC-verified payloads by
// section name.
func readContainer(r io.Reader) (map[string][]byte, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, truncated(err)
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	version, err := wire.ReadU32(r)
	if err != nil {
		return nil, truncated(err)
	}
	if version > FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads <= %d",
			ErrUnsupportedVersion, version, FormatVersion)
	}
	count, err := wire.ReadU32(r)
	if err != nil {
		return nil, truncated(err)
	}
	if count > 1024 {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, count)
	}
	type header struct {
		name string
		size uint64
		crc  uint32
	}
	headers := make([]header, count)
	for i := range headers {
		hi, err := wire.ReadU8(r)
		if err != nil {
			return nil, truncated(err)
		}
		lo, err := wire.ReadU8(r)
		if err != nil {
			return nil, truncated(err)
		}
		nameLen := int(hi)<<8 | int(lo)
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, truncated(err)
		}
		size, err := wire.ReadU64(r)
		if err != nil {
			return nil, truncated(err)
		}
		if size > wire.MaxLen {
			return nil, fmt.Errorf("%w: section %q declares %d bytes", ErrCorrupt, name, size)
		}
		crc, err := wire.ReadU32(r)
		if err != nil {
			return nil, truncated(err)
		}
		headers[i] = header{name: string(name), size: size, crc: crc}
	}
	out := make(map[string][]byte, count)
	for _, h := range headers {
		payload := make([]byte, h.size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, truncated(err)
		}
		if crc32.ChecksumIEEE(payload) != h.crc {
			return nil, fmt.Errorf("%w: section %q fails CRC", ErrCorrupt, h.name)
		}
		out[h.name] = payload
	}
	return out, nil
}

// truncated maps short reads onto the ErrTruncated sentinel.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}
