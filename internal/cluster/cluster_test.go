package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"neo/internal/cluster/proto"
	"neo/pkg/neo"
)

// testSystem assembles a small system (1-hot encoding, tiny value net) so
// cluster integration tests stay fast under -race. bootstrap selects whether
// it is trained from the expert (a trainer) or left fresh (a replica that
// will pull a snapshot).
func testSystem(t testing.TB, bootstrap bool) (*neo.System, []*neo.Query) {
	t.Helper()
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.OneHot,
		Scale:            0.15,
		Seed:             7,
		SearchExpansions: 24,
		Episodes:         1,
		ScorePrecision:   "float32",
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	wl, err := sys.GenerateWorkload(6)
	if err != nil {
		t.Fatal(err)
	}
	if bootstrap {
		if err := sys.Bootstrap(wl.Queries[:4]); err != nil {
			t.Fatal(err)
		}
	}
	return sys, wl.Queries
}

// specFor converts a workload query into the wire representation.
func specFor(q *neo.Query) proto.QuerySpec {
	spec := proto.QuerySpec{ID: q.ID, Relations: q.Relations}
	for _, j := range q.Joins {
		spec.Joins = append(spec.Joins, proto.JoinSpec{
			Left:  j.LeftTable + "." + j.LeftColumn,
			Right: j.RightTable + "." + j.RightColumn,
		})
	}
	for _, p := range q.Predicates {
		var raw json.RawMessage
		if p.Value.Kind == neo.IntValue(0).Kind {
			raw, _ = json.Marshal(p.Value.Int)
		} else {
			raw, _ = json.Marshal(p.Value.Str)
		}
		spec.Predicates = append(spec.Predicates, proto.PredicateSpec{
			Column: p.Table + "." + p.Column,
			Op:     p.Op.String(),
			Value:  raw,
		})
	}
	return spec
}

func postJSON(t testing.TB, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// fastClient keeps failure-path tests quick.
func fastClient() proto.Client {
	return proto.Client{Attempts: 1, Backoff: time.Millisecond, Timeout: time.Second}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
