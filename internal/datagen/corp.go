package datagen

import (
	"fmt"
	"math/rand"

	"neo/internal/schema"
	"neo/internal/storage"
)

// CorpCatalog returns the catalog of the Corp-like profile: a snowflake
// schema (one large event fact table plus several dimensions) with heavy
// value skew, standing in for the paper's proprietary 2 TB dashboard
// workload.
func CorpCatalog() *schema.Catalog {
	tables := []*schema.Table{
		{Name: "events", PrimaryKey: "e_id", Columns: []schema.Column{
			{Name: "e_id", Type: schema.IntType},
			{Name: "e_user_id", Type: schema.IntType},
			{Name: "e_page_id", Type: schema.IntType},
			{Name: "e_campaign_id", Type: schema.IntType},
			{Name: "e_date_id", Type: schema.IntType},
			{Name: "e_kind", Type: schema.StringType, Distinct: 6},
			{Name: "e_duration", Type: schema.IntType},
		}},
		{Name: "users", PrimaryKey: "u_id", Columns: []schema.Column{
			{Name: "u_id", Type: schema.IntType},
			{Name: "u_region_id", Type: schema.IntType},
			{Name: "u_plan", Type: schema.StringType, Distinct: 4},
			{Name: "u_signup_year", Type: schema.IntType, Distinct: 10},
		}},
		{Name: "pages", PrimaryKey: "p_id", Columns: []schema.Column{
			{Name: "p_id", Type: schema.IntType},
			{Name: "p_section", Type: schema.StringType, Distinct: 8},
			{Name: "p_depth", Type: schema.IntType, Distinct: 5},
		}},
		{Name: "campaigns", PrimaryKey: "cm_id", Columns: []schema.Column{
			{Name: "cm_id", Type: schema.IntType},
			{Name: "cm_channel", Type: schema.StringType, Distinct: 5},
			{Name: "cm_budget", Type: schema.IntType},
		}},
		{Name: "dates", PrimaryKey: "d_id", Columns: []schema.Column{
			{Name: "d_id", Type: schema.IntType},
			{Name: "d_year", Type: schema.IntType, Distinct: 3},
			{Name: "d_month", Type: schema.IntType, Distinct: 12},
			{Name: "d_weekday", Type: schema.IntType, Distinct: 7},
		}},
		{Name: "regions", PrimaryKey: "rg_id", Columns: []schema.Column{
			{Name: "rg_id", Type: schema.IntType},
			{Name: "rg_name", Type: schema.StringType, Distinct: 10},
			{Name: "rg_tier", Type: schema.IntType, Distinct: 3},
		}},
	}
	fks := []schema.ForeignKey{
		{FromTable: "events", FromColumn: "e_user_id", ToTable: "users", ToColumn: "u_id"},
		{FromTable: "events", FromColumn: "e_page_id", ToTable: "pages", ToColumn: "p_id"},
		{FromTable: "events", FromColumn: "e_campaign_id", ToTable: "campaigns", ToColumn: "cm_id"},
		{FromTable: "events", FromColumn: "e_date_id", ToTable: "dates", ToColumn: "d_id"},
		{FromTable: "users", FromColumn: "u_region_id", ToTable: "regions", ToColumn: "rg_id"},
	}
	indexes := []schema.Index{
		{Table: "events", Column: "e_user_id"},
		{Table: "events", Column: "e_date_id"},
		{Table: "users", Column: "u_region_id"},
	}
	return schema.MustNewCatalog(tables, fks, indexes)
}

// GenerateCorp generates the skewed dashboard database. Event activity is
// Zipf-distributed over users and pages, and event kind correlates with page
// section, mimicking the "real workloads are skewed and templated" property
// the paper attributes to the Corp dataset.
func GenerateCorp(cfg Config) (*storage.Database, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	cat := CorpCatalog()
	db := storage.NewDatabase(cat)

	nRegions := 10
	tiers := []int64{1, 1, 1, 2, 2, 2, 2, 3, 3, 3}
	for i := 1; i <= nRegions; i++ {
		if err := db.Table("regions").AppendRow(
			storage.IntValue(int64(i)),
			storage.StringValue(fmt.Sprintf("region-%d", i)),
			storage.IntValue(tiers[(i-1)%len(tiers)]),
		); err != nil {
			return nil, err
		}
	}

	plans := []string{"free", "free", "pro", "enterprise"}
	nUsers := cfg.scaled(600)
	for i := 1; i <= nUsers; i++ {
		if err := db.Table("users").AppendRow(
			storage.IntValue(int64(i)),
			storage.IntValue(int64(1+skewedIndex(rng, nRegions, 1.5))),
			storage.StringValue(plans[rng.Intn(len(plans))]),
			storage.IntValue(int64(2015+rng.Intn(10))),
		); err != nil {
			return nil, err
		}
	}

	sections := []string{"home", "search", "product", "checkout", "account", "help", "blog", "admin"}
	nPages := cfg.scaled(120)
	pageSection := make([]string, nPages+1)
	for i := 1; i <= nPages; i++ {
		section := sections[skewedIndex(rng, len(sections), 1.2)]
		pageSection[i] = section
		if err := db.Table("pages").AppendRow(
			storage.IntValue(int64(i)),
			storage.StringValue(section),
			storage.IntValue(int64(1+rng.Intn(5))),
		); err != nil {
			return nil, err
		}
	}

	channels := []string{"email", "search", "social", "display", "referral"}
	nCampaigns := cfg.scaled(40)
	for i := 1; i <= nCampaigns; i++ {
		if err := db.Table("campaigns").AppendRow(
			storage.IntValue(int64(i)),
			storage.StringValue(channels[rng.Intn(len(channels))]),
			storage.IntValue(int64(1000+rng.Intn(100000))),
		); err != nil {
			return nil, err
		}
	}

	nDates := 365
	for i := 1; i <= nDates; i++ {
		if err := db.Table("dates").AppendRow(
			storage.IntValue(int64(i)),
			storage.IntValue(int64(2023+(i-1)/365)),
			storage.IntValue(int64(1+((i-1)/30)%12)),
			storage.IntValue(int64(1+(i-1)%7)),
		); err != nil {
			return nil, err
		}
	}

	kindBySection := map[string][]string{
		"checkout": {"purchase", "purchase", "click"},
		"search":   {"search", "search", "click"},
		"product":  {"view", "click", "purchase"},
		"home":     {"view", "view", "click"},
	}
	defaultKinds := []string{"view", "click", "scroll", "search", "purchase", "error"}
	userZipf := rand.NewZipf(rng, 1.3, 1.0, uint64(nUsers-1))
	pageZipf := rand.NewZipf(rng, 1.2, 1.0, uint64(nPages-1))

	nEvents := cfg.scaled(7000)
	for i := 1; i <= nEvents; i++ {
		pid := int(pageZipf.Uint64()) + 1
		kinds := kindBySection[pageSection[pid]]
		if kinds == nil {
			kinds = defaultKinds
		}
		if err := db.Table("events").AppendRow(
			storage.IntValue(int64(i)),
			storage.IntValue(int64(int(userZipf.Uint64())+1)),
			storage.IntValue(int64(pid)),
			storage.IntValue(int64(1+rng.Intn(nCampaigns))),
			storage.IntValue(int64(1+rng.Intn(nDates))),
			storage.StringValue(kinds[rng.Intn(len(kinds))]),
			storage.IntValue(int64(rng.Intn(600))),
		); err != nil {
			return nil, err
		}
	}

	if err := db.BuildIndexes(); err != nil {
		return nil, err
	}
	return db, nil
}
