package embedding

import (
	"math"
	"testing"
	"testing/quick"

	"neo/internal/datagen"
	"neo/internal/storage"
)

func TestTrainOnSyntheticCorpus(t *testing.T) {
	// Two "topics": (a,b,c) co-occur and (x,y,z) co-occur. After training,
	// within-topic similarity should exceed cross-topic similarity.
	var sentences [][]string
	for i := 0; i < 200; i++ {
		sentences = append(sentences, []string{"a", "b", "c"})
		sentences = append(sentences, []string{"x", "y", "z"})
	}
	m := Train(sentences, Config{Dim: 8, Epochs: 5, NegativeSamples: 4, LearningRate: 0.05, MinCount: 1, Seed: 3})
	if m.VocabSize() != 6 {
		t.Fatalf("vocab size = %d, want 6", m.VocabSize())
	}
	within := m.Similarity("a", "b")
	across := m.Similarity("a", "x")
	if within <= across {
		t.Errorf("within-topic similarity %.3f should exceed cross-topic %.3f", within, across)
	}
	if m.TrainTime <= 0 {
		t.Errorf("TrainTime should be recorded")
	}
	if m.Sentences != len(sentences) {
		t.Errorf("Sentences = %d, want %d", m.Sentences, len(sentences))
	}
}

func TestTrainEmptyAndUnknown(t *testing.T) {
	m := Train(nil, DefaultConfig())
	if m.VocabSize() != 0 {
		t.Errorf("empty corpus should give empty vocab")
	}
	if _, ok := m.Vector("missing"); ok {
		t.Errorf("unknown token should not have a vector")
	}
	if m.Similarity("a", "b") != 0 {
		t.Errorf("similarity of unknown tokens should be 0")
	}
	if m.Count("missing") != 0 {
		t.Errorf("count of unknown token should be 0")
	}
}

func TestCosineProperties(t *testing.T) {
	if Cosine([]float64{1, 0}, []float64{1, 0}) != 1 {
		t.Errorf("cosine of identical vectors should be 1")
	}
	if math.Abs(Cosine([]float64{1, 0}, []float64{0, 1})) > 1e-12 {
		t.Errorf("cosine of orthogonal vectors should be 0")
	}
	if Cosine([]float64{1}, []float64{1, 2}) != 0 {
		t.Errorf("mismatched lengths should give 0")
	}
	if Cosine([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Errorf("zero vector should give 0")
	}
	// Property: cosine is symmetric and bounded in [-1, 1]. Inputs are mapped
	// into a moderate range to avoid float64 overflow when squaring.
	f := func(a, b [4]float64) bool {
		av, bv := make([]float64, 4), make([]float64, 4)
		for i := range av {
			av[i] = math.Mod(a[i], 1e6)
			bv[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(av[i]) {
				av[i] = 0
			}
			if math.IsNaN(bv[i]) {
				bv[i] = 0
			}
		}
		c1 := Cosine(av, bv)
		c2 := Cosine(bv, av)
		return math.Abs(c1-c2) < 1e-9 && c1 <= 1.0000001 && c1 >= -1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenHelpers(t *testing.T) {
	tok := Token("keyword", "keyword", storage.StringValue("love"))
	if tok != "keyword.keyword=love" {
		t.Errorf("Token = %q", tok)
	}
	if TokenPrefix("a", "b") != "a.b=" {
		t.Errorf("TokenPrefix wrong")
	}
}

func TestSentencesFromIMDB(t *testing.T) {
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sentences := Sentences(db)
	if len(sentences) == 0 {
		t.Fatal("no sentences produced")
	}
	// No sentence should contain a primary-key or foreign-key token.
	for _, s := range sentences[:50] {
		for _, tok := range s {
			if tok == "title.id=1" || tok == "movie_keyword.movie_id=1" {
				t.Errorf("sentence contains key token %q", tok)
			}
		}
	}
	// There must be keyword tokens and genre (movie_info.info) tokens.
	foundKeyword, foundGenre := false, false
	for _, s := range sentences {
		for _, tok := range s {
			if tok == "keyword.keyword=love" {
				foundKeyword = true
			}
			if tok == "movie_info.info=romance" {
				foundGenre = true
			}
		}
	}
	if !foundKeyword || !foundGenre {
		t.Errorf("expected keyword and genre tokens in corpus (keyword=%v genre=%v)", foundKeyword, foundGenre)
	}
}

func TestDenormalizedSentencesCaptureCorrelation(t *testing.T) {
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	joined := DenormalizedSentences(db, 40)
	plain := Sentences(db)
	if len(joined) <= len(plain) {
		t.Fatalf("denormalised corpus (%d) should add hub sentences to the plain corpus (%d)", len(joined), len(plain))
	}
	// At least one denormalised sentence must contain both a keyword and a
	// genre token — the co-occurrence Table 2 relies on.
	found := false
	for _, s := range joined {
		hasKw, hasGenre := false, false
		for _, tok := range s {
			if len(tok) > 16 && tok[:16] == "keyword.keyword=" {
				hasKw = true
			}
			if len(tok) > 16 && tok[:16] == "movie_info.info=" {
				hasGenre = true
			}
		}
		if hasKw && hasGenre {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no denormalised sentence contains both a keyword and a genre")
	}
}

// TestTable2SimilarityShape is the core R-Vector claim: correlated
// keyword/genre pairs have higher cosine similarity than uncorrelated ones.
func TestTable2SimilarityShape(t *testing.T) {
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sentences := DenormalizedSentences(db, 40)
	m := Train(sentences, Config{Dim: 16, Epochs: 4, NegativeSamples: 4, LearningRate: 0.05, MinCount: 1, Seed: 5})

	sim := func(keyword, genre string) float64 {
		return m.Similarity("keyword.keyword="+keyword, "movie_info.info="+genre)
	}
	loveRomance := sim("love", "romance")
	loveHorror := sim("love", "horror")
	fightAction := sim("fight", "action")
	fightHorror := sim("fight", "horror")
	if loveRomance <= loveHorror {
		t.Errorf("sim(love,romance)=%.3f should exceed sim(love,horror)=%.3f", loveRomance, loveHorror)
	}
	if fightAction <= fightHorror {
		t.Errorf("sim(fight,action)=%.3f should exceed sim(fight,horror)=%.3f", fightAction, fightHorror)
	}
}

func TestMatchMean(t *testing.T) {
	sentences := [][]string{
		{"k.word=love-story", "g.genre=romance"},
		{"k.word=lovely", "g.genre=romance"},
		{"k.word=war", "g.genre=action"},
	}
	for i := 0; i < 50; i++ {
		sentences = append(sentences, sentences[:3]...)
	}
	m := Train(sentences, Config{Dim: 8, Epochs: 3, NegativeSamples: 2, LearningRate: 0.05, MinCount: 1, Seed: 9})
	mean, matched := m.MatchMean("k.word=", "love")
	if matched != 2 {
		t.Errorf("matched = %d, want 2 (love-story, lovely)", matched)
	}
	if len(mean) != 8 {
		t.Errorf("mean length = %d, want 8", len(mean))
	}
	nonzero := false
	for _, v := range mean {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Errorf("mean vector should not be all zeros")
	}
	_, none := m.MatchMean("k.word=", "zzzz")
	if none != 0 {
		t.Errorf("no tokens should match zzzz")
	}
	// Empty substring matches every token with the prefix.
	_, all := m.MatchMean("k.word=", "")
	if all != 3 {
		t.Errorf("empty substring should match all 3 keyword tokens, got %d", all)
	}
}

func TestCountReflectsFrequency(t *testing.T) {
	sentences := [][]string{{"a", "b"}, {"a", "c"}, {"a", "b"}}
	m := Train(sentences, Config{Dim: 4, Epochs: 1, NegativeSamples: 1, LearningRate: 0.05, MinCount: 1, Seed: 1})
	if m.Count("a") != 3 || m.Count("b") != 2 || m.Count("c") != 1 {
		t.Errorf("counts wrong: a=%d b=%d c=%d", m.Count("a"), m.Count("b"), m.Count("c"))
	}
}

func TestTrainDeterministic(t *testing.T) {
	sentences := [][]string{{"a", "b", "c"}, {"c", "d"}, {"a", "d"}}
	cfg := Config{Dim: 6, Epochs: 2, NegativeSamples: 2, LearningRate: 0.05, MinCount: 1, Seed: 42}
	m1 := Train(sentences, cfg)
	m2 := Train(sentences, cfg)
	v1, _ := m1.Vector("a")
	v2, _ := m2.Vector("a")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("training is not deterministic for a fixed seed")
		}
	}
}

func TestHubTableSelection(t *testing.T) {
	if hub := hubTable(datagen.IMDBCatalog()); hub != "title" {
		t.Errorf("IMDB hub = %q, want title", hub)
	}
	if hub := hubTable(datagen.CorpCatalog()); hub == "" {
		t.Errorf("Corp hub should not be empty")
	}
}

func BenchmarkTrainNoJoins(b *testing.B) {
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.2, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	sentences := Sentences(db)
	cfg := Config{Dim: 8, Epochs: 1, NegativeSamples: 2, LearningRate: 0.05, MinCount: 1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(sentences, cfg)
	}
}
