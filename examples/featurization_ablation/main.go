// Featurization ablation: a miniature version of the paper's Figure 12.
//
// Neo supports three increasingly powerful predicate featurizations — 1-Hot
// (which attributes are predicated), Histogram (their estimated
// selectivities) and R-Vector (learned row-vector embeddings, with and
// without partial denormalisation). This example trains one Neo instance per
// encoding on the same workload and engine, and compares the held-out
// latency relative to the engine's native optimizer.
//
// Run with:
//
//	go run ./examples/featurization_ablation
package main

import (
	"fmt"
	"log"

	"neo/pkg/neo"
)

func main() {
	encodings := []neo.Encoding{neo.RVector, neo.RVectorNoJoins, neo.Histogram, neo.OneHot}
	fmt.Println("featurization ablation on the IMDB-like workload (postgres engine)")
	fmt.Printf("%-22s %14s\n", "encoding", "neo/native")

	for _, enc := range encodings {
		sys, err := neo.Open(neo.Config{
			Dataset:  "imdb",
			Engine:   "postgres",
			Encoding: enc,
			Scale:    0.25,
			Seed:     42,
			Episodes: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		wl, err := sys.GenerateWorkload(16)
		if err != nil {
			log.Fatal(err)
		}
		train, test := wl.Split(0.8, 1)
		if err := sys.Bootstrap(train); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Train(train); err != nil {
			log.Fatal(err)
		}
		var neoTotal, nativeTotal float64
		for _, q := range test {
			neoLat, nativeLat, err := sys.Compare(q)
			if err != nil {
				log.Fatal(err)
			}
			neoTotal += neoLat
			nativeTotal += nativeLat
		}
		fmt.Printf("%-22s %14.3f\n", enc, neoTotal/nativeTotal)
	}
	fmt.Println("\npaper shape (Figure 12): R-Vector <= R-Vector(no joins) <= Histogram <= 1-Hot")
}
