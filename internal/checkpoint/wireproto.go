// Stand-alone experience containers: the replica→trainer wire artifact of
// the distributed serving tier. A replica batches the (query, plan, latency)
// entries its /feedback endpoint collects and ships them to the trainer as a
// NEOCKPT1 container holding only the experience section — same magic, same
// section table, same CRC rules as a full checkpoint (see FORMAT.md), so the
// trainer validates network payloads with exactly the machinery (and
// sentinel errors) it already trusts for durable state.
package checkpoint

import (
	"bytes"
	"fmt"
	"io"

	"neo/internal/core"
)

// SaveExperience writes a stand-alone experience container: a NEOCKPT1
// container whose only section is "experience" (no baselines). It is the
// body of the cluster's POST /experience RPC.
func SaveExperience(w io.Writer, entries []core.Entry) error {
	var exp bytes.Buffer
	if err := writeExperience(&exp, entries, nil); err != nil {
		return err
	}
	return writeContainer(w, []section{{name: sectionExperience, payload: exp.Bytes()}})
}

// LoadExperience reads a stand-alone experience container written by
// SaveExperience (a full checkpoint is also accepted — only its experience
// section is read). Corruption, truncation and version skew fail with the
// package's sentinel errors, so a trainer can distinguish a damaged batch
// from an incompatible peer.
func LoadExperience(r io.Reader) ([]core.Entry, error) {
	secs, err := readContainer(r)
	if err != nil {
		return nil, err
	}
	exp, ok := secs[sectionExperience]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMissingSection, sectionExperience)
	}
	entries, _, err := readExperience(bytes.NewReader(exp))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: experience: %w", err)
	}
	return entries, nil
}
