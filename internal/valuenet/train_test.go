package valuenet

import (
	"math"
	"math/rand"
	"testing"

	"neo/internal/treeconv"
)

// randSamples builds a batch of training samples shaped like Neo's
// experience: several samples share one query encoding slice (the dedup hot
// path), forests vary in size and include empty ones.
func randSamples(rng *rand.Rand, n, queryDim, planDim int) []Sample {
	shared := randVec(rng, queryDim)
	out := make([]Sample, n)
	for i := range out {
		q := shared
		if i%5 == 4 {
			q = randVec(rng, queryDim)
		}
		out[i] = Sample{
			Query:  q,
			Plan:   randForest(rng, planDim),
			Target: math.Exp(rng.NormFloat64() * 3),
		}
	}
	return out
}

func cloneFor(t *testing.T, cfg Config, queryDim, planDim int) (*Network, *Network) {
	t.Helper()
	a := New(queryDim, planDim, cfg)
	b := New(queryDim, planDim, cfg)
	a.FitTargetTransform([]float64{1, 10, 100, 1000})
	b.FitTargetTransform([]float64{1, 10, 100, 1000})
	return a, b
}

func maxParamDiff(a, b *Network) float64 {
	pa, pb := a.Params(), b.Params()
	worst := 0.0
	for i := range pa {
		for j := range pa[i].Value {
			if d := math.Abs(pa[i].Value[j] - pb[i].Value[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestTrainBatchMatchesPerSample is the training parity property test: one
// batched TrainBatch step must move the weights to within 1e-9 of a
// TrainBatchPerSample step from identical initial weights, over random
// networks and random sample batches (shared and distinct queries, empty
// forests, both layer-norm settings).
func TestTrainBatchMatchesPerSample(t *testing.T) {
	const queryDim, planDim = 9, 7
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Seed = seed + 50
		cfg.UseLayerNorm = seed%2 == 0
		batched, perSample := cloneFor(t, cfg, queryDim, planDim)
		samples := randSamples(rng, 33, queryDim, planDim)

		for step := 0; step < 3; step++ {
			lb := batched.TrainBatch(samples)
			lp := perSample.TrainBatchPerSample(samples)
			if math.Abs(lb-lp) > 1e-9 {
				t.Errorf("seed %d step %d: loss diverged: batched %v, per-sample %v", seed, step, lb, lp)
			}
		}
		if d := maxParamDiff(batched, perSample); d > 1e-9 {
			t.Errorf("seed %d: max weight difference %g after 3 steps, want <= 1e-9", seed, d)
		}
	}
}

// TestTrainBatchWorkerInvariance pins the determinism contract of the
// sharded gradient reduction: trained weights are bit-identical for every
// TrainWorkers value, because the shard partition and reduction order depend
// only on the batch size.
func TestTrainBatchWorkerInvariance(t *testing.T) {
	const queryDim, planDim = 8, 6
	rng := rand.New(rand.NewSource(11))
	samples := randSamples(rng, 37, queryDim, planDim)

	cfg := DefaultConfig()
	cfg.Seed = 21
	serial := New(queryDim, planDim, cfg)
	serial.FitTargetTransform([]float64{1, 10, 100})
	var serialLoss float64
	for step := 0; step < 2; step++ {
		serialLoss = serial.TrainBatch(samples)
	}
	for _, workers := range []int{2, 3, 8} {
		wcfg := cfg
		wcfg.TrainWorkers = workers
		net := New(queryDim, planDim, wcfg)
		net.FitTargetTransform([]float64{1, 10, 100})
		var loss float64
		for step := 0; step < 2; step++ {
			loss = net.TrainBatch(samples)
		}
		if loss != serialLoss {
			t.Errorf("workers=%d: loss %v != serial loss %v (must be bit-identical)", workers, loss, serialLoss)
		}
		if d := maxParamDiff(serial, net); d != 0 {
			t.Errorf("workers=%d: weights differ from serial by %g, want bit-identical", workers, d)
		}
	}
}

// TestTrainDeterministicAcrossRuns asserts that two identically-seeded Train
// runs (full epochs, shuffling, batched pipeline) produce bit-identical
// weights.
func TestTrainDeterministicAcrossRuns(t *testing.T) {
	const queryDim, planDim = 8, 6
	mk := func(workers int) *Network {
		rng := rand.New(rand.NewSource(5))
		samples := randSamples(rng, 40, queryDim, planDim)
		cfg := DefaultConfig()
		cfg.Seed = 9
		cfg.TrainWorkers = workers
		net := New(queryDim, planDim, cfg)
		net.Train(samples, 3, 16, rand.New(rand.NewSource(77)))
		return net
	}
	a, b := mk(1), mk(1)
	if d := maxParamDiff(a, b); d != 0 {
		t.Errorf("identically-seeded Train runs differ by %g, want bit-identical", d)
	}
	c := mk(4)
	if d := maxParamDiff(a, c); d != 0 {
		t.Errorf("Train with 4 workers differs from serial by %g, want bit-identical", d)
	}
}

// TestTrainBatchConcurrentInference exercises snapshot-based planning racing
// a multi-worker training round (run with -race): inference must score with
// the frozen clone while TrainBatch mutates the live weights.
func TestTrainBatchConcurrentInference(t *testing.T) {
	const queryDim, planDim = 6, 5
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	cfg.TrainWorkers = 4
	net := New(queryDim, planDim, cfg)
	net.FitTargetTransform([]float64{1, 10, 100})
	samples := randSamples(rng, 24, queryDim, planDim)

	snap := net.Snapshot()
	queries := make([][]float64, 8)
	forests := make([][]*treeconv.Tree, 8)
	for i := range queries {
		queries[i] = randVec(rng, queryDim)
		forests[i] = randForest(rng, planDim)
	}
	want := snap.PredictBatch(queries, forests)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for iter := 0; iter < 10; iter++ {
			net.TrainBatch(samples)
		}
	}()
	for iter := 0; iter < 20; iter++ {
		got := snap.PredictBatch(queries, forests)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("snapshot prediction drifted during training at %d: %v != %v", i, got[i], want[i])
			}
		}
	}
	<-done
}

// TestTrainBatchEmpty pins the no-op contract.
func TestTrainBatchEmpty(t *testing.T) {
	net := New(4, 3, DefaultConfig())
	if loss := net.TrainBatch(nil); loss != 0 {
		t.Errorf("TrainBatch(nil) = %v, want 0", loss)
	}
}
