package analysis

import (
	"go/ast"
	"go/types"
)

// wireendianCheck enforces the frozen wire format two ways. First,
// binary.BigEndian and binary.NativeEndian are banned everywhere: FORMAT.md
// freezes every on-disk and on-wire integer as little-endian, NativeEndian
// would make checkpoints non-portable across architectures, and a single
// big-endian field would corrupt the NEOCKPT1 stream undetectably (the
// length-prefixed framing would mis-parse downstream sections). Second,
// outside the designated wire package, any other use of encoding/binary is
// flagged too — not because little-endian calls are wrong per se, but
// because scattering raw binary.Write/PutUint32 calls around the tree is
// how a second, subtly different serialization dialect gets born. Encoding
// belongs behind internal/wire's helpers, which carry the format's framing,
// versioning and checksum rules.
var wireendianCheck = &Check{
	Name: "wireendian",
	Doc:  "big/native endianness anywhere, or raw encoding/binary use outside the wire package",
	Run:  runWireendian,
}

func runWireendian(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[pkgIdent].(*types.PkgName)
			if !ok || pn.Imported().Path() != "encoding/binary" {
				return true
			}
			switch sel.Sel.Name {
			case "BigEndian", "NativeEndian":
				p.Reportf(sel.Pos(), "binary.%s breaks the frozen little-endian wire format (FORMAT.md); all wire integers are little-endian", sel.Sel.Name)
				return true
			}
			if p.Pkg.Path == p.Cfg.WirePkg {
				return true
			}
			// Naming a type (binary.ByteOrder in a signature) neither reads
			// nor writes bytes.
			if _, isType := p.Pkg.Info.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			p.Reportf(sel.Pos(), "raw encoding/binary use outside %s; route wire encoding through its helpers so the format stays in one place", p.Cfg.WirePkg)
			return true
		})
	}
}
