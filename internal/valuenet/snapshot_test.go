package valuenet

import (
	"math/rand"
	"testing"

	"neo/internal/treeconv"
)

func snapshotTestNetwork() (*Network, []float64, []*treeconv.Tree) {
	cfg := Config{
		QueryLayers:  []int{8, 4},
		TreeChannels: []int{8, 4},
		HeadLayers:   []int{4},
		LearningRate: 1e-2,
		UseLayerNorm: true,
		Seed:         11,
	}
	net := New(3, 5, cfg)
	q := []float64{0.2, -0.4, 0.9}
	leaf := func(seed float64) *treeconv.Tree {
		return treeconv.NewLeaf([]float64{seed, seed * 0.5, -seed, 0.1, 0.3})
	}
	trees := []*treeconv.Tree{treeconv.NewNode([]float64{1, 0, 0.5, -0.2, 0.7}, leaf(0.3), leaf(-0.6))}
	return net, q, trees
}

// TestSnapshotIsImmutableUnderTraining is the double-buffering contract: a
// snapshot keeps scoring with the weights it was frozen with, no matter how
// much the live network trains afterwards.
func TestSnapshotIsImmutableUnderTraining(t *testing.T) {
	net, q, trees := snapshotTestNetwork()
	snap := net.Snapshot()

	before := snap.Predict(q, trees)
	beforeNorm := snap.PredictNormalized(q, trees)
	if live := net.Predict(q, trees); live != before {
		t.Fatalf("fresh snapshot should match the live network: snap %v, live %v", before, live)
	}

	samples := []Sample{
		{Query: q, Plan: trees, Target: 1200},
		{Query: []float64{1, 1, 1}, Plan: trees, Target: 40},
	}
	rng := rand.New(rand.NewSource(5))
	net.Train(samples, 20, 2, rng)

	if after := net.Predict(q, trees); after == before {
		t.Errorf("training should have changed the live network's prediction (stayed %v)", after)
	}
	if got := snap.Predict(q, trees); got != before {
		t.Errorf("snapshot prediction changed under training: %v -> %v", before, got)
	}
	if got := snap.PredictNormalized(q, trees); got != beforeNorm {
		t.Errorf("snapshot normalized prediction changed under training: %v -> %v", beforeNorm, got)
	}
	batch := snap.PredictBatch([][]float64{q, q}, [][]*treeconv.Tree{trees, trees})
	if len(batch) != 2 || batch[0] != before || batch[1] != before {
		t.Errorf("snapshot batch path should match its per-sample path: %v, want %v", batch, before)
	}
}

// TestCloneIsDeepAndEquivalent checks that a clone predicts identically but
// shares no parameter storage with the original.
func TestCloneIsDeepAndEquivalent(t *testing.T) {
	net, q, trees := snapshotTestNetwork()
	clone := net.Clone()
	if clone.NumParameters() != net.NumParameters() {
		t.Fatalf("clone has %d parameters, original %d", clone.NumParameters(), net.NumParameters())
	}
	if a, b := net.Predict(q, trees), clone.Predict(q, trees); a != b {
		t.Fatalf("clone predicts %v, original %v", b, a)
	}
	// Mutating the original must not leak into the clone.
	orig := net.Params()
	before := clone.Predict(q, trees)
	for _, p := range orig {
		for i := range p.Value {
			p.Value[i] += 0.1
		}
	}
	if got := clone.Predict(q, trees); got != before {
		t.Errorf("clone shares storage with the original: %v -> %v", before, got)
	}
}
