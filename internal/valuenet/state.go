// Value-network state serialization. Save captures everything Predict and
// TrainBatch depend on — input dimensions, the target standardisation, every
// trainable parameter of the query tower / tree-convolution stack / head,
// and the Adam step counter and moments — so a loaded network both predicts
// bit-identically and resumes its optimization trajectory exactly where the
// saved one stopped. Load restores in place: shadow-gradient shards created
// by earlier TrainBatch calls share parameter storage with the live network
// and therefore see the restored weights too.
package valuenet

import (
	"fmt"
	"io"

	"neo/internal/nn"
	"neo/internal/wire"
)

// Dims returns the query- and plan-vector dimensions the network was built
// for.
func (n *Network) Dims() (queryDim, planDim int) { return n.queryDim, n.planDim }

// Config returns the configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

// TargetTransform returns the log-cost standardisation fitted by
// FitTargetTransform.
func (n *Network) TargetTransform() (mean, std float64) { return n.targetMean, n.targetStd }

// SetTargetTransform restores a standardisation captured by TargetTransform.
func (n *Network) SetTargetTransform(mean, std float64) {
	if std == 0 {
		std = 1
	}
	n.targetMean, n.targetStd = mean, std
}

// Save writes the network's full trainable state: dimensions, target
// transform, parameters and optimizer state.
func (n *Network) Save(w io.Writer) error {
	if err := wire.WriteU32(w, uint32(n.queryDim)); err != nil {
		return err
	}
	if err := wire.WriteU32(w, uint32(n.planDim)); err != nil {
		return err
	}
	if err := wire.WriteF64(w, n.targetMean); err != nil {
		return err
	}
	if err := wire.WriteF64(w, n.targetStd); err != nil {
		return err
	}
	params := n.Params()
	if err := nn.SaveParams(w, params); err != nil {
		return err
	}
	return n.opt.Save(w, params)
}

// Load restores state written by Save into the receiver, in place. The
// receiver must have been constructed with the same dimensions and
// architecture as the saved network; any mismatch is an error and leaves the
// receiver partially updated, so treat a failed Load as fatal for the
// receiver.
func (n *Network) Load(r io.Reader) error {
	qd, err := wire.ReadU32(r)
	if err != nil {
		return err
	}
	pd, err := wire.ReadU32(r)
	if err != nil {
		return err
	}
	if int(qd) != n.queryDim || int(pd) != n.planDim {
		return fmt.Errorf("valuenet: saved network has dims %dx%d, receiver has %dx%d",
			qd, pd, n.queryDim, n.planDim)
	}
	mean, err := wire.ReadF64(r)
	if err != nil {
		return err
	}
	std, err := wire.ReadF64(r)
	if err != nil {
		return err
	}
	params := n.Params()
	if err := nn.LoadParams(r, params); err != nil {
		return err
	}
	if err := n.opt.Load(r, params); err != nil {
		return err
	}
	n.SetTargetTransform(mean, std)
	return nil
}
