package core

import (
	"fmt"
	"sort"
	"testing"

	"neo/internal/plan"
	"neo/internal/query"
)

// TestQueriesSortedOrder is the regression test for the map-iteration bug
// neo-lint's detrange check found here: Queries() used to return IDs in map
// iteration order, which Go randomizes per run, so two identically-seeded
// processes walking the result built their training sets in different
// orders. With 40 distinct IDs the chance of a random permutation coming
// out sorted is 1/40!, so this fails immediately if the sort is dropped.
func TestQueriesSortedOrder(t *testing.T) {
	e := NewExperience()
	// Insert in a deliberately non-sorted order.
	for _, i := range []int{17, 3, 39, 0, 25, 8, 31, 12, 36, 5, 21, 28, 1,
		14, 33, 9, 19, 38, 6, 24, 11, 30, 2, 16, 35, 7, 22, 27, 4, 13, 37,
		10, 20, 29, 15, 34, 18, 26, 23, 32} {
		id := fmt.Sprintf("q%02d", i)
		q := query.New(id, []string{"title"}, nil, nil)
		p := &plan.Plan{Query: q, Roots: []*plan.Node{plan.Leaf("title", plan.TableScan)}}
		e.Add(q, p, float64(100+i))
	}
	got := e.Queries()
	if len(got) != 40 {
		t.Fatalf("Queries returned %d IDs, want 40", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Queries() not sorted: %v", got)
	}
	// Two calls must agree element-for-element, not just as sets.
	again := e.Queries()
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("Queries() unstable at %d: %q vs %q", i, got[i], again[i])
		}
	}
}
