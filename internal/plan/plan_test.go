package plan

import (
	"strings"
	"testing"

	"neo/internal/datagen"
	"neo/internal/query"
	"neo/internal/storage"
)

func threeWayQuery() *query.Query {
	return query.New("q3",
		[]string{"title", "movie_keyword", "keyword"},
		[]query.JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
		},
		[]query.Predicate{
			{Table: "keyword", Column: "keyword", Op: query.Eq, Value: storage.StringValue("love")},
		})
}

func TestInitialPlan(t *testing.T) {
	q := threeWayQuery()
	p := Initial(q)
	if len(p.Roots) != 3 {
		t.Fatalf("Initial has %d roots, want 3", len(p.Roots))
	}
	if p.IsComplete() {
		t.Errorf("initial plan should not be complete")
	}
	if p.NumUnspecified() != 3 {
		t.Errorf("NumUnspecified = %d, want 3", p.NumUnspecified())
	}
	for _, r := range p.Roots {
		if !r.IsLeaf() || r.Scan != UnspecifiedScan {
			t.Errorf("initial roots should all be unspecified scans, got %s", r)
		}
	}
}

func TestNodeHelpers(t *testing.T) {
	n := Join2(LoopJoin,
		Join2(MergeJoin, Leaf("d", TableScan), Leaf("a", TableScan)),
		Leaf("c", IndexScan))
	if n.IsLeaf() {
		t.Errorf("join node should not be a leaf")
	}
	tables := n.Tables()
	if len(tables) != 3 || tables[0] != "a" || tables[1] != "c" || tables[2] != "d" {
		t.Errorf("Tables = %v", tables)
	}
	if n.NumNodes() != 5 {
		t.Errorf("NumNodes = %d, want 5", n.NumNodes())
	}
	if n.NumUnspecified() != 0 {
		t.Errorf("NumUnspecified = %d, want 0", n.NumUnspecified())
	}
	s := n.String()
	for _, want := range []string{"T(d)", "⋈M", "T(a)", "⋈L", "I(c)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	count := 0
	n.Walk(func(*Node) { count++ })
	if count != 5 {
		t.Errorf("Walk visited %d nodes, want 5", count)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Initial(threeWayQuery())
	c := p.Clone()
	c.Roots[0].Scan = TableScan
	if p.Roots[0].Scan != UnspecifiedScan {
		t.Errorf("mutating the clone changed the original")
	}
}

func TestPaperExampleNotation(t *testing.T) {
	// The partial plan from Figure 2: [(T(D) ⋈M T(A)) ⋈L I(C)], [U(B)]
	p := &Plan{
		Query: query.New("fig2", []string{"A", "B", "C", "D"}, nil, nil),
		Roots: []*Node{
			Join2(LoopJoin, Join2(MergeJoin, Leaf("D", TableScan), Leaf("A", TableScan)), Leaf("C", IndexScan)),
			Leaf("B", UnspecifiedScan),
		},
	}
	if p.IsComplete() {
		t.Errorf("figure 2 plan is partial")
	}
	if p.NumUnspecified() != 1 {
		t.Errorf("NumUnspecified = %d, want 1", p.NumUnspecified())
	}
	s := p.String()
	if !strings.Contains(s, "U(B)") {
		t.Errorf("String %q should contain U(B)", s)
	}
}

func TestChildrenFromInitial(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := threeWayQuery()
	p := Initial(q)
	kids := p.Children(ChildrenOptions{Catalog: cat})
	if len(kids) == 0 {
		t.Fatalf("initial plan should have children")
	}
	// Expected: scan specifications for the first root (table scan always,
	// index scan when usable) plus joins between connected roots
	// (title-movie_keyword and movie_keyword-keyword, both directions, 3 ops).
	scanKids := 0
	joinKids := 0
	for _, k := range kids {
		switch {
		case len(k.Roots) == len(p.Roots):
			scanKids++
		case len(k.Roots) == len(p.Roots)-1:
			joinKids++
		default:
			t.Errorf("unexpected child shape: %s", k)
		}
	}
	if scanKids < 1 || scanKids > 2 {
		t.Errorf("scan children = %d, want 1 or 2", scanKids)
	}
	if joinKids != 2*2*NumJoinOps {
		t.Errorf("join children = %d, want %d", joinKids, 2*2*NumJoinOps)
	}
	// keyword and title are not connected: no child should join them directly.
	for _, k := range kids {
		for _, r := range k.Roots {
			if !r.IsLeaf() {
				tabs := r.Tables()
				if len(tabs) == 2 && tabs[0] == "keyword" && tabs[1] == "title" {
					t.Errorf("child joins unconnected relations: %s", k)
				}
			}
		}
	}
}

func TestChildrenCrossProductOption(t *testing.T) {
	q := query.New("q2", []string{"keyword", "title"}, nil, nil)
	p := Initial(q)
	if kids := p.Children(ChildrenOptions{}); len(kids) != 1 {
		// Only the scan-specification child (table scan for first root, no
		// catalog so index allowed too). Without catalog indexUsable
		// defaults to true, so 2 scan children.
		if len(kids) != 2 {
			t.Errorf("without cross products, only scan children expected, got %d", len(kids))
		}
	}
	kids := p.Children(ChildrenOptions{AllowCrossProducts: true})
	joins := 0
	for _, k := range kids {
		if len(k.Roots) == 1 {
			joins++
		}
	}
	if joins != 2*NumJoinOps {
		t.Errorf("cross-product joins = %d, want %d", joins, 2*NumJoinOps)
	}
}

func TestCompletePlanHasNoChildren(t *testing.T) {
	q := query.New("q1", []string{"title"}, nil, nil)
	p := &Plan{Query: q, Roots: []*Node{Leaf("title", TableScan)}}
	if !p.IsComplete() {
		t.Fatalf("single specified scan should be complete")
	}
	if kids := p.Children(ChildrenOptions{}); kids != nil {
		t.Errorf("complete plan should have no children, got %d", len(kids))
	}
}

func TestSearchReachesCompletePlan(t *testing.T) {
	// Repeatedly expanding the first child must terminate in a complete plan.
	cat := datagen.IMDBCatalog()
	p := Initial(threeWayQuery())
	steps := 0
	for !p.IsComplete() {
		kids := p.Children(ChildrenOptions{Catalog: cat})
		if len(kids) == 0 {
			t.Fatalf("dead end at %s", p)
		}
		p = kids[len(kids)-1]
		steps++
		if steps > 50 {
			t.Fatalf("did not reach a complete plan after %d steps", steps)
		}
	}
	if got := len(p.Roots[0].Tables()); got != 3 {
		t.Errorf("complete plan covers %d tables, want 3", got)
	}
}

func TestChildrenCoverBothJoinDirections(t *testing.T) {
	cat := datagen.IMDBCatalog()
	q := query.New("q2", []string{"movie_keyword", "title"},
		[]query.JoinPredicate{{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"}}, nil)
	p := &Plan{Query: q, Roots: []*Node{Leaf("movie_keyword", TableScan), Leaf("title", TableScan)}}
	kids := p.Children(ChildrenOptions{Catalog: cat})
	var sigs []string
	for _, k := range kids {
		sigs = append(sigs, k.Signature())
	}
	joined := strings.Join(sigs, " ")
	if !strings.Contains(joined, "(T(movie_keyword) ⋈H T(title))") ||
		!strings.Contains(joined, "(T(title) ⋈H T(movie_keyword))") {
		t.Errorf("expected both join orientations among children: %v", sigs)
	}
}

func TestIsSubplanOf(t *testing.T) {
	complete := &Plan{
		Query: threeWayQuery(),
		Roots: []*Node{
			Join2(HashJoin,
				Join2(MergeJoin, Leaf("movie_keyword", TableScan), Leaf("title", IndexScan)),
				Leaf("keyword", TableScan)),
		},
	}
	cases := []struct {
		name string
		p    *Plan
		want bool
	}{
		{
			"initial plan is subplan of anything",
			Initial(threeWayQuery()),
			true,
		},
		{
			"matching inner join",
			&Plan{Query: complete.Query, Roots: []*Node{
				Join2(MergeJoin, Leaf("movie_keyword", TableScan), Leaf("title", UnspecifiedScan)),
				Leaf("keyword", UnspecifiedScan),
			}},
			true,
		},
		{
			"wrong join operator",
			&Plan{Query: complete.Query, Roots: []*Node{
				Join2(LoopJoin, Leaf("movie_keyword", TableScan), Leaf("title", UnspecifiedScan)),
			}},
			false,
		},
		{
			"wrong scan type",
			&Plan{Query: complete.Query, Roots: []*Node{
				Join2(MergeJoin, Leaf("movie_keyword", IndexScan), Leaf("title", UnspecifiedScan)),
			}},
			false,
		},
		{
			"wrong orientation",
			&Plan{Query: complete.Query, Roots: []*Node{
				Join2(MergeJoin, Leaf("title", UnspecifiedScan), Leaf("movie_keyword", TableScan)),
			}},
			false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.IsSubplanOf(complete); got != tc.want {
				t.Errorf("IsSubplanOf = %v, want %v", got, tc.want)
			}
		})
	}
	// A forest (more than one root) is never a "complete" target.
	if (&Plan{Query: complete.Query, Roots: complete.Roots}).IsSubplanOf(Initial(threeWayQuery())) {
		t.Errorf("IsSubplanOf against a partial target should be false")
	}
}

func TestSignatureStableUnderRootOrder(t *testing.T) {
	q := threeWayQuery()
	a := &Plan{Query: q, Roots: []*Node{Leaf("title", TableScan), Leaf("keyword", IndexScan)}}
	b := &Plan{Query: q, Roots: []*Node{Leaf("keyword", IndexScan), Leaf("title", TableScan)}}
	if a.Signature() != b.Signature() {
		t.Errorf("signatures should be order-independent: %q vs %q", a.Signature(), b.Signature())
	}
}

func TestStringerEdgeCases(t *testing.T) {
	var n *Node
	if n.String() != "∅" {
		t.Errorf("nil node String = %q", n.String())
	}
	if HashJoin.String() != "HashJoin" || MergeJoin.String() != "MergeJoin" || LoopJoin.String() != "LoopJoin" {
		t.Errorf("JoinOp strings wrong")
	}
	if UnspecifiedScan.String() != "U" || TableScan.String() != "T" || IndexScan.String() != "I" {
		t.Errorf("ScanType strings wrong")
	}
	if !strings.Contains(JoinOp(9).String(), "9") || !strings.Contains(ScanType(9).String(), "9") {
		t.Errorf("unknown enum strings should include the raw value")
	}
}

func TestIndexUsableRespectsCatalog(t *testing.T) {
	cat := datagen.IMDBCatalog()
	// name.country has no index and name.id is not referenced by this
	// query's joins or predicates, so an index scan should not be offered.
	q := query.New("q", []string{"name"}, nil, []query.Predicate{
		{Table: "name", Column: "country", Op: query.Eq, Value: storage.StringValue("us")},
	})
	p := Initial(q)
	kids := p.Children(ChildrenOptions{Catalog: cat})
	for _, k := range kids {
		if k.Roots[0].Scan == IndexScan {
			t.Errorf("index scan offered for unindexed predicate column")
		}
	}
	// movie_keyword.movie_id is indexed, so a join query on it should offer
	// an index scan.
	q2 := threeWayQuery()
	kids2 := Initial(q2).Children(ChildrenOptions{Catalog: cat})
	sawIndex := false
	for _, k := range kids2 {
		for _, r := range k.Roots {
			if r.IsLeaf() && r.Scan == IndexScan {
				sawIndex = true
			}
		}
	}
	if !sawIndex {
		t.Errorf("expected at least one index-scan child for an indexed relation")
	}
}
