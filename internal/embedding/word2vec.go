// Package embedding implements Neo's R-Vector featurization substrate: a
// word2vec-style (skip-gram with negative sampling) embedding model trained
// on database rows, treating each row — or each partially denormalised row —
// as a "sentence" of column values (Section 5 of the paper).
//
// The resulting vectors place correlated values (e.g. the keyword "love" and
// the genre "romance") close together, giving the value network a
// semantically rich representation of query predicates that substitutes for
// precise cardinality estimation.
package embedding

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"neo/internal/schema"
	"neo/internal/storage"
)

// Config controls word2vec training.
type Config struct {
	// Dim is the embedding dimensionality (the paper uses 100; the default
	// here is smaller so the full experiment suite runs quickly).
	Dim int
	// Epochs is the number of passes over the sentences.
	Epochs int
	// NegativeSamples is the number of negative samples per positive pair.
	NegativeSamples int
	// LearningRate is the (constant) SGD step size.
	LearningRate float64
	// MinCount drops tokens rarer than this from the vocabulary.
	MinCount int
	// Seed seeds the sampling RNG.
	Seed int64
}

// DefaultConfig returns a configuration suitable for the experiment suite.
func DefaultConfig() Config {
	return Config{Dim: 16, Epochs: 4, NegativeSamples: 4, LearningRate: 0.05, MinCount: 1, Seed: 1}
}

// Model is a trained row-vector embedding.
type Model struct {
	Dim int
	// TrainTime is how long Train took (reported by the Figure 17 bench).
	TrainTime time.Duration
	// Sentences is the number of training sentences used.
	Sentences int

	vocab  map[string]int
	tokens []string
	counts []int
	in     [][]float64 // input (word) vectors — these are the row vectors
	out    [][]float64 // output (context) vectors
}

// Train trains a skip-gram model over the given sentences. Tokens are
// arbitrary strings; in Neo they are "column=value" pairs produced by
// Sentences / DenormalizedSentences.
func Train(sentences [][]string, cfg Config) *Model {
	start := time.Now()
	if cfg.Dim <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Dim: cfg.Dim, vocab: make(map[string]int), Sentences: len(sentences)}

	// Build the vocabulary.
	freq := make(map[string]int)
	for _, s := range sentences {
		for _, w := range s {
			freq[w]++
		}
	}
	words := make([]string, 0, len(freq))
	for w, c := range freq {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	sort.Strings(words) // deterministic ordering
	for _, w := range words {
		m.vocab[w] = len(m.tokens)
		m.tokens = append(m.tokens, w)
		m.counts = append(m.counts, freq[w])
	}
	n := len(m.tokens)
	if n == 0 {
		m.TrainTime = time.Since(start)
		return m
	}
	m.in = make([][]float64, n)
	m.out = make([][]float64, n)
	for i := 0; i < n; i++ {
		m.in[i] = make([]float64, cfg.Dim)
		m.out[i] = make([]float64, cfg.Dim)
		for d := 0; d < cfg.Dim; d++ {
			m.in[i][d] = (rng.Float64() - 0.5) / float64(cfg.Dim)
		}
	}

	// Unigram^0.75 negative-sampling table.
	negTable := buildNegativeTable(m.counts, 1<<16)

	// Skip-gram with negative sampling; the context window is the entire
	// sentence (rows are short).
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sentence := range sentences {
			ids := make([]int, 0, len(sentence))
			for _, w := range sentence {
				if id, ok := m.vocab[w]; ok {
					ids = append(ids, id)
				}
			}
			for i, center := range ids {
				for j, context := range ids {
					if i == j {
						continue
					}
					m.trainPair(center, context, 1, cfg.LearningRate)
					for k := 0; k < cfg.NegativeSamples; k++ {
						neg := negTable[rng.Intn(len(negTable))]
						if neg == context {
							continue
						}
						m.trainPair(center, neg, 0, cfg.LearningRate)
					}
				}
			}
		}
	}
	m.TrainTime = time.Since(start)
	return m
}

// trainPair performs one SGD step on (center, context) with the given label
// (1 for observed pairs, 0 for negative samples).
func (m *Model) trainPair(center, context int, label float64, lr float64) {
	vin := m.in[center]
	vout := m.out[context]
	dot := 0.0
	for d := range vin {
		dot += vin[d] * vout[d]
	}
	pred := sigmoid(dot)
	g := (pred - label) * lr
	for d := range vin {
		inD := vin[d]
		vin[d] -= g * vout[d]
		vout[d] -= g * inD
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func buildNegativeTable(counts []int, size int) []int {
	table := make([]int, 0, size)
	total := 0.0
	pow := make([]float64, len(counts))
	for i, c := range counts {
		pow[i] = math.Pow(float64(c), 0.75)
		total += pow[i]
	}
	for i := range counts {
		n := int(pow[i] / total * float64(size))
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			table = append(table, i)
		}
	}
	return table
}

// VocabSize returns the number of tokens in the model.
func (m *Model) VocabSize() int { return len(m.tokens) }

// Vector returns the embedding of a token and whether it is in the
// vocabulary.
func (m *Model) Vector(token string) ([]float64, bool) {
	id, ok := m.vocab[token]
	if !ok {
		return nil, false
	}
	return m.in[id], true
}

// Count returns how often the token was seen during training.
func (m *Model) Count(token string) int {
	id, ok := m.vocab[token]
	if !ok {
		return 0
	}
	return m.counts[id]
}

// Similarity returns the cosine similarity between two tokens (0 when either
// token is unknown).
func (m *Model) Similarity(a, b string) float64 {
	va, ok1 := m.Vector(a)
	vb, ok2 := m.Vector(b)
	if !ok1 || !ok2 {
		return 0
	}
	return Cosine(va, vb)
}

// Cosine computes the cosine similarity of two vectors.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// MatchMean returns the mean vector of every vocabulary token that starts
// with the given prefix (typically "table.column=") and contains the given
// substring in its value part, along with how many tokens matched. This
// implements the paper's handling of LIKE/IN predicates ("we take the mean
// of all the matched word vectors").
func (m *Model) MatchMean(prefix, substring string) ([]float64, int) {
	mean := make([]float64, m.Dim)
	matched := 0
	needle := strings.ToLower(substring)
	for i, tok := range m.tokens {
		if !strings.HasPrefix(tok, prefix) {
			continue
		}
		value := strings.ToLower(strings.TrimPrefix(tok, prefix))
		if needle != "" && !strings.Contains(value, needle) {
			continue
		}
		for d := range mean {
			mean[d] += m.in[i][d]
		}
		matched++
	}
	if matched > 0 {
		for d := range mean {
			mean[d] /= float64(matched)
		}
	}
	return mean, matched
}

// Token builds the canonical token for a column value, e.g.
// "keyword.keyword=love".
func Token(table, column string, v storage.Value) string {
	return TokenPrefix(table, column) + v.String()
}

// TokenPrefix returns the "table.column=" prefix used for tokens of one
// column.
func TokenPrefix(table, column string) string {
	return fmt.Sprintf("%s.%s=", table, column)
}

// sentenceOptions controls which columns contribute tokens.
type sentenceOptions struct {
	skip map[string]bool // "table.column" keys to skip (keys and FK columns)
}

func buildSkip(cat *schema.Catalog) sentenceOptions {
	skip := make(map[string]bool)
	for _, t := range cat.Tables() {
		if t.PrimaryKey != "" {
			skip[t.Name+"."+t.PrimaryKey] = true
		}
	}
	for _, fk := range cat.ForeignKeys() {
		skip[fk.FromTable+"."+fk.FromColumn] = true
		skip[fk.ToTable+"."+fk.ToColumn] = true
	}
	return sentenceOptions{skip: skip}
}

// rowTokens returns the tokens of one row of one table, skipping key columns
// (join keys carry no semantic content and would blow up the vocabulary).
func rowTokens(db *storage.Database, table string, row int, opts sentenceOptions) []string {
	tab := db.Table(table)
	ts := tab.Schema
	var out []string
	for _, col := range ts.Columns {
		if opts.skip[table+"."+col.Name] {
			continue
		}
		v, err := tab.Value(col.Name, row)
		if err != nil {
			continue
		}
		if col.Type == schema.IntType {
			// Bucket high-cardinality integers (e.g. years into decades) so
			// tokens recur often enough to embed.
			v = storage.IntValue(v.Int / 10 * 10)
		}
		out = append(out, Token(table, col.Name, v))
	}
	return out
}

// Sentences produces the "no joins" training corpus: one sentence per base
// row, containing that row's (non-key) column values.
func Sentences(db *storage.Database) [][]string {
	opts := buildSkip(db.Catalog)
	var out [][]string
	for _, t := range db.Catalog.Tables() {
		tab := db.Table(t.Name)
		for row := 0; row < tab.NumRows(); row++ {
			s := rowTokens(db, t.Name, row, opts)
			if len(s) > 0 {
				out = append(out, s)
			}
		}
	}
	return out
}

// DenormalizedSentences produces the "joins" training corpus: in addition to
// the per-row sentences, the hub table (the table referenced by the most
// foreign keys — title in the IMDB profile) is partially denormalised: each
// hub row becomes a sentence containing its own values, the values of every
// referencing child row, and the values of the dimension rows those children
// point at. This is what lets keywords and genres of the same movie co-occur.
func DenormalizedSentences(db *storage.Database, maxChildrenPerHub int) [][]string {
	if maxChildrenPerHub <= 0 {
		maxChildrenPerHub = 40
	}
	cat := db.Catalog
	opts := buildSkip(cat)
	out := Sentences(db)

	hub := hubTable(cat)
	if hub == "" {
		return out
	}
	hubTab := db.Table(hub)
	hubSchema, _ := cat.Table(hub)

	// children: FKs pointing at the hub.
	var childFKs []schema.ForeignKey
	for _, fk := range cat.ForeignKeys() {
		if fk.ToTable == hub {
			childFKs = append(childFKs, fk)
		}
	}

	for row := 0; row < hubTab.NumRows(); row++ {
		sentence := rowTokens(db, hub, row, opts)
		hubKey, err := hubTab.Value(hubSchema.PrimaryKey, row)
		if err != nil {
			continue
		}
		added := 0
		for _, fk := range childFKs {
			child := db.Table(fk.FromTable)
			idx := child.Index(fk.FromColumn)
			if idx == nil {
				continue
			}
			for _, childRow := range idx.Lookup(hubKey) {
				if added >= maxChildrenPerHub {
					break
				}
				sentence = append(sentence, rowTokens(db, fk.FromTable, int(childRow), opts)...)
				// Follow the child's other foreign keys one more hop (e.g.
				// movie_keyword.keyword_id -> keyword.keyword).
				for _, fk2 := range cat.ForeignKeys() {
					if fk2.FromTable != fk.FromTable || fk2.ToTable == hub {
						continue
					}
					keyVal, err := child.Value(fk2.FromColumn, int(childRow))
					if err != nil {
						continue
					}
					dim := db.Table(fk2.ToTable)
					dimIdx := dim.Index(fk2.ToColumn)
					if dimIdx == nil {
						continue
					}
					for _, dimRow := range dimIdx.Lookup(keyVal) {
						sentence = append(sentence, rowTokens(db, fk2.ToTable, int(dimRow), opts)...)
						break
					}
				}
				added++
			}
		}
		if len(sentence) > 1 {
			out = append(out, sentence)
		}
	}
	return out
}

// hubTable returns the table referenced by the largest number of foreign
// keys (ties broken by catalog order), or "" if the catalog has no foreign
// keys.
func hubTable(cat *schema.Catalog) string {
	counts := make(map[string]int)
	for _, fk := range cat.ForeignKeys() {
		counts[fk.ToTable]++
	}
	best, bestCount := "", 0
	for _, t := range cat.Tables() {
		if counts[t.Name] > bestCount {
			best, bestCount = t.Name, counts[t.Name]
		}
	}
	return best
}
