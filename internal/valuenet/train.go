// Batched training. TrainBatchPerSample (the original path) runs a full
// forward/backward tape per example; TrainBatch — the path Train and Neo's
// retraining loop use — mirrors the batched inference pipeline end-to-end:
//
//   - samples are partitioned into fixed-size gradient shards (the partition
//     depends only on the minibatch size, never on the worker count),
//   - each shard runs ONE shared forward+backward pass: the query tower runs
//     once per distinct query vector, spatial replication writes straight
//     into a flattened forest batch, tree convolution / dynamic pooling /
//     the head run over flat arrays with all scratch drawn from a per-shard
//     arena,
//   - each shard accumulates gradients into shadow parameters (shared
//     weights, private gradient buffers), and the shard gradients are
//     reduced into the live network in deterministic shard order before the
//     single Adam step.
//
// Because the shard partition and the reduction order are fixed, training is
// bit-identical for any Config.TrainWorkers value — the workers only buy
// wall-clock time. Relative to the per-sample path the batched pass performs
// the same per-element gradient accumulation in the same order everywhere
// except the deduplicated query tower, so the two paths agree to ~1e-9 per
// step (and exactly in every test to date except the query MLP's gradients,
// which differ only in floating-point association).
package valuenet

import (
	"sync"
	"sync/atomic"

	"neo/internal/nn"
	"neo/internal/treeconv"
)

// trainShardSize is the number of samples per gradient shard. It is a fixed
// constant so the shard partition — and with it the gradient-reduction tree
// — depends only on the minibatch size, keeping training results invariant
// under the worker count.
const trainShardSize = 8

// trainShard holds one gradient worker's private state: shadow networks
// sharing the live weights with private gradient buffers, plus all reusable
// scratch for the shard's batched forward/backward pass.
type trainShard struct {
	qmlp *nn.MLP
	conv *treeconv.Stack
	head *nn.MLP
	// params lists the shadow parameters in the same order as
	// Network.Params, so reduction can walk the two aligned slices.
	params []*nn.Param

	arena   nn.Arena
	builder treeconv.BatchBuilder
	forests [][]*treeconv.Tree
	qVecs   [][]float64
	qIndex  []int
	qFlat   []float64
	argmax  []int
	loss    float64
}

// trainer owns the per-shard training state, grown on demand. It lives on
// the Network and is reused across TrainBatch calls; training is
// single-caller by contract (Neo serializes retraining rounds), so no
// locking is needed.
type trainer struct {
	shards []*trainShard
}

func (n *Network) shard(i int) *trainShard {
	if n.train == nil {
		n.train = &trainer{}
	}
	for len(n.train.shards) <= i {
		sh := &trainShard{
			qmlp: n.qmlp.ShadowGrad(),
			conv: n.conv.ShadowGrad(),
			head: n.head.ShadowGrad(),
		}
		sh.params = append(sh.params, sh.qmlp.Params()...)
		sh.params = append(sh.params, sh.conv.Params()...)
		sh.params = append(sh.params, sh.head.Params()...)
		n.train.shards = append(n.train.shards, sh)
	}
	return n.train.shards[i]
}

// TrainBatch performs one gradient step on a batch of samples using the
// batched pipeline described in the package comment and returns the mean L2
// loss (in normalised space). Results are bit-identical for any
// Config.TrainWorkers value; relative to TrainBatchPerSample they agree to
// floating-point association (~1e-9).
func (n *Network) TrainBatch(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	numShards := (len(samples) + trainShardSize - 1) / trainShardSize
	for i := 0; i < numShards; i++ {
		n.shard(i) // pre-grow so workers never mutate the shard slice
	}
	workers := n.cfg.TrainWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > numShards {
		workers = numShards
	}
	shardSamples := func(i int) []Sample {
		lo := i * trainShardSize
		hi := lo + trainShardSize
		if hi > len(samples) {
			hi = len(samples)
		}
		return samples[lo:hi]
	}
	if workers == 1 {
		for i := 0; i < numShards; i++ {
			n.train.shards[i].run(n, shardSamples(i))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= numShards {
						return
					}
					n.train.shards[i].run(n, shardSamples(i))
				}
			}()
		}
		wg.Wait()
	}
	// Reduce shard gradients into the live parameters in shard order — the
	// fixed reduction order that keeps training worker-count invariant —
	// and clear the shadow buffers for the next step.
	params := n.Params()
	total := 0.0
	for i := 0; i < numShards; i++ {
		sh := n.train.shards[i]
		total += sh.loss
		for pi, p := range params {
			sg := sh.params[pi].Grad
			pg := p.Grad
			for j, g := range sg {
				pg[j] += g
				sg[j] = 0
			}
		}
	}
	n.opt.Step(params, len(samples))
	return total / float64(len(samples))
}

// run executes one shard's shared forward+backward pass, leaving the
// shard's gradient contribution in its shadow parameters and the summed L2
// loss in sh.loss.
func (sh *trainShard) run(n *Network, samples []Sample) {
	sh.arena.Reset()
	a := &sh.arena
	rows := len(samples)

	// Deduplicate query vectors by slice identity, exactly as PredictBatch
	// does: experience samples of the same query share one encoding slice,
	// so the query tower runs once per distinct query.
	sh.qVecs = sh.qVecs[:0]
	if cap(sh.qIndex) < rows {
		sh.qIndex = make([]int, rows)
	}
	sh.qIndex = sh.qIndex[:rows]
	if cap(sh.forests) < rows {
		sh.forests = make([][]*treeconv.Tree, rows)
	}
	sh.forests = sh.forests[:rows]
	for s, smp := range samples {
		q := smp.Query
		sh.forests[s] = smp.Plan
		idx := -1
		for u, uq := range sh.qVecs {
			if len(uq) == len(q) && (len(q) == 0 || &uq[0] == &q[0]) {
				idx = u
				break
			}
		}
		if idx < 0 {
			idx = len(sh.qVecs)
			sh.qVecs = append(sh.qVecs, q)
		}
		sh.qIndex[s] = idx
	}
	sh.qFlat = sh.qFlat[:0]
	for _, q := range sh.qVecs {
		if len(q) != n.queryDim {
			panic("valuenet: TrainBatch query vector dimension mismatch")
		}
		sh.qFlat = append(sh.qFlat, q...)
	}
	qt := sh.qmlp.ForwardBatchTape(sh.qFlat, len(sh.qVecs), a)
	g := qt.Output()
	qOut := len(g) / len(sh.qVecs)

	// Spatial replication straight into the flattened forest batch.
	channels := n.planDim + qOut
	batch := sh.builder.Build(sh.forests, channels, func(sample int, node *treeconv.Tree, row []float64) {
		if len(node.Data) != n.planDim {
			panic("valuenet: TrainBatch plan vector dimension mismatch")
		}
		copy(row[:n.planDim], node.Data)
		copy(row[n.planDim:], g[sh.qIndex[sample]*qOut:(sh.qIndex[sample]+1)*qOut])
	})

	ct := sh.conv.ForwardBatchTape(batch, a)
	convOut := ct.Output()
	pooled, argmax := treeconv.PoolBatchArgmax(convOut, a, sh.argmax)
	sh.argmax = argmax
	ht := sh.head.ForwardBatchTape(pooled, rows, a)
	out := ht.Output()

	gradOut := a.Alloc(rows)
	loss := 0.0
	for i, smp := range samples {
		l, grad := nn.L2Loss(out[i], n.normalize(smp.Target))
		loss += l
		gradOut[i] = grad
	}
	sh.loss = loss

	gradPooled := sh.head.BackwardBatch(ht, gradOut, a)
	gradNodes := treeconv.PoolBackwardBatch(convOut, sh.argmax, gradPooled, a)
	gradAug := sh.conv.BackwardBatch(ct, gradNodes, a)

	// Split the augmented-node gradients: the plan-feature part is an input
	// (no gradient consumer); the query part accumulates per distinct query
	// in flattened node order — sample-major, the per-sample walk order.
	qGrad := a.Alloc(len(sh.qVecs) * qOut)
	for i := range qGrad {
		qGrad[i] = 0
	}
	for node := 0; node < batch.N; node++ {
		dst := qGrad[sh.qIndex[batch.Sample[node]]*qOut:]
		row := gradAug[node*channels+n.planDim : (node+1)*channels]
		for j, v := range row {
			dst[j] += v
		}
	}
	sh.qmlp.BackwardBatch(qt, qGrad, a)
}
