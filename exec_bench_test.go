package repro

import (
	"testing"

	"neo/internal/bench"
)

// BenchmarkDiskExecution measures the disk execution backend: a page sweep
// over every heap file through a cold buffer pool (every access faults to
// disk) versus a warm one (every access is a map hit), and a fixed set of
// expert-chosen JOB plans run end-to-end through the disk executor under the
// same cold/hot treatment. The pool pair is the page-miss penalty — the
// storage effect the disk backend's measured-latency experience signal
// carries and the simulated cost models cannot price; the committed
// BENCH_exec.json baseline and CI's bench-gate enforce that the cold/hot
// pool gap stays >= 2x.
//
// Verify the gap with:
//
//	go test -bench BenchmarkDiskExecution -run '^$' .
func BenchmarkDiskExecution(b *testing.B) {
	poolCold, poolHot, diskCold, diskHot, cleanup := bench.ExecBenchmarks()
	defer cleanup()
	b.Run("pool-cold", poolCold)
	b.Run("pool-hot", poolHot)
	b.Run("disk-cold", diskCold)
	b.Run("disk-hot", diskHot)
}
