// Package search implements Neo's DNN-guided plan search (Section 4.2 of the
// paper): a best-first search over the space of partial execution plans,
// ordered by the value network's cost predictions, with an anytime budget and
// a greedy "hurry-up" fallback when the budget expires before a complete
// plan has been found.
package search

import (
	"container/heap"
	"fmt"
	"time"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/schema"
)

// Scorer predicts the best-possible cost reachable from a (partial) plan.
// Neo's value network is the intended implementation; tests use synthetic
// scorers.
type Scorer interface {
	Score(p *plan.Plan) float64
}

// ScorerFunc adapts a function to the Scorer interface.
type ScorerFunc func(p *plan.Plan) float64

// Score implements Scorer.
func (f ScorerFunc) Score(p *plan.Plan) float64 { return f(p) }

// Options configures a search.
type Options struct {
	// Catalog restricts index-scan children to relations with usable
	// indexes.
	Catalog *schema.Catalog
	// MaxExpansions bounds the number of nodes popped from the frontier; it
	// is the machine-independent analogue of the paper's wall-clock cutoff
	// (250 ms ≈ a few hundred expansions for the network sizes used here).
	MaxExpansions int
	// TimeBudget optionally bounds wall-clock search time; zero means no
	// wall-clock limit.
	TimeBudget time.Duration
	// AllowCrossProducts permits joining disconnected subtrees.
	AllowCrossProducts bool
}

// DefaultOptions returns the options used by the experiments.
func DefaultOptions(cat *schema.Catalog) Options {
	return Options{Catalog: cat, MaxExpansions: 512}
}

// Result reports the outcome of a search.
type Result struct {
	// Plan is the best complete plan found.
	Plan *plan.Plan
	// Score is the scorer's estimate for that plan.
	Score float64
	// Expansions is the number of frontier nodes expanded.
	Expansions int
	// Evaluations is the number of scorer invocations.
	Evaluations int
	// HurryUp reports whether the greedy fallback produced the plan.
	HurryUp bool
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// frontierItem is one entry of the priority queue.
type frontierItem struct {
	plan  *plan.Plan
	score float64
	index int
}

type frontier []*frontierItem

func (f frontier) Len() int            { return len(f) }
func (f frontier) Less(i, j int) bool  { return f[i].score < f[j].score }
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i]; f[i].index = i; f[j].index = j }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(*frontierItem)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*f = old[:n-1]
	return item
}

// BestFirst runs the DNN-guided best-first search of Section 4.2 and returns
// the best complete plan found within the budget. The search is anytime:
// when the budget expires it returns the best complete plan seen so far, or
// — if none has been completed yet — enters "hurry-up" mode and greedily
// descends from the most promising frontier node.
func BestFirst(q *query.Query, scorer Scorer, opts Options) (*Result, error) {
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("search: query %s has no relations", q.ID)
	}
	if opts.MaxExpansions <= 0 {
		opts.MaxExpansions = 512
	}
	start := time.Now()
	childOpts := plan.ChildrenOptions{Catalog: opts.Catalog, AllowCrossProducts: opts.AllowCrossProducts}

	res := &Result{}
	initial := plan.Initial(q)
	f := &frontier{}
	heap.Init(f)
	res.Evaluations++
	heap.Push(f, &frontierItem{plan: initial, score: scorer.Score(initial)})
	seen := map[string]bool{initial.Signature(): true}

	var bestComplete *plan.Plan
	bestScore := 0.0
	var lastExpanded *plan.Plan = initial

	budgetExceeded := func() bool {
		if res.Expansions >= opts.MaxExpansions {
			return true
		}
		if opts.TimeBudget > 0 && time.Since(start) > opts.TimeBudget {
			return true
		}
		return false
	}

	for f.Len() > 0 && !budgetExceeded() {
		item := heap.Pop(f).(*frontierItem)
		res.Expansions++
		lastExpanded = item.plan
		if item.plan.IsComplete() {
			if bestComplete == nil || item.score < bestScore {
				bestComplete = item.plan
				bestScore = item.score
			}
			// The frontier is ordered by predicted cost, so the first
			// complete plan popped is the search's best guess; continuing
			// (anytime behaviour) can still improve it within the budget.
			continue
		}
		for _, child := range item.plan.Children(childOpts) {
			sig := child.Signature()
			if seen[sig] {
				continue
			}
			seen[sig] = true
			res.Evaluations++
			score := scorer.Score(child)
			if child.IsComplete() && (bestComplete == nil || score < bestScore) {
				bestComplete = child
				bestScore = score
			}
			heap.Push(f, &frontierItem{plan: child, score: score})
		}
	}

	if bestComplete == nil {
		// Hurry-up mode: greedily descend from the last expanded node.
		res.HurryUp = true
		hp, score, evals := greedyDescend(lastExpanded, scorer, childOpts)
		res.Evaluations += evals
		bestComplete = hp
		bestScore = score
	}
	if bestComplete == nil || !bestComplete.IsComplete() {
		return nil, fmt.Errorf("search: no complete plan found for query %s", q.ID)
	}
	res.Plan = bestComplete
	res.Score = bestScore
	res.Elapsed = time.Since(start)
	return res, nil
}

// Greedy builds a plan by always taking the child with the best predicted
// cost, without maintaining a frontier. This is the paper's "hurry-up" mode
// applied from the start, and is equivalent to the greedy action selection
// of Q-learning-style approaches (DQ); the ablation benchmarks compare it
// against the full best-first search.
func Greedy(q *query.Query, scorer Scorer, opts Options) (*Result, error) {
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("search: query %s has no relations", q.ID)
	}
	start := time.Now()
	childOpts := plan.ChildrenOptions{Catalog: opts.Catalog, AllowCrossProducts: opts.AllowCrossProducts}
	p, score, evals := greedyDescend(plan.Initial(q), scorer, childOpts)
	if p == nil || !p.IsComplete() {
		return nil, fmt.Errorf("search: greedy descent failed for query %s", q.ID)
	}
	return &Result{Plan: p, Score: score, Evaluations: evals, HurryUp: true, Elapsed: time.Since(start)}, nil
}

// greedyDescend repeatedly takes the lowest-scoring child until reaching a
// complete plan.
func greedyDescend(p *plan.Plan, scorer Scorer, opts plan.ChildrenOptions) (*plan.Plan, float64, int) {
	evals := 0
	cur := p
	curScore := 0.0
	for !cur.IsComplete() {
		kids := cur.Children(opts)
		if len(kids) == 0 {
			// Retry allowing cross products; if that fails too, give up.
			if !opts.AllowCrossProducts {
				opts.AllowCrossProducts = true
				continue
			}
			return nil, 0, evals
		}
		best := kids[0]
		bestScore := scorer.Score(best)
		evals++
		for _, k := range kids[1:] {
			s := scorer.Score(k)
			evals++
			if s < bestScore {
				best, bestScore = k, s
			}
		}
		cur, curScore = best, bestScore
	}
	return cur, curScore, evals
}
