// Package guardedby is a neo-lint self-test fixture for the `// guarded by
// <mu>` discipline check.
package guardedby

import "sync"

type counter struct {
	mu    sync.RWMutex
	reads int // guarded by mu
	// hits is the per-query tally.
	// guarded by mu
	hits map[string]int
	// guarded by nonexistent
	orphan int // want "not a field of counter"
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reads++
	return c.reads
}

func (c *counter) GoodRead() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.reads
}

func (c *counter) GoodHit(q string) {
	c.mu.Lock()
	c.hits[q]++
	c.mu.Unlock()
}

func (c *counter) BadRead() int {
	return c.reads // want "read without holding"
}

func (c *counter) BadWriteUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.reads++ // want "written without holding it exclusively"
}

func (c *counter) AfterUnlock() {
	c.mu.Lock()
	c.reads++
	c.mu.Unlock()
	c.reads = 0 // want "written without holding"
}

func (c *counter) AddressEscapes() *int {
	return &c.reads // want "written without holding"
}

func (c *counter) EarlyExit() int {
	c.mu.Lock()
	if c.hits == nil {
		c.mu.Unlock() // terminating branch: must not leak to the code below
		return 0
	}
	v := c.reads
	c.mu.Unlock()
	return v
}

func (c *counter) UnlockedInBranch() int {
	c.mu.Lock()
	if len(c.hits) > 0 {
		c.mu.Unlock() // non-terminating branch: the fall-through IS unlocked
	}
	return c.reads // want "read without holding"
}

func (c *counter) resetLocked() {
	c.reads = 0 // *Locked methods document "caller holds mu": no finding
	c.hits = nil
}

func (c *counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
}

func (c *counter) Async() {
	go func() {
		c.reads++ // function literals are exempt (see check doc): no finding
	}()
}

func (c *counter) Suppressed() int {
	return c.reads //neo:lint-ok guardedby fixture reads a racy hint value on purpose
}

func (c *counter) Unguarded() sync.RWMutex {
	return c.mu // the mutex itself is not a guarded field: no finding
}
