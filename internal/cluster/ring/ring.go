// Package ring implements the consistent-hash ring that shards queries
// across neo-serve replicas. Each node contributes a fixed number of virtual
// points on a 64-bit ring; a key is served by the first node clockwise from
// its hash. Adding or removing one node therefore moves only ~1/N of the key
// space — which is exactly what keeps the fleet's sharded plan caches warm
// through a replica restart: every surviving replica keeps its shard, and
// only the dead replica's shard re-searches (on its failover successor).
package ring

import (
	"fmt"
	"sort"

	"neo/internal/cluster/proto"
)

// defaultVNodes is the virtual-node count per node. 64 points per node keeps
// the shard-size spread within a few percent for small fleets while the ring
// stays tiny (a 16-replica fleet is 1024 points).
const defaultVNodes = 64

type point struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring over a set of node names
// (replica base URLs in the cluster). Safe for concurrent use.
type Ring struct {
	nodes  []string
	points []point
}

// New builds a ring over the given nodes with vnodes virtual points each
// (vnodes <= 0 selects the default, 64). Node order does not matter: the
// ring layout depends only on the node names, so every router and client
// built over the same fleet routes identically.
func New(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: no nodes")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{nodes: append([]string(nil), nodes...)}
	for i, n := range nodes {
		if seen[n] {
			return nil, fmt.Errorf("ring: duplicate node %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: proto.Hash64(fmt.Sprintf("%s#%d", n, v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// Tie-break on node index so the layout is deterministic even in the
		// (astronomically unlikely) event of a point-hash collision.
		return pa.node < pb.node
	})
	return r, nil
}

// Nodes returns the ring's nodes in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// first returns the index into r.points of the first point clockwise from
// the key's hash.
func (r *Ring) first(key string) int {
	h := proto.Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Lookup returns the node owning a key: the first node clockwise from the
// key's hash.
func (r *Ring) Lookup(key string) string {
	return r.nodes[r.points[r.first(key)].node]
}

// Sequence returns every node in the key's failover order: the owner first,
// then each further distinct node in clockwise ring order. Routing layers
// walk this sequence when the owner is unreachable — the key's traffic lands
// on a deterministic successor (warm for that key after the first miss)
// instead of scattering across the fleet.
func (r *Ring) Sequence(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	start := r.first(key)
	for i := 0; len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
