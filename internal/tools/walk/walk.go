// Package walk is the repository tools' shared file walker. mdcheck and
// neo-lint both need "every file of kind X under the repo root" with the
// same exclusions — version-control internals, per-package test fixtures —
// and a deterministic order, so CI output is stable across runs and
// machines. Keeping the walk in one place means the two tools can never
// disagree about what "the repo" is.
package walk

import (
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// skipDir reports whether a directory's contents are outside the
// repository's own sources: VCS internals, editor/tool dot-directories,
// underscore-prefixed directories (ignored by the go tool) and testdata
// trees (per-package fixtures, which analysis tools load explicitly when
// they want them).
func skipDir(name string) bool {
	if name == "testdata" {
		return true
	}
	if strings.HasPrefix(name, "_") {
		return true
	}
	return strings.HasPrefix(name, ".") && name != "." && name != ".."
}

// Files returns every file under root whose name ends in suffix, in sorted
// order. Directories named testdata, directories starting with "." (except
// root itself) and directories starting with "_" are skipped entirely.
func Files(root, suffix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), suffix) {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// GoPackageDirs returns every directory under root that contains at least
// one non-test .go file, in sorted order, with the same exclusions as
// Files. This is the "./..." a source-loading analyzer expands to.
func GoPackageDirs(root string) ([]string, error) {
	files, err := Files(root, ".go")
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		dir := filepath.Dir(f)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
