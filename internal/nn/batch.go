// Batched forward primitives. The per-sample Forward/Backward passes in
// nn.go remain the training path; the batch-matrix variants here are the
// inference hot path used by the value network's PredictBatch: one call
// processes a whole batch of rows with all intermediate storage drawn from a
// reusable Arena, so a warmed-up arena makes the forward pass allocation-free.
//
// Every batched routine performs the same floating-point operations in the
// same order as its per-sample counterpart, so batched and sequential
// inference produce bit-identical results.
package nn

// Arena is a bump allocator for scratch buffers used by batched forward
// passes. Alloc hands out sub-slices of one backing array; Reset recycles the
// whole arena at once. After a warm-up call with the largest batch shape, no
// further heap allocations occur. An Arena is not safe for concurrent use;
// callers that share a network across goroutines keep one arena per goroutine
// (see valuenet's scratch pool).
type Arena struct {
	buf  []float64
	used int
	// grow accumulates overflow demand so the next Reset can right-size the
	// backing array without invalidating slices handed out this cycle.
	grow int
}

// Alloc returns a scratch slice of length n. The memory is NOT zeroed;
// callers must overwrite every element.
func (a *Arena) Alloc(n int) []float64 {
	if a.used+n > len(a.buf) {
		// The backing array is full. Serve this request from a fresh
		// allocation (earlier slices stay valid) and remember the shortfall
		// so Reset grows the arena for the next cycle.
		a.grow += n
		return make([]float64, n)
	}
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// Reset recycles the arena. Slices returned by Alloc before the Reset must no
// longer be in use.
func (a *Arena) Reset() {
	if a.grow > 0 {
		a.buf = make([]float64, len(a.buf)+a.grow)
		a.grow = 0
	}
	a.used = 0
}

// ForwardBatch computes y = W·x + b for rows row-major input rows stored
// contiguously in xs (rows×In values) and returns rows×Out values allocated
// from the arena.
func (l *Linear) ForwardBatch(xs []float64, rows int, a *Arena) []float64 {
	if len(xs) != rows*l.In {
		panic("nn: Linear.ForwardBatch input size mismatch")
	}
	ys := a.Alloc(rows * l.Out)
	in := l.In
	for r := 0; r < rows; r++ {
		x := xs[r*in : (r+1)*in]
		y := ys[r*l.Out : (r+1)*l.Out]
		// Four output neurons per pass: four independent accumulator chains
		// hide floating-point add latency, and each input load is shared by
		// the four weight rows. Per-neuron operation order matches Forward
		// exactly, so results stay bit-identical.
		o := 0
		for ; o+4 <= l.Out; o += 4 {
			w0 := l.W.Value[o*in : o*in+in]
			w1 := l.W.Value[(o+1)*in : (o+1)*in+in]
			w2 := l.W.Value[(o+2)*in : (o+2)*in+in]
			w3 := l.W.Value[(o+3)*in : (o+3)*in+in]
			s0 := l.B.Value[o]
			s1 := l.B.Value[o+1]
			s2 := l.B.Value[o+2]
			s3 := l.B.Value[o+3]
			for i, xi := range x {
				s0 += w0[i] * xi
				s1 += w1[i] * xi
				s2 += w2[i] * xi
				s3 += w3[i] * xi
			}
			y[o] = s0
			y[o+1] = s1
			y[o+2] = s2
			y[o+3] = s3
		}
		for ; o < l.Out; o++ {
			sum := l.B.Value[o]
			row := l.W.Value[o*in : o*in+in]
			for i, xi := range x {
				sum += row[i] * xi
			}
			y[o] = sum
		}
	}
	return ys
}

// ForwardBatch applies the activation elementwise over a flattened batch.
func (r *LeakyReLU) ForwardBatch(xs []float64, a *Arena) []float64 {
	ys := a.Alloc(len(xs))
	for i, v := range xs {
		if v >= 0 {
			ys[i] = v
		} else {
			ys[i] = r.Alpha * v
		}
	}
	return ys
}

// ForwardBatch normalises each of the rows rows of xs independently (xs holds
// rows×Dim values row-major).
func (ln *LayerNorm) ForwardBatch(xs []float64, rows int, a *Arena) []float64 {
	if len(xs) != rows*ln.Dim {
		panic("nn: LayerNorm.ForwardBatch input size mismatch")
	}
	ys := a.Alloc(len(xs))
	for r := 0; r < rows; r++ {
		x := xs[r*ln.Dim : (r+1)*ln.Dim]
		y := ys[r*ln.Dim : (r+1)*ln.Dim]
		mean, std := meanStd(x, ln.Eps)
		for i, v := range x {
			y[i] = ln.Gamma.Value[i]*(v-mean)/std + ln.Beta.Value[i]
		}
	}
	return ys
}

// ForwardBatch runs the MLP over a batch of rows input rows (inference only;
// no tape is recorded). xs holds rows×inputDim values row-major; the result
// holds rows×outputDim values allocated from the arena.
func (m *MLP) ForwardBatch(xs []float64, rows int, a *Arena) []float64 {
	cur := xs
	last := len(m.Linears) - 1
	for i, lin := range m.Linears {
		pre := lin.ForwardBatch(cur, rows, a)
		if i == last {
			cur = pre
			continue
		}
		act := m.Act.ForwardBatch(pre, a)
		if m.Norms[i] != nil {
			cur = m.Norms[i].ForwardBatch(act, rows, a)
		} else {
			cur = act
		}
	}
	return cur
}
