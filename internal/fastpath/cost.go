package fastpath

import (
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/schema"
)

// Cost model weights, in units of "one sequential scan of a base relation":
// a statistics-free transcription of the simulated engines' cost shapes
// (internal/engine), with row counts replaced by the schema's topological
// size prior (relSize) shrunk by visible-selectivity fractions and diluted
// by joinFanout per join. Only the ordering of
// alternatives matters — index-nested-loop beats hash while the outer is
// small, hash builds belong on the smaller input, merge pays for sorting,
// plain nested loops and cross products are quadratic — not any engine's
// absolute coefficients.
const (
	// Scans: an equality lookup through an index touches a handful of rows;
	// walking a whole index is worse than the sequential scan it replaces.
	wIdxEqScan  = 0.15
	wTableScan  = 1.0
	wBadIdxScan = 1.5
	// Index-nested-loop: one logarithmic lookup per outer row. With
	// ~4·log2(B) lookup work per row this is ≈40 per base-relation fraction,
	// which crosses the ≈2.6 hash build+scan at inlMaxOuter.
	wInlPerOuter = 40.0
	// Hash join: linear build on the right input, linear probe on the left.
	wHashBuild = 1.6
	wHashProbe = 1.0
	// Merge join: per-row merge plus the sorts the inputs almost always need.
	wMergePerInput = 3.4
	// Plain nested loop (and any cross product): quadratic in the inputs,
	// scaled to base-relation units.
	wLoopQuadratic = 80.0
	// Emitting one base relation's worth of join output.
	wOutput = 0.3
)

// Cost is the fast path's statistics-free cost model over (partial or
// complete) plans: the objective Plan greedily minimises, exposed so tests
// can hand it to the exhaustive best-first search and pin greedy-equals-
// optimal parity on pattern shapes, and so routed results carry a
// meaningful score without a value-network inference.
func Cost(p *plan.Plan, cat *schema.Catalog) float64 {
	total := 0.0
	for _, r := range p.Roots {
		c, _ := nodeCost(p.Query, r, cat)
		total += c
	}
	return total
}

// nodeCost returns a subtree's cost and its estimated output size in
// base-relation units (visible selectivities diluted by joinFanout per
// join — the statistics-free stand-in for cardinality).
func nodeCost(q *query.Query, n *plan.Node, cat *schema.Catalog) (cost, rows float64) {
	if n.IsLeaf() {
		size := relSize(n.Table, cat)
		rows = VisibleSelectivity(q, n.Table) * size
		switch n.Scan {
		case plan.IndexScan:
			if baseScan(q, n.Table, cat) == plan.IndexScan {
				return wIdxEqScan, rows // equality predicate on an indexed column
			}
			return wBadIdxScan * size, rows // walking the whole index: worse than a scan
		case plan.TableScan:
			return wTableScan * size, rows
		default:
			// Unspecified (partial plans only): optimistic, the best
			// specification might be this cheap.
			return wIdxEqScan, rows
		}
	}

	lc, lr := nodeCost(q, n.Left, cat)
	rc, rr := nodeCost(q, n.Right, cat)
	rows = joinFanout * lr * rr
	leftSet := n.Left.TableSet()
	connected := q.Connected(leftSet, n.Right.TableSet())

	cost = lc
	switch n.Join {
	case plan.LoopJoin:
		if connected && n.Right.IsLeaf() && n.Right.Scan == plan.IndexScan &&
			indexedJoinColumn(q, n.Right.Table, leftSet, cat) {
			// Index-nested-loop: one lookup per outer row, the inner's own
			// scan cost never paid (mirrors the engines' pricing).
			cost += wInlPerOuter * lr
		} else {
			cost += rc + wLoopQuadratic*lr*rr
		}
	case plan.MergeJoin:
		cost += rc + wMergePerInput*(lr+rr)
	default: // HashJoin
		cost += rc + wHashBuild*rr + wHashProbe*lr
	}
	if !connected {
		// Cross products degrade every operator to the quadratic pairing.
		cost += wLoopQuadratic * lr * rr
	}
	cost += wOutput * rows
	return cost, rows
}
