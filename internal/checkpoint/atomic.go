// Atomic file writes, shared by every durable artifact in the repo
// (checkpoints, embedding caches, benchmark baselines): the bytes go to a
// temporary file in the target directory which is renamed over the final
// path only after a successful write and close, so an interrupted writer can
// never leave a truncated file under the real name.
package checkpoint

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file atomically via temp-file + rename. The
// write callback receives the temporary file; perm is applied before the
// rename (os.CreateTemp defaults to 0600, which is wrong for shareable
// artifacts like committed benchmark baselines).
func AtomicWriteFile(path string, perm os.FileMode, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	// Flush to stable storage before the rename makes the file visible under
	// the final name: without this, a crash shortly after a "successful"
	// save could leave a truncated file where a durable artifact is expected.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself (best effort — not every platform supports
	// fsync on directories).
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}
