package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestMLPBackwardBatchMatchesBackward is the layer-level training parity
// test: over random MLPs (with and without layer norm), one BackwardBatch
// over a batch of rows must accumulate bit-identical parameter gradients and
// input gradients to per-sample Backward calls over the same rows in the
// same order.
func TestMLPBackwardBatchMatchesBackward(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		useNorm := seed%2 == 0
		batched := NewMLP([]int{7, 11, 5, 3}, useNorm, rand.New(rand.NewSource(seed+40)))
		reference := NewMLP([]int{7, 11, 5, 3}, useNorm, rand.New(rand.NewSource(seed+40)))

		const rows = 9
		xs := randRows(rng, rows, 7)
		gradOut := randRows(rng, rows, 3)

		var arena Arena
		tape := batched.ForwardBatchTape(xs, rows, &arena)
		gotGradIn := batched.BackwardBatch(tape, gradOut, &arena)

		wantGradIn := make([]float64, 0, rows*7)
		for r := 0; r < rows; r++ {
			st := reference.Forward(xs[r*7 : (r+1)*7])
			for i, v := range st.Output() {
				if tape.Output()[r*3+i] != v {
					t.Fatalf("seed %d row %d: forward output differs: batch %v, per-sample %v", seed, r, tape.Output()[r*3+i], v)
				}
			}
			wantGradIn = append(wantGradIn, reference.Backward(st, gradOut[r*3:(r+1)*3])...)
		}

		for i := range wantGradIn {
			if gotGradIn[i] != wantGradIn[i] {
				t.Errorf("seed %d: input gradient %d differs: batch %v, per-sample %v", seed, i, gotGradIn[i], wantGradIn[i])
			}
		}
		bp, rp := batched.Params(), reference.Params()
		for pi := range bp {
			for j := range bp[pi].Grad {
				if bp[pi].Grad[j] != rp[pi].Grad[j] {
					t.Errorf("seed %d: param %s grad[%d] differs: batch %v, per-sample %v",
						seed, bp[pi].Name, j, bp[pi].Grad[j], rp[pi].Grad[j])
				}
			}
		}
	}
}

// TestShadowGradSharesValuesNotGrads pins the shadow contract data-parallel
// gradient workers rely on: shared value storage, private gradients.
func TestShadowGradSharesValuesNotGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{4, 6, 2}, true, rng)
	s := m.ShadowGrad()

	mp, sp := m.Params(), s.Params()
	if len(mp) != len(sp) {
		t.Fatalf("shadow has %d params, original %d", len(sp), len(mp))
	}
	for i := range mp {
		if &mp[i].Value[0] != &sp[i].Value[0] {
			t.Errorf("param %s: shadow must share value storage", mp[i].Name)
		}
		if &mp[i].Grad[0] == &sp[i].Grad[0] {
			t.Errorf("param %s: shadow must own its gradient buffer", mp[i].Name)
		}
		for _, g := range sp[i].Grad {
			if g != 0 {
				t.Errorf("param %s: shadow gradients must start zeroed", mp[i].Name)
			}
		}
	}

	// A backward pass through the shadow must leave the original's gradients
	// untouched.
	var arena Arena
	xs := randRows(rng, 3, 4)
	tape := s.ForwardBatchTape(xs, 3, &arena)
	s.BackwardBatch(tape, randRows(rng, 3, 2), &arena)
	for i := range mp {
		for _, g := range mp[i].Grad {
			if g != 0 {
				t.Fatalf("param %s: original gradients mutated through the shadow", mp[i].Name)
			}
		}
	}
	touched := false
	for i := range sp {
		for _, g := range sp[i].Grad {
			if g != 0 {
				touched = true
			}
		}
	}
	if !touched {
		t.Error("shadow backward accumulated no gradients at all")
	}
}

// TestLayerNormBackwardBatchMatchesBackward covers the norm layer in
// isolation (it is skipped when an MLP is built without normalisation).
func TestLayerNormBackwardBatchMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rows, dim = 5, 6
	batched := NewLayerNorm(dim)
	reference := NewLayerNorm(dim)
	for i := 0; i < dim; i++ {
		v := rng.NormFloat64()
		batched.Gamma.Value[i], reference.Gamma.Value[i] = v, v
	}
	xs := randRows(rng, rows, dim)
	gradOut := randRows(rng, rows, dim)

	var arena Arena
	got := batched.BackwardBatch(xs, gradOut, rows, &arena)
	for r := 0; r < rows; r++ {
		want := reference.Backward(xs[r*dim:(r+1)*dim], gradOut[r*dim:(r+1)*dim])
		for i, v := range want {
			if got[r*dim+i] != v {
				t.Errorf("row %d grad[%d]: batch %v, per-sample %v", r, i, got[r*dim+i], v)
			}
		}
	}
	for _, pair := range [][2]*Param{{batched.Gamma, reference.Gamma}, {batched.Beta, reference.Beta}} {
		for j := range pair[0].Grad {
			if math.Abs(pair[0].Grad[j]-pair[1].Grad[j]) != 0 {
				t.Errorf("%s grad[%d]: batch %v, per-sample %v", pair[0].Name, j, pair[0].Grad[j], pair[1].Grad[j])
			}
		}
	}
}
