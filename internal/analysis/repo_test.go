package analysis

import "testing"

// TestRepositoryLintsCleanInStrictMode is the machine-checked form of the
// repo's invariants: every package must pass every check, and every
// //neo:lint-ok suppression must still be earning its keep. CI runs the
// same thing via `go run ./cmd/neo-lint -strict ./...`; having it as a test
// too means a plain `go test ./...` catches a violation before push.
func TestRepositoryLintsCleanInStrictMode(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := getLoader(t).LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadAll found only %d packages; the walker is dropping the tree", len(pkgs))
	}
	cfg := DefaultConfig()
	cfg.Strict = true
	for _, f := range Run(cfg, pkgs) {
		t.Errorf("%s", f)
	}
}
