// Package neo is the public API of the Neo reproduction: an end-to-end
// learned query optimizer (Marcus et al., VLDB 2019) together with the
// simulated substrate it runs on (synthetic databases, execution engines,
// classical expert optimizers, workload generators).
//
// # In-process use
//
// The central entry point is Open, which assembles a System: a synthetic
// database, an execution engine (simulated cost models or the disk backend),
// the classical optimizers, and a Neo instance ready to be bootstrapped from
// the expert and refined with reinforcement learning. The core loop is
//
//	sys, _ := neo.Open(neo.Config{Dataset: "imdb", Engine: "postgres"})
//	wl, _ := sys.GenerateWorkload(16)
//	_ = sys.Bootstrap(wl.Queries)       // imitate the expert (paper §3.1)
//	p, res, _ := sys.Optimize(q)        // best-first search over the value net
//	lat, _ := sys.Execute(p)            // run it
//	sys.Neo.Experience.Add(q, p, lat)   // close the loop (paper Fig. 2)
//
// SaveCheckpoint/LoadCheckpoint make the learned state durable; a restored
// System serves bit-identical plans. See examples/ for complete programs.
//
// # Serving over HTTP
//
// The same System serves as a daemon through internal/serve (the neo-serve
// command): /optimize plans from the frozen value-network snapshot and plan
// cache, /feedback feeds observed latencies back into learning. For one
// process that is the whole story — feedback retrains locally and new
// weights swap in atomically.
//
// At fleet scale the learning loop splits across processes. N stateless
// neo-serve replicas score from read-only snapshots and forward experience
// to one neo-trainer (internal/cluster), which retrains and publishes
// versioned snapshots that a rollout coordinator canaries and promotes.
// Client is this package's door into that tier: it consistent-hashes each
// query's structure onto the replica fleet — so the fleet's plan caches
// partition the workload — sends feedback to the replica that served the
// plan, and fails over in ring order when a replica is down:
//
//	c, _ := neo.NewClient(neo.ClientConfig{Replicas: []string{"http://r1:8080", "http://r2:8080"}})
//	resp, _ := c.Optimize(ctx, &neo.QuerySpec{Relations: ...})
//	_, _ = c.Feedback(ctx, spec, measuredMS, resp.NetVersion)
//
// Deployment, rollout and failure modes are documented in OPERATIONS.md at
// the repository root.
package neo
