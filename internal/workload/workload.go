// Package workload generates the query workloads of the paper's evaluation:
// a JOB-like workload of complex correlated queries over the IMDB-like
// database, the Ext-JOB set of entirely new queries used for the
// generalisation experiment, a TPC-H-like template workload, and a Corp-like
// dashboard workload. It also provides the 80/20 train/test split protocol.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"neo/internal/query"
	"neo/internal/schema"
	"neo/internal/storage"
)

// Workload is a named collection of queries.
type Workload struct {
	Name    string
	Queries []*query.Query
}

// ByID returns the query with the given id, or nil.
func (w *Workload) ByID(id string) *query.Query {
	for _, q := range w.Queries {
		if q.ID == id {
			return q
		}
	}
	return nil
}

// Split partitions the workload into a training set (trainFrac of the
// queries) and a test set, shuffling deterministically with the given seed.
// Queries whose IDs share a template tag (the substring between the first
// and second '-', e.g. "tpch-t03-i2") are kept in the same side of the
// split, matching the paper's rule of never sharing TPC-H templates between
// training and test queries.
func (w *Workload) Split(trainFrac float64, seed int64) (train, test []*query.Query) {
	rng := rand.New(rand.NewSource(seed))
	groups := make(map[string][]*query.Query)
	var keys []string
	for _, q := range w.Queries {
		key := templateKey(q.ID)
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], q)
	}
	sort.Strings(keys)
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	cut := int(float64(len(keys)) * trainFrac)
	// Clamp both sides so that, whenever the workload has at least two
	// template groups, neither split comes back empty: a trainFrac near 0
	// must still train on something, and a high trainFrac whose rounding
	// swallows every group with few templates must still hold out a test
	// group — otherwise Evaluate runs over zero queries and silently reports
	// perfect generalisation. trainFrac >= 1 is exempt from the upper clamp:
	// it is an explicit request to train on the whole workload (the unseen-
	// queries protocol evaluates on a separately generated workload instead).
	if cut < 1 && len(keys) > 1 {
		cut = 1
	}
	if trainFrac < 1 && cut > len(keys)-1 && len(keys) > 1 {
		cut = len(keys) - 1
	}
	for i, k := range keys {
		if i < cut {
			train = append(train, groups[k]...)
		} else {
			test = append(test, groups[k]...)
		}
	}
	return train, test
}

func templateKey(id string) string {
	parts := strings.Split(id, "-")
	if len(parts) >= 2 {
		return parts[0] + "-" + parts[1]
	}
	return id
}

// genConfig controls random query generation.
type genConfig struct {
	name         string
	count        int
	minRelations int
	maxRelations int
	minPreds     int
	maxPreds     int
	likeProb     float64
	rangeProb    float64
	templates    int // >0: generate this many templates and instantiate them
	seed         int64
	// excludeValues, when non-empty, prevents these predicate values from
	// being used (Ext-JOB must not share predicates with JOB).
	excludeValues map[string]bool
}

// generator creates random-but-valid queries over a database.
type generator struct {
	db  *storage.Database
	cat *schema.Catalog
	rng *rand.Rand
	cfg genConfig
}

// Generate builds a workload according to the configuration.
func (g *generator) Generate() (*Workload, error) {
	w := &Workload{Name: g.cfg.name}
	if g.cfg.templates > 0 {
		perTemplate := (g.cfg.count + g.cfg.templates - 1) / g.cfg.templates
		for t := 0; t < g.cfg.templates; t++ {
			rels, joins := g.randomJoinTree()
			for i := 0; i < perTemplate && len(w.Queries) < g.cfg.count; i++ {
				id := fmt.Sprintf("%s-t%02d-i%d", g.cfg.name, t+1, i+1)
				q, err := g.instantiate(id, rels, joins)
				if err != nil {
					return nil, err
				}
				w.Queries = append(w.Queries, q)
			}
		}
		return w, nil
	}
	for i := 0; len(w.Queries) < g.cfg.count; i++ {
		if i > g.cfg.count*20 {
			return nil, fmt.Errorf("workload: unable to generate %d valid queries for %s", g.cfg.count, g.cfg.name)
		}
		rels, joins := g.randomJoinTree()
		id := fmt.Sprintf("%s-%d%c", g.cfg.name, len(w.Queries)/3+1, 'a'+rune(len(w.Queries)%3))
		q, err := g.instantiate(id, rels, joins)
		if err != nil {
			continue
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// randomJoinTree picks a connected set of relations by random walks over the
// foreign-key graph, returning the relations and the join predicates
// connecting them.
func (g *generator) randomJoinTree() ([]string, []query.JoinPredicate) {
	tables := g.cat.Tables()
	n := g.cfg.minRelations
	if g.cfg.maxRelations > g.cfg.minRelations {
		n += g.rng.Intn(g.cfg.maxRelations - g.cfg.minRelations + 1)
	}
	if n > len(tables) {
		n = len(tables)
	}
	start := tables[g.rng.Intn(len(tables))].Name
	chosen := map[string]bool{start: true}
	order := []string{start}
	var joins []query.JoinPredicate
	for len(order) < n {
		// Collect candidate edges from any chosen table to an unchosen
		// neighbour.
		type edge struct {
			fk schema.ForeignKey
			to string
		}
		var candidates []edge
		for _, t := range order {
			for _, nb := range g.cat.JoinableNeighbors(t) {
				if chosen[nb] {
					continue
				}
				fk, ok := g.cat.JoinColumns(t, nb)
				if !ok {
					continue
				}
				candidates = append(candidates, edge{fk: fk, to: nb})
			}
		}
		if len(candidates) == 0 {
			break
		}
		pick := candidates[g.rng.Intn(len(candidates))]
		chosen[pick.to] = true
		order = append(order, pick.to)
		joins = append(joins, query.JoinPredicate{
			LeftTable: pick.fk.FromTable, LeftColumn: pick.fk.FromColumn,
			RightTable: pick.fk.ToTable, RightColumn: pick.fk.ToColumn,
		})
	}
	return order, joins
}

// instantiate adds random column predicates to a join tree and validates the
// resulting query.
func (g *generator) instantiate(id string, rels []string, joins []query.JoinPredicate) (*query.Query, error) {
	nPreds := g.cfg.minPreds
	if g.cfg.maxPreds > g.cfg.minPreds {
		nPreds += g.rng.Intn(g.cfg.maxPreds - g.cfg.minPreds + 1)
	}
	var preds []query.Predicate
	attempts := 0
	for len(preds) < nPreds && attempts < nPreds*10 {
		attempts++
		table := rels[g.rng.Intn(len(rels))]
		p, ok := g.randomPredicate(table)
		if !ok {
			continue
		}
		if g.cfg.excludeValues[p.Value.String()] {
			continue
		}
		preds = append(preds, p)
	}
	q := query.New(id, rels, joins, preds)
	if err := q.Validate(g.cat); err != nil {
		return nil, err
	}
	return q, nil
}

// randomPredicate samples a predicate on a non-key column of the table, with
// the comparison value drawn from the actual data so predicates are neither
// always-empty nor always-true.
func (g *generator) randomPredicate(table string) (query.Predicate, bool) {
	ts, ok := g.cat.Table(table)
	if !ok {
		return query.Predicate{}, false
	}
	// Collect candidate columns: not the primary key, not a foreign key
	// column.
	keyCols := map[string]bool{ts.PrimaryKey: true}
	for _, fk := range g.cat.ForeignKeys() {
		if fk.FromTable == table {
			keyCols[fk.FromColumn] = true
		}
		if fk.ToTable == table {
			keyCols[fk.ToColumn] = true
		}
	}
	var candidates []schema.Column
	for _, c := range ts.Columns {
		if !keyCols[c.Name] {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		return query.Predicate{}, false
	}
	col := candidates[g.rng.Intn(len(candidates))]
	tab := g.db.Table(table)
	if tab == nil || tab.NumRows() == 0 {
		return query.Predicate{}, false
	}
	row := g.rng.Intn(tab.NumRows())
	v, err := tab.Value(col.Name, row)
	if err != nil {
		return query.Predicate{}, false
	}
	p := query.Predicate{Table: table, Column: col.Name, Value: v, Op: query.Eq}
	switch {
	case col.Type == schema.StringType && g.rng.Float64() < g.cfg.likeProb:
		// Use a substring of the sampled value as a pattern.
		s := v.Str
		if len(s) > 3 {
			start := g.rng.Intn(len(s) - 2)
			end := start + 2 + g.rng.Intn(len(s)-start-2+1)
			if end > len(s) {
				end = len(s)
			}
			p.Op = query.Like
			p.Value = storage.StringValue(s[start:end])
		}
	case col.Type == schema.IntType && g.rng.Float64() < g.cfg.rangeProb:
		if g.rng.Float64() < 0.5 {
			p.Op = query.Gt
		} else {
			p.Op = query.Lt
		}
	}
	return p, true
}

// JOB generates the JOB-like workload: n complex correlated queries over the
// IMDB-like database (the paper's JOB has 113 queries with 3-17 relations;
// the synthetic catalog has 9 relations, so queries span 3-7 of them).
func JOB(db *storage.Database, n int, seed int64) (*Workload, error) {
	g := &generator{db: db, cat: db.Catalog, rng: rand.New(rand.NewSource(seed)), cfg: genConfig{
		name: "job", count: n, minRelations: 3, maxRelations: 7,
		minPreds: 1, maxPreds: 3, likeProb: 0.3, rangeProb: 0.3, seed: seed,
	}}
	return g.Generate()
}

// ExtJOB generates the Ext-JOB-like workload: n queries that are
// semantically distinct from the given base workload (no shared predicate
// values), used by the Figure 13 generalisation experiment.
func ExtJOB(db *storage.Database, n int, seed int64, base *Workload) (*Workload, error) {
	exclude := make(map[string]bool)
	if base != nil {
		for _, q := range base.Queries {
			for _, p := range q.Predicates {
				exclude[p.Value.String()] = true
			}
		}
	}
	g := &generator{db: db, cat: db.Catalog, rng: rand.New(rand.NewSource(seed + 7001)), cfg: genConfig{
		name: "extjob", count: n, minRelations: 4, maxRelations: 8,
		minPreds: 2, maxPreds: 4, likeProb: 0.4, rangeProb: 0.4, seed: seed,
		excludeValues: exclude,
	}}
	w, err := g.Generate()
	if err != nil {
		return nil, err
	}
	w.Name = "ext-job"
	return w, nil
}

// TPCH generates the TPC-H-like workload: template-based queries over the
// uniform decision-support schema. Queries of the same template share an ID
// prefix so that Split never places a template on both sides.
func TPCH(db *storage.Database, n int, seed int64) (*Workload, error) {
	templates := 20
	if n < templates {
		templates = n
	}
	g := &generator{db: db, cat: db.Catalog, rng: rand.New(rand.NewSource(seed + 11)), cfg: genConfig{
		name: "tpch", count: n, minRelations: 2, maxRelations: 6,
		minPreds: 1, maxPreds: 3, likeProb: 0.0, rangeProb: 0.5, seed: seed,
		templates: templates,
	}}
	return g.Generate()
}

// Corp generates the Corp-like workload: dashboard-style template queries
// over the skewed snowflake schema.
func Corp(db *storage.Database, n int, seed int64) (*Workload, error) {
	templates := 12
	if n < templates {
		templates = n
	}
	g := &generator{db: db, cat: db.Catalog, rng: rand.New(rand.NewSource(seed + 23)), cfg: genConfig{
		name: "corp", count: n, minRelations: 2, maxRelations: 6,
		minPreds: 1, maxPreds: 3, likeProb: 0.1, rangeProb: 0.4, seed: seed,
		templates: templates,
	}}
	return g.Generate()
}
