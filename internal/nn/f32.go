// Float32 inference kernels. Training stays float64 (nn.go); the frozen
// snapshot path scores plans through the kernels in this file instead: weights
// are converted once, at snapshot-publish time, into pre-transposed panels
// that a register-blocked GEMM streams through sequentially. Three ideas carry
// the speedup:
//
//   - float32 halves the memory traffic of every weight and activation load,
//     which is what bounds the batched float64 path;
//   - weights are re-packed into padded 4-wide output panels laid out k-major
//     (for each input position, the 4 panel outputs' weights are adjacent), so
//     the inner loop walks one contiguous stream with no per-output row
//     slicing and no tail handling inside the kernel;
//   - the micro-kernel computes a 4×4 tile (4 batch rows × 4 output channels)
//     per inner-loop iteration: 16 independent accumulator chains hide FMA
//     latency and every loaded input value is reused by 4 outputs (and every
//     loaded weight by 4 rows). Under GOAMD64=v3 the compiler can keep the
//     tile in vector registers; under v1 the same loop runs as scalar SSE2.
//
// Kernels here are inference-only and never mutate weights, so they are safe
// for unsynchronised concurrent use once packed.
package nn

import "math"

// Arena32 is the float32 counterpart of Arena: a bump allocator for the
// scratch matrices of a float32 forward pass. Not safe for concurrent use.
type Arena32 struct {
	buf  []float32
	used int
	grow int
}

// Alloc returns a scratch slice of length n. The memory is NOT zeroed.
func (a *Arena32) Alloc(n int) []float32 {
	if a.used+n > len(a.buf) {
		a.grow += n
		return make([]float32, n)
	}
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// Reset recycles the arena; slices handed out before the Reset must no longer
// be in use.
func (a *Arena32) Reset() {
	if a.grow > 0 {
		a.buf = make([]float32, len(a.buf)+a.grow)
		a.grow = 0
	}
	a.used = 0
}

// ArenaI8 is the int8 sibling of Arena32, used for quantized activation
// buffers. Not safe for concurrent use.
type ArenaI8 struct {
	buf  []int8
	used int
	grow int
}

// Alloc returns a scratch slice of length n. The memory is NOT zeroed.
func (a *ArenaI8) Alloc(n int) []int8 {
	if a.used+n > len(a.buf) {
		a.grow += n
		return make([]int8, n)
	}
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// Reset recycles the arena.
func (a *ArenaI8) Reset() {
	if a.grow > 0 {
		a.buf = make([]int8, len(a.buf)+a.grow)
		a.grow = 0
	}
	a.used = 0
}

// PanelF32 is the output width of a packed float32 panel: 8 float32 lanes —
// exactly one AVX ymm register, and the unit the assembly micro-kernel
// processes per fused multiply-add.
const PanelF32 = 8

// PackedF32 is a weight matrix re-packed for the tiled GEMM: outputs are
// grouped into panels of PanelF32 (padded with zero rows past Out), and
// within a panel the layout is k-major — W[panel·K·8 + k·8 + j] is the weight
// of output panel·8+j against input position k, so the inner loop's weight
// loads are one contiguous stream. K may be the concatenation of several
// logical matrices (tree convolution packs [EP;EL;ER]); because the
// concatenation is ordered, a GEMM may use only a K-prefix of every panel
// (kUsed < K) to skip trailing operands that are identically zero.
type PackedF32 struct {
	Out, K int
	Bias   []float32
	W      []float32 // ceil(Out/8) panels × K×8
}

// PackF32 packs the row-major float64 matrices mats (mats[i] is out×ks[i])
// into one padded panel matrix whose K dimension is the concatenation of the
// ks, in order.
func PackF32(out int, bias []float64, ks []int, mats ...[]float64) PackedF32 {
	k := 0
	for _, ki := range ks {
		k += ki
	}
	panels := (out + PanelF32 - 1) / PanelF32
	p := PackedF32{Out: out, K: k, Bias: make([]float32, out), W: make([]float32, panels*k*PanelF32)}
	for o, b := range bias {
		p.Bias[o] = float32(b)
	}
	kBase := 0
	for mi, m := range mats {
		ki := ks[mi]
		for o := 0; o < out; o++ {
			row := m[o*ki : (o+1)*ki]
			base := (o / PanelF32) * k * PanelF32
			j := o % PanelF32
			for kk, w := range row {
				p.W[base+(kBase+kk)*PanelF32+j] = float32(w)
			}
		}
		kBase += ki
	}
	return p
}

// Bytes returns the packed footprint in bytes.
func (p *PackedF32) Bytes() int { return 4 * (len(p.W) + len(p.Bias)) }

// Gemm computes ys = xs·Wᵀ + bias over the first kUsed positions of every
// panel: xs holds rows×kUsed values row-major, ys holds rows×Out values
// row-major. kUsed must not exceed p.K; kUsed < p.K restricts the dot
// products to a K-prefix (used by the tree convolution's leaf kernel).
// On CPUs with AVX2+FMA the panels run through the assembly micro-kernel
// (4 batch rows × 8 output lanes per step); elsewhere, through gemmScalar.
func (p *PackedF32) Gemm(xs []float32, rows, kUsed int, ys []float32) {
	if rows == 0 || kUsed == 0 {
		for r := 0; r < rows; r++ {
			copy(ys[r*p.Out:(r+1)*p.Out], p.Bias)
		}
		return
	}
	out := p.Out
	panels := (out + PanelF32 - 1) / PanelF32
	for pi := 0; pi < panels; pi++ {
		o := pi * PanelF32
		on := out - o
		if on > PanelF32 {
			on = PanelF32
		}
		if useAVX2 {
			gemmPanel8(&xs[0], &p.W[pi*p.K*PanelF32], &ys[o], &p.Bias[o],
				rows, kUsed, kUsed, out, &maskTable[on-1][0])
			continue
		}
		gemmPanelScalar(xs, p.W[pi*p.K*PanelF32:pi*p.K*PanelF32+kUsed*PanelF32],
			ys, p.Bias, rows, kUsed, out, o, on)
	}
}

// maskTable[n-1] is the vmaskmovps lane mask selecting the first n of 8
// lanes, used by the assembly kernel to guard the output tail of the last
// panel (and the matching bias load) without padding the destination.
var maskTable = func() (t [PanelF32][PanelF32]int32) {
	for n := 0; n < PanelF32; n++ {
		for j := 0; j <= n; j++ {
			t[n][j] = -1
		}
	}
	return
}()

// gemmPanelScalar is the portable kernel for one panel: 8 independent
// accumulator chains per row over the panel's contiguous weight stream. It is
// the reference the assembly kernel is parity-tested against.
func gemmPanelScalar(xs, pw, ys, bias []float32, rows, kUsed, out, o, on int) {
	for r := 0; r < rows; r++ {
		x := xs[r*kUsed : r*kUsed+kUsed]
		var a0, a1, a2, a3, a4, a5, a6, a7 float32
		for k := 0; k < len(x); k++ {
			w := pw[PanelF32*k : PanelF32*k+PanelF32]
			v := x[k]
			a0 += v * w[0]
			a1 += v * w[1]
			a2 += v * w[2]
			a3 += v * w[3]
			a4 += v * w[4]
			a5 += v * w[5]
			a6 += v * w[6]
			a7 += v * w[7]
		}
		y := ys[r*out+o : r*out+o+on]
		b := bias[o : o+on]
		acc := [PanelF32]float32{a0, a1, a2, a3, a4, a5, a6, a7}
		for j := range y {
			y[j] = acc[j] + b[j]
		}
	}
}

// LeakyReLUF32 applies the leaky rectifier in place.
func LeakyReLUF32(xs []float32, alpha float32) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = alpha * v
		}
	}
}

// AbsMaxCols raises dst[c] to at least the largest |x| seen in column c of
// the rows×k row-major matrix xs — the per-channel absmax observer of the
// int8 calibration pass.
func AbsMaxCols(xs []float32, rows, k int, dst []float32) {
	for r := 0; r < rows; r++ {
		row := xs[r*k : (r+1)*k]
		for c, v := range row {
			if v < 0 {
				v = -v
			}
			if v > dst[c] {
				dst[c] = v
			}
		}
	}
}

// AbsMaxF32 returns the largest absolute value in xs (0 for empty input).
func AbsMaxF32(xs []float32) float32 {
	var m float32
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// LayerNormF32 is the float32 inference form of LayerNorm.
type LayerNormF32 struct {
	Dim         int
	Gamma, Beta []float32
	Eps         float32
}

// NewLayerNormF32 converts a trained LayerNorm.
func NewLayerNormF32(ln *LayerNorm) *LayerNormF32 {
	out := &LayerNormF32{Dim: ln.Dim, Gamma: make([]float32, ln.Dim), Beta: make([]float32, ln.Dim), Eps: float32(ln.Eps)}
	for i := range ln.Gamma.Value {
		out.Gamma[i] = float32(ln.Gamma.Value[i])
		out.Beta[i] = float32(ln.Beta.Value[i])
	}
	return out
}

// Bytes returns the packed footprint in bytes.
func (ln *LayerNormF32) Bytes() int { return 4 * (len(ln.Gamma) + len(ln.Beta)) }

// ForwardBatch normalises each of rows rows of xs in place-free arena storage.
func (ln *LayerNormF32) ForwardBatch(xs []float32, rows int, a *Arena32) []float32 {
	ys := a.Alloc(len(xs))
	dim := ln.Dim
	for r := 0; r < rows; r++ {
		x := xs[r*dim : (r+1)*dim]
		y := ys[r*dim : (r+1)*dim]
		var mean float32
		for _, v := range x {
			mean += v
		}
		mean /= float32(dim)
		var variance float32
		for _, v := range x {
			d := v - mean
			variance += d * d
		}
		variance /= float32(dim)
		inv := 1 / float32(math.Sqrt(float64(variance+ln.Eps)))
		for i, v := range x {
			y[i] = ln.Gamma[i]*(v-mean)*inv + ln.Beta[i]
		}
	}
	return ys
}

// MLPF32 is the float32 packed-panel form of an MLP, built once from trained
// float64 weights. Immutable after construction; safe for concurrent use.
type MLPF32 struct {
	Lins  []PackedF32
	Norms []*LayerNormF32 // nil entries mirror MLP.Norms
	Alpha float32
}

// NewMLPF32 packs a trained MLP for float32 inference.
func NewMLPF32(m *MLP) *MLPF32 {
	out := &MLPF32{Alpha: float32(m.Act.Alpha)}
	for i, lin := range m.Linears {
		out.Lins = append(out.Lins, PackF32(lin.Out, lin.B.Value, []int{lin.In}, lin.W.Value))
		if m.Norms[i] != nil {
			out.Norms = append(out.Norms, NewLayerNormF32(m.Norms[i]))
		} else {
			out.Norms = append(out.Norms, nil)
		}
	}
	return out
}

// Bytes returns the packed footprint in bytes.
func (m *MLPF32) Bytes() int {
	total := 0
	for i := range m.Lins {
		total += m.Lins[i].Bytes()
		if m.Norms[i] != nil {
			total += m.Norms[i].Bytes()
		}
	}
	return total
}

// ForwardBatch runs the packed MLP over rows input rows (row-major in xs).
func (m *MLPF32) ForwardBatch(xs []float32, rows int, a *Arena32) []float32 {
	return m.forward(xs, rows, a, nil)
}

// ForwardBatchObserve is ForwardBatch plus a per-channel absmax observer:
// obs[i][c] is raised to at least the largest |x| seen in channel c of
// Linear i's input. Used by the int8 calibration pass.
func (m *MLPF32) ForwardBatchObserve(xs []float32, rows int, a *Arena32, obs [][]float32) []float32 {
	return m.forward(xs, rows, a, obs)
}

func (m *MLPF32) forward(xs []float32, rows int, a *Arena32, obs [][]float32) []float32 {
	cur := xs
	last := len(m.Lins) - 1
	for i := range m.Lins {
		lin := &m.Lins[i]
		if obs != nil {
			AbsMaxCols(cur, rows, lin.K, obs[i])
		}
		ys := a.Alloc(rows * lin.Out)
		lin.Gemm(cur, rows, lin.K, ys)
		if i == last {
			cur = ys
			continue
		}
		LeakyReLUF32(ys, m.Alpha)
		if m.Norms[i] != nil {
			cur = m.Norms[i].ForwardBatch(ys, rows, a)
		} else {
			cur = ys
		}
	}
	return cur
}
