package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// guardedbyCheck verifies the repository's documented mutex discipline.
// Struct fields annotated
//
//	mu    sync.Mutex
//	cache map[string][]float32 // guarded by mu
//
// may only be touched while that mutex is held on the same receiver: writes
// require the exclusive lock (mu.Lock), reads accept either the exclusive
// or a shared lock (mu.RLock, for RWMutexes). The check is a linear,
// position-ordered scan per method: it replays Lock/Unlock/RLock/RUnlock
// calls on the receiver's annotated mutexes in source order and demands the
// right depth at each field access. That is a heuristic — it does not model
// arbitrary control flow — but it does understand the one branching idiom
// this repo's lock code actually uses: a block that terminates (its last
// statement is a return, or a panic call) has its lock-state changes
// isolated, so `if closed { mu.Unlock(); return }` does not make the scan
// believe the lock is released on the fall-through path. Everything else is
// strictly block structured (lock, defer unlock), for which the linear scan
// is exact.
//
// Two deliberate exemptions keep the convention usable:
//
//   - Methods whose name ends in "Locked" are skipped entirely: the repo's
//     existing convention (Experience.rebuildLocked) is that such methods
//     document "caller holds the lock" in their name, and their call sites
//     are inside locked sections the scan does verify.
//   - Function literals are not scanned: a closure may run on another
//     goroutine (where it must lock for itself) or synchronously under the
//     enclosing lock, and a positional scan cannot tell which.
//
// A deferred Unlock does not decrement the held depth — it runs at return,
// so the lock is held for the rest of the method body, which is exactly
// what the scan assumes.
var guardedbyCheck = &Check{
	Name: "guardedby",
	Doc:  "fields annotated '// guarded by <mu>' accessed without holding that mutex",
	Run:  runGuardedby,
}

var guardedbyRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runGuardedby(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			fields := guards[recvTypeName(fn.Recv.List[0].Type)]
			if len(fields) == 0 {
				continue
			}
			checkLockDiscipline(p, fn, fields)
		}
	}
}

// collectGuards parses every struct declaration for `guarded by <mu>` field
// comments, returning typeName -> fieldName -> mutexFieldName. An
// annotation naming a mutex that is not itself a field of the same struct
// is reported: it can never be satisfied.
func collectGuards(p *Pass) map[string]map[string]string {
	guards := make(map[string]map[string]string)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					p.Reportf(f.Pos(), "guarded-by annotation names %q, which is not a field of %s", mu, ts.Name.Name)
					continue
				}
				m := guards[ts.Name.Name]
				if m == nil {
					m = make(map[string]string)
					guards[ts.Name.Name] = m
				}
				for _, name := range f.Names {
					m[name.Name] = mu
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's trailing or doc
// comment, or "" when unannotated.
func guardAnnotation(f *ast.Field) string {
	for _, group := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if group == nil {
			continue
		}
		if m := guardedbyRE.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

type gbKind int

const (
	gbLock gbKind = iota
	gbUnlock
	gbRLock
	gbRUnlock
	gbRead
	gbWrite
)

// gbEvent is one lock operation or guarded-field access, ordered by source
// position.
type gbEvent struct {
	pos  token.Pos
	kind gbKind
	name string // mutex field for lock events, guarded field for accesses
}

// checkLockDiscipline replays one method's lock operations and guarded
// accesses in source order and reports accesses at insufficient depth.
func checkLockDiscipline(p *Pass, fn *ast.FuncDecl, fields map[string]string) {
	recvField := fn.Recv.List[0]
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return // unnamed receiver: the method cannot touch any field
	}
	recvObj := p.Pkg.Info.Defs[recvField.Names[0]]
	if recvObj == nil {
		return
	}
	mutexes := make(map[string]bool)
	for _, mu := range fields {
		mutexes[mu] = true
	}

	// isRecvSel reports whether e is recv.<name> for the receiver object.
	isRecvSel := func(e ast.Expr) (string, *ast.SelectorExpr, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", nil, false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || p.Pkg.Info.Uses[id] != recvObj {
			return "", nil, false
		}
		return sel.Sel.Name, sel, true
	}

	// First pass: which guarded-field selectors are write targets, which
	// lock calls are deferred, and where function literals live (their
	// bodies are exempt — see the check doc).
	writeAt := make(map[token.Pos]bool)
	deferredCall := make(map[token.Pos]bool)
	var funcLits []*ast.FuncLit
	markWrite := func(e ast.Expr) {
		for {
			if name, sel, ok := isRecvSel(e); ok {
				if _, guarded := fields[name]; guarded {
					writeAt[sel.Pos()] = true
				}
				return
			}
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.SelectorExpr:
				e = v.X
			default:
				return
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			funcLits = append(funcLits, st)
			return false
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(st.X)
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				// Taking a field's address escapes the lock's protection.
				markWrite(st.X)
			}
		case *ast.DeferStmt:
			deferredCall[st.Call.Pos()] = true
		}
		return true
	})
	inFuncLit := func(pos token.Pos) bool {
		for _, fl := range funcLits {
			if pos >= fl.Pos() && pos <= fl.End() {
				return true
			}
		}
		return false
	}

	// Second pass: collect events.
	var events []gbEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if fun, ok := v.Fun.(*ast.SelectorExpr); ok {
				if muName, _, ok := isRecvSel(fun.X); ok && mutexes[muName] {
					kind, isLockOp := map[string]gbKind{
						"Lock": gbLock, "Unlock": gbUnlock,
						"RLock": gbRLock, "RUnlock": gbRUnlock,
					}[fun.Sel.Name]
					if isLockOp && !inFuncLit(v.Pos()) {
						if deferredCall[v.Pos()] && (kind == gbUnlock || kind == gbRUnlock) {
							return true // runs at return; lock stays held below
						}
						events = append(events, gbEvent{pos: v.Pos(), kind: kind, name: muName})
					}
				}
			}
		case *ast.SelectorExpr:
			if name, sel, ok := isRecvSel(v); ok && !inFuncLit(sel.Pos()) {
				if _, guarded := fields[name]; guarded {
					kind := gbRead
					if writeAt[sel.Pos()] {
						kind = gbWrite
					}
					events = append(events, gbEvent{pos: sel.Pos(), kind: kind, name: name})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	isolated := terminatingRanges(fn.Body)

	// Replay. Entering a terminating branch snapshots the lock depths;
	// leaving it restores them, so an early-exit branch's Unlock (or Lock)
	// does not leak into the fall-through path.
	wDepth := make(map[string]int)
	rDepth := make(map[string]int)
	type frame struct {
		end  token.Pos
		w, r map[string]int
	}
	var stack []frame
	next := 0
	for _, ev := range events {
		for len(stack) > 0 && ev.pos > stack[len(stack)-1].end {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			wDepth, rDepth = top.w, top.r
		}
		for next < len(isolated) && isolated[next][0] <= ev.pos {
			if ev.pos <= isolated[next][1] {
				stack = append(stack, frame{end: isolated[next][1], w: copyDepths(wDepth), r: copyDepths(rDepth)})
			}
			next++
		}
		switch ev.kind {
		case gbLock:
			wDepth[ev.name]++
		case gbUnlock:
			if wDepth[ev.name] > 0 {
				wDepth[ev.name]--
			}
		case gbRLock:
			rDepth[ev.name]++
		case gbRUnlock:
			if rDepth[ev.name] > 0 {
				rDepth[ev.name]--
			}
		case gbWrite:
			mu := fields[ev.name]
			if wDepth[mu] == 0 {
				p.Reportf(ev.pos, "%s is guarded by %s but written without holding it exclusively; call %s.Lock first or move this into a *Locked method", ev.name, mu, mu)
			}
		case gbRead:
			mu := fields[ev.name]
			if wDepth[mu] == 0 && rDepth[mu] == 0 {
				p.Reportf(ev.pos, "%s is guarded by %s but read without holding it; call %s.Lock or %s.RLock first or move this into a *Locked method", ev.name, mu, mu, mu)
			}
		}
	}
}

// terminatingRanges returns the source spans of blocks whose last statement
// is a return or a panic call, sorted by start position. Lock-state changes
// inside such a block never reach the statement after it, so the replay
// isolates them.
func terminatingRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	add := func(stmts []ast.Stmt) {
		if len(stmts) == 0 {
			return
		}
		last := stmts[len(stmts)-1]
		terminating := false
		switch t := last.(type) {
		case *ast.ReturnStmt:
			terminating = true
		case *ast.ExprStmt:
			if call, ok := t.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					terminating = true
				}
			}
		}
		if terminating {
			out = append(out, [2]token.Pos{stmts[0].Pos(), last.End()})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			if b != body {
				add(b.List)
			}
		case *ast.CaseClause:
			add(b.Body)
		case *ast.CommClause:
			add(b.Body)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// copyDepths clones a lock-depth map for branch isolation.
func copyDepths(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
