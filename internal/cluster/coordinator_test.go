package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"neo/internal/cluster/proto"
)

// stubReplica fakes the replica surface the coordinator drives: /stats with
// a quality window and /admin/snapshot that records loads. regress makes the
// post-load window look worse than the pre-load one.
type stubReplica struct {
	mu      sync.Mutex
	version uint64
	loads   []uint64
	regress bool
	failNow bool
	quality proto.QualityStats
	srv     *httptest.Server
}

func newStubReplica(version uint64) *stubReplica {
	sr := &stubReplica{version: version}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		sr.mu.Lock()
		st := proto.ReplicaStats{NetVersion: sr.version, Cluster: &proto.ClusterStats{Role: "replica", Quality: sr.quality}}
		sr.mu.Unlock()
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("POST /admin/snapshot", func(w http.ResponseWriter, r *http.Request) {
		var req proto.SnapshotRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		sr.mu.Lock()
		if sr.failNow {
			sr.mu.Unlock()
			http.Error(w, `{"error":"trainer unreachable"}`, http.StatusBadGateway)
			return
		}
		sr.version = req.Version
		sr.loads = append(sr.loads, req.Version)
		// Loading archives the window, exactly like a real replica.
		mean := 10.0
		if sr.regress {
			mean = 30.0
		}
		sr.quality = proto.QualityStats{
			WindowFeedbacks: 10, WindowMeanLatencyMS: mean,
			PrevWindowFeedbacks: 10, PrevWindowMeanMS: 10.0,
		}
		sr.mu.Unlock()
		_ = json.NewEncoder(w).Encode(proto.SnapshotResponse{NetVersion: req.Version})
	})
	sr.srv = httptest.NewServer(mux)
	return sr
}

func (sr *stubReplica) state() (uint64, []uint64) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.version, append([]uint64(nil), sr.loads...)
}

// TestCoordinatorPromotes pins the happy path of the rollout state machine:
// canary the version on the first replica, observe a healthy quality window,
// promote to the rest of the fleet.
func TestCoordinatorPromotes(t *testing.T) {
	a, b := newStubReplica(5), newStubReplica(5)
	defer a.srv.Close()
	defer b.srv.Close()
	c := NewCoordinator(RolloutConfig{
		Replicas:     []string{a.srv.URL, b.srv.URL},
		CanaryWait:   300 * time.Millisecond,
		MinFeedbacks: 1,
		Client:       fastClient(),
	})
	promoted, err := c.Rollout(nil, 6)
	if err != nil || !promoted {
		t.Fatalf("rollout: promoted=%v err=%v", promoted, err)
	}
	if va, _ := a.state(); va != 6 {
		t.Fatalf("canary at version %d, want 6", va)
	}
	if vb, _ := b.state(); vb != 6 {
		t.Fatalf("fleet replica at version %d, want 6", vb)
	}
	st := c.Status()
	if st.Phase != "idle" || st.Promoted != 6 || st.Promotions != 1 || st.Rollbacks != 0 {
		t.Fatalf("status %+v", st)
	}
}

// TestCoordinatorRollsBackOnRegression pins the safety half: a canary whose
// quality window regresses beyond tolerance is rolled back to its previous
// version, the rest of the fleet never sees the bad version, and the version
// is barred from re-canarying.
func TestCoordinatorRollsBackOnRegression(t *testing.T) {
	a, b := newStubReplica(5), newStubReplica(5)
	defer a.srv.Close()
	defer b.srv.Close()
	a.regress = true // 30ms canary mean vs 10ms baseline: past default 25% tolerance
	c := NewCoordinator(RolloutConfig{
		Replicas:     []string{a.srv.URL, b.srv.URL},
		CanaryWait:   300 * time.Millisecond,
		MinFeedbacks: 1,
		Client:       fastClient(),
	})
	promoted, err := c.Rollout(nil, 6)
	if err != nil || promoted {
		t.Fatalf("regressing rollout: promoted=%v err=%v, want clean rollback", promoted, err)
	}
	va, loadsA := a.state()
	if va != 5 {
		t.Fatalf("canary left at version %d after rollback, want 5", va)
	}
	if len(loadsA) != 2 || loadsA[0] != 6 || loadsA[1] != 5 {
		t.Fatalf("canary load sequence %v, want [6 5]", loadsA)
	}
	if _, loadsB := b.state(); len(loadsB) != 0 {
		t.Fatalf("bad version reached a non-canary replica: %v", loadsB)
	}
	st := c.Status()
	if st.Rollbacks != 1 || st.Promotions != 0 || len(st.BadVersions) != 1 || st.BadVersions[0] != 6 {
		t.Fatalf("status %+v", st)
	}
	// Barred: the same version never re-canaries.
	if _, err := c.Rollout(nil, 6); err == nil {
		t.Fatal("rolled-back version was allowed to re-canary")
	}
	// A newer version still rolls out (the stub regresses every load, so
	// tolerate by raising Tolerance).
	c2 := NewCoordinator(RolloutConfig{
		Replicas:     []string{a.srv.URL, b.srv.URL},
		Tolerance:    5.0,
		CanaryWait:   300 * time.Millisecond,
		MinFeedbacks: 1,
		Client:       fastClient(),
	})
	if promoted, err := c2.Rollout(nil, 7); err != nil || !promoted {
		t.Fatalf("tolerant rollout of 7: promoted=%v err=%v", promoted, err)
	}
}

// TestCoordinatorCanaryRefusal pins that a canary that cannot load the
// snapshot aborts the rollout with an error and no fleet-wide damage.
func TestCoordinatorCanaryRefusal(t *testing.T) {
	a, b := newStubReplica(5), newStubReplica(5)
	defer a.srv.Close()
	defer b.srv.Close()
	a.failNow = true
	c := NewCoordinator(RolloutConfig{
		Replicas:     []string{a.srv.URL, b.srv.URL},
		CanaryWait:   50 * time.Millisecond,
		MinFeedbacks: 1,
		Client:       fastClient(),
	})
	if promoted, err := c.Rollout(nil, 6); err == nil || promoted {
		t.Fatalf("rollout with refusing canary: promoted=%v err=%v, want error", promoted, err)
	}
	if _, loadsB := b.state(); len(loadsB) != 0 {
		t.Fatalf("fleet touched despite canary refusal: %v", loadsB)
	}
	if st := c.Status(); st.Phase != "idle" {
		t.Fatalf("coordinator stuck in phase %q", st.Phase)
	}
	// One rollout at a time: a second attempt while one is in flight fails
	// with the busy sentinel.
	c.mu.Lock()
	c.phase = "canary"
	c.mu.Unlock()
	if _, err := c.Rollout(nil, 9); !errors.Is(err, ErrRolloutBusy) {
		t.Fatalf("concurrent rollout: got %v, want ErrRolloutBusy", err)
	}
}
