package neo

import (
	"sync"
	"testing"

	"neo/internal/datagen"
	"neo/internal/expert"
	"neo/internal/fastpath"
	"neo/internal/plan"
	"neo/internal/route"
	"neo/internal/search"
)

func TestOpenRejectsUnknownRouting(t *testing.T) {
	if _, err := Open(Config{Scale: 0.1, Encoding: Histogram, Routing: "bogus"}); err == nil {
		t.Errorf("expected error for unknown routing mode")
	}
	for _, mode := range []string{"", "full", "fastpath", "auto"} {
		sys, err := Open(Config{Scale: 0.1, Encoding: Histogram, Routing: mode})
		if err != nil {
			t.Fatalf("Open(Routing: %q): %v", mode, err)
		}
		sys.Close()
	}
}

// TestFastpathParityWithExhaustiveSearch pins greedy-equals-optimal on the
// pattern shapes the fast path is routed: under the fast path's own cost
// model, an exhaustive best-first search (every unique plan state scored)
// must find exactly the plan the microsecond greedy ordering builds.
func TestFastpathParityWithExhaustiveSearch(t *testing.T) {
	cat := datagen.IMDBCatalog()
	queries := []*Query{
		NewQuery("single-join", []string{"title", "movie_keyword"},
			[]JoinPredicate{
				{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			},
			[]Predicate{
				{Table: "title", Column: "production_year", Op: Eq, Value: IntValue(2000)},
			}),
		NewQuery("star", []string{"title", "movie_info", "cast_info"},
			[]JoinPredicate{
				{LeftTable: "movie_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
				{LeftTable: "cast_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
			},
			[]Predicate{
				{Table: "movie_info", Column: "info_type_id", Op: Eq, Value: IntValue(3)},
			}),
	}
	for _, q := range queries {
		fr, err := fastpath.Plan(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := search.BestFirst(q,
			search.ScorerFunc(func(p *Plan) float64 { return fastpath.Cost(p, cat) }),
			search.Options{Catalog: cat, MaxExpansions: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if res.HurryUp {
			t.Fatalf("%s: budget truncated the exhaustive search", q.ID)
		}
		if got, want := fastpath.Cost(fr.Plan, cat), res.Score; got != want {
			t.Errorf("%s: greedy plan costs %v, exhaustive optimum %v", q.ID, got, want)
		}
		if fr.Plan.Signature() != res.Plan.Signature() {
			t.Errorf("%s: greedy plan %s differs from exhaustive optimum %s", q.ID, fr.Plan, res.Plan)
		}
	}
}

// Shared bootstrapped fixture for the routed-system tests: opening and
// bootstrapping is the expensive part, and the tests below only read from it
// (or touch disjoint router classes).
var (
	routedOnce sync.Once
	routedSys  *System
	routedWL   *Workload
	routedErr  error
)

func routedFixture(t *testing.T) (*System, *Workload) {
	t.Helper()
	routedOnce.Do(func() {
		routedSys, routedErr = Open(Config{
			Encoding:         Histogram,
			Scale:            0.25,
			Seed:             17,
			SearchExpansions: 64,
			Episodes:         3,
			Routing:          "auto",
			ValueNet: &ValueNetConfig{
				QueryLayers:  []int{32, 16},
				TreeChannels: []int{16, 16, 8},
				HeadLayers:   []int{16},
				LearningRate: 2e-3,
				UseLayerNorm: true,
				Seed:         3,
			},
		})
		if routedErr != nil {
			return
		}
		routedWL, routedErr = routedSys.GenerateWorkload(16)
		if routedErr != nil {
			return
		}
		routedErr = routedSys.Bootstrap(routedWL.Queries)
		if routedErr != nil {
			return
		}
		// Extra random-plan exploration beyond Bootstrap's two per query: the
		// regret comparison needs the network to price bad structures (plain
		// nested loops, upside-down hash builds) high, which it can only learn
		// from executed contrast.
		rp := expert.NewRandomPlanner(routedSys.Catalog, 211)
		routedErr = routedSys.Neo.Explore(routedWL.Queries, rp.Plan, 4)
		if routedErr != nil {
			return
		}
		// Refinement episodes in auto mode run the deployment loop: routed
		// queries execute their fast-path plans, and the observed latencies
		// calibrate the value network on the greedy structures it must score.
		_, routedErr = routedSys.Train(routedWL.Queries)
	})
	if routedErr != nil {
		t.Fatal(routedErr)
	}
	return routedSys, routedWL
}

// TestFastpathRegretWithinBound is the acceptance criterion for routing: on
// the queries the auto heuristic sends to the fast path, the value network
// must judge the greedy plan within 1.5× of the full best-first search's
// plan for at least 90% of them. Both plans are scored by the same trained
// network, so the ratio is the router's regret estimate, not an execution
// measurement.
func TestFastpathRegretWithinBound(t *testing.T) {
	sys, wl := routedFixture(t)
	probe := route.New(route.Auto, route.Policy{})
	routed, within := 0, 0
	for _, q := range wl.Queries {
		if !probe.Decide(q).Fastpath {
			continue
		}
		routed++
		fr, err := fastpath.Plan(q, sys.Catalog)
		if err != nil {
			t.Fatal(err)
		}
		scorer := sys.Neo.Scorer(q)
		// OptimizeWith always runs the full best-first search, regardless of
		// the system's routing mode.
		_, best, err := sys.OptimizeWith(q, scorer)
		if err != nil {
			t.Fatal(err)
		}
		if best.Score <= 0 {
			t.Fatalf("%s: non-positive network score %v for the best-first plan", q.ID, best.Score)
		}
		fastScore := scorer.ScoreBatch([]*plan.Plan{fr.Plan})[0]
		if fastScore <= 1.5*best.Score {
			within++
		} else {
			t.Logf("%s: fast-path plan scored %.3f vs best-first %.3f (%.2fx)",
				q.ID, fastScore, best.Score, fastScore/best.Score)
		}
	}
	if routed < len(wl.Queries)/2 {
		t.Fatalf("only %d/%d workload queries routed to the fast path; the acceptance sample is too small",
			routed, len(wl.Queries))
	}
	if 10*within < 9*routed {
		t.Errorf("fast-path plans within 1.5x of best-first on %d/%d routed queries, want >= 90%%", within, routed)
	}
}

// TestRoutedOptimizePopulatesRouteStats checks the serving surface: a system
// opened with auto routing reports its decisions through RouteStats.
func TestRoutedOptimizePopulatesRouteStats(t *testing.T) {
	sys, wl := routedFixture(t)
	for _, q := range wl.Queries[:4] {
		if _, _, err := sys.Optimize(q); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.RouteStats()
	if st.Mode != "auto" {
		t.Errorf("mode = %q, want auto", st.Mode)
	}
	if st.Fastpath == 0 {
		t.Errorf("no fast-path decisions recorded: %+v", st)
	}
	if len(st.Classes) == 0 {
		t.Errorf("no per-class counters: %+v", st)
	}
	if st.FastpathP50US <= 0 {
		t.Errorf("fast-path P50 not recorded: %+v", st)
	}
}

// TestRouterDecisionsDeterministicAcrossSystems opens two identically-seeded
// systems and checks that the same workload produces identical per-class
// routing decisions (latency percentiles are wall-clock and excluded).
func TestRouterDecisionsDeterministicAcrossSystems(t *testing.T) {
	open := func() (*System, *Workload) {
		sys, err := Open(Config{
			Encoding: Histogram, Scale: 0.15, Seed: 7, SearchExpansions: 24, Routing: "auto",
			ValueNet: &ValueNetConfig{
				QueryLayers: []int{16, 8}, TreeChannels: []int{8, 8}, HeadLayers: []int{8},
				LearningRate: 2e-3, UseLayerNorm: true, Seed: 3,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		wl, err := sys.GenerateWorkload(10)
		if err != nil {
			t.Fatal(err)
		}
		return sys, wl
	}
	sysA, wlA := open()
	sysB, wlB := open()
	defer sysA.Close()
	defer sysB.Close()
	for i := range wlA.Queries {
		// Bypass the plan cache: route counts track planning decisions.
		if _, _, err := sysA.Neo.Optimize(wlA.Queries[i]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sysB.Neo.Optimize(wlB.Queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	stA, stB := sysA.RouteStats(), sysB.RouteStats()
	if stA.Fastpath != stB.Fastpath || stA.Full != stB.Full {
		t.Fatalf("decision totals diverge: %d/%d vs %d/%d", stA.Fastpath, stA.Full, stB.Fastpath, stB.Full)
	}
	if len(stA.Classes) != len(stB.Classes) {
		t.Fatalf("class sets diverge: %d vs %d", len(stA.Classes), len(stB.Classes))
	}
	for i := range stA.Classes {
		a, b := stA.Classes[i], stB.Classes[i]
		if a.Class != b.Class || a.Fastpath != b.Fastpath || a.Full != b.Full {
			t.Errorf("class %d diverges: %+v vs %+v", i, a, b)
		}
	}
}

// TestRegretDemotionEndToEnd drives the full online-refinement loop through
// the public surface: a class served by the fast path accumulates regret via
// ObserveLatency (observed latency vastly above the network's estimate for
// the search's plan) until the policy demotes it, after which the same class
// routes to the full search and /stats reports the re-route.
func TestRegretDemotionEndToEnd(t *testing.T) {
	sys, err := Open(Config{
		Encoding: Histogram, Scale: 0.15, Seed: 7, SearchExpansions: 24, Routing: "auto",
		RoutePolicy: &RoutePolicy{MinRegretSamples: 2, RegretThreshold: 1.5},
		ValueNet: &ValueNetConfig{
			QueryLayers: []int{16, 8}, TreeChannels: []int{8, 8}, HeadLayers: []int{8},
			LearningRate: 2e-3, UseLayerNorm: true, Seed: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	wl, err := sys.GenerateWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries[:4]); err != nil {
		t.Fatal(err)
	}

	q := NewQuery("victim", []string{"title", "movie_keyword"},
		[]JoinPredicate{
			{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
		},
		[]Predicate{
			{Table: "title", Column: "production_year", Op: Eq, Value: IntValue(1995)},
		})
	if _, _, err := sys.Neo.Optimize(q); err != nil {
		t.Fatal(err)
	}
	st := sys.RouteStats()
	if st.Fastpath == 0 {
		t.Fatalf("victim query was not routed to the fast path: %+v", st)
	}
	// Feed absurd observed latencies: mean regret far above any estimate.
	for i := 0; i < 4; i++ {
		sys.Neo.ObserveLatency(q, 1e9)
	}
	if _, _, err := sys.Neo.Optimize(q); err != nil {
		t.Fatal(err)
	}
	st = sys.RouteStats()
	key := route.Classify(q).Key()
	var cls *RouteClassStats
	for i := range st.Classes {
		if st.Classes[i].Class == key {
			cls = &st.Classes[i]
		}
	}
	if cls == nil {
		t.Fatalf("class %q missing from stats: %+v", key, st.Classes)
	}
	if !cls.ReroutedFull {
		t.Errorf("class not demoted after %d samples of enormous regret: %+v", cls.RegretSamples, cls)
	}
	if cls.Full == 0 {
		t.Errorf("demoted class still has no full-search decisions: %+v", cls)
	}
	if cls.RegretSamples < 2 || cls.RegretMean <= 1.5 {
		t.Errorf("regret accounting not reported: %+v", cls)
	}
}
