package valuenet

import (
	"math"
	"math/rand"
	"testing"

	"neo/internal/treeconv"
)

// synthTree builds a random plan-like tree with the given node vector size.
func synthTree(rng *rand.Rand, dim, depth int) *treeconv.Tree {
	data := make([]float64, dim)
	for i := range data {
		if rng.Float64() < 0.3 {
			data[i] = 1
		}
	}
	if depth == 0 {
		return treeconv.NewLeaf(data)
	}
	return treeconv.NewNode(data, synthTree(rng, dim, depth-1), synthTree(rng, dim, depth-1))
}

func TestNewAndSizes(t *testing.T) {
	n := New(20, 10, DefaultConfig())
	if n.NumParameters() <= 0 {
		t.Fatalf("network should have parameters")
	}
	if len(n.Params()) == 0 {
		t.Fatalf("Params should not be empty")
	}
	// Paper config builds a much larger network.
	big := New(20, 10, PaperConfig())
	if big.NumParameters() <= n.NumParameters() {
		t.Errorf("paper config should have more parameters (%d vs %d)", big.NumParameters(), n.NumParameters())
	}
	// Zero config falls back to the default.
	fallback := New(20, 10, Config{})
	if fallback.NumParameters() != n.NumParameters() {
		t.Errorf("empty config should fall back to DefaultConfig")
	}
}

func TestPredictIsFiniteAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := New(12, 8, DefaultConfig())
	q := make([]float64, 12)
	for i := range q {
		q[i] = rng.Float64()
	}
	trees := []*treeconv.Tree{synthTree(rng, 8, 2)}
	p1 := n.Predict(q, trees)
	p2 := n.Predict(q, trees)
	if math.IsNaN(p1) || math.IsInf(p1, 0) {
		t.Fatalf("prediction is not finite: %f", p1)
	}
	if p1 != p2 {
		t.Errorf("prediction should be deterministic: %f vs %f", p1, p2)
	}
}

func TestForestInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New(6, 5, DefaultConfig())
	q := []float64{1, 0, 1, 0, 0.5, 0.2}
	forest := []*treeconv.Tree{
		synthTree(rng, 5, 1),
		treeconv.NewLeaf([]float64{1, 0, 0, 1, 0}),
		treeconv.NewLeaf([]float64{0, 1, 1, 0, 0}),
	}
	out := n.Predict(q, forest)
	if math.IsNaN(out) {
		t.Fatalf("forest prediction is NaN")
	}
}

func TestTargetTransform(t *testing.T) {
	n := New(4, 4, DefaultConfig())
	n.FitTargetTransform([]float64{10, 100, 1000})
	if n.targetStd <= 0 {
		t.Fatalf("target std must be positive")
	}
	for _, c := range []float64{10, 100, 1000} {
		round := n.denormalize(n.normalize(c))
		if math.Abs(round-c) > c*1e-9+1e-9 {
			t.Errorf("normalize/denormalize round trip: %f -> %f", c, round)
		}
	}
	// Degenerate cases.
	n.FitTargetTransform(nil)
	if n.targetMean != 0 || n.targetStd != 1 {
		t.Errorf("empty fit should reset to identity-ish transform")
	}
	n.FitTargetTransform([]float64{5, 5, 5})
	if n.targetStd != 1 {
		t.Errorf("constant targets should give std 1, got %f", n.targetStd)
	}
}

// TestLearnsToSeparatePlans is the core sanity check: the network must learn
// to predict higher costs for "bad" plan structures than for "good" ones.
func TestLearnsToSeparatePlans(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const queryDim, planDim = 10, 6

	// Synthetic rule: plans whose root vector has feature 0 set (think "loop
	// join at the root") cost 1000; others cost 10. The query vector is
	// random noise.
	mkSample := func(bad bool) Sample {
		q := make([]float64, queryDim)
		for i := range q {
			q[i] = rng.Float64()
		}
		rootVec := make([]float64, planDim)
		if bad {
			rootVec[0] = 1
		} else {
			rootVec[1] = 1
		}
		leaf1 := make([]float64, planDim)
		leaf1[3] = 1
		leaf2 := make([]float64, planDim)
		leaf2[4] = 1
		tree := treeconv.NewNode(rootVec, treeconv.NewLeaf(leaf1), treeconv.NewLeaf(leaf2))
		target := 10.0
		if bad {
			target = 1000.0
		}
		return Sample{Query: q, Plan: []*treeconv.Tree{tree}, Target: target}
	}

	var samples []Sample
	for i := 0; i < 60; i++ {
		samples = append(samples, mkSample(i%2 == 0))
	}
	cfg := DefaultConfig()
	cfg.LearningRate = 3e-3
	n := New(queryDim, planDim, cfg)
	loss := n.Train(samples, 80, 16, rng)
	if math.IsNaN(loss) {
		t.Fatalf("training loss is NaN")
	}

	good := mkSample(false)
	bad := mkSample(true)
	pg := n.Predict(good.Query, good.Plan)
	pb := n.Predict(bad.Query, bad.Plan)
	if pb <= pg {
		t.Errorf("bad plan should predict higher cost: good=%f bad=%f", pg, pb)
	}
	// Predictions should be in the right ballpark (within a factor of ~5).
	if pg > 100 || pb < 100 {
		t.Errorf("predictions not calibrated: good=%f (want ~10) bad=%f (want ~1000)", pg, pb)
	}
}

func TestTrainBatchReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := New(5, 4, DefaultConfig())
	mk := func() Sample {
		q := make([]float64, 5)
		tree := synthTree(rng, 4, 1)
		target := 50.0
		if tree.Data[0] > 0 {
			target = 500.0
		}
		return Sample{Query: q, Plan: []*treeconv.Tree{tree}, Target: target}
	}
	var samples []Sample
	for i := 0; i < 40; i++ {
		samples = append(samples, mk())
	}
	costs := make([]float64, len(samples))
	for i := range samples {
		costs[i] = samples[i].Target
	}
	n.FitTargetTransform(costs)
	first := n.TrainBatch(samples)
	var last float64
	for i := 0; i < 60; i++ {
		last = n.TrainBatch(samples)
	}
	if last >= first {
		t.Errorf("training loss should decrease: first %f, last %f", first, last)
	}
	if n.TrainBatch(nil) != 0 {
		t.Errorf("empty batch should return 0 loss")
	}
}

func TestTrainEmpty(t *testing.T) {
	n := New(4, 4, DefaultConfig())
	if loss := n.Train(nil, 5, 8, rand.New(rand.NewSource(1))); loss != 0 {
		t.Errorf("training on empty data should return 0")
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := New(60, 22, DefaultConfig())
	q := make([]float64, 60)
	for i := range q {
		q[i] = rng.Float64()
	}
	trees := []*treeconv.Tree{synthTree(rng, 22, 3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Predict(q, trees)
	}
}

func BenchmarkTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	n := New(60, 22, DefaultConfig())
	var samples []Sample
	for i := 0; i < 16; i++ {
		q := make([]float64, 60)
		for j := range q {
			q[j] = rng.Float64()
		}
		samples = append(samples, Sample{Query: q, Plan: []*treeconv.Tree{synthTree(rng, 22, 2)}, Target: float64(10 + i)})
	}
	n.FitTargetTransform([]float64{10, 26})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TrainBatch(samples)
	}
}
