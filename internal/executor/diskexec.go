// Disk execution: a Volcano-style iterator family (sequential scan, index
// scan, filter, hash join, merge join, index-nested-loop join) that runs
// complete plans against slotted heap files through a buffer pool. Unlike
// the in-memory Executor — which evaluates every join with a hash table and
// only *records* the chosen operator for the cost models — the disk executor
// physically executes the operator the plan names, so the wall-clock latency
// the engine measures around Execute reflects the plan's actual access
// pattern (page residency included).
//
// Semantics deliberately mirror the in-memory executor so the two backends
// are cardinality-for-cardinality interchangeable: the first join predicate
// between two inputs drives the physical join and any further predicates are
// applied as filters; scan output inherits the clustered (primary-key)
// ordering; merge-join output is sorted on the join key; NodeStats fields
// are computed by the same rules. The one documented divergence is the inner
// leaf of an index-nested-loop join: the whole point of INL is to not scan
// the inner table, so that leaf's OutputRows counts tuples actually fetched
// through the index rather than the full filtered table.
package executor

import (
	"fmt"
	"sort"

	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/storage"
)

// DiskMaxRows is the default per-operator row budget of the disk executor.
// It is a runaway-plan safety net, not a sampling cap: when an operator
// exceeds it the query stops early and the Result is marked Truncated. It is
// set far above anything the bundled workloads produce.
const DiskMaxRows = 1 << 20

// errTruncated aborts the drain when an operator exceeds its row budget.
var errTruncated = fmt.Errorf("executor: disk operator exceeded its row budget")

// dtuple is one decoded base-table tuple.
type dtuple []storage.Value

// drow is a composite row: one decoded tuple per contributing base table,
// in slot order (left subtree tables, then right subtree tables).
type drow []dtuple

// dinfo describes the static shape of an operator's output stream: which
// base tables fill which slots and which column, if any, the stream is
// sorted on. It matches the in-memory executor's relation metadata.
type dinfo struct {
	tables []string
	slot   map[string]int
	sorted *schema0
}

func newDinfo(tables []string) *dinfo {
	d := &dinfo{tables: tables, slot: make(map[string]int, len(tables))}
	for i, t := range tables {
		d.slot[t] = i
	}
	return d
}

// diskIter is the Volcano iterator contract. Next returns (row, true, nil)
// per row and (nil, false, nil) at end of stream. Rows() reports how many
// rows Next has produced so far.
type diskIter interface {
	Open() error
	Next() (drow, bool, error)
	Close() error
	Rows() int64
}

// DiskExecutor executes complete plans against a disk database.
type DiskExecutor struct {
	db *storage.DiskDB
	// MaxRows is the per-operator row budget (see DiskMaxRows).
	MaxRows int
}

// NewDisk creates a disk executor over the given disk database.
func NewDisk(db *storage.DiskDB) *DiskExecutor {
	return &DiskExecutor{db: db, MaxRows: DiskMaxRows}
}

// DB returns the underlying disk database.
func (e *DiskExecutor) DB() *storage.DiskDB { return e.db }

func (e *DiskExecutor) maxRows() int {
	if e.MaxRows > 0 {
		return e.MaxRows
	}
	return DiskMaxRows
}

// dnode pairs one plan node with its iterator and statistics.
type dnode struct {
	node  *plan.Node
	it    diskIter
	info  *dinfo
	ns    *NodeStats
	left  *dnode
	right *dnode
}

// Execute runs a complete plan through the iterator tree and returns the
// same per-node statistics the in-memory executor produces.
func (e *DiskExecutor) Execute(p *plan.Plan) (*Result, error) {
	if !p.IsComplete() {
		return nil, fmt.Errorf("executor: plan for query %s is not complete: %s", p.Query.ID, p)
	}
	res := &Result{Root: p.Roots[0], Nodes: make(map[*plan.Node]*NodeStats)}
	root, err := e.buildNode(p.Roots[0], p.Query, res)
	if err != nil {
		return nil, err
	}
	if err := root.it.Open(); err != nil {
		return nil, err
	}
	truncated := false
	for {
		_, ok, err := root.it.Next()
		if err == errTruncated {
			truncated = true
			break
		}
		if err != nil {
			root.it.Close()
			return nil, err
		}
		if !ok {
			break
		}
	}
	if err := root.it.Close(); err != nil {
		return nil, err
	}
	finishStats(root)
	res.OutputRows = float64(root.it.Rows())
	res.Truncated = truncated
	for _, ns := range res.Nodes {
		res.TotalIntermediateRows += ns.OutputRows
	}
	return res, nil
}

// finishStats copies the drained row counters into the NodeStats tree.
func finishStats(d *dnode) {
	if _, isINL := d.it.(*inlJoinIter); isINL {
		// The INL iterator filled the inner leaf's stats in Close (its scan
		// iterator never ran); only the outer subtree is drained normally.
		finishStats(d.left)
		d.ns.LeftRows = d.left.ns.OutputRows
		d.ns.RightRows = d.right.ns.OutputRows
		d.ns.OutputRows = float64(d.it.Rows())
		return
	}
	if d.left != nil {
		finishStats(d.left)
		finishStats(d.right)
		d.ns.LeftRows = d.left.ns.OutputRows
		d.ns.RightRows = d.right.ns.OutputRows
	}
	d.ns.OutputRows = float64(d.it.Rows())
	if d.node.IsLeaf() && d.ns.BaseRows > 0 {
		d.ns.Selectivity = d.ns.OutputRows / d.ns.BaseRows
	}
}

func (e *DiskExecutor) buildNode(n *plan.Node, q *query.Query, res *Result) (*dnode, error) {
	if n.IsLeaf() {
		return e.buildScan(n, q, res)
	}
	left, err := e.buildNode(n.Left, q, res)
	if err != nil {
		return nil, err
	}
	right, err := e.buildNode(n.Right, q, res)
	if err != nil {
		return nil, err
	}
	return e.buildJoin(n, q, left, right, res)
}

// buildScan plans a leaf: an index scan when the plan asks for one and an
// equality predicate hits an indexed column, a sequential scan otherwise,
// either one wrapped in a filter for the remaining predicates.
func (e *DiskExecutor) buildScan(n *plan.Node, q *query.Query, res *Result) (*dnode, error) {
	t := e.db.Table(n.Table)
	if t == nil {
		return nil, fmt.Errorf("executor: unknown table %q", n.Table)
	}
	preds := q.PredicatesOn(n.Table)
	colPos := make([]int, len(preds))
	for i, p := range preds {
		if colPos[i] = t.Schema.ColumnIndex(p.Column); colPos[i] < 0 {
			return nil, fmt.Errorf("executor: unknown column %s.%s", p.Table, p.Column)
		}
	}

	ns := &NodeStats{BaseRows: float64(t.NumRows())}
	for _, p := range preds {
		if p.Op == query.Eq && e.db.Catalog.HasIndex(p.Table, p.Column) {
			ns.IndexOnPredicate = true
		}
	}
	res.Nodes[n] = ns

	// Pick the access path.
	var base diskIter
	rest := preds
	restPos := colPos
	if n.Scan == plan.IndexScan {
		for i, p := range preds {
			if p.Op == query.Eq && t.Index(p.Column) != nil {
				base = &indexScanIter{db: e.db, t: t, rids: t.Index(p.Column).Lookup(p.Value)}
				rest = append(append([]query.Predicate{}, preds[:i]...), preds[i+1:]...)
				restPos = append(append([]int{}, colPos[:i]...), colPos[i+1:]...)
				break
			}
		}
	}
	if base == nil {
		base = &seqScanIter{db: e.db, t: t}
	}
	it := base
	if len(rest) > 0 {
		it = &filterIter{in: base, preds: rest, colPos: restPos}
	}

	info := newDinfo([]string{n.Table})
	// Heap files keep the generators' append order, which is primary-key
	// order; index-scan RID lists also store RIDs in that order. Either way
	// the stream is clustered on the primary key, matching the in-memory
	// executor's sortedness rule for base scans.
	if pk := t.Schema.PrimaryKey; pk != "" {
		info.sorted = &schema0{table: n.Table, column: pk}
	}
	return &dnode{node: n, it: it, info: info, ns: ns}, nil
}

func (e *DiskExecutor) buildJoin(n *plan.Node, q *query.Query, left, right *dnode, res *Result) (*dnode, error) {
	joins := q.JoinsBetween(setOf(left.info.tables), setOf(right.info.tables))
	info := newDinfo(append(append([]string{}, left.info.tables...), right.info.tables...))
	ns := &NodeStats{}
	res.Nodes[n] = ns
	d := &dnode{node: n, info: info, ns: ns, left: left, right: right}

	if len(joins) == 0 {
		ns.CrossProduct = true
		d.it = &crossJoinIter{left: left.it, right: right.it, limit: e.maxRows()}
		return d, nil
	}

	primary := joins[0]
	leftCol, rightCol := dorient(primary, left.info)
	lpos, err := e.colPos(leftCol)
	if err != nil {
		return nil, err
	}
	rpos, err := e.colPos(rightCol)
	if err != nil {
		return nil, err
	}
	key := joinKeyCols{
		lslot: left.info.slot[leftCol.table], lpos: lpos,
		rslot: right.info.slot[rightCol.table], rpos: rpos,
	}
	rest, err := e.restFilter(joins[1:], left.info, right.info)
	if err != nil {
		return nil, err
	}

	ns.LeftSorted = left.info.sorted != nil && *left.info.sorted == schema0{table: leftCol.table, column: leftCol.column}
	ns.RightSorted = right.info.sorted != nil && *right.info.sorted == schema0{table: rightCol.table, column: rightCol.column}
	rightTab := e.db.Table(rightCol.table)
	if n.Right.IsLeaf() && n.Right.Scan == plan.IndexScan &&
		e.db.Catalog.HasIndex(rightCol.table, rightCol.column) && len(right.info.tables) == 1 {
		ns.InnerIndexOnJoinKey = true
	}

	limit := e.maxRows() * 4 // same slack the in-memory executor allows
	switch {
	case ns.InnerIndexOnJoinKey && n.Join == plan.LoopJoin && rightTab.Index(rightCol.column) != nil:
		// True index-nested-loop: skip the inner scan entirely and fetch
		// matching inner tuples through the RID index per outer row. The
		// inner leaf's predicates are applied to each fetched tuple.
		innerPreds := q.PredicatesOn(rightCol.table)
		innerPos := make([]int, len(innerPreds))
		for i, p := range innerPreds {
			if innerPos[i] = rightTab.Schema.ColumnIndex(p.Column); innerPos[i] < 0 {
				return nil, fmt.Errorf("executor: unknown column %s.%s", p.Table, p.Column)
			}
		}
		d.it = &inlJoinIter{
			db: e.db, left: left.it, inner: rightTab,
			index: rightTab.Index(rightCol.column), key: key,
			innerPreds: innerPreds, innerPos: innerPos,
			rest: rest, innerStats: right.ns, limit: limit,
		}
	case n.Join == plan.MergeJoin:
		d.it = &mergeJoinIter{left: left.it, right: right.it, key: key, rest: rest, limit: limit}
		info.sorted = &schema0{table: leftCol.table, column: leftCol.column}
	default:
		// HashJoin, and LoopJoin without a usable inner index (a blind
		// nested loop would do the same comparisons per pair; hashing the
		// inner keeps the worst case out of wall-clock without changing the
		// output, exactly as the in-memory executor evaluates all joins).
		d.it = &hashJoinIter{left: left.it, right: right.it, key: key, rest: rest, limit: limit}
	}
	return d, nil
}

// colPos resolves a (table, column) reference to its tuple position.
func (e *DiskExecutor) colPos(c schema0) (int, error) {
	t := e.db.Table(c.table)
	if t == nil {
		return 0, fmt.Errorf("executor: join references unknown table %q", c.table)
	}
	pos := t.Schema.ColumnIndex(c.column)
	if pos < 0 {
		return 0, fmt.Errorf("executor: join references unknown column %s.%s", c.table, c.column)
	}
	return pos, nil
}

// dorient is orient for the disk executor's metadata.
func dorient(j query.JoinPredicate, left *dinfo) (schema0, schema0) {
	if _, ok := left.slot[j.LeftTable]; ok {
		return schema0{j.LeftTable, j.LeftColumn}, schema0{j.RightTable, j.RightColumn}
	}
	return schema0{j.RightTable, j.RightColumn}, schema0{j.LeftTable, j.LeftColumn}
}

// restPred is one non-primary join predicate compiled to slot/column
// positions against the joined row layout (left slots then right slots).
type restPred struct {
	aSlot, aPos int // position in the combined row
	bSlot, bPos int
}

// restFilter compiles the non-primary join predicates. Predicates whose
// tables are not all present are skipped, mirroring the in-memory executor.
func (e *DiskExecutor) restFilter(joins []query.JoinPredicate, left, right *dinfo) ([]restPred, error) {
	var out []restPred
	locate := func(table string) (int, bool) {
		if s, ok := left.slot[table]; ok {
			return s, true
		}
		if s, ok := right.slot[table]; ok {
			return len(left.tables) + s, true
		}
		return 0, false
	}
	for _, j := range joins {
		aSlot, okA := locate(j.LeftTable)
		bSlot, okB := locate(j.RightTable)
		if !okA || !okB {
			continue
		}
		aPos, err := e.colPos(schema0{j.LeftTable, j.LeftColumn})
		if err != nil {
			return nil, err
		}
		bPos, err := e.colPos(schema0{j.RightTable, j.RightColumn})
		if err != nil {
			return nil, err
		}
		out = append(out, restPred{aSlot: aSlot, aPos: aPos, bSlot: bSlot, bPos: bPos})
	}
	return out, nil
}

func restMatch(rest []restPred, row drow) bool {
	for _, r := range rest {
		if !row[r.aSlot][r.aPos].Equal(row[r.bSlot][r.bPos]) {
			return false
		}
	}
	return true
}

// joinKeyCols locates the primary join key in the left and right streams.
type joinKeyCols struct {
	lslot, lpos int
	rslot, rpos int
}

func combineRows(l, r drow) drow {
	out := make(drow, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

// ---- scans ----

// seqScanIter reads every page of a heap file through the buffer pool and
// decodes every tuple.
type seqScanIter struct {
	db   *storage.DiskDB
	t    *storage.DiskTable
	page *storage.Page
	pg   int32
	slot int
	rows int64
}

func (s *seqScanIter) Open() error {
	s.pg, s.slot, s.page, s.rows = 0, 0, nil, 0
	return nil
}

func (s *seqScanIter) Next() (drow, bool, error) {
	for {
		if s.page == nil {
			if s.pg >= s.t.Heap.NumPages() {
				return nil, false, nil
			}
			p, err := s.db.Pool.Get(s.t.Heap, s.pg)
			if err != nil {
				return nil, false, err
			}
			s.page, s.slot = p, 0
		}
		if s.slot >= s.page.NumSlots() {
			s.page, s.pg = nil, s.pg+1
			continue
		}
		data, err := s.page.Tuple(s.slot)
		if err != nil {
			return nil, false, err
		}
		s.slot++
		vals, err := storage.DecodeTuple(data, s.t.Schema, nil)
		if err != nil {
			return nil, false, err
		}
		s.rows++
		return drow{vals}, true, nil
	}
}

func (s *seqScanIter) Close() error { s.page = nil; return nil }
func (s *seqScanIter) Rows() int64  { return s.rows }

// indexScanIter fetches a precomputed RID list (from an equality predicate
// on an indexed column) through the buffer pool.
type indexScanIter struct {
	db   *storage.DiskDB
	t    *storage.DiskTable
	rids []storage.RID
	next int
	rows int64
}

func (s *indexScanIter) Open() error {
	s.next, s.rows = 0, 0
	return nil
}

func (s *indexScanIter) Next() (drow, bool, error) {
	if s.next >= len(s.rids) {
		return nil, false, nil
	}
	rid := s.rids[s.next]
	s.next++
	vals, err := fetchRID(s.db, s.t, rid)
	if err != nil {
		return nil, false, err
	}
	s.rows++
	return drow{vals}, true, nil
}

func (s *indexScanIter) Close() error { return nil }
func (s *indexScanIter) Rows() int64  { return s.rows }

func fetchRID(db *storage.DiskDB, t *storage.DiskTable, rid storage.RID) (dtuple, error) {
	page, err := db.Pool.Get(t.Heap, rid.Page)
	if err != nil {
		return nil, err
	}
	data, err := page.Tuple(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	return storage.DecodeTuple(data, t.Schema, nil)
}

// filterIter drops rows failing any predicate. It only ever wraps a scan,
// so the predicate columns address slot 0.
type filterIter struct {
	in     diskIter
	preds  []query.Predicate
	colPos []int
	rows   int64
}

func (f *filterIter) Open() error { f.rows = 0; return f.in.Open() }

func (f *filterIter) Next() (drow, bool, error) {
	for {
		row, ok, err := f.in.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		matched := true
		for i, p := range f.preds {
			if !p.Matches(row[0][f.colPos[i]]) {
				matched = false
				break
			}
		}
		if matched {
			f.rows++
			return row, true, nil
		}
	}
}

func (f *filterIter) Close() error { return f.in.Close() }
func (f *filterIter) Rows() int64  { return f.rows }

// ---- joins ----

// hashJoinIter drains the right input into a hash table at Open, then
// streams the left input, probing per row. Keys use Value.String(), the
// same encoding the in-memory executor hashes on.
type hashJoinIter struct {
	left, right diskIter
	key         joinKeyCols
	rest        []restPred
	limit       int

	build   map[string][]drow
	pending []drow
	rows    int64
}

func (h *hashJoinIter) Open() error {
	h.rows, h.pending = 0, nil
	if err := h.left.Open(); err != nil {
		return err
	}
	if err := h.right.Open(); err != nil {
		return err
	}
	h.build = make(map[string][]drow)
	for {
		row, ok, err := h.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		k := row[h.key.rslot][h.key.rpos].String()
		h.build[k] = append(h.build[k], row)
	}
}

func (h *hashJoinIter) Next() (drow, bool, error) {
	for {
		if len(h.pending) > 0 {
			out := h.pending[0]
			h.pending = h.pending[1:]
			h.rows++
			if int(h.rows) > h.limit {
				return nil, false, errTruncated
			}
			return out, true, nil
		}
		lrow, ok, err := h.left.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		k := lrow[h.key.lslot][h.key.lpos].String()
		for _, rrow := range h.build[k] {
			if joined := combineRows(lrow, rrow); restMatch(h.rest, joined) {
				h.pending = append(h.pending, joined)
			}
		}
	}
}

func (h *hashJoinIter) Close() error {
	h.build, h.pending = nil, nil
	err := h.left.Close()
	if err2 := h.right.Close(); err == nil {
		err = err2
	}
	return err
}

func (h *hashJoinIter) Rows() int64 { return h.rows }

// mergeJoinIter drains and sorts both inputs on the join key at Open, then
// merges equal-key groups. (Base scans arrive clustered on the primary key;
// the sort is a no-op pass for them but keeps the operator correct for any
// input.)
type mergeJoinIter struct {
	left, right diskIter
	key         joinKeyCols
	rest        []restPred
	limit       int

	lrows, rrows []drow
	li, ri       int
	pending      []drow
	rows         int64
}

func drain(it diskIter) ([]drow, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	var out []drow
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

func (m *mergeJoinIter) Open() error {
	m.rows, m.li, m.ri, m.pending = 0, 0, 0, nil
	var err error
	if m.lrows, err = drain(m.left); err != nil {
		return err
	}
	if m.rrows, err = drain(m.right); err != nil {
		return err
	}
	lk := func(r drow) storage.Value { return r[m.key.lslot][m.key.lpos] }
	rk := func(r drow) storage.Value { return r[m.key.rslot][m.key.rpos] }
	sort.SliceStable(m.lrows, func(a, b int) bool { return lk(m.lrows[a]).Less(lk(m.lrows[b])) })
	sort.SliceStable(m.rrows, func(a, b int) bool { return rk(m.rrows[a]).Less(rk(m.rrows[b])) })
	return nil
}

func (m *mergeJoinIter) Next() (drow, bool, error) {
	for {
		if len(m.pending) > 0 {
			out := m.pending[0]
			m.pending = m.pending[1:]
			m.rows++
			if int(m.rows) > m.limit {
				return nil, false, errTruncated
			}
			return out, true, nil
		}
		if m.li >= len(m.lrows) || m.ri >= len(m.rrows) {
			return nil, false, nil
		}
		lv := m.lrows[m.li][m.key.lslot][m.key.lpos]
		rv := m.rrows[m.ri][m.key.rslot][m.key.rpos]
		switch {
		case lv.Less(rv):
			m.li++
		case rv.Less(lv):
			m.ri++
		default:
			// Cross-product the equal-key groups.
			le := m.li
			for le < len(m.lrows) && m.lrows[le][m.key.lslot][m.key.lpos].Equal(lv) {
				le++
			}
			re := m.ri
			for re < len(m.rrows) && m.rrows[re][m.key.rslot][m.key.rpos].Equal(rv) {
				re++
			}
			for _, lrow := range m.lrows[m.li:le] {
				for _, rrow := range m.rrows[m.ri:re] {
					if joined := combineRows(lrow, rrow); restMatch(m.rest, joined) {
						m.pending = append(m.pending, joined)
					}
				}
			}
			m.li, m.ri = le, re
		}
	}
}

func (m *mergeJoinIter) Close() error {
	m.lrows, m.rrows, m.pending = nil, nil, nil
	err := m.left.Close()
	if err2 := m.right.Close(); err == nil {
		err = err2
	}
	return err
}

func (m *mergeJoinIter) Rows() int64 { return m.rows }

// inlJoinIter is the index-nested-loop join: per outer row it looks up the
// join key in the inner table's RID index, fetches only the matching tuples
// through the buffer pool, and applies the inner leaf's predicates to each.
// The inner leaf never runs as a scan; its NodeStats count the tuples the
// index actually fetched (innerStats), the operator's honest cost.
type inlJoinIter struct {
	db         *storage.DiskDB
	left       diskIter
	inner      *storage.DiskTable
	index      *storage.RIDIndex
	key        joinKeyCols
	innerPreds []query.Predicate
	innerPos   []int
	rest       []restPred
	innerStats *NodeStats
	limit      int

	fetched int64
	passed  int64
	pending []drow
	rows    int64
}

func (j *inlJoinIter) Open() error {
	j.rows, j.fetched, j.passed, j.pending = 0, 0, 0, nil
	return j.left.Open()
}

func (j *inlJoinIter) Next() (drow, bool, error) {
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			j.rows++
			if int(j.rows) > j.limit {
				return nil, false, errTruncated
			}
			return out, true, nil
		}
		lrow, ok, err := j.left.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		for _, rid := range j.index.Lookup(lrow[j.key.lslot][j.key.lpos]) {
			vals, err := fetchRID(j.db, j.inner, rid)
			if err != nil {
				return nil, false, err
			}
			j.fetched++
			matched := true
			for i, p := range j.innerPreds {
				if !p.Matches(vals[j.innerPos[i]]) {
					matched = false
					break
				}
			}
			if !matched {
				continue
			}
			j.passed++
			if joined := combineRows(lrow, drow{vals}); restMatch(j.rest, joined) {
				j.pending = append(j.pending, joined)
			}
		}
	}
}

func (j *inlJoinIter) Close() error {
	j.pending = nil
	// The inner leaf produced exactly the tuples that survived its filters.
	j.innerStats.OutputRows = float64(j.passed)
	if j.innerStats.BaseRows > 0 {
		j.innerStats.Selectivity = j.innerStats.OutputRows / j.innerStats.BaseRows
	}
	return j.left.Close()
}

func (j *inlJoinIter) Rows() int64 { return j.rows }

// crossJoinIter is the predicate-less fallback: it drains the right input at
// Open and pairs every left row with every right row, stopping at the same
// budget the in-memory executor caps cross products at.
type crossJoinIter struct {
	left, right diskIter
	limit       int

	rrows []drow
	lrow  drow
	ri    int
	rows  int64
}

func (c *crossJoinIter) Open() error {
	c.rows, c.ri, c.lrow = 0, 0, nil
	var err error
	if c.rrows, err = drain(c.right); err != nil {
		return err
	}
	return c.left.Open()
}

func (c *crossJoinIter) Next() (drow, bool, error) {
	for {
		if c.lrow == nil {
			row, ok, err := c.left.Next()
			if !ok || err != nil {
				return nil, false, err
			}
			c.lrow, c.ri = row, 0
		}
		if c.ri >= len(c.rrows) {
			c.lrow = nil
			continue
		}
		out := combineRows(c.lrow, c.rrows[c.ri])
		c.ri++
		c.rows++
		if int(c.rows) >= c.limit {
			return nil, false, errTruncated
		}
		return out, true, nil
	}
}

func (c *crossJoinIter) Close() error {
	c.rrows = nil
	err := c.left.Close()
	if err2 := c.right.Close(); err == nil {
		err = err2
	}
	return err
}

func (c *crossJoinIter) Rows() int64 { return c.rows }
