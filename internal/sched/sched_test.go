package sched

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neo/internal/treeconv"
)

// fakeBackend scores each row independently and deterministically (query sum
// scaled, plus the forest's node count), mimicking the row-independence the
// real batch kernels guarantee. It also records the row count of every pass
// it executes.
type fakeBackend struct {
	mu      sync.Mutex
	batches []int
	calls   atomic.Int64
}

func (f *fakeBackend) PredictBatch(queries [][]float64, forests [][]*treeconv.Tree) []float64 {
	f.calls.Add(1)
	f.mu.Lock()
	f.batches = append(f.batches, len(queries))
	f.mu.Unlock()
	out := make([]float64, len(queries))
	for i, q := range queries {
		sum := 0.0
		for _, v := range q {
			sum += v
		}
		nodes := 0
		for _, t := range forests[i] {
			nodes += t.NumNodes()
		}
		out[i] = sum*10 + float64(nodes)
	}
	return out
}

func (f *fakeBackend) recorded() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batches...)
}

// randomSubmission builds a deterministic pseudo-random (queries, forests)
// batch of the given size.
func randomSubmission(rng *rand.Rand, rows int) ([][]float64, [][]*treeconv.Tree) {
	queries := make([][]float64, rows)
	forests := make([][]*treeconv.Tree, rows)
	for i := 0; i < rows; i++ {
		q := make([]float64, 4)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
		leafA := treeconv.NewLeaf([]float64{rng.Float64()})
		leafB := treeconv.NewLeaf([]float64{rng.Float64()})
		forests[i] = []*treeconv.Tree{treeconv.NewNode([]float64{rng.Float64()}, leafA, leafB)}
	}
	return queries, forests
}

// TestFusedMatchesDirect hammers one scheduler from many goroutines and
// checks every submission's scores are bit-identical to a private backend
// call with the same rows — the scatter must preserve submission order
// exactly, no matter how submissions were fused.
func TestFusedMatchesDirect(t *testing.T) {
	backend := &fakeBackend{}
	direct := &fakeBackend{}
	s := New(backend, Options{MaxBatch: 16, Linger: 100 * time.Microsecond})

	const goroutines = 8
	const iters = 50
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < iters; i++ {
				queries, forests := randomSubmission(rng, 1+rng.Intn(8))
				got := s.PredictBatch(queries, forests)
				want := direct.PredictBatch(queries, forests)
				if len(got) != len(want) {
					errs <- fmt.Errorf("goroutine %d iter %d: %d scores for %d rows", g, i, len(got), len(want))
					return
				}
				for r := range want {
					if got[r] != want[r] {
						errs <- fmt.Errorf("goroutine %d iter %d row %d: fused %v != direct %v", g, i, r, got[r], want[r])
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := s.Counters().Stats()
	if st.Submissions != goroutines*iters {
		t.Errorf("submissions = %d, want %d", st.Submissions, goroutines*iters)
	}
	if st.Batches == 0 || st.Batches > st.Submissions {
		t.Errorf("implausible batch count %d for %d submissions", st.Batches, st.Submissions)
	}
	if st.Batches > 0 && st.AvgFusedSize <= 0 {
		t.Errorf("avg fused size should be positive, got %v", st.AvgFusedSize)
	}
}

// TestLoneSubmissionSkipsLinger: with nobody else in flight there is nothing
// to fuse with, so a submission must return immediately — not after the
// linger deadline. The deliberately enormous linger turns a regression into a
// hang-scale slowdown this test catches by wall clock.
func TestLoneSubmissionSkipsLinger(t *testing.T) {
	backend := &fakeBackend{}
	s := New(backend, Options{MaxBatch: 64, Linger: 5 * time.Second})
	rng := rand.New(rand.NewSource(7))
	queries, forests := randomSubmission(rng, 3)
	start := time.Now()
	out := s.PredictBatch(queries, forests)
	elapsed := time.Since(start)
	if len(out) != 3 {
		t.Fatalf("got %d scores, want 3", len(out))
	}
	if elapsed > time.Second {
		t.Fatalf("lone submission took %v; it must not wait for the 5s linger", elapsed)
	}
}

// TestConcurrentSubmissionsBoundedByLinger: under concurrency a submission
// waits at most about the linger deadline before its batch runs, even when
// the fused batch never fills — the linger is a deadline, not a precondition.
func TestConcurrentSubmissionsBoundedByLinger(t *testing.T) {
	backend := &fakeBackend{}
	const linger = 50 * time.Millisecond
	s := New(backend, Options{MaxBatch: 1 << 20, Linger: linger})

	const goroutines = 4
	var ready, wg sync.WaitGroup
	ready.Add(goroutines)
	gate := make(chan struct{})
	elapsed := make([]time.Duration, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			queries, forests := randomSubmission(rng, 2)
			ready.Done()
			<-gate
			start := time.Now()
			s.PredictBatch(queries, forests)
			elapsed[g] = time.Since(start)
		}(g)
	}
	ready.Wait()
	close(gate)
	wg.Wait()
	for g, e := range elapsed {
		// Generous slack for slow CI: the point is "about one linger", not
		// "forever" (a huge MaxBatch must not stall submissions).
		if e > linger+2*time.Second {
			t.Errorf("goroutine %d waited %v, want <= ~%v", g, e, linger)
		}
	}
}

// TestMaxBatchTriggersImmediateFlush: a submission that fills the batch must
// run without waiting for the linger.
func TestMaxBatchTriggersImmediateFlush(t *testing.T) {
	backend := &fakeBackend{}
	s := New(backend, Options{MaxBatch: 4, Linger: 5 * time.Second})
	rng := rand.New(rand.NewSource(11))
	queries, forests := randomSubmission(rng, 4)
	start := time.Now()
	s.PredictBatch(queries, forests)
	if e := time.Since(start); e > time.Second {
		t.Fatalf("batch-filling submission took %v; must flush immediately", e)
	}
	if got := backend.recorded(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("backend saw batches %v, want one pass of 4 rows", got)
	}
}

// TestCloseDrainsAndFallsBack: Close must flush pending work against the old
// backend, and later submissions must still be answered (directly, unfused).
func TestCloseDrainsAndFallsBack(t *testing.T) {
	backend := &fakeBackend{}
	direct := &fakeBackend{}
	s := New(backend, Options{MaxBatch: 64, Linger: time.Millisecond})

	var wg sync.WaitGroup
	const goroutines = 6
	results := make([][]float64, goroutines)
	wants := make([][]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 500))
			queries, forests := randomSubmission(rng, 2)
			results[g] = s.PredictBatch(queries, forests)
			wants[g] = direct.PredictBatch(queries, forests)
		}(g)
	}
	s.Close()
	wg.Wait()
	for g := range results {
		for r := range wants[g] {
			if results[g][r] != wants[g][r] {
				t.Errorf("goroutine %d row %d: %v != %v across Close", g, r, results[g][r], wants[g][r])
			}
		}
	}

	// Post-close submissions bypass fusion but still score correctly.
	rng := rand.New(rand.NewSource(999))
	queries, forests := randomSubmission(rng, 3)
	got := s.PredictBatch(queries, forests)
	want := direct.PredictBatch(queries, forests)
	for r := range want {
		if got[r] != want[r] {
			t.Errorf("post-close row %d: %v != %v", r, got[r], want[r])
		}
	}
	s.Close() // idempotent
}

// TestEmptySubmission returns nil without touching the backend.
func TestEmptySubmission(t *testing.T) {
	backend := &fakeBackend{}
	s := New(backend, Options{})
	if out := s.PredictBatch(nil, nil); out != nil {
		t.Fatalf("empty submission returned %v", out)
	}
	if backend.calls.Load() != 0 {
		t.Fatalf("empty submission reached the backend")
	}
}

// TestSharedCountersAcrossSchedulers: a successor scheduler created with the
// same Counters keeps the statistics monotonic across a swap.
func TestSharedCountersAcrossSchedulers(t *testing.T) {
	counters := &Counters{}
	backend := &fakeBackend{}
	rng := rand.New(rand.NewSource(5))

	s1 := New(backend, Options{Counters: counters})
	q, f := randomSubmission(rng, 2)
	s1.PredictBatch(q, f)
	s1.Close()

	s2 := New(backend, Options{Counters: counters})
	q, f = randomSubmission(rng, 3)
	s2.PredictBatch(q, f)
	s2.Close()

	st := counters.Stats()
	if st.Submissions != 2 || st.Rows != 5 {
		t.Errorf("stats across swap = %+v, want 2 submissions / 5 rows", st)
	}
}

// TestMemoisedDuplicateRows: identical rows — within one submission, and
// across submissions over the scheduler's lifetime — are scored by the
// backend exactly once and served bit-identically from then on.
func TestMemoisedDuplicateRows(t *testing.T) {
	backend := &fakeBackend{}
	s := New(backend, Options{MaxBatch: 64, Linger: time.Millisecond})
	rng := rand.New(rand.NewSource(21))
	queries, forests := randomSubmission(rng, 4)

	first := s.PredictBatch(queries, forests)
	if got := backend.calls.Load(); got != 1 {
		t.Fatalf("first submission: %d backend passes, want 1", got)
	}
	for round := 0; round < 5; round++ {
		again := s.PredictBatch(queries, forests)
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("round %d row %d: memoised %v != original %v", round, i, again[i], first[i])
			}
		}
	}
	if got := backend.calls.Load(); got != 1 {
		t.Errorf("identical resubmissions reached the backend: %d passes, want 1", got)
	}
	st := s.Counters().Stats()
	if st.CacheHits != 5*4 {
		t.Errorf("cache hits = %d, want 20", st.CacheHits)
	}

	// In-batch duplicates: one submission repeating the same row scores it
	// once and fans the result out.
	dupQ := [][]float64{queries[0], queries[0], queries[0]}
	dupF := [][]*treeconv.Tree{forests[0], forests[0], forests[0]}
	dup := s.PredictBatch(dupQ, dupF)
	for i := 1; i < len(dup); i++ {
		if dup[i] != dup[0] {
			t.Errorf("in-batch duplicate row %d scored differently: %v vs %v", i, dup[i], dup[0])
		}
	}
	if dup[0] != first[0] {
		t.Errorf("duplicate of a cached row scored %v, want %v", dup[0], first[0])
	}

	// Structurally different rows over the same values must NOT collide:
	// a deeper tree reusing a cached leaf's vector is a distinct row.
	leaf := treeconv.NewLeaf(forests[0][0].Data)
	deep := [][]*treeconv.Tree{{treeconv.NewNode(forests[0][0].Data, leaf, nil)}}
	fresh := s.PredictBatch([][]float64{queries[0]}, deep)
	want := backend.PredictBatch([][]float64{queries[0]}, deep)
	if fresh[0] != want[len(want)-1] {
		t.Errorf("structurally distinct row served a stale score: %v != %v", fresh[0], want[len(want)-1])
	}
}

// TestCacheDisabled: a negative CacheRows turns memoisation off — every
// submission reaches the backend.
func TestCacheDisabled(t *testing.T) {
	backend := &fakeBackend{}
	s := New(backend, Options{CacheRows: -1, Linger: time.Millisecond})
	rng := rand.New(rand.NewSource(31))
	queries, forests := randomSubmission(rng, 2)
	a := s.PredictBatch(queries, forests)
	b := s.PredictBatch(queries, forests)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d unstable without cache: %v vs %v", i, a[i], b[i])
		}
	}
	if got := backend.calls.Load(); got != 2 {
		t.Errorf("cache disabled but backend saw %d passes, want 2", got)
	}
	if st := s.Counters().Stats(); st.CacheHits != 0 {
		t.Errorf("cache hits %d with caching disabled", st.CacheHits)
	}
}
