package core

import (
	"math"
	"testing"

	"neo/internal/datagen"
	"neo/internal/engine"
	"neo/internal/expert"
	"neo/internal/feature"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/stats"
	"neo/internal/storage"
	"neo/internal/valuenet"
	"neo/internal/workload"
)

// testRig bundles everything a Neo instance needs for testing.
type testRig struct {
	db     *storage.Database
	st     *stats.Stats
	eng    *engine.Engine
	feat   *feature.Featurizer
	neo    *Neo
	pg     *expert.Optimizer
	wl     *workload.Workload
	engine string
}

func newRig(t testing.TB, engineName string) *testRig {
	t.Helper()
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.25, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := engine.ProfileByName(engineName)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(prof, db)
	feat := &feature.Featurizer{Catalog: db.Catalog, Encoding: feature.Histogram, Stats: st}
	cfg := DefaultConfig()
	cfg.SearchExpansions = 96
	cfg.TrainEpochs = 6
	cfg.ValueNet = valuenet.Config{
		QueryLayers:  []int{32, 16},
		TreeChannels: []int{16, 8},
		HeadLayers:   []int{16},
		LearningRate: 2e-3,
		UseLayerNorm: true,
		Seed:         3,
	}
	n := New(eng, feat, cfg)
	pgEng := engine.New(engine.PostgreSQLProfile(), db)
	pg := expert.NativeOptimizer(pgEng, st, db.Catalog)
	wl, err := workload.JOB(db, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{db: db, st: st, eng: eng, feat: feat, neo: n, pg: pg, wl: wl, engine: engineName}
}

func (r *testRig) expertFunc() func(*query.Query) (*plan.Plan, error) {
	return func(q *query.Query) (*plan.Plan, error) {
		p, _, err := r.pg.Optimize(q)
		return p, err
	}
}

func TestExperienceStore(t *testing.T) {
	e := NewExperience()
	q := query.New("q1", []string{"title"}, nil, nil)
	p := &plan.Plan{Query: q, Roots: []*plan.Node{plan.Leaf("title", plan.TableScan)}}
	e.Add(q, p, 120)
	e.Add(q, p, 80)
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	if best, ok := e.BestLatency("q1"); !ok || best != 80 {
		t.Errorf("BestLatency = %f, %v", best, ok)
	}
	if _, ok := e.BestLatency("missing"); ok {
		t.Errorf("missing query should have no best latency")
	}
	if got := len(e.ForQuery("q1")); got != 2 {
		t.Errorf("ForQuery = %d entries, want 2", got)
	}
	if got := len(e.Queries()); got != 1 {
		t.Errorf("Queries = %d, want 1", got)
	}
	cost, ok := e.MinCostContaining(plan.Initial(q), func(en Entry) float64 { return en.Latency })
	if !ok || cost != 80 {
		t.Errorf("MinCostContaining = %f, %v; want 80, true", cost, ok)
	}
	// A plan that is not a subplan of anything stored.
	other := &plan.Plan{Query: q, Roots: []*plan.Node{plan.Leaf("title", plan.IndexScan)}}
	if _, ok := e.MinCostContaining(other, func(en Entry) float64 { return en.Latency }); ok {
		t.Errorf("index-scan plan should not be contained in a table-scan experience")
	}
}

func TestConstructionStates(t *testing.T) {
	q := query.New("q", []string{"a", "b", "c"},
		[]query.JoinPredicate{
			{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "x"},
			{LeftTable: "b", LeftColumn: "y", RightTable: "c", RightColumn: "y"},
		}, nil)
	complete := &plan.Plan{Query: q, Roots: []*plan.Node{
		plan.Join2(plan.HashJoin,
			plan.Join2(plan.MergeJoin, plan.Leaf("a", plan.TableScan), plan.Leaf("b", plan.IndexScan)),
			plan.Leaf("c", plan.TableScan)),
	}}
	states := constructionStates(complete)
	// initial + leaves + 2 joins = 4 states.
	if len(states) != 4 {
		t.Fatalf("expected 4 construction states, got %d", len(states))
	}
	if states[0].NumUnspecified() != 3 {
		t.Errorf("first state should be the all-unspecified initial state")
	}
	if len(states[1].Roots) != 3 || states[1].NumUnspecified() != 0 {
		t.Errorf("second state should be the specified-leaves forest: %s", states[1])
	}
	last := states[len(states)-1]
	if !last.IsComplete() {
		t.Fatalf("last state should be complete, got %s", last)
	}
	if last.Signature() != complete.Signature() {
		t.Errorf("last state %s != original plan %s", last, complete)
	}
	// Every state must be a subplan of the complete plan.
	for i, s := range states {
		if !s.IsSubplanOf(complete) {
			t.Errorf("state %d (%s) is not a subplan of the complete plan", i, s)
		}
	}
	// A partial plan passed in is returned as-is.
	partial := plan.Initial(q)
	if got := constructionStates(partial); len(got) != 1 || got[0] != partial {
		t.Errorf("partial plans should round-trip")
	}
}

func TestBootstrapAndOptimize(t *testing.T) {
	rig := newRig(t, "postgres")
	train, _ := rig.wl.Split(0.8, 1)
	if err := rig.neo.Bootstrap(train, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	if rig.neo.Experience.Len() != len(train) {
		t.Errorf("experience should hold one entry per training query")
	}
	for _, q := range train {
		if _, ok := rig.neo.Baseline(q.ID); !ok {
			t.Errorf("baseline missing for %s", q.ID)
		}
	}
	// Optimize must produce a valid executable plan for every training query.
	for _, q := range train[:3] {
		p, res, err := rig.neo.Optimize(q)
		if err != nil {
			t.Fatalf("Optimize(%s): %v", q.ID, err)
		}
		if !p.IsComplete() {
			t.Errorf("plan for %s is not complete", q.ID)
		}
		if res.Evaluations == 0 {
			t.Errorf("search should evaluate states")
		}
		if _, _, err := rig.eng.Execute(p); err != nil {
			t.Errorf("chosen plan does not execute: %v", err)
		}
	}
	if rig.neo.TrainingTime() <= 0 {
		t.Errorf("training time should be recorded")
	}
}

func TestRunEpisodeImprovesOrMatches(t *testing.T) {
	rig := newRig(t, "postgres")
	train, _ := rig.wl.Split(0.8, 1)
	if err := rig.neo.Bootstrap(train, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	var norms []float64
	for ep := 1; ep <= 4; ep++ {
		stats, err := rig.neo.RunEpisode(ep, train)
		if err != nil {
			t.Fatal(err)
		}
		if stats.TotalLatency <= 0 || stats.NormalizedLatency <= 0 {
			t.Fatalf("episode stats should be positive: %+v", stats)
		}
		if len(stats.QueryLatencies) != len(train) {
			t.Errorf("episode should record one latency per query")
		}
		norms = append(norms, stats.NormalizedLatency)
	}
	// The last episode should not be dramatically worse than the first
	// (learning is noisy but must not diverge).
	if norms[len(norms)-1] > norms[0]*3 {
		t.Errorf("training diverged: first %.2f, last %.2f", norms[0], norms[len(norms)-1])
	}
}

func TestEvaluateHoldout(t *testing.T) {
	rig := newRig(t, "sqlite")
	train, test := rig.wl.Split(0.8, 1)
	if err := rig.neo.Bootstrap(train, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	expBefore := rig.neo.Experience.Len()
	total, perQuery, err := rig.neo.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 || len(perQuery) != len(test) {
		t.Errorf("evaluation results malformed: total=%f n=%d", total, len(perQuery))
	}
	if rig.neo.Experience.Len() != expBefore {
		t.Errorf("Evaluate must not add to the experience")
	}
}

func TestCostFunctions(t *testing.T) {
	rig := newRig(t, "postgres")
	q := rig.wl.Queries[0]
	rig.neo.SetBaseline(q.ID, 200)
	entry := Entry{Query: q, Latency: 100}
	if got := rig.neo.cost(entry); got != 100 {
		t.Errorf("workload cost = %f, want 100", got)
	}
	rig.neo.Config.Cost = RelativeCost
	if got := rig.neo.cost(entry); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("relative cost = %f, want 0.5", got)
	}
	// Without a baseline the relative cost falls back to latency.
	other := Entry{Query: rig.wl.Queries[1], Latency: 70}
	if got := rig.neo.cost(other); got != 70 {
		t.Errorf("relative cost without baseline = %f, want 70", got)
	}
	if WorkloadCost.String() != "workload" || RelativeCost.String() != "relative" {
		t.Errorf("cost function names wrong")
	}
	// SetBaseline ignores non-positive values.
	rig.neo.SetBaseline("zzz", 0)
	if _, ok := rig.neo.Baseline("zzz"); ok {
		t.Errorf("zero baseline should be ignored")
	}
}

func TestOptimizeGreedy(t *testing.T) {
	rig := newRig(t, "postgres")
	train, _ := rig.wl.Split(0.8, 1)
	if err := rig.neo.Bootstrap(train[:4], rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	q := train[0]
	p, res, err := rig.neo.OptimizeGreedy(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsComplete() || !res.HurryUp {
		t.Errorf("greedy optimization should produce a complete plan via hurry-up mode")
	}
}

func TestPredictNormalizedFinite(t *testing.T) {
	rig := newRig(t, "postgres")
	train, _ := rig.wl.Split(0.8, 1)
	if err := rig.neo.Bootstrap(train[:4], rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	q := train[0]
	p, _, err := rig.pg.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	v := rig.neo.PredictNormalized(q, p)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("normalized prediction should be finite, got %f", v)
	}
	if trees := rig.neo.EncodePlanTrees(p); len(trees) != 1 {
		t.Errorf("expected a single encoded tree for a complete plan")
	}
}

func TestBootstrapFromPlans(t *testing.T) {
	rig := newRig(t, "postgres")
	train, _ := rig.wl.Split(0.8, 1)
	var plans []*plan.Plan
	for _, q := range train[:4] {
		p, _, err := rig.pg.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, p)
	}
	if err := rig.neo.BootstrapFromPlans(plans); err != nil {
		t.Fatal(err)
	}
	if rig.neo.Experience.Len() != 4 {
		t.Errorf("experience should hold 4 entries")
	}
}

// TestNeoBeatsRandomBootstrapBaseline verifies the core learning property on
// a small scale: after bootstrapping from the expert and a few episodes, the
// plans Neo chooses are competitive with (not far worse than) the expert's
// own plans executed on the same engine.
func TestNeoCompetitiveWithExpertAfterTraining(t *testing.T) {
	rig := newRig(t, "postgres")
	train, _ := rig.wl.Split(0.8, 1)
	if err := rig.neo.Bootstrap(train, rig.expertFunc()); err != nil {
		t.Fatal(err)
	}
	for ep := 1; ep <= 5; ep++ {
		if _, err := rig.neo.RunEpisode(ep, train); err != nil {
			t.Fatal(err)
		}
	}
	// Compare Neo's chosen plans against the expert baseline on the training
	// queries (the paper's normalized-latency metric).
	var neoTotal, baseTotal float64
	for _, q := range train {
		p, _, err := rig.neo.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rig.eng.Executor().Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		neoTotal += rig.eng.CostResult(p.Roots[0], res.Nodes)
		base, _ := rig.neo.Baseline(q.ID)
		baseTotal += base
	}
	ratio := neoTotal / baseTotal
	if ratio > 2.0 {
		t.Errorf("after bootstrap + 5 episodes Neo should be within 2x of the expert, got %.2fx", ratio)
	}
}
