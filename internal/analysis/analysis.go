// Package analysis is neo-lint's analyzer driver: it loads and type-checks
// every package of the module (loader.go) and runs a set of repo-specific
// checks over them. The checks machine-check invariants this repository
// otherwise enforces only by parity tests after the fact — bit-identical
// seeded training (detrange, walltime), immutable scoring snapshots
// (frozenwrite), the frozen little-endian NEOCKPT1 wire format (wireendian)
// and mutex discipline (guardedby). Every finding is suppressible per site
// with a `//neo:lint-ok <check> <reason>` comment; strict mode additionally
// fails on suppressions that no longer suppress anything, so the allowlist
// cannot rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Check is one analyzer: a name (the handle suppressions and -checks use)
// and a function run once per loaded package.
type Check struct {
	// Name is the check's identifier, e.g. "detrange".
	Name string
	// Doc is a one-line description shown by `neo-lint -list`.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass)
}

// Checks returns all registered checks, in stable order.
func Checks() []*Check {
	return []*Check{detrangeCheck, frozenwriteCheck, walltimeCheck, wireendianCheck, guardedbyCheck}
}

// CheckNames returns the names of all registered checks.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Finding is one reported violation.
type Finding struct {
	// Pos locates the finding.
	Pos token.Position
	// Check names the check that produced it ("lint" for driver-level
	// findings: malformed or stale suppressions).
	Check string
	// Message describes the violation.
	Message string
}

// String formats a finding the way compilers do, so editors can jump to it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Check, f.Message)
}

// Config parameterizes the checks. The zero value checks nothing useful;
// DefaultConfig returns the repository's real invariants, and the fixture
// tests point the same checks at fixture packages and types.
type Config struct {
	// DeterminismPkgs lists the import paths of the determinism-critical
	// packages: seeded runs through them must be bit-identical, so detrange
	// and walltime apply only there.
	DeterminismPkgs []string
	// FrozenTypes lists fully-qualified struct types ("path/to/pkg.Type")
	// whose fields must never be assigned after construction.
	FrozenTypes []string
	// FrozenAllow lists fully-qualified functions ("path/to/pkg.Type.Func",
	// pointer receivers spelled without the star) that are designated
	// constructor/swap sites, allowed to write FrozenTypes fields.
	FrozenAllow []string
	// WirePkg is the one package allowed to touch encoding/binary's
	// little-endian primitives directly; everything else must go through
	// its helpers. binary.BigEndian and binary.NativeEndian are flagged
	// everywhere — FORMAT.md freezes the wire format as little-endian.
	WirePkg string
	// Strict additionally reports suppression comments that no longer
	// suppress any finding.
	Strict bool
	// EnabledChecks restricts which checks run (nil means all).
	EnabledChecks []string
}

// DefaultConfig returns the repository's production invariants.
func DefaultConfig() Config {
	return Config{
		DeterminismPkgs: []string{
			"neo/internal/nn",
			"neo/internal/treeconv",
			"neo/internal/valuenet",
			"neo/internal/core",
			"neo/internal/engine",
			"neo/internal/fastpath",
		},
		FrozenTypes: []string{
			"neo/internal/valuenet.Snapshot",
			"neo/internal/valuenet.netF32",
			"neo/internal/valuenet.netI8",
			"neo/internal/core.netSnapshot",
		},
		FrozenAllow: []string{
			// SnapshotPrecision is the constructor: it builds the frozen
			// predictor before publication.
			"neo/internal/valuenet.Network.SnapshotPrecision",
			// newNetSnapshot assembles the snapshot/scheduler pair that the
			// atomic swap publishes.
			"neo/internal/core.Neo.newNetSnapshot",
		},
		WirePkg: "neo/internal/wire",
	}
}

// Pass hands one package to one check and collects its findings, applying
// suppressions.
type Pass struct {
	Pkg   *Package
	Cfg   *Config
	check *Check
	sup   *suppressions
	out   *[]Finding
}

// Reportf records one finding at pos unless a matching suppression covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.sup.suppressed(p.check.Name, position) {
		return
	}
	*p.out = append(*p.out, Finding{Pos: position, Check: p.check.Name, Message: fmt.Sprintf(format, args...)})
}

// inDeterminismPkg reports whether the pass's package is one of the
// configured determinism-critical packages.
func (p *Pass) inDeterminismPkg() bool {
	for _, path := range p.Cfg.DeterminismPkgs {
		if p.Pkg.Path == path {
			return true
		}
	}
	return false
}

// Run executes the configured checks over the given packages and returns
// all findings sorted by position. Driver-level findings (malformed
// suppression comments and, in strict mode, stale suppressions) are
// reported under the check name "lint".
func Run(cfg Config, pkgs []*Package) []Finding {
	enabled := Checks()
	if cfg.EnabledChecks != nil {
		byName := make(map[string]*Check)
		for _, c := range Checks() {
			byName[c.Name] = c
		}
		enabled = nil
		for _, name := range cfg.EnabledChecks {
			if c, ok := byName[name]; ok {
				enabled = append(enabled, c)
			}
		}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		sup, malformed := collectSuppressions(pkg)
		findings = append(findings, malformed...)
		for _, check := range enabled {
			pass := &Pass{Pkg: pkg, Cfg: &cfg, check: check, sup: sup, out: &findings}
			check.Run(pass)
		}
		if cfg.Strict {
			findings = append(findings, sup.stale(cfg.EnabledChecks)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Check < findings[j].Check
	})
	return findings
}

// enclosingFuncName returns the fully-qualified name of the function
// declaration containing pos ("pkgpath.Func" or "pkgpath.Recv.Func", the
// receiver spelled without any pointer star), or "" at package level.
func enclosingFuncName(pkg *Package, pos token.Pos) string {
	for _, file := range pkg.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || pos < fn.Pos() || pos > fn.End() {
				continue
			}
			name := pkg.Path + "."
			if fn.Recv != nil && len(fn.Recv.List) > 0 {
				name += recvTypeName(fn.Recv.List[0].Type) + "."
			}
			return name + fn.Name.Name
		}
	}
	return ""
}

// recvTypeName extracts the bare receiver type name from a receiver type
// expression (*T, T, or generic T[P]).
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}
