package treeconv

import (
	"math/rand"
	"testing"
)

// randomTree builds a random binary tree with n nodes of dim-width vectors.
func randomTree(rng *rand.Rand, n, dim int) *Tree {
	if n <= 0 {
		return nil
	}
	data := make([]float64, dim)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	if n == 1 {
		return NewLeaf(data)
	}
	nl := rng.Intn(n)
	return NewNode(data, randomTree(rng, nl, dim), randomTree(rng, n-1-nl, dim))
}

func randomForest(rng *rand.Rand, trees, dim int) []*Tree {
	out := make([]*Tree, 0, trees)
	for i := 0; i < trees; i++ {
		out = append(out, randomTree(rng, 1+rng.Intn(9), dim))
	}
	return out
}

func TestForwardBatchMatchesPerTreeForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim = 6
	stack := NewStack([]int{dim, 10, 4}, rng)

	forests := [][]*Tree{
		randomForest(rng, 1, dim),
		randomForest(rng, 3, dim),
		{}, // empty forest
		randomForest(rng, 2, dim),
	}

	var bb BatchBuilder
	var scratch BatchScratch
	batch := bb.Build(forests, dim, func(_ int, n *Tree, row []float64) { copy(row, n.Data) })
	out := stack.ForwardBatch(batch, &scratch)
	pooled := PoolBatch(out, &scratch.Arena)

	outDim := 4
	for si, forest := range forests {
		// Reference: per-tree forward + per-tree pooling + cross-tree max
		// (empty forests pool to zero, as in the value network).
		want := make([]float64, outDim)
		for _, tree := range forest {
			p, _ := DynamicPool(stack.Forward(tree).Output())
			for i := range p {
				if tree == forest[0] || p[i] > want[i] {
					want[i] = p[i]
				}
			}
		}
		got := pooled[si*outDim : (si+1)*outDim]
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("sample %d channel %d: batch %v != per-tree %v", si, i, got[i], want[i])
			}
		}
	}
}

func TestBatchBuilderStructure(t *testing.T) {
	//      a
	//     / \
	//    b   c
	//   /
	//  d
	d := NewLeaf([]float64{4})
	b := NewNode([]float64{2}, d, nil)
	c := NewLeaf([]float64{3})
	a := NewNode([]float64{1}, b, c)

	var bb BatchBuilder
	batch := bb.Build([][]*Tree{{a}}, 1, func(_ int, n *Tree, row []float64) { copy(row, n.Data) })
	if batch.N != 4 || batch.Samples != 1 {
		t.Fatalf("N=%d Samples=%d, want 4 and 1", batch.N, batch.Samples)
	}
	// Pre-order: a(0), b(1), d(2), c(3).
	wantData := []float64{1, 2, 4, 3}
	for i, w := range wantData {
		if batch.Data[i] != w {
			t.Errorf("node %d data %v, want %v", i, batch.Data[i], w)
		}
	}
	wantLeft := []int{1, 2, -1, -1}
	wantRight := []int{3, -1, -1, -1}
	for i := range wantLeft {
		if batch.Left[i] != wantLeft[i] || batch.Right[i] != wantRight[i] {
			t.Errorf("node %d children (%d,%d), want (%d,%d)", i, batch.Left[i], batch.Right[i], wantLeft[i], wantRight[i])
		}
	}
}

func TestForwardBatchNoAllocationsWhenWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const dim = 5
	stack := NewStack([]int{dim, 8, 4}, rng)
	forests := [][]*Tree{randomForest(rng, 2, dim), randomForest(rng, 3, dim)}
	fill := func(_ int, n *Tree, row []float64) { copy(row, n.Data) }

	var bb BatchBuilder
	var scratch BatchScratch
	// Warm up.
	for i := 0; i < 2; i++ {
		batch := bb.Build(forests, dim, fill)
		out := stack.ForwardBatch(batch, &scratch)
		PoolBatch(out, &scratch.Arena)
		scratch.Reset()
	}
	allocs := testing.AllocsPerRun(20, func() {
		batch := bb.Build(forests, dim, fill)
		out := stack.ForwardBatch(batch, &scratch)
		PoolBatch(out, &scratch.Arena)
		scratch.Reset()
	})
	if allocs > 0 {
		t.Fatalf("warmed-up batched conv allocated %.1f times per run, want 0", allocs)
	}
}
