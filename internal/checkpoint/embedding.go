// Standalone embedding checkpoints: the same container format carrying only
// an "embedding" section. Row-vector models are pure functions of the
// database and the training configuration but are by far the slowest part of
// assembling an R-Vector system, so the experiment harness caches them on
// disk between runs.
package checkpoint

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"neo/internal/embedding"
)

// SaveEmbedding writes a container holding only the embedding model.
func SaveEmbedding(w io.Writer, m *embedding.Model) error {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return err
	}
	return writeContainer(w, []section{{name: sectionEmbedding, payload: buf.Bytes()}})
}

// LoadEmbedding reads a container written by SaveEmbedding (or any
// checkpoint containing an embedding section) and returns the model.
func LoadEmbedding(r io.Reader) (*embedding.Model, error) {
	secs, err := readContainer(r)
	if err != nil {
		return nil, err
	}
	payload, ok := secs[sectionEmbedding]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMissingSection, sectionEmbedding)
	}
	return embedding.LoadModel(bytes.NewReader(payload))
}

// SaveEmbeddingFile writes a standalone embedding checkpoint atomically
// (temp file + rename).
func SaveEmbeddingFile(path string, m *embedding.Model) error {
	return AtomicWriteFile(path, 0o644, func(w io.Writer) error {
		return SaveEmbedding(w, m)
	})
}

// LoadEmbeddingFile reads a standalone embedding checkpoint.
func LoadEmbeddingFile(path string) (*embedding.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEmbedding(f)
}
