package repro

import (
	"math"
	"math/rand"
	"testing"

	"neo/internal/valuenet"
)

// trainingSamples builds a minibatch shaped like one retraining step: 32
// construction states, most sharing the query's encoding slice (the dedup
// hot path), labelled with costs spanning orders of magnitude.
func trainingSamples(batchSize int) []valuenet.Sample {
	f := newScoringFixture(batchSize)
	rng := rand.New(rand.NewSource(7))
	samples := make([]valuenet.Sample, batchSize)
	for i := range samples {
		samples[i] = valuenet.Sample{
			Query:  f.queries[i],
			Plan:   f.forests[i],
			Target: math.Exp(rng.Float64() * 8),
		}
	}
	return samples
}

func trainingNet(workers int) *valuenet.Network {
	cfg := valuenet.DefaultConfig()
	cfg.TrainWorkers = workers
	net := valuenet.New(32, 24, cfg)
	net.FitTargetTransform([]float64{10, 100, 1000})
	return net
}

// BenchmarkBatchedTraining measures the tentpole speedup of the batched
// training pipeline: one gradient step over a 32-sample minibatch via the
// per-sample tape path versus the shared batched forward+backward pass
// (serially and sharded over data-parallel gradient workers; the worker
// variants produce bit-identical weights and only buy wall-clock time on
// multi-core hardware).
//
// Verify the speedup with:
//
//	go test -bench BenchmarkBatchedTraining -run '^$' .
func BenchmarkBatchedTraining(b *testing.B) {
	const batchSize = 32
	b.Run("per-sample", func(b *testing.B) {
		net := trainingNet(1)
		samples := trainingSamples(batchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.TrainBatchPerSample(samples)
		}
	})
	b.Run("batched", func(b *testing.B) {
		net := trainingNet(1)
		samples := trainingSamples(batchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.TrainBatch(samples)
		}
	})
	b.Run("batched-workers=4", func(b *testing.B) {
		net := trainingNet(4)
		samples := trainingSamples(batchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.TrainBatch(samples)
		}
	})
}
