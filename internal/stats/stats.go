// Package stats implements the classical statistics layer of the simulated
// engines: per-column equi-width histograms and distinct counts, and the
// textbook selectivity / join-cardinality estimation formulas that assume
// uniformity, independence and the principle of inclusion.
//
// These deliberately simplistic estimates play two roles in the
// reproduction: they feed the expert (Selinger-style) optimizers, and they
// provide the Histogram featurization of Section 3.2. Their errors on the
// correlated IMDB profile are what Neo learns to overcome.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"neo/internal/query"
	"neo/internal/schema"
	"neo/internal/storage"
)

// DefaultHistogramBuckets is the number of buckets in each column histogram.
const DefaultHistogramBuckets = 20

// topValuesCap bounds how many most-common string values a column's
// statistics retain.
const topValuesCap = 64

// ColumnStats summarises one column.
type ColumnStats struct {
	Table    string
	Column   string
	Type     schema.ColType
	NumRows  int
	Distinct int
	// MinInt/MaxInt bound integer columns (undefined for string columns).
	MinInt, MaxInt int64
	// Buckets is an equi-width histogram over [MinInt, MaxInt] for integer
	// columns; Buckets[i] counts rows falling in bucket i.
	Buckets []int
	// TopValues maps the most common string values to their frequencies.
	// Only populated for string columns (capped at topValuesCap entries,
	// highest frequencies first; ties kept deterministically by value).
	TopValues map[string]int
}

// TableStats summarises one table.
type TableStats struct {
	Table   string
	NumRows int
	Columns map[string]*ColumnStats
}

// Stats holds statistics for an entire database.
type Stats struct {
	tables map[string]*TableStats
}

// Build scans the database once and constructs statistics for every column.
func Build(db *storage.Database) (*Stats, error) {
	s := &Stats{tables: make(map[string]*TableStats)}
	for _, ts := range db.Catalog.Tables() {
		tab := db.Table(ts.Name)
		tstats := &TableStats{Table: ts.Name, NumRows: tab.NumRows(), Columns: make(map[string]*ColumnStats)}
		for _, col := range ts.Columns {
			cs, err := buildColumn(tab, ts.Name, col)
			if err != nil {
				return nil, err
			}
			tstats.Columns[col.Name] = cs
		}
		s.tables[ts.Name] = tstats
	}
	return s, nil
}

func buildColumn(tab *storage.Table, table string, col schema.Column) (*ColumnStats, error) {
	c := tab.Column(col.Name)
	if c == nil {
		return nil, fmt.Errorf("stats: missing column %s.%s", table, col.Name)
	}
	cs := &ColumnStats{Table: table, Column: col.Name, Type: col.Type, NumRows: c.Len()}
	cs.Distinct = tab.DistinctCount(col.Name)
	if col.Type == schema.IntType {
		if len(c.Ints) > 0 {
			cs.MinInt, cs.MaxInt = c.Ints[0], c.Ints[0]
			for _, v := range c.Ints {
				if v < cs.MinInt {
					cs.MinInt = v
				}
				if v > cs.MaxInt {
					cs.MaxInt = v
				}
			}
		}
		cs.Buckets = make([]int, DefaultHistogramBuckets)
		width := float64(cs.MaxInt-cs.MinInt+1) / float64(DefaultHistogramBuckets)
		if width <= 0 {
			width = 1
		}
		for _, v := range c.Ints {
			b := int(float64(v-cs.MinInt) / width)
			if b >= DefaultHistogramBuckets {
				b = DefaultHistogramBuckets - 1
			}
			if b < 0 {
				b = 0
			}
			cs.Buckets[b]++
		}
	} else {
		counts := make(map[string]int)
		for _, v := range c.Strs {
			counts[v]++
		}
		// Keep the actual most common values (the documented contract).
		// Ranging over the counts map here would keep a random 64-value
		// subset instead — which made string selectivities, and everything
		// downstream of them (expert plans, featurizations, training), vary
		// between identically-seeded builds. Ties break on the value so the
		// kept set is fully deterministic.
		type valueCount struct {
			value string
			n     int
		}
		all := make([]valueCount, 0, len(counts))
		for v, n := range counts {
			all = append(all, valueCount{v, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].value < all[j].value
		})
		if len(all) > topValuesCap {
			all = all[:topValuesCap]
		}
		cs.TopValues = make(map[string]int, len(all))
		for _, e := range all {
			cs.TopValues[e.value] = e.n
		}
	}
	return cs, nil
}

// Table returns statistics for the named table, or nil.
func (s *Stats) Table(name string) *TableStats { return s.tables[name] }

// Column returns statistics for the named column, or nil.
func (s *Stats) Column(table, column string) *ColumnStats {
	t := s.tables[table]
	if t == nil {
		return nil
	}
	return t.Columns[column]
}

// TableRows returns the row count of the named table (0 if unknown).
func (s *Stats) TableRows(table string) float64 {
	t := s.tables[table]
	if t == nil {
		return 0
	}
	return float64(t.NumRows)
}

// Selectivity estimates the fraction of rows of p.Table that satisfy p,
// using histogram buckets for range predicates on integers, top-value
// frequencies for string equality, and uniformity assumptions otherwise.
// The result is clamped to (0, 1].
func (s *Stats) Selectivity(p query.Predicate) float64 {
	cs := s.Column(p.Table, p.Column)
	if cs == nil || cs.NumRows == 0 {
		return 1.0
	}
	sel := 1.0
	switch {
	case cs.Type == schema.IntType && p.Value.Kind == schema.IntType:
		sel = s.intSelectivity(cs, p)
	case cs.Type == schema.StringType:
		sel = s.stringSelectivity(cs, p)
	}
	return clampSel(sel)
}

func (s *Stats) intSelectivity(cs *ColumnStats, p query.Predicate) float64 {
	n := float64(cs.NumRows)
	switch p.Op {
	case query.Eq:
		if cs.Distinct == 0 {
			return 1.0
		}
		return 1.0 / float64(cs.Distinct)
	case query.Ne:
		if cs.Distinct == 0 {
			return 1.0
		}
		return 1.0 - 1.0/float64(cs.Distinct)
	case query.Lt, query.Le, query.Gt, query.Ge:
		frac := s.histogramFractionBelow(cs, p.Value.Int)
		switch p.Op {
		case query.Lt, query.Le:
			return frac
		default:
			return 1.0 - frac
		}
	case query.Like:
		return 0.1
	}
	_ = n
	return 1.0
}

// histogramFractionBelow estimates the fraction of rows with value < v
// using linear interpolation within the containing bucket.
func (s *Stats) histogramFractionBelow(cs *ColumnStats, v int64) float64 {
	if cs.NumRows == 0 || len(cs.Buckets) == 0 {
		return 0.5
	}
	if v <= cs.MinInt {
		return 0
	}
	if v > cs.MaxInt {
		return 1
	}
	width := float64(cs.MaxInt-cs.MinInt+1) / float64(len(cs.Buckets))
	if width <= 0 {
		width = 1
	}
	pos := float64(v-cs.MinInt) / width
	bucket := int(pos)
	if bucket >= len(cs.Buckets) {
		bucket = len(cs.Buckets) - 1
	}
	below := 0
	for i := 0; i < bucket; i++ {
		below += cs.Buckets[i]
	}
	within := (pos - float64(bucket)) * float64(cs.Buckets[bucket])
	return (float64(below) + within) / float64(cs.NumRows)
}

func (s *Stats) stringSelectivity(cs *ColumnStats, p query.Predicate) float64 {
	switch p.Op {
	case query.Eq:
		if n, ok := cs.TopValues[p.Value.Str]; ok {
			return float64(n) / float64(cs.NumRows)
		}
		if cs.Distinct > 0 {
			return 1.0 / float64(cs.Distinct)
		}
		return 0.01
	case query.Ne:
		return 1.0 - s.stringSelectivity(cs, query.Predicate{Table: p.Table, Column: p.Column, Op: query.Eq, Value: p.Value})
	case query.Like:
		// PostgreSQL-style fixed guess for pattern matches; deliberately
		// ignorant of the actual pattern (this is a major error source the
		// paper calls out).
		return 0.05
	default:
		return 0.33
	}
}

// ScanSelectivity estimates the combined selectivity of a conjunction of
// predicates on one table under the independence assumption.
func (s *Stats) ScanSelectivity(table string, preds []query.Predicate) float64 {
	sel := 1.0
	for _, p := range preds {
		if p.Table != table {
			continue
		}
		sel *= s.Selectivity(p)
	}
	return clampSel(sel)
}

// EstimateScanRows estimates the output cardinality of scanning a table with
// the given predicates.
func (s *Stats) EstimateScanRows(table string, preds []query.Predicate) float64 {
	return math.Max(1, s.TableRows(table)*s.ScanSelectivity(table, preds))
}

// EstimateJoinRows estimates the cardinality of an equi-join between two
// inputs using the textbook formula |L|·|R| / max(d(L.k), d(R.k)) (principle
// of inclusion), where d() are distinct counts of the join columns.
func (s *Stats) EstimateJoinRows(leftRows, rightRows float64, j query.JoinPredicate) float64 {
	dl := s.distinctOrDefault(j.LeftTable, j.LeftColumn)
	dr := s.distinctOrDefault(j.RightTable, j.RightColumn)
	d := math.Max(dl, dr)
	if d < 1 {
		d = 1
	}
	est := leftRows * rightRows / d
	return math.Max(1, est)
}

func (s *Stats) distinctOrDefault(table, column string) float64 {
	cs := s.Column(table, column)
	if cs == nil || cs.Distinct == 0 {
		return 1
	}
	return float64(cs.Distinct)
}

// ErrorModel perturbs cardinality estimates by a configurable number of
// orders of magnitude; it implements the error-injection protocol of the
// paper's Figure 14 robustness experiment.
type ErrorModel struct {
	// OrdersOfMagnitude is the maximum absolute log10 error to inject
	// (e.g. 2 means estimates may be off by up to 100x in either direction).
	OrdersOfMagnitude float64
	mu                sync.Mutex
	rng               *rand.Rand
}

// NewErrorModel creates an error model with the given magnitude and seed.
func NewErrorModel(orders float64, seed int64) *ErrorModel {
	return &ErrorModel{OrdersOfMagnitude: orders, rng: rand.New(rand.NewSource(seed))}
}

// Perturb applies a random multiplicative error of up to the configured
// number of orders of magnitude to the estimate. Safe for concurrent use
// (concurrent planners reach it through the featurizer).
func (e *ErrorModel) Perturb(estimate float64) float64 {
	if e == nil || e.OrdersOfMagnitude == 0 {
		return estimate
	}
	e.mu.Lock()
	exp := (e.rng.Float64()*2 - 1) * e.OrdersOfMagnitude
	e.mu.Unlock()
	return math.Max(1, estimate*math.Pow(10, exp))
}

func clampSel(s float64) float64 {
	if s <= 0 || math.IsNaN(s) {
		return 1e-6
	}
	if s > 1 {
		return 1
	}
	return s
}
