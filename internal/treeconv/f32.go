// Float32 (and int8) batched tree convolution for the frozen inference path.
// The float64 batched kernels in batch.go walk node-by-node, dotting each
// parent/left/right triangle against row-major weights; the kernels here
// restructure the same computation as GEMMs over packed panels (nn.PackedF32)
// so the whole batch of nodes runs through the fused-multiply-add micro-
// kernel:
//
//   - each layer's three filter matrices are packed once, at snapshot time,
//     as one panel matrix over the concatenated K = [EP; EL; ER] axis;
//   - per batch, nodes are split once into leaves and interior nodes; leaves
//     gather only their own row and run the GEMM over the EP K-prefix
//     (keeping the float64 path's leaf-skip optimisation), interior nodes
//     gather [x; left; right] rows (zeros for an absent child) and run the
//     full K;
//   - outputs scatter back to node order and the leaky rectifier runs once
//     over the whole activation matrix.
//
// The int8 stack mirrors the float32 one, quantizing each layer's input
// tensor with a calibrated per-layer scale before the int8 GEMM.
package treeconv

import (
	"math"

	"neo/internal/nn"
)

// Batch32 is the float32 twin of Batch: node i carries
// Data[i*Channels:(i+1)*Channels] and the index slices have the same meaning.
type Batch32 struct {
	Channels int
	N        int
	Samples  int
	Data     []float32
	Left     []int
	Right    []int
	Sample   []int
}

// Row returns node i's feature vector.
func (b *Batch32) Row(i int) []float32 {
	return b.Data[i*b.Channels : (i+1)*b.Channels]
}

// BatchBuilder32 flattens forests into a Batch32, reusing buffers across
// calls. The fill callback converts node vectors to float32 — this is the
// float64→float32 input-encode boundary of the scoring pipeline.
type BatchBuilder32 struct {
	batch Batch32
	next  int
}

// Build mirrors BatchBuilder.Build with float32 rows.
func (bb *BatchBuilder32) Build(forests [][]*Tree, channels int, fill func(sample int, node *Tree, row []float32)) *Batch32 {
	n := 0
	for _, f := range forests {
		for _, t := range f {
			n += t.NumNodes()
		}
	}
	b := &bb.batch
	b.Channels = channels
	b.N = n
	b.Samples = len(forests)
	b.Data = growFloats32(b.Data, n*channels)
	b.Left = growInts(b.Left, n)
	b.Right = growInts(b.Right, n)
	b.Sample = growInts(b.Sample, n)
	bb.next = 0
	for si, f := range forests {
		for _, t := range f {
			if t != nil {
				bb.addTree(t, si, fill)
			}
		}
	}
	return b
}

func (bb *BatchBuilder32) addTree(t *Tree, sample int, fill func(sample int, node *Tree, row []float32)) int {
	b := &bb.batch
	i := bb.next
	bb.next++
	fill(sample, t, b.Row(i))
	b.Sample[i] = sample
	if t.Left != nil {
		b.Left[i] = bb.addTree(t.Left, sample, fill)
	} else {
		b.Left[i] = -1
	}
	if t.Right != nil {
		b.Right[i] = bb.addTree(t.Right, sample, fill)
	} else {
		b.Right[i] = -1
	}
	return i
}

// BatchScratch32 holds the reusable storage of a float32 (or int8) stack
// forward: the activation arena, the quantized-activation arena, the
// leaf/interior node partition of the current batch, and the ping-pong batch
// headers. Not safe for concurrent use; keep one per goroutine.
type BatchScratch32 struct {
	Arena  nn.Arena32
	QArena nn.ArenaI8
	leaf   []int // node indices with no children
	full   []int // node indices with at least one child
	ping   Batch32
	pong   Batch32
}

// Reset recycles the scratch for the next forward pass.
func (s *BatchScratch32) Reset() {
	s.Arena.Reset()
	s.QArena.Reset()
}

// partition splits the batch's nodes into leaves and interior nodes once per
// forward pass; every layer reuses the split (structure does not change
// between layers).
func (s *BatchScratch32) partition(b *Batch32) {
	s.leaf = s.leaf[:0]
	s.full = s.full[:0]
	for n := 0; n < b.N; n++ {
		if b.Left[n] < 0 && b.Right[n] < 0 {
			s.leaf = append(s.leaf, n)
		} else {
			s.full = append(s.full, n)
		}
	}
}

// LayerF32 is one packed tree-convolution layer: the three filter matrices
// packed over the concatenated K = [EP; EL; ER] axis, EP first so the leaf
// kernel can run the GEMM over the EP K-prefix alone.
type LayerF32 struct {
	In, Out int
	W       nn.PackedF32
	Alpha   float32
}

// StackF32 is a frozen float32 tree-convolution stack, packed once from
// trained float64 weights. Immutable after construction; safe for concurrent
// use with per-goroutine scratch.
type StackF32 struct {
	Layers []*LayerF32
}

// NewStackF32 packs a trained stack for float32 inference.
func NewStackF32(s *Stack) *StackF32 {
	out := &StackF32{}
	for _, l := range s.Layers {
		out.Layers = append(out.Layers, &LayerF32{
			In:  l.InChannels,
			Out: l.OutChannels,
			W: nn.PackF32(l.OutChannels, l.Bias.Value,
				[]int{l.InChannels, l.InChannels, l.InChannels},
				l.EP.Value, l.EL.Value, l.ER.Value),
			Alpha: float32(l.Act.Alpha),
		})
	}
	return out
}

// Bytes returns the packed footprint in bytes.
func (s *StackF32) Bytes() int {
	total := 0
	for _, l := range s.Layers {
		total += l.W.Bytes()
	}
	return total
}

// ForwardBatch runs every packed layer over the flattened batch. The returned
// batch aliases scratch storage and is valid until the next Reset.
func (s *StackF32) ForwardBatch(in *Batch32, scratch *BatchScratch32) *Batch32 {
	return s.forward(in, scratch, nil)
}

// ForwardBatchObserve is ForwardBatch plus a per-channel absmax observer:
// obs[l][c] is raised to at least the largest |x| in channel c of layer l's
// input activations. A node's own row and its appearance as a child carry
// the same values, so the ic-wide column maxima cover all three segments of
// the concatenated [x; left; right] GEMM input. Used by the int8 calibration
// pass.
func (s *StackF32) ForwardBatchObserve(in *Batch32, scratch *BatchScratch32, obs [][]float32) *Batch32 {
	return s.forward(in, scratch, obs)
}

func (s *StackF32) forward(in *Batch32, scratch *BatchScratch32, obs [][]float32) *Batch32 {
	scratch.partition(in)
	cur, out := in, &scratch.ping
	for li, l := range s.Layers {
		if obs != nil {
			nn.AbsMaxCols(cur.Data, cur.N, cur.Channels, obs[li])
		}
		l.forwardBatchInto(cur, out, scratch)
		if out == &scratch.ping {
			cur, out = &scratch.ping, &scratch.pong
		} else {
			cur, out = &scratch.pong, &scratch.ping
		}
	}
	return cur
}

// forwardBatchInto convolves one packed layer: gather → GEMM → scatter for
// the leaf and interior node groups, then one activation pass over the whole
// output matrix.
func (l *LayerF32) forwardBatchInto(in, out *Batch32, scratch *BatchScratch32) {
	ic, oc := l.In, l.Out
	a := &scratch.Arena
	out.Channels = oc
	out.N = in.N
	out.Samples = in.Samples
	out.Left = in.Left
	out.Right = in.Right
	out.Sample = in.Sample
	out.Data = a.Alloc(in.N * oc)

	// Leaves: only the parent filter contributes, so gather just the node row
	// and run the GEMM over the EP K-prefix (kUsed = ic of K = 3ic).
	if nl := len(scratch.leaf); nl > 0 {
		ga := a.Alloc(nl * ic)
		for gi, n := range scratch.leaf {
			copy(ga[gi*ic:(gi+1)*ic], in.Row(n))
		}
		ya := a.Alloc(nl * oc)
		l.W.Gemm(ga, nl, ic, ya)
		for gi, n := range scratch.leaf {
			copy(out.Data[n*oc:(n+1)*oc], ya[gi*oc:(gi+1)*oc])
		}
	}

	// Interior nodes: gather [x; left; right] (zeros for an absent child of a
	// one-child node) and run the full K.
	if nf := len(scratch.full); nf > 0 {
		k := 3 * ic
		ga := a.Alloc(nf * k)
		for gi, n := range scratch.full {
			row := ga[gi*k : (gi+1)*k]
			copy(row[:ic], in.Row(n))
			if li := in.Left[n]; li >= 0 {
				copy(row[ic:2*ic], in.Row(li))
			} else {
				zero32(row[ic : 2*ic])
			}
			if ri := in.Right[n]; ri >= 0 {
				copy(row[2*ic:], in.Row(ri))
			} else {
				zero32(row[2*ic:])
			}
		}
		ya := a.Alloc(nf * oc)
		l.W.Gemm(ga, nf, k, ya)
		for gi, n := range scratch.full {
			copy(out.Data[n*oc:(n+1)*oc], ya[gi*oc:(gi+1)*oc])
		}
	}

	nn.LeakyReLUF32(out.Data[:in.N*oc], l.Alpha)
}

// PoolBatch32 dynamic-pools every sample of the batch, mirroring PoolBatch:
// row s of the result is the elementwise maximum over sample s's node
// vectors; empty samples pool to zero rows.
func PoolBatch32(b *Batch32, a *nn.Arena32) []float32 {
	dim := b.Channels
	pooled := a.Alloc(b.Samples * dim)
	negInf := float32(math.Inf(-1))
	for i := range pooled {
		pooled[i] = negInf
	}
	for n := 0; n < b.N; n++ {
		row := pooled[b.Sample[n]*dim : (b.Sample[n]+1)*dim]
		for i, v := range b.Row(n) {
			if v > row[i] {
				row[i] = v
			}
		}
	}
	for i := range pooled {
		if pooled[i] == negInf {
			pooled[i] = 0
		}
	}
	return pooled
}

// LayerI8 is one int8-quantized tree-convolution layer with its calibrated
// per-channel input quantization multipliers.
type LayerI8 struct {
	In, Out int
	W       nn.PackedI8
	InInv   []float32 // per input channel: 127/absmax
	Alpha   float32
}

// StackI8 is a frozen int8 tree-convolution stack. Immutable after
// construction; safe for concurrent use with per-goroutine scratch.
type StackI8 struct {
	Layers []*LayerI8
}

// NewStackI8 quantizes a trained stack. calibAbs[l] holds the calibrated
// per-channel absmax of layer l's input activations (from
// StackF32.ForwardBatchObserve); non-positive entries fall back to absmax 1.
// The ic-wide channel scales are replicated across the three segments of the
// concatenated [x; left; right] K axis — a child row is the same tensor as
// its own-node row — so the leaf kernel's EP K-prefix stays consistent.
func NewStackI8(s *Stack, calibAbs [][]float32) *StackI8 {
	out := &StackI8{}
	for li, l := range s.Layers {
		ic := l.InChannels
		var abs []float32
		if li < len(calibAbs) {
			abs = calibAbs[li]
		}
		abs = sanitizeChanAbs(abs, ic)
		chanAbs := make([]float32, 3*ic)
		inv := make([]float32, ic)
		for c, a := range abs {
			chanAbs[c], chanAbs[ic+c], chanAbs[2*ic+c] = a, a, a
			inv[c] = 127 / a
		}
		out.Layers = append(out.Layers, &LayerI8{
			In:  ic,
			Out: l.OutChannels,
			W: nn.PackI8(l.OutChannels, l.Bias.Value,
				[]int{ic, ic, ic}, chanAbs,
				l.EP.Value, l.EL.Value, l.ER.Value),
			InInv: inv,
			Alpha: float32(l.Act.Alpha),
		})
	}
	return out
}

// sanitizeChanAbs replaces non-positive calibrated channel absmaxes with 1,
// mirroring nn's quantization fallback.
func sanitizeChanAbs(abs []float32, k int) []float32 {
	out := make([]float32, k)
	for c := range out {
		a := float32(0)
		if c < len(abs) {
			a = abs[c]
		}
		if !(a > 0) {
			a = 1
		}
		out[c] = a
	}
	return out
}

// Bytes returns the packed footprint in bytes.
func (s *StackI8) Bytes() int {
	total := 0
	for _, l := range s.Layers {
		total += l.W.Bytes() + 4*len(l.InInv)
	}
	return total
}

// ForwardBatch runs the quantized stack over the flattened batch: each layer
// quantizes its whole input tensor once with the calibrated scale, gathers
// int8 rows per node group, and accumulates in int32.
func (s *StackI8) ForwardBatch(in *Batch32, scratch *BatchScratch32) *Batch32 {
	scratch.partition(in)
	cur, out := in, &scratch.ping
	for _, l := range s.Layers {
		l.forwardBatchInto(cur, out, scratch)
		if out == &scratch.ping {
			cur, out = &scratch.ping, &scratch.pong
		} else {
			cur, out = &scratch.pong, &scratch.ping
		}
	}
	return cur
}

func (l *LayerI8) forwardBatchInto(in, out *Batch32, scratch *BatchScratch32) {
	ic, oc := l.In, l.Out
	a := &scratch.Arena
	qa := &scratch.QArena
	out.Channels = oc
	out.N = in.N
	out.Samples = in.Samples
	out.Left = in.Left
	out.Right = in.Right
	out.Sample = in.Sample
	out.Data = a.Alloc(in.N * oc)

	// Quantize the whole layer input once (per-channel scales), then gather
	// int8 rows per group. Gathered rows keep the kernel's padded strides:
	// the quantized tensor's [ic, icp) gutter is zero, so copying whole
	// padded rows preserves the zero padding the tail-free GEMM relies on.
	icp := nn.PadI8(ic)
	xq := qa.Alloc(in.N * icp)
	nn.QuantizeRows(xq, in.Data, in.N, ic, l.InInv)

	if nl := len(scratch.leaf); nl > 0 {
		gq := qa.Alloc(nl * icp)
		for gi, n := range scratch.leaf {
			copy(gq[gi*icp:(gi+1)*icp], xq[n*icp:(n+1)*icp])
		}
		ya := a.Alloc(nl * oc)
		l.W.Gemm(gq, nl, ic, ya)
		for gi, n := range scratch.leaf {
			copy(out.Data[n*oc:(n+1)*oc], ya[gi*oc:(gi+1)*oc])
		}
	}

	if nf := len(scratch.full); nf > 0 {
		k := 3 * ic
		kp := nn.PadI8(k)
		gq := qa.Alloc(nf * kp)
		for gi, n := range scratch.full {
			row := gq[gi*kp : (gi+1)*kp]
			copy(row[:ic], xq[n*icp:n*icp+ic])
			if li := in.Left[n]; li >= 0 {
				copy(row[ic:2*ic], xq[li*icp:li*icp+ic])
			} else {
				zeroI8(row[ic : 2*ic])
			}
			if ri := in.Right[n]; ri >= 0 {
				copy(row[2*ic:3*ic], xq[ri*icp:ri*icp+ic])
			} else {
				zeroI8(row[2*ic : 3*ic])
			}
			zeroI8(row[3*ic:])
		}
		ya := a.Alloc(nf * oc)
		l.W.Gemm(gq, nf, k, ya)
		for gi, n := range scratch.full {
			copy(out.Data[n*oc:(n+1)*oc], ya[gi*oc:(gi+1)*oc])
		}
	}

	nn.LeakyReLUF32(out.Data[:in.N*oc], l.Alpha)
}

func zero32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

func zeroI8(s []int8) {
	for i := range s {
		s[i] = 0
	}
}

func growFloats32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}
