package repro

import (
	"testing"

	"neo/internal/bench"
)

// BenchmarkFusedServing measures the cross-request inference scheduler on
// the scoring traffic of 8 concurrent plan searches stampeding over hot
// query structures (the cache-cold window right after a retraining swap):
// private per-request scoring, where every request pays its own forward
// passes against the shared snapshot, versus scheduler-backed serving, where
// co-resident submissions fuse into shared passes and identical rows are
// deduplicated and memoised over the same immutable weights. Fused and
// private scoring are bit-identical per row (locked down by the sched, core
// and serve test suites); the scheduler buys pure throughput. The fused-f32
// variant replays the same traffic against a float32 snapshot (the
// neo-serve default), stacking the packed-panel GEMM kernels on top of
// fusion. The committed BENCH_serve.json baseline and CI's bench-gate
// enforce that fused serving stays >= 1.5x over private, float64 and
// float32 alike.
//
// Verify the speedup with:
//
//	go test -bench BenchmarkFusedServing -run '^$' .
func BenchmarkFusedServing(b *testing.B) {
	private, fused, fusedF32 := bench.ServingBenchmarks()
	b.Run("private", private)
	b.Run("fused", fused)
	b.Run("fused-f32", fusedF32)
}
