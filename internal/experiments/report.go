package experiments

import (
	"fmt"
	"strings"
)

// Report is the tabular output of one experiment, printable as a
// fixed-width table mirroring the corresponding table or figure of the
// paper.
type Report struct {
	// Name is the experiment identifier (e.g. "figure9").
	Name string
	// Title describes what the experiment reproduces.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, already formatted as strings.
	Rows [][]string
	// Notes records caveats and observations (also summarised in
	// EXPERIMENTS.md).
	Notes []string
}

// AddRow appends a row, formatting each value with %v (floats with 3
// decimals).
func (r *Report) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case float32:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.Name, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
