// Correlated predicates: the motivating scenario of Section 5 of the paper.
//
// The IMDB-like database correlates movie genres with keywords ("romance"
// movies carry the keyword "love" far more often than "horror" movies do).
// Histogram-based estimators assume independence and therefore misjudge the
// five-way join of Figure 8, while the learned row-vector embedding places
// correlated values close together. This example reproduces Table 2's
// similarity-vs-cardinality comparison and then shows the plans the expert
// and Neo pick for the correlated query.
//
// Run with:
//
//	go run ./examples/correlated_predicates
package main

import (
	"fmt"
	"log"

	"neo/pkg/neo"
)

func main() {
	sys, err := neo.Open(neo.Config{
		Dataset:  "imdb",
		Engine:   "postgres",
		Encoding: neo.RVector,
		Scale:    0.5,
		Seed:     7,
		Episodes: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The query of Figure 8: movies whose genre matches "romance" and whose
	// keyword matches "love".
	build := func(keyword, genre string) *neo.Query {
		return neo.NewQuery("figure8-"+keyword+"-"+genre,
			[]string{"title", "movie_keyword", "keyword", "movie_info", "info_type"},
			[]neo.JoinPredicate{
				{LeftTable: "movie_keyword", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
				{LeftTable: "movie_keyword", LeftColumn: "keyword_id", RightTable: "keyword", RightColumn: "id"},
				{LeftTable: "movie_info", LeftColumn: "movie_id", RightTable: "title", RightColumn: "id"},
				{LeftTable: "movie_info", LeftColumn: "info_type_id", RightTable: "info_type", RightColumn: "id"},
			},
			[]neo.Predicate{
				{Table: "info_type", Column: "id", Op: neo.Eq, Value: neo.IntValue(3)},
				{Table: "keyword", Column: "keyword", Op: neo.Like, Value: neo.StringValue(keyword)},
				{Table: "movie_info", Column: "info", Op: neo.Like, Value: neo.StringValue(genre)},
			})
	}

	fmt.Println("true cardinalities of keyword × genre combinations (Table 2):")
	for _, pair := range [][2]string{{"love", "romance"}, {"love", "horror"}, {"fight", "action"}, {"fight", "romance"}} {
		card, err := sys.TrueCardinality(build(pair[0], pair[1]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  keyword %-6s × genre %-8s -> %6.0f rows\n", pair[0], pair[1], card)
	}

	// Train Neo briefly on a workload that includes correlated queries.
	wl, err := sys.GenerateWorkload(16)
	if err != nil {
		log.Fatal(err)
	}
	train, _ := wl.Split(1.0, 1)
	if err := sys.Bootstrap(train); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Train(train); err != nil {
		log.Fatal(err)
	}

	// Compare plans for the correlated query.
	q := build("love", "romance")
	expertPlan, err := sys.ExpertPlan(q)
	if err != nil {
		log.Fatal(err)
	}
	expertLat, err := sys.Execute(expertPlan)
	if err != nil {
		log.Fatal(err)
	}
	neoPlan, _, err := sys.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	neoLat, err := sys.Execute(neoPlan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplans for the correlated query (keyword LIKE 'love', genre LIKE 'romance'):")
	fmt.Printf("  expert (PostgreSQL-profile): %s\n    simulated latency %.2f ms\n", expertPlan, expertLat)
	fmt.Printf("  neo:                         %s\n    simulated latency %.2f ms\n", neoPlan, neoLat)
	if neoLat < expertLat {
		fmt.Printf("  -> Neo's plan is %.0f%% faster\n", 100*(1-neoLat/expertLat))
	} else {
		fmt.Printf("  -> Neo's plan is %.0f%% slower (train longer or use more episodes)\n", 100*(neoLat/expertLat-1))
	}
}
