// Package query models the project-select-equijoin-aggregate queries that
// Neo optimizes: the set of base relations, the equi-join predicates
// connecting them (the join graph), and the single-table column predicates.
//
// This is the "query-dependent but plan-independent" information of
// Section 3 of the paper; package feature turns it into the query-level
// encoding.
package query

import (
	"fmt"
	"sort"
	"strings"

	"neo/internal/schema"
	"neo/internal/storage"
)

// CmpOp is a comparison operator usable in a column predicate.
type CmpOp int

const (
	// Eq is equality (=).
	Eq CmpOp = iota
	// Ne is inequality (<>).
	Ne
	// Lt is less-than (<).
	Lt
	// Le is less-than-or-equal (<=).
	Le
	// Gt is greater-than (>).
	Gt
	// Ge is greater-than-or-equal (>=).
	Ge
	// Like is a substring match (ILIKE '%v%').
	Like
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Like:
		return "LIKE"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Predicate is a single-table filter of the form table.column OP value.
type Predicate struct {
	Table  string
	Column string
	Op     CmpOp
	Value  storage.Value
}

// String implements fmt.Stringer.
func (p Predicate) String() string {
	return fmt.Sprintf("%s.%s %s %s", p.Table, p.Column, p.Op, p.Value)
}

// Matches reports whether the given cell value satisfies the predicate.
func (p Predicate) Matches(v storage.Value) bool {
	switch p.Op {
	case Eq:
		return v.Equal(p.Value)
	case Ne:
		return !v.Equal(p.Value)
	case Lt:
		return v.Less(p.Value)
	case Le:
		return v.Less(p.Value) || v.Equal(p.Value)
	case Gt:
		return p.Value.Less(v)
	case Ge:
		return p.Value.Less(v) || v.Equal(p.Value)
	case Like:
		return strings.Contains(strings.ToLower(v.String()), strings.ToLower(p.Value.String()))
	default:
		return false
	}
}

// JoinPredicate is an equi-join predicate left.column = right.column.
type JoinPredicate struct {
	LeftTable   string
	LeftColumn  string
	RightTable  string
	RightColumn string
}

// String implements fmt.Stringer.
func (j JoinPredicate) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", j.LeftTable, j.LeftColumn, j.RightTable, j.RightColumn)
}

// Connects reports whether the join predicate joins the two given tables,
// in either direction.
func (j JoinPredicate) Connects(a, b string) bool {
	return (j.LeftTable == a && j.RightTable == b) || (j.LeftTable == b && j.RightTable == a)
}

// Touches reports whether the join predicate involves the given table.
func (j JoinPredicate) Touches(t string) bool {
	return j.LeftTable == t || j.RightTable == t
}

// Query is a select-project-equijoin-aggregate query over a set of base
// relations.
type Query struct {
	// ID identifies the query within its workload (e.g. "job-17a").
	ID string
	// Relations are the base relation names, in a canonical (sorted) order.
	Relations []string
	// Joins are the equi-join predicates.
	Joins []JoinPredicate
	// Predicates are the single-table filters.
	Predicates []Predicate
}

// New builds a query, canonicalising the relation order.
func New(id string, relations []string, joins []JoinPredicate, preds []Predicate) *Query {
	rels := append([]string(nil), relations...)
	sort.Strings(rels)
	return &Query{ID: id, Relations: rels, Joins: joins, Predicates: preds}
}

// NumJoins returns the number of join predicates in the query.
func (q *Query) NumJoins() int { return len(q.Joins) }

// Signature returns a canonical fingerprint of the query's structure —
// relations, join predicates and column predicates, each in sorted order —
// independent of the query's ID and of the order predicates were supplied
// in. Two queries with equal signatures have the same plan search space and
// the same optimal plan, which is what plan caches key on.
func (q *Query) Signature() string {
	// New canonicalises relation order, but literal Query construction can
	// bypass it — sort a copy so the signature never depends on it.
	rels := append([]string(nil), q.Relations...)
	sort.Strings(rels)
	joins := make([]string, len(q.Joins))
	for i, j := range q.Joins {
		l, r := j.LeftTable+"."+j.LeftColumn, j.RightTable+"."+j.RightColumn
		if r < l {
			l, r = r, l
		}
		joins[i] = l + "=" + r
	}
	sort.Strings(joins)
	preds := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		// Quote the value: raw values may contain the separator characters
		// used below, and a collision here would make a plan cache serve the
		// wrong plan.
		preds[i] = fmt.Sprintf("%s.%s %s %q", p.Table, p.Column, p.Op, p.Value.String())
	}
	sort.Strings(preds)
	return strings.Join(rels, ",") + "|" + strings.Join(joins, "&") + "|" + strings.Join(preds, "&")
}

// HasRelation reports whether the query references the given relation.
func (q *Query) HasRelation(name string) bool {
	for _, r := range q.Relations {
		if r == name {
			return true
		}
	}
	return false
}

// PredicatesOn returns the column predicates on the given relation.
func (q *Query) PredicatesOn(table string) []Predicate {
	var out []Predicate
	for _, p := range q.Predicates {
		if p.Table == table {
			out = append(out, p)
		}
	}
	return out
}

// JoinsBetween returns all join predicates connecting any relation in the
// left set with any relation in the right set.
func (q *Query) JoinsBetween(left, right map[string]bool) []JoinPredicate {
	var out []JoinPredicate
	for _, j := range q.Joins {
		if (left[j.LeftTable] && right[j.RightTable]) || (left[j.RightTable] && right[j.LeftTable]) {
			out = append(out, j)
		}
	}
	return out
}

// Connected reports whether a join predicate exists between the two sets of
// relations.
func (q *Query) Connected(left, right map[string]bool) bool {
	return len(q.JoinsBetween(left, right)) > 0
}

// JoinGraph returns the symmetric adjacency matrix of the join graph over
// the catalog's full relation ordering: entry [i][j] is true when the query
// joins catalog relation i with catalog relation j. Relations not used by
// the query have empty rows/columns, exactly as in Figure 3 of the paper.
func (q *Query) JoinGraph(cat *schema.Catalog) [][]bool {
	n := cat.NumRelations()
	g := make([][]bool, n)
	for i := range g {
		g[i] = make([]bool, n)
	}
	for _, j := range q.Joins {
		a := cat.TableIndex(j.LeftTable)
		b := cat.TableIndex(j.RightTable)
		if a < 0 || b < 0 {
			continue
		}
		g[a][b] = true
		g[b][a] = true
	}
	return g
}

// Validate checks that every relation, join predicate and column predicate
// references objects that exist in the catalog and that the join graph is
// connected (so a plan joining all relations without cross products exists).
func (q *Query) Validate(cat *schema.Catalog) error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("query %s: no relations", q.ID)
	}
	rels := make(map[string]bool, len(q.Relations))
	for _, r := range q.Relations {
		if _, ok := cat.Table(r); !ok {
			return fmt.Errorf("query %s: unknown relation %q", q.ID, r)
		}
		if rels[r] {
			return fmt.Errorf("query %s: duplicate relation %q (self-joins are not supported)", q.ID, r)
		}
		rels[r] = true
	}
	for _, j := range q.Joins {
		for _, side := range []struct{ t, c string }{
			{j.LeftTable, j.LeftColumn}, {j.RightTable, j.RightColumn},
		} {
			if !rels[side.t] {
				return fmt.Errorf("query %s: join predicate %s references relation %q not in FROM", q.ID, j, side.t)
			}
			tab, _ := cat.Table(side.t)
			if _, ok := tab.Column(side.c); !ok {
				return fmt.Errorf("query %s: join predicate %s references unknown column %s.%s", q.ID, j, side.t, side.c)
			}
		}
	}
	for _, p := range q.Predicates {
		if !rels[p.Table] {
			return fmt.Errorf("query %s: predicate %s references relation %q not in FROM", q.ID, p, p.Table)
		}
		tab, _ := cat.Table(p.Table)
		col, ok := tab.Column(p.Column)
		if !ok {
			return fmt.Errorf("query %s: predicate %s references unknown column", q.ID, p)
		}
		if p.Op != Like && col.Type != p.Value.Kind {
			return fmt.Errorf("query %s: predicate %s compares %v column with %v value", q.ID, p, col.Type, p.Value.Kind)
		}
	}
	if len(q.Relations) > 1 && !q.joinGraphConnected() {
		return fmt.Errorf("query %s: join graph is not connected", q.ID)
	}
	return nil
}

// joinGraphConnected reports whether every relation is reachable from the
// first relation via join predicates.
func (q *Query) joinGraphConnected() bool {
	if len(q.Relations) == 0 {
		return true
	}
	visited := map[string]bool{q.Relations[0]: true}
	frontier := []string{q.Relations[0]}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, j := range q.Joins {
			var other string
			switch cur {
			case j.LeftTable:
				other = j.RightTable
			case j.RightTable:
				other = j.LeftTable
			default:
				continue
			}
			if !visited[other] {
				visited[other] = true
				frontier = append(frontier, other)
			}
		}
	}
	return len(visited) == len(q.Relations)
}

// SQL renders an approximate SQL text for the query (COUNT(*) aggregate), for
// logging and documentation purposes only; nothing parses it back.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT count(*) FROM ")
	b.WriteString(strings.Join(q.Relations, ", "))
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	for _, p := range q.Predicates {
		val := p.Value.String()
		if p.Value.Kind == schema.StringType {
			val = "'" + val + "'"
		}
		conds = append(conds, fmt.Sprintf("%s.%s %s %s", p.Table, p.Column, p.Op, val))
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	b.WriteString(";")
	return b.String()
}
