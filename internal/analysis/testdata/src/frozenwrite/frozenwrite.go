// Package frozenwrite is a neo-lint self-test fixture. Snapshot stands in
// for the repo's frozen snapshot types; fixtures_test.go configures it as
// frozen with build and Network.Publish as the designated writers.
package frozenwrite

type Snapshot struct {
	Version int
	Weights []float32
}

type holder struct {
	snap *Snapshot
}

type Network struct {
	cur *Snapshot
}

func mutateField(s *Snapshot) {
	s.Version = 2 // want "mutates frozen type"
}

func mutateElem(s *Snapshot) {
	s.Weights[0] = 1 // want "mutates frozen type"
}

func mutateThroughChain(h holder) {
	h.snap.Version = 3 // want "mutates frozen type"
}

func overwriteWhole(s *Snapshot) {
	*s = Snapshot{} // want "mutates frozen type"
}

func (n *Network) Swap(s *Snapshot) {
	n.cur.Version++ // want "mutates frozen type"
	n.cur = s       // swapping the pointer itself is fine: no finding
}

func (n *Network) Publish(s *Snapshot) {
	n.cur = s
	n.cur.Version = 7 // designated writer (FrozenAllow): no finding
}

func rebind(s, other *Snapshot) *Snapshot {
	s = other // rebinding a variable is not mutation: no finding
	return s
}

func construct(version int) *Snapshot {
	return &Snapshot{Version: version} // composite literal is construction
}

func build() *Snapshot {
	s := &Snapshot{}
	s.Version = 1 // designated constructor (FrozenAllow): no finding
	return s
}

func suppressedWrite(s *Snapshot) {
	s.Version = 9 //neo:lint-ok frozenwrite fixture demonstrates a reviewed in-place patch
}
