package workload

import (
	"strings"
	"testing"

	"neo/internal/datagen"
	"neo/internal/storage"
)

func imdb(t testing.TB) *storage.Database {
	t.Helper()
	db, err := datagen.GenerateIMDB(datagen.Config{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestJOBWorkloadValidAndSized(t *testing.T) {
	db := imdb(t)
	w, err := JOB(db, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 40 {
		t.Fatalf("expected 40 queries, got %d", len(w.Queries))
	}
	seenIDs := map[string]bool{}
	multiJoin := 0
	for _, q := range w.Queries {
		if err := q.Validate(db.Catalog); err != nil {
			t.Errorf("query %s invalid: %v", q.ID, err)
		}
		if seenIDs[q.ID] {
			t.Errorf("duplicate query id %s", q.ID)
		}
		seenIDs[q.ID] = true
		if len(q.Relations) < 3 {
			t.Errorf("query %s has fewer than 3 relations", q.ID)
		}
		if q.NumJoins() >= 3 {
			multiJoin++
		}
		if len(q.Predicates) == 0 {
			t.Errorf("query %s has no predicates", q.ID)
		}
	}
	if multiJoin < 10 {
		t.Errorf("expected a good fraction of queries with >= 3 joins, got %d", multiJoin)
	}
}

func TestJOBDeterministicPerSeed(t *testing.T) {
	db := imdb(t)
	a, err := JOB(db, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JOB(db, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].SQL() != b.Queries[i].SQL() {
			t.Fatalf("same seed produced different queries:\n%s\n%s", a.Queries[i].SQL(), b.Queries[i].SQL())
		}
	}
	c, err := JOB(db, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Queries {
		if a.Queries[i].SQL() == c.Queries[i].SQL() {
			same++
		}
	}
	if same == len(a.Queries) {
		t.Errorf("different seeds should produce different workloads")
	}
}

func TestExtJOBDisjointPredicates(t *testing.T) {
	db := imdb(t)
	base, err := JOB(db, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtJOB(db, 12, 1, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Queries) != 12 {
		t.Fatalf("expected 12 ext queries, got %d", len(ext.Queries))
	}
	baseVals := map[string]bool{}
	for _, q := range base.Queries {
		for _, p := range q.Predicates {
			baseVals[p.Value.String()] = true
		}
	}
	for _, q := range ext.Queries {
		if err := q.Validate(db.Catalog); err != nil {
			t.Errorf("ext query %s invalid: %v", q.ID, err)
		}
		for _, p := range q.Predicates {
			if baseVals[p.Value.String()] {
				t.Errorf("ext query %s shares predicate value %q with the base workload", q.ID, p.Value)
			}
		}
		if !strings.HasPrefix(q.ID, "extjob") {
			t.Errorf("ext query id %q should be prefixed extjob", q.ID)
		}
	}
}

func TestTPCHTemplates(t *testing.T) {
	db, err := datagen.GenerateTPCH(datagen.Config{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w, err := TPCH(db, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 60 {
		t.Fatalf("expected 60 queries, got %d", len(w.Queries))
	}
	templates := map[string]int{}
	for _, q := range w.Queries {
		if err := q.Validate(db.Catalog); err != nil {
			t.Errorf("query %s invalid: %v", q.ID, err)
		}
		templates[templateKey(q.ID)]++
	}
	if len(templates) < 10 {
		t.Errorf("expected at least 10 templates, got %d", len(templates))
	}
	// Split must never put the same template on both sides.
	train, test := w.Split(0.8, 7)
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("split produced empty sides: %d/%d", len(train), len(test))
	}
	trainT := map[string]bool{}
	for _, q := range train {
		trainT[templateKey(q.ID)] = true
	}
	for _, q := range test {
		if trainT[templateKey(q.ID)] {
			t.Errorf("template %s appears in both train and test", templateKey(q.ID))
		}
	}
}

func TestCorpWorkload(t *testing.T) {
	db, err := datagen.GenerateCorp(datagen.Config{Scale: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Corp(db, 36, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 36 {
		t.Fatalf("expected 36 queries, got %d", len(w.Queries))
	}
	for _, q := range w.Queries {
		if err := q.Validate(db.Catalog); err != nil {
			t.Errorf("query %s invalid: %v", q.ID, err)
		}
	}
}

func TestSplitFractions(t *testing.T) {
	db := imdb(t)
	w, err := JOB(db, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	train, test := w.Split(0.8, 1)
	if len(train)+len(test) != len(w.Queries) {
		t.Fatalf("split lost queries: %d + %d != %d", len(train), len(test), len(w.Queries))
	}
	if len(train) <= len(test) {
		t.Errorf("80/20 split should favour training: %d vs %d", len(train), len(test))
	}
	// Different seeds give different splits.
	train2, _ := w.Split(0.8, 2)
	same := true
	if len(train) == len(train2) {
		for i := range train {
			if train[i].ID != train2[i].ID {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		t.Errorf("different split seeds should shuffle differently")
	}
}

// TestSplitClampsBothEdges guards the cut clamping: with at least two
// template groups, no fractional trainFrac may return an empty side.
// Before the upper clamp, a high trainFrac over few templates yielded an
// empty test set, and Evaluate silently reported perfect generalisation over
// zero queries. trainFrac >= 1 stays an explicit full-train request (the
// unseen-queries examples rely on it), so only fractional values are
// clamped.
func TestSplitClampsBothEdges(t *testing.T) {
	db := imdb(t)
	w, err := JOB(db, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.0, 0.01, 0.95, 0.99} {
		train, test := w.Split(frac, 3)
		if len(train)+len(test) != len(w.Queries) {
			t.Fatalf("trainFrac %.2f lost queries: %d + %d != %d", frac, len(train), len(test), len(w.Queries))
		}
		if len(train) == 0 {
			t.Errorf("trainFrac %.2f returned an empty training set", frac)
		}
		if len(test) == 0 {
			t.Errorf("trainFrac %.2f returned an empty test set", frac)
		}
	}
	// An explicit 1.0 trains on every query and owes nothing to the test
	// side.
	train, test := w.Split(1.0, 3)
	if len(train) != len(w.Queries) || len(test) != 0 {
		t.Errorf("trainFrac 1.0 split = %d/%d, want %d/0", len(train), len(test), len(w.Queries))
	}
	// A single-template workload cannot honour both sides; a full-train
	// request keeps everything in training and the degenerate test set
	// stays visible to the caller.
	single := &Workload{Name: "one", Queries: w.Queries[:1]}
	train, test = single.Split(1.0, 3)
	if len(train) != 1 || len(test) != 0 {
		t.Errorf("single-group split = %d/%d, want 1/0", len(train), len(test))
	}
}

func TestByID(t *testing.T) {
	db := imdb(t)
	w, err := JOB(db, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	q := w.Queries[3]
	if w.ByID(q.ID) != q {
		t.Errorf("ByID did not find %s", q.ID)
	}
	if w.ByID("nope") != nil {
		t.Errorf("ByID(nope) should be nil")
	}
}

func TestTemplateKey(t *testing.T) {
	if templateKey("tpch-t03-i2") != "tpch-t03" {
		t.Errorf("templateKey = %q", templateKey("tpch-t03-i2"))
	}
	if templateKey("plain") != "plain" {
		t.Errorf("templateKey(plain) = %q", templateKey("plain"))
	}
}
