// Command neo-lint runs the repository's domain-specific static checks
// (internal/analysis) over the module: deterministic map iteration in the
// seeded-training packages, immutability of published network snapshots,
// wall-clock and global-randomness hygiene on the simulation path, the
// frozen little-endian wire format, and `// guarded by <mu>` mutex
// discipline. Run from anywhere inside the module:
//
//	go run ./cmd/neo-lint ./...
//	go run ./cmd/neo-lint -strict ./...          # also fail on stale suppressions
//	go run ./cmd/neo-lint -checks detrange ./...  # subset of checks
//	go run ./cmd/neo-lint -list                   # describe the checks
//
// A finding is waived per site with a `//neo:lint-ok <check> <reason>`
// comment on (or directly above) the offending line; -strict turns
// suppressions that no longer match any finding into errors, so waivers
// cannot outlive the code they excused.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neo/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("neo-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strict := fs.Bool("strict", false, "also report suppression comments that no longer suppress anything")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list the available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	cfg := analysis.DefaultConfig()
	cfg.Strict = *strict
	if *checksFlag != "" {
		known := make(map[string]bool)
		for _, name := range analysis.CheckNames() {
			known[name] = true
		}
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(stderr, "neo-lint: unknown check %q (known: %s)\n", name, strings.Join(analysis.CheckNames(), ", "))
				return 2
			}
			cfg.EnabledChecks = append(cfg.EnabledChecks, name)
		}
	}

	// The only supported target shape today is the whole module: "./..." (or
	// no argument at all). Anything else is rejected rather than silently
	// half-analyzed — the checks are cross-package invariants.
	switch fs.NArg() {
	case 0:
	case 1:
		if fs.Arg(0) != "./..." {
			fmt.Fprintf(stderr, "neo-lint: only ./... (the whole module) is supported, got %q\n", fs.Arg(0))
			return 2
		}
	default:
		fmt.Fprintln(stderr, "neo-lint: at most one target (./...) is supported")
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "neo-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(stderr, "neo-lint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "neo-lint:", err)
		return 2
	}
	findings := analysis.Run(cfg, pkgs)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "neo-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
