// Package feature implements Neo's query featurization (Section 3 of the
// paper): the query-level encoding (join-graph adjacency + column-predicate
// vector, with 1-Hot, Histogram and R-Vector variants) and the plan-level
// encoding (one |J|+2|R| vector per plan-tree node, preserving the tree
// structure for tree convolution).
package feature

import (
	"fmt"
	"math"
	"sync"

	"neo/internal/embedding"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/schema"
	"neo/internal/stats"
	"neo/internal/storage"
	"neo/internal/treeconv"
)

// Encoding selects the column-predicate representation.
type Encoding string

const (
	// OneHot marks predicated attributes with a 1 (Section 3.2 option 1).
	OneHot Encoding = "1-hot"
	// Histogram replaces the 1 with the predicted selectivity (option 2).
	Histogram Encoding = "histogram"
	// RVector uses learned row-vector embeddings (option 3, Section 5).
	RVector Encoding = "r-vector"
	// RVectorNoJoins is the R-Vector variant trained without partial
	// denormalisation (used by the Figure 12 ablation).
	RVectorNoJoins Encoding = "r-vector-nojoins"
)

// AllEncodings lists every featurization in the order Figure 12 reports them.
func AllEncodings() []Encoding {
	return []Encoding{RVector, RVectorNoJoins, Histogram, OneHot}
}

// numCmpOps is the number of comparison operators one-hot encoded by the
// R-Vector predicate representation.
const numCmpOps = 7

// CardinalitySource optionally supplies a per-node cardinality feature
// appended to every plan-node vector. It implements the protocol of the
// Figure 14 robustness experiment (PostgreSQL estimates vs. true
// cardinalities, optionally perturbed).
type CardinalitySource interface {
	// NodeCardinality returns an estimated (or true) output cardinality for
	// the subplan rooted at n of query q.
	NodeCardinality(q *query.Query, n *plan.Node) float64
}

// Featurizer converts queries and plans into the numeric representations the
// value network consumes. Construct one per (catalog, encoding) pair.
type Featurizer struct {
	Catalog  *schema.Catalog
	Encoding Encoding
	// Stats is required for the Histogram encoding.
	Stats *stats.Stats
	// Embedding is required for the R-Vector encodings.
	Embedding *embedding.Model
	// Cardinality, when non-nil, appends log-scaled per-node cardinality
	// estimates to the plan encoding.
	Cardinality CardinalitySource
	// Error perturbs the cardinality feature (Figure 14 protocol).
	Error *stats.ErrorModel
}

// predicateBlockSize returns the width of the per-attribute block in the
// column-predicate vector.
func (f *Featurizer) predicateBlockSize() int {
	switch f.Encoding {
	case RVector, RVectorNoJoins:
		dim := 0
		if f.Embedding != nil {
			dim = f.Embedding.Dim
		}
		// one-hot comparison op + matched-word count + embedding + seen count
		return numCmpOps + 1 + dim + 1
	default:
		return 1
	}
}

// joinGraphSize returns the number of entries in the upper-triangular join
// adjacency encoding.
func (f *Featurizer) joinGraphSize() int {
	n := f.Catalog.NumRelations()
	return n * (n - 1) / 2
}

// QueryVectorSize returns the length of the query-level encoding.
func (f *Featurizer) QueryVectorSize() int {
	return f.joinGraphSize() + f.Catalog.NumAttributes()*f.predicateBlockSize()
}

// PlanVectorSize returns the length of each plan-node vector: |J| join-type
// slots plus two slots (table-scan, index-scan) per relation, plus two
// derived slots (log cardinality and log work estimate) when a
// CardinalitySource is configured.
func (f *Featurizer) PlanVectorSize() int {
	size := plan.NumJoinOps + 2*f.Catalog.NumRelations()
	if f.Cardinality != nil {
		size += 2
	}
	return size
}

// EncodeQuery builds the query-level encoding of Figure 3: the flattened
// upper triangle of the join-graph adjacency matrix followed by the column
// predicate vector.
func (f *Featurizer) EncodeQuery(q *query.Query) []float64 {
	out := make([]float64, 0, f.QueryVectorSize())

	// Join-graph upper triangle.
	g := q.JoinGraph(f.Catalog)
	n := f.Catalog.NumRelations()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g[i][j] {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
	}

	// Column-predicate vector.
	block := f.predicateBlockSize()
	preds := make([][]float64, f.Catalog.NumAttributes())
	for _, p := range q.Predicates {
		idx := f.Catalog.AttributeIndex(p.Table, p.Column)
		if idx < 0 {
			continue
		}
		preds[idx] = f.encodePredicate(p, preds[idx])
	}
	for _, blockVals := range preds {
		if blockVals == nil {
			out = append(out, make([]float64, block)...)
			continue
		}
		out = append(out, blockVals...)
	}
	return out
}

// encodePredicate produces the per-attribute block for one predicate
// according to the configured encoding. When an attribute carries several
// predicates the blocks are merged (1-Hot stays 1, Histogram multiplies
// selectivities, R-Vector keeps the first predicate's semantics).
func (f *Featurizer) encodePredicate(p query.Predicate, existing []float64) []float64 {
	switch f.Encoding {
	case Histogram:
		sel := 1.0
		if f.Stats != nil {
			sel = f.Stats.Selectivity(p)
		}
		if existing != nil {
			sel *= existing[0]
		}
		return []float64{sel}
	case RVector, RVectorNoJoins:
		if existing != nil {
			return existing
		}
		return f.rvectorBlock(p)
	default: // OneHot
		return []float64{1}
	}
}

// rvectorBlock builds the R-Vector predicate representation of Section 5.1:
// one-hot comparison operator, number of matched words, the value's
// embedding (or the mean of matched embeddings for pattern predicates), and
// how often the value was seen in training.
func (f *Featurizer) rvectorBlock(p query.Predicate) []float64 {
	dim := 0
	if f.Embedding != nil {
		dim = f.Embedding.Dim
	}
	block := make([]float64, numCmpOps+1+dim+1)
	if int(p.Op) >= 0 && int(p.Op) < numCmpOps {
		block[p.Op] = 1
	}
	if f.Embedding == nil {
		return block
	}
	prefix := embedding.TokenPrefix(p.Table, p.Column)
	var vec []float64
	matched := 0
	seen := 0
	value := p.Value
	if value.Kind == schema.IntType {
		// Integers were bucketed during embedding training.
		value = storage.IntValue(value.Int / 10 * 10)
	}
	if p.Op == query.Like {
		vec, matched = f.Embedding.MatchMean(prefix, p.Value.String())
	} else {
		token := prefix + value.String()
		if v, ok := f.Embedding.Vector(token); ok {
			vec, matched = v, 1
			seen = f.Embedding.Count(token)
		} else {
			vec, matched = f.Embedding.MatchMean(prefix, "")
		}
	}
	block[numCmpOps] = math.Log1p(float64(matched))
	for i := 0; i < dim && i < len(vec); i++ {
		block[numCmpOps+1+i] = vec[i]
	}
	block[numCmpOps+1+dim] = math.Log1p(float64(seen))
	return block
}

// EncodePlan converts a (partial or complete) plan into a forest of feature
// trees, one vector per plan node, following Figure 4: the first |J| entries
// one-hot the join operator, the next 2|R| entries mark which relations are
// scanned and how (table, index, or both for unspecified scans); internal
// nodes take the union of their children. When a CardinalitySource is
// configured an extra log-scaled cardinality entry is appended.
func (f *Featurizer) EncodePlan(p *plan.Plan) []*treeconv.Tree {
	out := make([]*treeconv.Tree, 0, len(p.Roots))
	for _, r := range p.Roots {
		out = append(out, f.encodeNode(r, p.Query))
	}
	return out
}

func (f *Featurizer) encodeNode(n *plan.Node, q *query.Query) *treeconv.Tree {
	if n == nil {
		return nil
	}
	vec := make([]float64, f.PlanVectorSize())
	if n.IsLeaf() {
		base := plan.NumJoinOps + 2*f.Catalog.TableIndex(n.Table)
		if idx := f.Catalog.TableIndex(n.Table); idx >= 0 {
			switch n.Scan {
			case plan.TableScan:
				vec[base] = 1
			case plan.IndexScan:
				vec[base+1] = 1
			default: // Unspecified: treated as both table and index scan
				vec[base] = 1
				vec[base+1] = 1
			}
		}
		f.appendCardinality(vec, q, n)
		return treeconv.NewLeaf(vec)
	}
	left := f.encodeNode(n.Left, q)
	right := f.encodeNode(n.Right, q)
	vec[int(n.Join)] = 1
	// Union of the children's relation slots.
	for i := plan.NumJoinOps; i < plan.NumJoinOps+2*f.Catalog.NumRelations(); i++ {
		v := 0.0
		if left != nil && left.Data[i] > 0 {
			v = 1
		}
		if right != nil && right.Data[i] > 0 {
			v = 1
		}
		vec[i] = v
	}
	f.appendCardinality(vec, q, n)
	return treeconv.NewNode(vec, left, right)
}

// appendCardinality fills the two derived slots of a plan-node vector: the
// log-scaled output-cardinality estimate of the subplan rooted at n, and a
// log-scaled generic work estimate for the node's operator (scan size for
// leaves; input product for loop joins, input sum for hash and merge joins).
// Both derive solely from the configured CardinalitySource, so the Figure 14
// protocol (swapping in true cardinalities or injecting error) perturbs both
// consistently.
func (f *Featurizer) appendCardinality(vec []float64, q *query.Query, n *plan.Node) {
	if f.Cardinality == nil {
		return
	}
	card := f.nodeCard(q, n)
	work := card
	if n.IsLeaf() {
		if f.Stats != nil {
			work = math.Max(f.Stats.TableRows(n.Table), 1)
		}
	} else {
		left := f.nodeCard(q, n.Left)
		right := f.nodeCard(q, n.Right)
		if n.Join == plan.LoopJoin {
			work = left*right + card
		} else {
			work = left + right + card
		}
	}
	vec[len(vec)-2] = math.Log10(1 + math.Max(card, 0))
	vec[len(vec)-1] = math.Log10(1 + math.Max(work, 0))
}

func (f *Featurizer) nodeCard(q *query.Query, n *plan.Node) float64 {
	card := f.Cardinality.NodeCardinality(q, n)
	if f.Error != nil {
		card = f.Error.Perturb(card)
	}
	return card
}

// String implements fmt.Stringer.
func (f *Featurizer) String() string {
	return fmt.Sprintf("featurizer(%s, query=%d, plan=%d)", f.Encoding, f.QueryVectorSize(), f.PlanVectorSize())
}

// HistogramCardinality estimates per-node cardinalities from histogram
// statistics (the "PostgreSQL estimate" source of Figure 14).
type HistogramCardinality struct {
	Stats *stats.Stats
}

// NodeCardinality implements CardinalitySource.
func (h *HistogramCardinality) NodeCardinality(q *query.Query, n *plan.Node) float64 {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return h.Stats.EstimateScanRows(n.Table, q.PredicatesOn(n.Table))
	}
	left := h.NodeCardinality(q, n.Left)
	right := h.NodeCardinality(q, n.Right)
	joins := q.JoinsBetween(n.Left.TableSet(), n.Right.TableSet())
	if len(joins) == 0 {
		return left * right
	}
	est := h.Stats.EstimateJoinRows(left, right, joins[0])
	return est
}

// TrueCardinality computes exact per-node cardinalities by executing the
// corresponding sub-query (the "true cardinality" source of Figure 14).
// Results are cached per (query, relation-subset).
type TrueCardinality struct {
	// Counter executes sub-queries; executor.Executor satisfies it.
	Counter interface {
		Count(q *query.Query) (float64, error)
	}
	mu    sync.Mutex
	cache map[string]float64 // guarded by mu
}

// NodeCardinality implements CardinalitySource. Safe for concurrent use
// (concurrent planners reach it through the featurizer).
func (t *TrueCardinality) NodeCardinality(q *query.Query, n *plan.Node) float64 {
	if n == nil || t.Counter == nil {
		return 0
	}
	tables := n.Tables()
	key := q.ID + "|"
	for _, tb := range tables {
		key += tb + ","
	}
	t.mu.Lock()
	if t.cache == nil {
		t.cache = make(map[string]float64)
	}
	if v, ok := t.cache[key]; ok {
		t.mu.Unlock()
		return v
	}
	t.mu.Unlock()
	sub := subQuery(q, tables)
	card, err := t.Counter.Count(sub)
	if err != nil {
		card = 0
	}
	t.mu.Lock()
	// A concurrent planner may have computed the same key while we executed
	// the sub-query; keep the first stored value authoritative.
	if v, ok := t.cache[key]; ok {
		card = v
	} else {
		t.cache[key] = card
	}
	t.mu.Unlock()
	return card
}

// subQuery restricts q to the given subset of relations, keeping the join
// and column predicates that only touch those relations.
func subQuery(q *query.Query, tables []string) *query.Query {
	in := make(map[string]bool, len(tables))
	for _, t := range tables {
		in[t] = true
	}
	var joins []query.JoinPredicate
	for _, j := range q.Joins {
		if in[j.LeftTable] && in[j.RightTable] {
			joins = append(joins, j)
		}
	}
	var preds []query.Predicate
	for _, p := range q.Predicates {
		if in[p.Table] {
			preds = append(preds, p)
		}
	}
	return query.New(q.ID+"-sub", tables, joins, preds)
}
