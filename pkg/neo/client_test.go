package neo

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"neo/internal/cluster/proto"
)

// stubFleet spins up n fake replicas that tag replies with their index.
func stubFleet(t *testing.T, n int) ([]*httptest.Server, []string) {
	t.Helper()
	var servers []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		mux := http.NewServeMux()
		mux.HandleFunc("POST /optimize", func(w http.ResponseWriter, r *http.Request) {
			_ = json.NewEncoder(w).Encode(OptimizeResponse{ID: name, NetVersion: 3})
		})
		mux.HandleFunc("POST /feedback", func(w http.ResponseWriter, r *http.Request) {
			var req proto.FeedbackRequest
			_ = json.NewDecoder(r.Body).Decode(&req)
			if req.NetVersion != 0 && req.NetVersion != 3 {
				http.Error(w, `{"error":"stale"}`, http.StatusConflict)
				return
			}
			_ = json.NewEncoder(w).Encode(FeedbackResponse{Experience: 1, Queued: true})
		})
		mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
			_ = json.NewEncoder(w).Encode(proto.ReplicaStats{NetVersion: 3})
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
	}
	return servers, urls
}

// TestClientRoutesStablyAndFailsOver pins the fleet client's contract:
// optimize and feedback for one query structure land on the same replica
// every time, a dead replica is failed over in ring order, and a 4xx answer
// surfaces instead of burning failover attempts.
func TestClientRoutesStablyAndFailsOver(t *testing.T) {
	servers, urls := stubFleet(t, 3)
	c, err := NewClient(ClientConfig{Replicas: urls,
		RPC: proto.Client{Attempts: 1, Backoff: time.Millisecond, Timeout: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := &QuerySpec{Relations: []string{"title", "movie_keyword"},
		Joins: []JoinSpec{{Left: "title.id", Right: "movie_keyword.movie_id"}}}

	first, err := c.Optimize(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		resp, err := c.Optimize(ctx, spec)
		if err != nil || resp.ID != first.ID {
			t.Fatalf("routing moved: %v %v (want %s)", resp, err, first.ID)
		}
	}
	if fb, err := c.Feedback(ctx, spec, 12, first.NetVersion); err != nil || !fb.Queued {
		t.Fatalf("feedback: %v %v", fb, err)
	}
	// Route agrees with where requests actually landed.
	owner := c.Route(spec)
	ownerIdx := -1
	for i, u := range urls {
		if u == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 || first.ID != string(rune('a'+ownerIdx)) {
		t.Fatalf("Route says %q but replies came from %q", owner, first.ID)
	}

	// Dead owner: the call fails over and still succeeds.
	servers[ownerIdx].Close()
	resp, err := c.Optimize(ctx, spec)
	if err != nil {
		t.Fatalf("optimize with dead owner: %v", err)
	}
	if resp.ID == first.ID {
		t.Fatal("reply claims to come from the dead replica")
	}

	// 4xx is the answer, not a failover trigger.
	if _, err := c.Feedback(ctx, spec, 12, 999); err == nil || proto.Retryable(err) {
		t.Fatalf("stale feedback: got %v, want a non-retryable error", err)
	}

	// Stats omits the dead replica, reports the rest.
	stats := c.Stats(ctx)
	if len(stats) != 2 {
		t.Fatalf("stats from %d replicas, want 2 (one dead)", len(stats))
	}
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}
