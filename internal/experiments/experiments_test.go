package experiments

import (
	"strconv"
	"strings"
	"testing"

	"neo/internal/core"
	"neo/internal/feature"
	"neo/internal/valuenet"
)

// tiny returns the smallest configuration that still exercises every code
// path; used so the experiment tests run in seconds.
func tiny() Config {
	return Config{
		Scale:            0.15,
		Seed:             42,
		Episodes:         1,
		TrainQueries:     6,
		TestQueries:      2,
		SearchExpansions: 24,
		EmbeddingDim:     6,
		Net: valuenet.Config{
			QueryLayers:  []int{16, 8},
			TreeChannels: []int{8, 8},
			HeadLayers:   []int{8},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         7,
		},
		Engines:   []string{"postgres"},
		Workloads: []string{"job"},
	}
}

func tinyEnv(t testing.TB) *Env {
	t.Helper()
	env, err := NewEnv(tiny())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvBuildsEverything(t *testing.T) {
	cfg := tiny()
	cfg.Workloads = nil // build all three databases
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"job", "tpch", "corp"} {
		if env.DBs[wl] == nil || env.Stats[wl] == nil || env.Workloads[wl] == nil {
			t.Errorf("environment missing pieces for %s", wl)
		}
		if len(env.Workloads[wl].Queries) == 0 {
			t.Errorf("workload %s is empty", wl)
		}
	}
	if env.ExtJOB == nil || len(env.ExtJOB.Queries) == 0 {
		t.Errorf("Ext-JOB workload missing")
	}
	train, test := env.Split("job")
	if len(train) == 0 || len(test) == 0 {
		t.Errorf("split produced empty sides")
	}
	if len(train) > cfg.TrainQueries || len(test) > cfg.TestQueries {
		t.Errorf("split ignores configured bounds")
	}
	// Embeddings are cached.
	m1 := env.Embedding("job", true)
	m2 := env.Embedding("job", true)
	if m1 != m2 {
		t.Errorf("embedding should be cached")
	}
	// Featurizers wire the right dependencies.
	if f := env.Featurizer("job", feature.RVector); f.Embedding == nil {
		t.Errorf("R-Vector featurizer needs an embedding")
	}
	if f := env.Featurizer("job", feature.Histogram); f.Stats == nil {
		t.Errorf("Histogram featurizer needs stats")
	}
	if _, err := env.Engine("job", "bogus"); err == nil {
		t.Errorf("unknown engine should error")
	}
}

func TestConfigDefaults(t *testing.T) {
	q := Quick()
	if q.Episodes <= 0 || q.Scale <= 0 {
		t.Errorf("Quick config malformed: %+v", q)
	}
	f := Full()
	if f.Episodes <= q.Episodes || f.Scale <= q.Scale {
		t.Errorf("Full config should be larger than Quick")
	}
	if len(q.engines()) != 4 || len(q.workloads()) != 3 {
		t.Errorf("default engine/workload lists wrong")
	}
	// NewEnv falls back to Quick for a zero config... but that is slow, so
	// just verify the guard exists by checking field defaulting logic.
	c := Config{}
	if c.Episodes != 0 {
		t.Errorf("zero config sanity")
	}
}

func TestTrainNeoProducesBaselinesAndCurve(t *testing.T) {
	env := tinyEnv(t)
	run, err := env.TrainNeo("job", "postgres", feature.Histogram, core.WorkloadCost, true)
	if err != nil {
		t.Fatal(err)
	}
	if run.NativeTestLatency <= 0 || run.PGTestLatency <= 0 {
		t.Errorf("baselines should be positive: %+v", run)
	}
	if len(run.Curve) != env.Config.Episodes {
		t.Errorf("curve length %d != episodes %d", len(run.Curve), env.Config.Episodes)
	}
	rel, err := run.EvaluateRelative()
	if err != nil {
		t.Fatal(err)
	}
	if rel <= 0 {
		t.Errorf("relative performance should be positive, got %f", rel)
	}
}

func TestTable2Report(t *testing.T) {
	env := tinyEnv(t)
	rep, err := Table2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("Table 2 should have 6 rows, got %d", len(rep.Rows))
	}
	// The love/romance cardinality should exceed the love/horror one (the
	// data-level correlation the paper's Table 2 shows).
	var loveRomance, loveHorror float64
	for _, row := range rep.Rows {
		if row[0] == "love" && row[1] == "romance" {
			loveRomance, _ = strconv.ParseFloat(row[3], 64)
		}
		if row[0] == "love" && row[1] == "horror" {
			loveHorror, _ = strconv.ParseFloat(row[3], 64)
		}
	}
	if loveRomance <= loveHorror {
		t.Errorf("card(love,romance)=%f should exceed card(love,horror)=%f", loveRomance, loveHorror)
	}
	out := rep.String()
	if !strings.Contains(out, "table2") || !strings.Contains(out, "keyword") {
		t.Errorf("report rendering broken:\n%s", out)
	}
}

func TestFigure16And17Reports(t *testing.T) {
	env := tinyEnv(t)
	rep17, err := Figure17(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep17.Rows) != 2*len(env.Config.workloads()) {
		t.Errorf("figure 17 should have joins+nojoins rows per workload, got %d", len(rep17.Rows))
	}
	rep16, err := Figure16(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep16.Rows) == 0 {
		t.Errorf("figure 16 should have rows")
	}
}

func TestRegistryAndRun(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("expected 13 registered experiments, got %d: %v", len(names), names)
	}
	for _, want := range []string{"table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "nodemo", "searchvsgreedy", "treeconvvsflat"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing experiment %q", want)
		}
	}
	env := tinyEnv(t)
	if _, err := Run("table2", env); err != nil {
		t.Errorf("Run(table2): %v", err)
	}
	if _, err := Run("does-not-exist", env); err == nil {
		t.Errorf("unknown experiment should error")
	}
}

func TestReportFormatting(t *testing.T) {
	r := &Report{Name: "x", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow(1.23456, "hello")
	r.AddRow(float32(2.5), 7)
	r.AddNote("note %d", 42)
	s := r.String()
	for _, want := range []string{"1.235", "hello", "2.500", "note: note 42", "a", "bb"} {
		if !strings.Contains(s, want) {
			t.Errorf("report output missing %q:\n%s", want, s)
		}
	}
}

func TestHelperFunctions(t *testing.T) {
	if firstAtOrBelow([]float64{2, 1.5, 0.9, 0.8}, 1.0) != 3 {
		t.Errorf("firstAtOrBelow wrong")
	}
	if firstAtOrBelow([]float64{2, 1.5}, 1.0) != -1 {
		t.Errorf("firstAtOrBelow should report not-reached")
	}
	if maxInt(2, 3) != 3 || maxInt(5, 1) != 5 {
		t.Errorf("maxInt wrong")
	}
	if maxFloat(1.5, 2.5) != 2.5 {
		t.Errorf("maxFloat wrong")
	}
	if stddevDiff(nil, nil) != 0 {
		t.Errorf("stddevDiff of empty inputs should be 0")
	}
	if got := stddevDiff([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("identical outputs should have zero shift, got %f", got)
	}
	if got := stddevDiff([]float64{0, 0}, []float64{1, -1}); got <= 0 {
		t.Errorf("different outputs should have positive shift")
	}
}

func TestKeywordGenreQueryValid(t *testing.T) {
	env := tinyEnv(t)
	q := keywordGenreQuery("love", "romance")
	if err := q.Validate(env.DBs["job"].Catalog); err != nil {
		t.Errorf("keywordGenreQuery invalid: %v", err)
	}
}

func TestEmbeddingCheckpointCache(t *testing.T) {
	env := tinyEnv(t)
	trained := env.Embedding("job", true) // trains and caches job/joins
	dir := t.TempDir()
	n, err := env.SaveEmbeddings(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("saved %d embeddings, want 1", n)
	}

	// A fresh env restores the cached model instead of retraining.
	env2 := tinyEnv(t)
	loaded, err := env2.LoadEmbeddings(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 {
		t.Fatalf("loaded %d embeddings, want 1", loaded)
	}
	restored := env2.Embedding("job", true) // must be the cached one
	if restored.VocabSize() != trained.VocabSize() || restored.Dim != trained.Dim {
		t.Fatalf("restored model shape %d/%d, want %d/%d",
			restored.VocabSize(), restored.Dim, trained.VocabSize(), trained.Dim)
	}

	// A dimension mismatch is rejected loudly rather than silently used.
	cfg := tiny()
	cfg.EmbeddingDim = 4
	env3, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env3.LoadEmbeddings(dir); err == nil {
		t.Fatal("expected a dimension-mismatch error")
	}

	// Missing directory: nothing loaded, no error.
	if n, err := env2.LoadEmbeddings(dir + "/nope"); err != nil || n != 0 {
		t.Fatalf("missing dir: n=%d err=%v", n, err)
	}
}
