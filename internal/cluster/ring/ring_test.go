package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("R:title,movie_keyword|J:a=b|P:year >= %d", i)
	}
	return out
}

func TestLookupDeterministicAndOrderIndependent(t *testing.T) {
	a, err := New([]string{"r1", "r2", "r3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"r3", "r1", "r2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(200) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %q routes to %s vs %s depending on construction order", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

func TestDistributionRoughlyEven(t *testing.T) {
	r, err := New([]string{"r1", "r2", "r3", "r4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 4000
	for _, k := range keys(n) {
		counts[r.Lookup(k)]++
	}
	for node, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys (counts: %v)", node, 100*frac, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 nodes own keys: %v", len(counts), counts)
	}
}

// TestMinimalMovement pins the consistent-hashing property the sharded plan
// cache depends on: removing one node only moves the keys that node owned.
func TestMinimalMovement(t *testing.T) {
	full, err := New([]string{"r1", "r2", "r3", "r4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New([]string{"r1", "r2", "r4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(2000) {
		before := full.Lookup(k)
		after := reduced.Lookup(k)
		if before != "r3" && after != before {
			t.Fatalf("key %q moved %s -> %s although its owner survived", k, before, after)
		}
		if before == "r3" && after == "r3" {
			t.Fatalf("key %q still routed to removed node", k)
		}
	}
}

// TestSequenceFailoverOrder pins that the failover sequence starts at the
// owner, covers every node exactly once, and that dropping the owner from
// the fleet routes the key to its failover successor.
func TestSequenceFailoverOrder(t *testing.T) {
	nodes := []string{"r1", "r2", "r3"}
	r, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(100) {
		seq := r.Sequence(k)
		if len(seq) != len(nodes) {
			t.Fatalf("sequence %v does not cover the fleet", seq)
		}
		if seq[0] != r.Lookup(k) {
			t.Fatalf("sequence %v does not start at the owner %s", seq, r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("sequence %v repeats %s", seq, n)
			}
			seen[n] = true
		}
		var survivors []string
		for _, n := range nodes {
			if n != seq[0] {
				survivors = append(survivors, n)
			}
		}
		rr, err := New(survivors, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := rr.Lookup(k); got != seq[1] {
			t.Fatalf("after removing owner %s, key routes to %s, want failover successor %s", seq[0], got, seq[1])
		}
	}
}

func TestNewRejectsBadFleets(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New([]string{"r1", "r1"}, 0); err == nil {
		t.Error("duplicate node accepted")
	}
}
