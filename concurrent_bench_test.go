package repro

import (
	"fmt"
	"testing"

	"neo/pkg/neo"
)

// episodeFixture assembles a small bootstrapped system plus an evaluation
// workload, shared by every worker-count variant of the benchmark.
func episodeFixture(b *testing.B) (*neo.System, []*neo.Query) {
	b.Helper()
	sys, err := neo.Open(neo.Config{
		Dataset:          "imdb",
		Engine:           "postgres",
		Encoding:         neo.Histogram,
		Scale:            0.25,
		Seed:             17,
		SearchExpansions: 64,
		Episodes:         1,
		ValueNet: &neo.ValueNetConfig{
			QueryLayers:  []int{32, 16},
			TreeChannels: []int{16, 16, 8},
			HeadLayers:   []int{16},
			LearningRate: 2e-3,
			UseLayerNorm: true,
			Seed:         3,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	wl, err := sys.GenerateWorkload(16)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Bootstrap(wl.Queries[:8]); err != nil {
		b.Fatal(err)
	}
	return sys, wl.Queries
}

// BenchmarkConcurrentEpisode measures the tentpole of the concurrent episode
// pipeline: evaluating a workload (plan search + simulated execution per
// query) serially versus over a worker pool. Results are bit-identical
// across worker counts — the pool only buys wall-clock time.
//
// Verify the speedup with:
//
//	go test -bench BenchmarkConcurrentEpisode -run '^$' .
func BenchmarkConcurrentEpisode(b *testing.B) {
	sys, queries := episodeFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.Neo.EvaluateParallel(queries, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
