// Package storage implements the in-memory column store that backs the
// simulated execution engines. Each table stores its columns as typed
// slices; secondary hash indexes can be built on any column and are used by
// the executor for index scans and index-nested-loop joins.
package storage

import (
	"fmt"
	"sort"

	"neo/internal/schema"
)

// Value is a single cell value. Exactly one of the fields is meaningful,
// selected by Kind.
type Value struct {
	Kind schema.ColType
	Int  int64
	Str  string
}

// IntValue constructs an integer Value.
func IntValue(v int64) Value { return Value{Kind: schema.IntType, Int: v} }

// StringValue constructs a string Value.
func StringValue(v string) Value { return Value{Kind: schema.StringType, Str: v} }

// Less reports whether v sorts before other. Values of different kinds
// compare by kind (ints before strings) so sorting mixed slices is total.
func (v Value) Less(other Value) bool {
	if v.Kind != other.Kind {
		return v.Kind < other.Kind
	}
	if v.Kind == schema.IntType {
		return v.Int < other.Int
	}
	return v.Str < other.Str
}

// Equal reports whether two values are identical.
func (v Value) Equal(other Value) bool {
	return v.Kind == other.Kind && v.Int == other.Int && v.Str == other.Str
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.Kind == schema.IntType {
		return fmt.Sprintf("%d", v.Int)
	}
	return v.Str
}

// Column is a typed column of values.
type Column struct {
	Type schema.ColType
	Ints []int64
	Strs []string
}

// Len returns the number of rows stored in the column.
func (c *Column) Len() int {
	if c.Type == schema.IntType {
		return len(c.Ints)
	}
	return len(c.Strs)
}

// Value returns the value at row i.
func (c *Column) Value(i int) Value {
	if c.Type == schema.IntType {
		return Value{Kind: schema.IntType, Int: c.Ints[i]}
	}
	return Value{Kind: schema.StringType, Str: c.Strs[i]}
}

// Append appends a value to the column. The value kind must match the column
// type.
func (c *Column) Append(v Value) error {
	if v.Kind != c.Type {
		return fmt.Errorf("storage: cannot append %v value to %v column", v.Kind, c.Type)
	}
	if c.Type == schema.IntType {
		c.Ints = append(c.Ints, v.Int)
	} else {
		c.Strs = append(c.Strs, v.Str)
	}
	return nil
}

// HashIndex maps column values to the row ids holding them.
type HashIndex struct {
	ints map[int64][]int32
	strs map[string][]int32
}

// Lookup returns the row ids whose indexed column equals v.
func (ix *HashIndex) Lookup(v Value) []int32 {
	if v.Kind == schema.IntType {
		return ix.ints[v.Int]
	}
	return ix.strs[v.Str]
}

// DistinctKeys returns the number of distinct keys in the index.
func (ix *HashIndex) DistinctKeys() int { return len(ix.ints) + len(ix.strs) }

// Table is the stored form of one relation.
type Table struct {
	Schema  *schema.Table
	Columns []*Column
	colIdx  map[string]int
	indexes map[string]*HashIndex
	rows    int
}

// NewTable creates an empty stored table for the given schema.
func NewTable(ts *schema.Table) *Table {
	t := &Table{
		Schema:  ts,
		colIdx:  make(map[string]int, len(ts.Columns)),
		indexes: make(map[string]*HashIndex),
	}
	for i, c := range ts.Columns {
		t.Columns = append(t.Columns, &Column{Type: c.Type})
		t.colIdx[c.Name] = i
	}
	return t
}

// NumRows returns the number of rows in the table.
func (t *Table) NumRows() int { return t.rows }

// Column returns the stored column with the given name, or nil.
func (t *Table) Column(name string) *Column {
	i, ok := t.colIdx[name]
	if !ok {
		return nil
	}
	return t.Columns[i]
}

// AppendRow appends one row; values must be given in schema column order.
func (t *Table) AppendRow(values ...Value) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("storage: table %q expects %d values, got %d", t.Schema.Name, len(t.Columns), len(values))
	}
	for i, v := range values {
		if err := t.Columns[i].Append(v); err != nil {
			return fmt.Errorf("storage: table %q column %q: %w", t.Schema.Name, t.Schema.Columns[i].Name, err)
		}
	}
	t.rows++
	return nil
}

// Value returns the value in the named column at the given row.
func (t *Table) Value(column string, row int) (Value, error) {
	c := t.Column(column)
	if c == nil {
		return Value{}, fmt.Errorf("storage: table %q has no column %q", t.Schema.Name, column)
	}
	if row < 0 || row >= c.Len() {
		return Value{}, fmt.Errorf("storage: table %q row %d out of range [0,%d)", t.Schema.Name, row, c.Len())
	}
	return c.Value(row), nil
}

// BuildIndex builds (or rebuilds) a hash index on the named column.
func (t *Table) BuildIndex(column string) error {
	c := t.Column(column)
	if c == nil {
		return fmt.Errorf("storage: cannot index unknown column %q.%q", t.Schema.Name, column)
	}
	ix := &HashIndex{}
	if c.Type == schema.IntType {
		ix.ints = make(map[int64][]int32, len(c.Ints))
		for i, v := range c.Ints {
			ix.ints[v] = append(ix.ints[v], int32(i))
		}
	} else {
		ix.strs = make(map[string][]int32, len(c.Strs))
		for i, v := range c.Strs {
			ix.strs[v] = append(ix.strs[v], int32(i))
		}
	}
	t.indexes[column] = ix
	return nil
}

// Index returns the hash index on the named column, or nil if none exists.
func (t *Table) Index(column string) *HashIndex { return t.indexes[column] }

// DistinctCount returns the number of distinct values in the named column.
func (t *Table) DistinctCount(column string) int {
	c := t.Column(column)
	if c == nil {
		return 0
	}
	if c.Type == schema.IntType {
		seen := make(map[int64]struct{}, len(c.Ints))
		for _, v := range c.Ints {
			seen[v] = struct{}{}
		}
		return len(seen)
	}
	seen := make(map[string]struct{}, len(c.Strs))
	for _, v := range c.Strs {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// SortedRowIDs returns all row ids ordered by the named column's value.
// The executor uses it to model merge-join input ordering.
func (t *Table) SortedRowIDs(column string) ([]int32, error) {
	c := t.Column(column)
	if c == nil {
		return nil, fmt.Errorf("storage: unknown column %q.%q", t.Schema.Name, column)
	}
	ids := make([]int32, c.Len())
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		return c.Value(int(ids[a])).Less(c.Value(int(ids[b])))
	})
	return ids, nil
}

// Database is a set of stored tables plus the catalog describing them.
type Database struct {
	Catalog *schema.Catalog
	tables  map[string]*Table
}

// NewDatabase creates an empty database with one stored table per catalog
// table.
func NewDatabase(cat *schema.Catalog) *Database {
	db := &Database{Catalog: cat, tables: make(map[string]*Table, cat.NumRelations())}
	for _, ts := range cat.Tables() {
		db.tables[ts.Name] = NewTable(ts)
	}
	return db
}

// Table returns the stored table with the given name, or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// BuildIndexes builds hash indexes on every primary key and every declared
// secondary index, plus every foreign-key column (the executor needs those
// for index-nested-loop joins).
func (db *Database) BuildIndexes() error {
	for _, ts := range db.Catalog.Tables() {
		if ts.PrimaryKey != "" {
			if err := db.tables[ts.Name].BuildIndex(ts.PrimaryKey); err != nil {
				return err
			}
		}
	}
	for _, ix := range db.Catalog.Indexes() {
		if err := db.tables[ix.Table].BuildIndex(ix.Column); err != nil {
			return err
		}
	}
	for _, fk := range db.Catalog.ForeignKeys() {
		if err := db.tables[fk.FromTable].BuildIndex(fk.FromColumn); err != nil {
			return err
		}
		if err := db.tables[fk.ToTable].BuildIndex(fk.ToColumn); err != nil {
			return err
		}
	}
	return nil
}

// TotalRows returns the total number of rows across all tables.
func (db *Database) TotalRows() int {
	total := 0
	for _, t := range db.tables {
		total += t.NumRows()
	}
	return total
}

// ApproxSizeBytes returns a rough estimate of the database size, used only
// for reporting (e.g. the row-vector training-time experiment scales with
// data volume, mirroring Figure 17).
func (db *Database) ApproxSizeBytes() int64 {
	var total int64
	for _, t := range db.tables {
		for _, c := range t.Columns {
			if c.Type == schema.IntType {
				total += int64(len(c.Ints)) * 8
			} else {
				for _, s := range c.Strs {
					total += int64(len(s)) + 16
				}
			}
		}
	}
	return total
}
