package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"neo/internal/engine"
	"neo/internal/fastpath"
	"neo/internal/feature"
	"neo/internal/plan"
	"neo/internal/query"
	"neo/internal/route"
	"neo/internal/sched"
	"neo/internal/search"
	"neo/internal/treeconv"
	"neo/internal/valuenet"
)

// CostFunction selects what the value network minimises (Section 4 /
// Section 6.4.4 of the paper).
type CostFunction int

const (
	// WorkloadCost minimises total latency across the workload:
	// C(Pf) = L(Pf).
	WorkloadCost CostFunction = iota
	// RelativeCost minimises latency relative to a per-query baseline:
	// C(Pf) = L(Pf) / Base(q), penalising regressions on individual queries.
	RelativeCost
)

// String implements fmt.Stringer.
func (c CostFunction) String() string {
	if c == RelativeCost {
		return "relative"
	}
	return "workload"
}

// Config holds Neo's hyperparameters.
type Config struct {
	// ValueNet configures the value-network architecture.
	ValueNet valuenet.Config
	// SearchExpansions is the node-expansion budget of the plan search
	// (the analogue of the paper's 250 ms cutoff).
	SearchExpansions int
	// TrainEpochs is the number of passes over the training samples per
	// retraining round.
	TrainEpochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// MaxTrainSamples caps the number of training samples used per
	// retraining round (a uniform subsample is taken when the experience
	// grows beyond it). Zero means no cap.
	MaxTrainSamples int
	// Cost selects the optimisation objective.
	Cost CostFunction
	// Seed seeds plan-search tie-breaking and minibatch shuffling.
	Seed int64
	// Workers is the worker-pool size RunEpisode and Evaluate use to fan
	// plan search and simulated execution out over goroutines. Results are
	// committed in deterministic order, so episode statistics are
	// bit-identical to the serial path for a fixed seed regardless of the
	// worker count — except when the featurizer injects cardinality error
	// (Featurizer.Error, the Figure 14 protocol), whose perturbations draw
	// from one shared stream in scheduling order; run serially if that
	// experiment needs reproducibility. Zero selects GOMAXPROCS; a negative
	// value forces serial execution.
	Workers int
	// FuseScoring routes every search's batched-scoring submissions through
	// a shared micro-batching scheduler (internal/sched): submissions from
	// concurrent searches that arrive within FuseLinger of each other are
	// fused into one shared value-network forward pass of up to MaxFusedBatch
	// rows, so serving N concurrent searches approaches the cost of one
	// large-batch scorer instead of N small ones. Fused scores are
	// bit-identical to private scoring (the batch kernels compute each row
	// independently in a fixed order), so every search — and everything
	// trained from its plans — is unaffected by fusion. The scheduler is
	// pinned to the serving snapshot and is drained and recreated on every
	// snapshot swap, so one fused pass can never mix scores from two weight
	// sets. A search running alone skips the linger entirely; the fusion tax
	// on an idle server is zero.
	FuseScoring bool
	// MaxFusedBatch caps the rows of one fused forward pass (zero selects
	// sched.DefaultMaxBatch). Only meaningful with FuseScoring.
	MaxFusedBatch int
	// FuseLinger bounds how long a scoring submission waits to be fused with
	// others before its batch runs anyway (zero selects sched.DefaultLinger,
	// 200µs). Only meaningful with FuseScoring.
	FuseLinger time.Duration
	// ScorePrecision selects the numeric format serving snapshots score
	// with: float64 (the exact training kernels, the zero value), float32
	// (packed tiled-GEMM panels), or int8 (symmetric per-channel quantized
	// with calibrated activation scales; falls back to float32 until the
	// experience holds calibration samples). Conversion happens once per
	// snapshot publication, inside the atomic swap — training and
	// checkpoints stay bit-identical float64 regardless of this setting.
	ScorePrecision valuenet.Precision
	// Routing selects how queries are dispatched between the statistics-free
	// greedy fast path (internal/fastpath) and the full DNN-guided best-first
	// search: route.Full (the zero value — every query takes the full
	// search, the historical behaviour), route.Fastpath (forced greedy) or
	// route.Auto (per-class heuristic bootstrap, demoted online by
	// observed-latency regret; see ObserveLatency).
	Routing route.Mode
	// RoutePolicy overrides the auto-routing thresholds; zero fields select
	// route.DefaultPolicy values.
	RoutePolicy route.Policy
	// TrainWorkers is the number of data-parallel gradient workers each
	// retraining minibatch is sharded over (valuenet.Config.TrainWorkers).
	// Trained weights are bit-identical for every worker count — the shard
	// partition and gradient-reduction order depend only on the batch size —
	// so parallel training is always safe to enable. Useful parallelism is
	// bounded by the number of 8-sample shards a minibatch splits into
	// (ceil(BatchSize/8)); raise BatchSize alongside TrainWorkers to feed
	// more workers. Zero selects GOMAXPROCS; a negative value forces serial
	// training.
	TrainWorkers int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		ValueNet:         valuenet.DefaultConfig(),
		SearchExpansions: 256,
		TrainEpochs:      10,
		BatchSize:        16,
		MaxTrainSamples:  3000,
		Cost:             WorkloadCost,
		Seed:             1,
	}
}

// Neo is the learned optimizer: it featurizes queries, maintains experience,
// trains the value network, and searches for plans with it.
//
// Concurrency: plan search (Optimize, OptimizeGreedy, Scorer,
// PredictNormalized) scores against an immutable snapshot of the value
// network and is safe to call from any number of goroutines, including
// while RetrainAsync trains the live network in the background. Calls that
// mutate the experience or draw from the training rng (Bootstrap, Explore,
// RunEpisode) must not overlap each other.
type Neo struct {
	Engine     *engine.Engine
	Featurizer *feature.Featurizer
	// Net is the live network the training loop mutates. Searches never
	// read it directly — they score through the snapshot published after
	// each retraining round — so reading Net is safe only while no training
	// round is in flight.
	Net        *valuenet.Network
	Experience *Experience
	Config     Config

	// rngMu guards rng, which drives episode shuffling and minibatch
	// shuffling. One shared stream, drawn in a fixed order, keeps training
	// reproducible for a fixed seed. The stream is fed by rngSrc, a counting
	// source: (seed, draw count) fully describe its state, which is what
	// checkpoints capture and RestoreRNG replays.
	rngMu   sync.Mutex
	rng     *rand.Rand      // guarded by rngMu
	rngSrc  *countingSource // guarded by rngMu
	rngSeed int64           // guarded by rngMu

	// mu guards the cheap mutable state shared between concurrent planners
	// and the training loop: per-query baselines (RelativeCost and
	// normalised reporting) and training-time accounting.
	mu sync.Mutex
	// baseline holds per-query baseline latencies (used by RelativeCost and
	// by the normalised-latency metrics the figures report).
	baseline map[string]float64 // guarded by mu
	// trainTime accumulates wall-clock time spent training the network,
	// used by the Figure 11 training-time breakdown.
	trainTime time.Duration // guarded by mu

	// encMu guards the query-encoding cache separately from mu: a cold
	// encode can be expensive (featurizers may execute sub-queries), and it
	// must not stall baseline reads or serialize the whole worker pool.
	encMu         sync.Mutex
	queryEncCache map[string][]float64 // guarded by encMu

	// trainMu serializes retraining rounds (Retrain / RetrainAsync).
	trainMu sync.Mutex
	// snap is the read-only network snapshot all searches score with,
	// tagged with its version. It is swapped atomically at the end of each
	// retraining round, so in-flight searches finish against the weights
	// they started with while new searches pick up the freshly trained
	// network (double buffering). Version, weights and the fused-scoring
	// scheduler travel in one pointer so a reader can never observe new
	// weights under an old version — or an old scheduler fusing against new
	// weights — or vice versa.
	snap atomic.Pointer[netSnapshot]

	// fuse aggregates fusion statistics across every scheduler this Neo
	// creates over its lifetime (schedulers are recreated on each snapshot
	// swap), so /stats counters are monotonic. Nil when FuseScoring is off.
	fuse *sched.Counters

	// router dispatches each Optimize between the greedy fast path and the
	// full best-first search (Config.Routing) and accounts decisions,
	// planning latencies and execution regret per query class.
	router *route.Router
}

// netSnapshot pairs a frozen network with the version it was published as
// and, when fused scoring is enabled, the micro-batching scheduler pinned to
// exactly these weights.
type netSnapshot struct {
	net     *valuenet.Snapshot
	version uint64
	sched   *sched.Scheduler
}

// countingSource wraps a math/rand source and counts how many values have
// been drawn from it. Go's sources expose no state, but every draw — through
// any rand.Rand method — advances the source by exactly one step, so (seed,
// draws) identifies the state exactly: recreate the source from the seed and
// discard the same number of draws to resume the stream.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *countingSource) Int63() int64 { s.draws++; return s.src.Int63() }

// Uint64 implements rand.Source64.
func (s *countingSource) Uint64() uint64 { s.draws++; return s.src.Uint64() }

// Seed implements rand.Source.
func (s *countingSource) Seed(seed int64) { s.src.Seed(seed); s.draws = 0 }

// skip advances the source by n draws.
func (s *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.draws = n
}

// New creates a Neo instance bound to a target engine and featurizer.
// Zero-valued hyperparameters are filled from DefaultConfig field by field;
// explicitly set fields are preserved. Config.MaxTrainSamples is exempt
// (zero meaningfully disables the cap), and a zero Config.Cost already is
// the default WorkloadCost.
func New(eng *engine.Engine, feat *feature.Featurizer, cfg Config) *Neo {
	def := DefaultConfig()
	if cfg.SearchExpansions == 0 {
		cfg.SearchExpansions = def.SearchExpansions
	}
	if cfg.TrainEpochs == 0 {
		cfg.TrainEpochs = def.TrainEpochs
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = def.BatchSize
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	// Workers normalization lives here, once, for every layer above (the
	// pkg/neo facade and the experiment harness pass their value through).
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 0 {
		cfg.Workers = 1
	}
	if cfg.TrainWorkers == 0 {
		cfg.TrainWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.TrainWorkers < 0 {
		cfg.TrainWorkers = 1
	}
	if len(cfg.ValueNet.QueryLayers) == 0 {
		cfg.ValueNet = def.ValueNet
	}
	// The value network reads its worker count from its own config; the
	// normalized core setting is authoritative.
	cfg.ValueNet.TrainWorkers = cfg.TrainWorkers
	net := valuenet.New(feat.QueryVectorSize(), feat.PlanVectorSize(), cfg.ValueNet)
	src := newCountingSource(cfg.Seed)
	n := &Neo{
		Engine:        eng,
		Featurizer:    feat,
		Net:           net,
		Experience:    NewExperience(),
		Config:        cfg,
		rng:           rand.New(src),
		rngSrc:        src,
		rngSeed:       cfg.Seed,
		baseline:      make(map[string]float64),
		queryEncCache: make(map[string][]float64),
		router:        route.New(cfg.Routing, cfg.RoutePolicy),
	}
	if cfg.FuseScoring {
		n.fuse = &sched.Counters{}
	}
	n.snap.Store(n.newNetSnapshot(n.freezeNet(), 0))
	return n
}

// calibrationSampleCap bounds how many recorded featurizations the int8
// calibration pass runs at snapshot time; calibrationRandomCap additionally
// bounds the random-plan featurizations mixed in to cover the search-space
// activation ranges (plan search scores many candidates far from the
// recorded demonstrations, and activations outside the calibrated absmax
// clamp — so calibrating on demonstrations alone would saturate exactly the
// states the search needs ranked).
const (
	calibrationSampleCap   = 96
	calibrationRandomCap   = 256
	calibrationRandomPlans = 6 // random plans per distinct recent query
)

// calibrationSamples returns featurizations for the int8 activation-scale
// calibration: up to max recorded ones (for the most recent experience
// entries, the complete plan plus the partial plans along its construction,
// so the calibration covers leaf-heavy forests as well as full join trees),
// plus construction states of deterministic random plans for the recent
// distinct queries, which widen the calibrated ranges to what plan search
// actually visits. Returns nil unless the configured precision is int8.
func (n *Neo) calibrationSamples(max int) []valuenet.Sample {
	if n.Config.ScorePrecision != valuenet.PrecisionInt8 {
		return nil
	}
	entries := n.Experience.Entries()
	var samples []valuenet.Sample
	for i := len(entries) - 1; i >= 0 && len(samples) < max; i-- {
		entry := entries[i]
		qEnc := n.encodeQuery(entry.Query)
		for _, partial := range constructionStates(entry.Plan) {
			if len(samples) >= max {
				break
			}
			samples = append(samples, valuenet.Sample{
				Query: qEnc,
				Plan:  n.Featurizer.EncodePlan(partial),
			})
		}
	}
	rng := rand.New(rand.NewSource(n.Config.Seed ^ 0x5ca1ab1e))
	budget := calibrationRandomCap
	seen := make(map[string]bool)
	for i := len(entries) - 1; i >= 0 && budget > 0; i-- {
		q := entries[i].Query
		if seen[q.ID] {
			continue
		}
		seen[q.ID] = true
		qEnc := n.encodeQuery(q)
		for r := 0; r < calibrationRandomPlans && budget > 0; r++ {
			for _, partial := range constructionStates(n.randomPlan(q, rng)) {
				if budget <= 0 {
					break
				}
				samples = append(samples, valuenet.Sample{
					Query: qEnc,
					Plan:  n.Featurizer.EncodePlan(partial),
				})
				budget--
			}
		}
	}
	return samples
}

// randomPlan builds a uniformly random complete plan for q (random join
// order, operators and access paths) — the calibration pass's stand-in for
// the kinds of candidates plan search scores.
func (n *Neo) randomPlan(q *query.Query, rng *rand.Rand) *plan.Plan {
	p := plan.Initial(q)
	opts := plan.ChildrenOptions{Catalog: n.Featurizer.Catalog}
	for !p.IsComplete() {
		kids := p.Children(opts)
		if len(kids) == 0 {
			kids = p.Children(plan.ChildrenOptions{Catalog: n.Featurizer.Catalog, AllowCrossProducts: true})
			if len(kids) == 0 {
				return p
			}
		}
		p = kids[rng.Intn(len(kids))]
	}
	return p
}

// freezeNet converts the live network's current weights into a serving
// snapshot at the configured scoring precision (the packing/quantization
// step of a snapshot publication). Callers must guarantee no training round
// is mutating the weights, exactly as for Net.Snapshot.
func (n *Neo) freezeNet() *valuenet.Snapshot {
	return n.Net.SnapshotPrecision(n.Config.ScorePrecision, n.calibrationSamples(calibrationSampleCap))
}

// SnapshotInfo reports the serving snapshot's scoring precision and memory
// footprint. Safe for concurrent use.
func (n *Neo) SnapshotInfo() valuenet.SnapshotInfo { return n.Snapshot().Info() }

// newNetSnapshot wraps a frozen network for publication, attaching a fresh
// micro-batching scheduler pinned to it when fused scoring is enabled. All
// schedulers share one Counters so fusion statistics survive swaps.
func (n *Neo) newNetSnapshot(snap *valuenet.Snapshot, version uint64) *netSnapshot {
	ns := &netSnapshot{net: snap, version: version}
	if n.fuse != nil {
		ns.sched = sched.New(snap, sched.Options{
			MaxBatch: n.Config.MaxFusedBatch,
			Linger:   n.Config.FuseLinger,
			Counters: n.fuse,
		})
	}
	return ns
}

// swapSnapshot atomically publishes a new netSnapshot and drains the
// superseded one's scheduler: its pending fused batch runs against the old
// weights and later submissions from searches still pinned to it score
// directly (unfused) — so one fused pass never mixes scores from two weight
// sets, and no search ever blocks on a retraining round.
func (n *Neo) swapSnapshot(ns *netSnapshot) {
	old := n.snap.Swap(ns)
	if old != nil && old.sched != nil {
		old.sched.Close()
	}
}

// TrainingTime returns the cumulative wall-clock time spent training the
// value network.
func (n *Neo) TrainingTime() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.trainTime
}

// Snapshot returns the read-only value-network snapshot searches currently
// score with. Safe for concurrent use.
func (n *Neo) Snapshot() *valuenet.Snapshot { return n.snap.Load().net }

// NetVersion returns the number of snapshot swaps performed so far. It
// increments whenever a retraining round publishes new weights; callers that
// cache plans keyed on the network (pkg/neo's plan cache) use it to detect
// staleness. The version is read from the same atomic pointer that carries
// the weights, so two NetVersion reads bracketing a search that returned the
// same value prove the search scored with that version's snapshot.
func (n *Neo) NetVersion() uint64 { return n.snap.Load().version }

// publishSnapshot freezes the live network's weights and swaps them in as
// the serving snapshot, in one atomic store together with the bumped
// version. Callers must hold trainMu (which serializes version increments).
func (n *Neo) publishSnapshot() {
	n.swapSnapshot(n.newNetSnapshot(n.freezeNet(), n.snap.Load().version+1))
}

// RestoreSnapshot freezes the live network's current weights and publishes
// them as the serving snapshot under an explicit version — used when loading
// a checkpoint, so the restored system reports the same NetVersion the saved
// one did and downstream plan caches key correctly.
func (n *Neo) RestoreSnapshot(version uint64) {
	n.trainMu.Lock()
	defer n.trainMu.Unlock()
	n.swapSnapshot(n.newNetSnapshot(n.freezeNet(), version))
}

// RNGState returns the seed and draw count that describe the training RNG's
// exact position in its stream. Safe for concurrent use.
func (n *Neo) RNGState() (seed int64, draws uint64) {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rngSeed, n.rngSrc.draws
}

// RestoreRNG recreates the training RNG from a (seed, draws) pair captured
// by RNGState: the stream continues exactly where the saved run left off, so
// resumed training shuffles minibatches identically to an uninterrupted run.
func (n *Neo) RestoreRNG(seed int64, draws uint64) {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	src := newCountingSource(seed)
	src.skip(draws)
	n.rngSrc = src
	n.rngSeed = seed
	n.rng = rand.New(src)
}

// WithTrainingPaused runs fn while holding the training lock, so no
// retraining round can mutate the network's weights or optimizer state while
// fn reads them (checkpointing uses this). Planning and feedback ingestion
// keep running; calls that draw from the training RNG outside a retraining
// round (RunEpisode's episode shuffle) must not overlap fn.
func (n *Neo) WithTrainingPaused(fn func()) {
	n.trainMu.Lock()
	defer n.trainMu.Unlock()
	fn()
}

// Baselines returns a copy of the per-query baseline latencies. Safe for
// concurrent use.
func (n *Neo) Baselines() map[string]float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]float64, len(n.baseline))
	for id, v := range n.baseline {
		out[id] = v
	}
	return out
}

// RestoreBaselines replaces the per-query baselines with a set captured by
// Baselines.
func (n *Neo) RestoreBaselines(baselines map[string]float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.baseline = make(map[string]float64, len(baselines))
	for id, v := range baselines {
		n.baseline[id] = v
	}
}

// RestoreTrainingTime replaces the cumulative training-time counter (part of
// a checkpoint, so the Figure 11 accounting survives restarts).
func (n *Neo) RestoreTrainingTime(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.trainTime = d
}

// ResetEncodingCache drops every cached query encoding. Call it after
// swapping the featurizer's inputs (e.g. restoring a checkpointed embedding
// model) so stale encodings cannot leak into new searches.
func (n *Neo) ResetEncodingCache() {
	n.encMu.Lock()
	defer n.encMu.Unlock()
	n.queryEncCache = make(map[string][]float64)
}

// SetBaseline records the per-query baseline latencies used by the
// RelativeCost objective and by normalised reporting (typically the latency
// of the expert's plan on the target engine). Safe for concurrent use.
func (n *Neo) SetBaseline(id string, latency float64) {
	if latency > 0 {
		n.mu.Lock()
		n.baseline[id] = latency
		n.mu.Unlock()
	}
}

// Baseline returns the baseline latency for a query (and whether one is set).
// Safe for concurrent use.
func (n *Neo) Baseline(id string) (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.baseline[id]
	return v, ok
}

// cost converts an experience entry's latency into the configured cost.
func (n *Neo) cost(e Entry) float64 {
	if n.Config.Cost == RelativeCost {
		if base, ok := n.Baseline(e.Query.ID); ok && base > 0 {
			return e.Latency / base
		}
	}
	return e.Latency
}

// encodeQuery caches query-level encodings. Safe for concurrent use.
func (n *Neo) encodeQuery(q *query.Query) []float64 {
	n.encMu.Lock()
	defer n.encMu.Unlock()
	if enc, ok := n.queryEncCache[q.ID]; ok {
		return enc
	}
	enc := n.Featurizer.EncodeQuery(q)
	n.queryEncCache[q.ID] = enc
	return enc
}

// Bootstrap collects demonstration experience from an expert optimizer
// (Section 2, "Expertise Collection"): each training query's expert plan is
// executed on the target engine, the plan/latency pair is added to the
// experience, and the latency is recorded as the query's baseline. It then
// trains the value network on the collected demonstrations.
func (n *Neo) Bootstrap(queries []*query.Query, expert func(*query.Query) (*plan.Plan, error)) error {
	for _, q := range queries {
		p, err := expert(q)
		if err != nil {
			return fmt.Errorf("core: expert failed on query %s: %w", q.ID, err)
		}
		lat, _, err := n.Engine.Execute(p)
		if err != nil {
			return fmt.Errorf("core: executing expert plan for %s: %w", q.ID, err)
		}
		n.Experience.Add(q, p, lat)
		n.SetBaseline(q.ID, lat)
	}
	n.Retrain()
	return nil
}

// Explore executes additional (typically randomly generated) plans for the
// given queries and adds them to the experience, then retrains. Executing a
// handful of alternative plans per query alongside the expert demonstration
// gives the value network within-query contrast — it sees both good and bad
// plans for the same query — which substantially improves early plan ranking
// when the training workload is small. (The paper collects only the expert
// plan per query; this is an optional enrichment, enabled by default in the
// experiment harness and documented in DESIGN.md.)
func (n *Neo) Explore(queries []*query.Query, planner func(*query.Query) *plan.Plan, perQuery int) error {
	if perQuery <= 0 {
		return nil
	}
	for _, q := range queries {
		for i := 0; i < perQuery; i++ {
			p := planner(q)
			if p == nil || !p.IsComplete() {
				continue
			}
			lat, _, err := n.Engine.Execute(p)
			if err != nil {
				return fmt.Errorf("core: exploring plan for %s: %w", q.ID, err)
			}
			n.Experience.Add(q, p, lat)
		}
	}
	n.Retrain()
	return nil
}

// BootstrapFromPlans is Bootstrap for pre-computed expert plans.
func (n *Neo) BootstrapFromPlans(plans []*plan.Plan) error {
	for _, p := range plans {
		lat, _, err := n.Engine.Execute(p)
		if err != nil {
			return fmt.Errorf("core: executing expert plan for %s: %w", p.Query.ID, err)
		}
		n.Experience.Add(p.Query, p, lat)
		n.SetBaseline(p.Query.ID, lat)
	}
	n.Retrain()
	return nil
}

// trainingSamples converts the experience into value-network training
// samples: for every stored complete plan, the plan itself plus the partial
// plans along its bottom-up construction, each labelled with the minimum
// cost of any experienced complete plan that contains it.
func (n *Neo) trainingSamples() []valuenet.Sample {
	var samples []valuenet.Sample
	for _, entry := range n.Experience.Entries() {
		qEnc := n.encodeQuery(entry.Query)
		for _, partial := range constructionStates(entry.Plan) {
			target, ok := n.Experience.MinCostContaining(partial, n.cost)
			if !ok {
				target = n.cost(entry)
			}
			samples = append(samples, valuenet.Sample{
				Query:  qEnc,
				Plan:   n.Featurizer.EncodePlan(partial),
				Target: target,
			})
		}
	}
	return samples
}

// constructionStates returns the sequence of partial plans that build up to
// the complete plan p: the initial all-unspecified state, the all-leaves
// state, every intermediate forest produced by applying p's joins bottom-up,
// and finally p itself.
func constructionStates(p *plan.Plan) []*plan.Plan {
	if !p.IsComplete() {
		return []*plan.Plan{p}
	}
	var states []*plan.Plan
	states = append(states, plan.Initial(p.Query))

	// Collect p's join nodes and the size of every subtree in one walk.
	var joins []*plan.Node
	sizes := make(map[*plan.Node]int)
	var measure func(node *plan.Node) int
	measure = func(node *plan.Node) int {
		if node == nil {
			return 0
		}
		size := 1 + measure(node.Left) + measure(node.Right)
		sizes[node] = size
		if !node.IsLeaf() {
			joins = append(joins, node)
		}
		return size
	}
	measure(p.Roots[0])
	// Sort by subtree size ascending so children come before parents,
	// keeping the walk order for equal sizes (disjoint sibling joins) so
	// the construction sequence — and with it the training targets — stays
	// deterministic.
	sort.SliceStable(joins, func(a, b int) bool {
		return sizes[joins[a]] < sizes[joins[b]]
	})

	// Start from the forest of specified leaves.
	var leaves []*plan.Node
	p.Roots[0].Walk(func(node *plan.Node) {
		if node.IsLeaf() {
			leaves = append(leaves, node.Clone())
		}
	})
	current := map[string]*plan.Node{}
	for _, l := range leaves {
		current[l.Table] = l
	}
	// forest lists the distinct roots by walking the leaves in plan order
	// (never by ranging over the map): map iteration order is random, and a
	// random root order would randomise gradient-accumulation order during
	// training, making identically-seeded runs irreproducible.
	forest := func() []*plan.Node {
		out := make([]*plan.Node, 0, len(current))
		seen := map[*plan.Node]bool{}
		for _, l := range leaves {
			node := current[l.Table]
			if !seen[node] {
				seen[node] = true
				out = append(out, node)
			}
		}
		return out
	}
	states = append(states, &plan.Plan{Query: p.Query, Roots: forest()})

	for _, j := range joins {
		// Build the joined subtree from the current forest roots covering
		// the left and right table sets.
		leftTables := j.Left.Tables()
		rightTables := j.Right.Tables()
		leftRoot := current[leftTables[0]]
		rightRoot := current[rightTables[0]]
		joined := plan.Join2(j.Join, leftRoot, rightRoot)
		for _, t := range append(leftTables, rightTables...) {
			current[t] = joined
		}
		states = append(states, &plan.Plan{Query: p.Query, Roots: forest()})
	}
	return states
}

// Retrain rebuilds the training set from the experience, (re)trains the
// live value network — one shared batched forward/backward pass per
// minibatch, sharded over Config.TrainWorkers data-parallel gradient
// workers (bit-identical for every worker count) — and atomically swaps the
// freshly trained weights in as the serving snapshot. It returns the final
// training loss. Retraining rounds are serialized; plan searches may run
// concurrently — they keep scoring with the previous snapshot until the
// swap.
func (n *Neo) Retrain() float64 {
	n.trainMu.Lock()
	defer n.trainMu.Unlock()
	samples := n.trainingSamples()
	if len(samples) == 0 {
		return 0
	}
	n.rngMu.Lock()
	if n.Config.MaxTrainSamples > 0 && len(samples) > n.Config.MaxTrainSamples {
		n.rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		samples = samples[:n.Config.MaxTrainSamples]
	}
	start := time.Now() //neo:lint-ok walltime training-time accounting for the retrain budget; never feeds the model
	loss := n.Net.Train(samples, n.Config.TrainEpochs, n.Config.BatchSize, n.rng)
	n.rngMu.Unlock()
	elapsed := time.Since(start) //neo:lint-ok walltime training-time accounting for the retrain budget; never feeds the model
	n.mu.Lock()
	n.trainTime += elapsed
	n.mu.Unlock()
	n.publishSnapshot()
	return loss
}

// RetrainAsync retrains the value network in the background. Searches keep
// scoring with the previously published snapshot while training runs; when
// the round finishes, the new weights are swapped in atomically and the
// final training loss is delivered on the returned channel (buffered, so
// the result never blocks even if nobody receives it). Rounds are
// serialized with Retrain. Concurrent planning (Optimize, Evaluate,
// pkg/neo's PlanAll) is safe while a round is in flight; concurrent
// experience-mutating calls (RunEpisode, Bootstrap, Explore) are not.
func (n *Neo) RetrainAsync() <-chan float64 {
	done := make(chan float64, 1)
	go func() { done <- n.Retrain() }()
	return done
}

// scoreBackend is the predictor a netScorer scores through: the raw frozen
// snapshot, or the shared micro-batching scheduler that fuses submissions
// across concurrent searches (both produce bit-identical scores per row).
type scoreBackend interface {
	PredictBatch(queries [][]float64, forests [][]*treeconv.Tree) []float64
}

// netScorer scores plans for one query with a frozen value-network
// snapshot. ScoreBatch — the search hot path — encodes every plan of the
// batch and runs one shared batched forward pass; all plans share the
// query's cached encoding, so the network's query tower runs once per
// batch. With fused scoring the backend is the snapshot's scheduler, and the
// forward pass is additionally shared with whatever other searches submitted
// within the linger window.
type netScorer struct {
	backend scoreBackend
	feat    *feature.Featurizer
	qEnc    []float64

	// queries/forests are reused across ScoreBatch calls. Reuse is safe
	// under fused scheduling too: PredictBatch blocks until the fused pass
	// has scattered this submission's results, so the slices are never still
	// referenced when the next ScoreBatch overwrites them.
	queries [][]float64
	forests [][]*treeconv.Tree
}

// ScoreBatch implements search.BatchScorer.
func (s *netScorer) ScoreBatch(ps []*plan.Plan) []float64 {
	s.queries = s.queries[:0]
	s.forests = s.forests[:0]
	for _, p := range ps {
		s.queries = append(s.queries, s.qEnc)
		s.forests = append(s.forests, s.feat.EncodePlan(p))
	}
	return s.backend.PredictBatch(s.queries, s.forests)
}

// Score implements search.Scorer (a batch of one).
func (s *netScorer) Score(p *plan.Plan) float64 {
	return s.ScoreBatch([]*plan.Plan{p})[0]
}

// Scorer returns the batched value-network scorer for the given query; it
// implements both search.BatchScorer (the primary contract) and
// search.Scorer. The scorer is pinned to the network snapshot current at
// creation time, so a search runs against one consistent set of weights
// even if a background retraining round swaps the snapshot mid-search; with
// Config.FuseScoring it scores through that snapshot's shared scheduler, so
// its forward passes fuse with other searches in flight (bit-identical
// scores either way). Each returned scorer carries its own scratch state, so
// concurrent searches use separate Scorer instances (see pkg/neo's PlanAll).
func (n *Neo) Scorer(q *query.Query) search.BatchScorer {
	ns := n.snap.Load()
	var backend scoreBackend = ns.net
	if ns.sched != nil {
		backend = ns.sched
	}
	return &netScorer{backend: backend, feat: n.Featurizer, qEnc: n.encodeQuery(q)}
}

// FusionStats reports the cross-request inference scheduler's cumulative
// fusion statistics (Enabled reports whether Config.FuseScoring is on; all
// counters are zero when it is not). Counters aggregate across snapshot
// swaps, so they are monotonic over the process lifetime. Safe for
// concurrent use.
func (n *Neo) FusionStats() sched.Stats {
	if n.fuse == nil {
		return sched.Stats{}
	}
	st := n.fuse.Stats()
	st.Enabled = true
	return st
}

// Optimize plans q: the router (Config.Routing) dispatches the query either
// to the statistics-free greedy fast path — microsecond planning, no
// value-network inference — or to the full DNN-guided best-first search.
// Every call records its routing decision in the per-class counters (see
// RouteStats). For fast-path plans the returned Result carries the greedy
// cost model's score and the number of ordering steps as Expansions; no
// network is consulted until ObserveLatency scores the executed plan for
// regret.
func (n *Neo) Optimize(q *query.Query) (*plan.Plan, *search.Result, error) {
	if dec := n.router.Decide(q); dec.Fastpath {
		fr, err := fastpath.Plan(q, n.Featurizer.Catalog)
		if err != nil {
			return nil, nil, err
		}
		n.router.RecordFastpathLatency(dec.Class, fr.Elapsed)
		res := &search.Result{
			Plan:       fr.Plan,
			Score:      fastpath.Cost(fr.Plan, n.Featurizer.Catalog),
			Expansions: fr.Steps,
			Elapsed:    fr.Elapsed,
		}
		return fr.Plan, res, nil
	}
	opts := search.Options{
		Catalog:       n.Featurizer.Catalog,
		MaxExpansions: n.Config.SearchExpansions,
	}
	res, err := search.BestFirst(q, n.Scorer(q), opts)
	if err != nil {
		return nil, nil, err
	}
	return res.Plan, res, nil
}

// RouteStats snapshots the router's per-class decision counters, fast-path
// planning-latency percentiles and regret accounting. Safe for concurrent
// use.
func (n *Neo) RouteStats() route.StatsSnapshot { return n.router.Stats() }

// ObserveLatency feeds one executed query's measured latency into the
// router's regret accounting. For a class currently served by the fast
// path, the observation is compared against the value network's estimate of
// what the full best-first search would have achieved: the network predicts
// the best cost *reachable* from a partial plan, so its prediction for the
// query's initial state — one inference — stands in for running the search.
// Classes whose mean regret crosses the policy threshold are re-routed to
// the full search. A no-op (and inference-free) unless routing is Auto and
// the class is on the fast path, so callers can invoke it unconditionally
// on every execution.
func (n *Neo) ObserveLatency(q *query.Query, observedMS float64) {
	if observedMS <= 0 || !n.router.NeedsOutcome(q) {
		return
	}
	if n.Config.Cost == RelativeCost {
		// Under the relative objective the network predicts latency divided
		// by the per-query baseline; bring the observation into the same
		// units (skip the sample when no baseline is known yet).
		base, ok := n.Baseline(q.ID)
		if !ok || base <= 0 {
			return
		}
		observedMS /= base
	}
	// Predict (not PredictNormalized): the estimate must be in the original
	// cost domain so the observed/estimated ratio is unit-free.
	initial := plan.Initial(q)
	estimate := n.Snapshot().Predict(n.encodeQuery(q), n.Featurizer.EncodePlan(initial))
	n.router.RecordOutcome(route.Classify(q).Key(), observedMS, estimate)
}

// OptimizeGreedy builds a plan greedily (the "hurry-up"/Q-learning-style
// ablation of Section 4.2).
func (n *Neo) OptimizeGreedy(q *query.Query) (*plan.Plan, *search.Result, error) {
	opts := search.Options{Catalog: n.Featurizer.Catalog}
	res, err := search.Greedy(q, n.Scorer(q), opts)
	if err != nil {
		return nil, nil, err
	}
	return res.Plan, res, nil
}

// EpisodeStats summarises one training episode.
type EpisodeStats struct {
	// Episode is the 1-based episode number.
	Episode int
	// TotalLatency is the summed latency of the plans chosen this episode.
	TotalLatency float64
	// NormalizedLatency is TotalLatency divided by the summed baseline
	// latency of the same queries (the paper's "normalized latency", where
	// 1.0 equals the baseline optimizer).
	NormalizedLatency float64
	// TrainLoss is the value-network loss after retraining.
	TrainLoss float64
	// QueryLatencies maps query ID to the latency of the plan Neo chose.
	QueryLatencies map[string]float64
}

// planExec is the outcome of planning and simulating one query of an
// episode or evaluation batch: the chosen plan and its deterministic
// (noise-free) simulated latency.
type planExec struct {
	plan *plan.Plan
	base float64
	err  error
}

// planAndSimulate fans plan search plus deterministic plan simulation out
// over a pool of workers. The engine's run-to-run noise is deliberately NOT
// applied here: the caller commits the returned base latencies in input
// order, so the engine's noise stream is drawn in exactly the order the
// serial loop would draw it, and results are bit-identical to serial
// execution for a fixed seed no matter how many workers raced.
func (n *Neo) planAndSimulate(queries []*query.Query, workers int) []planExec {
	out := make([]planExec, len(queries))
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			out[i] = n.planAndSimulateOne(q)
			if out[i].err != nil {
				break
			}
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i] = n.planAndSimulateOne(queries[i])
			}
		}()
	}
	wg.Wait()
	return out
}

func (n *Neo) planAndSimulateOne(q *query.Query) planExec {
	p, _, err := n.Optimize(q)
	if err != nil {
		return planExec{err: err}
	}
	base, _, err := n.Engine.Simulate(p)
	if err != nil {
		return planExec{err: err}
	}
	return planExec{plan: p, base: base}
}

// RunEpisode performs one full training episode (Section 6.3.1): for every
// training query, search for a plan with the current value network, execute
// it on the engine, add the plan/latency pair to the experience, and finally
// retrain the network. Plan search and simulated execution run concurrently
// over Config.Workers workers; see RunEpisodeParallel.
func (n *Neo) RunEpisode(episode int, queries []*query.Query) (*EpisodeStats, error) {
	return n.RunEpisodeParallel(episode, queries, n.Config.Workers)
}

// RunEpisodeParallel is RunEpisode with an explicit worker count: plan
// search and plan simulation fan out over the pool, while the episode's
// shuffle, the engine's noise draws, the experience appends and the final
// retraining all happen in deterministic order — so the returned
// EpisodeStats (and all downstream training state) are bit-identical to the
// serial path for a fixed seed, at a fraction of the wall-clock time. The
// one exception is injected cardinality error (Featurizer.Error), which
// draws from a shared stream in scheduling order; see Config.Workers.
func (n *Neo) RunEpisodeParallel(episode int, queries []*query.Query, workers int) (*EpisodeStats, error) {
	stats := &EpisodeStats{Episode: episode, QueryLatencies: make(map[string]float64)}
	shuffled := append([]*query.Query(nil), queries...)
	n.rngMu.Lock()
	n.rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n.rngMu.Unlock()

	execs := n.planAndSimulate(shuffled, workers)
	baseTotal := 0.0
	for i, q := range shuffled {
		if err := execs[i].err; err != nil {
			return nil, fmt.Errorf("core: episode %d query %s: %w", episode, q.ID, err)
		}
		lat := n.Engine.Commit(execs[i].base)
		n.Experience.Add(q, execs[i].plan, lat)
		n.ObserveLatency(q, lat)
		stats.TotalLatency += lat
		stats.QueryLatencies[q.ID] = lat
		if base, ok := n.Baseline(q.ID); ok {
			baseTotal += base
		} else {
			baseTotal += lat
		}
	}
	if baseTotal > 0 {
		stats.NormalizedLatency = stats.TotalLatency / baseTotal
	}
	stats.TrainLoss = n.Retrain()
	return stats, nil
}

// Evaluate optimizes and executes each query without adding the results to
// the experience (held-out evaluation). It returns the total latency and the
// per-query latencies. Plan search and simulation run concurrently over
// Config.Workers workers; see EvaluateParallel.
func (n *Neo) Evaluate(queries []*query.Query) (float64, map[string]float64, error) {
	return n.EvaluateParallel(queries, n.Config.Workers)
}

// EvaluateParallel is Evaluate with an explicit worker count. Like
// RunEpisodeParallel, searches and plan simulations fan out while the
// engine's noise draws commit in input order, so per-query plans and
// latencies are identical to the serial path for a fixed seed (with the
// same Featurizer.Error exception; see Config.Workers).
func (n *Neo) EvaluateParallel(queries []*query.Query, workers int) (float64, map[string]float64, error) {
	execs := n.planAndSimulate(queries, workers)
	perQuery := make(map[string]float64, len(queries))
	total := 0.0
	for i, q := range queries {
		if execs[i].err != nil {
			return 0, nil, execs[i].err
		}
		lat := n.Engine.Commit(execs[i].base)
		perQuery[q.ID] = lat
		total += lat
	}
	return total, perQuery, nil
}

// PredictNormalized exposes the raw value-network output for a plan of a
// query (used by the Figure 14 robustness analysis). It reads the serving
// snapshot, so it is safe to call while a retraining round is in flight.
func (n *Neo) PredictNormalized(q *query.Query, p *plan.Plan) float64 {
	return n.Snapshot().PredictNormalized(n.encodeQuery(q), n.Featurizer.EncodePlan(p))
}

// EncodePlanTrees is a convenience wrapper exposing the featurizer's plan
// encoding (useful for analysis tools and tests).
func (n *Neo) EncodePlanTrees(p *plan.Plan) []*treeconv.Tree {
	return n.Featurizer.EncodePlan(p)
}
