// Package wire is the designated wire package of the wireendian fixture:
// little-endian primitives are its job, but big-endian is banned even here.
package wire

import "encoding/binary"

func PutU32(b []byte, v uint32) {
	binary.LittleEndian.PutUint32(b, v) // the wire package owns little-endian: no finding
}

func badBig(b []byte) uint32 {
	return binary.BigEndian.Uint32(b) // want "binary.BigEndian breaks the frozen little-endian"
}
