// Package walltime is a neo-lint self-test fixture, configured by
// fixtures_test.go as determinism-critical.
package walltime

import (
	"math/rand"
	"time"
)

type sim struct {
	rng *rand.Rand // naming the type is not an effect: no finding
}

func now() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the global"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the global"
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // owned, seeded source is the fix: no finding
}

func (s *sim) draw() float64 {
	return s.rng.Float64() // method on an owned *rand.Rand: no finding
}

func round(d time.Duration) time.Duration {
	return d.Round(time.Millisecond) // duration constants are pure: no finding
}

func measured() time.Duration {
	start := time.Now() //neo:lint-ok walltime fixture measures real elapsed time
	work()
	return time.Since(start) //neo:lint-ok walltime fixture measures real elapsed time
}

func work() {}
