// Checkpoint facades: SaveCheckpoint/LoadCheckpoint make a System's learned
// state durable — value-network weights and optimizer trajectory, the
// row-vector embedding, the experience pool, baselines, the serving-snapshot
// version and the training RNG position. A system restored from a checkpoint
// serves bit-identical plans and resumes training exactly where the saved
// one stopped; see internal/checkpoint for the format.
package neo

import (
	"fmt"
	"io"
	"os"

	"neo/internal/checkpoint"
)

// SaveCheckpoint writes the system's learned state to w. It briefly pauses
// retraining rounds (planning keeps running); do not call it concurrently
// with experience-mutating calls such as Train or Bootstrap.
func (s *System) SaveCheckpoint(w io.Writer) error {
	var err error
	s.Neo.WithTrainingPaused(func() {
		seed, draws := s.Neo.RNGState()
		st := &checkpoint.State{
			Encoding:   string(s.Config.Encoding),
			NetVersion: s.Neo.NetVersion(),
			RNGSeed:    seed,
			RNGDraws:   draws,
			TrainTime:  s.Neo.TrainingTime(),
			Net:        s.Neo.Net,
			Embedding:  s.Featurizer.Embedding,
			Experience: s.Neo.Experience.Entries(),
			Baselines:  s.Neo.Baselines(),
		}
		err = checkpoint.Save(w, st)
	})
	if err != nil {
		return fmt.Errorf("neo: saving checkpoint: %w", err)
	}
	return nil
}

// SaveCheckpointFile writes the checkpoint atomically (temp file + rename,
// via checkpoint.AtomicWriteFile), so an interrupted save can never leave a
// truncated checkpoint under the real name.
func (s *System) SaveCheckpointFile(path string) error {
	err := checkpoint.AtomicWriteFile(path, 0o644, s.SaveCheckpoint)
	if err != nil {
		return fmt.Errorf("neo: saving checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint into this
// system. The system must have been opened with the same configuration
// (dataset, encoding, value-network architecture); mismatches fail with an
// error wrapping checkpoint.ErrMismatch. Loading replaces the network
// weights and optimizer state in place, swaps in the saved embedding,
// experience, baselines, RNG position and snapshot version, and resets the
// plan cache. Call it before serving traffic — it must not run concurrently
// with planning or training.
func (s *System) LoadCheckpoint(r io.Reader) error {
	st, err := checkpoint.Load(r, s.Neo.Net, string(s.Config.Encoding))
	if err != nil {
		return fmt.Errorf("neo: loading checkpoint: %w", err)
	}
	if st.Embedding != nil {
		s.Featurizer.Embedding = st.Embedding
	}
	s.Neo.Experience.Restore(st.Experience)
	s.Neo.RestoreBaselines(st.Baselines)
	s.Neo.RestoreRNG(st.RNGSeed, st.RNGDraws)
	s.Neo.RestoreTrainingTime(st.TrainTime)
	s.Neo.ResetEncodingCache()
	s.Neo.RestoreSnapshot(st.NetVersion)
	s.cache.reset()
	return nil
}

// LoadCheckpointFile restores a checkpoint from a file.
func (s *System) LoadCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("neo: loading checkpoint: %w", err)
	}
	defer f.Close()
	return s.LoadCheckpoint(f)
}
